package pdwqo

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var testDB *DB

func openTest(t testing.TB) *DB {
	t.Helper()
	if testDB == nil {
		db, err := OpenTPCH(0.002, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		testDB = db
	}
	return testDB
}

// canon renders rows order-independently (unless ordered is true) so
// distributed and serial results compare exactly.
func canon(r *Result, ordered bool) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			// Full precision; rowsEquivalent applies a relative tolerance
			// for summation-order differences on floats.
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	if !ordered {
		sort.Strings(out)
	}
	return out
}

// rowsEquivalent compares two canonical rows field-wise, allowing a small
// relative error on floating-point fields: distributed plans sum in a
// different order than the serial reference, so the low bits may differ.
func rowsEquivalent(a, b string) bool {
	if a == b {
		return true
	}
	af, bf := strings.Split(a, "|"), strings.Split(b, "|")
	if len(af) != len(bf) {
		return false
	}
	for i := range af {
		if af[i] == bf[i] {
			continue
		}
		x, errX := strconv.ParseFloat(af[i], 64)
		y, errY := strconv.ParseFloat(bf[i], 64)
		if errX != nil || errY != nil {
			return false
		}
		diff := math.Abs(x - y)
		scale := math.Max(math.Abs(x), math.Abs(y))
		if diff > 1e-6*scale+1e-9 {
			return false
		}
	}
	return true
}

// assertSameResults runs a query both distributed and serially and
// compares: the paper's correctness contract for any chosen plan.
func assertSameResults(t *testing.T, db *DB, sql string, opts Options, ordered bool) {
	t.Helper()
	dist, err := db.Execute(sql, opts)
	if err != nil {
		t.Fatalf("distributed: %v", err)
	}
	ref, err := db.ExecuteSerial(sql)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	dc, rc := canon(dist, ordered), canon(ref, ordered)
	if len(dc) != len(rc) {
		t.Fatalf("row counts differ: distributed %d vs serial %d", len(dc), len(rc))
	}
	for i := range dc {
		if !rowsEquivalent(dc[i], rc[i]) {
			t.Fatalf("row %d differs:\ndistributed: %s\nserial:      %s", i, dc[i], rc[i])
		}
	}
}

func TestEndToEndSimpleQueries(t *testing.T) {
	db := openTest(t)
	queries := []struct {
		sql     string
		ordered bool
	}{
		{`SELECT c_name FROM customer WHERE c_acctbal > 5000`, false},
		{`SELECT * FROM customer c, orders o WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`, false},
		{`SELECT c_custkey, o_orderdate FROM orders, customer WHERE o_custkey = c_custkey AND o_totalprice > 100`, false},
		{`SELECT o_orderdate FROM orders, lineitem WHERE o_orderkey = l_orderkey`, false},
		{`SELECT n_name, COUNT(*) AS c FROM customer, nation WHERE c_nationkey = n_nationkey GROUP BY n_name`, false},
		{`SELECT o_custkey, COUNT(*) AS cnt, SUM(o_totalprice) AS total FROM orders GROUP BY o_custkey`, false},
		{`SELECT SUM(l_quantity) FROM lineitem`, false},
		{`SELECT TOP 7 c_name, c_acctbal FROM customer ORDER BY c_acctbal DESC, c_name`, true},
		{`SELECT DISTINCT o_custkey FROM orders WHERE o_totalprice > 50000`, false},
		{`SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders WHERE o_totalprice > 100000)`, false},
		{`SELECT c_name FROM customer c WHERE NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)`, false},
		{`SELECT c_name FROM customer WHERE c_acctbal > 10 AND c_acctbal < 5`, false},
		{`SELECT l_quantity FROM part, lineitem WHERE p_partkey = l_partkey AND p_name LIKE 'forest%'`, false},
		{`SELECT c_name, COUNT(*) FROM customer LEFT JOIN orders ON c_custkey = o_custkey GROUP BY c_name`, false},
	}
	for _, q := range queries {
		q := q
		t.Run(q.sql[:min(40, len(q.sql))], func(t *testing.T) {
			assertSameResults(t, db, q.sql, Options{}, q.ordered)
		})
	}
}

func TestEndToEndTPCHSuite(t *testing.T) {
	db := openTest(t)
	for _, name := range TPCHQueryNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sql, _ := TPCHQuery(name)
			// Ordered queries still compare unordered: the serial
			// reference applies the same sort, so ordered comparison also
			// holds except for ties; unordered is the robust contract.
			assertSameResults(t, db, sql, Options{}, false)
		})
	}
}

func TestEndToEndBaselineModeSameResults(t *testing.T) {
	// Plans differ between modes; results must not.
	db := openTest(t)
	for _, name := range []string{"q03", "q05", "q18", "q20"} {
		sql, _ := TPCHQuery(name)
		assertSameResults(t, db, sql, Options{Mode: ModeSerialBaseline}, false)
	}
}

func TestEndToEndAblationsSameResults(t *testing.T) {
	db := openTest(t)
	sql, _ := TPCHQuery("q20")
	assertSameResults(t, db, sql, Options{DisableAggSplit: true}, false)
	assertSameResults(t, db, sql, Options{DisableInterestingRetention: true}, false)
}

func TestEndToEndTopologies(t *testing.T) {
	// The same queries produce identical results regardless of node count.
	for _, nodes := range []int{2, 5} {
		db, err := OpenTPCH(0.001, nodes, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"q01", "q06", "q12", "q20"} {
			sql, _ := TPCHQuery(name)
			assertSameResults(t, db, sql, Options{}, false)
		}
	}
}

func TestQ20AgainstPaperExpectations(t *testing.T) {
	db := openTest(t)
	sql, _ := TPCHQuery("q20")
	plan, err := db.Optimize(sql, Options{})
	if err != nil {
		t.Fatal(err)
	}
	moves := plan.Moves()
	if moves[MoveKind(3)] < 1 { // Broadcast
		t.Errorf("Q20 should broadcast the filtered part table: %v", moves)
	}
	out := plan.Explain()
	if !strings.Contains(out, "PartialGroupBy") || !strings.Contains(out, "FinalGroupBy") {
		t.Errorf("Q20 should split aggregation locally/globally:\n%s", out)
	}
}

// TestAggSplitGuards pins the decomposability guard rails: DISTINCT
// aggregates see each value once globally but possibly on many nodes, so
// their plans must never carry a partial phase, while HAVING filters sit
// above the finalizer and stay correct under the split.
func TestAggSplitGuards(t *testing.T) {
	db := openTest(t)

	distinctQueries := []string{
		`SELECT o_custkey, COUNT(DISTINCT o_orderstatus) AS s FROM orders GROUP BY o_custkey`,
		`SELECT COUNT(DISTINCT l_suppkey) AS s FROM lineitem`,
	}
	if sql, ok := TPCHQuery("q16"); ok {
		distinctQueries = append(distinctQueries, sql)
	}
	for _, sql := range distinctQueries {
		plan, err := db.Optimize(sql, Options{Verify: true})
		if err != nil {
			t.Fatalf("optimize %q: %v", sql[:min(40, len(sql))], err)
		}
		if out := plan.Explain(); strings.Contains(out, "PartialGroupBy") {
			t.Errorf("DISTINCT aggregate was split:\n%s", out)
		}
		assertSameResults(t, db, sql, Options{}, false)
	}

	havingSQL := `SELECT o_custkey, SUM(o_totalprice) AS total FROM orders
		GROUP BY o_custkey HAVING SUM(o_totalprice) > 100000`
	assertSameResults(t, db, havingSQL, Options{}, false)
	assertSameResults(t, db, havingSQL, Options{DisableAggSplit: true}, false)
}

func TestOptimizeErrors(t *testing.T) {
	db := openTest(t)
	if _, err := db.Optimize("SELECT bogus FROM nowhere", Options{}); err == nil {
		t.Error("expected error")
	}
	if _, err := db.Optimize("not sql", Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestMetricsAccumulate(t *testing.T) {
	db, err := OpenTPCH(0.001, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`SELECT * FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`, Options{}); err != nil {
		t.Fatal(err)
	}
	if db.Appliance().Metrics.TotalBytesMoved() == 0 {
		t.Error("DMS bytes should be metered")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestEndToEndUnionAll(t *testing.T) {
	db := openTest(t)
	queries := []string{
		`SELECT c_custkey AS k FROM customer WHERE c_acctbal > 9000
		 UNION ALL SELECT o_custkey FROM orders WHERE o_totalprice > 200000`,
		`SELECT n_name FROM nation UNION ALL SELECT r_name FROM region`,
		`SELECT k, COUNT(*) AS c FROM (
		     SELECT c_nationkey AS k FROM customer
		     UNION ALL SELECT s_nationkey FROM supplier) u GROUP BY k`,
		`SELECT c_custkey AS k FROM customer
		 UNION ALL SELECT o_custkey FROM orders ORDER BY k`,
	}
	for _, sql := range queries {
		assertSameResults(t, db, sql, Options{}, false)
	}
}

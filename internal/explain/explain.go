// Package explain renders the optimizer's chosen distributed plan —
// EXPLAIN — and, after execution, reconciles the optimizer's estimates
// against the engine's measured step metrics — EXPLAIN ANALYZE.
//
// EXPLAIN output is deterministic for a given (query, catalog, topology):
// it shows the plan tree with placements and estimated rows/bytes/DMS
// cost, followed by the DSQL step sequence. ANALYZE additionally shows,
// per executed step, actual rows, bytes moved, attempts and wall time,
// plus a predicted-vs-actual q-error summary over the move steps (the
// cost model's accuracy metric; see EXPERIMENTS.md E16).
package explain

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/engine"
)

// Input is everything a render needs. Plan and DSQL are required;
// Actuals/Retries/Faults/Elapsed are the execution-side measurements and
// only consulted under Options.Analyze.
type Input struct {
	SQL  string
	Plan *core.Plan
	DSQL *dsql.Plan

	// Actuals are the StepMetrics this execution appended, in step order;
	// steps that never ran (fault-aborted execution) are simply absent.
	Actuals []engine.StepMetric
	Retries int64
	Faults  int64
	Elapsed time.Duration
}

// Options selects the output flavor.
type Options struct {
	// Analyze includes per-step actuals and the q-error summary.
	Analyze bool
	// JSON renders the machine-readable form instead of text.
	JSON bool
}

// Render produces the EXPLAIN (or EXPLAIN ANALYZE) output.
func Render(in Input, opts Options) (string, error) {
	if in.Plan == nil || in.DSQL == nil {
		return "", fmt.Errorf("explain: missing plan")
	}
	if opts.JSON {
		b, err := json.MarshalIndent(buildJSON(in, opts), "", "  ")
		if err != nil {
			return "", err
		}
		return string(b) + "\n", nil
	}
	return renderText(in, opts), nil
}

// actualsByStep indexes execution metrics by DSQL step ID.
func actualsByStep(in Input) map[int]engine.StepMetric {
	m := make(map[int]engine.StepMetric, len(in.Actuals))
	for _, a := range in.Actuals {
		m[a.StepID] = a
	}
	return m
}

// --- text rendering ---

func renderText(in Input, opts Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- distributed plan  cost=%.6g groups=%d options considered=%d retained=%d\n",
		in.Plan.TotalCost, in.Plan.Groups, in.Plan.OptionsConsidered, in.Plan.OptionsRetained)
	writeTree(&b, in.Plan.Root, 0)
	b.WriteString("-- DSQL steps\n")
	acts := actualsByStep(in)
	for _, s := range in.DSQL.Steps {
		writeStep(&b, s, opts, acts)
	}
	if opts.Analyze {
		writeSummary(&b, in, acts)
	}
	return b.String()
}

// writeTree renders the option tree with placement and estimates.
func writeTree(b *strings.Builder, o *core.Option, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%-*s  [%s rows=%.6g bytes=%.6g dms=%.6g]\n",
		28-2*depth, nodeLabel(o), o.Dist, o.Rows, o.Rows*o.Width, o.DMSCost)
	for _, in := range o.Inputs {
		writeTree(b, in, depth+1)
	}
}

// nodeLabel names a plan node the way core's own plan display does.
func nodeLabel(o *core.Option) string {
	if o.Move != nil {
		return o.Move.String()
	}
	switch op := o.Op.(type) {
	case *algebra.Get:
		return fmt.Sprintf("%s(%s)", o.Op.OpName(), op.Table.Name)
	case *algebra.GroupBy:
		keys := make([]string, len(op.Keys))
		for i, k := range op.Keys {
			keys[i] = fmt.Sprintf("c%d", k)
		}
		return fmt.Sprintf("%s[%s]", o.Op.OpName(), strings.Join(keys, ","))
	default:
		return o.Op.OpName()
	}
}

func writeStep(b *strings.Builder, s dsql.Step, opts Options, acts map[int]engine.StepMetric) {
	switch s.Kind {
	case dsql.StepMove:
		fmt.Fprintf(b, "step %d: DMS %s", s.ID, s.MoveKind)
		if s.HashCol != "" {
			fmt.Fprintf(b, "(%s)", s.HashCol)
		}
		fmt.Fprintf(b, " -> %s  on %s  [est_rows=%.6g est_bytes=%.6g est_cost=%.6g]\n",
			s.Dest, whereName(s.Where), s.Rows, s.EstBytes(), s.MoveCost)
	default:
		fmt.Fprintf(b, "step %d: RETURN  on %s  [est_rows=%.6g est_bytes=%.6g]\n",
			s.ID, whereName(s.Where), s.Rows, s.EstBytes())
	}
	for _, line := range strings.Split(s.SQL, "\n") {
		b.WriteString("    ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if !opts.Analyze {
		return
	}
	a, ok := acts[s.ID]
	if !ok {
		b.WriteString("    actual: (step did not complete)\n")
		return
	}
	fmt.Fprintf(b, "    actual: rows=%d bytes=%d attempts=%d time=%s",
		a.Rows, a.Bytes, a.Attempts, a.Duration.Round(time.Microsecond))
	if a.LocalBatches > 0 {
		// Vectorized node-local execution: how many column batches carried
		// the step's LocalRows.
		fmt.Fprintf(b, " batches=%d", a.LocalBatches)
	}
	if s.Kind == dsql.StepMove {
		fmt.Fprintf(b, " q_rows=%s q_bytes=%s",
			fmtQ(cost.QError(s.Rows, float64(a.Rows))),
			fmtQ(cost.QError(s.EstBytes(), float64(a.Bytes))))
	}
	b.WriteByte('\n')
}

// whereName renders a step's execution placement.
func whereName(k core.DistKind) string {
	switch k {
	case core.DistReplicated:
		return "replicated"
	case core.DistSingle:
		return "single-node"
	default:
		return "distributed"
	}
}

func writeSummary(b *strings.Builder, in Input, acts map[int]engine.StepMetric) {
	var bytesMoved int64
	for _, a := range in.Actuals {
		if a.IsMove {
			bytesMoved += a.Bytes
		}
	}
	b.WriteString("-- analyze summary\n")
	fmt.Fprintf(b, "elapsed=%s steps=%d/%d bytes_moved=%d retries=%d faults=%d\n",
		in.Elapsed.Round(time.Microsecond), len(in.Actuals), len(in.DSQL.Steps),
		bytesMoved, in.Retries, in.Faults)
	rows, bytes := qErrors(in, acts)
	if len(bytes) > 0 {
		rg, ru := cost.QErrorSummary(rows)
		bg, bu := cost.QErrorSummary(bytes)
		fmt.Fprintf(b, "move q-error (rows):  n=%d mean=%s max=%s%s\n", len(rows), fmtQ(rg), fmtQ(maxOf(rows)), fmtUnbounded(ru))
		fmt.Fprintf(b, "move q-error (bytes): n=%d mean=%s max=%s%s\n", len(bytes), fmtQ(bg), fmtQ(maxOf(bytes)), fmtUnbounded(bu))
	} else {
		b.WriteString("move q-error: no move steps executed\n")
	}
}

// fmtUnbounded annotates a q-error line with how many steps had an
// unbounded (one-side-zero) error; empty when none, so the common case
// keeps its historical format.
func fmtUnbounded(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(" unbounded=%d", n)
}

// qErrors collects the per-move-step q-errors for rows and bytes, in
// step order.
func qErrors(in Input, acts map[int]engine.StepMetric) (rows, bytes []float64) {
	for _, s := range in.DSQL.Steps {
		if s.Kind != dsql.StepMove {
			continue
		}
		a, ok := acts[s.ID]
		if !ok {
			continue
		}
		rows = append(rows, cost.QError(s.Rows, float64(a.Rows)))
		bytes = append(bytes, cost.QError(s.EstBytes(), float64(a.Bytes)))
	}
	return rows, bytes
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// fmtQ renders a q-error compactly; unbounded errors print as "inf".
func fmtQ(q float64) string {
	if math.IsInf(q, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3g", q)
}

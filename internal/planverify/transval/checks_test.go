package transval

import (
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/planverify"
	"pdwqo/internal/tpch"
	"pdwqo/internal/types"
)

func getOption(table string) *core.Option {
	for _, tb := range tpch.Tables() {
		if tb.Name != table {
			continue
		}
		cols := make([]algebra.ColumnMeta, len(tb.Columns))
		for i, c := range tb.Columns {
			cols[i] = algebra.ColumnMeta{ID: algebra.ColumnID(i + 1), Name: c.Name, Type: c.Type}
		}
		return &core.Option{Op: &algebra.Get{Table: tb, Cols: cols}}
	}
	return nil
}

// TestCheckGuards pins the partial-input contract: nil or truncated
// artifacts yield no violations rather than panics, and structurally
// misaligned step lists are rejected before any per-step analysis.
func TestCheckGuards(t *testing.T) {
	shell := fuzzShell()
	get := getOption("lineitem")
	ret := dsql.Step{Kind: dsql.StepReturn, SQL: "SELECT 1 AS c1"}

	for _, c := range []struct {
		plan  *core.Plan
		dp    *dsql.Plan
		sh    bool
		label string
	}{
		{nil, &dsql.Plan{Steps: []dsql.Step{ret}}, true, "nil plan"},
		{&core.Plan{}, &dsql.Plan{Steps: []dsql.Step{ret}}, true, "rootless plan"},
		{&core.Plan{Root: get}, nil, true, "nil dsql"},
		{&core.Plan{Root: get}, &dsql.Plan{}, true, "empty steps"},
		{&core.Plan{Root: get}, &dsql.Plan{Steps: []dsql.Step{ret}}, false, "nil shell"},
	} {
		sh := shell
		if !c.sh {
			sh = nil
		}
		if vs := Check(c.plan, c.dp, sh); vs != nil {
			t.Errorf("%s: violations = %v, want none", c.label, vs)
		}
	}

	// A moveless plan with two DSQL steps cannot line up.
	vs := Check(&core.Plan{Root: get},
		&dsql.Plan{Steps: []dsql.Step{ret, ret}}, shell)
	if len(vs) != 1 || vs[0].Code != CodeRefs || vs[0].Step != -1 {
		t.Errorf("step count mismatch: %v", vs)
	}

	// A plan move must pair with a StepMove carrying a destination.
	move := &core.Option{Move: &core.MoveSpec{Kind: cost.Broadcast},
		Inputs: []*core.Option{get}, Dist: core.Replicated()}
	vs = Check(&core.Plan{Root: move},
		&dsql.Plan{Steps: []dsql.Step{ret, ret}}, shell)
	if len(vs) != 1 || vs[0].Code != CodeRefs || vs[0].Step != 0 {
		t.Errorf("misaligned move step: %v", vs)
	}

	// The final step must be a Return step.
	vs = Check(&core.Plan{Root: get},
		&dsql.Plan{Steps: []dsql.Step{{Kind: dsql.StepMove, Dest: "T", SQL: "SELECT 1 AS c1"}}}, shell)
	if len(vs) != 1 || vs[0].Code != CodeRefs {
		t.Errorf("non-return final step: %v", vs)
	}
}

// TestCutMovesShared pins the shared-subtree rule: a move referenced from
// two parents is one DSQL step, not two.
func TestCutMovesShared(t *testing.T) {
	get := getOption("nation")
	move := &core.Option{Move: &core.MoveSpec{Kind: cost.Broadcast},
		Inputs: []*core.Option{get}}
	root := &core.Option{Op: &algebra.UnionAll{}, Inputs: []*core.Option{move, move}}
	if moves := cutMoves(root); len(moves) != 1 {
		t.Errorf("shared move emitted %d times", len(moves))
	}
}

// TestReparseNonSelect pins that a step whose SQL parses to something
// other than a SELECT is a reparse violation, not a crash.
func TestReparseNonSelect(t *testing.T) {
	pi := newPlanInterp()
	if _, ok := reparse(pi, "CREATE TABLE t (a BIGINT)"); ok {
		t.Fatal("CREATE TABLE accepted as a step statement")
	}
	if len(pi.vs) != 1 || pi.vs[0].Code != CodeReparse {
		t.Fatalf("violations = %v", pi.vs)
	}
	if !strings.Contains(pi.vs[0].Detail, "not a SELECT") {
		t.Errorf("detail = %s", pi.vs[0].Detail)
	}
}

// TestCompareFragmentOrder walks every mismatch branch of the per-step
// comparison in its fixed order: refs, schema, lineage, nullability,
// distribution, predicates — and confirms the checks stop at the first
// disagreement.
func TestCompareFragmentOrder(t *testing.T) {
	mkRel := func() *absRel {
		return &absRel{
			dist: absDist{Kind: core.DistHash, Cols: algebra.NewColSet(1)},
			cols: []absCol{
				{ID: 1, Type: types.KindInt, Origins: map[string]struct{}{"t.a": {}}},
				{ID: 2, Type: types.KindFloat, Nullable: true, Origins: map[string]struct{}{"t.b": {}}},
			},
		}
	}
	mkAcc := func(tables, temps []string, preds ...string) *fragAcc {
		a := newFragAcc()
		for _, tb := range tables {
			a.tables[tb] = struct{}{}
		}
		for _, tp := range temps {
			a.temps[tp] = struct{}{}
		}
		a.preds = preds
		return a
	}
	baseAcc := func() *fragAcc { return mkAcc([]string{"lineitem"}, []string{"TEMP_1"}, "(c1 = 1)") }

	run := func(where core.DistKind, pr, sr *absRel, pa, sa *fragAcc) (planverify.Code, bool) {
		pi := newPlanInterp()
		clean := compareFragment(pi, where, pr, pa, sr, sa)
		if clean {
			return "", true
		}
		if len(pi.vs) != 1 {
			t.Fatalf("expected exactly one violation, got %v", pi.vs)
		}
		return pi.vs[0].Code, false
	}

	// Clean baseline.
	if code, clean := run(core.DistHash, mkRel(), mkRel(), baseAcc(), baseAcc()); !clean {
		t.Fatalf("clean fragment rejected: %s", code)
	}

	// Base table set differs.
	if code, _ := run(core.DistHash, mkRel(), mkRel(),
		baseAcc(), mkAcc([]string{"orders"}, []string{"TEMP_1"}, "(c1 = 1)")); code != CodeRefs {
		t.Errorf("table diff code = %s", code)
	}
	// Temp set differs.
	if code, _ := run(core.DistHash, mkRel(), mkRel(),
		baseAcc(), mkAcc([]string{"lineitem"}, nil, "(c1 = 1)")); code != CodeRefs {
		t.Errorf("temp diff code = %s", code)
	}
	// Column count differs.
	short := mkRel()
	short.cols = short.cols[:1]
	if code, _ := run(core.DistHash, mkRel(), short, baseAcc(), baseAcc()); code != CodeSchema {
		t.Errorf("arity diff code = %s", code)
	}
	// Column identity differs.
	renamed := mkRel()
	renamed.cols[1].ID = 9
	if code, _ := run(core.DistHash, mkRel(), renamed, baseAcc(), baseAcc()); code != CodeSchema {
		t.Errorf("identity diff code = %s", code)
	}
	// Column type differs.
	retyped := mkRel()
	retyped.cols[0].Type = types.KindString
	if code, _ := run(core.DistHash, mkRel(), retyped, baseAcc(), baseAcc()); code != CodeSchema {
		t.Errorf("type diff code = %s", code)
	}
	// A NULL-typed side is compatible with anything (bare NULL literal).
	nullTyped := mkRel()
	nullTyped.cols[0].Type = types.KindNull
	if code, clean := run(core.DistHash, mkRel(), nullTyped, baseAcc(), baseAcc()); !clean {
		t.Errorf("NULL-typed column rejected: %s", code)
	}
	// Lineage differs (same names count, different member).
	relabeled := mkRel()
	relabeled.cols[0].Origins = map[string]struct{}{"t.z": {}}
	if code, _ := run(core.DistHash, mkRel(), relabeled, baseAcc(), baseAcc()); code != CodeLineage {
		t.Errorf("lineage diff code = %s", code)
	}
	// Nullability differs.
	nn := mkRel()
	nn.cols[1].Nullable = false
	if code, _ := run(core.DistHash, mkRel(), nn, baseAcc(), baseAcc()); code != CodeNullability {
		t.Errorf("nullability diff code = %s", code)
	}
	// Recorded execution placement disagrees with the derived one; an
	// out-of-range kind exercises the fallback name.
	if code, _ := run(core.DistKind(9), mkRel(), mkRel(), baseAcc(), baseAcc()); code != CodeDistribution {
		t.Errorf("where diff code = %s", code)
	}
	// Plan and SQL derive different hash classes.
	otherClass := mkRel()
	otherClass.dist.Cols = algebra.NewColSet(2)
	if code, _ := run(core.DistHash, mkRel(), otherClass, baseAcc(), baseAcc()); code != CodeDistribution {
		t.Errorf("class diff code = %s", code)
	}
	// Predicate multisets differ.
	if code, _ := run(core.DistHash, mkRel(), mkRel(),
		baseAcc(), mkAcc([]string{"lineitem"}, []string{"TEMP_1"}, "(c1 = 2)")); code != CodePredicate {
		t.Errorf("predicate diff code = %s", code)
	}
	// Same predicates, different order: the multiset comparison must not
	// care about conjunct order.
	pa := mkAcc([]string{"lineitem"}, nil, "(c1 = 1)", "(c2 = 2)")
	sa := mkAcc([]string{"lineitem"}, nil, "(c2 = 2)", "(c1 = 1)")
	if code, clean := run(core.DistHash, mkRel(), mkRel(), pa, sa); !clean {
		t.Errorf("order-insensitive predicates rejected: %s", code)
	}
}

// TestMoveStepBindFailure pins the bind-error path of a move step: SQL
// that parses but references an unknown base table is a refs violation.
func TestMoveStepBindFailure(t *testing.T) {
	pi, in := seeded(hashRel(1))
	pi.rels[in].cols[0].Origins = map[string]struct{}{"lineitem.l_orderkey": {}}
	mo := &core.Option{Move: &core.MoveSpec{Kind: cost.Broadcast},
		Inputs: []*core.Option{in}, Dist: core.Replicated()}
	si := &sqlInterp{shell: fuzzShell(), temps: map[string]*absRel{},
		slotKinds: map[int]types.Kind{}}
	checkMoveStep(pi, si, dsql.Step{Kind: dsql.StepMove, Dest: "T",
		SQL: "SELECT T1.[no_such_col] AS c1 FROM [dbo].[ghost] AS T1"}, mo)
	if len(pi.vs) != 1 || pi.vs[0].Code != CodeRefs {
		t.Fatalf("violations = %v", pi.vs)
	}
	if !strings.Contains(pi.vs[0].Detail, "re-bind") {
		t.Errorf("detail = %s", pi.vs[0].Detail)
	}
}

package difftest

// Plan-cache metamorphic harness. The oracle is TLP-style agreement
// between independent derivations of the same answer:
//
//   cold    — compile + execute with no cache installed;
//   miss    — first compile through the cache (populates it);
//   hit     — second compile, served from the cache and re-bound;
//   serial  — ExecuteSerial on a single in-memory instance.
//
// cold, miss and hit must be row-identical (the cache is a pure
// memoization layer), and all three must match the serial reference up to
// row order and float summation error. Any divergence means a cached
// template was re-bound into the wrong plan — the one bug class a plan
// cache must never have.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"pdwqo"
	"pdwqo/internal/normalize"
	"pdwqo/internal/types"
)

// cacheCapacity is roomy enough that no corpus sweep ever evicts: an
// eviction-induced recompile would silently weaken the hit assertions.
const cacheCapacity = 4096

// CacheDiff runs the cold/miss/hit/serial oracle for one case. It
// installs (and removes) a plan cache on db; parallelism is set to par
// for the distributed executions.
func CacheDiff(db *pdwqo.DB, c Case, par int) error {
	opts := pdwqo.Options{Parallelism: par}
	db.SetParallelism(par)

	// Cold reference: no cache installed.
	db.SetPlanCache(-1)
	coldPlan, err := db.Optimize(c.SQL, opts)
	if err != nil {
		return fmt.Errorf("%s: cold optimize: %w", c.Name, err)
	}
	if coldPlan.CacheStatus != "" {
		return fmt.Errorf("%s: cold plan has CacheStatus %q, want empty", c.Name, coldPlan.CacheStatus)
	}
	cold, err := db.ExecutePlan(coldPlan)
	if err != nil {
		return fmt.Errorf("%s: cold execute: %w", c.Name, err)
	}

	db.SetPlanCache(cacheCapacity)
	defer db.SetPlanCache(-1)

	missPlan, err := db.Optimize(c.SQL, opts)
	if err != nil {
		return fmt.Errorf("%s: miss optimize: %w", c.Name, err)
	}
	if missPlan.CacheStatus != "miss" {
		return fmt.Errorf("%s: first cached optimize has CacheStatus %q, want miss", c.Name, missPlan.CacheStatus)
	}
	miss, err := db.ExecutePlan(missPlan)
	if err != nil {
		return fmt.Errorf("%s: miss execute: %w", c.Name, err)
	}

	hitPlan, err := db.Optimize(c.SQL, opts)
	if err != nil {
		return fmt.Errorf("%s: hit optimize: %w", c.Name, err)
	}
	if hitPlan.CacheStatus != "hit" {
		return fmt.Errorf("%s: second cached optimize has CacheStatus %q, want hit", c.Name, hitPlan.CacheStatus)
	}
	hit, err := db.ExecutePlan(hitPlan)
	if err != nil {
		return fmt.Errorf("%s: hit execute: %w", c.Name, err)
	}

	// miss and hit instantiate the same template: byte-identical rows.
	if err := diffResults(c.Name+" (miss vs hit)", par, miss, hit); err != nil {
		return err
	}
	// cold may have compiled a (legitimately) different plan — slot
	// markers inhibit some constant dedup — so compare relations, not
	// plans: same rows in the same order.
	if err := diffResults(c.Name+" (cold vs hit)", par, cold, hit); err != nil {
		return err
	}
	return serialAgrees(db, c, hit)
}

// CacheInvalidation certifies the epoch contract for one case: a bumped
// catalog/statistics epoch makes every cached plan unreachable, the next
// compile is a fresh miss, and — the catalog being otherwise unchanged —
// its result matches what the stale template produced.
func CacheInvalidation(db *pdwqo.DB, c Case, par int) error {
	opts := pdwqo.Options{Parallelism: par}
	db.SetParallelism(par)
	db.SetPlanCache(cacheCapacity)
	defer db.SetPlanCache(-1)

	if _, err := db.Optimize(c.SQL, opts); err != nil {
		return fmt.Errorf("%s: warm optimize: %w", c.Name, err)
	}
	hitPlan, err := db.Optimize(c.SQL, opts)
	if err != nil {
		return fmt.Errorf("%s: hit optimize: %w", c.Name, err)
	}
	if hitPlan.CacheStatus != "hit" {
		return fmt.Errorf("%s: pre-bump optimize has CacheStatus %q, want hit", c.Name, hitPlan.CacheStatus)
	}
	hit, err := db.ExecutePlan(hitPlan)
	if err != nil {
		return fmt.Errorf("%s: hit execute: %w", c.Name, err)
	}

	before := db.PlanCache().Metrics()
	db.Shell().BumpEpoch()

	postPlan, err := db.Optimize(c.SQL, opts)
	if err != nil {
		return fmt.Errorf("%s: post-bump optimize: %w", c.Name, err)
	}
	if postPlan.CacheStatus != "miss" {
		return fmt.Errorf("%s: post-bump optimize has CacheStatus %q, want miss (stale plan served?)", c.Name, postPlan.CacheStatus)
	}
	after := db.PlanCache().Metrics()
	if after.Invalidations <= before.Invalidations {
		return fmt.Errorf("%s: epoch bump invalidated nothing (before %d, after %d)",
			c.Name, before.Invalidations, after.Invalidations)
	}
	post, err := db.ExecutePlan(postPlan)
	if err != nil {
		return fmt.Errorf("%s: post-bump execute: %w", c.Name, err)
	}
	return diffResults(c.Name+" (pre vs post epoch bump)", par, hit, post)
}

// CacheChaos certifies that a cache-served plan is exactly as robust as a
// cold one: the re-bound template executed under a seeded random fault
// plan either recovers to the fault-free answer or fails with a clean
// typed StepError, and never leaks temp tables.
func CacheChaos(db *pdwqo.DB, c Case, par int, seed int64, maxRetries int) error {
	a := db.Appliance()
	prevBackoff := a.RetryBackoff
	db.SetPlanCache(cacheCapacity)
	defer func() {
		db.SetPlanCache(-1)
		db.SetFaultPlan(nil)
		db.SetResilience(0, 0)
		a.RetryBackoff = prevBackoff
	}()
	db.SetFaultPlan(nil)
	db.SetResilience(0, 0)
	db.SetParallelism(par)

	if _, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: par}); err != nil {
		return fmt.Errorf("%s: warm optimize: %w", c.Name, err)
	}
	plan, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: par})
	if err != nil {
		return fmt.Errorf("%s: hit optimize: %w", c.Name, err)
	}
	if plan.CacheStatus != "hit" {
		return fmt.Errorf("%s: chaos plan has CacheStatus %q, want hit", c.Name, plan.CacheStatus)
	}
	ref, err := db.ExecutePlan(plan)
	if err != nil {
		return fmt.Errorf("%s: fault-free reference execute: %w", c.Name, err)
	}

	faults := pdwqo.RandomFaultPlan(seed, len(plan.DSQL.Steps), a.Shell.Topology.ComputeNodes)
	db.SetFaultPlan(faults)
	db.SetResilience(maxRetries, 0)
	a.RetryBackoff = 50 * time.Microsecond

	res, err := runRecovered(db, plan)
	if leaks := leakedTables(db); len(leaks) > 0 {
		return fmt.Errorf("%s: leaked tables after cached chaos run (seed %d): %v", c.Name, seed, leaks)
	}
	if err != nil {
		if !isStepError(err) {
			return fmt.Errorf("%s: cached chaos failure (seed %d) is not a typed StepError: %w", c.Name, seed, err)
		}
		return nil
	}
	return diffResults(c.Name+" (cached chaos)", par, ref, res)
}

// ParamVariants derives n same-shape variants of c by perturbing every
// parameterized literal slot (structural literals — TOP counts, DATEADD
// arguments, ORDER BY ordinals — are left alone, exactly as the cache
// key does). Deterministic under seed. Each variant keeps a distinct
// value per slot so the slot pattern, and hence the shape fingerprint,
// is preserved; running them against one warm cache is the aliasing
// oracle: a hit re-bound to the wrong constants diverges from the
// variant's own serial reference.
func ParamVariants(c Case, n int, seed int64) ([]Case, error) {
	pq, err := normalize.Parameterize(c.SQL)
	if err != nil {
		return nil, fmt.Errorf("%s: parameterize: %w", c.Name, err)
	}
	if len(pq.Lits) == 0 {
		return nil, nil
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]Case, 0, n)
	for i := 0; i < n; i++ {
		texts := make([]string, len(pq.Lits))
		used := map[string]bool{}
		for slot, l := range pq.Lits {
			for {
				t := perturbLiteral(r, l)
				if !used[l.Kind.String()+"\x00"+t] {
					used[l.Kind.String()+"\x00"+t] = true
					texts[slot] = t
					break
				}
			}
		}
		sql, err := pq.Splice(texts)
		if err != nil {
			return nil, fmt.Errorf("%s: splice: %w", c.Name, err)
		}
		out = append(out, Case{Name: fmt.Sprintf("%s-var%02d", c.Name, i), SQL: sql})
	}
	return out, nil
}

// perturbLiteral renders a fresh SQL literal of the same kind as l. Dates
// stay parseable dates (the binder coerces them in comparison context);
// other strings draw from a pool that keeps the text a valid literal.
func perturbLiteral(r *rand.Rand, l normalize.Literal) string {
	switch l.Kind {
	case normalize.LitInt:
		return strconv.FormatInt(int64(r.Intn(5000)), 10)
	case normalize.LitFloat:
		v := l.Val.Float()
		if v == 0 {
			v = 1
		}
		return strconv.FormatFloat(math.Abs(v)*(0.1+1.8*r.Float64()), 'g', -1, 64)
	default:
		if _, err := types.ParseDate(l.Val.Str()); err == nil {
			return fmt.Sprintf("'%d-%02d-01'", 1992+r.Intn(7), 1+r.Intn(12))
		}
		pool := []string{"BUILDING", "MACHINERY", "AIR", "SHIP", "1-URGENT", "R", "O", "ASIA", "EUROPE", "CANADA"}
		return "'" + pool[r.Intn(len(pool))] + "'"
	}
}

// serialAgrees compares a distributed result against ExecuteSerial, the
// engine's ground truth: sorted canonical rows with a relative float
// tolerance (distributed plans sum in a different order). TOP queries
// are tie-nondeterministic across engines, so only the row count is
// compared for them.
func serialAgrees(db *pdwqo.DB, c Case, dist *pdwqo.Result) error {
	serial, err := db.ExecuteSerial(c.SQL)
	if err != nil {
		return fmt.Errorf("%s: serial reference: %w", c.Name, err)
	}
	if hasTop(c.SQL) {
		if len(dist.Rows) != len(serial.Rows) {
			return fmt.Errorf("%s: TOP row count diverged: distributed %d, serial %d",
				c.Name, len(dist.Rows), len(serial.Rows))
		}
		return nil
	}
	d, s := sortedCanon(dist), sortedCanon(serial)
	if len(d) != len(s) {
		return fmt.Errorf("%s: row count diverged from serial: %d vs %d", c.Name, len(d), len(s))
	}
	for i := range d {
		if !rowsEquivalent(d[i], s[i]) {
			return fmt.Errorf("%s: row diverged from serial reference:\n  distributed: %s\n  serial:      %s",
				c.Name, d[i], s[i])
		}
	}
	return nil
}

func hasTop(sql string) bool {
	return strings.Contains(strings.ToUpper(sql), "TOP ")
}

func sortedCanon(r *pdwqo.Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = canonRow(row)
	}
	sort.Strings(out)
	return out
}

// rowsEquivalent compares two canonical rows field-wise with a relative
// float tolerance, mirroring the root package's serial-agreement check.
func rowsEquivalent(a, b string) bool {
	if a == b {
		return true
	}
	af, bf := strings.Split(a, "|"), strings.Split(b, "|")
	if len(af) != len(bf) {
		return false
	}
	for i := range af {
		if af[i] == bf[i] {
			continue
		}
		x, errX := strconv.ParseFloat(af[i], 64)
		y, errY := strconv.ParseFloat(bf[i], 64)
		if errX != nil || errY != nil {
			return false
		}
		diff := math.Abs(x - y)
		scale := math.Max(math.Abs(x), math.Abs(y))
		if diff > 1e-6*scale+1e-9 {
			return false
		}
	}
	return true
}

func isStepError(err error) bool {
	var se *pdwqo.StepError
	return errors.As(err, &se)
}

// Package stats implements the statistics subsystem behind the PDW "shell
// database" (paper §2.2): per-column equi-depth histograms with NDV and
// null counts, computed locally on each compute node and merged into global
// statistics on the control node, plus the cardinality-estimation primitives
// the serial optimizer uses to annotate MEMO groups.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pdwqo/internal/types"
)

// DefaultBuckets is the histogram resolution used when building statistics.
const DefaultBuckets = 32

// Bucket is one equi-depth histogram step. UpperBound is inclusive; a
// bucket covers (previous bucket's UpperBound, UpperBound].
type Bucket struct {
	UpperBound types.Value
	RowCount   float64 // non-null rows in the bucket
	NDV        float64 // distinct values in the bucket
}

// Column holds the statistics for a single column.
type Column struct {
	RowCount  float64 // total rows in the table (incl. nulls in this column)
	NullCount float64
	NDV       float64
	Min, Max  types.Value
	AvgWidth  float64
	Buckets   []Bucket
}

// Table holds statistics for a table: total cardinality plus per-column
// detail. AvgRowWidth feeds the cost model's w parameter.
type Table struct {
	RowCount    float64
	AvgRowWidth float64
	Columns     map[string]*Column
}

// NewTable returns an empty statistics object.
func NewTable() *Table {
	return &Table{Columns: make(map[string]*Column)}
}

// Column returns stats for the named (lower-cased) column, or nil.
func (t *Table) Column(name string) *Column {
	if t == nil {
		return nil
	}
	return t.Columns[strings.ToLower(name)]
}

// BuildColumn computes full statistics for one column's values. All
// values come from one column and share a kind, so raw ordering is
// well-defined.
//
//pdwlint:allow comparechecked
func BuildColumn(values []types.Value) *Column {
	c := &Column{RowCount: float64(len(values))}
	nonNull := make([]types.Value, 0, len(values))
	width := 0.0
	for _, v := range values {
		if v.IsNull() {
			c.NullCount++
			continue
		}
		width += float64(v.Width())
		nonNull = append(nonNull, v)
	}
	if len(nonNull) == 0 {
		return c
	}
	c.AvgWidth = width / float64(len(nonNull))
	sort.Slice(nonNull, func(i, j int) bool { return types.Compare(nonNull[i], nonNull[j]) < 0 })
	c.Min, c.Max = nonNull[0], nonNull[len(nonNull)-1]

	// Equi-depth buckets over the sorted values; bucket boundaries never
	// split runs of equal values, so per-bucket NDV is exact.
	target := len(nonNull) / DefaultBuckets
	if target < 1 {
		target = 1
	}
	var cur Bucket
	flush := func() {
		if cur.RowCount > 0 {
			c.Buckets = append(c.Buckets, cur)
			cur = Bucket{}
		}
	}
	i := 0
	for i < len(nonNull) {
		// Extend over the full run of equal values.
		j := i + 1
		for j < len(nonNull) && types.Compare(nonNull[j], nonNull[i]) == 0 {
			j++
		}
		cur.RowCount += float64(j - i)
		cur.NDV++
		cur.UpperBound = nonNull[i]
		c.NDV++
		if int(cur.RowCount) >= target && len(c.Buckets) < DefaultBuckets-1 {
			flush()
		}
		i = j
	}
	flush()
	return c
}

// BuildTable computes statistics for a table given column-major values.
// columns maps column name to the full value vector; all vectors must have
// equal length.
func BuildTable(columns map[string][]types.Value) (*Table, error) {
	t := NewTable()
	n := -1
	for name, vals := range columns {
		if n >= 0 && len(vals) != n {
			return nil, fmt.Errorf("stats: column %q has %d rows, want %d", name, len(vals), n)
		}
		n = len(vals)
		t.Columns[strings.ToLower(name)] = BuildColumn(vals)
	}
	if n < 0 {
		n = 0
	}
	t.RowCount = float64(n)
	for _, c := range t.Columns {
		frac := 1.0
		if t.RowCount > 0 {
			frac = (c.RowCount - c.NullCount) / t.RowCount
		}
		t.AvgRowWidth += c.AvgWidth * frac
	}
	return t, nil
}

// MergeTables merges per-node local statistics into global statistics, the
// paper's §2.2 local→global derivation. hashColumn names the column the
// table is hash-partitioned on ("" for replicated/unknown): distinct values
// of the partitioning column never repeat across nodes, so its NDV adds
// exactly; other columns use a containment-capped union estimate.
func MergeTables(locals []*Table, hashColumn string) *Table {
	g := NewTable()
	if len(locals) == 0 {
		return g
	}
	hashColumn = strings.ToLower(hashColumn)
	for _, l := range locals {
		g.RowCount += l.RowCount
	}
	names := map[string]bool{}
	for _, l := range locals {
		for n := range l.Columns {
			names[n] = true
		}
	}
	for name := range names {
		cols := make([]*Column, 0, len(locals))
		for _, l := range locals {
			if c, ok := l.Columns[name]; ok {
				cols = append(cols, c)
			}
		}
		g.Columns[name] = mergeColumns(cols, name == hashColumn)
	}
	for _, c := range g.Columns {
		frac := 1.0
		if g.RowCount > 0 {
			frac = (c.RowCount - c.NullCount) / g.RowCount
		}
		g.AvgRowWidth += c.AvgWidth * frac
	}
	return g
}

// mergeColumns merges local column histograms into one global histogram by
// pooling bucket boundaries and re-bucketing counts. Every input histogram
// describes the same column, so the bounds share a kind.
//
//pdwlint:allow comparechecked
func mergeColumns(cols []*Column, disjointNDV bool) *Column {
	g := &Column{}
	widthWeight := 0.0
	for _, c := range cols {
		g.RowCount += c.RowCount
		g.NullCount += c.NullCount
		nn := c.RowCount - c.NullCount
		g.AvgWidth += c.AvgWidth * nn
		widthWeight += nn
		if c.Min.IsNull() {
			continue
		}
		if g.Min.IsNull() || types.Compare(c.Min, g.Min) < 0 {
			g.Min = c.Min
		}
		if g.Max.IsNull() || types.Compare(c.Max, g.Max) > 0 {
			g.Max = c.Max
		}
	}
	if widthWeight > 0 {
		g.AvgWidth /= widthWeight
	}

	// NDV merge.
	sumNDV, maxNDV := 0.0, 0.0
	localN, localD, nLocals := 0.0, 0.0, 0.0
	for _, c := range cols {
		sumNDV += c.NDV
		maxNDV = math.Max(maxNDV, c.NDV)
		if nn := c.RowCount - c.NullCount; nn > 0 {
			localN += nn
			localD += c.NDV
			nLocals++
		}
	}
	if disjointNDV {
		g.NDV = sumNDV
	} else if nLocals > 0 {
		// Under the uniformity assumption (paper §3.3.1), each node's rows
		// are a uniform sample of the global domain: invert the Cardenas
		// formula E[distinct] = D·(1-(1-1/D)^n) to recover the global NDV
		// from the average local observation.
		g.NDV = invertExpectedDistinct(localD/nLocals, localN/nLocals, maxNDV, sumNDV)
		g.NDV = math.Min(g.NDV, g.RowCount-g.NullCount)
	}

	// Histogram merge: collect all boundaries, then apportion each local
	// bucket's rows across the merged steps by linear interpolation.
	var bounds []types.Value
	for _, c := range cols {
		for _, b := range c.Buckets {
			bounds = append(bounds, b.UpperBound)
		}
	}
	if len(bounds) == 0 {
		return g
	}
	sort.Slice(bounds, func(i, j int) bool { return types.Compare(bounds[i], bounds[j]) < 0 })
	dedup := bounds[:1]
	for _, b := range bounds[1:] {
		if types.Compare(b, dedup[len(dedup)-1]) != 0 {
			dedup = append(dedup, b)
		}
	}
	// Thin to at most DefaultBuckets boundaries, always keeping the last.
	step := float64(len(dedup)) / float64(DefaultBuckets)
	if step < 1 {
		step = 1
	}
	var merged []Bucket
	for f := step; ; f += step {
		i := int(f) - 1
		if i >= len(dedup)-1 {
			break
		}
		merged = append(merged, Bucket{UpperBound: dedup[i]})
	}
	merged = append(merged, Bucket{UpperBound: dedup[len(dedup)-1]})

	ndvScale := 1.0
	if sumNDV > 0 {
		ndvScale = g.NDV / sumNDV
	}
	for _, c := range cols {
		lo := c.Min
		for _, b := range c.Buckets {
			spreadBucket(merged, lo, b, ndvScale)
			lo = b.UpperBound
		}
	}
	g.Buckets = merged
	return g
}

// spreadBucket apportions a local bucket (covering (lo, b.UpperBound]) into
// the merged steps it overlaps, splitting rows evenly across those steps.
// All bounds belong to one column's histograms and share a kind.
//
//pdwlint:allow comparechecked
func spreadBucket(merged []Bucket, lo types.Value, b Bucket, ndvScale float64) {
	var targets []int
	prev := types.Null
	for i := range merged {
		ub := merged[i].UpperBound
		// Overlap test between (lo, b.UpperBound] and (prev, ub].
		if types.Compare(ub, lo) > 0 && (prev.IsNull() || types.Compare(prev, b.UpperBound) < 0) {
			targets = append(targets, i)
		}
		if types.Compare(ub, b.UpperBound) >= 0 {
			break
		}
		prev = ub
	}
	if len(targets) == 0 {
		targets = append(targets, len(merged)-1)
	}
	share := b.RowCount / float64(len(targets))
	dshare := b.NDV * ndvScale / float64(len(targets))
	for _, i := range targets {
		merged[i].RowCount += share
		merged[i].NDV += dshare
	}
}

// ExpectedDistinct is the Cardenas approximation: the expected number of
// distinct values observed when drawing n rows uniformly from a domain of
// d values.
func ExpectedDistinct(d, n float64) float64 {
	if d <= 0 || n <= 0 {
		return 0
	}
	return d * (1 - math.Pow(1-1/d, n))
}

// invertExpectedDistinct solves ExpectedDistinct(D, n) = observed for D by
// binary search over [lo, hi]. When the observation saturates (every local
// row distinct), the upper bound is returned.
func invertExpectedDistinct(observed, n, lo, hi float64) float64 {
	if hi <= lo {
		return math.Max(lo, observed)
	}
	if observed >= n*0.999 {
		// Local values were (nearly) all distinct: no overlap information;
		// assume the locals are disjoint.
		return hi
	}
	if ExpectedDistinct(lo, n) >= observed {
		return lo
	}
	for i := 0; i < 64 && hi-lo > 0.5; i++ {
		mid := (lo + hi) / 2
		if ExpectedDistinct(mid, n) < observed {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Package server is the appliance's long-lived front end: a TCP wire
// protocol over pdwqo.DB that serves many concurrent client sessions the
// way the paper's control node does — each session compiles against the
// shared plan cache, prepared statements re-bind constants into cached
// parameterized templates without recompiling, an admission queue bounds
// concurrent execution with typed queue-full/timeout rejections, and
// cancellation is threaded from the connection's context through
// DB.ExecutePlanContext into per-step engine execution.
//
// The wire format is deliberately small: length-prefixed frames, one
// opcode byte, big-endian fixed-width integers, and length-prefixed
// strings. A conversation is
//
//	client                         server
//	Hello(magic, version)      →
//	                           ←   HelloAck(version, session, epoch)
//	Query(sql)                 →
//	                           ←   RowHeader(cols)
//	                           ←   RowBatch(rows)...
//	                           ←   Done(epoch, rows, cacheStatus)
//	Prepare(sql)               →
//	                           ←   PrepareAck(stmt, epoch, paramKinds)
//	ExecStmt(stmt, args)       →
//	                           ←   RowHeader / RowBatch... / Done
//	Cancel                     →   (cancels the in-flight query)
//	                           ←   Error(code, msg)   [typed failure]
//	Bye                        →   (graceful close)
//
// Every failure surfaces as an Error frame carrying a stable Code, so
// clients can distinguish protocol violations, admission rejections,
// cancellation, and execution errors without parsing messages.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Magic opens every handshake; a connection that doesn't lead with it
	// is not speaking this protocol.
	Magic = "PDW1"
	// Version is the protocol version this package speaks.
	Version = 1
	// MaxFrame bounds one frame's encoded size (length prefix excluded); a
	// larger announced length is a protocol error, so a hostile or corrupt
	// length prefix can never make the server allocate unboundedly.
	MaxFrame = 8 << 20
)

// Op identifies a frame's type.
type Op uint8

// Client→server opcodes.
const (
	OpHello Op = 0x01 + iota
	OpQuery
	OpPrepare
	OpExecStmt
	OpCloseStmt
	OpCancel
	OpBye
)

// Server→client opcodes.
const (
	OpHelloAck Op = 0x81 + iota
	OpPrepareAck
	OpRowHeader
	OpRowBatch
	OpDone
	OpError
)

// String names the opcode for errors and traces.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "Hello"
	case OpQuery:
		return "Query"
	case OpPrepare:
		return "Prepare"
	case OpExecStmt:
		return "ExecStmt"
	case OpCloseStmt:
		return "CloseStmt"
	case OpCancel:
		return "Cancel"
	case OpBye:
		return "Bye"
	case OpHelloAck:
		return "HelloAck"
	case OpPrepareAck:
		return "PrepareAck"
	case OpRowHeader:
		return "RowHeader"
	case OpRowBatch:
		return "RowBatch"
	case OpDone:
		return "Done"
	case OpError:
		return "Error"
	default:
		return fmt.Sprintf("Op(0x%02x)", uint8(o))
	}
}

// Code classifies a typed wire error.
type Code uint16

// Error codes.
const (
	// CodeProtocol is a malformed frame: bad length, truncated payload,
	// unknown opcode, or a field that does not decode.
	CodeProtocol Code = 1 + iota
	// CodeHandshake is a failed handshake (bad magic or version, or a
	// non-Hello first frame).
	CodeHandshake
	// CodeBusy rejects a query arriving while the session already has one
	// in flight; the protocol is one-query-at-a-time per session.
	CodeBusy
	// CodeQueueFull is the admission controller shedding load: every
	// execution slot is taken and the wait queue is at capacity.
	CodeQueueFull
	// CodeQueueTimeout is an admission wait that exceeded the configured
	// queue timeout before a slot freed up.
	CodeQueueTimeout
	// CodeCancelled is a query stopped by a client Cancel frame or the
	// connection dropping mid-query.
	CodeCancelled
	// CodeShutdown is a query or session terminated by server shutdown.
	CodeShutdown
	// CodeStmtNotFound is an ExecStmt or CloseStmt naming an unknown
	// prepared-statement ID.
	CodeStmtNotFound
	// CodeBadParams is an ExecStmt whose argument count or kinds do not
	// match the prepared statement's literal slots.
	CodeBadParams
	// CodeTooManyStmts rejects a Prepare beyond the per-session statement
	// cap.
	CodeTooManyStmts
	// CodeExec is a compilation or execution failure; the message carries
	// the underlying error text.
	CodeExec
)

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeProtocol:
		return "protocol"
	case CodeHandshake:
		return "handshake"
	case CodeBusy:
		return "busy"
	case CodeQueueFull:
		return "queue-full"
	case CodeQueueTimeout:
		return "queue-timeout"
	case CodeCancelled:
		return "cancelled"
	case CodeShutdown:
		return "shutdown"
	case CodeStmtNotFound:
		return "stmt-not-found"
	case CodeBadParams:
		return "bad-params"
	case CodeTooManyStmts:
		return "too-many-stmts"
	case CodeExec:
		return "exec"
	default:
		return fmt.Sprintf("code(%d)", uint16(c))
	}
}

// Error is the typed failure both sides of the wire exchange: the server
// encodes it into Error frames, the client decodes frames back into it,
// and in-process callers (admission control, the session loop) pass it
// around directly.
type Error struct {
	Code Code
	Msg  string
}

// Error renders "server: <code>: <msg>".
func (e *Error) Error() string {
	if e.Msg == "" {
		return "server: " + e.Code.String()
	}
	return "server: " + e.Code.String() + ": " + e.Msg
}

// errf builds a typed error.
func errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the wire code from any error chain (0 when err carries
// none), so callers can switch on typed failures without unwrapping.
func CodeOf(err error) Code {
	for err != nil {
		if e, ok := err.(*Error); ok {
			return e.Code
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return 0
		}
		err = u.Unwrap()
	}
	return 0
}

// --- frame I/O ---

// WriteFrame writes one frame: uint32 big-endian length (opcode byte +
// payload), then the opcode, then the payload.
func WriteFrame(w io.Writer, op Op, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = byte(op)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r, enforcing the MaxFrame bound. A
// malformed frame returns a *Error with CodeProtocol; a clean EOF at a
// frame boundary returns io.EOF.
func ReadFrame(r io.Reader) (Op, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, errf(CodeProtocol, "truncated frame header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, errf(CodeProtocol, "empty frame")
	}
	if n > MaxFrame {
		return 0, nil, errf(CodeProtocol, "frame of %d bytes exceeds the %d-byte bound", n, MaxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, errf(CodeProtocol, "truncated frame body: %v", err)
	}
	return Op(buf[0]), buf[1:], nil
}

// --- payload encoding ---

// enc builds a frame payload.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec walks a frame payload; the first malformed field poisons the
// decoder, every later read returns zero values, and err() surfaces the
// typed protocol error. This keeps the per-opcode parsers linear with a
// single error check at the end — exactly what the wire fuzzer hammers.
type dec struct {
	b    []byte
	fail *Error
}

func (d *dec) bad(format string, args ...any) {
	if d.fail == nil {
		d.fail = errf(CodeProtocol, format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.fail != nil {
		return nil
	}
	if len(d.b) < n {
		d.bad("payload truncated: need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *dec) str() string {
	n := d.u32()
	if d.fail == nil && uint64(n) > uint64(len(d.b)) {
		d.bad("string of %d bytes overruns payload of %d", n, len(d.b))
	}
	return string(d.take(int(n)))
}

// done asserts the payload is fully consumed; trailing garbage is a
// protocol error (it means the two sides disagree about the layout).
func (d *dec) done() *Error {
	if d.fail == nil && len(d.b) > 0 {
		d.bad("%d trailing bytes after payload", len(d.b))
	}
	return d.fail
}

func (d *dec) err() *Error { return d.fail }

// Command pdwload drives concurrent sessions against a running pdwserver
// and reports latency percentiles, throughput, plan-cache hit rate, and
// typed-error counts.
//
// Usage:
//
//	pdwload [-addr 127.0.0.1:7420] [-sessions 100] [-queries 20]
//	        [-duration 0] [-prepared 0.5] [-seed 1]
//
// With -duration set, every session issues queries until the clock runs
// out; otherwise each issues -queries queries. -prepared is the fraction
// of sessions using prepared statements (re-binding constants into the
// server's cached plan templates) instead of ad-hoc text.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"pdwqo/internal/loadgen"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7420", "server address")
		sessions = flag.Int("sessions", 100, "concurrent sessions")
		queries  = flag.Int("queries", 20, "queries per session (ignored when -duration is set)")
		duration = flag.Duration("duration", 0, "run for a fixed time instead of a fixed query count")
		prepared = flag.Float64("prepared", 0.5, "fraction of sessions using prepared statements")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Addr:              *addr,
		Sessions:          *sessions,
		QueriesPerSession: *queries,
		Duration:          *duration,
		PreparedFraction:  *prepared,
		Seed:              *seed,
	}
	if *duration > 0 {
		cfg.QueriesPerSession = 0
	}
	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdwload:", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	if rep.DialFails > 0 {
		fmt.Fprintf(os.Stderr, "pdwload: %d sessions failed to connect\n", rep.DialFails)
		os.Exit(1)
	}
}

package difftest

import (
	"fmt"
	"testing"
	"time"

	"pdwqo"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/memoxml"
)

// openAppliance caches one DB per topology; the corpus sweep reuses them.
var appliances = map[int]*pdwqo.DB{}

func openAppliance(t testing.TB, nodes int) *pdwqo.DB {
	t.Helper()
	if db, ok := appliances[nodes]; ok {
		return db
	}
	db, err := pdwqo.OpenTPCH(0.001, nodes, 42)
	if err != nil {
		t.Fatal(err)
	}
	appliances[nodes] = db
	return db
}

// TestTPCHSerialVsParallel is the headline differential sweep: every
// adapted TPC-H query, on 1-, 2-, 4-, and 8-node topologies, must produce
// byte-identical plans (cost + DSQL text) and row-identical results under
// Parallelism=1 and Parallelism=8.
func TestTPCHSerialVsParallel(t *testing.T) {
	topologies := []int{1, 2, 4, 8}
	if testing.Short() {
		topologies = []int{4}
	}
	if raceEnabled {
		topologies = []int{8}
	}
	for _, nodes := range topologies {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes-%d", nodes), func(t *testing.T) {
			db := openAppliance(t, nodes)
			for _, c := range TPCHCases() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					if err := Diff(db, c, 8); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// TestFuzzSerialVsParallel runs the seeded random corpus through the same
// differential contract on the 4-node appliance.
func TestFuzzSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz corpus skipped in -short mode")
	}
	db := openAppliance(t, 4)
	for _, c := range FuzzCases(40, 20260805) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if err := Diff(db, c, 8); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestEnumerationDeterminism runs the PDW-side parallel enumerator 50
// times over the same exported MEMO (the widest join of the suite, q05)
// and asserts the cheapest plan is stable: identical cost bits and
// identical DSQL text on every run. The serial front half of the pipeline
// (parse → memo → XML) runs once; each iteration re-decodes the XML and
// re-enumerates under full parallelism, so any schedule-dependence in
// pruning or fresh-column allocation shows up here as a flaky diff.
func TestEnumerationDeterminism(t *testing.T) {
	db := openAppliance(t, 8)
	sql, ok := pdwqo.TPCHQuery("q05")
	if !ok {
		t.Fatal("q05 missing from the TPC-H suite")
	}
	runs := 50
	if testing.Short() || raceEnabled {
		runs = 10
	}
	ref, err := db.Optimize(sql, pdwqo.Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	refCost, refDSQL := ref.Cost(), ref.DSQL.String()
	shell := db.Shell()
	model := cost.NewModel(shell.Topology.ComputeNodes, cost.DefaultLambda())
	outCols := ref.Normalized.OutputCols()
	// The enumerator treats the decoded MEMO as read-only, so one decode
	// serves all runs.
	dec, err := memoxml.Decode(ref.MemoXML, shell)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		plan, err := core.New(dec, shell, model, core.Config{Parallelism: 8}).Optimize()
		if err != nil {
			t.Fatalf("run %d: enumerate: %v", i, err)
		}
		if plan.TotalCost != refCost {
			t.Fatalf("run %d: cost drifted: %v != %v", i, plan.TotalCost, refCost)
		}
		dp, err := dsql.Generate(plan, outCols)
		if err != nil {
			t.Fatalf("run %d: dsql: %v", i, err)
		}
		if d := dp.String(); d != refDSQL {
			t.Fatalf("run %d: DSQL drifted:\n%s", i, firstDiffLine(refDSQL, d))
		}
	}
}

// TestParallelSpeedup checks that the per-node fan-out actually overlaps
// work. Each dispatched node request carries a simulated control→compute
// round trip, so on an 8-node appliance the serial path pays ~8 latencies
// per step where the parallel path pays ~1; wall clock must improve even
// on a single-CPU host. The threshold is deliberately below the ~3×
// measured in bench_test.go to stay robust on loaded CI runners.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock assertions are meaningless under the race detector")
	}
	db, err := pdwqo.OpenTPCH(0.001, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	sql, _ := pdwqo.TPCHQuery("q12")
	plan, err := db.Optimize(sql, pdwqo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := db.Appliance()
	a.NodeLatency = 5 * time.Millisecond
	defer func() { a.NodeLatency = 0 }()

	measure := func(par int) time.Duration {
		best := time.Duration(1<<62 - 1)
		db.SetParallelism(par)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := db.ExecutePlan(plan); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial, parallel := measure(1), measure(8)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 1.7 {
		t.Errorf("parallel execution not overlapping latency: %.2fx speedup (serial %v, parallel %v)",
			speedup, serial, parallel)
	}
}

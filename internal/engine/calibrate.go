package engine

import (
	"math/rand"
	"time"

	"pdwqo/internal/catalog"
	"pdwqo/internal/cost"
	"pdwqo/internal/storage"
	"pdwqo/internal/types"
)

// Calibrate performs the paper's §3.3.3 "cost calibration" against this
// simulator: each DMS component (reader, hashing reader, network, writer,
// SQL bulk copy) is exercised in isolation over synthetic rows and its
// cost-per-byte constant λ is measured. The returned Lambda plugs into
// cost.NewModel so modeled costs are in (approximate) nanoseconds of
// simulator time.
//
// rows controls the calibration volume; a few hundred thousand rows give
// stable constants. The payload is CalibrateSeeded's default stream.
func Calibrate(rows int) cost.Lambda {
	return CalibrateSeeded(rows, 42)
}

// CalibrateSeeded is Calibrate over a reproducible synthetic payload:
// the row stream (key skew, float spread, string widths) is drawn from a
// generator seeded with seed, so two calibration runs on the same host
// exercise byte-identical workloads. The timings themselves still vary
// with machine load — only the workload is pinned.
func CalibrateSeeded(rows int, seed int64) cost.Lambda {
	if rows < 1000 {
		rows = 1000
	}
	data := calibrationRows(rows, seed)
	bytes := float64(0)
	for _, r := range data {
		bytes += float64(r.Width())
	}

	l := cost.Lambda{}
	l.ReaderDirect = perByte(bytes, func() {
		// Reading tuples out of the local instance and packing them into
		// transfer buffers: a row copy.
		buf := make([]types.Row, 0, len(data))
		for _, r := range data {
			buf = append(buf, r.Clone())
		}
		_ = buf
	})
	l.ReaderHash = perByte(bytes, func() {
		// Same read, plus hashing each tuple for routing.
		buf := make([]types.Row, 0, len(data))
		sink := uint64(0)
		for _, r := range data {
			sink += types.Hash(r[0]) % 8
			buf = append(buf, r.Clone())
		}
		_ = buf
		_ = sink
	})
	l.Network = perByte(bytes, func() {
		// Buffered hand-off between goroutines, the simulator's wire.
		ch := make(chan types.Row, 1024)
		done := make(chan struct{})
		go func() {
			n := 0
			for range ch {
				n++
			}
			close(done)
		}()
		for _, r := range data {
			ch <- r
		}
		close(ch)
		<-done
	})
	l.Writer = perByte(bytes, func() {
		// Unpacking buffers and preparing insertion batches.
		out := make([]types.Row, len(data))
		for i, r := range data {
			nr := make(types.Row, len(r))
			copy(nr, r)
			out[i] = nr
		}
		_ = out
	})
	l.BulkCopy = perByte(bytes, func() {
		db := storage.NewDB()
		_ = db.Create("t", []catalog.Column{
			{Name: "a", Type: types.KindInt},
			{Name: "b", Type: types.KindFloat},
			{Name: "c", Type: types.KindString},
		})
		_ = db.BulkInsert("t", data)
	})
	return l
}

// calibrationRows builds the seeded synthetic payload: integer keys with
// mild duplication (so hashing sees collisions), spread floats, and
// strings of varying width (so per-row overheads don't dominate a single
// fixed width).
func calibrationRows(rows int, seed int64) []types.Row {
	r := rand.New(rand.NewSource(seed))
	payload := "calibration-payload-row-0123456789abcdefghijklmnopqrstuvwxyz"
	data := make([]types.Row, rows)
	for i := range data {
		width := 8 + r.Intn(len(payload)-8)
		data[i] = types.Row{
			types.NewInt(int64(r.Intn(rows / 2))),
			types.NewFloat(r.NormFloat64() * 1e4),
			types.NewString(payload[:width]),
		}
	}
	return data
}

// perByte times f and returns nanoseconds per byte, taking the best of
// three runs to shed scheduling noise.
func perByte(bytes float64, f func()) float64 {
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / bytes
}

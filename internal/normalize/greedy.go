package normalize

import (
	"pdwqo/internal/algebra"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

// GreedyJoinOrder rewrites every maximal inner-join region of the tree
// into a fixed greedy join order — the large-join fallback regime the
// optimizer switches to when its enumeration budget trips (ROADMAP item
// 3; "Efficient Massively Parallel Join Optimization for Large Queries"
// argues the same DP-below / greedy-above split).
//
// The heuristic is cheapest-feasible-edge: grow one join component,
// always attaching the factor reachable over a predicate edge whose join
// moves the fewest estimated DMS bytes (zero for collocated or
// replicated pairs), breaking ties by the containment-estimated result
// size and then by input order for determinism. Movement leads the
// ordering so the collocated core of the query joins — and shrinks —
// first, and move-forcing factors attach when the component is already
// small. A cross join is emitted only when no predicate edge connects
// the current component to any remaining factor — so connected join
// graphs never cross-join.
//
// The rewrite fixes only the join *order*: the PDW-side enumerator still
// runs over the resulting (exploration-free) memo and inserts movement
// enforcers, so the plan stays collocation-correct and planverify-clean.
func GreedyJoinOrder(t *algebra.Tree) *algebra.Tree {
	if isRegionRoot(t) {
		factors, conjs := disassembleRegion(t)
		if len(factors) >= 2 {
			for i := range factors {
				factors[i] = greedyChildren(factors[i])
			}
			// Re-running pushdown restores single-table filters to their
			// scans and splits join conditions, exactly as SeedCollocated
			// does for the §3.1 seed plan.
			return pushdown(greedyRegion(factors, conjs, t.OutputCols()))
		}
	}
	return greedyChildren(t)
}

// greedyChildren recurses into a non-region node's children.
func greedyChildren(t *algebra.Tree) *algebra.Tree {
	if len(t.Children) == 0 {
		return t
	}
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = GreedyJoinOrder(c)
	}
	return algebra.NewTree(t.Op, children...)
}

// gconj is one pooled conjunct with its column footprint and equi-join
// sides pre-extracted, so the O(factors²) pair scans below never re-parse
// scalars (a 100-relation clique pools ~5000 conjuncts).
type gconj struct {
	sc   algebra.Scalar
	cols algebra.ColSet
	l, r algebra.ColumnID
	equi bool
}

// gitem is one join component under construction.
type gitem struct {
	tree  *algebra.Tree
	dist  factorDist
	cols  algebra.ColSet
	size  float64 // estimated rows
	width float64 // estimated row bytes
	ndv   map[algebra.ColumnID]float64
	hist  map[algebra.ColumnID]*stats.Column
	id    int // stable identity for pair-facts keying
}

// widthOfFactor estimates a factor's row width from its output column
// types — enough fidelity for a DMS-byte tie-break.
func widthOfFactor(t *algebra.Tree) float64 {
	w := 0.0
	for _, c := range t.OutputCols() {
		w += float64(c.Type.Width())
	}
	return w
}

// ndvOfFactor collects per-column distinct counts and base statistics
// from the factor's base tables, feeding the containment join-size
// estimate and the filter-selectivity estimate. Columns without
// statistics are simply absent (treated as non-reducing) — the greedy
// order degrades, never breaks.
func ndvOfFactor(t *algebra.Tree, ndv map[algebra.ColumnID]float64, hist map[algebra.ColumnID]*stats.Column) {
	if g, ok := t.Op.(*algebra.Get); ok {
		for _, c := range g.Cols {
			if cs := g.Table.Stats.Column(c.Name); cs != nil {
				hist[c.ID] = cs
				if cs.NDV > 0 {
					ndv[c.ID] = cs.NDV
				}
			}
		}
	}
	for _, c := range t.Children {
		ndvOfFactor(c, ndv, hist)
	}
}

// condSelectivity mirrors the memo estimator for the `col op const`
// comparison shape single-factor conjuncts take, using the base column's
// histogram; any other shape gets the System R range default.
func condSelectivity(sc algebra.Scalar, hist map[algebra.ColumnID]*stats.Column) float64 {
	bin, ok := sc.(*algebra.Binary)
	if !ok || !bin.Op.IsComparison() {
		return stats.DefaultRangeSel
	}
	col, okc := bin.L.(*algebra.ColRef)
	k, okk := bin.R.(*algebra.Const)
	op := bin.Op
	if !okc || !okk {
		col, okc = bin.R.(*algebra.ColRef)
		k, okk = bin.L.(*algebra.Const)
		op = op.Flip()
		if !okc || !okk {
			return stats.DefaultRangeSel
		}
	}
	cs := hist[col.ID]
	if cs == nil || k.Val.IsNull() {
		return stats.DefaultRangeSel
	}
	switch op {
	case sqlparser.OpEq:
		return cs.SelectivityEq(k.Val)
	case sqlparser.OpLt:
		return cs.SelectivityRange(types.Null, k.Val, false, false)
	case sqlparser.OpLe:
		return cs.SelectivityRange(types.Null, k.Val, false, true)
	case sqlparser.OpGt:
		return cs.SelectivityRange(k.Val, types.Null, false, false)
	case sqlparser.OpGe:
		return cs.SelectivityRange(k.Val, types.Null, true, false)
	}
	return stats.DefaultRangeSel
}

// greedyRegion rebuilds one join region under the cheapest-feasible-edge
// policy described on GreedyJoinOrder.
func greedyRegion(factors []*algebra.Tree, conjs []algebra.Scalar, want []algebra.ColumnMeta) *algebra.Tree {
	pending := make([]gconj, 0, len(conjs))
	for _, c := range conjs {
		gc := gconj{sc: c, cols: algebra.ScalarCols(c)}
		gc.l, gc.r, gc.equi = algebra.EquiJoinSides(c)
		pending = append(pending, gc)
	}

	items := make([]*gitem, len(factors))
	for i, f := range factors {
		ndv := map[algebra.ColumnID]float64{}
		hist := map[algebra.ColumnID]*stats.Column{}
		ndvOfFactor(f, ndv, hist)
		items[i] = &gitem{
			tree: f, dist: distOf(f), cols: f.OutputColSet(),
			size: sizeOf(f), width: widthOfFactor(f), ndv: ndv, hist: hist,
		}
	}

	// takeConds removes and returns every pending conjunct fully covered
	// by the column set.
	takeConds := func(cols algebra.ColSet) []algebra.Scalar {
		var out []algebra.Scalar
		rest := pending[:0]
		for _, c := range pending {
			if c.cols.SubsetOf(cols) {
				out = append(out, c.sc)
			} else {
				rest = append(rest, c)
			}
		}
		pending = rest
		return out
	}

	// Single-factor predicates go straight back onto their factors so
	// selectivity applies before any join — both in the tree and in the
	// size estimate, so a heavily filtered factor competes as the small
	// input it really is.
	for _, it := range items {
		if conds := takeConds(it.cols); len(conds) > 0 {
			it.tree = algebra.NewTree(&algebra.Select{Filter: algebra.AndAll(conds)}, it.tree)
			sel := 1.0
			for _, sc := range conds {
				sel *= condSelectivity(sc, it.hist)
			}
			filtered := it.size * sel
			if filtered < 1 {
				filtered = 1
			}
			for id, n := range it.ndv {
				it.ndv[id] = stats.DistinctAfterFilter(n, it.size, filtered)
			}
			it.size = filtered
		}
	}

	// pairFacts aggregates, for one unordered pair of components,
	// everything the pick below needs: whether a predicate edge connects
	// them, the containment selectivity of the pair's equi edges (the
	// memo estimator's |A|·|B|/max(NDV) formula), and whether an equi
	// edge already collocates the two distributions.
	type pairFacts struct {
		edge   bool
		sel    float64
		colloc bool
	}
	noFacts := pairFacts{sel: 1}

	// Probing each candidate pair used to rescan every pending conjunct —
	// O(pairs × conjuncts), the dominant cost on a 100-relation clique
	// (~5000 pooled conjuncts). classify instead walks pending once per
	// merge: each conjunct knows the components owning its columns, so
	// one pass aggregates the facts for every connected pair.
	owner := map[algebra.ColumnID]*gitem{}
	for _, it := range items {
		for id := range it.cols {
			owner[id] = it
		}
	}
	nextID := len(items)
	for i, it := range items {
		it.id = i
	}
	pkey := func(a, b *gitem) [2]int {
		if a.id < b.id {
			return [2]int{a.id, b.id}
		}
		return [2]int{b.id, a.id}
	}
	pairs := map[[2]int]*pairFacts{}
	classify := func() {
		pairs = make(map[[2]int]*pairFacts, len(pending))
		for _, c := range pending {
			var a, b *gitem
			spans2 := true
			for id := range c.cols {
				switch o := owner[id]; {
				case o == nil:
					spans2 = false
				case a == nil || a == o:
					a = o
				case b == nil || b == o:
					b = o
				default:
					spans2 = false // three components; not an edge yet
				}
				if !spans2 {
					break
				}
			}
			if !spans2 || b == nil {
				continue
			}
			pf := pairs[pkey(a, b)]
			if pf == nil {
				pf = &pairFacts{sel: 1}
				pairs[pkey(a, b)] = pf
			}
			pf.edge = true
			if !c.equi {
				continue
			}
			lo, ro := owner[c.l], owner[c.r]
			if lo == nil || ro == nil || lo == ro {
				continue // single-sided (residual) equality: not a join edge
			}
			d := lo.ndv[c.l]
			if n := ro.ndv[c.r]; n > d {
				d = n
			}
			if d > 1 {
				pf.sel /= d
			}
			if lo.dist.cols.Has(c.l) && ro.dist.cols.Has(c.r) {
				pf.colloc = true
			}
		}
	}
	facts := func(a, b *gitem) pairFacts {
		if pf := pairs[pkey(a, b)]; pf != nil {
			return *pf
		}
		return noFacts
	}

	// joinSize estimates the joined result from the pair's containment
	// selectivity. In the corpus's key/foreign-key regime this reduces to
	// "the referencing side's rows"; on selective clique edges it
	// correctly predicts the shrink that max(a,b) would hide.
	joinSize := func(a, b *gitem, pf pairFacts) float64 {
		sz := a.size * b.size * pf.sel
		if sz < 1 {
			return 1
		}
		return sz
	}

	// moveBytes estimates the DMS bytes a join of the two components
	// forces: zero when either side is replicated or the pair is
	// collocated on an equi edge, otherwise the smaller side's bytes
	// (it would be shuffled or broadcast).
	moveBytes := func(a, b *gitem, pf pairFacts) float64 {
		if a.dist.replicated || b.dist.replicated || pf.colloc {
			return 0
		}
		if a.size*a.width < b.size*b.width {
			return a.size * a.width
		}
		return b.size * b.width
	}

	join := func(a, b *gitem) *gitem {
		size := joinSize(a, b, facts(a, b)) // before takeConds drains the edges it reads
		cols := algebra.NewColSet()
		cols.AddSet(a.cols)
		cols.AddSet(b.cols)
		conds := takeConds(cols)
		kind := algebra.JoinInner
		if len(conds) == 0 {
			kind = algebra.JoinCross
		}
		tree := algebra.NewTree(&algebra.Join{Kind: kind, On: algebra.AndAll(conds)}, a.tree, b.tree)
		var d factorDist
		switch {
		case a.dist.replicated && b.dist.replicated:
			d = factorDist{replicated: true}
		case a.dist.replicated:
			d = b.dist
		case b.dist.replicated:
			d = a.dist
		default:
			merged := algebra.NewColSet()
			merged.AddSet(a.dist.cols)
			merged.AddSet(b.dist.cols)
			d = factorDist{cols: merged}
		}
		ndv := make(map[algebra.ColumnID]float64, len(a.ndv)+len(b.ndv))
		for id, n := range a.ndv {
			ndv[id] = stats.DistinctAfterFilter(n, a.size, size)
		}
		for id, n := range b.ndv {
			ndv[id] = stats.DistinctAfterFilter(n, b.size, size)
		}
		merged := &gitem{tree: tree, dist: d, cols: cols, size: size, width: a.width + b.width, ndv: ndv, id: nextID}
		nextID++
		for id := range cols {
			owner[id] = merged
		}
		classify() // pending and ownership changed; refresh pair facts
		return merged
	}

	// better orders candidate joins lexicographically by (move bytes,
	// result size): free joins — a replicated input or a collocated equi
	// pair — come first, smallest result breaking ties. Joining the
	// collocated core first shrinks the component while movement is still
	// free; by the time a move-forcing factor must attach, the component
	// is small and the enforcer ships almost nothing (the shape the
	// exhaustive enumerator finds on clique corpora).
	better := func(mv, sz, bestMove, bestSize float64) bool {
		return mv < bestMove || (mv == bestMove && sz < bestSize)
	}

	// Seed with the globally cheapest feasible edge (falling back to the
	// cheapest pair when the region has no predicate edges at all), then
	// grow the component one cheapest feasible attachment at a time.
	classify()
	pick := func(cands [][2]int) (int, int) {
		bi, bj := -1, -1
		bestSize, bestMove := 0.0, 0.0
		for _, p := range cands {
			a, b := items[p[0]], items[p[1]]
			pf := facts(a, b)
			sz, mv := joinSize(a, b, pf), moveBytes(a, b, pf)
			if bi < 0 || better(mv, sz, bestMove, bestSize) {
				bi, bj, bestSize, bestMove = p[0], p[1], sz, mv
			}
		}
		return bi, bj
	}
	var edged, all [][2]int
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			all = append(all, [2]int{i, j})
			if facts(items[i], items[j]).edge {
				edged = append(edged, [2]int{i, j})
			}
		}
	}
	cands := edged
	if len(cands) == 0 {
		cands = all
	}
	bi, bj := pick(cands)

	cur := join(items[bi], items[bj])
	rest := make([]*gitem, 0, len(items)-2)
	for i, it := range items {
		if i != bi && i != bj {
			rest = append(rest, it)
		}
	}
	for len(rest) > 0 {
		best := -1
		bestSize, bestMove := 0.0, 0.0
		feasible := false
		for i, it := range rest {
			pf := facts(cur, it)
			if feasible && !pf.edge {
				continue
			}
			sz, mv := joinSize(cur, it, pf), moveBytes(cur, it, pf)
			if (pf.edge && !feasible) || best < 0 ||
				better(mv, sz, bestMove, bestSize) {
				best, bestSize, bestMove, feasible = i, sz, mv, pf.edge
			}
		}
		cur = join(cur, rest[best])
		rest = append(rest[:best], rest[best+1:]...)
	}
	out := cur.tree
	if len(pending) > 0 {
		var left []algebra.Scalar
		for _, c := range pending {
			left = append(left, c.sc)
		}
		out = algebra.NewTree(&algebra.Select{Filter: algebra.AndAll(left)}, out)
	}
	// The rebuild preserves the output column set but may reorder it;
	// parents reference columns positionally against `want`, so restore
	// that order with a projection when it differs.
	got := out.OutputCols()
	same := len(got) == len(want)
	if same {
		for i := range got {
			if got[i].ID != want[i].ID {
				same = false
				break
			}
		}
	}
	if !same {
		defs := make([]algebra.ProjDef, len(want))
		for i, c := range want {
			defs[i] = algebra.ProjDef{Expr: algebra.NewColRef(c), ID: c.ID, Name: c.Name}
		}
		out = algebra.NewTree(&algebra.Project{Defs: defs}, out)
	}
	return out
}

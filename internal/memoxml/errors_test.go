package memoxml

import (
	"strings"
	"testing"
)

// TestDecodeMalformedXML walks the Decode error paths that a corrupted
// or hand-crafted memo document can reach. Each case must fail with a
// memoxml-prefixed error, never panic — the decoder sits on the process
// boundary between the compilation stack and the PDW engine, so this is
// adversarial input by construction.
func TestDecodeMalformedXML(t *testing.T) {
	shell := testShell(t)
	cases := []struct {
		name, xml, wantErr string
	}{
		{"truncated document", `<Memo root="1" maxCol="1"><Group id="1">`, "memoxml"},
		{"empty memo", `<Memo></Memo>`, "root group 0 missing"},
		{"empty memo with root attr", `<Memo root="3" maxCol="1"></Memo>`, "root group 3 missing"},
		{"root points at missing group",
			`<Memo root="2" maxCol="1"><Group id="1"><Expr op="UnionAll"/></Group></Memo>`,
			"root group 2 missing"},
		{"dangling child group ref",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Join" children="7,8"/></Group></Memo>`,
			"unknown child group 7"},
		{"partially dangling child ref",
			`<Memo root="1" maxCol="1">` +
				`<Group id="1"><Expr op="Join" children="2,9"/></Group>` +
				`<Group id="2"><Expr op="UnionAll"/></Group></Memo>`,
			"unknown child group 9"},
		{"non-numeric child ref",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Join" children="2,x"/></Group></Memo>`,
			"bad child group"},
		{"duplicate group id",
			`<Memo root="1" maxCol="1">` +
				`<Group id="1"><Expr op="UnionAll"/></Group>` +
				`<Group id="1"><Expr op="UnionAll"/></Group></Memo>`,
			"duplicate group id 1"},
		{"self-referential group",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Select" children="1"/></Group></Memo>`,
			"reference cycle"},
		{"two-group cycle",
			`<Memo root="1" maxCol="1">` +
				`<Group id="1"><Expr op="Select" children="2"/></Group>` +
				`<Group id="2"><Expr op="Select" children="1"/></Group></Memo>`,
			"reference cycle"},
		{"cycle detached from root",
			`<Memo root="1" maxCol="1">` +
				`<Group id="1"><Expr op="UnionAll"/></Group>` +
				`<Group id="2"><Expr op="Select" children="3"/></Group>` +
				`<Group id="3"><Expr op="Select" children="2"/></Group></Memo>`,
			"reference cycle"},
		{"unknown operator",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Teleport"/></Group></Memo>`,
			`unknown operator "Teleport"`},
		{"unknown table",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Get" table="nope"/></Group></Memo>`,
			`unknown table "nope"`},
		{"bad group key",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="GroupBy" keys="1,zap"/></Group></Memo>`,
			"bad group key"},
		{"bad key colset",
			`<Memo root="1" maxCol="1"><Group id="1"><Keys><Key>1,bogus</Key></Keys><Expr op="UnionAll"/></Group></Memo>`,
			"bad column id"},
		{"unknown scalar kind",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Select"><Filter><S kind="mystery"/></Filter></Expr></Group></Memo>`,
			`unknown scalar kind "mystery"`},
		{"bad int const",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Select"><Filter><S kind="const" valKind="2" val="NaNopes"/></Filter></Expr></Group></Memo>`,
			"bad int"},
		{"bad bool const",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Select"><Filter><S kind="const" valKind="1" val="maybe"/></Filter></Expr></Group></Memo>`,
			"bad bool"},
		{"bad float const",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Select"><Filter><S kind="const" valKind="3" val="1.2.3"/></Filter></Expr></Group></Memo>`,
			"bad float"},
		{"bad date const",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Select"><Filter><S kind="const" valKind="5" val="yesterday"/></Filter></Expr></Group></Memo>`,
			"bad date"},
		{"unknown value kind",
			`<Memo root="1" maxCol="1"><Group id="1"><Expr op="Select"><Filter><S kind="const" valKind="99"/></Filter></Expr></Group></Memo>`,
			"unknown value kind 99"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode([]byte(c.xml), shell)
			if err == nil {
				t.Fatalf("Decode accepted malformed input:\n%s", c.xml)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
			if !strings.Contains(err.Error(), "memoxml") {
				t.Errorf("error %q lost the memoxml prefix", err)
			}
		})
	}
}

// TestDecodeErrorPropagation checks that scalar decode failures nested
// inside each operator payload surface instead of being swallowed: the
// same bad constant is smuggled in through every scalar-carrying slot.
func TestDecodeErrorPropagation(t *testing.T) {
	shell := testShell(t)
	const badConst = `<S kind="const" valKind="2" val="zap"/>`
	cases := []struct{ name, body string }{
		{"select filter", `<Expr op="Select"><Filter>` + badConst + `</Filter></Expr>`},
		{"project def", `<Expr op="Project"><Defs><Def id="1" name="x">` + badConst + `</Def></Defs></Expr>`},
		{"join on", `<Expr op="Join"><On>` + badConst + `</On></Expr>`},
		{"agg arg", `<Expr op="GroupBy"><Aggs><Agg func="1" id="1" name="a">` + badConst + `</Agg></Aggs></Expr>`},
		{"values row", `<Expr op="Values"><Rows><Row><V kind="const" valKind="2" val="zap"/></Row></Rows></Expr>`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			doc := `<Memo root="1" maxCol="1"><Group id="1">` + c.body + `</Group></Memo>`
			if _, err := Decode([]byte(doc), shell); err == nil {
				t.Errorf("bad constant in %s must fail decode", c.name)
			}
		})
	}
}

// TestDecodeValidChildRefs makes sure the new reference validation does
// not reject a well-formed multi-group memo.
func TestDecodeValidChildRefs(t *testing.T) {
	shell := testShell(t)
	doc := `<Memo root="1" maxCol="1">` +
		`<Group id="1"><Expr op="Join" children="2,3"/></Group>` +
		`<Group id="2"><Expr op="UnionAll"/></Group>` +
		`<Group id="3"><Expr op="UnionAll"/></Group></Memo>`
	d, err := Decode([]byte(doc), shell)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Groups) != 3 {
		t.Errorf("got %d groups, want 3", len(d.Groups))
	}
}

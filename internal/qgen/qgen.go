// Package qgen is a seeded, deterministic stress-query generator for the
// large-join search regime (ROADMAP item 3): it emits star, chain, clique
// and mixed join topologies over synthetic catalogs of 2–100+ relations —
// varied row counts, hash/replicated distribution mixes, selectivity-
// annotated filters — as SQL text plus expected-shape metadata. The
// generated workloads go far past the 22 TPC-H queries (≤8-way joins)
// that the optimizer had been exercised on, and every query is built so
// it can actually be *executed*, not just planned:
//
//   - every join edge is a key/foreign-key equality whose foreign keys are
//     drawn from the referenced table's key domain, so an n-way chain or
//     star join never multiplies past its largest input;
//   - clique predicates equate per-table "cluster" columns sampled without
//     replacement from a shared domain twice the largest table, so the
//     n-way intersection stays tiny;
//   - heads are aggregations (COUNT/MIN/MAX/SUM, optionally grouped), so
//     result relations stay narrow.
//
// All column names are globally unique across a generated catalog, so the
// SQL uses unqualified references and comma-join FROM lists — the exact
// shape the rest of the test corpus (difftest, fuzz) already exercises.
//
// Determinism is the point: Generate is a pure function of the Spec (the
// seeded math/rand source is the only entropy), and Fingerprint hashes the
// spec, DDL, SQL and every generated row, so the checked-in corpus
// goldens detect any drift across runs and Go versions.
package qgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"

	"pdwqo/internal/catalog"
	"pdwqo/internal/types"
)

// Topology names a join-graph family.
type Topology string

// The four generated join-graph families.
const (
	// Star joins every satellite table to one central hub on a
	// hub-key/foreign-key equality.
	Star Topology = "star"
	// Chain joins table i to table i+1, key to foreign key.
	Chain Topology = "chain"
	// Clique equates per-table cluster columns pairwise: every pair of
	// tables shares a predicate edge.
	Clique Topology = "clique"
	// Mixed is a star over the first half of the tables with a chain
	// hanging off the hub's last spoke, plus extra back-edges into the
	// hub every third chain table.
	Mixed Topology = "mixed"
)

// Topologies lists the generated families in a fixed order.
func Topologies() []Topology { return []Topology{Star, Chain, Clique, Mixed} }

// Spec is the full input of one generated query; equal specs generate
// byte-identical queries.
type Spec struct {
	Topology  Topology
	Relations int
	Seed      int64
	// Nodes sizes the shell's appliance topology; 0 means 8.
	Nodes int
}

// Name renders the spec as a stable corpus identifier.
func (s Spec) Name() string {
	return fmt.Sprintf("%s%03d_s%d", s.Topology, s.Relations, s.Seed)
}

// Edge is one join-predicate edge of the expected shape.
type Edge struct {
	LeftTable, LeftColumn   string
	RightTable, RightColumn string
}

// Filter is one selectivity-annotated single-table predicate
// (column <= bound over a uniform 0..999 payload domain).
type Filter struct {
	Table, Column string
	Bound         int64
	Selectivity   float64
}

// Shape is the expected-shape metadata of a generated query, used by the
// difftest property checks (every relation covered exactly once, no cross
// join when a predicate edge exists).
type Shape struct {
	Tables     []string
	Edges      []Edge
	Filters    []Filter
	Replicated []string
	// GroupBy is the grouping column of a grouped head, "" for scalar
	// aggregate heads.
	GroupBy string
}

// Query is one generated stress query: catalog, data, SQL and shape.
type Query struct {
	Name   string
	Spec   Spec
	SQL    string
	Tables []*catalog.Table
	Data   map[string][]types.Row
	Shape  Shape
}

// table is the generator's working view of one relation.
type table struct {
	name    string
	rows    int
	pkCol   string // k<i>: unique 0..rows-1
	fkCol   string // f<i>: foreign key into a parent's pk domain ("" if none)
	fkOf    int    // parent table index for fkCol
	hubCol  string // h<i>: extra foreign key into the hub (mixed only, "" if none)
	clqCol  string // c<i>: cluster column over the shared clique domain
	payCol  string // v<i>: uniform 0..999 payload (filter target)
	grpCol  string // g<i>: small-domain 0..7 grouping column
	fkVals  []int64
	hubVals []int64
	clqVals []int64
	dist    catalog.Distribution
}

// Generate builds the query for a spec. It is deterministic: the same
// spec always yields the same catalog, data, SQL and shape.
func Generate(spec Spec) (*Query, error) {
	if spec.Relations < 2 {
		return nil, fmt.Errorf("qgen: spec needs at least 2 relations, got %d", spec.Relations)
	}
	if spec.Relations > 200 {
		return nil, fmt.Errorf("qgen: spec capped at 200 relations, got %d", spec.Relations)
	}
	switch spec.Topology {
	case Star, Chain, Clique, Mixed:
	default:
		return nil, fmt.Errorf("qgen: unknown topology %q", spec.Topology)
	}
	if spec.Nodes == 0 {
		spec.Nodes = 8
	}
	if spec.Nodes < 1 {
		return nil, fmt.Errorf("qgen: spec needs at least 1 compute node, got %d", spec.Nodes)
	}
	// Mix the seed with the rest of the spec so the same seed still
	// yields distinct workloads per (topology, size).
	h := int64(1)
	for _, b := range []byte(spec.Name()) {
		h = h*131 + int64(b)
	}
	r := rand.New(rand.NewSource(spec.Seed*1_000_003 + h))

	n := spec.Relations
	// Row-count envelope: big enough for meaningful statistics, small
	// enough that joining all of them is executable. Past 32 relations
	// the corpus is optimize-focused, so tables shrink.
	hubLo, hubSpan, lo, span := 140, 100, 30, 90
	if n > 32 {
		hubLo, hubSpan, lo, span = 60, 40, 15, 25
	}

	tabs := make([]*table, n)
	maxRows := 0
	for i := range tabs {
		rows := lo + r.Intn(span)
		if i == 0 && (spec.Topology == Star || spec.Topology == Mixed) {
			// The hub is the largest table, so every spoke's expected
			// per-hub-key multiplicity stays below 1 and the n-way star
			// result does not blow up.
			rows = hubLo + r.Intn(hubSpan)
		}
		tabs[i] = &table{
			name:   fmt.Sprintf("%s%02d", spec.Topology[:2], i),
			rows:   rows,
			pkCol:  fmt.Sprintf("k%d", i),
			payCol: fmt.Sprintf("v%d", i),
			grpCol: fmt.Sprintf("g%d", i),
		}
		if rows > maxRows {
			maxRows = rows
		}
	}

	// Join structure per topology.
	hub := n / 2 // first chain table in Mixed
	for i, t := range tabs {
		switch spec.Topology {
		case Chain:
			if i > 0 {
				t.fkCol, t.fkOf = fmt.Sprintf("f%d", i), i-1
			}
		case Star:
			if i > 0 {
				t.fkCol, t.fkOf = fmt.Sprintf("f%d", i), 0
			}
		case Clique:
			t.clqCol = fmt.Sprintf("c%d", i)
		case Mixed:
			if i > 0 && i <= hub {
				t.fkCol, t.fkOf = fmt.Sprintf("f%d", i), 0
			} else if i > hub {
				t.fkCol, t.fkOf = fmt.Sprintf("f%d", i), i-1
				if i%3 == 0 {
					t.hubCol = fmt.Sprintf("h%d", i)
				}
			}
		}
	}

	// Foreign-key and cluster values. Foreign keys are drawn uniformly
	// from the parent's key domain, so every child row matches exactly
	// one parent row. Cluster values are sampled without replacement
	// from a shared domain twice the largest table.
	clqDomain := 2 * maxRows
	for _, t := range tabs {
		if t.fkCol != "" {
			parent := tabs[t.fkOf]
			t.fkVals = make([]int64, t.rows)
			for j := range t.fkVals {
				t.fkVals[j] = int64(r.Intn(parent.rows))
			}
		}
		if t.hubCol != "" {
			t.hubVals = make([]int64, t.rows)
			for j := range t.hubVals {
				t.hubVals[j] = int64(r.Intn(tabs[0].rows))
			}
		}
		if t.clqCol != "" {
			perm := r.Perm(clqDomain)
			t.clqVals = make([]int64, t.rows)
			for j := range t.clqVals {
				t.clqVals[j] = int64(perm[j])
			}
		}
	}

	// Distribution mix: ~20% replicated, the rest hash-distributed on a
	// seeded pick of join key, foreign key, or payload column.
	var replicated []string
	for _, t := range tabs {
		if r.Float64() < 0.2 {
			t.dist = catalog.Distribution{Kind: catalog.DistReplicated}
			replicated = append(replicated, t.name)
			continue
		}
		cands := []string{t.pkCol}
		if t.fkCol != "" {
			cands = append(cands, t.fkCol, t.fkCol) // join-relevant columns preferred
		}
		if t.clqCol != "" {
			cands = append(cands, t.clqCol, t.clqCol)
		}
		cands = append(cands, t.payCol)
		t.dist = catalog.Distribution{Kind: catalog.DistHash, Column: cands[r.Intn(len(cands))]}
	}

	// Catalog and data.
	q := &Query{Name: spec.Name(), Spec: spec, Data: make(map[string][]types.Row, n)}
	for _, t := range tabs {
		cols := []catalog.Column{{Name: t.pkCol, Type: types.KindInt}}
		if t.fkCol != "" {
			cols = append(cols, catalog.Column{Name: t.fkCol, Type: types.KindInt})
		}
		if t.hubCol != "" {
			cols = append(cols, catalog.Column{Name: t.hubCol, Type: types.KindInt})
		}
		if t.clqCol != "" {
			cols = append(cols, catalog.Column{Name: t.clqCol, Type: types.KindInt})
		}
		cols = append(cols,
			catalog.Column{Name: t.payCol, Type: types.KindInt},
			catalog.Column{Name: t.grpCol, Type: types.KindInt})
		q.Tables = append(q.Tables, &catalog.Table{
			Name:       t.name,
			Columns:    cols,
			PrimaryKey: []string{t.pkCol},
			Dist:       t.dist,
		})
		rows := make([]types.Row, t.rows)
		for j := 0; j < t.rows; j++ {
			row := types.Row{types.NewInt(int64(j))}
			if t.fkCol != "" {
				row = append(row, types.NewInt(t.fkVals[j]))
			}
			if t.hubCol != "" {
				row = append(row, types.NewInt(t.hubVals[j]))
			}
			if t.clqCol != "" {
				row = append(row, types.NewInt(t.clqVals[j]))
			}
			row = append(row,
				types.NewInt(int64(r.Intn(1000))),
				types.NewInt(int64(r.Intn(8))))
			rows[j] = row
		}
		q.Data[t.name] = rows
	}

	// Predicate edges.
	var edges []Edge
	for i, t := range tabs {
		if t.fkCol != "" {
			p := tabs[t.fkOf]
			edges = append(edges, Edge{p.name, p.pkCol, t.name, t.fkCol})
		}
		if t.hubCol != "" {
			edges = append(edges, Edge{tabs[0].name, tabs[0].pkCol, t.name, t.hubCol})
		}
		if t.clqCol != "" {
			for j := i + 1; j < n; j++ {
				edges = append(edges, Edge{t.name, t.clqCol, tabs[j].name, tabs[j].clqCol})
			}
		}
	}

	// Selectivity-annotated filters: v<i> <= B over the uniform 0..999
	// payload, selectivity (B+1)/1000.
	var filters []Filter
	for _, t := range tabs {
		if r.Float64() < 0.4 {
			b := int64(99 + r.Intn(801))
			filters = append(filters, Filter{
				Table: t.name, Column: t.payCol, Bound: b,
				Selectivity: float64(b+1) / 1000,
			})
		}
	}

	// Head: scalar COUNT, scalar MIN/MAX/COUNT, or a grouped aggregate.
	groupBy := ""
	var head string
	switch r.Intn(3) {
	case 0:
		head = "SELECT COUNT(*) AS cnt"
	case 1:
		a, b := tabs[r.Intn(n)], tabs[r.Intn(n)]
		head = fmt.Sprintf("SELECT MIN(%s) AS mn, MAX(%s) AS mx, COUNT(*) AS cnt", a.pkCol, b.payCol)
	default:
		a, b := tabs[r.Intn(n)], tabs[r.Intn(n)]
		groupBy = a.grpCol
		head = fmt.Sprintf("SELECT %s, COUNT(*) AS cnt, SUM(%s) AS sv", a.grpCol, b.payCol)
	}

	var preds []string
	for _, e := range edges {
		preds = append(preds, fmt.Sprintf("%s = %s", e.LeftColumn, e.RightColumn))
	}
	for _, f := range filters {
		preds = append(preds, fmt.Sprintf("%s <= %d", f.Column, f.Bound))
	}
	var names []string
	for _, t := range tabs {
		names = append(names, t.name)
	}
	var b strings.Builder
	b.WriteString(head)
	b.WriteString("\nFROM ")
	b.WriteString(strings.Join(names, ", "))
	b.WriteString("\nWHERE ")
	b.WriteString(strings.Join(preds, "\n  AND "))
	if groupBy != "" {
		b.WriteString("\nGROUP BY ")
		b.WriteString(groupBy)
	}
	q.SQL = b.String()
	q.Shape = Shape{
		Tables:     names,
		Edges:      edges,
		Filters:    filters,
		Replicated: replicated,
		GroupBy:    groupBy,
	}
	return q, nil
}

// Shell builds a fresh shell database over the query's catalog (no
// statistics — pdwqo.Open computes and merges them from the data).
func (q *Query) Shell() (*catalog.Shell, error) {
	s := catalog.NewShell(q.Spec.Nodes)
	for _, t := range q.Tables {
		if err := s.AddTable(t); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// DDL renders the catalog as pseudo-DDL, one line per table, for goldens
// and fingerprinting.
func (q *Query) DDL() string {
	var b strings.Builder
	for _, t := range q.Tables {
		var cols []string
		for _, c := range t.Columns {
			cols = append(cols, c.Name+" "+c.Type.String())
		}
		fmt.Fprintf(&b, "CREATE TABLE %s (%s) DISTRIBUTION=%s PK(%s) ROWS=%d\n",
			t.Name, strings.Join(cols, ", "), t.Dist, strings.Join(t.PrimaryKey, ","), len(q.Data[t.Name]))
	}
	return b.String()
}

// Fingerprint hashes the spec, DDL, SQL and every generated row: any
// drift in the generator — across runs, seeds handling, or Go versions —
// changes the fingerprint and fails the corpus regression test.
func (q *Query) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d\n", q.Name, q.Spec.Topology, q.Spec.Relations, q.Spec.Seed, q.Spec.Nodes)
	h.Write([]byte(q.DDL()))
	h.Write([]byte{0})
	h.Write([]byte(q.SQL))
	h.Write([]byte{0})
	for _, t := range q.Tables { // q.Tables is in generation order
		for _, row := range q.Data[t.Name] {
			for _, v := range row {
				h.Write([]byte(v.String()))
				h.Write([]byte{','})
			}
			h.Write([]byte{';'})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

package pdwqo

import (
	"time"

	"pdwqo/internal/explain"
)

// ExplainText renders the plan through the observability renderer: the
// distributed plan tree with placements and estimated rows/bytes/DMS
// cost, followed by the DSQL step sequence. Output is deterministic for
// a given query, catalog and topology — the golden EXPLAIN suite relies
// on that.
func (p *QueryPlan) ExplainText() (string, error) {
	return explain.Render(p.explainInput(), explain.Options{})
}

// ExplainJSON renders the machine-readable EXPLAIN document.
func (p *QueryPlan) ExplainJSON() (string, error) {
	return explain.Render(p.explainInput(), explain.Options{JSON: true})
}

func (p *QueryPlan) explainInput() explain.Input {
	return explain.Input{SQL: p.SQL, Plan: p.Distributed, DSQL: p.DSQL}
}

// ExplainAnalyze executes the plan and renders EXPLAIN ANALYZE: per step,
// the optimizer's estimated rows/bytes next to the engine's measured
// rows, bytes moved, attempts and wall time, plus a predicted-vs-actual
// q-error summary over the move steps.
//
// Actuals are captured as the delta of the appliance's Metrics across
// this execution (steps run serially, so the delta lines up with step
// order; metrics are matched to steps by StepMetric.StepID regardless).
// On execution failure the report still covers the steps that completed,
// and the execution error is returned alongside it.
func (db *DB) ExplainAnalyze(plan *QueryPlan, jsonOut bool) (*Result, string, error) {
	m := &db.appliance.Metrics
	before := m.StepCount()
	retries0, faults0 := m.RetryCount(), m.FaultCount()
	start := time.Now()
	res, execErr := db.ExecutePlan(plan)
	in := plan.explainInput()
	in.Elapsed = time.Since(start)
	in.Actuals = m.Snapshot()[before:]
	in.Retries = m.RetryCount() - retries0
	in.Faults = m.FaultCount() - faults0
	report, err := explain.Render(in, explain.Options{Analyze: true, JSON: jsonOut})
	if err != nil {
		return res, "", err
	}
	return res, report, execErr
}

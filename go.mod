module pdwqo

go 1.22

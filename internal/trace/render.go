package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Text renders the span tree with durations, attributes and step payloads,
// followed by the counter registry. Children are ordered by start offset
// (ties broken by record order), so concurrent siblings render stably for
// a given recording.
func (t *Tracer) Text() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	children := map[SpanID][]Span{}
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })
	}
	var b strings.Builder
	var walk func(parent SpanID, depth int)
	walk = func(parent SpanID, depth int) {
		for _, s := range children[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&b, "%-24s %10s", s.Name, fmtDur(s.Dur))
			for _, a := range s.Attrs {
				b.WriteString("  " + a.String())
			}
			if s.Step != nil {
				st := s.Step
				fmt.Fprintf(&b, "  step=%d rows=%d bytes=%d attempts=%d", st.Step, st.Rows, st.Bytes, st.Attempts)
				if st.IsMove {
					fmt.Fprintf(&b, " move=%s", st.Move)
				}
				if st.LocalOps > 0 {
					fmt.Fprintf(&b, " local_ops=%d local_rows=%d", st.LocalOps, st.LocalRows)
				}
				if st.LocalBatches > 0 {
					fmt.Fprintf(&b, " local_batches=%d", st.LocalBatches)
				}
			}
			if s.Err != "" {
				fmt.Fprintf(&b, "  err=%q", s.Err)
			}
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	if c := t.Counters().String(); c != "" {
		b.WriteString("-- counters\n")
		b.WriteString(c)
	}
	return b.String()
}

// fmtDur keeps durations compact and aligned.
func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Microsecond).String()
}

// export is the JSON shape of a full trace.
type export struct {
	Counters map[string]int64 `json:"counters,omitempty"`
	Spans    []Span           `json:"spans"`
}

// JSON renders the whole trace (spans + counters) as indented JSON.
func (t *Tracer) JSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(export{Counters: t.Counters().Snapshot(), Spans: t.Spans()}, "", "  ")
}

package a

import "sync"

type counter struct {
	name string // before mu: not guarded
	mu   sync.Mutex
	n    int
	last string
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() int {
	return c.n // want `counter.n is declared after mu`
}

func (c *counter) BadTwo() {
	c.n++        // want `counter.n is declared after mu`
	c.last = "x" // want `counter.last is declared after mu`
}

func (c *counter) Name() string {
	return c.name // not guarded: declared before mu
}

func (c *counter) snapshotLocked() (int, string) {
	return c.n, c.last // caller-locked by convention
}

//pdwlint:allow lockdiscipline
func (c *counter) Racy() int {
	return c.n // deliberate: documented single-writer phase
}

type rw struct {
	mu sync.RWMutex
	v  int
}

func (r *rw) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

func (r *rw) BadRead() int {
	return r.v // want `rw.v is declared after mu`
}

type unguarded struct {
	a, b int
}

func (u *unguarded) Sum() int {
	return u.a + u.b
}

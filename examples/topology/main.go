// Command topology sweeps the appliance size and shows how the optimizer's
// movement choices respond: shuffles get cheaper as nodes are added (each
// node handles Y·w/N bytes) while broadcasts do not (every node writes the
// full Y·w), so the broadcast-vs-shuffle decision flips with topology —
// the behaviour the paper's §3.3 cost model is built to capture.
package main

import (
	"fmt"
	"log"

	"pdwqo"
)

func main() {
	// A join whose small side can either broadcast or whose large side can
	// shuffle; the cheaper choice depends on N.
	sql := `SELECT c_name, o_orderdate
	        FROM customer, orders
	        WHERE c_custkey = o_custkey`

	fmt.Printf("%-6s %-12s %-30s %s\n", "nodes", "DMS cost", "moves", "steps")
	for _, nodes := range []int{2, 4, 8, 16, 32} {
		db, err := pdwqo.OpenTPCH(0.005, nodes, 42)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := db.Optimize(sql, pdwqo.Options{})
		if err != nil {
			log.Fatal(err)
		}
		moves := fmt.Sprintf("%v", plan.Moves())
		fmt.Printf("%-6d %-12.6g %-30s %d\n", nodes, plan.Cost(), moves, len(plan.DSQL.Steps))
	}

	fmt.Println("\nFor a fixed topology, the same flip happens as the moved relation")
	fmt.Println("shrinks: filter the broadcast candidate and watch the choice change.")
	db, err := pdwqo.OpenTPCH(0.005, 8, 42)
	if err != nil {
		log.Fatal(err)
	}
	for _, filter := range []string{"", "AND c_acctbal > 9000"} {
		sql := `SELECT c_name, o_orderdate FROM customer, orders
		        WHERE c_custkey = o_custkey ` + filter
		plan, err := db.Optimize(sql, pdwqo.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("filter=%-22q cost=%-12.6g moves=%v\n", filter, plan.Cost(), plan.Moves())
	}
}

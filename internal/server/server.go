package server

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pdwqo"
)

// Phase labels where in its lifecycle a query currently is; the
// cancellation test matrix uses the PhaseHook to cancel at each one.
type Phase int

// Query phases, in order.
const (
	// PhaseQueued is before admission: the query is about to wait for an
	// execution slot.
	PhaseQueued Phase = iota
	// PhaseCompiling is after admission, before optimization.
	PhaseCompiling
	// PhaseExecuting is after optimization, before appliance execution.
	PhaseExecuting
	// PhaseStreaming is after execution, before result frames are written.
	PhaseStreaming
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseQueued:
		return "queued"
	case PhaseCompiling:
		return "compiling"
	case PhaseExecuting:
		return "executing"
	case PhaseStreaming:
		return "streaming"
	default:
		return "unknown"
	}
}

// Config tunes a Server; the zero value gets sensible defaults.
type Config struct {
	// MaxConcurrent bounds simultaneously executing queries across all
	// sessions (default 8). Everything beyond it queues.
	MaxConcurrent int
	// MaxQueue bounds the admission wait queue (default 64). A query
	// arriving with the queue full is rejected immediately with
	// CodeQueueFull.
	MaxQueue int
	// QueueTimeout bounds how long an admitted query may wait for an
	// execution slot before a CodeQueueTimeout rejection; 0 (the default)
	// waits indefinitely.
	QueueTimeout time.Duration
	// BatchRows is how many rows each RowBatch frame carries (default
	// 256). Cancellation is checked between batches, so it also bounds
	// cancel latency while streaming.
	BatchRows int
	// MaxStmts caps prepared statements per session (default 64).
	MaxStmts int
	// Opts are the optimizer options every session compiles with. The
	// appliance-mutating knobs (resilience, faults, tracer, parallelism)
	// are ignored here — configure those once on the DB; sessions share
	// one appliance and must not reconfigure it mid-flight.
	Opts pdwqo.Options
	// PhaseHook, when non-nil, is called as each query enters each phase
	// (with the query SQL). Test instrumentation: the cancellation matrix
	// uses it to line up a cancel with a precise phase. It runs on the
	// query's goroutine and may block.
	PhaseHook func(Phase, string)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.BatchRows <= 0 {
		c.BatchRows = 256
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 64
	}
	return c
}

// Server serves the wire protocol over one pdwqo.DB. All sessions share
// the DB's plan cache and appliance; per-session state (prepared
// statements, epoch snapshot, in-flight query) lives in the session.
type Server struct {
	db   *pdwqo.DB
	cfg  Config
	adm  *admission
	base context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	nextSession atomic.Uint64
	queries     atomic.Uint64 // terminal responses sent, ok or error

	mu        sync.Mutex
	listeners map[net.Listener]bool
	conns     map[net.Conn]bool
	closed    bool
}

// New builds a Server over db with cfg.
func New(db *pdwqo.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, stop := context.WithCancel(context.Background())
	return &Server{
		db:        db,
		cfg:       cfg,
		adm:       newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout),
		base:      base,
		stop:      stop,
		listeners: map[net.Listener]bool{},
		conns:     map[net.Conn]bool{},
	}
}

// Serve accepts connections on l until l is closed or the server shuts
// down, serving each connection on its own goroutine. It returns nil
// after Shutdown, otherwise the accept error.
func (s *Server) Serve(l net.Listener) error {
	if !s.track(l) {
		l.Close()
		return errf(CodeShutdown, "server is shut down")
	}
	defer s.untrack(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.base.Err() != nil {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Listen starts serving on a fresh TCP listener bound to addr (use
// "127.0.0.1:0" for an ephemeral test port) and returns its address.
// Serve runs on a background goroutine owned by the server.
func (s *Server) Listen(addr string) (net.Addr, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, errf(CodeShutdown, "server is shut down")
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(l)
	}()
	return l.Addr(), nil
}

// ServeConn runs one session over an established connection (any
// net.Conn, including net.Pipe ends in tests) and returns when the
// session ends. The connection is always closed on return.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.trackConn(conn) {
		conn.Close()
		return
	}
	defer s.untrackConn(conn)
	sess := &session{
		srv:  s,
		conn: conn,
		id:   s.nextSession.Add(1),
	}
	sess.run()
}

// Shutdown stops the server: no new connections are accepted, every
// session's in-flight query is cancelled and answered with a typed
// CodeShutdown error, and all connections close. It blocks until every
// session goroutine has exited, so a return from Shutdown means no
// server goroutines remain.
func (s *Server) Shutdown() {
	s.stop()
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()
	// Sessions notice base cancellation at their next select and close
	// their own connections; no force-close is needed because every
	// session blocking point (frame wait, worker wait, admission wait,
	// engine step) selects on the base context.
	s.wg.Wait()
}

// Stats is a snapshot of server-wide counters.
type Stats struct {
	// Sessions is how many sessions have ever been opened.
	Sessions uint64
	// Queries is how many queries reached a terminal response (Done or
	// Error), ExecStmt included.
	Queries uint64
	// Admission is the admission gate's counter snapshot.
	Admission AdmissionStats
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Sessions:  s.nextSession.Load(),
		Queries:   s.queries.Load(),
		Admission: s.adm.stats(),
	}
}

// track registers a listener; false means the server is already shut
// down.
func (s *Server) track(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[l] = true
	return true
}

func (s *Server) untrack(l net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, l)
	l.Close()
}

func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = true
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
	c.Close()
}

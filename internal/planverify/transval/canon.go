package transval

import (
	"fmt"
	"strings"

	"pdwqo/internal/algebra"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// Both sides of the translation validator render predicates into the same
// canonical text before comparing: column references collapse to c<id>,
// parameter slots to ?<slot>, constants to their SQL literal form, and
// symmetric/flippable comparisons to a fixed operand order. Conjuncts that
// reference no columns and carry no parameter slot (the generator's `1 = 1`
// EXISTS default, the empty-Values `1 = 0` guard) are dropped symmetrically
// on both sides, so only value-bearing predicate content is compared.

// Logic/arithmetic operators referenced across both interpreters.
const (
	binOpAnd = sqlparser.OpAnd
	binOpOr  = sqlparser.OpOr
	binOpDiv = sqlparser.OpDiv
)

// sqlTypeName mirrors dsql's typeName mapping so CAST targets canonicalize
// to the same text the generator emitted.
func sqlTypeName(k types.Kind) string {
	switch k {
	case types.KindBool:
		return "BIT"
	case types.KindInt:
		return "BIGINT"
	case types.KindFloat:
		return "FLOAT"
	case types.KindString:
		return "VARCHAR"
	case types.KindDate:
		return "DATE"
	default:
		return "BIGINT"
	}
}

// canonBinary renders a binary operation with normalized operand order:
// > and >= flip into < and <=, and the symmetric = / <> sort their operand
// texts, so `a = b` and `b = a` compare equal.
func canonBinary(op sqlparser.BinOp, l, r string) string {
	switch op {
	case sqlparser.OpGt, sqlparser.OpGe:
		op = op.Flip()
		l, r = r, l
	case sqlparser.OpEq, sqlparser.OpNe:
		if r < l {
			l, r = r, l
		}
	}
	return "(" + l + " " + op.String() + " " + r + ")"
}

// canonScalar renders a bound (plan-side) scalar canonically.
func canonScalar(e algebra.Scalar) string {
	switch x := e.(type) {
	case *algebra.ColRef:
		return fmt.Sprintf("c%d", x.ID)
	case *algebra.Const:
		if slot, ok := x.Slot(); ok {
			return fmt.Sprintf("?%d", slot)
		}
		return x.Val.SQLLiteral()
	case *algebra.Binary:
		return canonBinary(x.Op, canonScalar(x.L), canonScalar(x.R))
	case *algebra.Not:
		return "NOT (" + canonScalar(x.E) + ")"
	case *algebra.Neg:
		// The parser folds "-5" into a negative literal, so a plan-side
		// negation of a plain numeric constant canonicalizes the same way.
		if c, ok := x.E.(*algebra.Const); ok && c.Param == 0 && c.Val.Kind().Numeric() {
			if c.Val.Kind() == types.KindInt {
				return types.NewInt(-c.Val.Int()).SQLLiteral()
			}
			return types.NewFloat(-c.Val.Float()).SQLLiteral()
		}
		return "(-" + canonScalar(x.E) + ")"
	case *algebra.IsNull:
		if x.Negated {
			return canonScalar(x.E) + " IS NOT NULL"
		}
		return canonScalar(x.E) + " IS NULL"
	case *algebra.Like:
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return canonScalar(x.E) + " " + n + "LIKE " + types.NewString(x.Pattern).SQLLiteral()
	case *algebra.InList:
		parts := make([]string, len(x.List))
		for i, el := range x.List {
			parts[i] = canonScalar(el)
		}
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return canonScalar(x.E) + " " + n + "IN (" + strings.Join(parts, ", ") + ")"
	case *algebra.Func:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = canonScalar(a)
		}
		return x.Name + "(" + strings.Join(parts, ", ") + ")"
	case *algebra.Case:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range x.Whens {
			b.WriteString(" WHEN " + canonScalar(w.Cond) + " THEN " + canonScalar(w.Then))
		}
		if x.Else != nil {
			b.WriteString(" ELSE " + canonScalar(x.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *algebra.Cast:
		return "CAST(" + canonScalar(x.E) + " AS " + sqlTypeName(x.To) + ")"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// scalarValueBearing reports whether a plan-side conjunct references any
// column or parameter slot; value-free conjuncts are generator scaffolding
// and are excluded from the predicate comparison.
func scalarValueBearing(e algebra.Scalar) bool {
	found := false
	algebra.VisitScalar(e, func(s algebra.Scalar) {
		switch x := s.(type) {
		case *algebra.ColRef:
			found = true
		case *algebra.Const:
			if x.Param > 0 {
				found = true
			}
		}
	})
	return found
}

SELECT g3, COUNT(*) AS cnt, SUM(v0) AS sv
FROM st00, st01, st02, st03, st04, st05, st06, st07, st08, st09, st10, st11, st12, st13, st14, st15, st16, st17, st18, st19, st20, st21, st22, st23
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k0 = f4
  AND k0 = f5
  AND k0 = f6
  AND k0 = f7
  AND k0 = f8
  AND k0 = f9
  AND k0 = f10
  AND k0 = f11
  AND k0 = f12
  AND k0 = f13
  AND k0 = f14
  AND k0 = f15
  AND k0 = f16
  AND k0 = f17
  AND k0 = f18
  AND k0 = f19
  AND k0 = f20
  AND k0 = f21
  AND k0 = f22
  AND k0 = f23
  AND v5 <= 175
  AND v11 <= 718
  AND v12 <= 238
  AND v14 <= 99
  AND v15 <= 225
  AND v17 <= 122
  AND v18 <= 380
  AND v19 <= 111
  AND v23 <= 368
GROUP BY g3

package a

import (
	"pdwqo/internal/exec"
	"pdwqo/internal/types"
)

func bad(v types.Value) bool {
	return exec.Truthy(v) // want `bare exec.Truthy`
}

func badAliased(v types.Value) bool {
	truthy := exec.Truthy
	return truthy(v) // the alias hides the call; only direct calls are flagged
}

func checked(v types.Value) (bool, error) {
	return exec.TruthyChecked(v)
}

func unrelated(v types.Value) bool {
	return Truthy(v)
}

// Truthy is a local function that happens to share the name; it must
// not be flagged.
func Truthy(v types.Value) bool {
	ok, _ := exec.TruthyChecked(v)
	return ok
}

// allowedDoc runs on values whose kind the caller already proved BIT.
//
//pdwlint:allow baretruthy
func allowedDoc(v types.Value) bool {
	return exec.Truthy(v)
}

func allowedLine(v types.Value) bool {
	return exec.Truthy(v) //pdwlint:allow baretruthy
}

// Golden-file suite locking down EXPLAIN output for the full TPC-H
// corpus. The external test package may import pdwqo (which itself
// imports internal/explain) without a cycle — test-only imports are
// outside the package graph.
package explain_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdwqo"
)

var update = flag.Bool("update", false, "rewrite the golden EXPLAIN files")

// The golden corpus configuration. Changing any of these regenerates
// different plans — bump the goldens with -update in the same change.
const (
	goldenSF    = 0.01
	goldenNodes = 4
	goldenSeed  = 42
)

var goldenDB *pdwqo.DB

func TestMain(m *testing.M) {
	flag.Parse()
	var err error
	goldenDB, err = pdwqo.OpenTPCH(goldenSF, goldenNodes, goldenSeed)
	if err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// TestExplainGoldens locks the EXPLAIN text of every adapted TPC-H query
// against testdata/explain/<q>.golden, and requires the serial and
// parallel enumerators to render byte-identical output (EXPLAIN shows
// search statistics, so this also certifies that OptionsConsidered /
// OptionsRetained are deterministic under concurrency).
func TestExplainGoldens(t *testing.T) {
	for _, name := range pdwqo.TPCHQueryNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sql, ok := pdwqo.TPCHQuery(name)
			if !ok {
				t.Fatalf("missing TPC-H query %s", name)
			}
			serial, err := goldenDB.Optimize(sql, pdwqo.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := goldenDB.Optimize(sql, pdwqo.Options{Parallelism: goldenNodes})
			if err != nil {
				t.Fatal(err)
			}
			got, err := serial.ExplainText()
			if err != nil {
				t.Fatal(err)
			}
			gotPar, err := parallel.ExplainText()
			if err != nil {
				t.Fatal(err)
			}
			if got != gotPar {
				t.Errorf("serial and parallel EXPLAIN diverge:%s", firstDiff(got, gotPar))
			}
			compareGolden(t, filepath.Join("testdata", "explain", name+".golden"), got)
		})
	}
}

// TestExplainJSONGolden locks the machine-readable shape for one
// representative query (q05: two moves plus a return).
func TestExplainJSONGolden(t *testing.T) {
	sql, _ := pdwqo.TPCHQuery("q05")
	plan, err := goldenDB.Optimize(sql, pdwqo.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.ExplainJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "explain", "q05.json.golden"), got)
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with: go test ./internal/explain -run TestExplain -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("EXPLAIN output drifted from %s (re-bless with -update if intended):%s",
			path, firstDiff(string(want), got))
	}
}

// firstDiff points at the first differing line to keep failures readable.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("\n  line %d:\n    want %s\n    got  %s", i+1, al[i], bl[i])
		}
	}
	return "\n  (outputs differ in length)"
}

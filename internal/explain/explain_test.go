package explain

import (
	"math"
	"strings"
	"testing"
	"time"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/engine"
)

// fakeInput builds a tiny synthetic plan: one shuffle move feeding a
// return step, enough to exercise every render path without a database.
func fakeInput() Input {
	leaf := &core.Option{
		Op:   &algebra.Get{Table: &catalog.Table{Name: "orders"}},
		Dist: core.HashOn(1), Rows: 100, Width: 8,
	}
	move := &core.Option{
		Move: &core.MoveSpec{Kind: cost.Shuffle, Col: 2},
		Inputs: []*core.Option{leaf},
		Dist:   core.HashOn(2), Rows: 100, Width: 8, DMSCost: 800,
	}
	return Input{
		SQL:  "SELECT 1",
		Plan: &core.Plan{Root: move, TotalCost: 800, Groups: 2, OptionsConsidered: 10, OptionsRetained: 4},
		DSQL: &dsql.Plan{Steps: []dsql.Step{
			{ID: 0, Kind: dsql.StepMove, SQL: "SELECT a\nFROM t", Where: core.DistHash,
				MoveKind: cost.Shuffle, HashCol: "c2", Dest: "TEMP_ID_1",
				Rows: 100, Width: 8, MoveCost: 800},
			{ID: 1, Kind: dsql.StepReturn, SQL: "SELECT * FROM [tempdb].[TEMP_ID_1]",
				Where: core.DistSingle, Rows: 100, Width: 8},
		}},
	}
}

func TestRenderExplainText(t *testing.T) {
	out, err := Render(fakeInput(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cost=800 groups=2 options considered=10 retained=4",
		"SHUFFLE(c2)",
		"Get(orders)",
		"step 0: DMS SHUFFLE(c2) -> TEMP_ID_1  on distributed  [est_rows=100 est_bytes=800 est_cost=800]",
		"step 1: RETURN  on single-node",
		"    FROM t", // multi-line SQL stays indented
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "actual:") || strings.Contains(out, "analyze summary") {
		t.Errorf("plain EXPLAIN must not include ANALYZE sections:\n%s", out)
	}
}

func TestRenderAnalyzeText(t *testing.T) {
	in := fakeInput()
	in.Actuals = []engine.StepMetric{
		{StepID: 0, IsMove: true, Move: cost.Shuffle, Rows: 50, Bytes: 400, Attempts: 2, Duration: time.Millisecond},
		{StepID: 1, Rows: 50, Bytes: 400, Attempts: 1},
	}
	in.Retries = 1
	in.Elapsed = 5 * time.Millisecond
	out, err := Render(in, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"actual: rows=50 bytes=400 attempts=2 time=1ms q_rows=2 q_bytes=2",
		"-- analyze summary",
		"elapsed=5ms steps=2/2 bytes_moved=400 retries=1 faults=0",
		"move q-error (rows):  n=1 mean=2 max=2",
		"move q-error (bytes): n=1 mean=2 max=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ANALYZE missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAnalyzeIncompleteExecution(t *testing.T) {
	in := fakeInput()
	in.Actuals = nil // execution failed before any step completed
	out, err := Render(in, Options{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "actual: (step did not complete)") {
		t.Errorf("missing incomplete-step marker:\n%s", out)
	}
	if !strings.Contains(out, "steps=0/2") {
		t.Errorf("summary should count 0 executed steps:\n%s", out)
	}
	if !strings.Contains(out, "move q-error: no move steps executed") {
		t.Errorf("missing empty q-error note:\n%s", out)
	}
}

func TestRenderJSONAnalyze(t *testing.T) {
	in := fakeInput()
	in.Actuals = []engine.StepMetric{
		{StepID: 0, IsMove: true, Move: cost.Shuffle, Rows: 100, Bytes: 800, Attempts: 1},
	}
	out, err := Render(in, Options{Analyze: true, JSON: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"kind": "move"`, `"move": "SHUFFLE"`, `"estBytes": 800`,
		`"actual"`, `"qBytes": 1`, `"analyze"`, `"bytesMoved": 800`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMissingPlan(t *testing.T) {
	if _, err := Render(Input{}, Options{}); err == nil {
		t.Error("Render must reject a missing plan")
	}
}

func TestQErrorHelpers(t *testing.T) {
	if got := fmtQ(math.Inf(1)); got != "inf" {
		t.Errorf("fmtQ(+Inf) = %q", got)
	}
	if got := fmtQ(1.5); got != "1.5" {
		t.Errorf("fmtQ(1.5) = %q", got)
	}
	if g := geoMean([]float64{2, 8}); g != 4 {
		t.Errorf("geoMean(2,8) = %v, want 4", g)
	}
	if !math.IsNaN(geoMean(nil)) {
		t.Error("geoMean(nil) should be NaN")
	}
	if m := maxOf([]float64{1, 3, 2}); m != 3 {
		t.Errorf("maxOf = %v", m)
	}
	if p := qPtr(math.NaN()); p != nil {
		t.Error("qPtr(NaN) should be nil")
	}
	if p := qPtr(math.Inf(1)); p == nil || *p != -1 {
		t.Error("qPtr(+Inf) should box the -1 sentinel")
	}
}

func TestWhereName(t *testing.T) {
	cases := map[core.DistKind]string{
		core.DistHash:       "distributed",
		core.DistReplicated: "replicated",
		core.DistSingle:     "single-node",
	}
	for k, want := range cases {
		if got := whereName(k); got != want {
			t.Errorf("whereName(%v) = %q, want %q", k, got, want)
		}
	}
}

// Command pdwcli runs ad-hoc SQL against a generated TPC-H appliance,
// printing the distributed plan and/or results — the "client connection"
// of the paper's Figure 1, one query at a time.
//
// Usage:
//
//	pdwcli [-sf 0.01] [-nodes 8] [-seed 42] [-explain] [-explain-json]
//	       [-analyze] [-trace-out trace.json] [-serial] [-baseline]
//	       [-retries 3] [-step-timeout 1s] [-fault "fail:step=1"]
//	       [-plan-cache 128] [-row-exec] (-q "SELECT ..." | -tpch q20)
//
// -explain prints the plan without executing; -analyze executes and
// prints EXPLAIN ANALYZE (per-step estimates vs actuals with a q-error
// summary); -trace-out writes the full pipeline trace (spans + counters)
// as JSON to a file, or to stdout with "-".
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pdwqo"
)

// runConfig is the validated execution-control flag set.
type runConfig struct {
	retries int
	timeout time.Duration
	faults  *pdwqo.FaultPlan
}

// validateRunFlags checks the resilience and fault-injection flags
// before the expensive appliance construction, so a typo fails in
// milliseconds with a one-line diagnostic instead of after full data
// generation — or as a negative value smuggled into the engine.
func validateRunFlags(retries int, timeout time.Duration, faultStr string) (runConfig, error) {
	if retries < 0 {
		return runConfig{}, fmt.Errorf("-retries must be >= 0, got %d", retries)
	}
	if timeout < 0 {
		return runConfig{}, fmt.Errorf("-step-timeout must be >= 0, got %v", timeout)
	}
	faults, err := pdwqo.ParseFaultSpec(faultStr)
	if err != nil {
		return runConfig{}, fmt.Errorf("invalid -fault spec: %v", err)
	}
	return runConfig{retries: retries, timeout: timeout, faults: faults}, nil
}

func main() {
	var (
		sf        = flag.Float64("sf", 0.01, "TPC-H scale factor")
		nodes     = flag.Int("nodes", 8, "compute nodes")
		seed      = flag.Int64("seed", 42, "generator seed")
		query     = flag.String("q", "", "SQL text to run")
		tpchName  = flag.String("tpch", "", "run a named TPC-H query (q01..q20)")
		explain   = flag.Bool("explain", false, "print the plan instead of executing")
		explainJ  = flag.Bool("explain-json", false, "print the plan as JSON instead of executing")
		analyze   = flag.Bool("analyze", false, "execute and print EXPLAIN ANALYZE (estimates vs actuals)")
		traceOut  = flag.String("trace-out", "", `write the pipeline trace as JSON to this file ("-" = stdout)`)
		serial    = flag.Bool("serial", false, "also run the single-node reference and compare")
		baseline  = flag.Bool("baseline", false, "use the parallelized-best-serial-plan mode")
		maxRows   = flag.Int("rows", 20, "max result rows to print")
		parallel  = flag.Int("parallel", 0, "worker parallelism for enumeration and execution (0 = GOMAXPROCS, 1 = serial)")
		retries   = flag.Int("retries", 0, "max per-step retries for transient failures (0 = off)")
		timeout   = flag.Duration("step-timeout", 0, "per-step attempt timeout (0 = unbounded)")
		faultStr  = flag.String("fault", "", `fault-injection spec, e.g. "fail:step=1,node=2" or "seed=42" (see pdwqo.ParseFaultSpec)`)
		planCache = flag.Int("plan-cache", -1, "install a plan cache with this capacity (0 = default capacity, negative = off) and report its metrics")
		noSplit   = flag.Bool("no-agg-split", false, "disable the partial/final aggregation split (ablation control arm)")
		rowExec   = flag.Bool("row-exec", false, "use the row-at-a-time node executor instead of the vectorized one (ablation control arm)")
		sbudget   = flag.Int("search-budget", 0, "cap on PDW enumeration options before the greedy join-order fallback kicks in (0 = unbounded)")
	)
	flag.Parse()

	sql := *query
	if *tpchName != "" {
		var ok bool
		sql, ok = pdwqo.TPCHQuery(*tpchName)
		if !ok {
			fail(fmt.Errorf("unknown TPC-H query %q (have %v)", *tpchName, pdwqo.TPCHQueryNames()))
		}
	}
	if sql == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := validateRunFlags(*retries, *timeout, *faultStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdwcli:", err)
		os.Exit(2)
	}

	db, err := pdwqo.OpenTPCH(*sf, *nodes, *seed)
	if err != nil {
		fail(err)
	}
	db.SetParallelism(*parallel)
	db.SetRowExec(*rowExec)
	db.SetResilience(cfg.retries, cfg.timeout)
	db.SetFaultPlan(cfg.faults)
	if *planCache >= 0 {
		db.SetPlanCache(*planCache)
	}
	opts := pdwqo.Options{Parallelism: *parallel, MaxRetries: cfg.retries, StepTimeout: cfg.timeout}
	if *baseline {
		opts.Mode = pdwqo.ModeSerialBaseline
	}
	opts.DisableAggSplit = *noSplit
	opts.SearchBudget = *sbudget
	var tracer *pdwqo.Tracer
	if *traceOut != "" {
		tracer = pdwqo.NewTracer()
		opts.Tracer = tracer
		db.SetTracer(tracer)
	}
	plan, err := db.Optimize(sql, opts)
	if err != nil {
		fail(err)
	}
	if c := db.PlanCache(); c != nil {
		m := c.Metrics()
		fmt.Printf("-- plan cache: %s (hits=%d shared=%d misses=%d compiles=%d invalidations=%d)\n",
			plan.CacheStatus, m.Hits, m.Shared, m.Misses, m.Compiles, m.Invalidations)
	}
	switch {
	case *explainJ:
		out, err := plan.ExplainJSON()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	case *explain:
		out, err := plan.ExplainText()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	case *analyze:
		res, report, execErr := db.ExplainAnalyze(plan, false)
		fmt.Print(report)
		if execErr != nil {
			dumpTrace(db, tracer, *traceOut)
			fail(execErr)
		}
		fmt.Printf("-- %d rows\n", len(res.Rows))
	default:
		res, err := db.ExecutePlan(plan)
		if err != nil {
			dumpTrace(db, tracer, *traceOut)
			fail(err)
		}
		if plan.Regime != "" {
			fmt.Printf("-- search regime: %s\n", plan.Regime)
		}
		fmt.Printf("-- %d rows, DMS cost %.6g, moves %v\n", len(res.Rows), plan.Cost(), plan.Moves())
		if cfg.faults != nil || cfg.retries > 0 {
			m := &db.Appliance().Metrics
			fmt.Printf("-- resilience: %d faults injected, %d retries\n", m.FaultCount(), m.RetryCount())
		}
		printRows(res, *maxRows)
		if *serial {
			ref, err := db.ExecuteSerial(sql)
			if err != nil {
				fail(err)
			}
			fmt.Printf("-- serial reference: %d rows (match: %v)\n", len(ref.Rows), len(ref.Rows) == len(res.Rows))
		}
	}
	dumpTrace(db, tracer, *traceOut)
}

// dumpTrace writes the trace JSON to path ("-" = stdout). The appliance's
// cumulative metrics are exported into the counter registry first, so the
// file carries both spans and final exec.* totals.
func dumpTrace(db *pdwqo.DB, tracer *pdwqo.Tracer, path string) {
	if tracer == nil || path == "" {
		return
	}
	db.Appliance().Metrics.Export(tracer.Counters())
	data, err := tracer.JSON()
	if err != nil {
		fail(err)
	}
	if path == "-" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "pdwcli: trace written to %s\n", path)
}

func printRows(res *pdwqo.Result, max int) {
	fmt.Println(joinCols(res.Columns))
	for i, row := range res.Rows {
		if i == max {
			fmt.Printf("... (%d more)\n", len(res.Rows)-max)
			return
		}
		for j, v := range row {
			if j > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
}

func joinCols(cols []string) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += " | "
		}
		out += c
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pdwcli:", err)
	os.Exit(1)
}

package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[Op][]byte{
		OpHello:    []byte("hello payload"),
		OpQuery:    {},
		OpDone:     {0x00, 0x01, 0xff},
		OpRowBatch: bytes.Repeat([]byte{0xAB}, 4096),
	}
	order := []Op{OpHello, OpQuery, OpDone, OpRowBatch}
	for _, op := range order {
		if err := WriteFrame(&buf, op, payloads[op]); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range order {
		gotOp, gotP, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotOp != op {
			t.Errorf("op = %s, want %s", gotOp, op)
		}
		if !bytes.Equal(gotP, payloads[op]) {
			t.Errorf("payload mismatch for %s", op)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("exhausted stream must return io.EOF, got %v", err)
	}
}

func TestReadFrameMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty length", []byte{0, 0, 0, 0}},
		{"oversized length", []byte{0xff, 0xff, 0xff, 0xff, 0x01}},
		{"truncated header", []byte{0, 0}},
		{"truncated body", []byte{0, 0, 0, 9, byte(OpQuery), 'S', 'E', 'L'}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.raw))
			if CodeOf(err) != CodeProtocol {
				t.Errorf("want CodeProtocol, got %v", err)
			}
		})
	}
	// A clean EOF mid-header (after zero bytes) is io.EOF, not a protocol
	// error: it is how every well-behaved connection ends.
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: want io.EOF, got %v", err)
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e enc
	e.u8(7)
	e.u16(300)
	e.u32(70000)
	e.u64(1 << 40)
	e.str("hello")
	e.str("")
	d := &dec{b: e.b}
	if d.u8() != 7 || d.u16() != 300 || d.u32() != 70000 || d.u64() != 1<<40 {
		t.Error("integer round trip")
	}
	if d.str() != "hello" || d.str() != "" {
		t.Error("string round trip")
	}
	if err := d.done(); err != nil {
		t.Errorf("clean payload: %v", err)
	}
}

func TestDecPoisoning(t *testing.T) {
	d := &dec{b: []byte{0x01}}
	d.u32() // underflows: poisons the decoder
	if d.err() == nil {
		t.Fatal("underflow must poison")
	}
	if d.u8() != 0 || d.u16() != 0 || d.u64() != 0 || d.str() != "" {
		t.Error("poisoned reads must return zero values")
	}
	if CodeOf(d.done()) != CodeProtocol {
		t.Error("done must surface the poison error")
	}

	// A string length that overruns the payload must not allocate.
	var e enc
	e.u32(1 << 30)
	d = &dec{b: e.b}
	if d.str() != "" || d.err() == nil {
		t.Error("overrunning string must poison, not allocate")
	}

	// Trailing garbage is a protocol error.
	d = &dec{b: []byte{1, 2, 3}}
	d.u8()
	if CodeOf(d.done()) != CodeProtocol {
		t.Error("trailing bytes must fail done")
	}
}

func TestErrorAndCodeStrings(t *testing.T) {
	codes := []Code{CodeProtocol, CodeHandshake, CodeBusy, CodeQueueFull, CodeQueueTimeout,
		CodeCancelled, CodeShutdown, CodeStmtNotFound, CodeBadParams, CodeTooManyStmts, CodeExec}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if seen[s] {
			t.Errorf("duplicate code string %q", s)
		}
		seen[s] = true
	}
	if Code(999).String() != "code(999)" {
		t.Error("unknown code string")
	}
	e := &Error{Code: CodeBusy, Msg: "one at a time"}
	if e.Error() != "server: busy: one at a time" {
		t.Errorf("error text = %q", e.Error())
	}
	if (&Error{Code: CodeBusy}).Error() != "server: busy" {
		t.Error("message-less error text")
	}
	if CodeOf(nil) != 0 || CodeOf(io.EOF) != 0 {
		t.Error("CodeOf without a wire code must be 0")
	}
	if CodeOf(wrapErr{e}) != CodeBusy {
		t.Error("CodeOf must unwrap")
	}
	ops := []Op{OpHello, OpQuery, OpPrepare, OpExecStmt, OpCloseStmt, OpCancel, OpBye,
		OpHelloAck, OpPrepareAck, OpRowHeader, OpRowBatch, OpDone, OpError}
	names := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if names[s] || strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d string %q", op, s)
		}
		names[s] = true
	}
	if Op(0x7f).String() != "Op(0x7f)" {
		t.Error("unknown op string")
	}
}

type wrapErr struct{ inner error }

func (w wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w wrapErr) Unwrap() error { return w.inner }

// frameBytes renders frames into one byte stream, for fuzz seeds and raw
// protocol tests.
func frameBytes(frames ...[2]any) []byte {
	var buf bytes.Buffer
	for _, f := range frames {
		WriteFrame(&buf, f[0].(Op), f[1].([]byte))
	}
	return buf.Bytes()
}

func helloPayload(magic string, version uint16) []byte {
	var e enc
	e.str(magic)
	e.u16(version)
	return e.b
}

func queryPayload(sql string) []byte {
	var e enc
	e.str(sql)
	return e.b
}

// serveBytes runs raw as one client's byte stream against a fresh
// session of srv and returns when the session exits, draining whatever
// the server writes.
func serveBytes(t testing.TB, srv *Server, raw []byte) {
	t.Helper()
	client, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverEnd)
	}()
	go func() {
		client.SetWriteDeadline(time.Now().Add(5 * time.Second))
		client.Write(raw)
		// Close as soon as the bytes are delivered: for truncated-frame
		// inputs the server is blocked mid-io.ReadFull and only the close
		// can end the session.
		client.Close()
	}()
	io.Copy(io.Discard, client)
	client.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("session did not exit")
	}
}

// FuzzWireDecode throws arbitrary byte streams at a live session:
// truncated frames, oversized lengths, bad opcodes, garbage mid-
// handshake. The invariant is the server's, not the input's: every
// session must terminate without panicking, and every complaint it
// writes must be a well-formed typed Error frame.
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	srv := New(sharedDB(f), Config{MaxConcurrent: 2, MaxQueue: 2})
	defer srv.Shutdown()
	f.Fuzz(func(t *testing.T, raw []byte) {
		client, serverEnd := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.ServeConn(serverEnd)
		}()
		go func() {
			client.SetWriteDeadline(time.Now().Add(2 * time.Second))
			client.Write(raw)
			client.Close()
		}()
		// Drain and validate the server's side of the conversation: it
		// must emit only well-formed frames with server-side opcodes.
		br := bytesReaderFromConn(client)
		for {
			op, p, err := ReadFrame(br)
			if err != nil {
				break
			}
			switch op {
			case OpHelloAck, OpPrepareAck, OpRowHeader, OpRowBatch, OpDone:
			case OpError:
				if e, ok := decodeError(p).(*Error); !ok || e.Code == 0 {
					t.Fatalf("malformed Error frame: %x", p)
				}
			default:
				t.Fatalf("server wrote client-side opcode %s", op)
			}
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("session did not exit")
		}
	})
}

func bytesReaderFromConn(c net.Conn) io.Reader {
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	return c
}

// fuzzSeeds is the in-code seed corpus; the same streams are checked in
// under testdata/fuzz/FuzzWireDecode for the CI fuzz smoke.
func fuzzSeeds() [][]byte {
	hello := frameBytes([2]any{OpHello, helloPayload(Magic, Version)})
	seeds := [][]byte{
		{},
		hello,
		frameBytes(
			[2]any{OpHello, helloPayload(Magic, Version)},
			[2]any{OpQuery, queryPayload("SELECT r_name FROM region ORDER BY r_name")},
			[2]any{OpBye, []byte{}},
		),
		frameBytes(
			[2]any{OpHello, helloPayload(Magic, Version)},
			[2]any{OpPrepare, queryPayload("SELECT n_name FROM nation WHERE n_regionkey = 1")},
		),
		frameBytes([2]any{OpHello, helloPayload("NOPE", Version)}),
		frameBytes([2]any{OpHello, helloPayload(Magic, 99)}),
		frameBytes([2]any{OpQuery, queryPayload("SELECT 1")}),     // query before handshake
		frameBytes([2]any{Op(0x77), []byte("mystery")}),           // unknown opcode
		append(hello, frameBytes([2]any{Op(0x00), []byte{}})...),  // zero opcode after handshake
		append(hello, 0xff, 0xff, 0xff, 0xff),                     // oversized length prefix
		append(hello, 0x00, 0x00, 0x00, 0x09, byte(OpQuery), 'S'), // truncated body
		hello[:len(hello)-3],                                           // truncated handshake
		[]byte("GET / HTTP/1.1\r\nHost: pdw\r\n\r\n"),                  // wrong protocol entirely
		append(hello, frameBytes([2]any{OpCancel, []byte{}})...),       // idle cancel
		append(hello, frameBytes([2]any{OpExecStmt, []byte{0, 0}})...), // truncated ExecStmt payload
	}
	return seeds
}

// TestFuzzSeedsNoLeak runs every seed through a live server and holds
// the satellite invariant directly: no session goroutine survives its
// connection.
func TestFuzzSeedsNoLeak(t *testing.T) {
	srv := New(sharedDB(t), Config{MaxConcurrent: 2, MaxQueue: 2})
	before := runtime.NumGoroutine()
	for _, seed := range fuzzSeeds() {
		serveBytes(t, srv, seed)
	}
	srv.Shutdown()
	assertNoGoroutineGrowth(t, before)
}

// assertNoGoroutineGrowth polls until the goroutine count returns to at
// most the baseline (scheduling is asynchronous; exiting goroutines take
// a beat to be reaped), dumping all stacks on failure.
func assertNoGoroutineGrowth(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWriteFrameSplitWriter exercises the two-write path of WriteFrame
// against a writer that errors on the payload write.
func TestWriteFrameSplitWriter(t *testing.T) {
	w := &failAfter{n: 5}
	if err := WriteFrame(w, OpQuery, []byte("x")); err == nil {
		t.Error("payload write failure must surface")
	}
	w = &failAfter{n: 0}
	if err := WriteFrame(w, OpQuery, nil); err == nil {
		t.Error("header write failure must surface")
	}
}

type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("broken pipe")
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

var _ = binary.BigEndian // keep binary imported for helpers below

SELECT MIN(k2) AS mn, MAX(v1) AS mx, COUNT(*) AS cnt
FROM st00, st01, st02, st03
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3

// Package memoxml implements the interface boundary between the SQL Server
// compilation stack and the PDW engine (paper Figure 2, components 3–4):
// the XML Generator that encodes the optimizer MEMO, and the memo parser
// that reconstructs it on the PDW side. The PDW optimizer consumes only
// this representation — never in-process memo pointers — mirroring the
// "showplan-XML-like" compilation entry point described in §3.1.
//
// Column metadata is hoisted into a single document-level dictionary
// (<Cols>), and every other site — group output lists, scan column lists,
// scalar column references — names columns by id alone. On a 100-relation
// join memo the join conditions repeat the same few hundred columns tens
// of thousands of times; the dictionary keeps the document linear in memo
// size rather than quadratic in join width.
package memoxml

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/memo"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// --- XML schema ---

type xMemo struct {
	XMLName   xml.Name `xml:"Memo"`
	Root      int      `xml:"root,attr"`
	MaxCol    int      `xml:"maxCol,attr"`
	Exhausted bool     `xml:"exhausted,attr,omitempty"`
	Cols      []xCol   `xml:"Cols>Col,omitempty"`
	Groups    []xGroup `xml:"Group"`
}

type xGroup struct {
	ID    int        `xml:"id,attr"`
	Rows  float64    `xml:"rows,attr"`
	Width float64    `xml:"width,attr"`
	Out   string     `xml:"out,attr,omitempty"`
	Stats []xColStat `xml:"Stats>Col,omitempty"`
	Keys  []string   `xml:"Keys>Key,omitempty"`
	Exprs []xExpr    `xml:"Expr"`
}

type xCol struct {
	ID   int    `xml:"id,attr"`
	Name string `xml:"name,attr"`
	Qual string `xml:"qual,attr,omitempty"`
	Type uint8  `xml:"type,attr"`
}

type xColStat struct {
	ID       int     `xml:"id,attr"`
	NDV      float64 `xml:"ndv,attr"`
	NullFrac float64 `xml:"nullFrac,attr"`
	Width    float64 `xml:"width,attr"`
}

type xExpr struct {
	Op       string  `xml:"op,attr"`
	Children string  `xml:"children,attr,omitempty"`
	Physical bool    `xml:"physical,attr,omitempty"`
	Algo     string  `xml:"algo,attr,omitempty"`
	Cost     float64 `xml:"cost,attr,omitempty"`
	Winner   bool    `xml:"winner,attr,omitempty"`

	// Payload variants (exactly one populated, matching Op).
	Table    string       `xml:"table,attr,omitempty"`
	Alias    string       `xml:"alias,attr,omitempty"`
	Cols     string       `xml:"cols,attr,omitempty"`
	Filter   *xScalar     `xml:"Filter>S"`
	Defs     []xProjDef   `xml:"Defs>Def,omitempty"`
	JoinKind uint8        `xml:"joinKind,attr,omitempty"`
	On       *xScalar     `xml:"On>S"`
	Keys     string       `xml:"keys,attr,omitempty"`
	Aggs     []xAgg       `xml:"Aggs>Agg,omitempty"`
	Phase    uint8        `xml:"phase,attr,omitempty"`
	SortKeys []xSortKey   `xml:"SortKeys>Key,omitempty"`
	Top      int64        `xml:"top,attr,omitempty"`
	Rows     []xValuesRow `xml:"Rows>Row,omitempty"`
}

type xValuesRow struct {
	Vals []xScalar `xml:"V"`
}

type xProjDef struct {
	ID   int     `xml:"id,attr"`
	Name string  `xml:"name,attr"`
	Expr xScalar `xml:"S"`
}

type xAgg struct {
	Func     uint8    `xml:"func,attr"`
	Distinct bool     `xml:"distinct,attr,omitempty"`
	ID       int      `xml:"id,attr"`
	Name     string   `xml:"name,attr"`
	Arg      *xScalar `xml:"S"`
}

type xSortKey struct {
	ID   int  `xml:"id,attr"`
	Desc bool `xml:"desc,attr,omitempty"`
}

// xScalar is the recursive scalar-expression encoding. Column references
// name dictionary ids: a bare reference is kind="col" col="N", and a
// binary operator over two bare references collapses to l="N" r="M" with
// no child elements — the dominant shape in large join conditions.
type xScalar struct {
	Kind string `xml:"kind,attr"`

	ColID   int       `xml:"col,attr,omitempty"`
	L       int       `xml:"l,attr,omitempty"`
	R       int       `xml:"r,attr,omitempty"`
	Val     string    `xml:"val,attr,omitempty"`
	ValKind uint8     `xml:"valKind,attr,omitempty"`
	Param   int       `xml:"param,attr,omitempty"`
	Op      uint8     `xml:"binop,attr,omitempty"`
	Negated bool      `xml:"negated,attr,omitempty"`
	Pattern string    `xml:"pattern,attr,omitempty"`
	Name    string    `xml:"name,attr,omitempty"`
	OutKind uint8     `xml:"outKind,attr,omitempty"`
	Args    []xScalar `xml:"S"`
}

// --- Encoding ---

// encoder accumulates the column dictionary while serializing: the first
// sighting of a column id registers its metadata, every later sighting
// emits the id alone.
type encoder struct {
	dict  map[algebra.ColumnID]xCol
	order []algebra.ColumnID
}

// ref registers a column in the dictionary (first sighting wins) and
// returns its id for attribute encoding.
func (enc *encoder) ref(id algebra.ColumnID, m algebra.ColumnMeta) int {
	if _, ok := enc.dict[id]; !ok {
		enc.dict[id] = xCol{ID: int(id), Name: m.Name, Qual: m.Qual, Type: uint8(m.Type)}
		enc.order = append(enc.order, id)
	}
	return int(id)
}

// colList encodes an ordered column-meta list as a comma-joined id string.
func (enc *encoder) colList(cols []algebra.ColumnMeta) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = strconv.Itoa(enc.ref(c.ID, c))
	}
	return strings.Join(parts, ",")
}

// Encode serializes a memo (groups, logical and physical expressions,
// statistics, winners) as XML.
func Encode(m *memo.Memo) ([]byte, error) {
	maxCol := 0
	enc := &encoder{dict: map[algebra.ColumnID]xCol{}}
	x := xMemo{Root: int(m.Root)}
	x.Exhausted = m.Exhausted()
	for _, g := range m.Groups[1:] {
		if g == nil || len(g.Exprs) == 0 {
			continue
		}
		xg := xGroup{ID: int(g.ID)}
		if g.Props != nil {
			xg.Rows = g.Props.Rows
			xg.Width = g.Props.Width
			xg.Out = enc.colList(g.Props.OutCols)
			for _, c := range g.Props.OutCols {
				if int(c.ID) > maxCol {
					maxCol = int(c.ID)
				}
			}
			for _, id := range sortedStatIDs(g.Props) {
				cs := g.Props.Cols[id]
				xg.Stats = append(xg.Stats, xColStat{ID: int(id), NDV: cs.NDV, NullFrac: cs.NullFrac, Width: cs.Width})
			}
			for _, k := range g.Props.Keys {
				xg.Keys = append(xg.Keys, colSetString(k))
			}
		}
		winner := g.Winner()
		for _, e := range g.Exprs {
			xe, err := enc.encodeExpr(e)
			if err != nil {
				return nil, err
			}
			if e == winner {
				xe.Winner = true
			}
			xg.Exprs = append(xg.Exprs, xe)
		}
		x.Groups = append(x.Groups, xg)
	}
	x.MaxCol = maxCol + 1
	for _, id := range enc.order {
		x.Cols = append(x.Cols, enc.dict[id])
	}
	out, err := xml.MarshalIndent(x, "", " ")
	if err != nil {
		return nil, fmt.Errorf("memoxml: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

func sortedStatIDs(p *memo.LogicalProps) []algebra.ColumnID {
	s := algebra.NewColSet()
	for id := range p.Cols {
		s.Add(id)
	}
	return s.Sorted()
}

func colSetString(s algebra.ColSet) string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(int(id))
	}
	return strings.Join(parts, ",")
}

func (enc *encoder) encodeExpr(e *memo.GroupExpr) (xExpr, error) {
	children := make([]string, len(e.Children))
	for i, c := range e.Children {
		children[i] = strconv.Itoa(int(c))
	}
	xe := xExpr{Children: strings.Join(children, ","), Physical: e.Physical, Cost: e.Cost}
	op := e.Op
	if p, ok := op.(*algebra.Phys); ok {
		xe.Algo = p.Algo
		op = p.Of
	}
	if err := enc.encodeOp(&xe, op); err != nil {
		return xe, err
	}
	return xe, nil
}

func (enc *encoder) encodeOp(xe *xExpr, op algebra.Operator) error {
	switch o := op.(type) {
	case *algebra.Get:
		xe.Op = "Get"
		xe.Table = o.Table.Name
		xe.Alias = o.Alias
		xe.Cols = enc.colList(o.Cols)
	case *algebra.Values:
		xe.Op = "Values"
		xe.Cols = enc.colList(o.Cols)
		for _, row := range o.Rows {
			xr := xValuesRow{}
			for _, v := range row {
				xr.Vals = append(xr.Vals, *encodeConst(v))
			}
			xe.Rows = append(xe.Rows, xr)
		}
	case *algebra.Select:
		xe.Op = "Select"
		s, err := enc.encodeScalar(o.Filter)
		if err != nil {
			return err
		}
		xe.Filter = s
	case *algebra.Project:
		xe.Op = "Project"
		for _, d := range o.Defs {
			s, err := enc.encodeScalar(d.Expr)
			if err != nil {
				return err
			}
			xe.Defs = append(xe.Defs, xProjDef{ID: int(d.ID), Name: d.Name, Expr: *s})
		}
	case *algebra.Join:
		xe.Op = "Join"
		xe.JoinKind = uint8(o.Kind)
		if o.On != nil {
			s, err := enc.encodeScalar(o.On)
			if err != nil {
				return err
			}
			xe.On = s
		}
	case *algebra.GroupBy:
		xe.Op = "GroupBy"
		xe.Phase = uint8(o.Phase)
		keys := make([]string, len(o.Keys))
		for i, k := range o.Keys {
			keys[i] = strconv.Itoa(int(k))
		}
		xe.Keys = strings.Join(keys, ",")
		for _, a := range o.Aggs {
			xa := xAgg{Func: uint8(a.Func), Distinct: a.Distinct, ID: int(a.ID), Name: a.Name}
			if a.Arg != nil {
				s, err := enc.encodeScalar(a.Arg)
				if err != nil {
					return err
				}
				xa.Arg = s
			}
			xe.Aggs = append(xe.Aggs, xa)
		}
	case *algebra.Sort:
		xe.Op = "Sort"
		xe.Top = o.Top
		for _, k := range o.Keys {
			xe.SortKeys = append(xe.SortKeys, xSortKey{ID: int(k.ID), Desc: k.Desc})
		}
	case *algebra.UnionAll:
		xe.Op = "UnionAll"
	default:
		return fmt.Errorf("memoxml: cannot encode operator %T", op)
	}
	return nil
}

func (enc *encoder) encodeScalar(e algebra.Scalar) (*xScalar, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		return &xScalar{Kind: "col", ColID: enc.ref(x.ID, x.Meta)}, nil
	case *algebra.Const:
		s := encodeConst(x.Val)
		s.Param = x.Param
		return s, nil
	case *algebra.Binary:
		// Two bare column references — the dominant shape in join
		// conditions — collapse to a single element with l/r attributes.
		if lc, lok := x.L.(*algebra.ColRef); lok {
			if rc, rok := x.R.(*algebra.ColRef); rok {
				return &xScalar{
					Kind: "bin", Op: uint8(x.Op),
					L: enc.ref(lc.ID, lc.Meta), R: enc.ref(rc.ID, rc.Meta),
				}, nil
			}
		}
		l, err := enc.encodeScalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := enc.encodeScalar(x.R)
		if err != nil {
			return nil, err
		}
		return &xScalar{Kind: "bin", Op: uint8(x.Op), Args: []xScalar{*l, *r}}, nil
	case *algebra.Not:
		a, err := enc.encodeScalar(x.E)
		if err != nil {
			return nil, err
		}
		return &xScalar{Kind: "not", Args: []xScalar{*a}}, nil
	case *algebra.Neg:
		a, err := enc.encodeScalar(x.E)
		if err != nil {
			return nil, err
		}
		return &xScalar{Kind: "neg", Args: []xScalar{*a}}, nil
	case *algebra.IsNull:
		a, err := enc.encodeScalar(x.E)
		if err != nil {
			return nil, err
		}
		return &xScalar{Kind: "isnull", Negated: x.Negated, Args: []xScalar{*a}}, nil
	case *algebra.Like:
		a, err := enc.encodeScalar(x.E)
		if err != nil {
			return nil, err
		}
		return &xScalar{Kind: "like", Negated: x.Negated, Pattern: x.Pattern, Args: []xScalar{*a}}, nil
	case *algebra.InList:
		out := &xScalar{Kind: "inlist", Negated: x.Negated}
		a, err := enc.encodeScalar(x.E)
		if err != nil {
			return nil, err
		}
		out.Args = append(out.Args, *a)
		for _, el := range x.List {
			s, err := enc.encodeScalar(el)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, *s)
		}
		return out, nil
	case *algebra.Func:
		out := &xScalar{Kind: "func", Name: x.Name, OutKind: uint8(x.Out)}
		for _, a := range x.Args {
			s, err := enc.encodeScalar(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, *s)
		}
		return out, nil
	case *algebra.Case:
		out := &xScalar{Kind: "case"}
		for _, w := range x.Whens {
			c, err := enc.encodeScalar(w.Cond)
			if err != nil {
				return nil, err
			}
			t, err := enc.encodeScalar(w.Then)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, *c, *t)
		}
		if x.Else != nil {
			e2, err := enc.encodeScalar(x.Else)
			if err != nil {
				return nil, err
			}
			out.Negated = true // marks presence of ELSE
			out.Args = append(out.Args, *e2)
		}
		return out, nil
	case *algebra.Cast:
		a, err := enc.encodeScalar(x.E)
		if err != nil {
			return nil, err
		}
		return &xScalar{Kind: "cast", OutKind: uint8(x.To), Args: []xScalar{*a}}, nil
	case *algebra.Subquery:
		return nil, fmt.Errorf("memoxml: subquery survived normalization")
	default:
		return nil, fmt.Errorf("memoxml: cannot encode scalar %T", e)
	}
}

func encodeConst(v types.Value) *xScalar {
	out := &xScalar{Kind: "const", ValKind: uint8(v.Kind())}
	switch v.Kind() {
	case types.KindNull:
	case types.KindBool:
		out.Val = strconv.FormatBool(v.Bool())
	case types.KindInt:
		out.Val = strconv.FormatInt(v.Int(), 10)
	case types.KindFloat:
		out.Val = strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case types.KindString:
		out.Val = v.Str()
	case types.KindDate:
		out.Val = strconv.FormatInt(v.DateDays(), 10)
	}
	return out
}

// --- Decoding ---

// DecodedExpr is one parsed group expression.
type DecodedExpr struct {
	Op       algebra.Operator
	Children []int
	Physical bool
	Cost     float64
	Winner   bool
}

// DecodedGroup is one parsed group with its logical properties.
type DecodedGroup struct {
	ID       int
	Rows     float64
	Width    float64
	OutCols  []algebra.ColumnMeta
	ColStats map[algebra.ColumnID]DecodedColStat
	Keys     []algebra.ColSet
	Exprs    []DecodedExpr
}

// DecodedColStat mirrors the exported per-column statistics.
type DecodedColStat struct {
	NDV      float64
	NullFrac float64
	Width    float64
}

// Decoded is the parsed memo, the input to the PDW optimizer.
type Decoded struct {
	Root      int
	MaxCol    int
	Exhausted bool
	Groups    map[int]*DecodedGroup
}

// colDict resolves dictionary ids back to column metadata during decode.
type colDict map[int]algebra.ColumnMeta

func (d colDict) meta(id int) (algebra.ColumnMeta, error) {
	m, ok := d[id]
	if !ok {
		return algebra.ColumnMeta{}, fmt.Errorf("memoxml: column %d missing from dictionary", id)
	}
	return m, nil
}

// metaList resolves a comma-joined id list to ordered column metadata.
func (d colDict) metaList(s string) ([]algebra.ColumnMeta, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]algebra.ColumnMeta, len(parts))
	for i, part := range parts {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("memoxml: bad column id %q", part)
		}
		m, err := d.meta(n)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// Decode parses memo XML, resolving table references against the shell
// database.
func Decode(data []byte, shell *catalog.Shell) (*Decoded, error) {
	var x xMemo
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("memoxml: %w", err)
	}
	dict := colDict{}
	for _, c := range x.Cols {
		dict[c.ID] = decodeColMeta(c)
	}
	out := &Decoded{Root: x.Root, MaxCol: x.MaxCol, Exhausted: x.Exhausted, Groups: map[int]*DecodedGroup{}}
	for _, xg := range x.Groups {
		g := &DecodedGroup{
			ID:       xg.ID,
			Rows:     xg.Rows,
			Width:    xg.Width,
			ColStats: map[algebra.ColumnID]DecodedColStat{},
		}
		var err error
		if g.OutCols, err = dict.metaList(xg.Out); err != nil {
			return nil, err
		}
		for _, s := range xg.Stats {
			g.ColStats[algebra.ColumnID(s.ID)] = DecodedColStat{NDV: s.NDV, NullFrac: s.NullFrac, Width: s.Width}
		}
		for _, k := range xg.Keys {
			set, err := parseColSet(k)
			if err != nil {
				return nil, err
			}
			g.Keys = append(g.Keys, set)
		}
		for _, xe := range xg.Exprs {
			e, err := decodeExpr(xe, shell, dict)
			if err != nil {
				return nil, err
			}
			g.Exprs = append(g.Exprs, e)
		}
		if _, dup := out.Groups[g.ID]; dup {
			return nil, fmt.Errorf("memoxml: duplicate group id %d", g.ID)
		}
		out.Groups[g.ID] = g
	}
	if _, ok := out.Groups[out.Root]; !ok {
		return nil, fmt.Errorf("memoxml: root group %d missing", out.Root)
	}
	// Every expression's child references must resolve: a dangling group
	// id would surface much later as a nil dereference inside the PDW
	// enumerator, far from the XML that caused it.
	for _, g := range out.Groups {
		for _, e := range g.Exprs {
			for _, c := range e.Children {
				if _, ok := out.Groups[c]; !ok {
					return nil, fmt.Errorf("memoxml: group %d references unknown child group %d", g.ID, c)
				}
			}
		}
	}
	// The group graph must be acyclic: the bottom-up enumerator's
	// topological order does not exist for a cyclic memo, and the cycle
	// would otherwise surface as non-termination deep inside planning.
	if cyc := findCycle(out); cyc >= 0 {
		return nil, fmt.Errorf("memoxml: group %d participates in a reference cycle", cyc)
	}
	return out, nil
}

// findCycle returns a group id on a reference cycle, or -1 when the
// group graph is acyclic. All groups are roots of the search, not just
// the memo root, so cycles in detached subgraphs are rejected too.
func findCycle(dec *Decoded) int {
	const (
		visiting = 1
		done     = 2
	)
	state := map[int]uint8{}
	var dfs func(id int) int
	dfs = func(id int) int {
		switch state[id] {
		case visiting:
			return id
		case done:
			return -1
		}
		state[id] = visiting
		for _, e := range dec.Groups[id].Exprs {
			for _, c := range e.Children {
				if cyc := dfs(c); cyc >= 0 {
					return cyc
				}
			}
		}
		state[id] = done
		return -1
	}
	for id := range dec.Groups {
		if cyc := dfs(id); cyc >= 0 {
			return cyc
		}
	}
	return -1
}

func decodeColMeta(c xCol) algebra.ColumnMeta {
	return algebra.ColumnMeta{ID: algebra.ColumnID(c.ID), Name: c.Name, Qual: c.Qual, Type: types.Kind(c.Type)}
}

func parseColSet(s string) (algebra.ColSet, error) {
	set := algebra.NewColSet()
	if s == "" {
		return set, nil
	}
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("memoxml: bad column id %q", part)
		}
		set.Add(algebra.ColumnID(n))
	}
	return set, nil
}

func decodeExpr(xe xExpr, shell *catalog.Shell, dict colDict) (DecodedExpr, error) {
	e := DecodedExpr{Physical: xe.Physical, Cost: xe.Cost, Winner: xe.Winner}
	if xe.Children != "" {
		for _, part := range strings.Split(xe.Children, ",") {
			n, err := strconv.Atoi(part)
			if err != nil {
				return e, fmt.Errorf("memoxml: bad child group %q", part)
			}
			e.Children = append(e.Children, n)
		}
	}
	op, err := decodeOp(xe, shell, dict)
	if err != nil {
		return e, err
	}
	if xe.Algo != "" {
		op = algebra.NewPhys(xe.Algo, op)
	}
	e.Op = op
	return e, nil
}

func decodeOp(xe xExpr, shell *catalog.Shell, dict colDict) (algebra.Operator, error) {
	switch xe.Op {
	case "Get":
		tbl := shell.Table(xe.Table)
		if tbl == nil {
			return nil, fmt.Errorf("memoxml: unknown table %q", xe.Table)
		}
		cols, err := dict.metaList(xe.Cols)
		if err != nil {
			return nil, err
		}
		return &algebra.Get{Table: tbl, Alias: xe.Alias, Cols: cols}, nil
	case "Values":
		cols, err := dict.metaList(xe.Cols)
		if err != nil {
			return nil, err
		}
		v := &algebra.Values{Cols: cols}
		for _, xr := range xe.Rows {
			row := make([]types.Value, len(xr.Vals))
			for i, xv := range xr.Vals {
				val, err := decodeConst(xv)
				if err != nil {
					return nil, err
				}
				row[i] = val
			}
			v.Rows = append(v.Rows, row)
		}
		return v, nil
	case "Select":
		if xe.Filter == nil {
			return &algebra.Select{}, nil
		}
		f, err := decodeScalar(*xe.Filter, dict)
		if err != nil {
			return nil, err
		}
		return &algebra.Select{Filter: f}, nil
	case "Project":
		defs := make([]algebra.ProjDef, len(xe.Defs))
		for i, d := range xe.Defs {
			expr, err := decodeScalar(d.Expr, dict)
			if err != nil {
				return nil, err
			}
			defs[i] = algebra.ProjDef{Expr: expr, ID: algebra.ColumnID(d.ID), Name: d.Name}
		}
		return &algebra.Project{Defs: defs}, nil
	case "Join":
		j := &algebra.Join{Kind: algebra.JoinKind(xe.JoinKind)}
		if xe.On != nil {
			on, err := decodeScalar(*xe.On, dict)
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		return j, nil
	case "GroupBy":
		gb := &algebra.GroupBy{Phase: algebra.AggPhase(xe.Phase)}
		if xe.Keys != "" {
			for _, part := range strings.Split(xe.Keys, ",") {
				n, err := strconv.Atoi(part)
				if err != nil {
					return nil, fmt.Errorf("memoxml: bad group key %q", part)
				}
				gb.Keys = append(gb.Keys, algebra.ColumnID(n))
			}
		}
		for _, a := range xe.Aggs {
			def := algebra.AggDef{
				Func:     algebra.AggFunc(a.Func),
				Distinct: a.Distinct,
				ID:       algebra.ColumnID(a.ID),
				Name:     a.Name,
			}
			if a.Arg != nil {
				arg, err := decodeScalar(*a.Arg, dict)
				if err != nil {
					return nil, err
				}
				def.Arg = arg
			}
			gb.Aggs = append(gb.Aggs, def)
		}
		return gb, nil
	case "Sort":
		s := &algebra.Sort{Top: xe.Top}
		for _, k := range xe.SortKeys {
			s.Keys = append(s.Keys, algebra.SortKey{ID: algebra.ColumnID(k.ID), Desc: k.Desc})
		}
		return s, nil
	case "UnionAll":
		return &algebra.UnionAll{}, nil
	}
	return nil, fmt.Errorf("memoxml: unknown operator %q", xe.Op)
}

func decodeScalar(x xScalar, dict colDict) (algebra.Scalar, error) {
	switch x.Kind {
	case "col":
		m, err := dict.meta(x.ColID)
		if err != nil {
			return nil, err
		}
		return &algebra.ColRef{ID: m.ID, Meta: m}, nil
	case "const":
		v, err := decodeConst(x)
		if err != nil {
			return nil, err
		}
		return &algebra.Const{Val: v, Param: x.Param}, nil
	case "bin":
		if x.L > 0 || x.R > 0 {
			lm, err := dict.meta(x.L)
			if err != nil {
				return nil, err
			}
			rm, err := dict.meta(x.R)
			if err != nil {
				return nil, err
			}
			return &algebra.Binary{
				Op: sqlparser.BinOp(x.Op),
				L:  &algebra.ColRef{ID: lm.ID, Meta: lm},
				R:  &algebra.ColRef{ID: rm.ID, Meta: rm},
			}, nil
		}
		if len(x.Args) != 2 {
			return nil, fmt.Errorf("memoxml: binary scalar with %d operands", len(x.Args))
		}
		l, err := decodeScalar(x.Args[0], dict)
		if err != nil {
			return nil, err
		}
		r, err := decodeScalar(x.Args[1], dict)
		if err != nil {
			return nil, err
		}
		return &algebra.Binary{Op: sqlparser.BinOp(x.Op), L: l, R: r}, nil
	case "not":
		a, err := decodeScalar(x.Args[0], dict)
		if err != nil {
			return nil, err
		}
		return &algebra.Not{E: a}, nil
	case "neg":
		a, err := decodeScalar(x.Args[0], dict)
		if err != nil {
			return nil, err
		}
		return &algebra.Neg{E: a}, nil
	case "isnull":
		a, err := decodeScalar(x.Args[0], dict)
		if err != nil {
			return nil, err
		}
		return &algebra.IsNull{E: a, Negated: x.Negated}, nil
	case "like":
		a, err := decodeScalar(x.Args[0], dict)
		if err != nil {
			return nil, err
		}
		return &algebra.Like{E: a, Pattern: x.Pattern, Negated: x.Negated}, nil
	case "inlist":
		a, err := decodeScalar(x.Args[0], dict)
		if err != nil {
			return nil, err
		}
		out := &algebra.InList{E: a, Negated: x.Negated}
		for _, el := range x.Args[1:] {
			s, err := decodeScalar(el, dict)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, s)
		}
		return out, nil
	case "func":
		out := &algebra.Func{Name: x.Name, Out: types.Kind(x.OutKind)}
		for _, a := range x.Args {
			s, err := decodeScalar(a, dict)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, s)
		}
		return out, nil
	case "case":
		out := &algebra.Case{}
		args := x.Args
		if x.Negated { // ELSE present
			e, err := decodeScalar(args[len(args)-1], dict)
			if err != nil {
				return nil, err
			}
			out.Else = e
			args = args[:len(args)-1]
		}
		if len(args)%2 != 0 {
			return nil, fmt.Errorf("memoxml: malformed CASE")
		}
		for i := 0; i < len(args); i += 2 {
			c, err := decodeScalar(args[i], dict)
			if err != nil {
				return nil, err
			}
			t, err := decodeScalar(args[i+1], dict)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, algebra.CaseWhen{Cond: c, Then: t})
		}
		return out, nil
	case "cast":
		a, err := decodeScalar(x.Args[0], dict)
		if err != nil {
			return nil, err
		}
		return &algebra.Cast{E: a, To: types.Kind(x.OutKind)}, nil
	}
	return nil, fmt.Errorf("memoxml: unknown scalar kind %q", x.Kind)
}

func decodeConst(x xScalar) (types.Value, error) {
	switch types.Kind(x.ValKind) {
	case types.KindNull:
		return types.Null, nil
	case types.KindBool:
		b, err := strconv.ParseBool(x.Val)
		if err != nil {
			return types.Null, fmt.Errorf("memoxml: bad bool %q", x.Val)
		}
		return types.NewBool(b), nil
	case types.KindInt:
		n, err := strconv.ParseInt(x.Val, 10, 64)
		if err != nil {
			return types.Null, fmt.Errorf("memoxml: bad int %q", x.Val)
		}
		return types.NewInt(n), nil
	case types.KindFloat:
		f, err := strconv.ParseFloat(x.Val, 64)
		if err != nil {
			return types.Null, fmt.Errorf("memoxml: bad float %q", x.Val)
		}
		return types.NewFloat(f), nil
	case types.KindString:
		return types.NewString(x.Val), nil
	case types.KindDate:
		n, err := strconv.ParseInt(x.Val, 10, 64)
		if err != nil {
			return types.Null, fmt.Errorf("memoxml: bad date %q", x.Val)
		}
		return types.NewDate(n), nil
	}
	return types.Null, fmt.Errorf("memoxml: unknown value kind %d", x.ValKind)
}

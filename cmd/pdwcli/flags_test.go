package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateRunFlags sweeps the -retries / -step-timeout / -fault
// combinations: every invalid combination must fail with a one-line
// diagnostic naming the offending flag, and every valid one must
// produce the expected fault plan without touching the appliance.
func TestValidateRunFlags(t *testing.T) {
	cases := []struct {
		name     string
		retries  int
		timeout  time.Duration
		fault    string
		wantErr  string // substring; empty = must succeed
		wantPlan bool   // expect a non-nil fault plan on success
	}{
		{name: "all defaults", retries: 0, timeout: 0, fault: ""},
		{name: "retries with timeout", retries: 3, timeout: time.Second, fault: ""},
		{name: "explicit fault rule", retries: 1, timeout: 0,
			fault: "fail:step=1,node=2", wantPlan: true},
		{name: "seeded fault plan", retries: 2, timeout: 500 * time.Millisecond,
			fault: "seed=42", wantPlan: true},
		{name: "fault without retries", retries: 0, timeout: 0,
			fault: "fail:step=0", wantPlan: true},
		{name: "negative retries", retries: -1, timeout: 0, fault: "",
			wantErr: "-retries"},
		{name: "negative timeout", retries: 0, timeout: -time.Second, fault: "",
			wantErr: "-step-timeout"},
		{name: "negative retries with valid fault", retries: -2, timeout: 0,
			fault: "seed=7", wantErr: "-retries"},
		{name: "malformed fault kind", retries: 0, timeout: 0,
			fault: "explode:step=1", wantErr: "invalid -fault"},
		{name: "malformed fault seed", retries: 0, timeout: 0,
			fault: "seed=banana", wantErr: "invalid -fault"},
		{name: "empty fault rules", retries: 0, timeout: 0,
			fault: ";", wantErr: "invalid -fault"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg, err := validateRunFlags(c.retries, c.timeout, c.fault)
			if c.wantErr != "" {
				if err == nil {
					t.Fatalf("expected error mentioning %q, got config %+v", c.wantErr, cfg)
				}
				if !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error %q does not mention %q", err, c.wantErr)
				}
				if strings.Contains(err.Error(), "\n") {
					t.Fatalf("diagnostic must be one line, got %q", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if cfg.retries != c.retries || cfg.timeout != c.timeout {
				t.Fatalf("config mangled the values: %+v", cfg)
			}
			if (cfg.faults != nil) != c.wantPlan {
				t.Fatalf("fault plan presence = %v, want %v", cfg.faults != nil, c.wantPlan)
			}
		})
	}
}

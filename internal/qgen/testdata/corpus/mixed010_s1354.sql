SELECT g5, COUNT(*) AS cnt, SUM(v1) AS sv
FROM mi00, mi01, mi02, mi03, mi04, mi05, mi06, mi07, mi08, mi09
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k0 = f4
  AND k0 = f5
  AND k5 = f6
  AND k0 = h6
  AND k6 = f7
  AND k7 = f8
  AND k8 = f9
  AND k0 = h9
  AND v2 <= 733
  AND v3 <= 614
  AND v6 <= 848
  AND v7 <= 287
  AND v9 <= 764
GROUP BY g5

package exec

import (
	"fmt"
	"sort"

	"pdwqo/internal/algebra"
	"pdwqo/internal/types"
)

// TableSource resolves a base-table scan: given the table name, it returns
// the locally stored rows in the table's full column order.
type TableSource func(name string) ([]types.Row, [](string), error)

// Relation is a materialized intermediate result.
type Relation struct {
	Cols []algebra.ColumnMeta
	Rows []types.Row
}

// Run executes a bound logical tree against the source. The tree must be
// subquery-free (normalized).
func Run(t *algebra.Tree, src TableSource) (*Relation, error) {
	return runNode(t, src, nil)
}

// RunStats executes like Run and additionally tallies per-operator work
// into st (nil st disables collection, making it identical to Run).
func RunStats(t *algebra.Tree, src TableSource, st *Stats) (*Relation, error) {
	return runNode(t, src, st)
}

func runNode(t *algebra.Tree, src TableSource, st *Stats) (*Relation, error) {
	rel, err := evalNode(t, src, st)
	if err != nil {
		return nil, err
	}
	st.record(t.Op, rel)
	return rel, nil
}

func evalNode(t *algebra.Tree, src TableSource, st *Stats) (*Relation, error) {
	switch op := t.Op.(type) {
	case *algebra.Get:
		return runGet(op, src)
	case *algebra.Values:
		rel := &Relation{Cols: op.Cols}
		for _, r := range op.Rows {
			rel.Rows = append(rel.Rows, types.Row(r))
		}
		return rel, nil
	case *algebra.Select:
		in, err := runNode(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		return runFilter(op, in)
	case *algebra.Project:
		in, err := runNode(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		return runProject(op, in, t.OutputCols())
	case *algebra.Join:
		l, err := runNode(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		r, err := runNode(t.Children[1], src, st)
		if err != nil {
			return nil, err
		}
		return runJoin(op, l, r)
	case *algebra.GroupBy:
		in, err := runNode(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		return runGroupBy(op, in, t.OutputCols())
	case *algebra.Sort:
		in, err := runNode(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		return runSort(op, in)
	case *algebra.UnionAll:
		l, err := runNode(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		r, err := runNode(t.Children[1], src, st)
		if err != nil {
			return nil, err
		}
		return &Relation{Cols: l.Cols, Rows: append(append([]types.Row{}, l.Rows...), r.Rows...)}, nil
	default:
		return nil, fmt.Errorf("exec: cannot execute %T", t.Op)
	}
}

func runGet(op *algebra.Get, src TableSource) (*Relation, error) {
	rows, names, err := src(op.Table.Name)
	if err != nil {
		return nil, err
	}
	// Map the (possibly pruned) Get columns onto stored positions.
	pos := make([]int, len(op.Cols))
	for i, c := range op.Cols {
		pos[i] = -1
		for j, n := range names {
			if equalFold(n, c.Name) {
				pos[i] = j
				break
			}
		}
		if pos[i] < 0 {
			return nil, fmt.Errorf("exec: column %q missing from stored %q", c.Name, op.Table.Name)
		}
	}
	out := &Relation{Cols: op.Cols, Rows: make([]types.Row, len(rows))}
	for ri, r := range rows {
		nr := make(types.Row, len(pos))
		for i, p := range pos {
			nr[i] = r[p]
		}
		out.Rows[ri] = nr
	}
	return out, nil
}

func runFilter(op *algebra.Select, in *Relation) (*Relation, error) {
	env := NewEnv(in.Cols)
	out := &Relation{Cols: in.Cols}
	for _, r := range in.Rows {
		env.Row = r
		v, err := Eval(op.Filter, env)
		if err != nil {
			return nil, err
		}
		keep, err := TruthyChecked(v)
		if err != nil {
			return nil, fmt.Errorf("exec: WHERE predicate: %w", err)
		}
		if keep {
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

func runProject(op *algebra.Project, in *Relation, outCols []algebra.ColumnMeta) (*Relation, error) {
	env := NewEnv(in.Cols)
	out := &Relation{Cols: outCols, Rows: make([]types.Row, len(in.Rows))}
	for ri, r := range in.Rows {
		env.Row = r
		nr := make(types.Row, len(op.Defs))
		for i, d := range op.Defs {
			v, err := Eval(d.Expr, env)
			if err != nil {
				return nil, err
			}
			nr[i] = v
		}
		out.Rows[ri] = nr
	}
	return out, nil
}

// splitJoinCond separates equi-join column pairs from residual conjuncts.
// It depends only on the two input schemas, so the row and vectorized
// engines share one key-extraction policy (and therefore one hash-join
// eligibility decision).
func splitJoinCond(on algebra.Scalar, lCols, rCols []algebra.ColumnMeta) (lKeys, rKeys []int, residual []algebra.Scalar) {
	lIdx := map[algebra.ColumnID]int{}
	for i, c := range lCols {
		lIdx[c.ID] = i
	}
	rIdx := map[algebra.ColumnID]int{}
	for i, c := range rCols {
		rIdx[c.ID] = i
	}
	for _, conj := range algebra.Conjuncts(on) {
		if a, b, ok := algebra.EquiJoinSides(conj); ok {
			if li, lok := lIdx[a]; lok {
				if ri, rok := rIdx[b]; rok {
					lKeys = append(lKeys, li)
					rKeys = append(rKeys, ri)
					continue
				}
			}
			if li, lok := lIdx[b]; lok {
				if ri, rok := rIdx[a]; rok {
					lKeys = append(lKeys, li)
					rKeys = append(rKeys, ri)
					continue
				}
			}
		}
		residual = append(residual, conj)
	}
	return lKeys, rKeys, residual
}

func runJoin(op *algebra.Join, l, r *Relation) (*Relation, error) {
	outCols := joinOutCols(op, l.Cols, r.Cols)
	lKeys, rKeys, residual := splitJoinCond(op.On, l.Cols, r.Cols)
	res := algebra.AndAll(residual)
	if len(lKeys) > 0 {
		return hashJoin(op, l, r, lKeys, rKeys, res, outCols)
	}
	return loopJoin(op, l, r, op.On, outCols)
}

func joinOutCols(op *algebra.Join, lCols, rCols []algebra.ColumnMeta) []algebra.ColumnMeta {
	switch op.Kind {
	case algebra.JoinSemi, algebra.JoinAnti:
		return lCols
	default:
		out := make([]algebra.ColumnMeta, 0, len(lCols)+len(rCols))
		out = append(out, lCols...)
		out = append(out, rCols...)
		return out
	}
}

// keyOf extracts join key values; ok is false when any key is NULL (SQL
// equality never matches NULLs).
func keyOf(row types.Row, idx []int) (uint64, bool) {
	vals := make([]types.Value, len(idx))
	for i, p := range idx {
		if row[p].IsNull() {
			return 0, false
		}
		vals[i] = row[p]
	}
	return types.HashRowKey(vals), true
}

func keysEqual(a types.Row, ai []int, b types.Row, bi []int) bool {
	for i := range ai {
		av, bv := a[ai[i]], b[bi[i]]
		if av.IsNull() || bv.IsNull() {
			return false
		}
		if !types.Comparable(av.Kind(), bv.Kind()) || types.Compare(av, bv) != 0 {
			return false
		}
	}
	return true
}

func hashJoin(op *algebra.Join, l, r *Relation, lKeys, rKeys []int, residual algebra.Scalar, outCols []algebra.ColumnMeta) (*Relation, error) {
	build := map[uint64][]int{}
	for ri, row := range r.Rows {
		if k, ok := keyOf(row, rKeys); ok {
			build[k] = append(build[k], ri)
		}
	}
	out := &Relation{Cols: outCols}
	// Residual predicates see the concatenated (left, right) row even when
	// the join's output is left-only (semi/anti).
	pairCols := make([]algebra.ColumnMeta, 0, len(l.Cols)+len(r.Cols))
	pairCols = append(pairCols, l.Cols...)
	pairCols = append(pairCols, r.Cols...)
	env := NewEnv(pairCols)
	rightMatched := make([]bool, len(r.Rows))
	nullRight := make(types.Row, len(r.Cols))
	for i := range nullRight {
		nullRight[i] = types.Null
	}

	for _, lrow := range l.Rows {
		matched := false
		if k, ok := keyOf(lrow, lKeys); ok {
			for _, ri := range build[k] {
				rrow := r.Rows[ri]
				if !keysEqual(lrow, lKeys, rrow, rKeys) {
					continue
				}
				combined := append(append(types.Row{}, lrow...), rrow...)
				if residual != nil {
					env.Row = combined
					v, err := Eval(residual, env)
					if err != nil {
						return nil, err
					}
					ok, err := TruthyChecked(v)
					if err != nil {
						return nil, fmt.Errorf("exec: join predicate: %w", err)
					}
					if !ok {
						continue
					}
				}
				matched = true
				rightMatched[ri] = true
				switch op.Kind {
				case algebra.JoinSemi, algebra.JoinAnti:
					// membership only
				default:
					out.Rows = append(out.Rows, combined)
				}
				if op.Kind == algebra.JoinSemi {
					break
				}
			}
		}
		switch op.Kind {
		case algebra.JoinSemi:
			if matched {
				out.Rows = append(out.Rows, lrow)
			}
		case algebra.JoinAnti:
			if !matched {
				out.Rows = append(out.Rows, lrow)
			}
		case algebra.JoinLeftOuter, algebra.JoinFullOuter:
			if !matched {
				out.Rows = append(out.Rows, append(append(types.Row{}, lrow...), nullRight...))
			}
		}
	}
	if op.Kind == algebra.JoinFullOuter {
		nullLeft := make(types.Row, len(l.Cols))
		for i := range nullLeft {
			nullLeft[i] = types.Null
		}
		for ri, m := range rightMatched {
			if !m {
				out.Rows = append(out.Rows, append(append(types.Row{}, nullLeft...), r.Rows[ri]...))
			}
		}
	}
	return out, nil
}

func loopJoin(op *algebra.Join, l, r *Relation, on algebra.Scalar, outCols []algebra.ColumnMeta) (*Relation, error) {
	out := &Relation{Cols: outCols}
	pairCols := make([]algebra.ColumnMeta, 0, len(l.Cols)+len(r.Cols))
	pairCols = append(pairCols, l.Cols...)
	pairCols = append(pairCols, r.Cols...)
	env := NewEnv(pairCols)
	rightMatched := make([]bool, len(r.Rows))
	nullRight := make(types.Row, len(r.Cols))
	for i := range nullRight {
		nullRight[i] = types.Null
	}
	for _, lrow := range l.Rows {
		matched := false
		for ri, rrow := range r.Rows {
			combined := append(append(types.Row{}, lrow...), rrow...)
			if on != nil {
				env.Row = combined
				v, err := Eval(on, env)
				if err != nil {
					return nil, err
				}
				ok, err := TruthyChecked(v)
				if err != nil {
					return nil, fmt.Errorf("exec: join predicate: %w", err)
				}
				if !ok {
					continue
				}
			}
			matched = true
			rightMatched[ri] = true
			switch op.Kind {
			case algebra.JoinSemi, algebra.JoinAnti:
			default:
				out.Rows = append(out.Rows, combined)
			}
			if op.Kind == algebra.JoinSemi {
				break
			}
		}
		switch op.Kind {
		case algebra.JoinSemi:
			if matched {
				out.Rows = append(out.Rows, lrow)
			}
		case algebra.JoinAnti:
			if !matched {
				out.Rows = append(out.Rows, lrow)
			}
		case algebra.JoinLeftOuter, algebra.JoinFullOuter:
			if !matched {
				out.Rows = append(out.Rows, append(append(types.Row{}, lrow...), nullRight...))
			}
		}
	}
	if op.Kind == algebra.JoinFullOuter {
		nullLeft := make(types.Row, len(l.Cols))
		for i := range nullLeft {
			nullLeft[i] = types.Null
		}
		for ri, m := range rightMatched {
			if !m {
				out.Rows = append(out.Rows, append(append(types.Row{}, nullLeft...), r.Rows[ri]...))
			}
		}
	}
	return out, nil
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	def      algebra.AggDef
	sum      types.Value
	count    int64
	min, max types.Value
	distinct map[uint64]bool
}

func newAggState(def algebra.AggDef) *aggState {
	s := &aggState{def: def, sum: types.Null, min: types.Null, max: types.Null}
	if def.Distinct {
		s.distinct = map[uint64]bool{}
	}
	return s
}

func (s *aggState) add(env *Env) error {
	if s.def.Arg == nil {
		// COUNT(*): every row counts.
		s.count++
		return nil
	}
	v, err := Eval(s.def.Arg, env)
	if err != nil {
		return err
	}
	return s.addValue(v)
}

// addValue folds one already-evaluated argument value into the state; the
// vectorized engine routes batch-evaluated arguments here so both engines
// share one accumulation semantics (NULL skip, DISTINCT hashing, SUM kind
// adoption, checked MIN/MAX comparison).
func (s *aggState) addValue(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if s.distinct != nil {
		h := types.Hash(v)
		if s.distinct[h] {
			return nil
		}
		s.distinct[h] = true
	}
	switch s.def.Func {
	case algebra.AggCount:
		s.count++
	case algebra.AggSum:
		if s.sum.IsNull() {
			s.sum = v
		} else {
			sum, err := types.Add(s.sum, v)
			if err != nil {
				return err
			}
			s.sum = sum
		}
	case algebra.AggMin:
		// MIN/MAX arguments can mix kinds (CASE branches of different
		// types), so the comparison is checked, not trusted.
		if s.min.IsNull() {
			s.min = v
		} else if c, err := types.CompareChecked(v, s.min); err != nil {
			return fmt.Errorf("exec: MIN argument: %w", err)
		} else if c < 0 {
			s.min = v
		}
	case algebra.AggMax:
		if s.max.IsNull() {
			s.max = v
		} else if c, err := types.CompareChecked(v, s.max); err != nil {
			return fmt.Errorf("exec: MAX argument: %w", err)
		} else if c > 0 {
			s.max = v
		}
	}
	return nil
}

func (s *aggState) result() types.Value {
	switch s.def.Func {
	case algebra.AggCount:
		return types.NewInt(s.count)
	case algebra.AggSum:
		return s.sum
	case algebra.AggMin:
		return s.min
	case algebra.AggMax:
		return s.max
	}
	return types.Null
}

func runGroupBy(op *algebra.GroupBy, in *Relation, outCols []algebra.ColumnMeta) (*Relation, error) {
	env := NewEnv(in.Cols)
	keyPos := make([]int, len(op.Keys))
	for i, k := range op.Keys {
		keyPos[i] = -1
		for j, c := range in.Cols {
			if c.ID == k {
				keyPos[i] = j
			}
		}
		if keyPos[i] < 0 {
			return nil, fmt.Errorf("exec: group key c%d missing", k)
		}
	}
	type group struct {
		keyVals types.Row
		aggs    []*aggState
	}
	groups := map[uint64][]*group{}
	var order []*group
	for _, r := range in.Rows {
		env.Row = r
		keyVals := make(types.Row, len(keyPos))
		for i, p := range keyPos {
			keyVals[i] = r[p]
		}
		h := types.HashRowKey(keyVals)
		var g *group
		for _, cand := range groups[h] {
			same := true
			for i := range keyVals {
				if !types.Equal(cand.keyVals[i], keyVals[i]) {
					same = false
					break
				}
			}
			if same {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{keyVals: keyVals}
			for _, a := range op.Aggs {
				g.aggs = append(g.aggs, newAggState(a))
			}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		for _, a := range g.aggs {
			if err := a.add(env); err != nil {
				return nil, err
			}
		}
	}
	// A scalar aggregate over empty input yields one all-default row.
	if len(op.Keys) == 0 && len(order) == 0 {
		g := &group{}
		for _, a := range op.Aggs {
			g.aggs = append(g.aggs, newAggState(a))
		}
		order = append(order, g)
	}
	out := &Relation{Cols: outCols}
	for _, g := range order {
		row := make(types.Row, 0, len(g.keyVals)+len(g.aggs))
		row = append(row, g.keyVals...)
		for _, a := range g.aggs {
			row = append(row, a.result())
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func runSort(op *algebra.Sort, in *Relation) (*Relation, error) {
	keys, err := sortMergeKeys(op.Keys, in.Cols)
	if err != nil {
		return nil, err
	}
	rows := append([]types.Row{}, in.Rows...)
	// Sort keys over user expressions can mix kinds across rows; the
	// checked compare collects the first mismatch and fails the sort
	// instead of panicking mid-comparison.
	if err := SortRows(rows, keys); err != nil {
		return nil, fmt.Errorf("exec: ORDER BY key: %w", err)
	}
	if op.Top > 0 && int64(len(rows)) > op.Top {
		rows = rows[:op.Top]
	}
	return &Relation{Cols: in.Cols, Rows: rows}, nil
}

// sortMergeKeys resolves a Sort's column IDs against the input schema
// into positional merge keys.
func sortMergeKeys(keys []algebra.SortKey, cols []algebra.ColumnMeta) ([]MergeKey, error) {
	out := make([]MergeKey, len(keys))
	for i, k := range keys {
		out[i] = MergeKey{Pos: -1, Desc: k.Desc}
		for j, c := range cols {
			if c.ID == k.ID {
				out[i].Pos = j
			}
		}
		if out[i].Pos < 0 {
			return nil, fmt.Errorf("exec: sort key c%d missing", k.ID)
		}
	}
	return out, nil
}

// MergeKey orders one sort column by row position; Desc flips the
// direction. It is the engine-wide sort-key currency: node-local ORDER
// BY, TOP-N, and the control node's final merge all reduce their key
// specs to []MergeKey so every path runs the same comparator — and
// therefore the same NULL placement on every node.
type MergeKey struct {
	Pos  int
	Desc bool
}

// CompareRowsChecked compares two rows under keys with the engine's NULL
// contract: types.CompareChecked sorts NULL before every non-NULL value,
// and Desc negates the comparison as a whole — so NULLs place FIRST on
// ascending keys and LAST on descending keys. It reports the first
// incomparable key pair instead of panicking.
func CompareRowsChecked(a, b types.Row, keys []MergeKey) (int, error) {
	for _, k := range keys {
		c, err := types.CompareChecked(a[k.Pos], b[k.Pos])
		if err != nil {
			return 0, err
		}
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// SortRows stable-sorts rows in place by merge keys; shared by the
// node-local ORDER BY/TOP-N paths and the control node's final merge.
// It reports the first incomparable key pair instead of panicking.
func SortRows(rows []types.Row, keys []MergeKey) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		c, err := CompareRowsChecked(rows[i], rows[j], keys)
		if err != nil {
			if sortErr == nil {
				sortErr = err
			}
			return false
		}
		return c < 0
	})
	return sortErr
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

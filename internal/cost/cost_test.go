package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func model(n int) Model { return NewModel(n, DefaultLambda()) }

func TestMoveKindStrings(t *testing.T) {
	kinds := []MoveKind{Shuffle, PartitionMove, ControlNodeMove, Broadcast, Trim, ReplicatedBroadcast, RemoteCopySingle}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate name for %d: %q", k, s)
		}
		seen[s] = true
	}
}

func TestHashingMovesUseHashLambda(t *testing.T) {
	if !Shuffle.Hashes() || !Trim.Hashes() {
		t.Error("shuffle and trim hash tuples")
	}
	if Broadcast.Hashes() || PartitionMove.Hashes() {
		t.Error("broadcast/partition do not hash")
	}
	// With identical B, a shuffle-with-hash reader must never be cheaper
	// than a hypothetical direct reader.
	m := model(8)
	direct := m
	direct.Lambda.ReaderHash = direct.Lambda.ReaderDirect
	if m.MoveCost(Shuffle, 1e6, 100) < direct.MoveCost(Shuffle, 1e6, 100) {
		t.Error("λ_hash must not reduce cost")
	}
}

func TestCostLinearInBytes(t *testing.T) {
	m := model(8)
	c1 := m.MoveCost(Shuffle, 1000, 100)
	c2 := m.MoveCost(Shuffle, 2000, 100)
	c3 := m.MoveCost(Shuffle, 1000, 200)
	if math.Abs(c2-2*c1) > 1e-9 || math.Abs(c3-2*c1) > 1e-9 {
		t.Errorf("C = B·λ must be linear: %v %v %v", c1, c2, c3)
	}
}

func TestMaxComposition(t *testing.T) {
	m := model(4)
	r, n, w, b := m.Components(Shuffle, 4000, 10)
	want := math.Max(math.Max(r, n), math.Max(w, b))
	if got := m.MoveCost(Shuffle, 4000, 10); math.Abs(got-want) > 1e-9 {
		t.Errorf("max composition: %v vs %v", got, want)
	}
}

func TestShuffleScalesDownWithNodes(t *testing.T) {
	// Same data, more nodes → each node handles less → cheaper shuffle.
	c4 := model(4).MoveCost(Shuffle, 1e6, 50)
	c16 := model(16).MoveCost(Shuffle, 1e6, 50)
	if c16 >= c4 {
		t.Errorf("shuffle should scale: N=4 %v, N=16 %v", c4, c16)
	}
	if math.Abs(c4/c16-4) > 0.01 {
		t.Errorf("shuffle should scale linearly with N: ratio %v", c4/c16)
	}
}

func TestBroadcastDoesNotScaleWithNodes(t *testing.T) {
	// Broadcast target writes the full table on every node regardless of N.
	c4 := model(4).MoveCost(Broadcast, 1e6, 50)
	c16 := model(16).MoveCost(Broadcast, 1e6, 50)
	if math.Abs(c4-c16)/c4 > 0.25 {
		t.Errorf("broadcast cost should be ≈constant in N: %v vs %v", c4, c16)
	}
}

func TestBroadcastVsShuffleCrossover(t *testing.T) {
	// For the same relation, broadcast ≈ N× more expensive than shuffle on
	// the write side; it only wins when the alternative moves much more
	// data. Here: equal data → shuffle must be cheaper.
	m := model(8)
	if m.MoveCost(Broadcast, 1e6, 50) <= m.MoveCost(Shuffle, 1e6, 50) {
		t.Error("broadcasting the same volume must cost more than shuffling it")
	}
	// Broadcasting a tiny table beats shuffling a huge one (the paper's
	// Q20 broadcast-part-vs-shuffle-lineitem decision).
	if m.MoveCost(Broadcast, 1000, 50) >= m.MoveCost(Shuffle, 1e7, 50) {
		t.Error("broadcasting a small table must beat shuffling a huge one")
	}
}

func TestTrimHasNoNetworkCost(t *testing.T) {
	m := model(8)
	_, n, _, _ := m.Components(Trim, 1e6, 50)
	if n != 0 {
		t.Errorf("trim is node-local: network = %v", n)
	}
	if m.MoveCost(Trim, 1e6, 50) <= 0 {
		t.Error("trim still costs reader/writer work")
	}
}

func TestPartitionMoveTargetBottleneck(t *testing.T) {
	// The single receiving node processes the full stream: cost must not
	// fall as N grows (target dominates).
	c4 := model(4).MoveCost(PartitionMove, 1e6, 50)
	c64 := model(64).MoveCost(PartitionMove, 1e6, 50)
	if c64 < c4*0.99 {
		t.Errorf("partition move is target-bound: %v vs %v", c4, c64)
	}
}

func TestZeroAndDegenerate(t *testing.T) {
	m := model(8)
	if m.MoveCost(Shuffle, 0, 100) != 0 || m.MoveCost(Shuffle, 100, 0) != 0 {
		t.Error("zero bytes → zero cost")
	}
	m0 := NewModel(0, DefaultLambda())
	if c := m0.MoveCost(Shuffle, 100, 10); c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
		t.Errorf("degenerate topology must stay finite: %v", c)
	}
}

func TestCostNonNegativeProperty(t *testing.T) {
	m := model(8)
	f := func(rows uint16, width uint8, kind uint8) bool {
		k := MoveKind(kind % 7)
		c := m.MoveCost(k, float64(rows), float64(width))
		return c >= 0 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotoneInRows(t *testing.T) {
	m := model(8)
	for k := MoveKind(0); k <= RemoteCopySingle; k++ {
		prev := -1.0
		for rows := 1000.0; rows <= 64000; rows *= 2 {
			c := m.MoveCost(k, rows, 20)
			if c < prev {
				t.Errorf("%s cost not monotone in rows", k)
			}
			prev = c
		}
	}
}

func TestQErrorSummary(t *testing.T) {
	cases := []struct {
		name      string
		in        []float64
		geo       float64
		unbounded int
	}{
		{"empty", nil, 1, 0},
		{"finite", []float64{2, 8}, 4, 0},
		{"mixed", []float64{2, 8, math.Inf(1)}, 4, 1},
		{"all-unbounded", []float64{math.Inf(1), math.Inf(1)}, math.Inf(1), 2},
		{"nan-counts-unbounded", []float64{4, math.NaN()}, 4, 1},
	}
	for _, c := range cases {
		geo, unbounded := QErrorSummary(c.in)
		if geo != c.geo && !(math.IsInf(c.geo, 1) && math.IsInf(geo, 1)) {
			t.Errorf("%s: geo = %v, want %v", c.name, geo, c.geo)
		}
		if unbounded != c.unbounded {
			t.Errorf("%s: unbounded = %d, want %d", c.name, unbounded, c.unbounded)
		}
	}
}

// The EstBytes=0 regression: a zero prediction against a non-zero actual
// must aggregate as an unbounded factor, never divide by zero or emit NaN.
func TestQErrorSummaryZeroEstimate(t *testing.T) {
	qs := []float64{QError(0, 56), QError(800, 400)}
	geo, unbounded := QErrorSummary(qs)
	if math.IsNaN(geo) {
		t.Fatal("summary emitted NaN")
	}
	if geo != 2 || unbounded != 1 {
		t.Errorf("got geo=%v unbounded=%d, want 2 and 1", geo, unbounded)
	}
}

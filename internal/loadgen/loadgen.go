// Package loadgen drives concurrent client sessions against a query
// server and reports latency percentiles, throughput, plan-cache
// outcomes, and typed-error counts. It is the engine behind cmd/pdwload,
// the E21 experiment, and the soak test.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pdwqo/internal/normalize"
	"pdwqo/internal/server"
)

// DefaultMix is the standard workload: small TPC-H-table shapes with
// literal slots to rotate, so a plan cache sees a few hot fingerprints
// under many distinct constant vectors — the forced-parameterization
// sweet spot the paper's control node banks on.
var DefaultMix = []string{
	"SELECT n_name FROM nation WHERE n_regionkey = 1 ORDER BY n_name",
	"SELECT r_name FROM region WHERE r_regionkey = 2",
	"SELECT c_name, c_acctbal FROM customer WHERE c_custkey < 40 ORDER BY c_name",
	"SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 100000.0 AND o_orderkey < 600 ORDER BY o_orderkey",
	"SELECT n_regionkey, count(*) AS cnt FROM nation WHERE n_nationkey > 3 GROUP BY n_regionkey ORDER BY n_regionkey",
}

// Config tunes one load run.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Sessions is how many concurrent client sessions to open.
	Sessions int
	// QueriesPerSession is how many queries each session issues; 0 means
	// run until Duration (one of the two must be set).
	QueriesPerSession int
	// Duration caps the whole run; 0 means run until every session has
	// issued QueriesPerSession queries.
	Duration time.Duration
	// PreparedFraction is the share of sessions (0..1) that prepare their
	// shapes once and re-execute with rotated constants; the rest send
	// ad-hoc text with the constants spliced in.
	PreparedFraction float64
	// Seed makes the constant rotation and mix assignment deterministic.
	Seed int64
	// Mix is the SQL shapes to draw from; nil uses DefaultMix.
	Mix []string
}

// Report is the outcome of one load run.
type Report struct {
	Sessions  int
	Queries   uint64
	Errors    uint64
	ByCode    map[server.Code]uint64
	ByStatus  map[string]uint64 // plan-cache outcome counts ("hit", ...)
	Elapsed   time.Duration
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
	Max       time.Duration
	DialFails uint64
}

// Throughput is successful queries per second over the whole run.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries-r.Errors) / r.Elapsed.Seconds()
}

// HitRate is the fraction of successful queries answered by re-binding a
// cached plan.
func (r *Report) HitRate() float64 {
	var total, hits uint64
	for st, n := range r.ByStatus {
		total += n
		if st == "hit" {
			hits += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// String renders the report as one summary block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions=%d queries=%d errors=%d elapsed=%v\n",
		r.Sessions, r.Queries, r.Errors, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "latency p50=%v p90=%v p99=%v max=%v throughput=%.1f q/s cache-hit-rate=%.1f%%\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
		r.Throughput(), 100*r.HitRate())
	if len(r.ByCode) > 0 {
		codes := make([]server.Code, 0, len(r.ByCode))
		for c := range r.ByCode {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		b.WriteString("errors by code:")
		for _, c := range codes {
			fmt.Fprintf(&b, " %s=%d", c, r.ByCode[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sessionStats is one session's tally, merged after the run.
type sessionStats struct {
	lat       []time.Duration
	queries   uint64
	errors    uint64
	byCode    map[server.Code]uint64
	byStatus  map[string]uint64
	dialFails uint64
}

// Run executes the configured load against the server and blocks until
// every session finishes (or ctx/Duration ends the run).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("loadgen: Sessions must be positive")
	}
	if cfg.QueriesPerSession <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: set QueriesPerSession or Duration")
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix
	}
	shapes := make([]*normalize.ParamQuery, len(mix))
	for i, sql := range mix {
		pq, err := normalize.Parameterize(sql)
		if err != nil {
			return nil, fmt.Errorf("loadgen: mix[%d]: %w", i, err)
		}
		shapes[i] = pq
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	start := time.Now()
	all := make([]*sessionStats, cfg.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			prepared := float64(id%1000)/1000 < cfg.PreparedFraction
			all[id] = runSession(ctx, cfg, shapes, mix, rng, prepared)
		}(i)
	}
	wg.Wait()

	rep := &Report{
		Sessions: cfg.Sessions,
		ByCode:   map[server.Code]uint64{},
		ByStatus: map[string]uint64{},
		Elapsed:  time.Since(start),
	}
	var lat []time.Duration
	for _, st := range all {
		if st == nil {
			continue
		}
		rep.Queries += st.queries
		rep.Errors += st.errors
		rep.DialFails += st.dialFails
		for c, n := range st.byCode {
			rep.ByCode[c] += n
		}
		for s, n := range st.byStatus {
			rep.ByStatus[s] += n
		}
		lat = append(lat, st.lat...)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.P50 = percentile(lat, 0.50)
	rep.P90 = percentile(lat, 0.90)
	rep.P99 = percentile(lat, 0.99)
	if n := len(lat); n > 0 {
		rep.Max = lat[n-1]
	}
	return rep, nil
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// runSession is one client's whole life: dial, optionally prepare every
// shape, then issue queries with rotated constants until done.
func runSession(ctx context.Context, cfg Config, shapes []*normalize.ParamQuery, mix []string, rng *rand.Rand, prepared bool) *sessionStats {
	st := &sessionStats{
		byCode:   map[server.Code]uint64{},
		byStatus: map[string]uint64{},
	}
	c, err := server.Dial(cfg.Addr)
	if err != nil {
		st.dialFails++
		return st
	}
	defer c.Close()

	var stmts []*server.Stmt
	if prepared {
		for _, sql := range mix {
			s, err := c.Prepare(sql)
			if err != nil {
				st.errors++
				st.byCode[server.CodeOf(err)]++
				return st
			}
			stmts = append(stmts, s)
		}
	}

	for q := 0; cfg.QueriesPerSession <= 0 || q < cfg.QueriesPerSession; q++ {
		if ctx.Err() != nil {
			return st
		}
		shape := rng.Intn(len(shapes))
		rot := rng.Intn(64)
		begin := time.Now()
		var res *server.Result
		if prepared {
			res, err = stmts[shape].Exec(ctx, rotatedArgs(shapes[shape], rot)...)
		} else {
			sql, serr := shapes[shape].Splice(rotatedTexts(shapes[shape], rot))
			if serr != nil {
				st.errors++
				continue
			}
			res, err = c.Query(ctx, sql)
		}
		st.queries++
		if err != nil {
			if ctx.Err() != nil {
				// The run deadline aborted this query mid-flight; that is
				// the harness ending the run, not a server failure.
				st.queries--
				return st
			}
			st.errors++
			st.byCode[server.CodeOf(err)]++
			// A cancelled/shutdown/dead session cannot continue; typed
			// per-query rejections (queue full/timeout, exec) can.
			switch server.CodeOf(err) {
			case server.CodeQueueFull, server.CodeQueueTimeout, server.CodeExec:
				continue
			default:
				return st
			}
		}
		st.lat = append(st.lat, time.Since(begin))
		st.byStatus[res.CacheStatus]++
	}
	return st
}

// rotatedTexts renders shape's constant vector for one rotation:
// integers shifted, floats scaled, strings kept — same canonical shape,
// different values, exactly what forced parameterization deduplicates.
func rotatedTexts(pq *normalize.ParamQuery, rot int) []string {
	out := make([]string, len(pq.Lits))
	for i, l := range pq.Lits {
		switch l.Kind {
		case normalize.LitInt:
			out[i] = strconv.FormatInt(l.Val.Int()+int64(rot), 10)
		case normalize.LitFloat:
			out[i] = strconv.FormatFloat(l.Val.Float()*(1+0.001*float64(rot)), 'g', -1, 64)
		default:
			out[i] = l.Val.SQLLiteral()
		}
	}
	return out
}

// rotatedArgs is rotatedTexts as prepared-statement argument values.
func rotatedArgs(pq *normalize.ParamQuery, rot int) []any {
	out := make([]any, len(pq.Lits))
	for i, l := range pq.Lits {
		switch l.Kind {
		case normalize.LitInt:
			out[i] = l.Val.Int() + int64(rot)
		case normalize.LitFloat:
			out[i] = l.Val.Float() * (1 + 0.001*float64(rot))
		default:
			out[i] = stripQuotes(l.Val.SQLLiteral())
		}
	}
	return out
}

// stripQuotes recovers the raw string from a SQL literal rendering; the
// wire carries raw text and the server re-quotes it.
func stripQuotes(lit string) string {
	if len(lit) >= 2 && lit[0] == '\'' && lit[len(lit)-1] == '\'' {
		return strings.ReplaceAll(lit[1:len(lit)-1], "''", "'")
	}
	return lit
}

package exec

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// The tests in this file walk every NULL-propagation and error branch in
// eval.go: the scalar evaluator is the semantics oracle both engines are
// certified against, so an unexercised branch here is an unchecked claim
// about SQL three-valued logic. CI gates this file's package so eval.go
// stays at >=90% statement coverage.

// badScalar drives Eval's default (unknown node) branch.
type badScalar struct{}

func (badScalar) Type() types.Kind    { return types.KindNull }
func (badScalar) Fingerprint() string { return "badScalar" }

// nullEnv binds the given values as columns c1..cN of the current row.
func nullEnv(vals ...types.Value) *Env {
	cols := make([]algebra.ColumnMeta, len(vals))
	for i := range vals {
		cols[i] = algebra.ColumnMeta{ID: algebra.ColumnID(i + 1)}
	}
	env := NewEnv(cols)
	env.Row = types.Row(vals)
	return env
}

func colID(i int) *algebra.ColRef      { return &algebra.ColRef{ID: algebra.ColumnID(i)} }
func lit(v types.Value) *algebra.Const { return &algebra.Const{Val: v} }
func bad() algebra.Scalar              { return colID(99) } // unbound column: evaluation error
func vbool(b bool) types.Value         { return types.NewBool(b) }
func vint(i int64) types.Value         { return types.NewInt(i) }
func vfloat(f float64) types.Value     { return types.NewFloat(f) }
func vstr(s string) types.Value        { return types.NewString(s) }
func binop(op sqlparser.BinOp, l, r algebra.Scalar) *algebra.Binary {
	return &algebra.Binary{Op: op, L: l, R: r}
}

// evalCase is one (expression, expected value or error) row.
type evalCase struct {
	name    string
	expr    algebra.Scalar
	want    types.Value
	wantErr string // substring of the expected error; "" means no error
}

func runEvalCases(t *testing.T, env *Env, cases []evalCase) {
	t.Helper()
	for _, tc := range cases {
		got, err := Eval(tc.expr, env)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if got.Kind() != tc.want.Kind() || got.String() != tc.want.String() {
			t.Errorf("%s: got %s (%s), want %s (%s)",
				tc.name, got, got.Kind(), tc.want, tc.want.Kind())
		}
	}
}

func TestEvalLeafAndUnaryNulls(t *testing.T) {
	env := nullEnv(vint(5), types.Null)
	runEvalCases(t, env, []evalCase{
		{"colref", colID(1), vint(5), ""},
		{"colref null cell", colID(2), types.Null, ""},
		{"colref unbound", colID(99), types.Null, "exec: column c99 not in row"},
		{"const", lit(vint(3)), vint(3), ""},

		{"not true", &algebra.Not{E: lit(vbool(true))}, vbool(false), ""},
		{"not false", &algebra.Not{E: lit(vbool(false))}, vbool(true), ""},
		{"not null", &algebra.Not{E: lit(types.Null)}, types.Null, ""},
		{"not err", &algebra.Not{E: bad()}, types.Null, "not in row"},
		{"not non-bool", &algebra.Not{E: lit(vint(1))}, types.Null, "exec: NOT operand:"},

		{"neg int", &algebra.Neg{E: lit(vint(3))}, vint(-3), ""},
		{"neg float", &algebra.Neg{E: lit(vfloat(2.5))}, vfloat(-2.5), ""},
		{"neg null", &algebra.Neg{E: lit(types.Null)}, types.Null, ""},
		{"neg err", &algebra.Neg{E: bad()}, types.Null, "not in row"},
		{"neg string", &algebra.Neg{E: lit(vstr("x"))}, types.Null, "types: negation"},

		{"isnull of null", &algebra.IsNull{E: lit(types.Null)}, vbool(true), ""},
		{"isnotnull of null", &algebra.IsNull{E: lit(types.Null), Negated: true}, vbool(false), ""},
		{"isnull of value", &algebra.IsNull{E: lit(vint(1))}, vbool(false), ""},
		{"isnotnull of value", &algebra.IsNull{E: lit(vint(1)), Negated: true}, vbool(true), ""},
		{"isnull err", &algebra.IsNull{E: bad()}, types.Null, "not in row"},

		{"unknown node", badScalar{}, types.Null, "exec: cannot evaluate"},
	})
}

func TestEvalLikeInListNulls(t *testing.T) {
	env := nullEnv()
	runEvalCases(t, env, []evalCase{
		{"like match", &algebra.Like{E: lit(vstr("abc")), Pattern: "a%"}, vbool(true), ""},
		{"like no match", &algebra.Like{E: lit(vstr("xyz")), Pattern: "a%"}, vbool(false), ""},
		{"not like match", &algebra.Like{E: lit(vstr("abc")), Pattern: "a%", Negated: true}, vbool(false), ""},
		{"like null", &algebra.Like{E: lit(types.Null), Pattern: "a%"}, types.Null, ""},
		{"like err", &algebra.Like{E: bad(), Pattern: "a%"}, types.Null, "not in row"},
		{"like non-string", &algebra.Like{E: lit(vint(1)), Pattern: "a%"}, types.Null, "exec: LIKE operand:"},

		{"in match", &algebra.InList{E: lit(vint(1)),
			List: []algebra.Scalar{lit(types.Null), lit(vint(1))}}, vbool(true), ""},
		{"in null-elem no match", &algebra.InList{E: lit(vint(1)),
			List: []algebra.Scalar{lit(types.Null), lit(vint(2))}}, types.Null, ""},
		{"in no match", &algebra.InList{E: lit(vint(1)),
			List: []algebra.Scalar{lit(vint(2)), lit(vint(3))}}, vbool(false), ""},
		{"in incomparable elem skipped", &algebra.InList{E: lit(vint(1)),
			List: []algebra.Scalar{lit(vstr("a"))}}, vbool(false), ""},
		{"not in match", &algebra.InList{E: lit(vint(1)), Negated: true,
			List: []algebra.Scalar{lit(vint(1))}}, vbool(false), ""},
		{"not in no match", &algebra.InList{E: lit(vint(1)), Negated: true,
			List: []algebra.Scalar{lit(vint(2))}}, vbool(true), ""},
		{"in null lhs", &algebra.InList{E: lit(types.Null),
			List: []algebra.Scalar{lit(vint(1))}}, types.Null, ""},
		{"in lhs err", &algebra.InList{E: bad(),
			List: []algebra.Scalar{lit(vint(1))}}, types.Null, "not in row"},
		{"in elem err", &algebra.InList{E: lit(vint(1)),
			List: []algebra.Scalar{bad()}}, types.Null, "not in row"},
	})
}

func TestEvalFuncCaseCastNulls(t *testing.T) {
	env := nullEnv()
	date94, err := types.ParseDate("1994-03-15")
	if err != nil {
		t.Fatal(err)
	}
	whens := func(ws ...algebra.CaseWhen) []algebra.CaseWhen { return ws }
	runEvalCases(t, env, []evalCase{
		{"func year", &algebra.Func{Name: "YEAR", Args: []algebra.Scalar{lit(date94)}},
			vint(1994), ""},
		{"func arg err", &algebra.Func{Name: "YEAR", Args: []algebra.Scalar{bad()}},
			types.Null, "not in row"},

		{"case first true", &algebra.Case{Whens: whens(
			algebra.CaseWhen{Cond: lit(vbool(true)), Then: lit(vint(1))},
		), Else: lit(vint(9))}, vint(1), ""},
		{"case null cond skipped", &algebra.Case{Whens: whens(
			algebra.CaseWhen{Cond: lit(types.Null), Then: lit(vint(1))},
			algebra.CaseWhen{Cond: lit(vbool(true)), Then: lit(vint(2))},
		)}, vint(2), ""},
		{"case falls to else", &algebra.Case{Whens: whens(
			algebra.CaseWhen{Cond: lit(vbool(false)), Then: lit(vint(1))},
		), Else: lit(vint(9))}, vint(9), ""},
		{"case no else is null", &algebra.Case{Whens: whens(
			algebra.CaseWhen{Cond: lit(vbool(false)), Then: lit(vint(1))},
		)}, types.Null, ""},
		{"case cond err", &algebra.Case{Whens: whens(
			algebra.CaseWhen{Cond: bad(), Then: lit(vint(1))},
		)}, types.Null, "not in row"},
		{"case non-bool cond", &algebra.Case{Whens: whens(
			algebra.CaseWhen{Cond: lit(vint(7)), Then: lit(vint(1))},
		)}, types.Null, "exec: CASE condition:"},

		{"cast ok", &algebra.Cast{E: lit(vint(2)), To: types.KindFloat}, vfloat(2), ""},
		{"cast operand err", &algebra.Cast{E: bad(), To: types.KindFloat},
			types.Null, "not in row"},
	})
}

func TestEvalBinaryThreeValuedLogic(t *testing.T) {
	env := nullEnv()
	tr, fa, nu := lit(vbool(true)), lit(vbool(false)), lit(types.Null)
	runEvalCases(t, env, []evalCase{
		// AND: false dominates NULL on either side; short-circuit skips R.
		{"t and t", binop(sqlparser.OpAnd, tr, tr), vbool(true), ""},
		{"t and f", binop(sqlparser.OpAnd, tr, fa), vbool(false), ""},
		{"f short-circuits err", binop(sqlparser.OpAnd, fa, bad()), vbool(false), ""},
		{"null and f", binop(sqlparser.OpAnd, nu, fa), vbool(false), ""},
		{"null and t", binop(sqlparser.OpAnd, nu, tr), types.Null, ""},
		{"t and null", binop(sqlparser.OpAnd, tr, nu), types.Null, ""},
		{"and left err", binop(sqlparser.OpAnd, bad(), tr), types.Null, "not in row"},
		{"and right err", binop(sqlparser.OpAnd, tr, bad()), types.Null, "not in row"},
		{"and non-bool operand", binop(sqlparser.OpAnd, lit(vint(1)), tr),
			types.Null, "Bool()"},

		// OR: true dominates NULL on either side.
		{"f or f", binop(sqlparser.OpOr, fa, fa), vbool(false), ""},
		{"f or t", binop(sqlparser.OpOr, fa, tr), vbool(true), ""},
		{"t short-circuits err", binop(sqlparser.OpOr, tr, bad()), vbool(true), ""},
		{"null or t", binop(sqlparser.OpOr, nu, tr), vbool(true), ""},
		{"null or f", binop(sqlparser.OpOr, nu, fa), types.Null, ""},
		{"f or null", binop(sqlparser.OpOr, fa, nu), types.Null, ""},
		{"or left err", binop(sqlparser.OpOr, bad(), fa), types.Null, "not in row"},
		{"or right err", binop(sqlparser.OpOr, fa, bad()), types.Null, "not in row"},
	})
}

func TestEvalBinaryComparisonsAndArithmetic(t *testing.T) {
	env := nullEnv()
	one, two, nu := lit(vint(1)), lit(vint(2)), lit(types.Null)
	runEvalCases(t, env, []evalCase{
		{"cmp left err", binop(sqlparser.OpEq, bad(), one), types.Null, "not in row"},
		{"cmp right err", binop(sqlparser.OpEq, one, bad()), types.Null, "not in row"},
		{"null = 1", binop(sqlparser.OpEq, nu, one), types.Null, ""},
		{"1 = null", binop(sqlparser.OpEq, one, nu), types.Null, ""},
		{"incomparable", binop(sqlparser.OpEq, one, lit(vstr("a"))),
			types.Null, "exec: comparing"},

		{"eq true", binop(sqlparser.OpEq, one, one), vbool(true), ""},
		{"eq false", binop(sqlparser.OpEq, one, two), vbool(false), ""},
		{"ne", binop(sqlparser.OpNe, one, two), vbool(true), ""},
		{"lt", binop(sqlparser.OpLt, one, two), vbool(true), ""},
		{"le", binop(sqlparser.OpLe, one, one), vbool(true), ""},
		{"gt", binop(sqlparser.OpGt, two, one), vbool(true), ""},
		{"ge false", binop(sqlparser.OpGe, one, two), vbool(false), ""},

		{"add", binop(sqlparser.OpAdd, one, two), vint(3), ""},
		{"sub", binop(sqlparser.OpSub, one, two), vint(-1), ""},
		{"mul", binop(sqlparser.OpMul, two, two), vint(4), ""},
		{"div", binop(sqlparser.OpDiv, lit(vfloat(1)), two), vfloat(0.5), ""},
		{"div null", binop(sqlparser.OpDiv, nu, two), types.Null, ""},
		{"div by zero", binop(sqlparser.OpDiv, one, lit(vint(0))),
			types.Null, "types: division by zero"},
		{"unknown op", binop(sqlparser.BinOp(31), one, two),
			types.Null, "exec: unknown operator"},
	})
}

func TestCastIntToFloatEdges(t *testing.T) {
	cases := []struct {
		i    int64
		want float64
		ok   bool
	}{
		{5, 5, true},
		{-5, -5, true},
		{maxExactInt - 1, float64(maxExactInt - 1), true},
		{int64(1) << 60, float64(int64(1) << 60), true}, // above 2^53 but round-trips
		{maxExactInt + 1, 0, false},                     // odd value above 2^53: lossy
		{math.MaxInt64, 0, false},                       // rounds to 2^63, outside INT
		{math.MinInt64, float64(math.MinInt64), true},   // -2^63 is exact
	}
	for _, tc := range cases {
		f, err := CastIntToFloat(tc.i)
		if tc.ok {
			if err != nil || f != tc.want {
				t.Errorf("CastIntToFloat(%d) = %g, %v; want %g", tc.i, f, err, tc.want)
			}
			continue
		}
		var ce *CastError
		if err == nil || !errors.As(err, &ce) {
			t.Errorf("CastIntToFloat(%d): want *CastError, got %v", tc.i, err)
		} else if !strings.Contains(ce.Error(), "loses precision as FLOAT") {
			t.Errorf("CastIntToFloat(%d): unexpected reason %q", tc.i, ce.Error())
		}
	}
}

func TestCastFloatToIntEdges(t *testing.T) {
	if _, err := CastFloatToInt(math.NaN()); err == nil ||
		!strings.Contains(err.Error(), "NaN has no INT value") {
		t.Errorf("NaN: got %v", err)
	}
	for _, f := range []float64{1e19, -1e19, 9223372036854775808.0} {
		if _, err := CastFloatToInt(f); err == nil ||
			!strings.Contains(err.Error(), "overflows INT") {
			t.Errorf("CastFloatToInt(%g): got %v", f, err)
		}
	}
	cases := []struct {
		f    float64
		want int64
	}{
		{3.9, 3},
		{-3.9, -3},
		{-9223372036854775808.0, math.MinInt64}, // -2^63 is exactly representable
	}
	for _, tc := range cases {
		i, err := CastFloatToInt(tc.f)
		if err != nil || i != tc.want {
			t.Errorf("CastFloatToInt(%g) = %d, %v; want %d", tc.f, i, err, tc.want)
		}
	}
}

func TestCastValueBranches(t *testing.T) {
	date94, err := types.ParseDate("1994-03-15")
	if err != nil {
		t.Fatal(err)
	}
	ok := []struct {
		name string
		v    types.Value
		to   types.Kind
		want types.Value
	}{
		{"null passthrough", types.Null, types.KindInt, types.Null},
		{"same kind", vint(7), types.KindInt, vint(7)},
		{"int to float", vint(7), types.KindFloat, vfloat(7)},
		{"float to int", vfloat(7.9), types.KindInt, vint(7)},
		{"string to date", vstr("1994-03-15"), types.KindDate, date94},
		{"int to string", vint(5), types.KindString, vstr("5")},
		{"date to string", date94, types.KindString, vstr("1994-03-15")},
		{"int to bool zero", vint(0), types.KindBool, vbool(false)},
		{"int to bool nonzero", vint(2), types.KindBool, vbool(true)},
	}
	for _, tc := range ok {
		got, err := CastValue(tc.v, tc.to)
		if err != nil || got.Kind() != tc.want.Kind() || got.String() != tc.want.String() {
			t.Errorf("%s: CastValue = %s (%s), %v; want %s", tc.name, got, got.Kind(), err, tc.want)
		}
	}

	bad := []struct {
		name    string
		v       types.Value
		to      types.Kind
		typed   bool // expect *CastError
		wantErr string
	}{
		{"lossy int to float", vint(maxExactInt + 1), types.KindFloat, true, "loses precision"},
		{"nan to int", vfloat(math.NaN()), types.KindInt, true, "NaN has no INT value"},
		{"bool to float", vbool(true), types.KindFloat, true, "cannot cast"},
		{"string to int", vstr("5"), types.KindInt, true, "cannot cast"},
		{"date to bool", date94, types.KindBool, true, "cannot cast"},
		{"bad date literal", vstr("not-a-date"), types.KindDate, false, "invalid date literal"},
	}
	for _, tc := range bad {
		_, err := CastValue(tc.v, tc.to)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
			continue
		}
		var ce *CastError
		if got := errors.As(err, &ce); got != tc.typed {
			t.Errorf("%s: errors.As(*CastError) = %v, want %v", tc.name, got, tc.typed)
		}
	}
}

func TestCastErrorForms(t *testing.T) {
	bare := &CastError{From: types.KindDate, To: types.KindBool}
	if got := bare.Error(); got != "exec: cannot cast DATE to BIT" {
		t.Errorf("bare form: %q", got)
	}
	reasoned := &CastError{From: types.KindFloat, To: types.KindInt, Reason: "NaN has no INT value"}
	if got := reasoned.Error(); got != "exec: cannot cast FLOAT to BIGINT: NaN has no INT value" {
		t.Errorf("reasoned form: %q", got)
	}
}

func TestTruthyVariants(t *testing.T) {
	if Truthy(types.Null) || !Truthy(vbool(true)) || Truthy(vbool(false)) {
		t.Error("Truthy: NULL and FALSE must be false, TRUE must be true")
	}
	if b, err := TruthyChecked(types.Null); b || err != nil {
		t.Errorf("TruthyChecked(NULL) = %v, %v", b, err)
	}
	if b, err := TruthyChecked(vbool(true)); !b || err != nil {
		t.Errorf("TruthyChecked(true) = %v, %v", b, err)
	}
	if _, err := TruthyChecked(vint(1)); err == nil {
		t.Error("TruthyChecked(INT) must error, not crash")
	}
}

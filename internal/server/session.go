package server

import (
	"bufio"
	"io"
	"net"
	"strconv"
	"strings"

	"context"

	"pdwqo"
	"pdwqo/internal/normalize"
)

// frame is one decoded client frame, or the read error that ended the
// stream.
type frame struct {
	op  Op
	p   []byte
	err error
}

// stmt is one prepared statement: the parameterized template whose shape
// fingerprint keys the shared plan cache. Executing it splices the bound
// argument texts back into the source SQL and compiles through the cache,
// so every execution of the same shape re-binds the cached template
// instead of re-running the optimizer.
type stmt struct {
	pq *normalize.ParamQuery
}

// session serves one connection. The session goroutine owns every write
// to the connection; a companion recvLoop goroutine owns every read and
// feeds decoded frames through a channel, so the session can wait on
// "next frame OR query completion OR server shutdown" in one select.
type session struct {
	srv  *Server
	conn net.Conn
	id   uint64

	bw     *bufio.Writer
	frames chan frame
	gone   chan struct{} // closed when the session exits; unblocks recvLoop

	epoch    uint64 // catalog epoch snapshot taken at handshake
	stmts    map[uint32]*stmt
	nextStmt uint32
}

// qresult is what a query worker posts back to the session loop.
type qresult struct {
	res         *pdwqo.Result
	cacheStatus string
	epoch       uint64
	err         error
}

func (s *session) run() {
	s.bw = bufio.NewWriter(s.conn)
	s.frames = make(chan frame, 1)
	s.gone = make(chan struct{})
	s.stmts = map[uint32]*stmt{}
	defer close(s.gone)
	go s.recvLoop()
	if !s.handshake() {
		return
	}
	s.loop()
}

// recvLoop reads frames off the connection into the frames channel until
// a read error or session exit. Sends race session exit via the gone
// channel, so a session that returns while a frame is in flight never
// strands this goroutine.
func (s *session) recvLoop() {
	for {
		op, p, err := ReadFrame(s.conn)
		select {
		case s.frames <- frame{op: op, p: p, err: err}:
			if err != nil {
				return
			}
		case <-s.gone:
			return
		}
	}
}

// next waits for the next client frame or server shutdown. A shutdown
// while waiting is delivered as a synthetic frame carrying the typed
// error, so every receive point handles it uniformly.
func (s *session) next() frame {
	select {
	case f := <-s.frames:
		return f
	case <-s.srv.base.Done():
		return frame{err: errf(CodeShutdown, "server shutting down")}
	}
}

// handshake expects the Hello frame and answers HelloAck. It reports
// whether the session may proceed.
func (s *session) handshake() bool {
	f := s.next()
	if f.err != nil {
		s.writeFail(f.err)
		return false
	}
	if f.op != OpHello {
		s.writeErr(CodeHandshake, "expected Hello, got %s", f.op)
		return false
	}
	d := &dec{b: f.p}
	magic := d.str()
	ver := d.u16()
	if err := d.done(); err != nil {
		s.writeFail(err)
		return false
	}
	if magic != Magic {
		s.writeErr(CodeHandshake, "bad magic %q", magic)
		return false
	}
	if ver != Version {
		s.writeErr(CodeHandshake, "protocol version %d not supported (want %d)", ver, Version)
		return false
	}
	s.epoch = s.srv.db.Shell().Epoch()
	var e enc
	e.u16(Version)
	e.u64(s.id)
	e.u64(s.epoch)
	return s.write(OpHelloAck, e.b)
}

// loop is the idle state: dispatch one frame at a time until the
// connection ends, the client says Bye, a protocol violation closes the
// session, or the server shuts down.
func (s *session) loop() {
	for {
		f := s.next()
		if f.err != nil {
			s.writeFail(f.err)
			return
		}
		switch f.op {
		case OpQuery:
			d := &dec{b: f.p}
			sql := d.str()
			if err := d.done(); err != nil {
				s.writeFail(err)
				return
			}
			if !s.runQuery(sql) {
				return
			}
		case OpPrepare:
			if !s.prepare(f.p) {
				return
			}
		case OpExecStmt:
			if !s.execStmt(f.p) {
				return
			}
		case OpCloseStmt:
			d := &dec{b: f.p}
			id := d.u32()
			if err := d.done(); err != nil {
				s.writeFail(err)
				return
			}
			// Close is idempotent fire-and-forget: double closes and
			// unknown IDs are not errors, so it needs no ack frame.
			delete(s.stmts, id)
		case OpCancel:
			// Cancellation is inherently racy with completion; a cancel
			// arriving when nothing is in flight is a no-op.
		case OpBye:
			return
		default:
			s.writeErr(CodeProtocol, "unexpected %s frame", f.op)
			return
		}
	}
}

// prepare parameterizes the SQL and registers the statement. It reports
// whether the session may continue.
func (s *session) prepare(p []byte) bool {
	d := &dec{b: p}
	sql := d.str()
	if err := d.done(); err != nil {
		s.writeFail(err)
		return false
	}
	if len(s.stmts) >= s.srv.cfg.MaxStmts {
		return s.writeErr(CodeTooManyStmts, "session holds %d prepared statements (cap %d)",
			len(s.stmts), s.srv.cfg.MaxStmts)
	}
	pq, err := normalize.Parameterize(sql)
	if err != nil {
		return s.writeErr(CodeExec, "prepare: %v", err)
	}
	s.nextStmt++
	id := s.nextStmt
	s.stmts[id] = &stmt{pq: pq}
	var e enc
	e.u32(id)
	e.u64(s.epoch)
	e.u16(uint16(len(pq.Lits)))
	for _, l := range pq.Lits {
		e.u8(uint8(l.Kind))
	}
	return s.write(OpPrepareAck, e.b)
}

// execStmt binds arguments into a prepared statement and runs it. The
// spliced SQL has the exact canonical shape of the template, so with a
// plan cache installed the execution re-binds the cached plan without
// recompiling.
func (s *session) execStmt(p []byte) bool {
	d := &dec{b: p}
	id := d.u32()
	n := int(d.u16())
	type arg struct {
		kind normalize.LitKind
		text string
	}
	var args []arg
	for i := 0; i < n && d.err() == nil; i++ {
		k := d.u8()
		args = append(args, arg{kind: normalize.LitKind(k), text: d.str()})
	}
	if err := d.done(); err != nil {
		s.writeFail(err)
		return false
	}
	st, ok := s.stmts[id]
	if !ok {
		return s.writeErr(CodeStmtNotFound, "no prepared statement %d", id)
	}
	if n != len(st.pq.Lits) {
		return s.writeErr(CodeBadParams, "statement %d wants %d arguments, got %d", id, len(st.pq.Lits), n)
	}
	texts := make([]string, n)
	for i, a := range args {
		want := st.pq.Lits[i].Kind
		if a.kind != want {
			return s.writeErr(CodeBadParams, "argument %d is %s, statement slot wants %s", i, a.kind, want)
		}
		text, err := literalText(a.kind, a.text)
		if err != nil {
			return s.writeErr(CodeBadParams, "argument %d: %v", i, err)
		}
		texts[i] = text
	}
	sql, err := st.pq.Splice(texts)
	if err != nil {
		return s.writeErr(CodeBadParams, "%v", err)
	}
	return s.runQuery(sql)
}

// literalText renders one bound argument as a SQL literal token,
// validating numerics so arbitrary client text can never be spliced raw
// into the statement.
func literalText(kind normalize.LitKind, text string) (string, error) {
	switch kind {
	case normalize.LitInt:
		if _, err := strconv.ParseInt(text, 10, 64); err != nil {
			return "", errf(CodeBadParams, "not an integer: %q", text)
		}
		return text, nil
	case normalize.LitFloat:
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return "", errf(CodeBadParams, "not a float: %q", text)
		}
		return text, nil
	case normalize.LitString:
		return "'" + strings.ReplaceAll(text, "'", "''") + "'", nil
	default:
		return "", errf(CodeBadParams, "unknown literal kind %d", kind)
	}
}

// runQuery takes the session through one query lifecycle: admission,
// compilation, execution on a worker goroutine, then result streaming
// from the session goroutine. While the worker runs, the session keeps
// receiving so a Cancel frame (or connection drop, or shutdown) can stop
// the query promptly. It reports whether the session may continue.
func (s *session) runQuery(sql string) bool {
	qctx, qcancel := context.WithCancel(s.srv.base)
	defer qcancel()
	done := make(chan qresult, 1)
	go s.worker(qctx, sql, done)

	var r qresult
wait:
	for {
		select {
		case r = <-done:
			break wait
		case f := <-s.frames:
			if f.err != nil {
				// Connection dropped (or sent garbage) mid-query: stop the
				// query, reap the worker, end the session.
				qcancel()
				<-done
				s.writeFail(f.err)
				return false
			}
			switch f.op {
			case OpCancel:
				qcancel()
			case OpBye:
				qcancel()
				<-done
				return false
			case OpQuery, OpPrepare, OpExecStmt, OpCloseStmt:
				// One query at a time per session; pipelined work is shed
				// with a typed rejection rather than queued.
				if !s.writeErr(CodeBusy, "query already in flight") {
					qcancel()
					<-done
					return false
				}
			default:
				qcancel()
				<-done
				s.writeErr(CodeProtocol, "unexpected %s frame", f.op)
				return false
			}
		case <-s.srv.base.Done():
			qcancel()
			<-done
			s.writeErr(CodeShutdown, "server shutting down")
			return false
		}
	}

	s.srv.queries.Add(1)
	if r.err != nil {
		return s.writeFail(s.mapQueryErr(qctx, r.err))
	}
	if hook := s.srv.cfg.PhaseHook; hook != nil {
		hook(PhaseStreaming, sql)
	}
	return s.stream(r)
}

// worker runs one query to completion under ctx: admission wait, plan
// compilation through the shared cache, then appliance execution. It
// posts exactly one qresult; the done channel is buffered so the post
// never blocks even if the session has moved on.
func (s *session) worker(ctx context.Context, sql string, done chan<- qresult) {
	hook := s.srv.cfg.PhaseHook
	if hook != nil {
		hook(PhaseQueued, sql)
	}
	release, err := s.srv.adm.acquire(ctx)
	if err != nil {
		done <- qresult{err: err}
		return
	}
	defer release()
	if hook != nil {
		hook(PhaseCompiling, sql)
	}
	plan, err := s.srv.db.Optimize(sql, s.srv.cfg.Opts)
	if err != nil {
		done <- qresult{err: errf(CodeExec, "%v", err)}
		return
	}
	if ctx.Err() != nil {
		// Compilation is not interruptible; honor a cancel that landed
		// during it before paying for execution.
		done <- qresult{err: ctx.Err()}
		return
	}
	if hook != nil {
		hook(PhaseExecuting, sql)
	}
	res, err := s.srv.db.ExecutePlanContext(ctx, plan)
	if err != nil {
		done <- qresult{err: err}
		return
	}
	done <- qresult{res: res, cacheStatus: plan.CacheStatus, epoch: s.srv.db.Shell().Epoch()}
}

// mapQueryErr classifies a worker failure into its wire error: typed
// errors pass through; anything that failed while the query context was
// cancelled becomes CodeCancelled (or CodeShutdown when the whole server
// is stopping); the rest is CodeExec.
func (s *session) mapQueryErr(qctx context.Context, err error) *Error {
	if e, ok := err.(*Error); ok {
		if e.Code == CodeExec && qctx.Err() != nil {
			// A compile failure observed after cancel; the cancel wins.
			return s.cancelErr(err)
		}
		return e
	}
	if qctx.Err() != nil {
		return s.cancelErr(err)
	}
	return errf(CodeExec, "%v", err)
}

func (s *session) cancelErr(err error) *Error {
	if s.srv.base.Err() != nil {
		return errf(CodeShutdown, "server shutting down: %v", err)
	}
	return errf(CodeCancelled, "query cancelled: %v", err)
}

// stream writes the result: RowHeader, RowBatch frames of at most
// BatchRows rows, then Done. Between batches it polls for a Cancel frame
// and for shutdown, so a client can stop a large result mid-stream. It
// reports whether the session may continue.
func (s *session) stream(r qresult) bool {
	var e enc
	e.u16(uint16(len(r.res.Columns)))
	for _, c := range r.res.Columns {
		e.str(c)
	}
	if !s.write(OpRowHeader, e.b) {
		return false
	}
	rows := r.res.Rows
	batch := s.srv.cfg.BatchRows
	for len(rows) > 0 {
		select {
		case f := <-s.frames:
			switch {
			case f.err != nil:
				s.writeFail(f.err)
				return false
			case f.op == OpCancel:
				return s.writeErr(CodeCancelled, "result stream cancelled by client")
			case f.op == OpBye:
				return false
			default:
				s.writeErr(CodeProtocol, "unexpected %s frame during result stream", f.op)
				return false
			}
		case <-s.srv.base.Done():
			s.writeErr(CodeShutdown, "server shutting down")
			return false
		default:
		}
		n := batch
		if n > len(rows) {
			n = len(rows)
		}
		var b enc
		b.u16(uint16(n))
		for _, row := range rows[:n] {
			for _, v := range row {
				b.str(v.String())
			}
		}
		if !s.write(OpRowBatch, b.b) {
			return false
		}
		rows = rows[n:]
	}
	var d enc
	d.u64(r.epoch)
	d.u64(uint64(len(r.res.Rows)))
	d.str(r.cacheStatus)
	return s.write(OpDone, d.b)
}

// write sends one frame; false means the connection is unwritable and
// the session should end.
func (s *session) write(op Op, payload []byte) bool {
	if err := WriteFrame(s.bw, op, payload); err != nil {
		return false
	}
	return s.bw.Flush() == nil
}

// writeErr sends a typed Error frame; it reports write success so call
// sites can keep or end the session independently of the error sent.
func (s *session) writeErr(code Code, format string, args ...any) bool {
	return s.writeFail(errf(code, format, args...))
}

// writeFail sends err as an Error frame when it carries a wire code;
// plain I/O errors (EOF, closed connection) have nothing to tell the
// peer and send nothing.
func (s *session) writeFail(err error) bool {
	if err == nil || err == io.EOF {
		return false
	}
	e, ok := err.(*Error)
	if !ok {
		return false
	}
	var b enc
	b.u16(uint16(e.Code))
	b.str(e.Msg)
	return s.write(OpError, b.b)
}

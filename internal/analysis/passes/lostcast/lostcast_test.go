package lostcast_test

import (
	"path/filepath"
	"testing"

	"pdwqo/internal/analysis"
	"pdwqo/internal/analysis/passes/lostcast"
)

func TestLostCast(t *testing.T) {
	analysis.RunTest(t, filepath.Join("testdata", "src", "a"), lostcast.Analyzer)
}

package tpch

import (
	"fmt"
	"math"
	"math/rand"

	"pdwqo/internal/catalog"
	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

// Data holds generated rows per table, in schema column order.
type Data map[string][]types.Row

// Rows counts total rows across all tables.
func (d Data) Rows() int {
	n := 0
	for _, rows := range d {
		n += len(rows)
	}
	return n
}

// Scale constants: rows per unit scale factor (TPC-H proportions, scaled
// for an in-memory simulator).
const (
	regionRows    = 5
	nationRows    = 25
	supplierScale = 10000
	customerScale = 150000
	ordersScale   = 1500000
	partScale     = 200000
	suppsPerPart  = 4
)

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	// partWords approximates dbgen's P_NAME word pool; "forest" is present
	// so the paper's Q20 predicate selects ≈1/len(partWords) of parts.
	partWords = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood",
		"burnished", "chartreuse", "chiffon", "chocolate", "coral",
		"cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim",
		"dodger", "drab", "firebrick", "floral", "forest", "frosted",
		"gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
		"hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender",
		"lawn", "lemon", "light", "lime", "linen", "magenta", "maroon",
	}
	partTypes      = []string{"PROMO BRUSHED COPPER", "PROMO POLISHED BRASS", "STANDARD ANODIZED TIN", "ECONOMY PLATED NICKEL", "MEDIUM BURNISHED STEEL", "SMALL POLISHED COPPER"}
	containers     = []string{"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"}
	segments       = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities     = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes      = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "REG AIR", "FOB"}
	orderStatuses  = []string{"O", "F", "P"}
	returnFlags    = []string{"R", "A", "N"}
	lineStatusesBy = []string{"O", "F"}
)

// Generate produces a deterministic TPC-H dataset at the given scale
// factor. sf = 0.01 yields roughly 1.5k customers / 15k orders / 60k
// lineitems.
func Generate(sf float64, seed int64) Data {
	return GenerateSkewed(sf, seed, 1)
}

// GenerateSkewed is Generate with a skew exponent on the foreign keys that
// drive data movement (o_custkey, l_partkey, l_suppkey): 1 = uniform (the
// paper's §3.3.1 uniformity assumption), larger values concentrate
// references on low keys with a power-law, letting experiments measure how
// the cost model degrades when the assumption is violated (E13).
func GenerateSkewed(sf float64, seed int64, skew float64) Data {
	r := rand.New(rand.NewSource(seed))
	if skew < 1 {
		skew = 1
	}
	skewed := func(n int) int64 {
		u := math.Pow(r.Float64(), skew)
		k := int64(u*float64(n)) + 1
		if k > int64(n) {
			k = int64(n)
		}
		return k
	}
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 5 {
			n = 5
		}
		return n
	}
	nSupp := scale(supplierScale)
	nCust := scale(customerScale)
	nOrders := scale(ordersScale)
	nPart := scale(partScale)

	d := Data{}

	for i := 0; i < regionRows; i++ {
		d["region"] = append(d["region"], types.Row{
			types.NewInt(int64(i)), types.NewString(regionNames[i]),
		})
	}
	for i := 0; i < nationRows; i++ {
		d["nation"] = append(d["nation"], types.Row{
			types.NewInt(int64(i)), types.NewString(nationNames[i]), types.NewInt(int64(i % regionRows)),
		})
	}
	for i := 1; i <= nSupp; i++ {
		d["supplier"] = append(d["supplier"], types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Supplier#%09d", i)),
			types.NewString(fmt.Sprintf("addr-%d %s", r.Intn(9999), partWords[r.Intn(len(partWords))])),
			types.NewInt(int64(r.Intn(nationRows))),
			types.NewFloat(float64(r.Intn(1000000))/100 - 1000),
		})
	}
	for i := 1; i <= nCust; i++ {
		d["customer"] = append(d["customer"], types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer#%09d", i)),
			types.NewInt(int64(r.Intn(nationRows))),
			types.NewFloat(float64(r.Intn(1100000))/100 - 1000),
			types.NewString(segments[r.Intn(len(segments))]),
		})
	}
	for i := 1; i <= nPart; i++ {
		w1 := partWords[r.Intn(len(partWords))]
		w2 := partWords[r.Intn(len(partWords))]
		w3 := partWords[r.Intn(len(partWords))]
		d["part"] = append(d["part"], types.Row{
			types.NewInt(int64(i)),
			types.NewString(w1 + " " + w2 + " " + w3),
			types.NewString(fmt.Sprintf("Brand#%d%d", 1+r.Intn(5), 1+r.Intn(5))),
			types.NewString(partTypes[r.Intn(len(partTypes))]),
			types.NewInt(int64(1 + r.Intn(50))),
			types.NewString(containers[r.Intn(len(containers))]),
			types.NewFloat(900 + float64(i%1000)),
		})
		// partsupp: suppsPerPart suppliers per part.
		for j := 0; j < suppsPerPart; j++ {
			sk := int64((i+j*(nSupp/suppsPerPart+1))%nSupp) + 1
			d["partsupp"] = append(d["partsupp"], types.Row{
				types.NewInt(int64(i)),
				types.NewInt(sk),
				types.NewInt(int64(1 + r.Intn(9999))),
				types.NewFloat(float64(r.Intn(100000)) / 100),
			})
		}
	}

	startDate := types.MustParseDate("1992-01-01").DateDays()
	endDate := types.MustParseDate("1998-08-02").DateDays()
	lineNo := 0
	for i := 1; i <= nOrders; i++ {
		ok := int64(i)
		odate := startDate + r.Int63n(endDate-startDate-151)
		nLines := 1 + r.Intn(7)
		total := 0.0
		for l := 1; l <= nLines; l++ {
			qty := float64(1 + r.Intn(50))
			price := 900 + float64(r.Intn(100000))/100*qty/10
			disc := float64(r.Intn(11)) / 100
			tax := float64(r.Intn(9)) / 100
			ship := odate + 1 + r.Int63n(121)
			commit := odate + 30 + r.Int63n(61)
			receipt := ship + 1 + r.Int63n(30)
			total += price * (1 + tax) * (1 - disc)
			d["lineitem"] = append(d["lineitem"], types.Row{
				types.NewInt(ok),
				types.NewInt(skewed(nPart)),
				types.NewInt(skewed(nSupp)),
				types.NewInt(int64(l)),
				types.NewFloat(qty),
				types.NewFloat(price),
				types.NewFloat(disc),
				types.NewFloat(tax),
				types.NewString(returnFlags[r.Intn(len(returnFlags))]),
				types.NewString(lineStatusesBy[r.Intn(len(lineStatusesBy))]),
				types.NewDate(ship),
				types.NewDate(commit),
				types.NewDate(receipt),
				types.NewString(shipmodes[r.Intn(len(shipmodes))]),
			})
			lineNo++
		}
		d["orders"] = append(d["orders"], types.Row{
			types.NewInt(ok),
			types.NewInt(skewed(nCust)),
			types.NewString(orderStatuses[r.Intn(len(orderStatuses))]),
			types.NewFloat(total),
			types.NewDate(odate),
			types.NewString(priorities[r.Intn(len(priorities))]),
		})
	}
	return d
}

// PlaceRows assigns each row of a table to a compute node per the table's
// placement: replicated rows land on every node, hash rows on the node
// owning the hash of the distribution column.
func PlaceRows(tbl *catalog.Table, rows []types.Row, nodes int) [][]types.Row {
	out := make([][]types.Row, nodes)
	if tbl.Dist.Kind == catalog.DistReplicated {
		for i := range out {
			out[i] = rows
		}
		return out
	}
	ci := tbl.ColumnIndex(tbl.Dist.Column)
	for _, row := range rows {
		n := int(types.Hash(row[ci]) % uint64(nodes))
		out[n] = append(out[n], row)
	}
	return out
}

// BuildShell generates data, places it on the topology, computes per-node
// local statistics, merges them into global statistics (paper §2.2), and
// returns the populated shell database plus the dataset.
func BuildShell(sf float64, nodes int, seed int64) (*catalog.Shell, Data, error) {
	return BuildShellSkewed(sf, nodes, seed, 1)
}

// BuildShellSkewed is BuildShell over GenerateSkewed data.
func BuildShellSkewed(sf float64, nodes int, seed int64, skew float64) (*catalog.Shell, Data, error) {
	shell := catalog.NewShell(nodes)
	data := GenerateSkewed(sf, seed, skew)
	for _, tbl := range Tables() {
		if err := shell.AddTable(tbl); err != nil {
			return nil, nil, err
		}
		rows := data[tbl.Name]
		placed := PlaceRows(tbl, rows, nodes)
		locals := make([]*stats.Table, 0, nodes)
		for _, nodeRows := range placed {
			cols := map[string][]types.Value{}
			for ci, c := range tbl.Columns {
				vals := make([]types.Value, len(nodeRows))
				for ri, row := range nodeRows {
					vals[ri] = row[ci]
				}
				cols[c.Name] = vals
			}
			st, err := stats.BuildTable(cols)
			if err != nil {
				return nil, nil, err
			}
			locals = append(locals, st)
		}
		hashCol := ""
		if tbl.Dist.Kind == catalog.DistHash {
			hashCol = tbl.Dist.Column
		}
		global := stats.MergeTables(locals, hashCol)
		if tbl.Dist.Kind == catalog.DistReplicated {
			// Every node holds the same copy; merging N copies would
			// multiply counts. Use one node's stats directly.
			global = locals[0]
		}
		if err := shell.SetStats(tbl.Name, global); err != nil {
			return nil, nil, err
		}
	}
	return shell, data, nil
}

package difftest

import (
	"fmt"
	"testing"
)

// TestVecMatchesRowTPCH runs the full TPC-H case list under both the
// vectorized and row executors at every topology and demands byte-identical
// results.
func TestVecMatchesRowTPCH(t *testing.T) {
	topologies := []int{1, 2, 4, 8}
	if testing.Short() {
		topologies = []int{4}
	}
	if raceEnabled {
		topologies = []int{8}
	}
	for _, nodes := range topologies {
		db := openAppliance(t, nodes)
		for _, c := range TPCHCases() {
			t.Run(fmt.Sprintf("n%d/%s", nodes, c.Name), func(t *testing.T) {
				if err := VecDiff(db, c, 8); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestVecMatchesRowFuzz sweeps a deterministic random-query corpus through
// both engines on a 4-node appliance.
func TestVecMatchesRowFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz corpus skipped in -short")
	}
	db := openAppliance(t, 4)
	for _, c := range FuzzCases(40, 20260807) {
		t.Run(c.Name, func(t *testing.T) {
			if err := VecDiff(db, c, 8); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVecChaosTPCH injects seeded faults into vectorized runs and checks
// recovery against a fault-free row-engine reference.
func TestVecChaosTPCH(t *testing.T) {
	cases := TPCHCases()
	if testing.Short() {
		cases = cases[:6]
	}
	db := openAppliance(t, 4)
	for i, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			if err := VecChaos(db, c, 8, int64(9000+i), 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

package algebra

import (
	"strings"
	"testing"

	"pdwqo/internal/catalog"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// testShell builds a miniature TPC-H shell database with the paper's
// partitioning: customer→c_custkey, orders→o_orderkey, lineitem→l_orderkey,
// nation replicated.
func testShell(t *testing.T) *catalog.Shell {
	t.Helper()
	s := catalog.NewShell(8)
	add := func(tbl *catalog.Table) {
		t.Helper()
		if err := s.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	add(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: types.KindInt},
			{Name: "c_name", Type: types.KindString},
			{Name: "c_nationkey", Type: types.KindInt},
			{Name: "c_acctbal", Type: types.KindFloat},
		},
		PrimaryKey: []string{"c_custkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "c_custkey"},
	})
	add(&catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: types.KindInt},
			{Name: "o_custkey", Type: types.KindInt},
			{Name: "o_totalprice", Type: types.KindFloat},
			{Name: "o_orderdate", Type: types.KindDate},
		},
		PrimaryKey: []string{"o_orderkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "o_orderkey"},
	})
	add(&catalog.Table{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_orderkey", Type: types.KindInt},
			{Name: "l_partkey", Type: types.KindInt},
			{Name: "l_suppkey", Type: types.KindInt},
			{Name: "l_quantity", Type: types.KindFloat},
			{Name: "l_shipdate", Type: types.KindDate},
		},
		Dist: catalog.Distribution{Kind: catalog.DistHash, Column: "l_orderkey"},
	})
	add(&catalog.Table{
		Name: "nation",
		Columns: []catalog.Column{
			{Name: "n_nationkey", Type: types.KindInt},
			{Name: "n_name", Type: types.KindString},
		},
		PrimaryKey: []string{"n_nationkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistReplicated},
	})
	return s
}

func bindSQL(t *testing.T, sql string) *Tree {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tree, err := NewBinder(testShell(t)).Bind(sel)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return tree
}

func bindErr(t *testing.T, sql string) error {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = NewBinder(testShell(t)).Bind(sel)
	if err == nil {
		t.Fatalf("expected bind error for %q", sql)
	}
	return err
}

func TestBindSimple(t *testing.T) {
	tree := bindSQL(t, "SELECT c_name FROM customer WHERE c_acctbal > 100")
	// Project(Select(Get))
	if _, ok := tree.Op.(*Project); !ok {
		t.Fatalf("root: %T", tree.Op)
	}
	sel := tree.Children[0]
	if _, ok := sel.Op.(*Select); !ok {
		t.Fatalf("child: %T", sel.Op)
	}
	get := sel.Children[0].Op.(*Get)
	if get.Table.Name != "customer" {
		t.Error("table")
	}
	out := tree.OutputCols()
	if len(out) != 1 || out[0].Name != "c_name" || out[0].Type != types.KindString {
		t.Errorf("output: %+v", out)
	}
}

func TestBindStarAndQualifiers(t *testing.T) {
	tree := bindSQL(t, "SELECT * FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	out := tree.OutputCols()
	if len(out) != 8 {
		t.Fatalf("star over join: %d cols", len(out))
	}
	tree = bindSQL(t, "SELECT o.* FROM customer c, orders o")
	if len(tree.OutputCols()) != 4 {
		t.Error("qualified star")
	}
}

func TestBindSelfJoinDistinctIDs(t *testing.T) {
	tree := bindSQL(t, "SELECT a.c_custkey, b.c_custkey FROM customer a, customer b WHERE a.c_custkey = b.c_custkey")
	out := tree.OutputCols()
	if out[0].ID == out[1].ID {
		t.Error("self-join must mint distinct column IDs")
	}
}

func TestBindExplicitJoins(t *testing.T) {
	tree := bindSQL(t, "SELECT c_name FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey")
	j := tree.Children[0].Op.(*Join)
	if j.Kind != JoinLeftOuter || j.On == nil {
		t.Fatalf("join: %+v", j)
	}
	// RIGHT JOIN is rewritten by swapping inputs.
	tree = bindSQL(t, "SELECT c_name FROM orders o RIGHT JOIN customer c ON c.c_custkey = o.o_custkey")
	node := tree.Children[0]
	j = node.Op.(*Join)
	if j.Kind != JoinLeftOuter {
		t.Fatalf("right join not rewritten: %v", j.Kind)
	}
	if node.Children[0].Op.(*Get).Table.Name != "customer" {
		t.Error("right join should swap inputs")
	}
}

func TestBindGroupByAggregates(t *testing.T) {
	tree := bindSQL(t, `SELECT o_custkey, SUM(o_totalprice) total, COUNT(*) cnt
		FROM orders GROUP BY o_custkey HAVING SUM(o_totalprice) > 1000 ORDER BY total DESC`)
	// Sort(Project(Select(GroupBy(Get)))).
	sort := tree.Op.(*Sort)
	if len(sort.Keys) != 1 || !sort.Keys[0].Desc {
		t.Fatalf("sort: %+v", sort)
	}
	proj := tree.Children[0]
	having := proj.Children[0]
	if _, ok := having.Op.(*Select); !ok {
		t.Fatalf("having: %T", having.Op)
	}
	gb := having.Children[0].Op.(*GroupBy)
	if len(gb.Keys) != 1 || len(gb.Aggs) != 2 {
		t.Fatalf("groupby: %+v", gb)
	}
	// HAVING reuses the select list's SUM — still 2 aggregates.
	if gb.Aggs[0].Func != AggSum || gb.Aggs[1].Func != AggCount {
		t.Errorf("agg funcs: %+v", gb.Aggs)
	}
	if gb.Aggs[1].Arg != nil {
		t.Error("COUNT(*) has nil arg")
	}
}

func TestBindAvgRewrite(t *testing.T) {
	tree := bindSQL(t, "SELECT AVG(o_totalprice) FROM orders")
	var gb *GroupBy
	VisitTree(tree, func(n *Tree) {
		if g, ok := n.Op.(*GroupBy); ok {
			gb = g
		}
	})
	if gb == nil || len(gb.Aggs) != 2 {
		t.Fatalf("AVG must become SUM+COUNT: %+v", gb)
	}
	proj := tree.Op.(*Project)
	bin, ok := proj.Defs[0].Expr.(*Binary)
	if !ok || bin.Op != sqlparser.OpDiv {
		t.Errorf("projection should divide: %+v", proj.Defs[0].Expr)
	}
}

func TestBindScalarAggregateNoGroupBy(t *testing.T) {
	tree := bindSQL(t, "SELECT SUM(l_quantity) FROM lineitem")
	gb := tree.Children[0].Op.(*GroupBy)
	if len(gb.Keys) != 0 || len(gb.Aggs) != 1 {
		t.Fatalf("scalar agg: %+v", gb)
	}
}

func TestBindGroupByExpression(t *testing.T) {
	tree := bindSQL(t, "SELECT YEAR(o_orderdate), COUNT(*) FROM orders GROUP BY YEAR(o_orderdate)")
	var gb *GroupBy
	var pre *Project
	VisitTree(tree, func(n *Tree) {
		if g, ok := n.Op.(*GroupBy); ok {
			gb = g
			if p, ok := n.Children[0].Op.(*Project); ok {
				pre = p
			}
		}
	})
	if gb == nil || pre == nil {
		t.Fatal("computed group key needs a pre-projection")
	}
	if len(gb.Keys) != 1 {
		t.Fatalf("keys: %+v", gb.Keys)
	}
}

func TestBindDistinct(t *testing.T) {
	tree := bindSQL(t, "SELECT DISTINCT o_custkey FROM orders")
	gb, ok := tree.Op.(*GroupBy)
	if !ok || len(gb.Aggs) != 0 || len(gb.Keys) != 1 {
		t.Fatalf("distinct: %T %+v", tree.Op, tree.Op)
	}
}

func TestBindOrderByForms(t *testing.T) {
	// By ordinal.
	tree := bindSQL(t, "SELECT c_name, c_acctbal FROM customer ORDER BY 2")
	s := tree.Op.(*Sort)
	if s.Keys[0].ID != tree.Children[0].OutputCols()[1].ID {
		t.Error("ordinal order key")
	}
	// By alias.
	tree = bindSQL(t, "SELECT c_acctbal AS bal FROM customer ORDER BY bal")
	if len(tree.Op.(*Sort).Keys) != 1 {
		t.Error("alias order key")
	}
	// By matching expression.
	tree = bindSQL(t, "SELECT c_acctbal + 1 FROM customer ORDER BY c_acctbal + 1")
	if len(tree.Op.(*Sort).Keys) != 1 {
		t.Error("expression order key")
	}
	bindErr(t, "SELECT c_name FROM customer ORDER BY c_acctbal * 2")
	bindErr(t, "SELECT c_name FROM customer ORDER BY 5")
}

func TestBindTop(t *testing.T) {
	tree := bindSQL(t, "SELECT TOP 10 c_name FROM customer ORDER BY c_name")
	s := tree.Op.(*Sort)
	if s.Top != 10 || len(s.Keys) != 1 {
		t.Fatalf("top: %+v", s)
	}
	tree = bindSQL(t, "SELECT TOP 5 c_name FROM customer")
	if tree.Op.(*Sort).Top != 5 {
		t.Error("bare top")
	}
}

func TestBindBetweenExpansion(t *testing.T) {
	tree := bindSQL(t, "SELECT c_name FROM customer WHERE c_acctbal BETWEEN 10 AND 20")
	f := tree.Children[0].Op.(*Select).Filter
	fp := f.Fingerprint()
	if !strings.Contains(fp, ">=") || !strings.Contains(fp, "<=") {
		t.Errorf("between expansion: %s", fp)
	}
}

func TestBindDateCoercion(t *testing.T) {
	tree := bindSQL(t, "SELECT l_orderkey FROM lineitem WHERE l_shipdate >= '1994-01-01'")
	f := tree.Children[0].Op.(*Select).Filter.(*Binary)
	c := f.R.(*Const)
	if c.Val.Kind() != types.KindDate {
		t.Errorf("string literal should coerce to date: %v", c.Val.Kind())
	}
	// DATEADD over constants folds at bind time.
	tree = bindSQL(t, "SELECT l_orderkey FROM lineitem WHERE l_shipdate < DATEADD(year, 1, '1994-01-01')")
	f = tree.Children[0].Op.(*Select).Filter.(*Binary)
	c = f.R.(*Const)
	if c.Val.Kind() != types.KindDate || c.Val.String() != "1995-01-01" {
		t.Errorf("folded DATEADD: %v", c.Val)
	}
}

func TestBindSubqueries(t *testing.T) {
	tree := bindSQL(t, `SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders)`)
	f := tree.Children[0].Op.(*Select).Filter
	sq, ok := f.(*Subquery)
	if !ok || sq.Kind != SubqueryIn || sq.Outer == nil {
		t.Fatalf("IN subquery: %T", f)
	}
	if len(FreeCols(sq.Input)) != 0 {
		t.Error("uncorrelated subquery has no free columns")
	}
}

func TestBindCorrelatedSubquery(t *testing.T) {
	tree := bindSQL(t, `SELECT c_name FROM customer c WHERE EXISTS (
		SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)`)
	f := tree.Children[0].Op.(*Select).Filter
	sq := f.(*Subquery)
	if sq.Kind != SubqueryExists {
		t.Fatal("exists kind")
	}
	free := FreeCols(sq.Input)
	if len(free) != 1 {
		t.Fatalf("free cols: %v", free)
	}
	// The free column must be customer's c_custkey.
	get := tree.Children[0].Children[0].Op.(*Get)
	if !free.Has(get.Cols[0].ID) {
		t.Errorf("free col should be c_custkey (%d): %v", get.Cols[0].ID, free)
	}
}

func TestBindNotExists(t *testing.T) {
	tree := bindSQL(t, `SELECT c_name FROM customer c WHERE NOT EXISTS (
		SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)`)
	sq := tree.Children[0].Op.(*Select).Filter.(*Subquery)
	if !sq.Negated {
		t.Error("NOT EXISTS must set Negated")
	}
}

func TestBindScalarSubquery(t *testing.T) {
	tree := bindSQL(t, `SELECT c_name FROM customer WHERE c_acctbal > (SELECT MAX(o_totalprice) FROM orders)`)
	f := tree.Children[0].Op.(*Select).Filter.(*Binary)
	sq, ok := f.R.(*Subquery)
	if !ok || sq.Kind != SubqueryScalar {
		t.Fatalf("scalar subquery: %T", f.R)
	}
	if sq.Type() != types.KindFloat {
		t.Errorf("scalar subquery type: %v", sq.Type())
	}
}

func TestBindDerivedTable(t *testing.T) {
	tree := bindSQL(t, `SELECT t.k FROM (SELECT o_custkey AS k FROM orders GROUP BY o_custkey) t WHERE t.k > 5`)
	out := tree.OutputCols()
	if len(out) != 1 || out[0].Name != "k" {
		t.Fatalf("derived output: %+v", out)
	}
}

func TestBindInList(t *testing.T) {
	tree := bindSQL(t, "SELECT c_name FROM customer WHERE c_nationkey IN (1, 2, 3)")
	f := tree.Children[0].Op.(*Select).Filter
	il, ok := f.(*InList)
	if !ok || len(il.List) != 3 {
		t.Fatalf("in list: %T", f)
	}
}

func TestBindCase(t *testing.T) {
	tree := bindSQL(t, "SELECT CASE WHEN c_acctbal > 0 THEN 'pos' ELSE 'neg' END FROM customer")
	if tree.OutputCols()[0].Type != types.KindString {
		t.Error("case type")
	}
}

func TestBindErrors(t *testing.T) {
	cases := []string{
		"SELECT x FROM customer",
		"SELECT c_name FROM no_such_table",
		"SELECT c_custkey FROM customer a, customer b",                     // ambiguous
		"SELECT SUM(c_acctbal) FROM customer WHERE SUM(c_acctbal) > 1",     // agg in WHERE
		"SELECT c_name, SUM(c_acctbal) FROM customer GROUP BY c_nationkey", // non-grouped
		"SELECT c_name FROM customer WHERE c_name > 5",                     // type mismatch
		"SELECT SUM(c_name) FROM customer",                                 // sum of string
		"SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey, o_orderkey FROM orders)",
		"SELECT c_name FROM customer HAVING c_acctbal > 1",
		"SELECT c_name FROM customer WHERE c_name LIKE c_name",
		"SELECT -c_name FROM customer",
		"SELECT c_acctbal + c_name FROM customer",
	}
	for _, sql := range cases {
		bindErr(t, sql)
	}
}

func TestBindAggregateDedup(t *testing.T) {
	tree := bindSQL(t, "SELECT SUM(o_totalprice), SUM(o_totalprice) + 1 FROM orders")
	var gb *GroupBy
	VisitTree(tree, func(n *Tree) {
		if g, ok := n.Op.(*GroupBy); ok {
			gb = g
		}
	})
	if len(gb.Aggs) != 1 {
		t.Errorf("identical aggregates must be shared: %+v", gb.Aggs)
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	a := bindSQL(t, "SELECT c_name FROM customer WHERE c_acctbal > 100")
	b := bindSQL(t, "SELECT c_name FROM customer WHERE c_acctbal > 100")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same query must produce identical fingerprints")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	tree := bindSQL(t, "SELECT c_name FROM customer WHERE c_acctbal > 1 AND c_nationkey = 2 AND c_name = 'x'")
	f := tree.Children[0].Op.(*Select).Filter
	cj := Conjuncts(f)
	if len(cj) != 3 {
		t.Fatalf("conjuncts: %d", len(cj))
	}
	back := AndAll(cj)
	if back.Fingerprint() != f.Fingerprint() {
		t.Errorf("AndAll round-trip: %s vs %s", back.Fingerprint(), f.Fingerprint())
	}
	if AndAll(nil) != nil {
		t.Error("empty AndAll")
	}
}

func TestEquiJoinSides(t *testing.T) {
	tree := bindSQL(t, "SELECT c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
	f := tree.Children[0].Op.(*Select).Filter
	l, r, ok := EquiJoinSides(f)
	if !ok || l == r {
		t.Fatalf("equijoin: %v %v %v", l, r, ok)
	}
	tree = bindSQL(t, "SELECT c_name FROM customer WHERE c_acctbal > 1")
	if _, _, ok := EquiJoinSides(tree.Children[0].Op.(*Select).Filter); ok {
		t.Error("non-equijoin")
	}
}

func TestRewriteScalar(t *testing.T) {
	tree := bindSQL(t, "SELECT c_name FROM customer WHERE c_acctbal > 100")
	f := tree.Children[0].Op.(*Select).Filter
	// Replace constant 100 with 200.
	got := RewriteScalar(f, func(e Scalar) Scalar {
		if c, ok := e.(*Const); ok && !c.Val.IsNull() && c.Val.Kind() == types.KindInt && c.Val.Int() == 100 {
			return &Const{Val: types.NewInt(200)}
		}
		return nil
	})
	if !strings.Contains(got.Fingerprint(), "200") {
		t.Errorf("rewrite: %s", got.Fingerprint())
	}
	if strings.Contains(f.Fingerprint(), "200") {
		t.Error("rewrite must not mutate the original")
	}
}

func TestOutputColsJoinKinds(t *testing.T) {
	shell := testShell(t)
	b := NewBinder(shell)
	sel, _ := sqlparser.ParseSelect("SELECT c_custkey FROM customer")
	left, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	sel2, _ := sqlparser.ParseSelect("SELECT o_custkey FROM orders")
	right, err := b.Bind(sel2)
	if err != nil {
		t.Fatal(err)
	}
	semi := NewTree(&Join{Kind: JoinSemi}, left, right)
	if len(semi.OutputCols()) != 1 {
		t.Error("semi join outputs left only")
	}
	inner := NewTree(&Join{Kind: JoinInner}, left, right)
	if len(inner.OutputCols()) != 2 {
		t.Error("inner join outputs both")
	}
}

package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"pdwqo/internal/types"
)

// Parse parses a single SQL statement (SELECT or CREATE TABLE). A trailing
// semicolon is allowed.
func Parse(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var stmt Statement
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelectUnion()
	case p.peekKeyword("CREATE"):
		stmt, err = p.parseCreateTable()
	default:
		return nil, p.errHere("expected SELECT or CREATE TABLE")
	}
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if p.cur().Kind != tokEOF {
		return nil, p.errHere("unexpected trailing input %q", p.cur().Text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlparser: statement is not a SELECT")
	}
	return sel, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errHere(format string, args ...any) error {
	l := newLexer(p.src)
	return l.errf(p.cur().Pos, "%s", fmt.Sprintf(format, args...))
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == tokIdent && t.Upper == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errHere("expected %s, found %q", kw, p.cur().Text)
	}
	return nil
}

func (p *parser) peekPunct(s string) bool {
	t := p.cur()
	return t.Kind == tokPunct && t.Text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.peekPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errHere("expected %q, found %q", s, p.cur().Text)
	}
	return nil
}

// reservedAfterExpr blocks these keywords from being taken as aliases.
var reservedAfterExpr = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"CROSS": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"UNION": true, "AS": true, "ASC": true, "DESC": true, "SELECT": true,
	"IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"TOP": true, "DISTINCT": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "LIMIT": true, "WITH": true,
}

// parseSelectUnion parses a SELECT possibly followed by UNION ALL chains.
func (p *parser) parseSelectUnion() (*SelectStmt, error) {
	first, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	cur := first
	for p.peekKeyword("UNION") {
		p.advance()
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, p.errHere("only UNION ALL is supported")
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		cur.Union = next
		cur = next
	}
	return first, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	if p.acceptKeyword("TOP") {
		t := p.cur()
		if t.Kind != tokNumber {
			return nil, p.errHere("expected number after TOP")
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errHere("invalid TOP count %q", t.Text)
		}
		p.advance()
		sel.Top = n
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	// FROM is optional: a FROM-less SELECT evaluates over a one-row dual
	// relation (used by DSQL text for constant and empty relations).
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.Kind != tokNumber {
			return nil, p.errHere("expected number after LIMIT")
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errHere("invalid LIMIT count %q", t.Text)
		}
		p.advance()
		sel.Top = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// '*' or 't.*'
	if p.peekPunct("*") {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	if p.cur().Kind == tokIdent && p.peek().Kind == tokPunct && p.peek().Text == "." {
		// Look ahead for t.* without consuming on failure.
		save := p.i
		tbl := p.advance().Text
		p.advance() // '.'
		if p.peekPunct("*") {
			p.advance()
			return SelectItem{Star: true, Table: tbl}, nil
		}
		p.i = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.cur()
		if t.Kind != tokIdent {
			return SelectItem{}, p.errHere("expected alias after AS")
		}
		p.advance()
		item.Alias = t.Text
	} else if t := p.cur(); t.Kind == tokIdent && !reservedAfterExpr[t.Upper] {
		p.advance()
		item.Alias = t.Text
	}
	return item, nil
}

// parseTableRef parses one FROM factor: a primary reference followed by any
// number of explicit JOIN clauses (left-associative).
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryRef()
	if err != nil {
		return nil, err
	}
	for {
		kind, ok := p.peekJoin()
		if !ok {
			return left, nil
		}
		right, err := p.parsePrimaryRef()
		if err != nil {
			return nil, err
		}
		j := &JoinRef{Kind: kind, Left: left, Right: right}
		if kind != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

// peekJoin consumes a join introducer if present and returns its kind.
func (p *parser) peekJoin() (JoinKind, bool) {
	switch {
	case p.acceptKeyword("JOIN"):
		return JoinInner, true
	case p.peekKeyword("INNER") && p.peek().Upper == "JOIN":
		p.advance()
		p.advance()
		return JoinInner, true
	case p.peekKeyword("CROSS") && p.peek().Upper == "JOIN":
		p.advance()
		p.advance()
		return JoinCross, true
	case p.peekKeyword("LEFT"), p.peekKeyword("RIGHT"), p.peekKeyword("FULL"):
		kw := p.cur().Upper
		next := p.peek().Upper
		if next != "JOIN" && next != "OUTER" {
			return 0, false
		}
		p.advance()
		p.acceptKeyword("OUTER")
		if !p.acceptKeyword("JOIN") {
			return 0, false
		}
		switch kw {
		case "LEFT":
			return JoinLeft, true
		case "RIGHT":
			return JoinRight, true
		default:
			return JoinFull, true
		}
	}
	return 0, false
}

func (p *parser) parsePrimaryRef() (TableRef, error) {
	if p.acceptPunct("(") {
		if p.peekKeyword("SELECT") {
			sel, err := p.parseSelectUnion()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			alias, err := p.parseAlias(true)
			if err != nil {
				return nil, err
			}
			return &DerivedTable{Select: sel, Alias: alias}, nil
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return ref, nil
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	alias, err := p.parseAlias(false)
	if err != nil {
		return nil, err
	}
	return &TableName{Name: name, Alias: alias}, nil
}

// parseAlias parses an optional (or, when required, mandatory) alias.
func (p *parser) parseAlias(required bool) (string, error) {
	if p.acceptKeyword("AS") {
		t := p.cur()
		if t.Kind != tokIdent {
			return "", p.errHere("expected alias after AS")
		}
		p.advance()
		return t.Text, nil
	}
	if t := p.cur(); t.Kind == tokIdent && !reservedAfterExpr[t.Upper] {
		p.advance()
		return t.Text, nil
	}
	if required {
		return "", p.errHere("derived table requires an alias")
	}
	return "", nil
}

// parseQualifiedName parses a dotted name and returns the final part; the
// shell database is single-schema so qualifiers only matter syntactically.
func (p *parser) parseQualifiedName() (string, error) {
	t := p.cur()
	if t.Kind != tokIdent {
		return "", p.errHere("expected table name, found %q", t.Text)
	}
	p.advance()
	name := t.Text
	for p.peekPunct(".") {
		p.advance()
		t = p.cur()
		if t.Kind != tokIdent {
			return "", p.errHere("expected identifier after '.'")
		}
		p.advance()
		name = t.Text
	}
	return name, nil
}

// --- Expressions ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("AND") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

var comparisonOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.peekKeyword("EXISTS") {
		p.advance()
		sel, err := p.parseParenSelect()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Select: sel}, nil
	}
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Comparison.
	if t := p.cur(); t.Kind == tokPunct {
		if op, ok := comparisonOps[t.Text]; ok {
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	negated := false
	if p.peekKeyword("NOT") {
		next := p.peek().Upper
		if next == "IN" || next == "BETWEEN" || next == "LIKE" {
			p.advance()
			negated = true
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		in := &InExpr{E: l, Negated: negated}
		if p.peekKeyword("SELECT") {
			sel, err := p.parseSelectUnion()
			if err != nil {
				return nil, err
			}
			in.Select = sel
		} else {
			for {
				e, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.acceptPunct(",") {
					break
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return in, nil

	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Negated: negated}, nil

	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: l, Pattern: pat, Negated: negated}, nil

	case p.peekKeyword("IS"):
		p.advance()
		neg := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return nil, p.errHere("expected NULL after IS")
		}
		return &IsNullExpr{E: l, Negated: neg}, nil
	}
	if negated {
		return nil, p.errHere("dangling NOT")
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpAdd, L: l, R: r}
		case p.acceptPunct("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpMul, L: l, R: r}
		case p.acceptPunct("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptPunct("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok && lit.Value.Kind().Numeric() {
			if lit.Value.Kind() == types.KindInt {
				return &Lit{Value: types.NewInt(-lit.Value.Int())}, nil
			}
			return &Lit{Value: types.NewFloat(-lit.Value.Float())}, nil
		}
		return &NegExpr{E: e}, nil
	}
	p.acceptPunct("+")
	return p.parsePrimary()
}

func (p *parser) parseParenSelect() (*SelectStmt, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	sel, err := p.parseSelectUnion()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errHere("invalid number %q", t.Text)
			}
			return &Lit{Value: types.NewFloat(f), Pos: t.Pos}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errHere("invalid number %q", t.Text)
		}
		return &Lit{Value: types.NewInt(n), Pos: t.Pos}, nil

	case tokString:
		p.advance()
		return &Lit{Value: types.NewString(t.Text), Pos: t.Pos}, nil

	case tokParam:
		p.advance()
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errHere("invalid parameter marker %q", t.Text)
		}
		return &ParamExpr{Slot: n, Pos: t.Pos}, nil

	case tokPunct:
		if t.Text == "(" {
			p.advance()
			if p.peekKeyword("SELECT") {
				sel, err := p.parseSelectUnion()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}

	case tokIdent:
		switch t.Upper {
		case "NULL":
			p.advance()
			return &Lit{Value: types.Null}, nil
		case "TRUE":
			p.advance()
			return &Lit{Value: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Lit{Value: types.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "DATE":
			// DATE 'YYYY-MM-DD' literal syntax.
			if p.peek().Kind == tokString {
				p.advance()
				lit := p.advance()
				v, err := types.ParseDate(lit.Text)
				if err != nil {
					return nil, p.errHere("%v", err)
				}
				return &Lit{Value: v}, nil
			}
		}
		// Function call?
		if p.peek().Kind == tokPunct && p.peek().Text == "(" {
			return p.parseFuncCall()
		}
		// Column reference, possibly qualified.
		p.advance()
		if p.peekPunct(".") {
			p.advance()
			c := p.cur()
			if c.Kind != tokIdent {
				return nil, p.errHere("expected column name after '.'")
			}
			p.advance()
			// Collapse deeper qualification (db.schema.table.col).
			tbl, col := t.Text, c.Text
			for p.peekPunct(".") {
				p.advance()
				c = p.cur()
				if c.Kind != tokIdent {
					return nil, p.errHere("expected identifier after '.'")
				}
				p.advance()
				tbl, col = col, c.Text
			}
			return &ColRef{Table: tbl, Name: col}, nil
		}
		return &ColRef{Name: t.Text}, nil
	}
	return nil, p.errHere("unexpected token %q in expression", t.Text)
}

func (p *parser) parseCase() (Expr, error) {
	p.advance() // CASE
	if !p.peekKeyword("WHEN") {
		return nil, p.errHere("only searched CASE (CASE WHEN ...) is supported")
	}
	out := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseCast() (Expr, error) {
	p.advance() // CAST
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	kind, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &CastExpr{E: e, To: kind}, nil
}

// parseTypeName parses a SQL type name with optional (p[,s]) arguments and
// maps it onto the engine's kind lattice.
func (p *parser) parseTypeName() (types.Kind, error) {
	t := p.cur()
	if t.Kind != tokIdent {
		return 0, p.errHere("expected type name")
	}
	p.advance()
	var kind types.Kind
	switch t.Upper {
	case "BIGINT", "INT", "INTEGER", "SMALLINT", "TINYINT":
		kind = types.KindInt
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC", "MONEY":
		kind = types.KindFloat
	case "VARCHAR", "CHAR", "NVARCHAR", "NCHAR", "TEXT":
		kind = types.KindString
	case "DATE", "DATETIME", "DATETIME2":
		kind = types.KindDate
	case "BIT", "BOOLEAN":
		kind = types.KindBool
	default:
		return 0, p.errHere("unsupported type %q", t.Text)
	}
	if p.acceptPunct("(") {
		for !p.peekPunct(")") {
			if p.cur().Kind == tokEOF {
				return 0, p.errHere("unterminated type arguments")
			}
			p.advance()
		}
		p.advance()
	}
	return kind, nil
}

// dateParts are valid first arguments to DATEADD, parsed as bare keywords.
var dateParts = map[string]bool{
	"YEAR": true, "YY": true, "YYYY": true,
	"MONTH": true, "MM": true, "M": true,
	"DAY": true, "DD": true, "D": true,
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := p.advance()
	p.advance() // '('
	fn := &FuncExpr{Name: name.Upper}
	if p.acceptPunct(")") {
		return fn, nil
	}
	if p.peekPunct("*") {
		p.advance()
		fn.Star = true
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return fn, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fn.Distinct = true
	}
	// DATEADD's first argument is a bare date-part keyword.
	if fn.Name == "DATEADD" {
		t := p.cur()
		if t.Kind == tokIdent && dateParts[t.Upper] {
			p.advance()
			fn.Args = append(fn.Args, &Lit{Value: types.NewString(strings.ToLower(t.Text))})
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fn.Args = append(fn.Args, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return fn, nil
}

// parseCreateTable parses PDW DDL with the WITH (DISTRIBUTION = ...) clause.
func (p *parser) parseCreateTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.peekKeyword("PRIMARY") {
			p.advance()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				t := p.cur()
				if t.Kind != tokIdent {
					return nil, p.errHere("expected column name in PRIMARY KEY")
				}
				p.advance()
				stmt.PrimaryKey = append(stmt.PrimaryKey, t.Text)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		} else {
			t := p.cur()
			if t.Kind != tokIdent {
				return nil, p.errHere("expected column definition")
			}
			p.advance()
			kind, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, ColumnDef{Name: t.Text, Type: kind})
			// Optional constraints on the column.
			for {
				switch {
				case p.acceptKeyword("PRIMARY"):
					if err := p.expectKeyword("KEY"); err != nil {
						return nil, err
					}
					stmt.PrimaryKey = append(stmt.PrimaryKey, t.Text)
				case p.acceptKeyword("NOT"):
					if err := p.expectKeyword("NULL"); err != nil {
						return nil, err
					}
				case p.acceptKeyword("NULL"):
				default:
					goto colDone
				}
			}
		colDone:
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	stmt.Replicated = true // default when no WITH clause: replicate
	if p.acceptKeyword("WITH") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("DISTRIBUTION"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		switch {
		case p.acceptKeyword("REPLICATE"):
			stmt.Replicated = true
		case p.acceptKeyword("HASH"):
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			t := p.cur()
			if t.Kind != tokIdent {
				return nil, p.errHere("expected distribution column")
			}
			p.advance()
			stmt.Replicated = false
			stmt.HashColumn = t.Text
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errHere("expected HASH or REPLICATE")
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

package normalize

import (
	"strings"
	"testing"
)

func mustParam(t *testing.T, sql string) *ParamQuery {
	t.Helper()
	pq, err := Parameterize(sql)
	if err != nil {
		t.Fatalf("Parameterize(%q): %v", sql, err)
	}
	return pq
}

func TestParameterizeStripsLiterals(t *testing.T) {
	pq := mustParam(t, "SELECT a FROM t WHERE b > 5 AND c = 'x' AND d < 1.5")
	if len(pq.Lits) != 3 {
		t.Fatalf("got %d slots, want 3: %+v", len(pq.Lits), pq.Lits)
	}
	wantKinds := []LitKind{LitInt, LitString, LitFloat}
	for i, k := range wantKinds {
		if pq.Lits[i].Kind != k {
			t.Errorf("slot %d kind = %s, want %s", i, pq.Lits[i].Kind, k)
		}
	}
	for _, want := range []string{"? int 0", "? string 1", "? float 2"} {
		if !strings.Contains(pq.Canon, want) {
			t.Errorf("Canon missing %q:\n%s", want, pq.Canon)
		}
	}
	if strings.Contains(pq.Canon, "5") || strings.Contains(pq.Canon, "'x'") {
		t.Errorf("Canon leaked a literal:\n%s", pq.Canon)
	}
}

func TestParameterizeValueDedup(t *testing.T) {
	// Equal (kind, value) occurrences share one slot — the property that
	// keeps re-binding consistent with the optimizer's value-based
	// expression dedup.
	pq := mustParam(t, "SELECT a FROM t WHERE b = 7 AND c = 7")
	if len(pq.Lits) != 1 {
		t.Fatalf("got %d slots, want 1", len(pq.Lits))
	}
	if len(pq.Lits[0].Spans) != 2 {
		t.Fatalf("slot 0 has %d spans, want 2", len(pq.Lits[0].Spans))
	}
	// Different values get distinct slots, making the slot pattern — and
	// hence the fingerprint — different from the deduped form.
	pq2 := mustParam(t, "SELECT a FROM t WHERE b = 7 AND c = 8")
	if len(pq2.Lits) != 2 {
		t.Fatalf("got %d slots, want 2", len(pq2.Lits))
	}
	if pq.Fingerprint("") == pq2.Fingerprint("") {
		t.Error("slot patterns (0,0) and (0,1) must fingerprint differently")
	}
	// Same kind matters: int 7 and float 7.0 never share a slot.
	pq3 := mustParam(t, "SELECT a FROM t WHERE b = 7 AND c = 7.0")
	if len(pq3.Lits) != 2 {
		t.Fatalf("int/float with equal value collapsed: %+v", pq3.Lits)
	}
}

func TestParameterizeRetainsStructuralLiterals(t *testing.T) {
	cases := []struct {
		sql   string
		slots int
		keep  string // literal that must stay in Canon
	}{
		{"SELECT TOP 10 a FROM t WHERE b > 5", 1, "10"},
		{"SELECT a FROM t WHERE d >= DATEADD(month, 3, '1994-01-01') AND b > 5", 1, "3"},
		{"SELECT a, b FROM t WHERE b > 5 ORDER BY 2", 1, "2"},
		{"SELECT a, b FROM t WHERE b > 5 ORDER BY a + 1", 1, "1"},
	}
	for _, c := range cases {
		pq := mustParam(t, c.sql)
		if len(pq.Lits) != c.slots {
			t.Errorf("%q: %d slots, want %d (%+v)", c.sql, len(pq.Lits), c.slots, pq.Lits)
			continue
		}
		if !strings.Contains(pq.Canon, c.keep) {
			t.Errorf("%q: Canon dropped structural literal %q:\n%s", c.sql, c.keep, pq.Canon)
		}
	}
}

func TestParameterizeDateaddRegionEnds(t *testing.T) {
	// Literals after the DATEADD call closes are parameterized again.
	pq := mustParam(t, "SELECT a FROM t WHERE d < DATEADD(year, 1, '1995-01-01') AND b = 9")
	if len(pq.Lits) != 1 {
		t.Fatalf("got %d slots, want 1: %+v", len(pq.Lits), pq.Lits)
	}
	if pq.Lits[0].Kind != LitInt || pq.Lits[0].Val.Int() != 9 {
		t.Errorf("wrong slot captured: %+v", pq.Lits[0])
	}
}

func TestSpliceRoundTrip(t *testing.T) {
	sql := "SELECT a FROM t WHERE b = 7 AND c = 'O''Brien' AND d = 7"
	pq := mustParam(t, sql)
	// Splicing each slot's own SQL literal reproduces an equivalent query.
	out, err := pq.Splice(pq.BindTexts())
	if err != nil {
		t.Fatal(err)
	}
	pq2 := mustParam(t, out)
	if pq2.Canon != pq.Canon {
		t.Errorf("round-trip changed shape:\n%s\nvs\n%s", pq.Canon, pq2.Canon)
	}
	if pq2.LitSig() != pq.LitSig() {
		t.Error("round-trip changed literal values")
	}
	// New constants land at every occurrence of their slot.
	texts := pq.BindTexts()
	texts[0] = "42"
	out, err = pq.Splice(texts)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "42") != 2 {
		t.Errorf("deduped slot must splice into both spans: %q", out)
	}
	if _, err := pq.Splice([]string{"1"}); err == nil {
		t.Error("Splice must reject a wrong-arity text vector")
	}
}

func TestFingerprintShapeAndEnv(t *testing.T) {
	a := mustParam(t, "SELECT a FROM t WHERE b > 5")
	b := mustParam(t, "select a from t where b > 99")
	if a.Fingerprint("env") != b.Fingerprint("env") {
		t.Error("same shape, different constants must share a fingerprint")
	}
	if a.Fingerprint("env") == a.Fingerprint("other") {
		t.Error("environment must be part of the fingerprint")
	}
	c := mustParam(t, "SELECT a FROM t WHERE b > 5.0")
	if a.Fingerprint("env") == c.Fingerprint("env") {
		t.Error("literal kind must be part of the fingerprint")
	}
	if a.LitSig() == b.LitSig() {
		t.Error("different constants must have different literal signatures")
	}
}

func TestParamAt(t *testing.T) {
	sql := "SELECT a FROM t WHERE b = 7 AND c = 'x' AND d = 7"
	pq := mustParam(t, sql)
	at := pq.ParamAt()
	occ := 0
	for pos, slot := range at {
		occ++
		if slot < 0 || slot >= len(pq.Lits) {
			t.Errorf("pos %d maps to out-of-range slot %d", pos, slot)
		}
		if pos <= 0 || pos >= len(sql) {
			t.Errorf("implausible literal position %d", pos)
		}
	}
	if occ != 3 {
		t.Errorf("got %d occurrences, want 3", occ)
	}
	// Both 7s map to the same slot.
	var slots []int
	for _, l := range pq.Lits {
		if l.Kind == LitInt {
			for _, s := range l.Spans {
				slots = append(slots, at[s.Pos])
			}
		}
	}
	if len(slots) != 2 || slots[0] != slots[1] {
		t.Errorf("deduped occurrences map to different slots: %v", slots)
	}
}

func TestParameterizeLexError(t *testing.T) {
	if _, err := Parameterize("SELECT 'unterminated"); err == nil {
		t.Error("Parameterize must surface lexer errors")
	}
}

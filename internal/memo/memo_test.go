package memo

import (
	"math"
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

// testShell builds a mini TPC-H catalog with synthetic statistics:
// customer 1k rows, orders 10k rows, lineitem 40k rows, part 200 rows.
func testShell(t *testing.T) *catalog.Shell {
	t.Helper()
	s := catalog.NewShell(8)

	intSeq := func(n int, mod int64) []types.Value {
		out := make([]types.Value, n)
		for i := range out {
			v := int64(i)
			if mod > 0 {
				v = int64(i) % mod
			}
			out[i] = types.NewInt(v)
		}
		return out
	}
	floatSeq := func(n int) []types.Value {
		out := make([]types.Value, n)
		for i := range out {
			out[i] = types.NewFloat(float64(i%5000) + 0.5)
		}
		return out
	}
	dateSeq := func(n int) []types.Value {
		base := types.MustParseDate("1992-01-01").DateDays()
		out := make([]types.Value, n)
		for i := range out {
			out[i] = types.NewDate(base + int64(i%2500))
		}
		return out
	}
	strCycle := func(n int, words ...string) []types.Value {
		out := make([]types.Value, n)
		for i := range out {
			out[i] = types.NewString(words[i%len(words)])
		}
		return out
	}
	mustStats := func(cols map[string][]types.Value) *stats.Table {
		t.Helper()
		st, err := stats.BuildTable(cols)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	add := func(tbl *catalog.Table) {
		t.Helper()
		if err := s.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}

	add(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: types.KindInt},
			{Name: "c_name", Type: types.KindString},
			{Name: "c_acctbal", Type: types.KindFloat},
		},
		PrimaryKey: []string{"c_custkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "c_custkey"},
		Stats: mustStats(map[string][]types.Value{
			"c_custkey": intSeq(1000, 0),
			"c_name":    strCycle(1000, "alice", "bob", "carol", "dave"),
			"c_acctbal": floatSeq(1000),
		}),
	})
	add(&catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: types.KindInt},
			{Name: "o_custkey", Type: types.KindInt},
			{Name: "o_totalprice", Type: types.KindFloat},
			{Name: "o_orderdate", Type: types.KindDate},
		},
		PrimaryKey: []string{"o_orderkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "o_orderkey"},
		Stats: mustStats(map[string][]types.Value{
			"o_orderkey":   intSeq(10000, 0),
			"o_custkey":    intSeq(10000, 1000),
			"o_totalprice": floatSeq(10000),
			"o_orderdate":  dateSeq(10000),
		}),
	})
	add(&catalog.Table{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_orderkey", Type: types.KindInt},
			{Name: "l_partkey", Type: types.KindInt},
			{Name: "l_suppkey", Type: types.KindInt},
			{Name: "l_quantity", Type: types.KindFloat},
			{Name: "l_shipdate", Type: types.KindDate},
		},
		Dist: catalog.Distribution{Kind: catalog.DistHash, Column: "l_orderkey"},
		Stats: mustStats(map[string][]types.Value{
			"l_orderkey": intSeq(40000, 10000),
			"l_partkey":  intSeq(40000, 200),
			"l_suppkey":  intSeq(40000, 50),
			"l_quantity": floatSeq(40000),
			"l_shipdate": dateSeq(40000),
		}),
	})
	add(&catalog.Table{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: types.KindInt},
			{Name: "p_name", Type: types.KindString},
		},
		PrimaryKey: []string{"p_partkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "p_partkey"},
		Stats: mustStats(map[string][]types.Value{
			"p_partkey": intSeq(200, 0),
			"p_name":    strCycle(200, "forest green", "antique blue", "metallic rose", "lace almond"),
		}),
	})
	return s
}

// optimizeSQL runs parse→bind→normalize→memo for a query.
func optimizeSQL(t *testing.T, shell *catalog.Shell, sql string, budget int) *Memo {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBinder(shell)
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize.New(b).Normalize(tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Optimize(shell, norm, budget)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemoInsertDedup(t *testing.T) {
	shell := testShell(t)
	b := algebra.NewBinder(shell)
	sel, _ := sqlparser.ParseSelect("SELECT c_custkey FROM customer")
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	m := New(shell)
	id1 := m.Insert(tree)
	id2 := m.Insert(tree)
	if id1 != id2 {
		t.Error("identical trees must land in one group")
	}
}

func TestSimpleScanPlan(t *testing.T) {
	m := optimizeSQL(t, testShell(t), "SELECT c_name FROM customer WHERE c_acctbal > 100", 0)
	plan, err := m.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	for _, want := range []string{"ComputeScalar", "Filter", "TableScan"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan missing %s:\n%s", want, s)
		}
	}
}

func TestPaperFigure3Memo(t *testing.T) {
	// The query from Figure 3: the memo must contain logical groups for
	// Get C, Get O, Select(O), Join, with physical implementations.
	m := optimizeSQL(t, testShell(t),
		"SELECT * FROM CUSTOMER C, ORDERS O WHERE C.c_custkey = O.o_custkey AND O.o_totalprice > 1000", 0)
	var hasGetC, hasGetO, hasSelect, hasJoin, hasHashJoin, hasScan bool
	for _, g := range m.Groups[1:] {
		for _, e := range g.Exprs {
			switch op := e.Op.(type) {
			case *algebra.Get:
				if op.Table.Name == "customer" {
					hasGetC = true
				}
				if op.Table.Name == "orders" {
					hasGetO = true
				}
			case *algebra.Select:
				hasSelect = true
			case *algebra.Join:
				hasJoin = true
			case *algebra.Phys:
				if op.Algo == algebra.AlgoHashJoin {
					hasHashJoin = true
				}
				if op.Algo == algebra.AlgoTableScan {
					hasScan = true
				}
			}
		}
	}
	for name, ok := range map[string]bool{
		"Get customer": hasGetC, "Get orders": hasGetO, "Select": hasSelect,
		"Join": hasJoin, "HashJoin": hasHashJoin, "TableScan": hasScan,
	} {
		if !ok {
			t.Errorf("memo missing %s:\n%s", name, m)
		}
	}
	// Join commutativity must be visible: the join group holds ≥2 logical
	// join expressions.
	for _, g := range m.Groups[1:] {
		joins := 0
		for _, e := range g.Exprs {
			if j, ok := e.Op.(*algebra.Join); ok && j.Kind == algebra.JoinInner && !e.Physical {
				joins++
			}
		}
		if joins >= 2 {
			return
		}
	}
	t.Errorf("no group with commuted joins:\n%s", m)
}

func TestJoinOrderExploration(t *testing.T) {
	shell := testShell(t)
	m := optimizeSQL(t, shell, `SELECT c_name FROM customer c, orders o, lineitem l
		WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey`, 0)
	// All three base orders (and their commutes) should be reachable: the
	// root-side join group must contain expressions whose children differ.
	rootJoins := map[string]bool{}
	for _, g := range m.Groups[1:] {
		for _, e := range g.Exprs {
			if _, ok := e.Op.(*algebra.Join); ok && !e.Physical {
				rootJoins[e.Fingerprint()] = true
			}
		}
	}
	if len(rootJoins) < 6 {
		t.Errorf("expected rich join-order space, got %d join exprs", len(rootJoins))
	}
}

func TestCardinalityEstimates(t *testing.T) {
	shell := testShell(t)
	m := optimizeSQL(t, shell, "SELECT o_orderkey FROM orders WHERE o_totalprice > 1000", 0)
	props := m.Groups[m.Root].Props
	// o_totalprice cycles 0.5..4999.5 over 10k rows; >1000 keeps ~80%.
	if props.Rows < 6000 || props.Rows > 9500 {
		t.Errorf("filter cardinality = %v, want ≈8000", props.Rows)
	}

	// PK-FK join: |orders ⋈ customer| ≈ |orders| = 10000.
	m = optimizeSQL(t, shell, "SELECT c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey", 0)
	props = m.Groups[m.Root].Props
	if math.Abs(props.Rows-10000) > 3000 {
		t.Errorf("join cardinality = %v, want ≈10000", props.Rows)
	}
}

func TestBestSerialJoinOrderUsesSmallTableFirst(t *testing.T) {
	shell := testShell(t)
	// part (200 rows, LIKE-filtered) joins lineitem (40k): the hash join
	// must build on the small (part) side.
	m := optimizeSQL(t, shell, `SELECT l.l_quantity FROM part p, lineitem l
		WHERE p.p_partkey = l.l_partkey AND p.p_name LIKE 'forest%'`, 0)
	plan, err := m.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	var join *PhysPlan
	var walk func(p *PhysPlan)
	walk = func(p *PhysPlan) {
		if ph, ok := p.Op.(*algebra.Phys); ok && ph.Algo == algebra.AlgoHashJoin {
			join = p
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(plan)
	if join == nil {
		t.Fatalf("no hash join in plan:\n%s", plan)
	}
	// Build side is the right child; it must be the (filtered) part side.
	right := join.Children[1]
	if right.Props.Rows > join.Children[0].Props.Rows {
		t.Errorf("build side (%v rows) should be smaller than probe (%v rows)",
			right.Props.Rows, join.Children[0].Props.Rows)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	shell := testShell(t)
	m := optimizeSQL(t, shell, `SELECT c_name FROM customer c, orders o, lineitem l, part p
		WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey AND l.l_partkey = p.p_partkey`, 40)
	if !m.Exhausted() {
		t.Error("tiny budget must exhaust")
	}
	if _, err := m.BestPlan(); err != nil {
		t.Errorf("plan must still extract under exhaustion: %v", err)
	}
	// Unlimited exploration must find strictly more expressions.
	full := optimizeSQL(t, shell, `SELECT c_name FROM customer c, orders o, lineitem l, part p
		WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey AND l.l_partkey = p.p_partkey`, 0)
	if full.NumExprs() <= m.NumExprs() {
		t.Errorf("full exploration (%d exprs) should beat budgeted (%d)", full.NumExprs(), m.NumExprs())
	}
}

func TestJoinBelowGroupByRule(t *testing.T) {
	shell := testShell(t)
	// Aggregate lineitem by l_partkey, then join with part (PK join): the
	// rule must offer the join-below-aggregation alternative.
	m := optimizeSQL(t, shell, `SELECT t.s FROM part p,
		(SELECT l_partkey AS k, SUM(l_quantity) AS s FROM lineitem GROUP BY l_partkey) t
		WHERE p.p_partkey = t.k AND p.p_name LIKE 'forest%'`, 0)
	// Search for a GroupBy expression whose child group contains a join.
	found := false
	for _, g := range m.Groups[1:] {
		for _, e := range g.Exprs {
			gb, ok := e.Op.(*algebra.GroupBy)
			if !ok || e.Physical || len(gb.Aggs) == 0 {
				continue
			}
			child := m.Groups[e.Children[0]]
			for _, ce := range child.Exprs {
				if _, ok := ce.Op.(*algebra.Join); ok {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("join-below-group-by alternative missing:\n%s", m)
	}
}

func TestMemoStringRendersFigure3Style(t *testing.T) {
	m := optimizeSQL(t, testShell(t), "SELECT c_name FROM customer WHERE c_acctbal > 100", 0)
	s := m.String()
	if !strings.Contains(s, "Group 1") || !strings.Contains(s, "[root]") {
		t.Errorf("memo rendering:\n%s", s)
	}
}

func TestValuesPlan(t *testing.T) {
	// Contradictions normalize to Values; the memo must still plan them.
	m := optimizeSQL(t, testShell(t), "SELECT c_name FROM customer WHERE c_acctbal > 10 AND c_acctbal < 5", 0)
	plan, err := m.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "ValuesScan") {
		t.Errorf("expected ValuesScan:\n%s", plan)
	}
}

func TestSemiJoinCardinality(t *testing.T) {
	shell := testShell(t)
	m := optimizeSQL(t, shell, `SELECT c_name FROM customer c WHERE EXISTS (
		SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)`, 0)
	props := m.Groups[m.Root].Props
	// Every custkey appears in orders → semi join keeps ≈ all 1000.
	if props.Rows < 500 || props.Rows > 1100 {
		t.Errorf("semi join cardinality = %v, want ≈1000", props.Rows)
	}
}

func TestGroupByCardinality(t *testing.T) {
	shell := testShell(t)
	m := optimizeSQL(t, shell, "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey", 0)
	props := m.Groups[m.Root].Props
	if math.Abs(props.Rows-1000) > 300 {
		t.Errorf("group-by cardinality = %v, want ≈1000", props.Rows)
	}
}

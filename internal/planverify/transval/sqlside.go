package transval

import (
	"fmt"
	"strings"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// The SQL-side interpreter re-derives the abstract state of a DSQL step
// from its re-parsed text alone: column identities come from the
// generator's c<id> aliases, base-table metadata from the shell catalog,
// and temp-table metadata from the validated boundary state of earlier
// steps. It never looks at the producing plan fragment, so agreement
// between the two sides is evidence rather than tautology.

// scopeItem is one name source visible in a SELECT: a base table, a temp
// table, or a derived table, with per-column resolvable names.
type scopeItem struct {
	alias string
	cols  []absCol
	names []string
	// hashName is the distribution column name when this item is a scan of
	// a hash-distributed base table; base columns carry no c<id> identity,
	// so class membership is decided by name at the scan's select list.
	hashName string
}

// scope chains name sources; EXISTS bodies resolve through their parent.
type scope struct {
	parent *scope
	items  []scopeItem
}

func (sc *scope) resolve(table, name string) (*absCol, *scopeItem, error) {
	for s := sc; s != nil; s = s.parent {
		for i := range s.items {
			it := &s.items[i]
			if table != "" && !strings.EqualFold(it.alias, table) {
				continue
			}
			for j := range it.cols {
				if strings.EqualFold(it.names[j], name) {
					return &it.cols[j], it, nil
				}
			}
			if table != "" {
				return nil, nil, fmt.Errorf("no column %q in %q", name, table)
			}
		}
	}
	return nil, nil, fmt.Errorf("unresolved column reference %q", name)
}

// boundFrom is the result of binding one FROM factor.
type boundFrom struct {
	items    []scopeItem
	dist     absDist
	hashName string
}

// sqlInterp interprets re-parsed step SQL against the catalog and the
// temp-table boundary state registered by earlier steps.
type sqlInterp struct {
	shell     *catalog.Shell
	temps     map[string]*absRel
	slotKinds map[int]types.Kind
	acc       *fragAcc
}

// parseColName recognizes the generator's c<id> column aliases.
func parseColName(s string) (algebra.ColumnID, bool) {
	if len(s) < 2 || s[0] != 'c' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(s); i++ {
		d := s[i]
		if d < '0' || d > '9' {
			return 0, false
		}
		n = n*10 + int(d-'0')
	}
	return algebra.ColumnID(n), true
}

func colAliasNames(cols []absCol) []string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = fmt.Sprintf("c%d", c.ID)
	}
	return names
}

// bindRef binds one FROM factor into scope items plus a derived placement.
func (si *sqlInterp) bindRef(ref sqlparser.TableRef) (*boundFrom, error) {
	switch x := ref.(type) {
	case *sqlparser.TableName:
		alias := x.Alias
		if alias == "" {
			alias = x.Name
		}
		if tr, ok := si.temps[x.Name]; ok {
			si.acc.temps[x.Name] = struct{}{}
			cols := cloneCols(tr.cols)
			return &boundFrom{
				items: []scopeItem{{alias: alias, cols: cols, names: colAliasNames(cols)}},
				dist:  tr.dist,
			}, nil
		}
		tbl := si.shell.Table(x.Name)
		if tbl == nil {
			return nil, fmt.Errorf("unknown table %q", x.Name)
		}
		si.acc.tables[tbl.Name] = struct{}{}
		cols := make([]absCol, len(tbl.Columns))
		names := make([]string, len(tbl.Columns))
		for i, c := range tbl.Columns {
			cols[i] = absCol{
				ID: -1, Type: c.Type, Nullable: false,
				Origins: map[string]struct{}{tbl.Name + "." + c.Name: {}},
			}
			names[i] = c.Name
		}
		bf := &boundFrom{
			items: []scopeItem{{alias: alias, cols: cols, names: names}},
			dist:  absDist{Kind: core.DistReplicated},
		}
		if tbl.Dist.Kind == catalog.DistHash {
			bf.dist = absDist{Kind: core.DistHash, Cols: algebra.NewColSet()}
			bf.hashName = tbl.Dist.Column
			bf.items[0].hashName = tbl.Dist.Column
		}
		return bf, nil

	case *sqlparser.DerivedTable:
		rel, err := si.selectRel(x.Select, nil, false, false)
		if err != nil {
			return nil, err
		}
		cols := cloneCols(rel.cols)
		return &boundFrom{
			items: []scopeItem{{alias: x.Alias, cols: cols, names: colAliasNames(cols)}},
			dist:  rel.dist,
		}, nil

	case *sqlparser.JoinRef:
		return si.bindJoin(x)
	}
	return nil, fmt.Errorf("unsupported table reference %T", ref)
}

func (si *sqlInterp) bindJoin(j *sqlparser.JoinRef) (*boundFrom, error) {
	l, err := si.bindRef(j.Left)
	if err != nil {
		return nil, err
	}
	r, err := si.bindRef(j.Right)
	if err != nil {
		return nil, err
	}
	if l.hashName != "" || r.hashName != "" {
		return nil, fmt.Errorf("join directly over a base table is not generated")
	}
	if j.Kind == sqlparser.JoinRight {
		return nil, fmt.Errorf("RIGHT JOIN is not generated")
	}
	items := append(append([]scopeItem{}, l.items...), r.items...)
	sc := &scope{items: items}

	conjs := splitAnd(j.On)
	var pairs [][2]algebra.ColumnID
	for _, c := range conjs {
		if si.valueBearing(c) {
			canon, err := si.canonExpr(c, sc)
			if err != nil {
				return nil, err
			}
			si.acc.addPred(canon)
		}
		if b, ok := c.(*sqlparser.BinExpr); ok && b.Op == sqlparser.OpEq {
			lc, lok := b.L.(*sqlparser.ColRef)
			rc, rok := b.R.(*sqlparser.ColRef)
			if lok && rok {
				a, _, err1 := sc.resolve(lc.Table, lc.Name)
				bb, _, err2 := sc.resolve(rc.Table, rc.Name)
				if err1 == nil && err2 == nil && a.ID >= 0 && bb.ID >= 0 {
					pairs = append(pairs, [2]algebra.ColumnID{a.ID, bb.ID})
				}
			}
		}
	}

	switch j.Kind {
	case sqlparser.JoinInner:
		for _, c := range conjs {
			deps, err := si.killConjExpr(c, sc)
			if err != nil {
				return nil, err
			}
			for _, d := range deps {
				d.Nullable = false
			}
		}
	case sqlparser.JoinLeft:
		for i := range items {
			if i >= len(l.items) {
				for k := range items[i].cols {
					items[i].cols[k].Nullable = true
				}
			}
		}
	case sqlparser.JoinFull:
		for i := range items {
			for k := range items[i].cols {
				items[i].cols[k].Nullable = true
			}
		}
	case sqlparser.JoinCross:
		// no condition, no kills
	}

	d, ok := joinDistSQL(j.Kind, pairs, l.dist, r.dist)
	if !ok {
		// The placement rules admit no movement-free combination; fall back
		// to the left side so the mismatch surfaces as a distribution
		// violation against the plan side rather than a bind failure.
		d = l.dist
	}
	return &boundFrom{items: items, dist: d}, nil
}

// joinDistSQL mirrors the enumerator's partition-compatibility rules over
// resolved equi-join column pairs.
func joinDistSQL(kind sqlparser.JoinKind, pairs [][2]algebra.ColumnID, l, r absDist) (absDist, bool) {
	addEq := func(class, into algebra.ColSet) {
		for _, p := range pairs {
			if class.Has(p[0]) {
				into.Add(p[1])
			}
			if class.Has(p[1]) {
				into.Add(p[0])
			}
		}
	}
	switch {
	case l.Kind == core.DistSingle && r.Kind == core.DistSingle:
		return absDist{Kind: core.DistSingle}, true
	case l.Kind == core.DistSingle || r.Kind == core.DistSingle:
		return absDist{}, false

	case l.Kind == core.DistReplicated && r.Kind == core.DistReplicated:
		return absDist{Kind: core.DistReplicated}, true

	case l.Kind == core.DistHash && r.Kind == core.DistReplicated:
		if kind == sqlparser.JoinFull {
			return absDist{}, false
		}
		cols := algebra.NewColSet()
		cols.AddSet(l.Cols)
		if kind == sqlparser.JoinInner {
			addEq(l.Cols, cols)
		}
		return absDist{Kind: core.DistHash, Cols: cols}, true

	case l.Kind == core.DistReplicated && r.Kind == core.DistHash:
		if kind != sqlparser.JoinInner && kind != sqlparser.JoinCross {
			return absDist{}, false
		}
		cols := algebra.NewColSet()
		cols.AddSet(r.Cols)
		if kind == sqlparser.JoinInner {
			addEq(r.Cols, cols)
		}
		return absDist{Kind: core.DistHash, Cols: cols}, true

	default: // both hash: must be collocated on an equi-join pair
		coll := false
		for _, p := range pairs {
			if (l.Cols.Has(p[0]) && r.Cols.Has(p[1])) || (l.Cols.Has(p[1]) && r.Cols.Has(p[0])) {
				coll = true
			}
		}
		if !coll {
			return absDist{}, false
		}
		cols := algebra.NewColSet()
		cols.AddSet(l.Cols)
		if kind == sqlparser.JoinInner {
			cols.AddSet(r.Cols)
		}
		return absDist{Kind: core.DistHash, Cols: cols}, true
	}
}

// selectRel interprets a SELECT (possibly a UNION ALL chain). When exists
// is set the statement is an EXISTS body: its select list is ignored and
// killOuter decides whether its WHERE conjuncts prove outer columns
// non-NULL (semi-join) or not (anti-join).
func (si *sqlInterp) selectRel(sel *sqlparser.SelectStmt, outer *scope, exists, killOuter bool) (*absRel, error) {
	out, err := si.branchRel(sel, outer, exists, killOuter)
	if err != nil {
		return nil, err
	}
	for u := sel.Union; u != nil; u = u.Union {
		br, err := si.branchRel(u, outer, exists, killOuter)
		if err != nil {
			return nil, err
		}
		if len(br.cols) != len(out.cols) {
			return nil, fmt.Errorf("union branches disagree on arity: %d vs %d", len(out.cols), len(br.cols))
		}
		for i := range out.cols {
			if out.cols[i].ID != br.cols[i].ID {
				return nil, fmt.Errorf("union branches disagree on column identity at position %d: c%d vs c%d",
					i, out.cols[i].ID, br.cols[i].ID)
			}
			out.cols[i].Nullable = out.cols[i].Nullable || br.cols[i].Nullable
			out.cols[i].Origins = mergeOrigins(out.cols[i].Origins, br.cols[i].Origins)
		}
		switch {
		case out.dist.Kind == core.DistSingle && br.dist.Kind == core.DistSingle:
			out.dist = absDist{Kind: core.DistSingle}
		case out.dist.Kind == core.DistReplicated && br.dist.Kind == core.DistReplicated:
			out.dist = absDist{Kind: core.DistReplicated}
		case out.dist.Kind == core.DistHash && br.dist.Kind == core.DistHash:
			shared := algebra.NewColSet()
			for c := range out.dist.Cols {
				if br.dist.Cols.Has(c) {
					shared.Add(c)
				}
			}
			out.dist = absDist{Kind: core.DistHash, Cols: shared}
		default:
			// Mixed kinds would not have been generated; surface the
			// disagreement through the distribution comparison.
			out.dist = absDist{Kind: out.dist.Kind, Cols: out.dist.Cols}
		}
	}
	return out, nil
}

func (si *sqlInterp) branchRel(sel *sqlparser.SelectStmt, outer *scope, exists, killOuter bool) (*absRel, error) {
	if sel.Distinct {
		return nil, fmt.Errorf("SELECT DISTINCT is not generated")
	}
	if sel.Having != nil {
		return nil, fmt.Errorf("HAVING is not generated")
	}

	var items []scopeItem
	srcDist := absDist{Kind: core.DistReplicated}
	hashName := ""
	switch len(sel.From) {
	case 0:
		// FROM-less literal row (Values); replicated like the operator.
	case 1:
		bf, err := si.bindRef(sel.From[0])
		if err != nil {
			return nil, err
		}
		items, srcDist, hashName = bf.items, bf.dist, bf.hashName
	default:
		return nil, fmt.Errorf("comma joins are not generated")
	}
	sc := &scope{parent: outer, items: items}

	doKills := !exists || killOuter
	if err := si.applyWhere(sel.Where, sc, doKills); err != nil {
		return nil, err
	}
	if exists {
		return &absRel{}, nil
	}

	for _, g := range sel.GroupBy {
		cr, ok := g.(*sqlparser.ColRef)
		if !ok {
			return nil, fmt.Errorf("non-column GROUP BY expression")
		}
		if _, _, err := sc.resolve(cr.Table, cr.Name); err != nil {
			return nil, err
		}
	}
	keyed := len(sel.GroupBy) > 0
	for _, ob := range sel.OrderBy {
		if cr, ok := ob.Expr.(*sqlparser.ColRef); ok {
			if _, _, err := sc.resolve(cr.Table, cr.Name); err != nil {
				return nil, err
			}
		}
	}

	type srcRef struct {
		col  *absCol
		name string
		item *scopeItem
	}
	out := make([]absCol, 0, len(sel.Items))
	pure := make([]*srcRef, 0, len(sel.Items))
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("star select items are not generated")
		}
		// Column-less Values render as a literal dummy column.
		if len(sel.Items) == 1 && strings.EqualFold(it.Alias, "dummy") {
			if _, ok := it.Expr.(*sqlparser.Lit); ok {
				return &absRel{dist: srcDist}, nil
			}
		}

		if f, ok := it.Expr.(*sqlparser.FuncExpr); ok && f.IsAggregate() {
			id, err := si.itemID(it, sc)
			if err != nil {
				return nil, err
			}
			col, err := si.aggCol(f, sc, keyed)
			if err != nil {
				return nil, err
			}
			col.ID = id
			out = append(out, col)
			pure = append(pure, nil)
			continue
		}

		id, err := si.itemID(it, sc)
		if err != nil {
			return nil, err
		}
		t, err := si.exprType(it.Expr, sc)
		if err != nil {
			return nil, err
		}
		n, err := si.exprNullable(it.Expr, sc)
		if err != nil {
			return nil, err
		}
		org := map[string]struct{}{}
		si.exprOrigins(it.Expr, sc, org)
		out = append(out, absCol{ID: id, Type: t, Nullable: n, Origins: org})
		if cr, ok := it.Expr.(*sqlparser.ColRef); ok {
			col, item, err := sc.resolve(cr.Table, cr.Name)
			if err != nil {
				return nil, err
			}
			pure = append(pure, &srcRef{col: col, name: cr.Name, item: item})
		} else {
			pure = append(pure, nil)
		}
	}

	d := srcDist
	if d.Kind == core.DistHash {
		class := algebra.NewColSet()
		for i := range out {
			p := pure[i]
			if p == nil {
				continue
			}
			inClass := p.col.ID >= 0 && srcDist.Cols.Has(p.col.ID)
			if !inClass && hashName != "" && strings.EqualFold(p.name, hashName) {
				inClass = true
			}
			if inClass {
				class.Add(out[i].ID)
			}
		}
		d = absDist{Kind: core.DistHash, Cols: class}
	}
	return &absRel{cols: out, dist: d}, nil
}

// itemID determines the identity of a select item: the generator's c<id>
// alias wins (union rename projections re-alias pass-through references);
// an unaliased pure column reference keeps its source identity.
func (si *sqlInterp) itemID(it sqlparser.SelectItem, sc *scope) (algebra.ColumnID, error) {
	if id, ok := parseColName(it.Alias); ok {
		return id, nil
	}
	if cr, ok := it.Expr.(*sqlparser.ColRef); ok {
		col, _, err := sc.resolve(cr.Table, cr.Name)
		if err != nil {
			return 0, err
		}
		if col.ID >= 0 {
			return col.ID, nil
		}
	}
	return 0, fmt.Errorf("cannot determine column identity of select item %q", sqlparser.FormatExpr(it.Expr))
}

func (si *sqlInterp) aggCol(f *sqlparser.FuncExpr, sc *scope, keyed bool) (absCol, error) {
	org := map[string]struct{}{}
	var arg sqlparser.Expr
	if !f.Star {
		if len(f.Args) != 1 {
			return absCol{}, fmt.Errorf("aggregate %s with %d arguments", f.Name, len(f.Args))
		}
		arg = f.Args[0]
		if _, err := si.exprType(arg, sc); err != nil {
			return absCol{}, err
		}
		si.exprOrigins(arg, sc, org)
	}
	switch f.Name {
	case "COUNT":
		return absCol{Type: types.KindInt, Nullable: false, Origins: org}, nil
	case "SUM", "MIN", "MAX":
		if arg == nil {
			return absCol{}, fmt.Errorf("aggregate %s requires an argument", f.Name)
		}
		t, err := si.exprType(arg, sc)
		if err != nil {
			return absCol{}, err
		}
		nullable := true
		if keyed {
			nullable, err = si.exprNullable(arg, sc)
			if err != nil {
				return absCol{}, err
			}
		}
		return absCol{Type: t, Nullable: nullable, Origins: org}, nil
	}
	return absCol{}, fmt.Errorf("unsupported aggregate %s in generated SQL", f.Name)
}

// applyWhere processes filter conjuncts: EXISTS bodies recurse as semi- or
// anti-join conditions, value-bearing conjuncts canonicalize into the
// predicate multiset, and comparisons prove their dependencies non-NULL.
func (si *sqlInterp) applyWhere(where sqlparser.Expr, sc *scope, doKills bool) error {
	for _, c := range splitAnd(where) {
		switch x := c.(type) {
		case *sqlparser.ExistsExpr:
			if err := si.existsBody(x.Select, sc, doKills && !x.Negated); err != nil {
				return err
			}
			continue
		case *sqlparser.NotExpr:
			if ex, ok := x.E.(*sqlparser.ExistsExpr); ok {
				if err := si.existsBody(ex.Select, sc, false); err != nil {
					return err
				}
				continue
			}
		}
		if si.valueBearing(c) {
			canon, err := si.canonExpr(c, sc)
			if err != nil {
				return err
			}
			si.acc.addPred(canon)
		}
		if doKills {
			deps, err := si.killConjExpr(c, sc)
			if err != nil {
				return err
			}
			for _, d := range deps {
				d.Nullable = false
			}
		}
	}
	return nil
}

func (si *sqlInterp) existsBody(sub *sqlparser.SelectStmt, outer *scope, kills bool) error {
	_, err := si.selectRel(sub, outer, true, kills)
	return err
}

func splitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparser.BinExpr); ok && b.Op == sqlparser.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sqlparser.Expr{e}
}

func exprChildren(e sqlparser.Expr) []sqlparser.Expr {
	switch x := e.(type) {
	case *sqlparser.BinExpr:
		return []sqlparser.Expr{x.L, x.R}
	case *sqlparser.NotExpr:
		return []sqlparser.Expr{x.E}
	case *sqlparser.NegExpr:
		return []sqlparser.Expr{x.E}
	case *sqlparser.IsNullExpr:
		return []sqlparser.Expr{x.E}
	case *sqlparser.LikeExpr:
		return []sqlparser.Expr{x.E, x.Pattern}
	case *sqlparser.InExpr:
		return append([]sqlparser.Expr{x.E}, x.List...)
	case *sqlparser.FuncExpr:
		return x.Args
	case *sqlparser.CaseExpr:
		var out []sqlparser.Expr
		for _, w := range x.Whens {
			out = append(out, w.Cond, w.Then)
		}
		if x.Else != nil {
			out = append(out, x.Else)
		}
		return out
	case *sqlparser.CastExpr:
		return []sqlparser.Expr{x.E}
	case *sqlparser.BetweenExpr:
		return []sqlparser.Expr{x.E, x.Lo, x.Hi}
	}
	return nil
}

// valueBearing reports whether the expression references any column or
// parameter slot; mirrors scalarValueBearing on the plan side.
func (si *sqlInterp) valueBearing(e sqlparser.Expr) bool {
	switch e.(type) {
	case nil:
		return false
	case *sqlparser.ColRef, *sqlparser.ParamExpr:
		return true
	case *sqlparser.SubqueryExpr, *sqlparser.ExistsExpr:
		return true
	}
	for _, c := range exprChildren(e) {
		if si.valueBearing(c) {
			return true
		}
	}
	return false
}

// exprType mirrors the plan side's typeOfScalar over re-parsed text.
func (si *sqlInterp) exprType(e sqlparser.Expr, sc *scope) (types.Kind, error) {
	switch x := e.(type) {
	case *sqlparser.ColRef:
		col, _, err := sc.resolve(x.Table, x.Name)
		if err != nil {
			return types.KindNull, err
		}
		return col.Type, nil
	case *sqlparser.Lit:
		return x.Value.Kind(), nil
	case *sqlparser.ParamExpr:
		return si.slotKinds[x.Slot], nil
	case *sqlparser.BinExpr:
		if x.Op.IsComparison() || x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
			if _, err := si.exprType(x.L, sc); err != nil {
				return types.KindNull, err
			}
			if _, err := si.exprType(x.R, sc); err != nil {
				return types.KindNull, err
			}
			return types.KindBool, nil
		}
		lt, err := si.exprType(x.L, sc)
		if err != nil {
			return types.KindNull, err
		}
		rt, err := si.exprType(x.R, sc)
		if err != nil {
			return types.KindNull, err
		}
		if x.Op == sqlparser.OpDiv {
			return types.KindFloat, nil
		}
		if lt == types.KindFloat || rt == types.KindFloat {
			return types.KindFloat, nil
		}
		if lt == types.KindNull {
			return rt, nil
		}
		return lt, nil
	case *sqlparser.NotExpr, *sqlparser.IsNullExpr, *sqlparser.LikeExpr, *sqlparser.InExpr:
		for _, c := range exprChildren(e) {
			if _, err := si.exprType(c, sc); err != nil {
				return types.KindNull, err
			}
		}
		return types.KindBool, nil
	case *sqlparser.NegExpr:
		return si.exprType(x.E, sc)
	case *sqlparser.FuncExpr:
		if x.IsAggregate() {
			if x.Name == "COUNT" {
				return types.KindInt, nil
			}
			if len(x.Args) == 1 {
				return si.exprType(x.Args[0], sc)
			}
			return types.KindNull, fmt.Errorf("malformed aggregate %s", x.Name)
		}
		for _, a := range x.Args {
			if _, err := si.exprType(a, sc); err != nil {
				return types.KindNull, err
			}
		}
		switch x.Name {
		case "DATEADD":
			return types.KindDate, nil
		case "YEAR":
			return types.KindInt, nil
		case "SUBSTRING":
			return types.KindString, nil
		}
		return types.KindNull, fmt.Errorf("unsupported function %s in generated SQL", x.Name)
	case *sqlparser.CaseExpr:
		for _, w := range x.Whens {
			if _, err := si.exprType(w.Cond, sc); err != nil {
				return types.KindNull, err
			}
			t, err := si.exprType(w.Then, sc)
			if err != nil {
				return types.KindNull, err
			}
			if t != types.KindNull {
				return t, nil
			}
		}
		if x.Else != nil {
			return si.exprType(x.Else, sc)
		}
		return types.KindNull, nil
	case *sqlparser.CastExpr:
		if _, err := si.exprType(x.E, sc); err != nil {
			return types.KindNull, err
		}
		return x.To, nil
	}
	return types.KindNull, fmt.Errorf("unsupported expression %T in generated SQL", e)
}

// exprNullable mirrors the plan side's nullableScalar.
func (si *sqlInterp) exprNullable(e sqlparser.Expr, sc *scope) (bool, error) {
	switch x := e.(type) {
	case *sqlparser.ColRef:
		col, _, err := sc.resolve(x.Table, x.Name)
		if err != nil {
			return true, err
		}
		return col.Nullable, nil
	case *sqlparser.Lit:
		return x.Value.IsNull(), nil
	case *sqlparser.ParamExpr:
		return false, nil
	case *sqlparser.BinExpr:
		ln, err := si.exprNullable(x.L, sc)
		if err != nil {
			return true, err
		}
		rn, err := si.exprNullable(x.R, sc)
		if err != nil {
			return true, err
		}
		return ln || rn, nil
	case *sqlparser.NotExpr:
		return si.exprNullable(x.E, sc)
	case *sqlparser.NegExpr:
		return si.exprNullable(x.E, sc)
	case *sqlparser.IsNullExpr:
		return false, nil
	case *sqlparser.LikeExpr:
		return si.exprNullable(x.E, sc)
	case *sqlparser.InExpr:
		n, err := si.exprNullable(x.E, sc)
		if err != nil {
			return true, err
		}
		for _, el := range x.List {
			en, err := si.exprNullable(el, sc)
			if err != nil {
				return true, err
			}
			n = n || en
		}
		return n, nil
	case *sqlparser.FuncExpr:
		for _, a := range x.Args {
			n, err := si.exprNullable(a, sc)
			if err != nil {
				return true, err
			}
			if n {
				return true, nil
			}
		}
		return false, nil
	case *sqlparser.CaseExpr:
		for _, w := range x.Whens {
			n, err := si.exprNullable(w.Then, sc)
			if err != nil {
				return true, err
			}
			if n {
				return true, nil
			}
		}
		if x.Else == nil {
			return true, nil
		}
		return si.exprNullable(x.Else, sc)
	case *sqlparser.CastExpr:
		return si.exprNullable(x.E, sc)
	}
	return true, nil
}

// exprOrigins accumulates base-column origins of every resolvable column
// reference in the expression.
func (si *sqlInterp) exprOrigins(e sqlparser.Expr, sc *scope, into map[string]struct{}) {
	if cr, ok := e.(*sqlparser.ColRef); ok {
		if col, _, err := sc.resolve(cr.Table, cr.Name); err == nil {
			for k := range col.Origins {
				into[k] = struct{}{}
			}
		}
		return
	}
	for _, c := range exprChildren(e) {
		si.exprOrigins(c, sc, into)
	}
}

// killDepsExpr mirrors the plan side's nullDeps: the resolved columns whose
// NULL forces the value expression to NULL.
func (si *sqlInterp) killDepsExpr(e sqlparser.Expr, sc *scope) ([]*absCol, error) {
	switch x := e.(type) {
	case *sqlparser.ColRef:
		col, _, err := sc.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return []*absCol{col}, nil
	case *sqlparser.BinExpr:
		if x.Op.IsComparison() || x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
			return nil, nil
		}
		l, err := si.killDepsExpr(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := si.killDepsExpr(x.R, sc)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case *sqlparser.NegExpr:
		return si.killDepsExpr(x.E, sc)
	case *sqlparser.CastExpr:
		return si.killDepsExpr(x.E, sc)
	case *sqlparser.FuncExpr:
		var out []*absCol
		for _, a := range x.Args {
			d, err := si.killDepsExpr(a, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, d...)
		}
		return out, nil
	}
	return nil, nil
}

// killConjExpr mirrors the plan side's killSet for one filter conjunct.
func (si *sqlInterp) killConjExpr(conj sqlparser.Expr, sc *scope) ([]*absCol, error) {
	switch x := conj.(type) {
	case *sqlparser.BinExpr:
		if x.Op.IsComparison() {
			l, err := si.killDepsExpr(x.L, sc)
			if err != nil {
				return nil, err
			}
			r, err := si.killDepsExpr(x.R, sc)
			if err != nil {
				return nil, err
			}
			return append(l, r...), nil
		}
	case *sqlparser.LikeExpr:
		return si.killDepsExpr(x.E, sc)
	case *sqlparser.InExpr:
		if x.Select == nil {
			return si.killDepsExpr(x.E, sc)
		}
	case *sqlparser.IsNullExpr:
		if x.Negated {
			return si.killDepsExpr(x.E, sc)
		}
	}
	return nil, nil
}

// canonExpr renders a re-parsed expression into the shared canonical form:
// resolved column references collapse to c<id>, so both sides compare on
// column identity rather than alias spelling.
func (si *sqlInterp) canonExpr(e sqlparser.Expr, sc *scope) (string, error) {
	switch x := e.(type) {
	case *sqlparser.ColRef:
		col, _, err := sc.resolve(x.Table, x.Name)
		if err != nil {
			return "", err
		}
		if col.ID < 0 {
			return "", fmt.Errorf("predicate over base column %q outside a scan layer", x.Name)
		}
		return fmt.Sprintf("c%d", col.ID), nil
	case *sqlparser.Lit:
		return x.Value.SQLLiteral(), nil
	case *sqlparser.ParamExpr:
		return fmt.Sprintf("?%d", x.Slot), nil
	case *sqlparser.BinExpr:
		l, err := si.canonExpr(x.L, sc)
		if err != nil {
			return "", err
		}
		r, err := si.canonExpr(x.R, sc)
		if err != nil {
			return "", err
		}
		return canonBinary(x.Op, l, r), nil
	case *sqlparser.NotExpr:
		inner, err := si.canonExpr(x.E, sc)
		if err != nil {
			return "", err
		}
		return "NOT (" + inner + ")", nil
	case *sqlparser.NegExpr:
		inner, err := si.canonExpr(x.E, sc)
		if err != nil {
			return "", err
		}
		return "(-" + inner + ")", nil
	case *sqlparser.IsNullExpr:
		inner, err := si.canonExpr(x.E, sc)
		if err != nil {
			return "", err
		}
		if x.Negated {
			return inner + " IS NOT NULL", nil
		}
		return inner + " IS NULL", nil
	case *sqlparser.LikeExpr:
		inner, err := si.canonExpr(x.E, sc)
		if err != nil {
			return "", err
		}
		pat, err := si.canonExpr(x.Pattern, sc)
		if err != nil {
			return "", err
		}
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return inner + " " + n + "LIKE " + pat, nil
	case *sqlparser.InExpr:
		if x.Select != nil {
			return "", fmt.Errorf("IN subquery in generated SQL")
		}
		inner, err := si.canonExpr(x.E, sc)
		if err != nil {
			return "", err
		}
		parts := make([]string, len(x.List))
		for i, el := range x.List {
			if parts[i], err = si.canonExpr(el, sc); err != nil {
				return "", err
			}
		}
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return inner + " " + n + "IN (" + strings.Join(parts, ", ") + ")", nil
	case *sqlparser.FuncExpr:
		if x.IsAggregate() {
			return "", fmt.Errorf("aggregate %s inside a predicate", x.Name)
		}
		parts := make([]string, len(x.Args))
		var err error
		for i, a := range x.Args {
			if parts[i], err = si.canonExpr(a, sc); err != nil {
				return "", err
			}
		}
		return x.Name + "(" + strings.Join(parts, ", ") + ")", nil
	case *sqlparser.CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range x.Whens {
			cond, err := si.canonExpr(w.Cond, sc)
			if err != nil {
				return "", err
			}
			then, err := si.canonExpr(w.Then, sc)
			if err != nil {
				return "", err
			}
			b.WriteString(" WHEN " + cond + " THEN " + then)
		}
		if x.Else != nil {
			els, err := si.canonExpr(x.Else, sc)
			if err != nil {
				return "", err
			}
			b.WriteString(" ELSE " + els)
		}
		b.WriteString(" END")
		return b.String(), nil
	case *sqlparser.CastExpr:
		inner, err := si.canonExpr(x.E, sc)
		if err != nil {
			return "", err
		}
		return "CAST(" + inner + " AS " + sqlTypeName(x.To) + ")", nil
	}
	return "", fmt.Errorf("unsupported predicate expression %T", e)
}

// outName is one output column of the Return step's rename layer.
type outName struct {
	id   algebra.ColumnID
	name string
}

// returnRel interprets the Return step's wrapper: a pure rename layer over
// one derived table, selecting plan output columns under display names.
func (si *sqlInterp) returnRel(sel *sqlparser.SelectStmt) (*absRel, []outName, error) {
	if sel.Union != nil || sel.Where != nil || len(sel.GroupBy) > 0 || sel.Having != nil {
		return nil, nil, fmt.Errorf("return step is not a plain rename layer")
	}
	if len(sel.From) != 1 {
		return nil, nil, fmt.Errorf("return step must select from exactly one derived table")
	}
	dt, ok := sel.From[0].(*sqlparser.DerivedTable)
	if !ok {
		return nil, nil, fmt.Errorf("return step must select from a derived table")
	}
	inner, err := si.selectRel(dt.Select, nil, false, false)
	if err != nil {
		return nil, nil, err
	}
	cols := cloneCols(inner.cols)
	sc := &scope{items: []scopeItem{{alias: dt.Alias, cols: cols, names: colAliasNames(cols)}}}
	outs := make([]outName, 0, len(sel.Items))
	for _, it := range sel.Items {
		cr, ok := it.Expr.(*sqlparser.ColRef)
		if !ok {
			return nil, nil, fmt.Errorf("return item %q is not a column reference", sqlparser.FormatExpr(it.Expr))
		}
		col, _, err := sc.resolve(cr.Table, cr.Name)
		if err != nil {
			return nil, nil, err
		}
		name := it.Alias
		if name == "" {
			name = cr.Name
		}
		outs = append(outs, outName{id: col.ID, name: name})
	}
	return inner, outs, nil
}

package a

import (
	"errors"

	"pdwqo/internal/trace"
)

var errBoom = errors.New("boom")

func good(tr *trace.Tracer) {
	sp := tr.Begin("x")
	sp.End()
}

func goodDefer(tr *trace.Tracer) {
	sp := tr.Begin("x")
	defer sp.End()
	sp.Int("k", 1)
}

func goodUnder(tr *trace.Tracer) {
	parent := tr.Begin("p")
	child := tr.BeginUnder(parent.ID(), "c")
	child.End()
	parent.End()
}

func leak(tr *trace.Tracer) {
	sp := tr.Begin("x") // want `begun but never ended before function end`
	sp.Int("k", 1)
}

func returnLeak(tr *trace.Tracer, fail bool) error {
	sp := tr.Begin("x") // want `may leak: return at .* precedes every End`
	if fail {
		return errBoom
	}
	sp.End()
	return nil
}

func reassignLeak(tr *trace.Tracer) {
	sp := tr.Begin("a") // want `never ended before reassignment`
	sp = tr.Begin("b")
	sp.End()
}

func goodReassign(tr *trace.Tracer) {
	sp := tr.Begin("a")
	sp.End()
	sp = tr.Begin("b")
	sp.End()
}

func goodEscape(tr *trace.Tracer) {
	sp := tr.Begin("x")
	finish(sp)
}

func finish(sp trace.Active) {
	sp.End()
}

func goodLexical(tr *trace.Tracer, fail bool) error {
	sp := tr.Begin("x")
	if fail {
		sp.End()
		return errBoom
	}
	sp.End()
	return nil
}

// allowed keeps its span open on purpose; the tracer owns it.
//
//pdwlint:allow spanclose
func allowed(tr *trace.Tracer) {
	sp := tr.Begin("x")
	sp.Int("k", 1)
}

package main

import (
	"fmt"
	"time"

	"pdwqo"
	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/exec"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/tpch"
	"pdwqo/internal/types"
	"pdwqo/internal/vec"
)

// --- E20: vectorized execution — node-local operator throughput ---
//
// e20 benchmarks the node-local executor in isolation: the same algebra
// trees run through exec.Run (row-at-a-time, the -row-exec ablation arm)
// and exec.RunVec (columnar batches with selection vectors), over the
// same TPC-H data. No optimizer, no DMS — this is purely the per-node
// operator loop the vectorized rewrite targets. Each workload feeds the
// measured operator into a tiny aggregate sink, the way DSQL step plans
// consume operators in practice: the sink keeps the result-relation
// boxing boundary (identical work in both engines) out of the timed
// region while still forcing every operator output row to be produced
// and folded, so the sink values double as a correctness check. The
// metamorphic suite in internal/difftest certifies the two engines
// return identical relations on full result sets; this experiment
// reports what the batch form buys per operator class and the
// geometric-mean speedup the rewrite is gated on (≥5x).

// e20Workload is one operator-class microbenchmark: a tree over TPC-H
// base tables plus the input cardinality its throughput is normalized by.
type e20Workload struct {
	name  string
	tree  *algebra.Tree
	input int
}

func e20(db *pdwqo.DB) {
	header("E20", "vectorized execution — node-local operator throughput vs the row engine")
	data := tpch.Generate(*sf, *seed)
	workloads := e20Workloads(data)

	rowSrc := func(name string) ([]types.Row, []string, error) {
		t := tpchTable(name)
		names := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			names[i] = c.Name
		}
		return data[name], names, nil
	}
	// Columnarize once up front, exactly as storage caches its column
	// mirror across scans of an unchanged table.
	mirrors := map[string]*vec.Table{}
	colSrc := func(name string) (*vec.Table, error) {
		if m, ok := mirrors[name]; ok {
			return m, nil
		}
		t := tpchTable(name)
		names := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			names[i] = c.Name
		}
		m := vec.FromRows(names, data[name])
		mirrors[name] = m
		return m, nil
	}
	for _, w := range workloads {
		if _, err := colSrc("lineitem"); err != nil {
			fatal(err)
		}
		_ = w
	}

	const reps = 5
	fmt.Printf("%-10s %9s %9s %12s %12s %14s %8s\n",
		"operator", "input", "output", "row engine", "vectorized", "rows/s (vec)", "speedup")
	var speedups []float64
	for _, w := range workloads {
		var rowRel, vecRel *exec.Relation
		tRow := bestOf(reps, func() {
			rel, err := exec.Run(w.tree, rowSrc)
			if err != nil {
				fatal(fmt.Errorf("e20 %s (row): %w", w.name, err))
			}
			rowRel = rel
		})
		tVec := bestOf(reps, func() {
			rel, err := exec.RunVec(w.tree, colSrc)
			if err != nil {
				fatal(fmt.Errorf("e20 %s (vec): %w", w.name, err))
			}
			vecRel = rel
		})
		if err := sameRelation(rowRel, vecRel); err != nil {
			fatal(fmt.Errorf("e20 %s: engines diverged: %w", w.name, err))
		}
		sp := ratio(float64(tRow), float64(tVec))
		speedups = append(speedups, sp)
		fmt.Printf("%-10s %9d %9d %12v %12v %14.3g %7.2fx\n",
			w.name, w.input, len(vecRel.Rows),
			tRow.Round(time.Microsecond), tVec.Round(time.Microsecond),
			float64(w.input)/tVec.Seconds(), sp)
	}
	gm := geoMean(speedups)
	verdict := "PASS"
	if gm < 5 {
		verdict = "FAIL"
	}
	fmt.Printf("E20 RESULT: geomean speedup %.2fx across %d operator classes (bar: >=5x): %s\n",
		gm, len(speedups), verdict)
	fmt.Println("(same trees, same data, byte-identical outputs; certified by internal/difftest TestVecMatchesRow*)")
	fmt.Println()
}

// e20Workloads builds one tree per operator class over the generated
// data, with column pruning as the planner would apply it.
func e20Workloads(data tpch.Data) []e20Workload {
	nLine := len(data["lineitem"])
	nOrd := len(data["orders"])

	// lineitem columns, pruned and bound with stable IDs.
	lqty := algebra.ColumnMeta{ID: 1, Name: "l_quantity", Type: types.KindFloat}
	lprice := algebra.ColumnMeta{ID: 2, Name: "l_extendedprice", Type: types.KindFloat}
	ldisc := algebra.ColumnMeta{ID: 3, Name: "l_discount", Type: types.KindFloat}
	lflag := algebra.ColumnMeta{ID: 4, Name: "l_returnflag", Type: types.KindString}
	lstat := algebra.ColumnMeta{ID: 5, Name: "l_linestatus", Type: types.KindString}
	lokey := algebra.ColumnMeta{ID: 6, Name: "l_orderkey", Type: types.KindInt}
	okey := algebra.ColumnMeta{ID: 7, Name: "o_orderkey", Type: types.KindInt}
	ototal := algebra.ColumnMeta{ID: 8, Name: "o_totalprice", Type: types.KindFloat}

	scanLine := func(cols ...algebra.ColumnMeta) *algebra.Tree {
		return algebra.NewTree(&algebra.Get{Table: tpchTable("lineitem"), Alias: "l", Cols: cols})
	}
	scanOrd := func(cols ...algebra.ColumnMeta) *algebra.Tree {
		return algebra.NewTree(&algebra.Get{Table: tpchTable("orders"), Alias: "o", Cols: cols})
	}
	lit := func(v types.Value) *algebra.Const { return &algebra.Const{Val: v} }
	bin := func(op sqlparser.BinOp, l, r algebra.Scalar) *algebra.Binary {
		return &algebra.Binary{Op: op, L: l, R: r}
	}

	// sumSink folds an operator's full output into SUM(col) + COUNT(*):
	// every output row is produced and folded, so the measured operator's
	// values (not just its cardinality) are checked, while the identical
	// result-boxing boundary stays out of the timed region.
	sumSink := func(in *algebra.Tree, col algebra.ColumnMeta) *algebra.Tree {
		return algebra.NewTree(&algebra.GroupBy{
			Aggs: []algebra.AggDef{
				{Func: algebra.AggSum, Arg: algebra.NewColRef(col), ID: 31, Name: "s"},
				{Func: algebra.AggCount, ID: 32, Name: "n"},
			},
			Phase: algebra.AggComplete,
		}, in)
	}

	// filter: typed float comparisons folded with AND — the selection
	// vector's home turf (Q6's predicate shape).
	filter := sumSink(algebra.NewTree(&algebra.Select{Filter: bin(sqlparser.OpAnd,
		bin(sqlparser.OpLt, algebra.NewColRef(lqty), lit(types.NewFloat(25))),
		bin(sqlparser.OpGt, algebra.NewColRef(ldisc), lit(types.NewFloat(0.02))),
	)}, scanLine(lqty, ldisc)), lqty)

	// project: the revenue expression — typed arithmetic kernels.
	revenue := algebra.ColumnMeta{ID: 20, Name: "revenue", Type: types.KindFloat}
	project := sumSink(algebra.NewTree(&algebra.Project{Defs: []algebra.ProjDef{{
		Expr: bin(sqlparser.OpMul, algebra.NewColRef(lprice),
			bin(sqlparser.OpSub, lit(types.NewFloat(1)), algebra.NewColRef(ldisc))),
		ID: revenue.ID, Name: revenue.Name,
	}}}, scanLine(lprice, ldisc)), revenue)

	// hashjoin: build once over orders, probe lineitem batches; the sink
	// folds a build-side column carried through every emitted pair.
	join := sumSink(algebra.NewTree(
		&algebra.Join{Kind: algebra.JoinInner, On: bin(sqlparser.OpEq,
			algebra.NewColRef(okey), algebra.NewColRef(lokey))},
		scanOrd(okey, ototal),
		scanLine(lokey, lprice),
	), ototal)

	// agg: Q1's shape — grouped aggregation over the fact table.
	agg := algebra.NewTree(&algebra.GroupBy{
		Keys: []algebra.ColumnID{lflag.ID, lstat.ID},
		Aggs: []algebra.AggDef{
			{Func: algebra.AggSum, Arg: algebra.NewColRef(lqty), ID: 21, Name: "sum_qty"},
			{Func: algebra.AggSum, Arg: algebra.NewColRef(lprice), ID: 22, Name: "sum_price"},
			{Func: algebra.AggCount, ID: 23, Name: "n"},
		},
		Phase: algebra.AggComplete,
	}, scanLine(lflag, lstat, lqty, lprice))

	return []e20Workload{
		{"filter", filter, nLine},
		{"project", project, nLine},
		{"hashjoin", join, nOrd + nLine},
		{"agg", agg, nLine},
	}
}

// sameRelation checks the two engines produced identical results, value
// by value in row order.
func sameRelation(row, vect *exec.Relation) error {
	if len(row.Rows) != len(vect.Rows) {
		return fmt.Errorf("row engine returned %d rows, vectorized %d", len(row.Rows), len(vect.Rows))
	}
	for i := range row.Rows {
		if len(row.Rows[i]) != len(vect.Rows[i]) {
			return fmt.Errorf("row %d: width %d vs %d", i, len(row.Rows[i]), len(vect.Rows[i]))
		}
		for c := range row.Rows[i] {
			if row.Rows[i][c].String() != vect.Rows[i][c].String() {
				return fmt.Errorf("row %d col %d: %s vs %s", i, c,
					row.Rows[i][c].String(), vect.Rows[i][c].String())
			}
		}
	}
	return nil
}

// tpchTable resolves a shell table definition by name.
func tpchTable(name string) *catalog.Table {
	for _, t := range tpch.Tables() {
		if t.Name == name {
			return t
		}
	}
	fatal(fmt.Errorf("e20: unknown TPC-H table %q", name))
	return nil
}

// bestOf runs fn reps times and returns the fastest wall clock.
func bestOf(reps int, fn func()) time.Duration {
	best := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

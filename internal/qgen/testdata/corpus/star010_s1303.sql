SELECT COUNT(*) AS cnt
FROM st00, st01, st02, st03, st04, st05, st06, st07, st08, st09
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k0 = f4
  AND k0 = f5
  AND k0 = f6
  AND k0 = f7
  AND k0 = f8
  AND k0 = f9
  AND v3 <= 403
  AND v4 <= 194
  AND v9 <= 319

// Package planverify statically verifies optimized distributed plans
// without executing them. It is an independent re-derivation of the
// invariants the PDW optimizer (internal/core) and the DSQL generator
// (internal/dsql) are supposed to establish — deliberately *not* a call
// back into their code paths — so a corrupted enumeration, a broken
// enforcer or a bad DSQL cut surfaces as a typed Violation at compile
// time instead of as wrong rows much later in difftest.
//
// Three layers are checked:
//
//   - Distribution-property soundness over the winning plan tree
//     (CheckPlan): every join's child placements must be compatible
//     after the chosen enforcers (hash-hash joins collocated on an
//     equijoin conjunct, replicated sides only where the join kind
//     tolerates them), every complete/finalizing group-by must be placed
//     so all rows of a group live on one node, every partial/final
//     aggregation split must pair correctly across its data movement,
//     and every data movement must produce the placement its kind
//     promises.
//
//   - Dataflow soundness over the DSQL step sequence (CheckDSQL):
//     exactly one Return step and it comes last, every temp table is
//     defined by an earlier step than any use, no orphan temp tables,
//     move source/destination placement is consistent with the move
//     kind and the catalog, and the step list's move multiset matches
//     the plan tree's.
//
//   - MEMO-side invariants (CheckMemo / CheckInteresting): winner
//     extraction references live group expressions, estimates are
//     non-negative, the group graph reachable from the root is acyclic,
//     and the interesting-column derivation is closed under equijoin
//     transitivity, group-by keys and parent demand.
//
// Check bundles all layers over one query's artifacts and returns a
// *Report whose Err is a typed *Error carrying every Violation.
package planverify

import (
	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/dsql"
	"pdwqo/internal/memoxml"
)

// Artifacts is one optimized query's set of verifiable outputs. Any nil
// field skips that layer; Interesting additionally requires Memo.
type Artifacts struct {
	// Plan is the PDW optimizer's winning distributed plan.
	Plan *core.Plan
	// DSQL is the generated step sequence cut from Plan.
	DSQL *dsql.Plan
	// Memo is the decoded serial search space the plan was derived from.
	Memo *memoxml.Decoded
	// Shell resolves base-table references in DSQL text; nil skips the
	// catalog consistency checks.
	Shell *catalog.Shell
	// Interesting exposes the optimizer's interesting-column derivation
	// per group (core.Optimizer.Interesting). Only meaningful for
	// ModeFull runs: the serial-baseline mode derives from the winner
	// slice of the memo, which this check cannot observe.
	Interesting func(group int) []algebra.ColumnID
}

// Check runs every applicable layer and collects the violations.
func Check(a Artifacts) *Report {
	r := &Report{}
	if a.Plan != nil {
		r.add(CheckPlan(a.Plan)...)
	}
	if a.DSQL != nil {
		r.add(CheckDSQL(a.DSQL, a.Plan, a.Shell)...)
	}
	if a.Memo != nil {
		r.add(CheckMemo(a.Memo)...)
		if a.Interesting != nil {
			r.add(CheckInteresting(a.Memo, a.Interesting)...)
		}
	}
	return r
}

// Fault injection for the simulated appliance. A FaultPlan is a small,
// deterministic chaos schedule: rules addressed per step / node /
// move-kind / operation that make node tasks fail (once or N times), run
// slow, or corrupt a DMS delivery. The engine consults the plan at every
// node-level operation (per-node query, temp-table create, DMS delivery,
// table load), so the retry layer and the difftest chaos mode can
// perturb exactly the paths the paper treats as restartable units.
package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"pdwqo/internal/cost"
)

// FaultKind is what an injected fault does.
type FaultKind uint8

// Fault kinds.
const (
	// FaultFail makes the matched operation return an injected error.
	FaultFail FaultKind = iota
	// FaultSlow delays the matched operation by Fault.Delay (the delay
	// respects context cancellation, so a step timeout still fires).
	FaultSlow
	// FaultCorrupt garbles a DMS delivery's staged rows and reports a
	// verification failure; at non-delivery sites it behaves like
	// FaultFail. The corrupted rows are staged, never published.
	FaultCorrupt
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultFail:
		return "fail"
	case FaultSlow:
		return "slow"
	case FaultCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// FaultOp is the engine operation a fault rule attaches to.
type FaultOp uint8

// Injection sites.
const (
	// OpAny matches every site.
	OpAny FaultOp = iota
	// OpQuery is the per-node execution of a step's SQL.
	OpQuery
	// OpCreate is the per-node creation of a destination temp table.
	OpCreate
	// OpDeliver is the per-node DMS delivery of routed rows.
	OpDeliver
	// OpLoad is the per-node initial table load (Appliance.LoadTable).
	OpLoad
)

// String names the site.
func (o FaultOp) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpQuery:
		return "query"
	case OpCreate:
		return "create"
	case OpDeliver:
		return "deliver"
	case OpLoad:
		return "load"
	default:
		return fmt.Sprintf("FaultOp(%d)", uint8(o))
	}
}

// Any is the wildcard for Fault.Step, Fault.Node and Fault.Move. (It is
// far outside the valid ranges: node IDs start at -1 for the control
// node, step IDs at 0, and move kinds at 0.)
const Any = -(1 << 30)

// Fault is one injection rule. Zero values of Step/Node/Move address step
// 0 / node 0 / SHUFFLE; use Any for wildcards.
type Fault struct {
	Kind FaultKind
	// Op restricts the rule to one operation site; OpAny matches all.
	Op FaultOp
	// Step matches the DSQL step ID (loads run outside any step and only
	// match Any).
	Step int
	// Node matches the node ID (-1 is the control node).
	Node int
	// Move matches int(cost.MoveKind); non-move sites only match Any.
	Move int
	// Times is how often the rule fires before it is spent; <= 0 means
	// once.
	Times int
	// Delay is the added latency for FaultSlow rules.
	Delay time.Duration
}

// String renders the rule in ParseFaultSpec syntax.
func (f Fault) String() string {
	parts := []string{f.Kind.String()}
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if f.Op != OpAny {
		add("op", f.Op.String())
	}
	if f.Step != Any {
		add("step", strconv.Itoa(f.Step))
	}
	if f.Node != Any {
		add("node", strconv.Itoa(f.Node))
	}
	if f.Move != Any {
		add("move", cost.MoveKind(f.Move).String())
	}
	if f.Times > 1 {
		add("times", strconv.Itoa(f.Times))
	}
	if f.Delay > 0 {
		add("delay", f.Delay.String())
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return parts[0] + ":" + strings.Join(parts[1:], ",")
}

// FaultPlan is a concurrency-safe set of fault rules with per-rule firing
// budgets. The same plan value can be consulted from every worker
// goroutine of a step's fan-out.
type FaultPlan struct {
	mu    sync.Mutex
	rules []*faultState
	fired int64
}

type faultState struct {
	Fault
	left int
}

// NewFaultPlan builds a plan from rules. Rules fire in declaration order:
// the first matching rule with budget left claims the site.
func NewFaultPlan(faults ...Fault) *FaultPlan {
	p := &FaultPlan{}
	for _, f := range faults {
		times := f.Times
		if times <= 0 {
			times = 1
		}
		p.rules = append(p.rules, &faultState{Fault: f, left: times})
	}
	return p
}

// Rules returns a copy of the plan's rules (without remaining budgets).
func (p *FaultPlan) Rules() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Fault, len(p.rules))
	for i, r := range p.rules {
		out[i] = r.Fault
	}
	return out
}

// Fired returns how many faults the plan has injected so far.
func (p *FaultPlan) Fired() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Reset restores every rule's firing budget, so one plan can perturb a
// sequence of runs identically.
func (p *FaultPlan) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fired = 0
	for _, r := range p.rules {
		times := r.Times
		if times <= 0 {
			times = 1
		}
		r.left = times
	}
}

// match claims the first applicable rule for the site, decrementing its
// budget under the lock. step is the DSQL step ID (Any for loads), move
// is int(cost.MoveKind) (Any for non-move sites).
func (p *FaultPlan) match(op FaultOp, step, node, move int) (Fault, bool) {
	if p == nil {
		return Fault{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.rules {
		if r.left <= 0 {
			continue
		}
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Step != Any && r.Step != step {
			continue
		}
		if r.Node != Any && r.Node != node {
			continue
		}
		if r.Move != Any && r.Move != move {
			continue
		}
		r.left--
		p.fired++
		return r.Fault, true
	}
	return Fault{}, false
}

// RandomFaultPlan draws a small chaos schedule deterministically from
// seed: 1–3 rules over the given step-ID and compute-node ranges, mixing
// fail / slow / corrupt kinds, wildcard and pinned addresses, and firing
// budgets of 1–3. Slow delays stay in the sub-millisecond range so
// seeded chaos sweeps don't dominate test wall clock.
func RandomFaultPlan(seed int64, steps, nodes int) *FaultPlan {
	r := rand.New(rand.NewSource(seed))
	if steps < 1 {
		steps = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	n := 1 + r.Intn(3)
	faults := make([]Fault, n)
	for i := range faults {
		f := Fault{Op: OpAny, Step: Any, Node: Any, Move: Any}
		switch r.Intn(4) {
		case 0, 1:
			f.Kind = FaultFail
		case 2:
			f.Kind = FaultSlow
			f.Delay = time.Duration(100+r.Intn(400)) * time.Microsecond
		default:
			f.Kind = FaultCorrupt
		}
		switch r.Intn(3) {
		case 0:
			f.Op = OpQuery
		case 1:
			f.Op = OpDeliver
		default:
			f.Op = OpAny
		}
		if r.Intn(2) == 0 {
			f.Step = r.Intn(steps)
		}
		if r.Intn(3) == 0 {
			f.Node = r.Intn(nodes)
		}
		f.Times = 1 + r.Intn(3)
		faults[i] = f
	}
	return NewFaultPlan(faults...)
}

// ParseFaultSpec parses the -fault flag syntax shared by pdwcli and
// pdwbench: semicolon-separated rules, each
//
//	kind[:key=value,...]
//
// with kind ∈ {fail, slow, corrupt} and keys op (query|create|deliver|
// load), step, node, move (shuffle|partition-move|control-node-move|
// broadcast|trim|replicated-broadcast|remote-copy), times, delay (a Go
// duration). Unaddressed fields are wildcards. The alternative form
//
//	seed=N[:steps=S,nodes=M]
//
// draws a RandomFaultPlan. Examples:
//
//	fail:step=1,node=2,times=3
//	slow:op=deliver,move=shuffle,delay=5ms;corrupt:step=0
//	seed=42
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if rest, ok := strings.CutPrefix(spec, "seed="); ok {
		return parseSeedSpec(rest)
	}
	var faults []Fault
	for _, rule := range strings.Split(spec, ";") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		f, err := parseFaultRule(rule)
		if err != nil {
			return nil, err
		}
		faults = append(faults, f)
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("engine: empty fault spec %q", spec)
	}
	return NewFaultPlan(faults...), nil
}

func parseSeedSpec(rest string) (*FaultPlan, error) {
	head, tail, _ := strings.Cut(rest, ":")
	seed, err := strconv.ParseInt(strings.TrimSpace(head), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("engine: fault seed %q: %w", head, err)
	}
	steps, nodes := 4, 8
	if tail != "" {
		for _, kv := range strings.Split(tail, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("engine: fault seed option %q: want key=value", kv)
			}
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return nil, fmt.Errorf("engine: fault seed option %q: %w", kv, err)
			}
			switch strings.TrimSpace(k) {
			case "steps":
				steps = n
			case "nodes":
				nodes = n
			default:
				return nil, fmt.Errorf("engine: unknown fault seed option %q", k)
			}
		}
	}
	return RandomFaultPlan(seed, steps, nodes), nil
}

func parseFaultRule(rule string) (Fault, error) {
	f := Fault{Op: OpAny, Step: Any, Node: Any, Move: Any}
	kind, opts, _ := strings.Cut(rule, ":")
	switch strings.TrimSpace(kind) {
	case "fail":
		f.Kind = FaultFail
	case "slow":
		f.Kind = FaultSlow
		f.Delay = time.Millisecond
	case "corrupt":
		f.Kind = FaultCorrupt
	default:
		return f, fmt.Errorf("engine: unknown fault kind %q (want fail, slow or corrupt)", kind)
	}
	if opts == "" {
		return f, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return f, fmt.Errorf("engine: fault option %q: want key=value", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "op":
			op, err := parseFaultOp(v)
			if err != nil {
				return f, err
			}
			f.Op = op
		case "step":
			n, err := strconv.Atoi(v)
			if err != nil {
				return f, fmt.Errorf("engine: fault step %q: %w", v, err)
			}
			f.Step = n
		case "node":
			n, err := strconv.Atoi(v)
			if err != nil {
				return f, fmt.Errorf("engine: fault node %q: %w", v, err)
			}
			f.Node = n
		case "move":
			m, err := parseMoveKind(v)
			if err != nil {
				return f, err
			}
			f.Move = int(m)
		case "times":
			n, err := strconv.Atoi(v)
			if err != nil {
				return f, fmt.Errorf("engine: fault times %q: %w", v, err)
			}
			f.Times = n
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return f, fmt.Errorf("engine: fault delay %q: %w", v, err)
			}
			f.Delay = d
		default:
			return f, fmt.Errorf("engine: unknown fault option %q", k)
		}
	}
	return f, nil
}

func parseFaultOp(s string) (FaultOp, error) {
	switch s {
	case "any":
		return OpAny, nil
	case "query":
		return OpQuery, nil
	case "create":
		return OpCreate, nil
	case "deliver":
		return OpDeliver, nil
	case "load":
		return OpLoad, nil
	}
	return OpAny, fmt.Errorf("engine: unknown fault op %q", s)
}

func parseMoveKind(s string) (cost.MoveKind, error) {
	for k := cost.Shuffle; k <= cost.RemoteCopySingle; k++ {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("engine: unknown move kind %q", s)
}

// injectFault consults the plan at one operation site and applies the
// matched rule. Slow rules delay (respecting cancellation — a step
// timeout still fires through a slow fault) and then let the operation
// proceed; fail rules return an injected StepError; corrupt rules return
// a corrupt-delivery StepError, which delivery sites handle specially
// (staging the garbled payload first) and other sites treat as a plain
// transient failure.
func (a *Appliance) injectFault(ctx context.Context, op FaultOp, step, node, move int) (Fault, *StepError) {
	f, ok := a.Faults.match(op, step, node, move)
	if !ok {
		return Fault{}, nil
	}
	a.Metrics.addFault()
	switch f.Kind {
	case FaultSlow:
		if err := sleepCtx(ctx, f.Delay); err != nil {
			return f, stepError(step, node, ErrKindCancelled, err)
		}
		return f, nil
	case FaultCorrupt:
		return f, stepError(step, node, ErrKindCorrupt,
			fmt.Errorf("injected corruption at %s", op))
	default:
		return f, stepError(step, node, ErrKindInjected,
			fmt.Errorf("injected failure at %s", op))
	}
}

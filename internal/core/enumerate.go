package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/cost"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/trace"
)

// enumerateGroup implements Figure 4 steps 05–07 for one group: enumerate
// relational options over child options, apply cost-based pruning, run the
// enforcer step (inject data movements on interesting properties), and
// prune again.
func (o *Optimizer) enumerateGroup(g *pgroup, parent trace.SpanID) error {
	sp := o.config.Tracer.BeginUnder(parent, "group")
	sp.Int("id", int64(g.ID))
	defer sp.End()
	var opts []*Option
	for _, e := range g.exprs {
		es, err := o.enumerateExpr(g, e)
		if err != nil {
			sp.SetErr(err)
			return err
		}
		opts = append(opts, es...)
	}
	if len(opts) == 0 {
		err := fmt.Errorf("core: no feasible options for group %d", g.ID)
		sp.SetErr(err)
		return err
	}
	sp.Int("enumerated", int64(len(opts)))
	opts = o.pruneOptions(g, opts)

	// Enforcer step (07): movement alternatives for every retained option.
	enforced := append([]*Option{}, opts...)
	for _, opt := range opts {
		enforced = append(enforced, o.enforce(g, opt)...)
	}
	g.opts = o.pruneOptions(g, enforced)
	sp.Int("retained", int64(len(g.opts)))
	atomic.AddInt64(&o.retained, int64(len(g.opts)))
	return nil
}

// statsOf adapts group column stats for width computation.
func (g *pgroup) statsOf(id algebra.ColumnID) (memoxml.DecodedColStat, bool) {
	cs, ok := g.ColStats[id]
	return cs, ok
}

// newRelOption builds a relational option, accumulating input costs.
func (o *Optimizer) newRelOption(op algebra.Operator, inputs []*Option, dist Distribution, rows float64, out []algebra.ColumnMeta, width float64) *Option {
	opt := &Option{Op: op, Inputs: inputs, Dist: dist, Rows: rows, OutCols: out, Width: width}
	for _, in := range inputs {
		opt.DMSCost += in.DMSCost
		opt.TieCost += in.TieCost
	}
	// Relational work tiebreaker: rows consumed. Replicated inputs are
	// processed on every node.
	work := 0.0
	for _, in := range inputs {
		mult := 1.0
		if in.Dist.Kind == DistReplicated {
			mult = float64(o.model.Nodes)
		}
		work += in.Rows * mult
	}
	opt.TieCost += work*1e-3 + rows*1e-3
	atomic.AddInt64(&o.considered, 1)
	return opt
}

// newMoveOption wraps an option in a data movement.
func (o *Optimizer) newMoveOption(kind cost.MoveKind, col algebra.ColumnID, in *Option) *Option {
	var dist Distribution
	switch kind {
	case cost.Shuffle, cost.Trim:
		dist = HashOn(col)
	case cost.Broadcast, cost.ControlNodeMove, cost.ReplicatedBroadcast:
		dist = Replicated()
	case cost.PartitionMove, cost.RemoteCopySingle:
		dist = Single()
	}
	opt := &Option{
		Move:    &MoveSpec{Kind: kind, Col: col},
		Inputs:  []*Option{in},
		Dist:    dist,
		Rows:    in.Rows,
		Width:   in.Width,
		OutCols: in.OutCols,
		DMSCost: in.DMSCost + o.model.MoveCost(kind, in.Rows, in.Width),
		TieCost: in.TieCost,
	}
	atomic.AddInt64(&o.considered, 1)
	return opt
}

// enforce yields movement alternatives for one option (Figure 4 step 07).
func (o *Optimizer) enforce(g *pgroup, opt *Option) []*Option {
	var out []*Option
	switch opt.Dist.Kind {
	case DistHash:
		for _, c := range sortedColIDs(g.interesting) {
			if g.outSet.Has(c) && !opt.Dist.Cols.Has(c) {
				out = append(out, o.newMoveOption(cost.Shuffle, c, opt))
			}
		}
		out = append(out,
			o.newMoveOption(cost.Broadcast, 0, opt),
			o.newMoveOption(cost.PartitionMove, 0, opt))
	case DistReplicated:
		for _, c := range sortedColIDs(g.interesting) {
			if g.outSet.Has(c) {
				out = append(out, o.newMoveOption(cost.Trim, c, opt))
			}
		}
		out = append(out, o.newMoveOption(cost.RemoteCopySingle, 0, opt))
	case DistSingle:
		out = append(out, o.newMoveOption(cost.ControlNodeMove, 0, opt))
	}
	return out
}

// pruneOptions implements Figure 4 step 06.ii: keep the overall best plus
// the best per interesting property (here: per interesting hash column,
// plus the replicated and single-node properties needed for feasibility).
func (o *Optimizer) pruneOptions(g *pgroup, opts []*Option) []*Option {
	classes := map[string]*Option{}
	consider := func(key string, opt *Option) {
		if cur, ok := classes[key]; !ok || better(opt, cur) {
			classes[key] = opt
		}
	}
	for _, opt := range opts {
		consider("O", opt)
		switch opt.Dist.Kind {
		case DistHash:
			if !o.config.DisableInterestingRetention {
				for c := range opt.Dist.Cols {
					if g.interesting.Has(c) {
						consider(fmt.Sprintf("H%d", c), opt)
					}
				}
			}
		case DistReplicated:
			consider("R", opt)
		case DistSingle:
			consider("S", opt)
		}
	}
	// Deduplicate survivors deterministically: iterate classes in sorted
	// key order — ranging the map directly would let options tied on
	// (cost, tie, placement) surface in map-iteration order, which varies
	// run to run and across the serial/parallel enumerators.
	keys := make([]string, 0, len(classes))
	for k := range classes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := map[*Option]bool{}
	var out []*Option
	for _, k := range keys {
		opt := classes[k]
		if !seen[opt] {
			seen[opt] = true
			out = append(out, opt)
		}
	}
	sortOptions(out)
	return out
}

// enumerateExpr produces the relational options of one logical expression.
func (o *Optimizer) enumerateExpr(g *pgroup, e memoxml.DecodedExpr) ([]*Option, error) {
	switch op := e.Op.(type) {
	case *algebra.Get:
		return o.enumGet(g, op), nil
	case *algebra.Values:
		width := widthOf(g.OutCols, g.statsOf)
		return []*Option{o.newRelOption(op, nil, Replicated(), g.Rows, g.OutCols, width)}, nil
	case *algebra.Select:
		return o.enumUnary(g, op, e), nil
	case *algebra.Project:
		return o.enumProject(g, op, e), nil
	case *algebra.Join:
		return o.enumJoin(g, op, e), nil
	case *algebra.GroupBy:
		return o.enumGroupBy(g, op, e), nil
	case *algebra.Sort:
		return o.enumUnary(g, op, e), nil
	case *algebra.UnionAll:
		return o.enumUnion(g, op, e), nil
	}
	return nil, fmt.Errorf("core: cannot enumerate operator %T", e.Op)
}

// enumGet yields the table's natural placement.
func (o *Optimizer) enumGet(g *pgroup, op *algebra.Get) []*Option {
	width := widthOf(g.OutCols, g.statsOf)
	dist := Replicated()
	if op.Table.Dist.Kind == catalog.DistHash {
		dist = Distribution{Kind: DistHash, Cols: algebra.NewColSet()}
		for _, c := range op.Cols {
			if strings.EqualFold(c.Name, op.Table.Dist.Column) {
				dist.Cols.Add(c.ID)
			}
		}
	}
	return []*Option{o.newRelOption(op, nil, dist, g.Rows, g.OutCols, width)}
}

// enumUnary handles Select and Sort: distribution is preserved.
func (o *Optimizer) enumUnary(g *pgroup, op algebra.Operator, e memoxml.DecodedExpr) []*Option {
	child := o.groups[e.Children[0]]
	var out []*Option
	for _, co := range child.opts {
		dist := co.Dist.restrict(g.outSet, nil)
		width := widthOf(co.OutCols, g.statsOf)
		out = append(out, o.newRelOption(op, []*Option{co}, dist, g.Rows, co.OutCols, width))
	}
	return out
}

// enumProject remaps distribution columns through pass-through defs.
func (o *Optimizer) enumProject(g *pgroup, op *algebra.Project, e memoxml.DecodedExpr) []*Option {
	child := o.groups[e.Children[0]]
	rename := map[algebra.ColumnID][]algebra.ColumnID{}
	for _, d := range op.Defs {
		if c, ok := d.Expr.(*algebra.ColRef); ok {
			rename[c.ID] = append(rename[c.ID], d.ID)
		}
	}
	var out []*Option
	for _, co := range child.opts {
		outCols := algebra.OutputColsFromSchemas(op, [][]algebra.ColumnMeta{co.OutCols})
		outSet := algebra.NewColSet()
		for _, c := range outCols {
			outSet.Add(c.ID)
		}
		dist := co.Dist.restrict(outSet, rename)
		width := widthOf(outCols, g.statsOf)
		out = append(out, o.newRelOption(op, []*Option{co}, dist, g.Rows, outCols, width))
	}
	return out
}

// enumJoin pairs child options and keeps distribution-compatible ones.
func (o *Optimizer) enumJoin(g *pgroup, op *algebra.Join, e memoxml.DecodedExpr) []*Option {
	left := o.groups[e.Children[0]]
	right := o.groups[e.Children[1]]
	var out []*Option
	for _, lo := range left.opts {
		for _, ro := range right.opts {
			dist, ok := o.joinDist(op, lo, ro)
			if !ok {
				continue
			}
			outCols := algebra.OutputColsFromSchemas(op, [][]algebra.ColumnMeta{lo.OutCols, ro.OutCols})
			outSet := algebra.NewColSet()
			for _, c := range outCols {
				outSet.Add(c.ID)
			}
			dist = dist.restrict(outSet, nil)
			width := widthOf(outCols, g.statsOf)
			out = append(out, o.newRelOption(op, []*Option{lo, ro}, dist, g.Rows, outCols, width))
		}
	}
	return out
}

// joinDist decides whether two placements can join without movement and
// what the result placement is (the §2.4 "partition compatible" check).
func (o *Optimizer) joinDist(op *algebra.Join, lo, ro *Option) (Distribution, bool) {
	lk, rk := lo.Dist.Kind, ro.Dist.Kind
	switch {
	case lk == DistSingle && rk == DistSingle:
		return Single(), true
	case lk == DistSingle || rk == DistSingle:
		return Distribution{}, false

	case lk == DistReplicated && rk == DistReplicated:
		return Replicated(), true

	case lk == DistHash && rk == DistReplicated:
		// The replicated side is fully present on every node: valid for
		// every kind that preserves/probes the left side. FULL OUTER would
		// emit right-side null extensions on every node.
		if op.Kind == algebra.JoinFullOuter {
			return Distribution{}, false
		}
		cols := cloneColSet(lo.Dist.Cols)
		if op.Kind == algebra.JoinInner {
			addEquatedCols(op.On, lo.Dist.Cols, cols)
		}
		return Distribution{Kind: DistHash, Cols: cols}, true

	case lk == DistReplicated && rk == DistHash:
		// Only joins that emit each (left,right) pair at most once and
		// have no preserved/filtered left semantics tolerate a replicated
		// left over a partitioned right.
		if op.Kind != algebra.JoinInner && op.Kind != algebra.JoinCross {
			return Distribution{}, false
		}
		cols := cloneColSet(ro.Dist.Cols)
		if op.Kind == algebra.JoinInner {
			addEquatedCols(op.On, ro.Dist.Cols, cols)
		}
		return Distribution{Kind: DistHash, Cols: cols}, true

	default: // both hash-distributed
		if !collocated(op.On, lo.Dist.Cols, ro.Dist.Cols) {
			return Distribution{}, false
		}
		cols := cloneColSet(lo.Dist.Cols)
		switch op.Kind {
		case algebra.JoinInner:
			cols.AddSet(ro.Dist.Cols)
		case algebra.JoinCross:
			// Unreachable: cross joins have no equi conjuncts, so they
			// are never collocated.
		}
		return Distribution{Kind: DistHash, Cols: cols}, true
	}
}

// collocated reports whether an equality conjunct pairs the two hash
// column classes.
func collocated(on algebra.Scalar, l, r algebra.ColSet) bool {
	for _, conj := range algebra.Conjuncts(on) {
		a, b, ok := algebra.EquiJoinSides(conj)
		if !ok {
			continue
		}
		if (l.Has(a) && r.Has(b)) || (l.Has(b) && r.Has(a)) {
			return true
		}
	}
	return false
}

// addEquatedCols extends a hash equivalence class with columns equated to
// it by the join condition.
func addEquatedCols(on algebra.Scalar, class algebra.ColSet, into algebra.ColSet) {
	for _, conj := range algebra.Conjuncts(on) {
		a, b, ok := algebra.EquiJoinSides(conj)
		if !ok {
			continue
		}
		if class.Has(a) {
			into.Add(b)
		}
		if class.Has(b) {
			into.Add(a)
		}
	}
}

func cloneColSet(s algebra.ColSet) algebra.ColSet {
	out := algebra.NewColSet()
	out.AddSet(s)
	return out
}

// enumGroupBy handles complete aggregation over compatible inputs plus the
// partial/final split (the paper's §4 "local-global transformation of the
// group by" and Figure 4 step 02's topology-aware partial-aggregate
// sizing). The split is enumerated as a cost-based alternative for every
// hash-distributed child option — not merely as a fallback when the
// complete shape is infeasible — and pruning keeps whichever moves fewer
// bytes.
func (o *Optimizer) enumGroupBy(g *pgroup, op *algebra.GroupBy, e memoxml.DecodedExpr) []*Option {
	child := o.groups[e.Children[0]]
	keySet := algebra.NewColSet(op.Keys...)
	var out []*Option

	for _, co := range child.opts {
		// Complete aggregation wherever the placement already brings every
		// row of each group to one node.
		if gbCompatible(op, co.Dist) {
			dist := co.Dist.restrict(keySet, nil)
			if co.Dist.Kind != DistHash {
				dist = co.Dist
			}
			outCols := algebra.OutputColsFromSchemas(op, [][]algebra.ColumnMeta{co.OutCols})
			width := widthOf(outCols, g.statsOf)
			out = append(out, o.newRelOption(op, []*Option{co}, dist, g.Rows, outCols, width))
		}
		// Partial aggregation on each node, move the shrunken states, then
		// finalize. Only decomposable aggregates split (splitAggs guards
		// DISTINCT and unknown functions); replicated or single-node inputs
		// never benefit — their complete aggregation is movement-free.
		if co.Dist.Kind == DistHash && !o.config.DisableAggSplit {
			out = append(out, o.splitOptions(g, op, co)...)
		}
	}
	return out
}

// gbCompatible reports whether a complete GroupBy over the placement is
// correct without movement: all rows of any group live on one node.
func gbCompatible(op *algebra.GroupBy, d Distribution) bool {
	switch d.Kind {
	case DistSingle, DistReplicated:
		return true
	default:
		if len(op.Keys) == 0 {
			return false
		}
		keySet := algebra.NewColSet(op.Keys...)
		for c := range d.Cols {
			if keySet.Has(c) {
				return true
			}
		}
		return false
	}
}

// splitOptions builds PartialGB → move → FinalGB chains over one child
// option: per-node partial aggregation shrinks the stream before it moves,
// and the finalizing aggregation merges partial states after the movement.
func (o *Optimizer) splitOptions(g *pgroup, op *algebra.GroupBy, co *Option) []*Option {
	partialAggs, finalAggs, ok := splitAggs(g, op.Aggs)
	if !ok {
		return nil
	}
	n := float64(o.model.Nodes)
	if n < 1 {
		n = 1
	}

	// Partial output schema: keys (from child schema) + partial states.
	partialOp := &algebra.GroupBy{Keys: op.Keys, Aggs: partialAggs, Phase: algebra.AggPartial}
	partialCols := algebra.OutputColsFromSchemas(partialOp, [][]algebra.ColumnMeta{co.OutCols})

	// Figure 4 step 02: size the partial aggregate for the topology. Each
	// node sees rows/N input rows drawn from ~g.Rows global groups.
	var partialRows float64
	if len(op.Keys) == 0 {
		partialRows = n
	} else {
		partialRows = math.Min(n*expectedDistinct(g.Rows, co.Rows/n), co.Rows)
	}
	partialWidth := widthOf(partialCols, g.statsOf)
	partialDist := co.Dist.restrict(algebra.NewColSet(op.Keys...), nil)
	partial := o.newRelOption(partialOp, []*Option{co}, partialDist, partialRows, partialCols, partialWidth)

	finalOp := &algebra.GroupBy{Keys: op.Keys, Aggs: finalAggs, Phase: algebra.AggFinal}
	finalCols := algebra.OutputColsFromSchemas(finalOp, [][]algebra.ColumnMeta{partialCols})
	finalWidth := widthOf(finalCols, g.statsOf)

	var out []*Option
	if len(op.Keys) == 0 {
		moved := o.newMoveOption(cost.PartitionMove, 0, partial)
		out = append(out, o.newRelOption(finalOp, []*Option{moved}, Single(), g.Rows, finalCols, finalWidth))
		return out
	}
	for _, k := range op.Keys {
		moved := o.newMoveOption(cost.Shuffle, k, partial)
		out = append(out, o.newRelOption(finalOp, []*Option{moved}, HashOn(k), g.Rows, finalCols, finalWidth))
	}
	return out
}

// splitAggs rewrites complete aggregates into partial/final pairs with
// fresh state columns minted from the group's private range. The partial
// phase keeps each aggregate's own function (COUNT stays COUNT locally);
// the finalizing function merges the states: SUM and COUNT finalize as
// SUM over partial sums/counts, MIN/MAX as themselves. AVG never reaches
// here — the binder decomposes it into SUM/COUNT state up front.
// DISTINCT aggregates see each value once globally but possibly on many
// nodes, so they cannot split and keep the complete plan.
func splitAggs(g *pgroup, aggs []algebra.AggDef) (partial, final []algebra.AggDef, ok bool) {
	for _, a := range aggs {
		if a.Distinct {
			return nil, nil, false
		}
		pid := g.freshCol()
		p := algebra.AggDef{Func: a.Func, Arg: a.Arg, ID: pid, Name: fmt.Sprintf("partial%d", pid)}
		pref := algebra.NewColRef(algebra.ColumnMeta{ID: pid, Name: p.Name, Type: p.ResultType()})
		var f algebra.AggDef
		switch a.Func {
		case algebra.AggSum, algebra.AggCount:
			// COUNT → SUM of partial counts; SUM → SUM of partial sums.
			f = algebra.AggDef{Func: algebra.AggSum, Arg: pref, ID: a.ID, Name: a.Name}
		case algebra.AggMin:
			f = algebra.AggDef{Func: algebra.AggMin, Arg: pref, ID: a.ID, Name: a.Name}
		case algebra.AggMax:
			f = algebra.AggDef{Func: algebra.AggMax, Arg: pref, ID: a.ID, Name: a.Name}
		default:
			return nil, nil, false
		}
		partial = append(partial, p)
		final = append(final, f)
	}
	return partial, final, true
}

// enumUnion requires compatible placements; enforcers provide movement.
func (o *Optimizer) enumUnion(g *pgroup, op *algebra.UnionAll, e memoxml.DecodedExpr) []*Option {
	left := o.groups[e.Children[0]]
	right := o.groups[e.Children[1]]
	var out []*Option
	for _, lo := range left.opts {
		for _, ro := range right.opts {
			var dist Distribution
			switch {
			case lo.Dist.Kind == DistSingle && ro.Dist.Kind == DistSingle:
				dist = Single()
			case lo.Dist.Kind == DistReplicated && ro.Dist.Kind == DistReplicated:
				dist = Replicated()
			case lo.Dist.Kind == DistHash && ro.Dist.Kind == DistHash:
				shared := algebra.NewColSet()
				for c := range lo.Dist.Cols {
					if ro.Dist.Cols.Has(c) {
						shared.Add(c)
					}
				}
				if len(shared) == 0 && len(lo.Dist.Cols)+len(ro.Dist.Cols) > 0 {
					continue
				}
				dist = Distribution{Kind: DistHash, Cols: shared}
			default:
				continue
			}
			width := widthOf(lo.OutCols, g.statsOf)
			out = append(out, o.newRelOption(op, []*Option{lo, ro}, dist, g.Rows, lo.OutCols, width))
		}
	}
	return out
}

package types

import "fmt"

// Arithmetic with SQL NULL propagation. These helpers are shared by the
// runtime expression evaluator and by compile-time constant folding, so the
// two layers cannot drift apart.

func numericPair(a, b Value, op string) (Value, Value, bool, error) {
	if a.IsNull() || b.IsNull() {
		return Null, Null, false, nil
	}
	if !a.kind.Numeric() || !b.kind.Numeric() {
		// Date arithmetic is handled by DATEADD; bare +/- on dates is not
		// part of the supported surface.
		return Null, Null, false, fmt.Errorf("types: %s on %s and %s", op, a.kind, b.kind)
	}
	return a, b, true, nil
}

// Add returns a+b, or NULL if either side is NULL.
func Add(a, b Value) (Value, error) {
	a, b, ok, err := numericPair(a, b, "+")
	if !ok {
		return Null, err
	}
	if a.kind == KindInt && b.kind == KindInt {
		return NewInt(a.i + b.i), nil
	}
	return NewFloat(a.Float() + b.Float()), nil
}

// Sub returns a-b, or NULL if either side is NULL.
func Sub(a, b Value) (Value, error) {
	a, b, ok, err := numericPair(a, b, "-")
	if !ok {
		return Null, err
	}
	if a.kind == KindInt && b.kind == KindInt {
		return NewInt(a.i - b.i), nil
	}
	return NewFloat(a.Float() - b.Float()), nil
}

// Mul returns a*b, or NULL if either side is NULL.
func Mul(a, b Value) (Value, error) {
	a, b, ok, err := numericPair(a, b, "*")
	if !ok {
		return Null, err
	}
	if a.kind == KindInt && b.kind == KindInt {
		return NewInt(a.i * b.i), nil
	}
	return NewFloat(a.Float() * b.Float()), nil
}

// Div returns a/b following SQL semantics for our type model: integer
// division yields FLOAT (we have no DECIMAL kind), and division by zero is
// an error rather than NULL, matching SQL Server's default behaviour.
func Div(a, b Value) (Value, error) {
	a, b, ok, err := numericPair(a, b, "/")
	if !ok {
		return Null, err
	}
	if b.Float() == 0 {
		return Null, fmt.Errorf("types: division by zero")
	}
	return NewFloat(a.Float() / b.Float()), nil
}

// Neg returns -a, or NULL for NULL.
func Neg(a Value) (Value, error) {
	if a.IsNull() {
		return Null, nil
	}
	switch a.kind {
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	}
	return Null, fmt.Errorf("types: negation of %s", a.kind)
}

// DateAdd implements DATEADD(part, n, date) for the parts the query surface
// uses: year, month, day. Month/year arithmetic follows calendar rules via
// day decomposition.
func DateAdd(part string, n int64, d Value) (Value, error) {
	if d.IsNull() {
		return Null, nil
	}
	if d.kind != KindDate {
		return Null, fmt.Errorf("types: DATEADD on %s", d.kind)
	}
	switch part {
	case "day", "dd", "d":
		return NewDate(d.i + n), nil
	case "year", "yy", "yyyy":
		y, m, day := civilFromDays(d.i)
		return NewDate(daysFromCivil(y+int(n), m, day)), nil
	case "month", "mm", "m":
		y, m, day := civilFromDays(d.i)
		mm := y*12 + (m - 1) + int(n)
		return NewDate(daysFromCivil(mm/12, mm%12+1, day)), nil
	}
	return Null, fmt.Errorf("types: unsupported DATEADD part %q", part)
}

// DateYear returns the calendar year of a DATE value, for EXTRACT/YEAR().
func DateYear(d Value) (Value, error) {
	if d.IsNull() {
		return Null, nil
	}
	if d.kind != KindDate {
		return Null, fmt.Errorf("types: YEAR on %s", d.kind)
	}
	y, _, _ := civilFromDays(d.i)
	return NewInt(int64(y)), nil
}

// civilFromDays converts days-since-epoch to (year, month, day) using
// Howard Hinnant's civil-from-days algorithm.
func civilFromDays(z int64) (int, int, int) {
	z += 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	m := mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int(y), int(m), int(d)
}

// daysFromCivil converts (year, month, day) to days-since-epoch, clamping
// the day to the target month's length (SQL Server DATEADD behaviour).
func daysFromCivil(y, m, d int) int64 {
	if max := daysInMonth(y, m); d > max {
		d = max
	}
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	}
	if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
		return 29
	}
	return 28
}

// Package exec implements the node-local query executor: the role each
// compute node's SQL Server instance plays when handed a DSQL step's SQL
// text. It evaluates bound logical trees (Get/Select/Project/Join/GroupBy/
// Sort/Values) over in-memory rows with SQL three-valued semantics, and
// doubles as the single-node reference executor used to validate
// distributed results.
package exec

import (
	"fmt"
	"math"

	"pdwqo/internal/algebra"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// Env resolves column IDs to positions in the current row.
type Env struct {
	Idx map[algebra.ColumnID]int
	Row types.Row
}

// NewEnv builds an environment over a schema.
func NewEnv(cols []algebra.ColumnMeta) *Env {
	idx := make(map[algebra.ColumnID]int, len(cols))
	for i, c := range cols {
		idx[c.ID] = i
	}
	return &Env{Idx: idx}
}

// Eval evaluates a bound scalar over the environment's current row.
func Eval(e algebra.Scalar, env *Env) (types.Value, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		i, ok := env.Idx[x.ID]
		if !ok {
			return types.Null, fmt.Errorf("exec: column c%d not in row", x.ID)
		}
		return env.Row[i], nil

	case *algebra.Const:
		return x.Val, nil

	case *algebra.Binary:
		return evalBinary(x, env)

	case *algebra.Not:
		v, err := Eval(x.E, env)
		if err != nil || v.IsNull() {
			return types.Null, err
		}
		b, err := v.AsBool()
		if err != nil {
			return types.Null, fmt.Errorf("exec: NOT operand: %w", err)
		}
		return types.NewBool(!b), nil

	case *algebra.Neg:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Null, err
		}
		return types.Neg(v)

	case *algebra.IsNull:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(v.IsNull() != x.Negated), nil

	case *algebra.Like:
		v, err := Eval(x.E, env)
		if err != nil || v.IsNull() {
			return types.Null, err
		}
		s, err := v.AsStr()
		if err != nil {
			return types.Null, fmt.Errorf("exec: LIKE operand: %w", err)
		}
		m := normalize.MatchLike(s, x.Pattern)
		return types.NewBool(m != x.Negated), nil

	case *algebra.InList:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			return types.Null, nil
		}
		sawNull := false
		for _, el := range x.List {
			ev, err := Eval(el, env)
			if err != nil {
				return types.Null, err
			}
			if ev.IsNull() {
				sawNull = true
				continue
			}
			if types.Comparable(v.Kind(), ev.Kind()) && types.Compare(v, ev) == 0 {
				return types.NewBool(!x.Negated), nil
			}
		}
		if sawNull {
			return types.Null, nil
		}
		return types.NewBool(x.Negated), nil

	case *algebra.Func:
		args := make([]types.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := Eval(a, env)
			if err != nil {
				return types.Null, err
			}
			args[i] = v
		}
		return algebra.EvalConstFunc(x.Name, args)

	case *algebra.Case:
		for _, w := range x.Whens {
			c, err := Eval(w.Cond, env)
			if err != nil {
				return types.Null, err
			}
			if c.IsNull() {
				continue
			}
			b, err := c.AsBool()
			if err != nil {
				return types.Null, fmt.Errorf("exec: CASE condition: %w", err)
			}
			if b {
				return Eval(w.Then, env)
			}
		}
		if x.Else != nil {
			return Eval(x.Else, env)
		}
		return types.Null, nil

	case *algebra.Cast:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Null, err
		}
		return CastValue(v, x.To)

	default:
		return types.Null, fmt.Errorf("exec: cannot evaluate %T", e)
	}
}

func evalBinary(x *algebra.Binary, env *Env) (types.Value, error) {
	// AND/OR need three-valued short-circuit handling.
	switch x.Op {
	case sqlparser.OpAnd:
		lb, lnull, err := evalBool(x.L, env)
		if err != nil {
			return types.Null, err
		}
		if !lnull && !lb {
			return types.NewBool(false), nil
		}
		rb, rnull, err := evalBool(x.R, env)
		if err != nil {
			return types.Null, err
		}
		if !rnull && !rb {
			return types.NewBool(false), nil
		}
		if lnull || rnull {
			return types.Null, nil
		}
		return types.NewBool(true), nil
	case sqlparser.OpOr:
		lb, lnull, err := evalBool(x.L, env)
		if err != nil {
			return types.Null, err
		}
		if !lnull && lb {
			return types.NewBool(true), nil
		}
		rb, rnull, err := evalBool(x.R, env)
		if err != nil {
			return types.Null, err
		}
		if !rnull && rb {
			return types.NewBool(true), nil
		}
		if lnull || rnull {
			return types.Null, nil
		}
		return types.NewBool(false), nil
	}

	l, err := Eval(x.L, env)
	if err != nil {
		return types.Null, err
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return types.Null, err
	}
	if x.Op.IsComparison() {
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		if !types.Comparable(l.Kind(), r.Kind()) {
			return types.Null, fmt.Errorf("exec: comparing %s with %s", l.Kind(), r.Kind())
		}
		c := types.Compare(l, r)
		var out bool
		switch x.Op {
		case sqlparser.OpEq:
			out = c == 0
		case sqlparser.OpNe:
			out = c != 0
		case sqlparser.OpLt:
			out = c < 0
		case sqlparser.OpLe:
			out = c <= 0
		case sqlparser.OpGt:
			out = c > 0
		case sqlparser.OpGe:
			out = c >= 0
		}
		return types.NewBool(out), nil
	}
	switch x.Op {
	case sqlparser.OpAdd:
		return types.Add(l, r)
	case sqlparser.OpSub:
		return types.Sub(l, r)
	case sqlparser.OpMul:
		return types.Mul(l, r)
	case sqlparser.OpDiv:
		return types.Div(l, r)
	}
	return types.Null, fmt.Errorf("exec: unknown operator %s", x.Op)
}

// CastError reports a CAST that is unsupported between two kinds, or —
// for the numeric conversions — one whose value cannot survive the
// conversion exactly (overflow, NaN, or precision loss). It is a typed
// error so callers can distinguish a bad query shape from a bad value.
type CastError struct {
	From, To types.Kind
	// Reason is empty for unsupported kind pairs and names the failing
	// value for checked numeric conversions.
	Reason string
}

func (e *CastError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("exec: cannot cast %s to %s", e.From, e.To)
	}
	return fmt.Sprintf("exec: cannot cast %s to %s: %s", e.From, e.To, e.Reason)
}

// maxExactInt is 2^53: float64 represents every integer of smaller
// magnitude exactly; above it the round-trip check decides.
const maxExactInt = int64(1) << 53

// CastIntToFloat converts an INT to FLOAT, rejecting values float64
// cannot represent exactly (|i| > 2^53 with set low bits) instead of
// silently rounding them.
func CastIntToFloat(i int64) (float64, error) {
	f := float64(i)
	if i > -maxExactInt && i < maxExactInt {
		return f, nil
	}
	// float64(MaxInt64) rounds up to 2^63, which is outside int64 and
	// would make the round-trip conversion itself undefined — it is lossy
	// by construction, as is any value the round trip fails to restore.
	if f >= 9223372036854775808.0 || int64(f) != i {
		return 0, &CastError{From: types.KindInt, To: types.KindFloat,
			Reason: fmt.Sprintf("%d loses precision as FLOAT", i)}
	}
	return f, nil
}

// CastFloatToInt truncates a FLOAT toward zero, rejecting NaN and values
// outside the INT range instead of hitting Go's undefined float→int
// conversion. 2^63−1 is not a float64, so the exclusive upper bound is
// 2^63 itself; −2^63 is exact and valid.
func CastFloatToInt(f float64) (int64, error) {
	if math.IsNaN(f) {
		return 0, &CastError{From: types.KindFloat, To: types.KindInt,
			Reason: "NaN has no INT value"}
	}
	if f >= 9223372036854775808.0 || f < -9223372036854775808.0 {
		return 0, &CastError{From: types.KindFloat, To: types.KindInt,
			Reason: fmt.Sprintf("%g overflows INT", f)}
	}
	return int64(f), nil
}

// CastValue converts a runtime value to the target kind. Numeric
// conversions are checked: values that would overflow or lose precision
// return a *CastError instead of silently wrapping.
func CastValue(v types.Value, to types.Kind) (types.Value, error) {
	if v.IsNull() || v.Kind() == to {
		return v, nil
	}
	switch to {
	case types.KindFloat:
		if v.Kind() == types.KindInt {
			f, err := CastIntToFloat(v.Int())
			if err != nil {
				return types.Null, err
			}
			return types.NewFloat(f), nil
		}
		if v.Kind().Numeric() {
			return types.NewFloat(v.Float()), nil
		}
	case types.KindInt:
		if v.Kind() == types.KindFloat {
			i, err := CastFloatToInt(v.Float())
			if err != nil {
				return types.Null, err
			}
			return types.NewInt(i), nil
		}
	case types.KindDate:
		if v.Kind() == types.KindString {
			return types.ParseDate(v.Str())
		}
	case types.KindString:
		return types.NewString(v.String()), nil
	case types.KindBool:
		if v.Kind() == types.KindInt {
			return types.NewBool(v.Int() != 0), nil
		}
	}
	return types.Null, &CastError{From: v.Kind(), To: to}
}

// evalBool evaluates a logical operand into three-valued form: the
// boolean, whether it was NULL, and a typed error when the operand is not
// a BIT (reachable from expressions like `1 AND x`).
func evalBool(e algebra.Scalar, env *Env) (b, isNull bool, err error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, false, err
	}
	if v.IsNull() {
		return false, true, nil
	}
	b, err = v.AsBool()
	return b, false, err
}

// Truthy applies SQL predicate semantics: NULL counts as false. It
// panics on non-BIT values — use it only where the value's kind is
// already proven; runtime predicates go through TruthyChecked.
func Truthy(v types.Value) bool { return !v.IsNull() && v.Bool() }

// TruthyChecked is Truthy with the kind check surfaced as an error:
// predicates over user expressions (e.g. `WHERE c_custkey`) can evaluate
// to non-BIT values, which must fail the query, not crash the node.
func TruthyChecked(v types.Value) (bool, error) {
	if v.IsNull() {
		return false, nil
	}
	return v.AsBool()
}

package server

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedServer answers a client handshake with canned frames over a
// net.Pipe, for driving the client's protocol-error paths without a real
// server. Each entry is written verbatim after the Hello arrives.
func scriptedServer(t *testing.T, ack bool, frames ...[2]any) net.Conn {
	t.Helper()
	cli, srv := net.Pipe()
	go func() {
		defer srv.Close()
		if _, _, err := ReadFrame(srv); err != nil {
			return
		}
		if ack {
			var e enc
			e.u16(Version)
			e.u64(1)
			e.u64(0)
			if err := WriteFrame(srv, OpHelloAck, e.b); err != nil {
				return
			}
			// The scripted exchange continues after the client's request.
			if _, _, err := ReadFrame(srv); err != nil {
				return
			}
		}
		for _, f := range frames {
			if err := WriteFrame(srv, f[0].(Op), f[1].([]byte)); err != nil {
				return
			}
		}
	}()
	return cli
}

func TestClientHandshakeFailures(t *testing.T) {
	t.Run("error-frame", func(t *testing.T) {
		var e enc
		e.u16(uint16(CodeHandshake))
		e.str("go away")
		_, err := NewClient(scriptedServer(t, false, [2]any{OpError, e.b}))
		if CodeOf(err) != CodeHandshake {
			t.Fatalf("err = %v, want handshake error", err)
		}
	})
	t.Run("malformed-error-frame", func(t *testing.T) {
		_, err := NewClient(scriptedServer(t, false, [2]any{OpError, []byte{0x01}}))
		if CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
	t.Run("wrong-op", func(t *testing.T) {
		_, err := NewClient(scriptedServer(t, false, [2]any{OpDone, []byte{}}))
		if err == nil || !strings.Contains(err.Error(), "expected HelloAck") {
			t.Fatalf("err = %v, want HelloAck complaint", err)
		}
	})
	t.Run("malformed-ack", func(t *testing.T) {
		_, err := NewClient(scriptedServer(t, false, [2]any{OpHelloAck, []byte{0x00}}))
		if CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
	t.Run("version-mismatch", func(t *testing.T) {
		var e enc
		e.u16(Version + 9)
		e.u64(1)
		e.u64(0)
		_, err := NewClient(scriptedServer(t, false, [2]any{OpHelloAck, e.b}))
		if CodeOf(err) != CodeHandshake {
			t.Fatalf("err = %v, want handshake error", err)
		}
	})
	t.Run("closed-before-ack", func(t *testing.T) {
		if _, err := NewClient(scriptedServer(t, false)); err == nil {
			t.Fatal("expected error from closed connection")
		}
	})
	t.Run("dial-refused", func(t *testing.T) {
		if _, err := Dial("127.0.0.1:1"); err == nil {
			t.Fatal("expected dial error")
		}
	})
}

// scriptedClient performs a real handshake against the scripted server
// and returns the client for one request.
func scriptedClient(t *testing.T, frames ...[2]any) *Client {
	t.Helper()
	c, err := NewClient(scriptedServer(t, true, frames...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientResultStreamErrors(t *testing.T) {
	header := func(cols ...string) []byte {
		var e enc
		e.u16(uint16(len(cols)))
		for _, c := range cols {
			e.str(c)
		}
		return e.b
	}
	done := func(epoch, nrows uint64, status string) []byte {
		var e enc
		e.u64(epoch)
		e.u64(nrows)
		e.str(status)
		return e.b
	}
	t.Run("batch-before-header", func(t *testing.T) {
		var b enc
		b.u16(0)
		c := scriptedClient(t, [2]any{OpRowBatch, b.b})
		if _, err := c.Query(context.Background(), "SELECT 1"); CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
	t.Run("row-count-mismatch", func(t *testing.T) {
		c := scriptedClient(t, [2]any{OpRowHeader, header("a")}, [2]any{OpDone, done(0, 5, "hit")})
		if _, err := c.Query(context.Background(), "SELECT 1"); CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
	t.Run("unexpected-frame", func(t *testing.T) {
		c := scriptedClient(t, [2]any{OpPrepareAck, []byte{}})
		if _, err := c.Query(context.Background(), "SELECT 1"); CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
	t.Run("malformed-header", func(t *testing.T) {
		c := scriptedClient(t, [2]any{OpRowHeader, []byte{0xff}})
		if _, err := c.Query(context.Background(), "SELECT 1"); CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
	t.Run("malformed-done", func(t *testing.T) {
		c := scriptedClient(t, [2]any{OpRowHeader, header("a")}, [2]any{OpDone, []byte{0x01}})
		if _, err := c.Query(context.Background(), "SELECT 1"); CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
	t.Run("malformed-batch", func(t *testing.T) {
		c := scriptedClient(t, [2]any{OpRowHeader, header("a")}, [2]any{OpRowBatch, []byte{0x00, 0x01, 0xff}})
		if _, err := c.Query(context.Background(), "SELECT 1"); CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
}

func TestClientPrepareProtocolErrors(t *testing.T) {
	t.Run("wrong-op", func(t *testing.T) {
		c := scriptedClient(t, [2]any{OpDone, []byte{}})
		if _, err := c.Prepare("SELECT 1"); err == nil || !strings.Contains(err.Error(), "expected PrepareAck") {
			t.Fatalf("err = %v, want PrepareAck complaint", err)
		}
	})
	t.Run("malformed-ack", func(t *testing.T) {
		c := scriptedClient(t, [2]any{OpPrepareAck, []byte{0x01}})
		if _, err := c.Prepare("SELECT 1"); CodeOf(err) != CodeProtocol {
			t.Fatalf("err = %v, want protocol error", err)
		}
	})
	t.Run("closed-before-ack", func(t *testing.T) {
		c := scriptedClient(t)
		if _, err := c.Prepare("SELECT 1"); err == nil {
			t.Fatal("expected error from closed connection")
		}
	})
}

func TestArgText(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{42, "42"},
		{int64(-7), "-7"},
		{1.5, "1.5"},
		{"hi", "hi"},
		{time.Date(1995, 3, 15, 0, 0, 0, 0, time.UTC), "1995-03-15"},
	}
	for _, c := range cases {
		got, err := argText(c.in)
		if err != nil || got != c.want {
			t.Errorf("argText(%v) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	if _, err := argText(struct{}{}); err == nil {
		t.Error("argText(struct{}{}) succeeded, want error")
	}
}

// TestQueryContextCancel cancels a high-level Client's context while its
// query is executing; the watcher goroutine must convert that into a wire
// Cancel and the call must return the server's typed error.
func TestQueryContextCancel(t *testing.T) {
	db := sharedDB(t)
	var once sync.Once
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	_, addr := startServer(t, db, Config{
		MaxConcurrent: 2,
		PhaseHook: func(ph Phase, sql string) {
			if ph == PhaseExecuting {
				once.Do(func() {
					entered <- struct{}{}
					<-release
				})
			}
		},
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, qerr := c.Query(ctx, "SELECT o_orderkey FROM orders ORDER BY o_orderkey")
		errc <- qerr
	}()
	<-entered
	cancel()
	time.Sleep(50 * time.Millisecond) // let the Cancel frame land
	close(release)
	if qerr := <-errc; CodeOf(qerr) != CodeCancelled {
		t.Fatalf("query error = %v, want cancelled", qerr)
	}
	// The session survives its cancelled query.
	if _, err := c.Query(context.Background(), "SELECT r_name FROM region"); err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
}

// TestMidQueryFrames drives the in-flight frame dispatch: Bye ends the
// session mid-query, and a non-query op mid-query is a protocol error.
func TestMidQueryFrames(t *testing.T) {
	db := sharedDB(t)
	newBlockedQuery := func(t *testing.T) (*rawSession, chan struct{}) {
		var once sync.Once
		entered := make(chan struct{}, 1)
		release := make(chan struct{})
		_, addr := startServer(t, db, Config{
			MaxConcurrent: 2,
			PhaseHook: func(ph Phase, sql string) {
				if ph == PhaseExecuting {
					once.Do(func() {
						entered <- struct{}{}
						<-release
					})
				}
			},
		})
		r := dialRaw(t, addr)
		r.send(OpQuery, queryPayload("SELECT r_name FROM region"))
		<-entered
		return r, release
	}

	t.Run("bye", func(t *testing.T) {
		r, release := newBlockedQuery(t)
		r.send(OpBye, nil)
		time.Sleep(50 * time.Millisecond) // let the frame reach the session
		close(release)
		// The server reaps the worker and closes without a terminal frame.
		if op, _, err := r.readToTerminal(); err == nil {
			t.Fatalf("expected connection close, got %s frame", op)
		}
	})
	t.Run("unexpected-op", func(t *testing.T) {
		r, release := newBlockedQuery(t)
		r.send(OpHello, helloPayload(Magic, Version))
		time.Sleep(50 * time.Millisecond)
		close(release) // the session answers only after reaping the worker
		op, code, err := r.readToTerminal()
		if err != nil || op != OpError || code != CodeProtocol {
			t.Fatalf("terminal = %s/%s/%v, want protocol error", op, code, err)
		}
	})
}

// TestMidStreamFrames drives the between-batch poll in stream(): Bye ends
// the session, any other client op is a protocol error.
func TestMidStreamFrames(t *testing.T) {
	db := sharedDB(t)
	newStreaming := func(t *testing.T) (*rawSession, chan struct{}) {
		var once sync.Once
		entered := make(chan struct{}, 1)
		release := make(chan struct{})
		_, addr := startServer(t, db, Config{
			MaxConcurrent: 2,
			BatchRows:     4,
			PhaseHook: func(ph Phase, sql string) {
				if ph == PhaseStreaming {
					once.Do(func() {
						entered <- struct{}{}
						<-release
					})
				}
			},
		})
		r := dialRaw(t, addr)
		r.send(OpQuery, queryPayload("SELECT o_orderkey FROM orders ORDER BY o_orderkey"))
		<-entered
		return r, release
	}

	t.Run("bye", func(t *testing.T) {
		r, release := newStreaming(t)
		r.send(OpBye, nil)
		time.Sleep(50 * time.Millisecond) // land the frame before streaming resumes
		close(release)
		for {
			if _, _, err := ReadFrame(r.conn); err != nil {
				return // closed without a terminal frame, as Bye demands
			}
		}
	})
	t.Run("unexpected-op", func(t *testing.T) {
		r, release := newStreaming(t)
		r.send(OpPrepare, queryPayload("SELECT 1"))
		time.Sleep(50 * time.Millisecond)
		close(release)
		op, code, err := r.readToTerminal()
		if err != nil || op != OpError || code != CodeProtocol {
			t.Fatalf("terminal = %s/%s/%v, want protocol error", op, code, err)
		}
	})
}

// TestMalformedSessionPayloads sends structurally broken payloads on
// otherwise-valid sessions; each must end the session with a typed
// protocol error.
func TestMalformedSessionPayloads(t *testing.T) {
	db := sharedDB(t)
	_, addr := startServer(t, db, Config{})
	send := func(t *testing.T, op Op, payload []byte) (Op, Code) {
		r := dialRaw(t, addr)
		r.send(op, payload)
		top, code, err := r.readToTerminal()
		if err != nil {
			t.Fatalf("read terminal: %v", err)
		}
		return top, code
	}
	t.Run("query-trailing-bytes", func(t *testing.T) {
		p := append(queryPayload("SELECT r_name FROM region"), 0xde, 0xad)
		if op, code := send(t, OpQuery, p); op != OpError || code != CodeProtocol {
			t.Fatalf("got %s/%s, want protocol error", op, code)
		}
	})
	t.Run("closestmt-short", func(t *testing.T) {
		if op, code := send(t, OpCloseStmt, []byte{0x01}); op != OpError || code != CodeProtocol {
			t.Fatalf("got %s/%s, want protocol error", op, code)
		}
	})
	t.Run("prepare-trailing-bytes", func(t *testing.T) {
		p := append(queryPayload("SELECT r_name FROM region"), 0x00)
		if op, code := send(t, OpPrepare, p); op != OpError || code != CodeProtocol {
			t.Fatalf("got %s/%s, want protocol error", op, code)
		}
	})
	t.Run("execstmt-garbage", func(t *testing.T) {
		if op, code := send(t, OpExecStmt, []byte{0x01, 0x02}); op != OpError || code != CodeProtocol {
			t.Fatalf("got %s/%s, want protocol error", op, code)
		}
	})
}

// TestServeAfterShutdown covers the closed-server paths of Serve and
// ServeConn: both must refuse new work after Shutdown.
func TestServeAfterShutdown(t *testing.T) {
	db := sharedDB(t)
	srv := New(db, Config{})
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Serve(l); err == nil {
		t.Fatal("Serve after Shutdown succeeded")
	}

	cli, other := net.Pipe()
	defer cli.Close()
	go srv.ServeConn(other)
	// The server closes the pipe without serving a handshake.
	WriteFrame(cli, OpHello, helloPayload(Magic, Version))
	cli.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := ReadFrame(cli); err == nil {
		t.Fatal("ServeConn after Shutdown served a frame")
	}
}

// TestAdmissionStatsClamp covers the negative-waiting clamp: a release
// drains the slot before the ticket, so a stats() call in that window
// must not report negative waiters.
func TestAdmissionStatsClamp(t *testing.T) {
	a := newAdmission(2, 2, 0)
	a.slots <- struct{}{} // slot held with no ticket: waiting would be -1
	st := a.stats()
	if st.Waiting != 0 {
		t.Fatalf("Waiting = %d, want clamped 0", st.Waiting)
	}
	<-a.slots
}

// TestEnumStrings covers the unknown-value branches of the debug
// stringers.
func TestEnumStrings(t *testing.T) {
	if s := Phase(99).String(); s != "unknown" {
		t.Errorf("Phase(99) = %q", s)
	}
	if s := Op(0x55).String(); !strings.Contains(s, "55") {
		t.Errorf("Op(0x55) = %q", s)
	}
	if s := Code(999).String(); !strings.Contains(s, "999") {
		t.Errorf("Code(999) = %q", s)
	}
	for ph, want := range map[Phase]string{
		PhaseQueued: "queued", PhaseCompiling: "compiling",
		PhaseExecuting: "executing", PhaseStreaming: "streaming",
	} {
		if got := ph.String(); got != want {
			t.Errorf("Phase %d = %q, want %q", ph, got, want)
		}
	}
}

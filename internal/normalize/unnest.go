// Package normalize implements the SQL-Server-side query simplification
// phase (paper §2.5 step 2a and §5): subquery unnesting and decorrelation,
// constant folding, predicate pushdown, join transitivity closure,
// contradiction detection, outer-join simplification, redundant-join
// elimination, and column pruning. Its output is the normalized logical
// tree inserted as the initial plan into the MEMO.
package normalize

import (
	"fmt"

	"pdwqo/internal/algebra"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// Normalizer rewrites bound trees into normal form. It shares the binder's
// column-ID allocator so new columns never collide.
type Normalizer struct {
	ids interface{ NextID() algebra.ColumnID }
}

// New returns a normalizer minting IDs from the given allocator (usually
// the Binder used to produce the tree).
func New(ids interface{ NextID() algebra.ColumnID }) *Normalizer {
	return &Normalizer{ids: ids}
}

// Normalize applies the full rule pipeline.
func (n *Normalizer) Normalize(t *algebra.Tree) (*algebra.Tree, error) {
	t, err := n.unnest(t)
	if err != nil {
		return nil, err
	}
	t = foldTree(t)
	t = pushdown(t)
	t = n.transitivityClosure(t)
	t = pushdown(t)
	t = detectContradictions(t)
	t = eliminateRedundantJoins(t)
	t = pruneColumns(t)
	t = dropIdentityProjects(t)
	return t, nil
}

// unnest removes every Subquery scalar by rewriting it into joins,
// recursing into the subquery inputs first.
func (n *Normalizer) unnest(t *algebra.Tree) (*algebra.Tree, error) {
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		nc, err := n.unnest(c)
		if err != nil {
			return nil, err
		}
		children[i] = nc
	}
	t = algebra.NewTree(t.Op, children...)

	sel, ok := t.Op.(*algebra.Select)
	if !ok {
		// Subqueries are only supported in filters (WHERE/HAVING).
		for _, s := range algebra.OperatorScalars(t.Op) {
			if algebra.HasSubquery(s) {
				return nil, fmt.Errorf("normalize: subquery in %s is not supported", t.Op.OpName())
			}
		}
		return t, nil
	}

	input := t.Children[0]
	var residual []algebra.Scalar
	for _, conj := range algebra.Conjuncts(sel.Filter) {
		if !algebra.HasSubquery(conj) {
			residual = append(residual, conj)
			continue
		}
		var err error
		input, err = n.applySubqueryConjunct(input, conj)
		if err != nil {
			return nil, err
		}
	}
	if len(residual) > 0 {
		return algebra.NewTree(&algebra.Select{Filter: algebra.AndAll(residual)}, input), nil
	}
	return input, nil
}

// applySubqueryConjunct rewrites one subquery-bearing conjunct over input,
// first unnesting any subqueries nested inside the subquery's own tree.
func (n *Normalizer) applySubqueryConjunct(input *algebra.Tree, conj algebra.Scalar) (*algebra.Tree, error) {
	var walkErr error
	conj = algebra.RewriteScalar(conj, func(x algebra.Scalar) algebra.Scalar {
		sq, ok := x.(*algebra.Subquery)
		if !ok || walkErr != nil {
			return nil
		}
		inner, err := n.unnest(sq.Input)
		if err != nil {
			walkErr = err
			return nil
		}
		return &algebra.Subquery{Kind: sq.Kind, Input: inner, Outer: sq.Outer, Negated: sq.Negated}
	})
	if walkErr != nil {
		return nil, walkErr
	}
	switch e := conj.(type) {
	case *algebra.Subquery:
		switch e.Kind {
		case algebra.SubqueryIn:
			return n.unnestIn(input, e)
		case algebra.SubqueryExists:
			return n.unnestExists(input, e)
		}
	case *algebra.Binary:
		// Comparison against a scalar subquery on either side.
		if sq, ok := e.R.(*algebra.Subquery); ok && sq.Kind == algebra.SubqueryScalar && !algebra.HasSubquery(e.L) {
			return n.unnestScalarCmp(input, e.Op, e.L, sq)
		}
		if sq, ok := e.L.(*algebra.Subquery); ok && sq.Kind == algebra.SubqueryScalar && !algebra.HasSubquery(e.R) {
			return n.unnestScalarCmp(input, e.Op.Flip(), e.R, sq)
		}
	case *algebra.Not:
		if sq, ok := e.E.(*algebra.Subquery); ok {
			flipped := &algebra.Subquery{Kind: sq.Kind, Input: sq.Input, Outer: sq.Outer, Negated: !sq.Negated}
			return n.applySubqueryConjunct(input, flipped)
		}
	}
	return nil, fmt.Errorf("normalize: unsupported subquery pattern in %s", conj.Fingerprint())
}

// unnestIn rewrites `outer [NOT] IN (SELECT col ...)`.
//
// Positive IN becomes an inner join against the de-duplicated subquery
// output (semi-join as join-on-distinct, which frees the memo to reorder
// it — the paper's Q20 plan depends on exactly this shape). NOT IN becomes
// an anti join; like SQL Server's trusted path, we assume non-null keys.
func (n *Normalizer) unnestIn(input *algebra.Tree, sq *algebra.Subquery) (*algebra.Tree, error) {
	sub, err := n.liftCorrelation(sq.Input)
	if err != nil {
		return nil, err
	}
	outCol := sub.tree.OutputCols()[0]
	eq := &algebra.Binary{Op: sqlparser.OpEq, L: sq.Outer, R: algebra.NewColRef(outCol)}
	cond := algebra.AndAll(append([]algebra.Scalar{eq}, sub.lifted...))

	if sq.Negated {
		return algebra.NewTree(&algebra.Join{Kind: algebra.JoinAnti, On: cond}, input, sub.tree), nil
	}
	inner := sub.tree
	if !isUniqueOn(inner, algebra.NewColSet(joinColsOf(cond, inner)...)) {
		// De-duplicate on every inner column referenced by the condition.
		keys := joinColsOf(cond, inner)
		if len(keys) == 0 {
			keys = []algebra.ColumnID{outCol.ID}
		}
		inner = algebra.NewTree(&algebra.GroupBy{Keys: keys}, inner)
	}
	return algebra.NewTree(&algebra.Join{Kind: algebra.JoinInner, On: cond}, input, inner), nil
}

// unnestExists rewrites `[NOT] EXISTS (SELECT ...)` into a semi/anti join
// with the lifted correlation predicates as the join condition.
func (n *Normalizer) unnestExists(input *algebra.Tree, sq *algebra.Subquery) (*algebra.Tree, error) {
	sub, err := n.liftCorrelation(sq.Input)
	if err != nil {
		return nil, err
	}
	cond := algebra.AndAll(sub.lifted)
	kind := algebra.JoinSemi
	if sq.Negated {
		kind = algebra.JoinAnti
	}
	if cond == nil {
		// Uncorrelated EXISTS: keep the semi join with a constant-true
		// condition; the executor treats it as "any row".
		cond = &algebra.Const{Val: types.NewBool(true)}
	}
	return algebra.NewTree(&algebra.Join{Kind: kind, On: cond}, input, sub.tree), nil
}

// unnestScalarCmp rewrites `outerExpr cmp (SELECT agg ...)`.
//
// The correlated form is the paper's Q20 SQ3: the subquery must be an
// aggregate; its correlated equality predicates become group-by keys and
// join predicates (magic decorrelation), and the comparison itself joins
// the aggregate output. The empty-group case is handled by inner-join
// semantics: a missing group yields no match, exactly as the SQL
// comparison against NULL/empty would.
func (n *Normalizer) unnestScalarCmp(input *algebra.Tree, op sqlparser.BinOp, outer algebra.Scalar, sq *algebra.Subquery) (*algebra.Tree, error) {
	if !op.IsComparison() {
		return nil, fmt.Errorf("normalize: scalar subquery under %s is not supported", op)
	}
	sub, err := n.decorrelateAggregate(sq.Input)
	if err != nil {
		return nil, err
	}
	outCol := sub.valueCol
	cmp := &algebra.Binary{Op: op, L: outer, R: algebra.NewColRef(outCol)}
	cond := algebra.AndAll(append(append([]algebra.Scalar{}, sub.lifted...), cmp))
	return algebra.NewTree(&algebra.Join{Kind: algebra.JoinInner, On: cond}, input, sub.tree), nil
}

// liftedSubquery is a subquery tree whose correlated predicates have been
// removed and returned for use as join conditions.
type liftedSubquery struct {
	tree   *algebra.Tree
	lifted []algebra.Scalar
}

// liftCorrelation removes correlated conjuncts (those referencing columns
// not produced inside the subquery) from the subquery's Select nodes and
// exposes the inner columns they mention through the root projection.
func (n *Normalizer) liftCorrelation(t *algebra.Tree) (*liftedSubquery, error) {
	free := algebra.FreeCols(t)
	if len(free) == 0 {
		return &liftedSubquery{tree: t}, nil
	}
	var lifted []algebra.Scalar
	var strip func(node *algebra.Tree, underGroupBy bool) (*algebra.Tree, error)
	strip = func(node *algebra.Tree, underGroupBy bool) (*algebra.Tree, error) {
		children := make([]*algebra.Tree, len(node.Children))
		under := underGroupBy
		if _, ok := node.Op.(*algebra.GroupBy); ok {
			under = true
		}
		for i, c := range node.Children {
			nc, err := strip(c, under)
			if err != nil {
				return nil, err
			}
			children[i] = nc
		}
		node = algebra.NewTree(node.Op, children...)
		sel, ok := node.Op.(*algebra.Select)
		if !ok {
			// Correlations hiding anywhere else are unsupported.
			for _, s := range algebra.OperatorScalars(node.Op) {
				if algebra.ScalarCols(s).Intersects(free) {
					return nil, fmt.Errorf("normalize: correlated column inside %s is not supported", node.Op.OpName())
				}
			}
			return node, nil
		}
		var keep []algebra.Scalar
		for _, conj := range algebra.Conjuncts(sel.Filter) {
			if !algebra.ScalarCols(conj).Intersects(free) {
				keep = append(keep, conj)
				continue
			}
			if underGroupBy {
				return nil, fmt.Errorf("normalize: correlated predicate below an aggregate requires decorrelation")
			}
			lifted = append(lifted, conj)
		}
		if len(keep) == 0 {
			return node.Children[0], nil
		}
		return algebra.NewTree(&algebra.Select{Filter: algebra.AndAll(keep)}, node.Children[0]), nil
	}
	stripped, err := strip(t, false)
	if err != nil {
		return nil, err
	}
	// Expose the inner columns mentioned by lifted predicates.
	need := algebra.NewColSet()
	for _, l := range lifted {
		for id := range algebra.ScalarCols(l) {
			if !free.Has(id) {
				need.Add(id)
			}
		}
	}
	exposed, err := exposeColumns(stripped, need)
	if err != nil {
		return nil, err
	}
	return &liftedSubquery{tree: exposed, lifted: lifted}, nil
}

// decorrelatedAgg is the result of rewriting a correlated aggregate
// subquery: tree computes group keys plus the aggregate value.
type decorrelatedAgg struct {
	tree     *algebra.Tree
	valueCol algebra.ColumnMeta
	lifted   []algebra.Scalar // equality predicates joining keys to outer cols
}

// decorrelateAggregate rewrites a scalar aggregate subquery (correlated or
// not) into a grouped relation.
func (n *Normalizer) decorrelateAggregate(t *algebra.Tree) (*decorrelatedAgg, error) {
	free := algebra.FreeCols(t)

	// Expected shape: Project? over GroupBy(keys=[]) over input.
	proj, hasProj := t.Op.(*algebra.Project)
	gbNode := t
	if hasProj {
		gbNode = t.Children[0]
	}
	gb, ok := gbNode.Op.(*algebra.GroupBy)
	if !ok || len(gb.Keys) != 0 {
		return nil, fmt.Errorf("normalize: scalar subquery must be a scalar aggregate")
	}
	inner := gbNode.Children[0]

	if len(free) == 0 {
		valueCol := t.OutputCols()[0]
		return &decorrelatedAgg{tree: t, valueCol: valueCol}, nil
	}

	// Strip correlated conjuncts below the GroupBy. Each must be an
	// equality between an inner column and an outer column.
	var keyPairs [][2]algebra.ColumnID // [inner, outer]
	var innerMeta []algebra.ColumnMeta
	var strip func(node *algebra.Tree) (*algebra.Tree, error)
	strip = func(node *algebra.Tree) (*algebra.Tree, error) {
		children := make([]*algebra.Tree, len(node.Children))
		for i, c := range node.Children {
			nc, err := strip(c)
			if err != nil {
				return nil, err
			}
			children[i] = nc
		}
		node = algebra.NewTree(node.Op, children...)
		sel, ok := node.Op.(*algebra.Select)
		if !ok {
			for _, s := range algebra.OperatorScalars(node.Op) {
				if algebra.ScalarCols(s).Intersects(free) {
					return nil, fmt.Errorf("normalize: correlated column inside %s is not supported", node.Op.OpName())
				}
			}
			return node, nil
		}
		var keep []algebra.Scalar
		for _, conj := range algebra.Conjuncts(sel.Filter) {
			cols := algebra.ScalarCols(conj)
			if !cols.Intersects(free) {
				keep = append(keep, conj)
				continue
			}
			l, r, ok := algebra.EquiJoinSides(conj)
			if !ok {
				return nil, fmt.Errorf("normalize: correlated predicate %s must be a column equality", conj.Fingerprint())
			}
			innerID, outerID := l, r
			if free.Has(innerID) {
				innerID, outerID = r, l
			}
			if free.Has(innerID) || !free.Has(outerID) {
				return nil, fmt.Errorf("normalize: correlated predicate %s must join inner to outer", conj.Fingerprint())
			}
			keyPairs = append(keyPairs, [2]algebra.ColumnID{innerID, outerID})
			innerMeta = append(innerMeta, findColMeta(node.Children[0], innerID))
		}
		if len(keep) == 0 {
			return node.Children[0], nil
		}
		return algebra.NewTree(&algebra.Select{Filter: algebra.AndAll(keep)}, node.Children[0]), nil
	}
	strippedInner, err := strip(inner)
	if err != nil {
		return nil, err
	}
	if len(keyPairs) == 0 {
		return nil, fmt.Errorf("normalize: correlated aggregate with no correlation keys")
	}

	// Rebuild the GroupBy with the correlation columns as keys.
	keys := make([]algebra.ColumnID, 0, len(keyPairs))
	seen := algebra.NewColSet()
	for _, kp := range keyPairs {
		if !seen.Has(kp[0]) {
			seen.Add(kp[0])
			keys = append(keys, kp[0])
		}
	}
	newGB := algebra.NewTree(&algebra.GroupBy{Keys: keys, Aggs: gb.Aggs}, strippedInner)

	// Rebuild the projection: keep the aggregate value expression and pass
	// the key columns through.
	tree := newGB
	var valueCol algebra.ColumnMeta
	if hasProj {
		defs := make([]algebra.ProjDef, 0, len(proj.Defs)+len(keys))
		defs = append(defs, proj.Defs...)
		for i, k := range keys {
			defs = append(defs, algebra.ProjDef{Expr: algebra.NewColRef(metaFor(innerMeta, i, k)), ID: k, Name: metaFor(innerMeta, i, k).Name})
		}
		tree = algebra.NewTree(&algebra.Project{Defs: defs}, newGB)
		valueCol = tree.OutputCols()[0]
	} else {
		valueCol = newGB.OutputCols()[len(keys)]
	}

	lifted := make([]algebra.Scalar, len(keyPairs))
	for i, kp := range keyPairs {
		lifted[i] = &algebra.Binary{
			Op: sqlparser.OpEq,
			L:  algebra.NewColRef(metaFor(innerMeta, i, kp[0])),
			R:  algebra.NewColRef(algebra.ColumnMeta{ID: kp[1], Name: fmt.Sprintf("c%d", kp[1])}),
		}
	}
	return &decorrelatedAgg{tree: tree, valueCol: valueCol, lifted: lifted}, nil
}

// metaFor returns recorded metadata for a key column, defaulting sanely.
func metaFor(meta []algebra.ColumnMeta, i int, id algebra.ColumnID) algebra.ColumnMeta {
	if i < len(meta) && meta[i].ID == id {
		return meta[i]
	}
	for _, m := range meta {
		if m.ID == id {
			return m
		}
	}
	return algebra.ColumnMeta{ID: id, Name: fmt.Sprintf("c%d", id)}
}

// findColMeta locates column metadata by ID in a subtree's outputs.
func findColMeta(t *algebra.Tree, id algebra.ColumnID) algebra.ColumnMeta {
	for _, c := range t.OutputCols() {
		if c.ID == id {
			return c
		}
	}
	return algebra.ColumnMeta{ID: id, Name: fmt.Sprintf("c%d", id)}
}

// exposeColumns ensures the tree's output includes the given columns,
// extending root projections as needed.
func exposeColumns(t *algebra.Tree, need algebra.ColSet) (*algebra.Tree, error) {
	missing := algebra.NewColSet()
	out := t.OutputColSet()
	for id := range need {
		if !out.Has(id) {
			missing.Add(id)
		}
	}
	if len(missing) == 0 {
		return t, nil
	}
	switch op := t.Op.(type) {
	case *algebra.Project:
		in := t.Children[0].OutputColSet()
		if !missing.SubsetOf(in) {
			child, err := exposeColumns(t.Children[0], missing)
			if err != nil {
				return nil, err
			}
			t = algebra.NewTree(op, child)
			in = t.Children[0].OutputColSet()
			if !missing.SubsetOf(in) {
				return nil, fmt.Errorf("normalize: cannot expose correlated columns through projection")
			}
		}
		defs := append([]algebra.ProjDef{}, op.Defs...)
		for _, id := range missing.Sorted() {
			m := findColMeta(t.Children[0], id)
			defs = append(defs, algebra.ProjDef{Expr: algebra.NewColRef(m), ID: id, Name: m.Name})
		}
		return algebra.NewTree(&algebra.Project{Defs: defs}, t.Children[0]), nil
	case *algebra.Select, *algebra.Sort:
		child, err := exposeColumns(t.Children[0], need)
		if err != nil {
			return nil, err
		}
		return algebra.NewTree(t.Op, child), nil
	default:
		return nil, fmt.Errorf("normalize: cannot expose correlated columns through %s", t.Op.OpName())
	}
}

// joinColsOf returns the inner-side columns referenced by a join condition.
func joinColsOf(cond algebra.Scalar, inner *algebra.Tree) []algebra.ColumnID {
	out := inner.OutputColSet()
	var cols []algebra.ColumnID
	seen := algebra.NewColSet()
	for id := range algebra.ScalarCols(cond) {
		if out.Has(id) && !seen.Has(id) {
			seen.Add(id)
			cols = append(cols, id)
		}
	}
	// Deterministic order.
	set := algebra.NewColSet(cols...)
	return set.Sorted()
}

// isUniqueOn reports whether the tree provably yields at most one row per
// combination of the given columns: group-by keys and primary keys qualify.
func isUniqueOn(t *algebra.Tree, cols algebra.ColSet) bool {
	if len(cols) == 0 {
		return false
	}
	switch op := t.Op.(type) {
	case *algebra.GroupBy:
		keys := algebra.NewColSet(op.Keys...)
		return keys.SubsetOf(cols)
	case *algebra.Get:
		if len(op.Table.PrimaryKey) == 0 {
			return false
		}
		pk := algebra.NewColSet()
		for _, name := range op.Table.PrimaryKey {
			for _, c := range op.Cols {
				if c.Name == name {
					pk.Add(c.ID)
				}
			}
		}
		return len(pk) > 0 && pk.SubsetOf(cols)
	case *algebra.Select:
		return isUniqueOn(t.Children[0], cols)
	case *algebra.Sort:
		return isUniqueOn(t.Children[0], cols)
	case *algebra.Project:
		// Unique through pass-through projections.
		passthru := algebra.NewColSet()
		for _, d := range op.Defs {
			if c, ok := d.Expr.(*algebra.ColRef); ok {
				passthru.Add(c.ID)
			}
		}
		inter := algebra.NewColSet()
		for id := range cols {
			if passthru.Has(id) {
				inter.Add(id)
			}
		}
		return isUniqueOn(t.Children[0], inter)
	}
	return false
}

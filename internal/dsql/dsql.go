// Package dsql implements DSQL plan generation (paper §2.4, §3.4, Figure
// 6): the winning distributed plan from the PDW optimizer is cut at every
// data-movement operation into a serial sequence of steps. Each movement
// becomes a DMS step whose source is a SQL string executed against the
// nodes' local DBMS instances and whose destination is a temp table; the
// final relational segment becomes the Return step streamed to the client.
// Like PDW (and unlike operator-shipping MPPs), nodes receive SQL text,
// which the engine's per-node instances parse and execute themselves.
package dsql

import (
	"fmt"
	"strings"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// StepKind classifies DSQL steps.
type StepKind uint8

// Step kinds.
const (
	// StepMove executes SQL on source nodes and routes the rows into a
	// temp table per the move's kind.
	StepMove StepKind = iota
	// StepReturn executes SQL and streams the result to the client.
	StepReturn
)

// Step is one serially-executed DSQL operation.
type Step struct {
	ID   int
	Kind StepKind

	// SQL is the statement executed against each participating node's
	// local DBMS instance.
	SQL string
	// Where describes which nodes run the SQL: the placement of the
	// segment's inputs.
	Where core.DistKind
	// Idempotent marks steps the engine may retry after a transient
	// failure (carried from core.Option.Idempotent): move steps rerun
	// safely once their partial temp table is dropped, while the Return
	// step streams to the client and cannot be replayed.
	Idempotent bool

	// Move fields (StepMove only).
	MoveKind cost.MoveKind
	HashCol  string // routing column name (c<id>) for Shuffle / Trim
	Dest     string // destination temp table
	DestCols []catalog.Column

	// Estimates carried from the optimizer, for EXPLAIN output.
	Rows, Width, MoveCost float64
}

// EstBytes is the optimizer's predicted byte volume of the step's stream
// (rows × width) — the quantity EXPLAIN ANALYZE reconciles against the
// engine's measured DMS bytes.
func (s Step) EstBytes() float64 { return s.Rows * s.Width }

// Plan is an executable DSQL plan.
type Plan struct {
	Steps []Step
	// OutCols is the client-visible result schema.
	OutCols []algebra.ColumnMeta
	// OrderBy are final merge keys as positions into OutCols; Top limits
	// the client result (0 = no limit). The control node applies both
	// when assembling per-node streams.
	OrderBy []MergeKey
	Top     int64
}

// MergeKey orders the final merge.
type MergeKey struct {
	Pos  int
	Desc bool
}

// String renders the plan in the paper's Figure 7 style.
func (p *Plan) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		switch s.Kind {
		case StepMove:
			fmt.Fprintf(&b, "DSQL step %d: DMS %s", s.ID, s.MoveKind)
			if s.HashCol != "" {
				fmt.Fprintf(&b, "(%s)", s.HashCol)
			}
			fmt.Fprintf(&b, " -> %s  [rows=%.6g cost=%.6g]\n", s.Dest, s.Rows, s.MoveCost)
		case StepReturn:
			fmt.Fprintf(&b, "DSQL step %d: RETURN  [rows=%.6g]\n", s.ID, s.Rows)
		}
		for _, line := range strings.Split(s.SQL, "\n") {
			b.WriteString("    ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Placeholder is the parameter marker rendered into step SQL for a
// constant carrying literal-slot provenance. The NUL delimiters cannot
// occur in generated SQL (identifiers are c<id>/T<n>, literals are
// escaped), so substitution can never corrupt surrounding text and a
// leftover marker is detectable.
func Placeholder(slot int) string {
	return fmt.Sprintf("\x00?%d\x00", slot)
}

// HasAllParamSlots reports whether every one of the n literal slots has
// at least one placeholder surviving in the plan's step SQL. A slot with
// no placeholder means normalization consumed that literal's value while
// compiling (constant folding, contradiction pruning, range merging) —
// the plan is value-dependent and must not be re-bound to different
// constants.
func (p *Plan) HasAllParamSlots(n int) bool {
	for slot := 0; slot < n; slot++ {
		ph := Placeholder(slot)
		found := false
		for _, s := range p.Steps {
			if strings.Contains(s.SQL, ph) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Bind returns a copy of the plan with every slot placeholder replaced
// by texts[slot] (SQL literal text). The receiver — a cached template —
// is not modified; shared read-only fields (OutCols, OrderBy, DestCols)
// are reused.
func (p *Plan) Bind(texts []string) *Plan {
	pairs := make([]string, 0, 2*len(texts))
	for slot, t := range texts {
		pairs = append(pairs, Placeholder(slot), t)
	}
	r := strings.NewReplacer(pairs...)
	out := *p
	out.Steps = make([]Step, len(p.Steps))
	for i, s := range p.Steps {
		s.SQL = r.Replace(s.SQL)
		out.Steps[i] = s
	}
	return &out
}

// Isolate returns a copy of the plan whose temp-table names carry a
// per-execution suffix ("TEMP_ID_1" → "TEMP_ID_1_X42"). Generator-assigned
// temp names restart at 1 for every plan, so two plans — or two executions
// of one cached plan — running concurrently on the same appliance would
// otherwise collide on the nodes' local storage. The engine isolates every
// execution with a fresh ID; plans with no move steps create no temp
// tables and are returned unchanged. Replacement happens on the
// bracket-quoted form ("[TEMP_ID_1]"), so a name can never rewrite a
// longer name it prefixes.
func (p *Plan) Isolate(id uint64) *Plan {
	var pairs []string
	for _, s := range p.Steps {
		if s.Kind == StepMove {
			pairs = append(pairs, "["+s.Dest+"]", "["+isolatedName(s.Dest, id)+"]")
		}
	}
	if len(pairs) == 0 {
		return p
	}
	r := strings.NewReplacer(pairs...)
	out := *p
	out.Steps = make([]Step, len(p.Steps))
	for i, s := range p.Steps {
		s.SQL = r.Replace(s.SQL)
		if s.Kind == StepMove {
			s.Dest = isolatedName(s.Dest, id)
		}
		out.Steps[i] = s
	}
	return &out
}

func isolatedName(dest string, id uint64) string {
	return fmt.Sprintf("%s_X%d", dest, id)
}

// Generate converts an optimized plan into DSQL steps.
func Generate(plan *core.Plan, finalCols []algebra.ColumnMeta) (*Plan, error) {
	g := &generator{
		steps:   map[*core.Option]string{},
		aliases: 0,
	}
	root := plan.Root

	// Peel a root Sort into the final merge spec.
	var orderBy []MergeKey
	var top int64
	if s, ok := sortOf(root); ok {
		top = s.Top
		for _, k := range s.Keys {
			pos := -1
			for i, c := range finalCols {
				if c.ID == k.ID {
					pos = i
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("dsql: sort key c%d not in output", k.ID)
			}
			orderBy = append(orderBy, MergeKey{Pos: pos, Desc: k.Desc})
		}
	}

	sql, err := g.sqlFor(root)
	if err != nil {
		return nil, err
	}
	final := g.wrapFinal(sql, root, finalCols, top)
	g.plan.Steps = append(g.plan.Steps, Step{
		ID:    len(g.plan.Steps),
		Kind:  StepReturn,
		SQL:   final,
		Where: root.Dist.Kind,
		// The Return step streams rows to the client as they merge;
		// replaying it would duplicate delivered rows.
		Idempotent: false,
		Rows:       root.Rows,
		Width:      root.Width,
	})
	g.plan.OutCols = finalCols
	g.plan.OrderBy = orderBy
	g.plan.Top = top
	return &g.plan, nil
}

// sortOf finds a Sort payload at the root (possibly beneath projections).
func sortOf(o *core.Option) (*algebra.Sort, bool) {
	for cur := o; cur != nil; {
		if cur.Move != nil {
			cur = cur.Inputs[0]
			continue
		}
		switch op := cur.Op.(type) {
		case *algebra.Sort:
			return op, true
		case *algebra.Project:
			if len(cur.Inputs) == 1 {
				cur = cur.Inputs[0]
				continue
			}
			return nil, false
		default:
			return nil, false
		}
	}
	return nil, false
}

type generator struct {
	plan    Plan
	steps   map[*core.Option]string // move option → temp table name
	aliases int
	temps   int
}

func (g *generator) nextAlias() string {
	g.aliases++
	return fmt.Sprintf("T%d", g.aliases)
}

// colName is the canonical column name used inside DSQL text and temp
// tables: c<id>, unambiguous across self-joins and reshapings.
func colName(id algebra.ColumnID) string { return fmt.Sprintf("c%d", id) }

// sqlFor renders the relational segment rooted at o as a SELECT statement
// whose output columns are named c<id>. Move nodes below o become steps.
func (g *generator) sqlFor(o *core.Option) (string, error) {
	if o.Move != nil {
		dest, err := g.emitMove(o)
		if err != nil {
			return "", err
		}
		cols := make([]string, len(o.OutCols))
		for i, c := range o.OutCols {
			cols[i] = colName(c.ID)
		}
		return fmt.Sprintf("SELECT %s FROM [tempdb].[%s]", strings.Join(cols, ", "), dest), nil
	}

	switch op := o.Op.(type) {
	case *algebra.Get:
		alias := g.nextAlias()
		cols := make([]string, len(op.Cols))
		for i, c := range op.Cols {
			cols[i] = fmt.Sprintf("%s.[%s] AS %s", alias, c.Name, colName(c.ID))
		}
		return fmt.Sprintf("SELECT %s FROM [dbo].[%s] AS %s",
			strings.Join(cols, ", "), op.Table.Name, alias), nil

	case *algebra.Values:
		return g.valuesSQL(op)

	case *algebra.Select:
		childSQL, err := g.sqlFor(o.Inputs[0])
		if err != nil {
			return "", err
		}
		alias := g.nextAlias()
		res := singleResolver(alias, o.Inputs[0].OutCols)
		pred, err := renderScalar(op.Filter, res)
		if err != nil {
			return "", err
		}
		cols := passThrough(alias, o.OutCols)
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s WHERE %s", cols, childSQL, alias, pred), nil

	case *algebra.Project:
		childSQL, err := g.sqlFor(o.Inputs[0])
		if err != nil {
			return "", err
		}
		alias := g.nextAlias()
		res := singleResolver(alias, o.Inputs[0].OutCols)
		defs := make([]string, len(op.Defs))
		for i, d := range op.Defs {
			e, err := renderScalar(d.Expr, res)
			if err != nil {
				return "", err
			}
			defs[i] = fmt.Sprintf("%s AS %s", e, colName(d.ID))
		}
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s", strings.Join(defs, ", "), childSQL, alias), nil

	case *algebra.Join:
		return g.joinSQL(o, op)

	case *algebra.GroupBy:
		childSQL, err := g.sqlFor(o.Inputs[0])
		if err != nil {
			return "", err
		}
		alias := g.nextAlias()
		res := singleResolver(alias, o.Inputs[0].OutCols)
		var items []string
		var keys []string
		for _, k := range op.Keys {
			items = append(items, fmt.Sprintf("%s.%s AS %s", alias, colName(k), colName(k)))
			keys = append(keys, alias+"."+colName(k))
		}
		for _, a := range op.Aggs {
			e, err := renderAgg(a, res)
			if err != nil {
				return "", err
			}
			items = append(items, fmt.Sprintf("%s AS %s", e, colName(a.ID)))
		}
		sql := fmt.Sprintf("SELECT %s FROM (%s) AS %s", strings.Join(items, ", "), childSQL, alias)
		if len(keys) > 0 {
			sql += " GROUP BY " + strings.Join(keys, ", ")
		}
		return sql, nil

	case *algebra.Sort:
		// Ordering is applied by the Return merge; TOP inside a segment is
		// only safe with an accompanying local ORDER BY.
		childSQL, err := g.sqlFor(o.Inputs[0])
		if err != nil {
			return "", err
		}
		if op.Top <= 0 {
			return childSQL, nil
		}
		alias := g.nextAlias()
		cols := passThrough(alias, o.OutCols)
		order := ""
		if len(op.Keys) > 0 {
			parts := make([]string, len(op.Keys))
			for i, k := range op.Keys {
				d := ""
				if k.Desc {
					d = " DESC"
				}
				parts[i] = alias + "." + colName(k.ID) + d
			}
			order = " ORDER BY " + strings.Join(parts, ", ")
		}
		return fmt.Sprintf("SELECT TOP %d %s FROM (%s) AS %s%s", op.Top, cols, childSQL, alias, order), nil

	case *algebra.UnionAll:
		// Both inputs expose identical column IDs by construction, so the
		// textual union is well-typed when re-parsed by a node.
		leftSQL, err := g.sqlFor(o.Inputs[0])
		if err != nil {
			return "", err
		}
		rightSQL, err := g.sqlFor(o.Inputs[1])
		if err != nil {
			return "", err
		}
		return leftSQL + " UNION ALL " + rightSQL, nil
	}
	return "", fmt.Errorf("dsql: cannot render %T", o.Op)
}

// valuesSQL renders a literal relation. Empty Values become a FROM-less
// select with a false predicate.
func (g *generator) valuesSQL(op *algebra.Values) (string, error) {
	items := make([]string, len(op.Cols))
	if len(op.Rows) == 0 {
		for i, c := range op.Cols {
			items[i] = fmt.Sprintf("CAST(NULL AS %s) AS %s", typeName(c.Type), colName(c.ID))
		}
		sel := "SELECT 1 AS dummy"
		if len(items) > 0 {
			sel = "SELECT " + strings.Join(items, ", ")
		}
		return sel + " WHERE 1 = 0", nil
	}
	if len(op.Rows) == 1 {
		for i, c := range op.Cols {
			items[i] = fmt.Sprintf("%s AS %s", op.Rows[0][i].SQLLiteral(), colName(c.ID))
		}
		if len(items) == 0 {
			return "SELECT 1 AS dummy", nil
		}
		return "SELECT " + strings.Join(items, ", "), nil
	}
	return "", fmt.Errorf("dsql: multi-row Values generation is not supported")
}

// typeName maps a kind to SQL type syntax accepted by the engine's parser.
func typeName(k types.Kind) string {
	switch k {
	case types.KindBool:
		return "BIT"
	case types.KindInt:
		return "BIGINT"
	case types.KindFloat:
		return "FLOAT"
	case types.KindString:
		return "VARCHAR"
	case types.KindDate:
		return "DATE"
	default:
		return "BIGINT"
	}
}

// joinSQL renders joins: inner/outer joins use JOIN syntax; semi and anti
// joins render as (NOT) EXISTS so the per-node engine re-derives them.
func (g *generator) joinSQL(o *core.Option, op *algebra.Join) (string, error) {
	leftSQL, err := g.sqlFor(o.Inputs[0])
	if err != nil {
		return "", err
	}
	rightSQL, err := g.sqlFor(o.Inputs[1])
	if err != nil {
		return "", err
	}
	la, ra := g.nextAlias(), g.nextAlias()
	res := pairResolver(la, o.Inputs[0].OutCols, ra, o.Inputs[1].OutCols)

	switch op.Kind {
	case algebra.JoinSemi, algebra.JoinAnti:
		cols := passThrough(la, o.OutCols)
		pred := "1 = 1"
		if op.On != nil {
			pred, err = renderScalar(op.On, res)
			if err != nil {
				return "", err
			}
		}
		not := ""
		if op.Kind == algebra.JoinAnti {
			not = "NOT "
		}
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s WHERE %sEXISTS (SELECT 1 FROM (%s) AS %s WHERE %s)",
			cols, leftSQL, la, not, rightSQL, ra, pred), nil

	case algebra.JoinCross:
		cols := passThrough2(la, o.Inputs[0].OutCols, ra, o.Inputs[1].OutCols)
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s CROSS JOIN (%s) AS %s",
			cols, leftSQL, la, rightSQL, ra), nil

	default:
		kw := "INNER JOIN"
		switch op.Kind {
		case algebra.JoinLeftOuter:
			kw = "LEFT JOIN"
		case algebra.JoinFullOuter:
			kw = "FULL JOIN"
		}
		pred := "1 = 1"
		if op.On != nil {
			pred, err = renderScalar(op.On, res)
			if err != nil {
				return "", err
			}
		}
		cols := passThrough2(la, o.Inputs[0].OutCols, ra, o.Inputs[1].OutCols)
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s %s (%s) AS %s ON %s",
			cols, leftSQL, la, kw, rightSQL, ra, pred), nil
	}
}

// emitMove materializes the move option as a DSQL step, returning the temp
// table name (memoized: shared subplans materialize once).
func (g *generator) emitMove(o *core.Option) (string, error) {
	if dest, ok := g.steps[o]; ok {
		return dest, nil
	}
	src := o.Inputs[0]
	sql, err := g.sqlFor(src)
	if err != nil {
		return "", err
	}
	g.temps++
	dest := fmt.Sprintf("TEMP_ID_%d", g.temps)
	destCols := make([]catalog.Column, len(o.OutCols))
	for i, c := range o.OutCols {
		destCols[i] = catalog.Column{Name: colName(c.ID), Type: c.Type}
	}
	hashCol := ""
	if o.Move.Kind == cost.Shuffle || o.Move.Kind == cost.Trim {
		hashCol = colName(o.Move.Col)
	}
	g.plan.Steps = append(g.plan.Steps, Step{
		ID:         len(g.plan.Steps),
		Kind:       StepMove,
		SQL:        sql,
		Where:      src.Dist.Kind,
		Idempotent: o.Idempotent(),
		MoveKind:   o.Move.Kind,
		HashCol:    hashCol,
		Dest:       dest,
		DestCols:   destCols,
		Rows:       o.Rows,
		Width:      o.Width,
		MoveCost:   o.DMSCost - src.DMSCost,
	})
	g.steps[o] = dest
	return dest, nil
}

// wrapFinal renders the Return step SQL: the final segment with client-
// facing column names and, when ordered, a per-node ORDER BY for the merge.
func (g *generator) wrapFinal(sql string, root *core.Option, finalCols []algebra.ColumnMeta, top int64) string {
	alias := g.nextAlias()
	items := make([]string, len(finalCols))
	for i, c := range finalCols {
		name := c.Name
		if name == "" {
			name = colName(c.ID)
		}
		items[i] = fmt.Sprintf("%s.%s AS [%s]", alias, colName(c.ID), name)
	}
	out := fmt.Sprintf("SELECT %s FROM (%s) AS %s", strings.Join(items, ", "), sql, alias)
	_ = top
	_ = root
	return out
}

// passThrough renders "alias.cN AS cN" for each column.
func passThrough(alias string, cols []algebra.ColumnMeta) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%s.%s AS %s", alias, colName(c.ID), colName(c.ID))
	}
	return strings.Join(parts, ", ")
}

// passThrough2 renders pass-throughs from two inputs.
func passThrough2(la string, lcols []algebra.ColumnMeta, ra string, rcols []algebra.ColumnMeta) string {
	l := passThrough(la, lcols)
	r := passThrough(ra, rcols)
	if l == "" {
		return r
	}
	if r == "" {
		return l
	}
	return l + ", " + r
}

// --- Scalar rendering ---

// resolver maps a column ID to its qualified SQL name.
type resolver func(algebra.ColumnID) (string, error)

func singleResolver(alias string, cols []algebra.ColumnMeta) resolver {
	set := algebra.NewColSet()
	for _, c := range cols {
		set.Add(c.ID)
	}
	return func(id algebra.ColumnID) (string, error) {
		if !set.Has(id) {
			return "", fmt.Errorf("dsql: column c%d not in scope", id)
		}
		return alias + "." + colName(id), nil
	}
}

func pairResolver(la string, lcols []algebra.ColumnMeta, ra string, rcols []algebra.ColumnMeta) resolver {
	lset := algebra.NewColSet()
	for _, c := range lcols {
		lset.Add(c.ID)
	}
	rset := algebra.NewColSet()
	for _, c := range rcols {
		rset.Add(c.ID)
	}
	return func(id algebra.ColumnID) (string, error) {
		if lset.Has(id) {
			return la + "." + colName(id), nil
		}
		if rset.Has(id) {
			return ra + "." + colName(id), nil
		}
		return "", fmt.Errorf("dsql: column c%d not in scope", id)
	}
}

// renderScalar renders a bound expression as SQL text in the engine's
// dialect.
func renderScalar(e algebra.Scalar, res resolver) (string, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		return res(x.ID)
	case *algebra.Const:
		if slot, ok := x.Slot(); ok {
			return Placeholder(slot), nil
		}
		return x.Val.SQLLiteral(), nil
	case *algebra.Binary:
		l, err := renderScalar(x.L, res)
		if err != nil {
			return "", err
		}
		r, err := renderScalar(x.R, res)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", l, x.Op, r), nil
	case *algebra.Not:
		inner, err := renderScalar(x.E, res)
		if err != nil {
			return "", err
		}
		return "NOT (" + inner + ")", nil
	case *algebra.Neg:
		inner, err := renderScalar(x.E, res)
		if err != nil {
			return "", err
		}
		return "(-" + inner + ")", nil
	case *algebra.IsNull:
		inner, err := renderScalar(x.E, res)
		if err != nil {
			return "", err
		}
		if x.Negated {
			return inner + " IS NOT NULL", nil
		}
		return inner + " IS NULL", nil
	case *algebra.Like:
		inner, err := renderScalar(x.E, res)
		if err != nil {
			return "", err
		}
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return fmt.Sprintf("%s %sLIKE %s", inner, n, types.NewString(x.Pattern).SQLLiteral()), nil
	case *algebra.InList:
		inner, err := renderScalar(x.E, res)
		if err != nil {
			return "", err
		}
		parts := make([]string, len(x.List))
		for i, el := range x.List {
			s, err := renderScalar(el, res)
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return fmt.Sprintf("%s %sIN (%s)", inner, n, strings.Join(parts, ", ")), nil
	case *algebra.Func:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			// DATEADD's part argument renders bare.
			if i == 0 && x.Name == "DATEADD" {
				if c, ok := a.(*algebra.Const); ok && c.Val.Kind() == types.KindString {
					args[i] = c.Val.Str()
					continue
				}
			}
			s, err := renderScalar(a, res)
			if err != nil {
				return "", err
			}
			args[i] = s
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", ")), nil
	case *algebra.Case:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range x.Whens {
			c, err := renderScalar(w.Cond, res)
			if err != nil {
				return "", err
			}
			t, err := renderScalar(w.Then, res)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " WHEN %s THEN %s", c, t)
		}
		if x.Else != nil {
			e2, err := renderScalar(x.Else, res)
			if err != nil {
				return "", err
			}
			b.WriteString(" ELSE " + e2)
		}
		b.WriteString(" END")
		return b.String(), nil
	case *algebra.Cast:
		inner, err := renderScalar(x.E, res)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("CAST(%s AS %s)", inner, typeName(x.To)), nil
	default:
		return "", fmt.Errorf("dsql: cannot render scalar %T", e)
	}
}

// renderAgg renders an aggregate call.
func renderAgg(a algebra.AggDef, res resolver) (string, error) {
	if a.Arg == nil {
		return "COUNT(*)", nil
	}
	arg, err := renderScalar(a.Arg, res)
	if err != nil {
		return "", err
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Func, d, arg), nil
}

// MakeBinary builds a binary scalar for helpers/tests.
func MakeBinary(op sqlparser.BinOp, l, r algebra.Scalar) algebra.Scalar {
	return &algebra.Binary{Op: op, L: l, R: r}
}

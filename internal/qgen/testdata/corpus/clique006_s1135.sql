SELECT MIN(k3) AS mn, MAX(v0) AS mx, COUNT(*) AS cnt
FROM cl00, cl01, cl02, cl03, cl04, cl05
WHERE c0 = c1
  AND c0 = c2
  AND c0 = c3
  AND c0 = c4
  AND c0 = c5
  AND c1 = c2
  AND c1 = c3
  AND c1 = c4
  AND c1 = c5
  AND c2 = c3
  AND c2 = c4
  AND c2 = c5
  AND c3 = c4
  AND c3 = c5
  AND c4 = c5
  AND v4 <= 564
  AND v5 <= 819

package exec

// Vectorized operator runtime: a pull-based pipeline of batch-producing
// operators over the typed columnar format in internal/vec. The operator
// set mirrors the row engine exactly — same output ordering contracts
// (filters preserve order, hash joins emit left order × build-insertion
// order, GroupBy emits first-seen groups, sorts are stable), same error
// texts, same aggregate accumulation (shared aggState) — so the two
// engines are byte-for-byte interchangeable behind the DSQL step
// contract. Rows stay the currency of data movement: RunVec materializes
// its final batches back into a row Relation.

import (
	"fmt"

	"pdwqo/internal/algebra"
	"pdwqo/internal/types"
	"pdwqo/internal/vec"
)

// ColSource resolves a base-table scan into the table's columnar mirror
// in full stored column order.
type ColSource func(name string) (*vec.Table, error)

// RunVec executes a bound logical tree with the vectorized engine.
func RunVec(t *algebra.Tree, src ColSource) (*Relation, error) {
	return RunVecStats(t, src, nil)
}

// RunVecStats executes like RunVec and tallies per-operator work into st
// (nil disables collection). Ops/Rows/ScanRows tallies match the row
// engine's exactly; Batches additionally counts emitted column batches.
func RunVecStats(t *algebra.Tree, src ColSource, st *Stats) (*Relation, error) {
	n, err := buildVec(t, src, st)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: n.cols()}
	var batches []*vec.Batch
	total := 0
	for {
		b, err := n.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		batches = append(batches, b)
		total += b.N
	}
	if total == 0 {
		return out, nil
	}
	// Materialize once at end of stream: one backing array and one row
	// slice sized to the exact result, filled column-major per batch.
	w := len(out.Cols)
	backing := make([]types.Value, total*w)
	out.Rows = make([]types.Row, 0, total)
	off := 0
	for _, b := range batches {
		for c, v := range b.Cols {
			for i := 0; i < b.N; i++ {
				backing[(off+i)*w+c] = v.At(i)
			}
		}
		for i := 0; i < b.N; i++ {
			base := (off + i) * w
			out.Rows = append(out.Rows, types.Row(backing[base:base+w:base+w]))
		}
		off += b.N
	}
	return out, nil
}

// vecNode is one pull-based operator: next returns the following batch,
// or nil at end of stream.
type vecNode interface {
	cols() []algebra.ColumnMeta
	next() (*vec.Batch, error)
}

// statNode wraps an operator with work tallying: rows and batches are
// accumulated as they stream past and recorded once at end of stream, so
// a completed operator contributes exactly the row engine's per-operator
// counts (an errored pipeline records nothing; the engine discards the
// attempt's stats anyway).
type statNode struct {
	inner   vecNode
	st      *Stats
	op      algebra.Operator
	rows    int64
	batches int64
	done    bool
}

func (s *statNode) cols() []algebra.ColumnMeta { return s.inner.cols() }

func (s *statNode) next() (*vec.Batch, error) {
	b, err := s.inner.next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		if !s.done {
			s.done = true
			s.st.recordCounts(s.op, s.rows, s.batches)
		}
		return nil, nil
	}
	s.rows += int64(b.N)
	s.batches++
	return b, nil
}

// buildVec compiles a bound tree into an operator pipeline.
func buildVec(t *algebra.Tree, src ColSource, st *Stats) (vecNode, error) {
	var n vecNode
	switch op := t.Op.(type) {
	case *algebra.Get:
		n = &vecScan{op: op, src: src}
	case *algebra.Values:
		n = &vecValues{op: op}
	case *algebra.Select:
		in, err := buildVec(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		n = &vecFilter{op: op, in: in, ve: newVecEnv(in.cols())}
	case *algebra.Project:
		in, err := buildVec(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		n = &vecProject{op: op, in: in, out: t.OutputCols(), ve: newVecEnv(in.cols())}
	case *algebra.Join:
		l, err := buildVec(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		r, err := buildVec(t.Children[1], src, st)
		if err != nil {
			return nil, err
		}
		n = newVecJoin(op, l, r)
	case *algebra.GroupBy:
		in, err := buildVec(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		n = &vecGroup{op: op, in: in, out: t.OutputCols(), ve: newVecEnv(in.cols())}
	case *algebra.Sort:
		in, err := buildVec(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		n = &vecSort{op: op, in: in}
	case *algebra.UnionAll:
		l, err := buildVec(t.Children[0], src, st)
		if err != nil {
			return nil, err
		}
		r, err := buildVec(t.Children[1], src, st)
		if err != nil {
			return nil, err
		}
		n = &vecUnion{l: l, r: r}
	default:
		return nil, fmt.Errorf("exec: cannot execute %T", t.Op)
	}
	if st != nil {
		n = &statNode{inner: n, st: st, op: t.Op}
	}
	return n, nil
}

// batchRows appends a batch's rows, boxed, onto dst. One backing array
// serves the whole batch and values fill column-major, so materializing
// costs one allocation per batch rather than one per row.
func batchRows(b *vec.Batch, dst []types.Row) []types.Row {
	w := len(b.Cols)
	backing := make([]types.Value, b.N*w)
	for c, v := range b.Cols {
		for i := 0; i < b.N; i++ {
			backing[i*w+c] = v.At(i)
		}
	}
	for i := 0; i < b.N; i++ {
		dst = append(dst, types.Row(backing[i*w:(i+1)*w:(i+1)*w]))
	}
	return dst
}

// gatherBatch gathers every column of a batch under one selection.
func gatherBatch(b *vec.Batch, sel []int32) *vec.Batch {
	out := &vec.Batch{N: len(sel), Cols: make([]*vec.Vec, len(b.Cols))}
	for i, v := range b.Cols {
		out.Cols[i] = v.Gather(sel)
	}
	return out
}

// vecScan windows batches out of a table's columnar mirror: BatchSize is
// a multiple of 64, so every window is a zero-copy bitmap-aligned slice.
type vecScan struct {
	op   *algebra.Get
	src  ColSource
	init bool
	vecs []*vec.Vec // stored vectors in (possibly pruned) op.Cols order
	n    int
	pos  int
}

func (s *vecScan) cols() []algebra.ColumnMeta { return s.op.Cols }

func (s *vecScan) next() (*vec.Batch, error) {
	if !s.init {
		t, err := s.src(s.op.Table.Name)
		if err != nil {
			return nil, err
		}
		s.vecs = make([]*vec.Vec, len(s.op.Cols))
		for i, c := range s.op.Cols {
			found := -1
			for j, name := range t.Names {
				if equalFold(name, c.Name) {
					found = j
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("exec: column %q missing from stored %q", c.Name, s.op.Table.Name)
			}
			s.vecs[i] = t.Cols[found]
		}
		s.n = t.N
		s.init = true
	}
	if s.pos >= s.n {
		return nil, nil
	}
	hi := s.pos + vec.BatchSize
	if hi > s.n {
		hi = s.n
	}
	b := &vec.Batch{N: hi - s.pos, Cols: make([]*vec.Vec, len(s.vecs))}
	for i, v := range s.vecs {
		b.Cols[i] = v.Window(s.pos, hi)
	}
	s.pos = hi
	return b, nil
}

// vecValues emits a literal relation in BatchSize chunks.
type vecValues struct {
	op  *algebra.Values
	pos int
}

func (v *vecValues) cols() []algebra.ColumnMeta { return v.op.Cols }

func (v *vecValues) next() (*vec.Batch, error) {
	if v.pos >= len(v.op.Rows) {
		return nil, nil
	}
	hi := v.pos + vec.BatchSize
	if hi > len(v.op.Rows) {
		hi = len(v.op.Rows)
	}
	b := &vec.Batch{N: hi - v.pos, Cols: make([]*vec.Vec, len(v.op.Cols))}
	for c := range v.op.Cols {
		col := &vec.Vec{}
		for i := v.pos; i < hi; i++ {
			col.Append(v.op.Rows[i][c])
		}
		b.Cols[c] = col
	}
	v.pos = hi
	return b, nil
}

// vecFilter evaluates the predicate over each input batch and gathers the
// selected rows, preserving input order. Batches the predicate empties
// are skipped, not emitted.
type vecFilter struct {
	op *algebra.Select
	in vecNode
	ve *vecEnv
}

func (f *vecFilter) cols() []algebra.ColumnMeta { return f.in.cols() }

func (f *vecFilter) next() (*vec.Batch, error) {
	for {
		b, err := f.in.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		pv, err := evalVec(f.op.Filter, f.ve, b, nil)
		if err != nil {
			return nil, err
		}
		sel, err := truthySel(pv, b.N)
		if err != nil {
			return nil, fmt.Errorf("exec: WHERE predicate: %w", err)
		}
		if len(sel) == b.N {
			return b, nil
		}
		if len(sel) > 0 {
			return gatherBatch(b, sel), nil
		}
	}
}

// vecProject computes each projection definition as one vector per batch.
type vecProject struct {
	op  *algebra.Project
	in  vecNode
	out []algebra.ColumnMeta
	ve  *vecEnv
}

func (p *vecProject) cols() []algebra.ColumnMeta { return p.out }

func (p *vecProject) next() (*vec.Batch, error) {
	b, err := p.in.next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, nil
	}
	nb := &vec.Batch{N: b.N, Cols: make([]*vec.Vec, len(p.op.Defs))}
	for i, d := range p.op.Defs {
		v, err := evalVec(d.Expr, p.ve, b, nil)
		if err != nil {
			return nil, err
		}
		nb.Cols[i] = v
	}
	return nb, nil
}

// vecJoin joins batch streams. The right (build) side is drained into one
// concatenated columnar batch; equi-key joins probe a hash table built
// over it, other joins fall back to a per-left-row nested loop over the
// same batch. Output order matches the row engine: left order × bucket
// insertion (= right row) order, with outer padding and full-outer
// unmatched-right emission in right order at the end.
type vecJoin struct {
	op       *algebra.Join
	left     vecNode
	right    vecNode
	outCols  []algebra.ColumnMeta
	pairCols []algebra.ColumnMeta
	lWidth   int
	useHash  bool
	lKeys    []int
	rKeys    []int
	residual algebra.Scalar

	// The hash table is a chain layout: the open-addressing table holds
	// only the first build row per key and chainNext threads the rest, so
	// building allocates two flat arrays and nothing per key. Chains are
	// threaded in ascending row order, preserving the bucket-insertion
	// output order contract. intKeys records whether table keys are raw
	// int64 payloads (single typed-INT key: bucket = equality, no confirm
	// pass) or composite hashes (probe confirms with vecKeysEqual).
	init         bool
	rt           *vec.Batch
	build        *joinTable
	intKeys      bool
	chainNext    []int32
	rightMatched []bool
	pairVE       *vecEnv
	keyBuf       []types.Value

	leftDone bool
	tailDone bool
}

func newVecJoin(op *algebra.Join, l, r vecNode) *vecJoin {
	lCols, rCols := l.cols(), r.cols()
	j := &vecJoin{
		op:      op,
		left:    l,
		right:   r,
		outCols: joinOutCols(op, lCols, rCols),
		lWidth:  len(lCols),
	}
	j.pairCols = make([]algebra.ColumnMeta, 0, len(lCols)+len(rCols))
	j.pairCols = append(j.pairCols, lCols...)
	j.pairCols = append(j.pairCols, rCols...)
	lKeys, rKeys, residual := splitJoinCond(op.On, lCols, rCols)
	if len(lKeys) > 0 {
		j.useHash = true
		j.lKeys, j.rKeys = lKeys, rKeys
		j.residual = algebra.AndAll(residual)
		j.keyBuf = make([]types.Value, len(lKeys))
	}
	return j
}

func (j *vecJoin) cols() []algebra.ColumnMeta { return j.outCols }

func (j *vecJoin) next() (*vec.Batch, error) {
	if !j.init {
		if err := j.buildRight(); err != nil {
			return nil, err
		}
		j.init = true
	}
	for !j.leftDone {
		lb, err := j.left.next()
		if err != nil {
			return nil, err
		}
		if lb == nil {
			j.leftDone = true
			break
		}
		ob, err := j.joinBatch(lb)
		if err != nil {
			return nil, err
		}
		if ob != nil && ob.N > 0 {
			return ob, nil
		}
	}
	if j.op.Kind == algebra.JoinFullOuter && !j.tailDone {
		j.tailDone = true
		if ob := j.unmatchedRight(); ob != nil && ob.N > 0 {
			return ob, nil
		}
	}
	return nil, nil
}

// buildRight drains the build side into one concatenated batch and, for
// equi-key joins, a hash table over the non-NULL keys (SQL equality never
// matches NULLs, so NULL-keyed rows stay out of the table — they still
// surface through full-outer unmatched emission).
func (j *vecJoin) buildRight() error {
	rCols := len(j.pairCols) - j.lWidth
	j.rt = &vec.Batch{Cols: make([]*vec.Vec, rCols)}
	for c := range j.rt.Cols {
		j.rt.Cols[c] = &vec.Vec{}
	}
	for {
		b, err := j.right.next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for c := range b.Cols {
			j.rt.Cols[c].Extend(b.Cols[c])
		}
		j.rt.N += b.N
	}
	j.rightMatched = make([]bool, j.rt.N)
	if !j.useHash {
		return nil
	}
	j.chainNext = make([]int32, j.rt.N)
	j.build = newJoinTable(j.rt.N)
	// Single BIGINT key over a typed build column: the table keys on the
	// int64 payload itself, so bucket membership IS equality and the probe
	// needs no confirmation pass. Numeric cross-kind probes (a FLOAT that
	// equals an integer) convert with an exactness guard, replicating
	// types.Compare's float-coerced equality. Rows insert in descending
	// order so each chain reads out ascending.
	if len(j.rKeys) == 1 {
		kv := j.rt.Cols[j.rKeys[0]]
		if !kv.Mixed && kv.Kind == types.KindInt {
			j.intKeys = true
			for ri := j.rt.N - 1; ri >= 0; ri-- {
				if !kv.IsNull(ri) {
					j.build.insert(uint64(kv.I64[ri]), int32(ri), j.chainNext)
				}
			}
			return nil
		}
	}
	for ri := j.rt.N - 1; ri >= 0; ri-- {
		if k, ok := vecKeyOf(j.rt, ri, j.rKeys, j.keyBuf); ok {
			j.build.insert(k, int32(ri), j.chainNext)
		}
	}
	return nil
}

// joinTable is a linear-probing hash table from a 64-bit key to the head
// of a build-row chain. Slots store the full key, so distinct keys never
// share a chain; when keys are composite hashes, hash collisions share
// one chain exactly as they shared one map bucket, and the probe-side
// confirmation filters them.
type joinTable struct {
	shift uint
	keys  []uint64
	heads []int32 // -1 = empty slot
}

func newJoinTable(n int) *joinTable {
	sz, lg := 16, uint(4)
	for sz < 2*n {
		sz <<= 1
		lg++
	}
	t := &joinTable{shift: 64 - lg, keys: make([]uint64, sz), heads: make([]int32, sz)}
	for i := range t.heads {
		t.heads[i] = -1
	}
	return t
}

// fibMul spreads keys across the high bits (Fibonacci hashing), which
// linear probing then shifts down into a slot index.
const fibMul = 0x9E3779B97F4A7C15

func (t *joinTable) insert(k uint64, ri int32, chainNext []int32) {
	i := int((k * fibMul) >> t.shift)
	for {
		if t.heads[i] < 0 {
			t.keys[i] = k
			t.heads[i] = ri
			chainNext[ri] = -1
			return
		}
		if t.keys[i] == k {
			chainNext[ri] = t.heads[i]
			t.heads[i] = ri
			return
		}
		i++
		if i == len(t.heads) {
			i = 0
		}
	}
}

func (t *joinTable) find(k uint64) (int32, bool) {
	i := int((k * fibMul) >> t.shift)
	for {
		h := t.heads[i]
		if h < 0 {
			return 0, false
		}
		if t.keys[i] == k {
			return h, true
		}
		i++
		if i == len(t.heads) {
			i = 0
		}
	}
}

// intKeyFromFloat maps a FLOAT probe value onto the typed-INT build key
// domain: only an exactly-integral float inside the int64 range can
// equal a BIGINT under types.Compare's float coercion.
func intKeyFromFloat(f float64) (int64, bool) {
	if f != float64(int64(f)) || f < -9.2233720368547758e18 || f >= 9.2233720368547758e18 {
		return 0, false
	}
	return int64(f), true
}

// probeInt probes the typed-INT build table for one left batch.
func (j *vecJoin) probeInt(lb *vec.Batch) (pl, pr []int32) {
	pl = make([]int32, 0, lb.N)
	pr = make([]int32, 0, lb.N)
	kv := lb.Cols[j.lKeys[0]]
	if !kv.Mixed {
		switch kv.Kind {
		case types.KindInt:
			for li := 0; li < lb.N; li++ {
				if kv.IsNull(li) {
					continue
				}
				if head, ok := j.build.find(uint64(kv.I64[li])); ok {
					for ri := head; ri >= 0; ri = j.chainNext[ri] {
						pl = append(pl, int32(li))
						pr = append(pr, ri)
					}
				}
			}
			return pl, pr
		case types.KindFloat:
			for li := 0; li < lb.N; li++ {
				if kv.IsNull(li) {
					continue
				}
				k, ok := intKeyFromFloat(kv.F64[li])
				if !ok {
					continue
				}
				if head, ok := j.build.find(uint64(k)); ok {
					for ri := head; ri >= 0; ri = j.chainNext[ri] {
						pl = append(pl, int32(li))
						pr = append(pr, ri)
					}
				}
			}
			return pl, pr
		default:
			// DATE/BIT/STRING/all-NULL probes are never comparable with a
			// BIGINT build key, so nothing matches.
			return nil, nil
		}
	}
	for li := 0; li < lb.N; li++ {
		v := kv.At(li)
		var k int64
		switch v.Kind() {
		case types.KindInt:
			k = v.Int()
		case types.KindFloat:
			var ok bool
			if k, ok = intKeyFromFloat(v.Float()); !ok {
				continue
			}
		default:
			continue
		}
		if head, ok := j.build.find(uint64(k)); ok {
			for ri := head; ri >= 0; ri = j.chainNext[ri] {
				pl = append(pl, int32(li))
				pr = append(pr, ri)
			}
		}
	}
	return pl, pr
}

// joinBatch produces one output batch for one left batch (possibly empty
// for semi/anti/filtered joins; the caller skips empties).
func (j *vecJoin) joinBatch(lb *vec.Batch) (*vec.Batch, error) {
	var pl, pr []int32 // matched pairs, left-major
	if j.useHash {
		if j.intKeys {
			pl, pr = j.probeInt(lb)
		} else {
			for li := 0; li < lb.N; li++ {
				k, ok := vecKeyOf(lb, li, j.lKeys, j.keyBuf)
				if !ok {
					continue
				}
				head, hit := j.build.find(k)
				if !hit {
					continue
				}
				for ri := head; ri >= 0; ri = j.chainNext[ri] {
					if vecKeysEqual(lb, li, j.lKeys, j.rt, int(ri), j.rKeys) {
						pl = append(pl, int32(li))
						pr = append(pr, ri)
					}
				}
			}
		}
		if j.residual != nil && len(pl) > 0 {
			var err error
			pl, pr, err = j.filterPairs(lb, pl, pr, j.residual)
			if err != nil {
				return nil, err
			}
		}
	} else {
		// Nested loop, one left row at a time so the candidate pair batch
		// stays bounded by the build side's size.
		cpl := make([]int32, j.rt.N)
		cpr := make([]int32, j.rt.N)
		for ri := range cpr {
			cpr[ri] = int32(ri)
		}
		for li := 0; li < lb.N; li++ {
			for i := range cpl {
				cpl[i] = int32(li)
			}
			kl, kr := cpl, cpr
			if j.op.On != nil && len(kl) > 0 {
				var err error
				kl, kr, err = j.filterPairs(lb, kl, kr, j.op.On)
				if err != nil {
					return nil, err
				}
			}
			pl = append(pl, kl...)
			pr = append(pr, kr...)
		}
	}
	return j.emit(lb, pl, pr), nil
}

// filterPairs keeps the candidate (left, right) pairs whose predicate is
// TRUE, evaluated over the concatenated pair schema — residuals see the
// full pair row even when the join's output is left-only.
func (j *vecJoin) filterPairs(lb *vec.Batch, pl, pr []int32, on algebra.Scalar) ([]int32, []int32, error) {
	pb := &vec.Batch{N: len(pl), Cols: make([]*vec.Vec, 0, len(j.pairCols))}
	for _, v := range lb.Cols {
		pb.Cols = append(pb.Cols, v.Gather(pl))
	}
	for _, v := range j.rt.Cols {
		pb.Cols = append(pb.Cols, v.Gather(pr))
	}
	if j.pairVE == nil {
		j.pairVE = newVecEnv(j.pairCols)
	}
	pv, err := evalVec(on, j.pairVE, pb, nil)
	if err != nil {
		return nil, nil, err
	}
	sel, err := truthySel(pv, pb.N)
	if err != nil {
		return nil, nil, fmt.Errorf("exec: join predicate: %w", err)
	}
	npl := make([]int32, len(sel))
	npr := make([]int32, len(sel))
	for oi, s := range sel {
		npl[oi] = pl[s]
		npr[oi] = pr[s]
	}
	return npl, npr, nil
}

// emit walks the left batch in row order and materializes the join kind's
// output from the matched pairs (which are left-major).
func (j *vecJoin) emit(lb *vec.Batch, pl, pr []int32) *vec.Batch {
	var lsel, rsel []int32 // rsel entry -1 = NULL right padding
	switch j.op.Kind {
	case algebra.JoinSemi, algebra.JoinAnti, algebra.JoinLeftOuter, algebra.JoinFullOuter:
		p := 0
		for li := 0; li < lb.N; li++ {
			start := p
			for p < len(pl) && pl[p] == int32(li) {
				j.rightMatched[pr[p]] = true
				p++
			}
			matched := p > start
			switch j.op.Kind {
			case algebra.JoinSemi:
				if matched {
					lsel = append(lsel, int32(li))
				}
			case algebra.JoinAnti:
				if !matched {
					lsel = append(lsel, int32(li))
				}
			default: // left outer, full outer
				if matched {
					for i := start; i < p; i++ {
						lsel = append(lsel, int32(li))
						rsel = append(rsel, pr[i])
					}
				} else {
					lsel = append(lsel, int32(li))
					rsel = append(rsel, -1)
				}
			}
		}
	default:
		// Inner and cross joins: the left-major pairs already ARE the
		// output selection, and nothing reads rightMatched.
		lsel, rsel = pl, pr
	}
	out := &vec.Batch{N: len(lsel), Cols: make([]*vec.Vec, 0, len(j.outCols))}
	for _, v := range lb.Cols {
		out.Cols = append(out.Cols, v.Gather(lsel))
	}
	switch j.op.Kind {
	case algebra.JoinSemi, algebra.JoinAnti:
	default:
		for _, v := range j.rt.Cols {
			out.Cols = append(out.Cols, gatherPad(v, rsel))
		}
	}
	return out
}

// unmatchedRight emits a full outer join's never-matched build rows, NULL
// padded on the left, in right order.
func (j *vecJoin) unmatchedRight() *vec.Batch {
	var rsel []int32
	for ri, m := range j.rightMatched {
		if !m {
			rsel = append(rsel, int32(ri))
		}
	}
	if len(rsel) == 0 {
		return nil
	}
	out := &vec.Batch{N: len(rsel), Cols: make([]*vec.Vec, 0, len(j.outCols))}
	for i := 0; i < j.lWidth; i++ {
		nv := &vec.Vec{}
		for range rsel {
			nv.AppendNull()
		}
		out.Cols = append(out.Cols, nv)
	}
	for _, v := range j.rt.Cols {
		out.Cols = append(out.Cols, v.Gather(rsel))
	}
	return out
}

// gatherPad gathers with -1 selections producing NULL (outer padding).
func gatherPad(v *vec.Vec, sel []int32) *vec.Vec {
	pad := false
	for _, s := range sel {
		if s < 0 {
			pad = true
			break
		}
	}
	if !pad {
		return v.Gather(sel)
	}
	out := &vec.Vec{}
	for _, s := range sel {
		if s < 0 {
			out.AppendNull()
		} else {
			out.Append(v.At(int(s)))
		}
	}
	return out
}

// vecKeyOf extracts one row's join key hash; ok is false when any key
// column is NULL. The fold is the engine-local allocation-free FNV with
// the same Equal ⇒ equal-hash normalization as types.HashRowKey, so the
// confirmed matches (and therefore results) are identical — only bucket
// assignment differs, which is unobservable.
func vecKeyOf(b *vec.Batch, row int, idx []int, buf []types.Value) (uint64, bool) {
	for i, p := range idx {
		v := b.Cols[p].At(row)
		if v.IsNull() {
			return 0, false
		}
		buf[i] = v
	}
	return hashRow(buf), true
}

// vecKeysEqual confirms a hash match with real comparisons, mirroring the
// row engine's keysEqual (incomparable kinds simply do not match).
func vecKeysEqual(lb *vec.Batch, li int, lKeys []int, rb *vec.Batch, ri int, rKeys []int) bool {
	for i := range lKeys {
		av, bv := lb.Cols[lKeys[i]].At(li), rb.Cols[rKeys[i]].At(ri)
		if av.IsNull() || bv.IsNull() {
			return false
		}
		if !types.Comparable(av.Kind(), bv.Kind()) || types.Compare(av, bv) != 0 {
			return false
		}
	}
	return true
}

// vecGroup aggregates batch streams. Aggregate arguments are evaluated
// one vector per batch; accumulation reuses the row engine's aggState
// (shared addValue), and groups emit in first-seen order.
type vecGroup struct {
	op  *algebra.GroupBy
	in  vecNode
	out []algebra.ColumnMeta
	ve  *vecEnv

	built bool
	rows  []types.Row
	pos   int
}

func (g *vecGroup) cols() []algebra.ColumnMeta { return g.out }

type vecGroupState struct {
	keyVals types.Row
	aggs    []*aggState
	idx     int32 // position in first-seen order
}

// groupKeyMatch compares one candidate group's key against batch row i,
// with typed payload fast paths. Semantics are exactly types.Equal's:
// NULL keys group together, numerics compare float-coerced across kinds
// (the cross-kind case falls back to types.Equal), and float equality is
// Compare==0 — NOT Go == — so NaN keys group the way the row engine
// groups them.
func groupKeyMatch(cand *vecGroupState, b *vec.Batch, keyPos []int, i int) bool {
	for ki, p := range keyPos {
		c := b.Cols[p]
		kv := cand.keyVals[ki]
		if c.Mixed {
			if !types.Equal(kv, c.At(i)) {
				return false
			}
			continue
		}
		cn := c.IsNull(i)
		if kv.IsNull() != cn {
			return false
		}
		if cn {
			continue
		}
		if kv.Kind() != c.Kind {
			if !types.Equal(kv, c.At(i)) {
				return false
			}
			continue
		}
		switch c.Kind {
		case types.KindInt:
			if kv.Int() != c.I64[i] {
				return false
			}
		case types.KindDate:
			if kv.DateDays() != c.I64[i] {
				return false
			}
		case types.KindBool:
			if kv.Bool() != (c.I64[i] != 0) {
				return false
			}
		case types.KindFloat:
			a, x := kv.Float(), c.F64[i]
			if a < x || a > x {
				return false
			}
		case types.KindString:
			if kv.Str() != c.Str[i] {
				return false
			}
		}
	}
	return true
}

// aggVecMode selects, per (aggregate, batch), how argument values fold
// into the shared aggState: the generic boxed route or a typed shortcut
// whose observable effect is identical.
type aggVecMode int8

const (
	aggVecBoxed      aggVecMode = iota // addValue per boxed value
	aggVecStar                         // COUNT(*): no argument
	aggVecSumFloat                     // SUM over a typed FLOAT vector
	aggVecCountDense                   // COUNT over a typed NULL-free vector
)

// aggVecModeOf picks the accumulation mode for one aggregate against one
// argument vector. DISTINCT always takes the boxed route (it needs the
// shared types.Hash dedup the row engine uses).
func aggVecModeOf(def algebra.AggDef, v *vec.Vec) aggVecMode {
	if def.Distinct || v.Mixed {
		return aggVecBoxed
	}
	switch {
	case def.Func == algebra.AggSum && v.Kind == types.KindFloat:
		return aggVecSumFloat
	case def.Func == algebra.AggCount && v.Kind != types.KindNull && v.Nulls == nil:
		return aggVecCountDense
	}
	return aggVecBoxed
}

// sumFloat folds one non-NULL FLOAT argument, staying on a float64
// running sum once the accumulator is FLOAT; kind adoption and mixed-kind
// promotion route through addValue so semantics stay shared.
func (s *aggState) sumFloat(x float64) error {
	if s.sum.Kind() == types.KindFloat {
		s.sum = types.NewFloat(s.sum.Float() + x)
		return nil
	}
	return s.addValue(types.NewFloat(x))
}

func (g *vecGroup) next() (*vec.Batch, error) {
	if !g.built {
		if err := g.aggregate(); err != nil {
			return nil, err
		}
		g.built = true
	}
	if g.pos >= len(g.rows) {
		return nil, nil
	}
	hi := g.pos + vec.BatchSize
	if hi > len(g.rows) {
		hi = len(g.rows)
	}
	b := &vec.Batch{N: hi - g.pos, Cols: make([]*vec.Vec, len(g.out))}
	for c := range g.out {
		col := &vec.Vec{}
		for i := g.pos; i < hi; i++ {
			col.Append(g.rows[i][c])
		}
		b.Cols[c] = col
	}
	g.pos = hi
	return b, nil
}

func (g *vecGroup) aggregate() error {
	inCols := g.in.cols()
	keyPos := make([]int, len(g.op.Keys))
	for i, k := range g.op.Keys {
		keyPos[i] = -1
		for j, c := range inCols {
			if c.ID == k {
				keyPos[i] = j
			}
		}
		if keyPos[i] < 0 {
			return fmt.Errorf("exec: group key c%d missing", k)
		}
	}
	groups := map[uint64][]*vecGroupState{}
	var order []*vecGroupState
	argVecs := make([]*vec.Vec, len(g.op.Aggs))
	argMode := make([]aggVecMode, len(g.op.Aggs))
	var hs []uint64
	var gids []int32
	for {
		b, err := g.in.next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for ai, a := range g.op.Aggs {
			if a.Arg == nil {
				argMode[ai] = aggVecStar
				continue
			}
			v, err := evalVec(a.Arg, g.ve, b, nil)
			if err != nil {
				return err
			}
			argVecs[ai] = v
			argMode[ai] = aggVecModeOf(a, v)
		}
		// Key hashes fold column-wise over the whole batch, reusing one
		// scratch slice — no per-row hasher or key-row allocation.
		if cap(hs) < b.N {
			hs = make([]uint64, b.N)
			gids = make([]int32, b.N)
		}
		hs = hs[:b.N]
		gids = gids[:b.N]
		for i := range hs {
			hs[i] = fnvOffset64
		}
		for _, p := range keyPos {
			foldVecHash(b.Cols[p], b.N, hs)
		}
		// Pass 1: resolve every row to its group in first-seen order.
		for i := 0; i < b.N; i++ {
			var gs *vecGroupState
			for _, cand := range groups[hs[i]] {
				if groupKeyMatch(cand, b, keyPos, i) {
					gs = cand
					break
				}
			}
			if gs == nil {
				keyVals := make(types.Row, len(keyPos))
				for ki, p := range keyPos {
					keyVals[ki] = b.Cols[p].At(i)
				}
				gs = &vecGroupState{keyVals: keyVals, idx: int32(len(order))}
				for _, a := range g.op.Aggs {
					gs.aggs = append(gs.aggs, newAggState(a))
				}
				groups[hs[i]] = append(groups[hs[i]], gs)
				order = append(order, gs)
			}
			gids[i] = gs.idx
		}
		// Pass 2: accumulate one aggregate column at a time. Error choice
		// can differ from the row engine when distinct (row, agg) cells
		// would each error — presence cannot (see the vecexpr.go header).
		for ai := range g.op.Aggs {
			switch argMode[ai] {
			case aggVecStar, aggVecCountDense:
				// COUNT(*) / COUNT over a NULL-free vector: pure tallies.
				for _, gid := range gids {
					order[gid].aggs[ai].count++
				}
			case aggVecSumFloat:
				v := argVecs[ai]
				if v.Nulls == nil {
					for i, gid := range gids {
						if err := order[gid].aggs[ai].sumFloat(v.F64[i]); err != nil {
							return err
						}
					}
				} else {
					for i, gid := range gids {
						if v.IsNull(i) {
							continue
						}
						if err := order[gid].aggs[ai].sumFloat(v.F64[i]); err != nil {
							return err
						}
					}
				}
			default:
				v := argVecs[ai]
				for i, gid := range gids {
					if err := order[gid].aggs[ai].addValue(v.At(i)); err != nil {
						return err
					}
				}
			}
		}
	}
	// A scalar aggregate over empty input yields one all-default row.
	if len(g.op.Keys) == 0 && len(order) == 0 {
		gs := &vecGroupState{}
		for _, a := range g.op.Aggs {
			gs.aggs = append(gs.aggs, newAggState(a))
		}
		order = append(order, gs)
	}
	for _, gs := range order {
		row := make(types.Row, 0, len(gs.keyVals)+len(gs.aggs))
		row = append(row, gs.keyVals...)
		for _, a := range gs.aggs {
			row = append(row, a.result())
		}
		g.rows = append(g.rows, row)
	}
	return nil
}

// vecSort drains its input, sorts with the engine-wide MergeKey
// comparator (stable; NULLS FIRST ascending / LAST descending), applies
// TOP, and re-emits in batches.
type vecSort struct {
	op *algebra.Sort
	in vecNode

	built bool
	rows  []types.Row
	pos   int
}

func (s *vecSort) cols() []algebra.ColumnMeta { return s.in.cols() }

func (s *vecSort) next() (*vec.Batch, error) {
	if !s.built {
		for {
			b, err := s.in.next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			s.rows = batchRows(b, s.rows)
		}
		keys, err := sortMergeKeys(s.op.Keys, s.in.cols())
		if err != nil {
			return nil, err
		}
		if err := SortRows(s.rows, keys); err != nil {
			return nil, fmt.Errorf("exec: ORDER BY key: %w", err)
		}
		if s.op.Top > 0 && int64(len(s.rows)) > s.op.Top {
			s.rows = s.rows[:s.op.Top]
		}
		s.built = true
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	hi := s.pos + vec.BatchSize
	if hi > len(s.rows) {
		hi = len(s.rows)
	}
	inCols := s.in.cols()
	b := &vec.Batch{N: hi - s.pos, Cols: make([]*vec.Vec, len(inCols))}
	for c := range inCols {
		col := &vec.Vec{}
		for i := s.pos; i < hi; i++ {
			col.Append(s.rows[i][c])
		}
		b.Cols[c] = col
	}
	s.pos = hi
	return b, nil
}

// vecUnion streams the left input to exhaustion, then the right.
type vecUnion struct {
	l, r     vecNode
	leftDone bool
}

func (u *vecUnion) cols() []algebra.ColumnMeta { return u.l.cols() }

func (u *vecUnion) next() (*vec.Batch, error) {
	if !u.leftDone {
		b, err := u.l.next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.leftDone = true
	}
	return u.r.next()
}

// Golden-file suite locking down EXPLAIN output for the full TPC-H
// corpus. The external test package may import pdwqo (which itself
// imports internal/explain) without a cycle — test-only imports are
// outside the package graph.
package explain_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdwqo"
)

var update = flag.Bool("update", false, "rewrite the golden EXPLAIN files")

// The golden corpus configuration. Changing any of these regenerates
// different plans — bump the goldens with -update in the same change.
const (
	goldenSF    = 0.01
	goldenNodes = 4
	goldenSeed  = 42
)

var goldenDB *pdwqo.DB

func TestMain(m *testing.M) {
	flag.Parse()
	var err error
	goldenDB, err = pdwqo.OpenTPCH(goldenSF, goldenNodes, goldenSeed)
	if err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// TestExplainGoldens locks the EXPLAIN text of every adapted TPC-H query
// against testdata/explain/<q>.golden, and requires the serial and
// parallel enumerators to render byte-identical output (EXPLAIN shows
// search statistics, so this also certifies that OptionsConsidered /
// OptionsRetained are deterministic under concurrency).
func TestExplainGoldens(t *testing.T) {
	for _, name := range pdwqo.TPCHQueryNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sql, ok := pdwqo.TPCHQuery(name)
			if !ok {
				t.Fatalf("missing TPC-H query %s", name)
			}
			serial, err := goldenDB.Optimize(sql, pdwqo.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := goldenDB.Optimize(sql, pdwqo.Options{Parallelism: goldenNodes})
			if err != nil {
				t.Fatal(err)
			}
			got, err := serial.ExplainText()
			if err != nil {
				t.Fatal(err)
			}
			gotPar, err := parallel.ExplainText()
			if err != nil {
				t.Fatal(err)
			}
			if got != gotPar {
				t.Errorf("serial and parallel EXPLAIN diverge:%s", firstDiff(got, gotPar))
			}
			compareGolden(t, filepath.Join("testdata", "explain", name+".golden"), got)
		})
	}
}

// TestExplainJSONGolden locks the machine-readable shape for one
// representative query (q05: two moves plus a return).
func TestExplainJSONGolden(t *testing.T) {
	sql, _ := pdwqo.TPCHQuery("q05")
	plan, err := goldenDB.Optimize(sql, pdwqo.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.ExplainJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "explain", "q05.json.golden"), got)
}

// TestGoldenSplitAdoption asserts the partial-aggregate split is really
// visible in the locked corpus — the goldens are only worth their bytes
// if the transform they certify actually fires. q01 and q05 must carry
// the full PartialGroupBy → SHUFFLE → FinalGroupBy chain, every golden
// with a partial must also show its finalizer, and at least three
// queries across the corpus must adopt the split.
func TestGoldenSplitAdoption(t *testing.T) {
	adopted := 0
	for _, name := range pdwqo.TPCHQueryNames() {
		data, err := os.ReadFile(filepath.Join("testdata", "explain", name+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "PartialGroupBy") {
			if !strings.Contains(string(data), "FinalGroupBy") {
				t.Errorf("%s: golden shows a partial aggregation without a finalizer", name)
			}
			adopted++
		}
	}
	if adopted < 3 {
		t.Errorf("only %d golden plans adopt the split, want at least 3", adopted)
	}
	for _, name := range []string{"q01", "q05"} {
		data, err := os.ReadFile(filepath.Join("testdata", "explain", name+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"PartialGroupBy", "SHUFFLE", "FinalGroupBy"} {
			if !strings.Contains(string(data), want) {
				t.Errorf("%s: golden misses %q in the split chain", name, want)
			}
		}
	}
}

// TestExplainAnalyzeShowsSplit executes q01 under EXPLAIN ANALYZE: the
// report must render the split pair and per-move q_bytes actuals, so the
// shrunken shuffle is observable, not just planned.
func TestExplainAnalyzeShowsSplit(t *testing.T) {
	sql, _ := pdwqo.TPCHQuery("q01")
	plan, err := goldenDB.Optimize(sql, pdwqo.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := goldenDB.ExplainAnalyze(plan, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PartialGroupBy", "FinalGroupBy", "q_bytes="} {
		if !strings.Contains(report, want) {
			t.Errorf("EXPLAIN ANALYZE misses %q:\n%s", want, report)
		}
	}
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with: go test ./internal/explain -run TestExplain -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("EXPLAIN output drifted from %s (re-bless with -update if intended):%s",
			path, firstDiff(string(want), got))
	}
}

// firstDiff points at the first differing line to keep failures readable.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("\n  line %d:\n    want %s\n    got  %s", i+1, al[i], bl[i])
		}
	}
	return "\n  (outputs differ in length)"
}

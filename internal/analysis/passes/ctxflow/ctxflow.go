// Package ctxflow checks that a function's context.Context parameter
// actually flows into the context-accepting calls it makes. A function
// that receives ctx but passes context.Background() or context.TODO()
// downstream — or never threads its ctx into any context-accepting call
// at all — silently detaches that call chain from cancellation and
// deadlines, which is how optimizer timeouts and engine step timeouts
// stop propagating.
package ctxflow

import (
	"go/ast"
	"go/types"

	"pdwqo/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag context parameters that do not flow into context-accepting calls",
	Run:  run,
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// contextConstructor reports a call to context.Background or context.TODO.
func contextConstructor(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name(), true
	}
	return "", false
}

// callSig returns the signature of a call's callee, nil for conversions
// and built-ins.
func callSig(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.Types[call.Fun].Type
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type of argument position i, handling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if i >= n-1 && sig.Variadic() {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	du := analysis.BuildDefUse(pass.TypesInfo, fd)
	var ctxParams []*analysis.Def
	for _, p := range du.Params() {
		if isContextType(p.Obj.Type()) {
			ctxParams = append(ctxParams, p)
		}
	}
	if len(ctxParams) == 0 {
		return
	}

	// flow is the set of locals transitively derived from a context
	// parameter (ctx itself, children from WithCancel/WithTimeout, ...).
	flow := map[types.Object]bool{}
	for _, p := range ctxParams {
		flow[p.Obj] = true
	}
	for changed := true; changed; {
		changed = false
		for _, d := range du.Defs {
			if flow[d.Obj] || d.RHS == nil || !isContextType(d.Obj.Type()) {
				continue
			}
			if usesFlowing(pass, d.RHS, flow) {
				flow[d.Obj] = true
				changed = true
			}
		}
	}

	detached := false
	acceptsCtx := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := callSig(pass.TypesInfo, call)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			if !isContextType(paramType(sig, i)) {
				continue
			}
			acceptsCtx = true
			if name, ok := contextConstructor(pass.TypesInfo, arg); ok {
				detached = true
				pass.Reportf(arg.Pos(),
					"%s receives a context parameter but passes context.%s() here; thread the caller's context through",
					fd.Name.Name, name)
			}
		}
		return true
	})

	if detached {
		return
	}
	// No call was explicitly detached; if the function makes
	// context-accepting calls but its ctx parameter is never read at
	// all, the chain is broken by omission instead.
	for _, p := range ctxParams {
		if len(p.Uses) == 0 && acceptsCtx {
			pass.Reportf(p.Ident.Pos(),
				"context parameter %s is never used, but %s makes calls that accept a context",
				p.Ident.Name, fd.Name.Name)
		}
	}
}

// usesFlowing reports whether the expression reads any flowing variable.
func usesFlowing(pass *analysis.Pass, e ast.Expr, flow map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && flow[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

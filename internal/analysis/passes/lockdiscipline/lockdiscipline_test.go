package lockdiscipline_test

import (
	"path/filepath"
	"testing"

	"pdwqo/internal/analysis"
	"pdwqo/internal/analysis/passes/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysis.RunTest(t, filepath.Join("testdata", "src", "a"), lockdiscipline.Analyzer)
}

// Package transval_test drives translation validation end to end against
// real compiled TPC-H plans: the clean corpus must re-validate with zero
// violations, and a seeded mutation per domain — corrupted SQL, a
// dangling temp reference, a renamed output alias, a swapped projection
// source, a weakened join, a flipped placement, a loosened predicate —
// must each surface exactly its own typed code.
package transval_test

import (
	"strings"
	"sync"
	"testing"

	"pdwqo"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/planverify"
	"pdwqo/internal/planverify/transval"
)

var (
	dbOnce sync.Once
	dbVal  *pdwqo.DB
	dbErr  error
)

// sharedDB compiles against one appliance: every Optimize call hands back
// private artifacts, so mutation tests cannot poison each other.
func sharedDB(t *testing.T) *pdwqo.DB {
	t.Helper()
	dbOnce.Do(func() { dbVal, dbErr = pdwqo.OpenTPCH(0.01, 4, 1) })
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbVal
}

func freshPlan(t *testing.T, name string) (*pdwqo.QueryPlan, *catalog.Shell) {
	t.Helper()
	db := sharedDB(t)
	sql, ok := pdwqo.TPCHQuery(name)
	if !ok {
		t.Fatalf("unknown query %s", name)
	}
	qp, err := db.Optimize(sql, pdwqo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return qp, db.Shell()
}

func runCheck(qp *pdwqo.QueryPlan, shell *catalog.Shell) []planverify.Violation {
	return transval.Check(qp.Distributed, qp.DSQL, shell)
}

// mutateSQL rewrites the first occurrence of old in step's SQL and fails
// the test if the pattern is not present (the fixture would be vacuous).
func mutateSQL(t *testing.T, qp *pdwqo.QueryPlan, step int, old, new string) {
	t.Helper()
	sql := qp.DSQL.Steps[step].SQL
	if !strings.Contains(sql, old) {
		t.Fatalf("step %d SQL does not contain %q:\n%s", step, old, sql)
	}
	qp.DSQL.Steps[step].SQL = strings.Replace(sql, old, new, 1)
}

// assertOnly demands at least one violation and that every violation
// carries the one expected code: a mutation must fire its own domain,
// not cascade into neighbours.
func assertOnly(t *testing.T, vs []planverify.Violation, code planverify.Code) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("mutation not detected; expected %s", code)
	}
	for _, v := range vs {
		if v.Code != code {
			t.Fatalf("expected only %s, got %s: %s (all: %v)", code, v.Code, v.Detail, vs)
		}
	}
}

// TestTransvalClean pins the baseline the mutations perturb: a
// representative slice of the corpus (aggregation, joins, TOP/ORDER BY,
// outer join, EXISTS, params) must re-validate violation-free. The full
// 22-query × N×regime sweep runs in internal/difftest.
func TestTransvalClean(t *testing.T) {
	for _, name := range pdwqo.TPCHQueryNames() {
		qp, shell := freshPlan(t, name)
		if vs := runCheck(qp, shell); len(vs) != 0 {
			t.Errorf("%s: clean plan rejected: %v", name, vs)
		}
	}
}

// TestMutationReparse corrupts a step's SQL text: the reparse domain must
// reject it with a byte offset before any semantic check runs.
func TestMutationReparse(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	mutateSQL(t, qp, 0, "SELECT", "SELEC T")
	vs := runCheck(qp, shell)
	assertOnly(t, vs, transval.CodeReparse)
	if vs[0].Step != 0 {
		t.Errorf("violation at step %d, want 0", vs[0].Step)
	}
}

// TestMutationRefs renames a temp table inside one step's SQL: the step
// then reads a relation no earlier step produced.
func TestMutationRefs(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	last := len(qp.DSQL.Steps) - 1
	mutateSQL(t, qp, last, "[tempdb].[TEMP_ID_1]", "[tempdb].[TEMP_ID_9]")
	vs := runCheck(qp, shell)
	assertOnly(t, vs, transval.CodeRefs)
	if vs[0].Step != last {
		t.Errorf("violation at step %d, want %d", vs[0].Step, last)
	}
}

// TestMutationSchema renames a final output alias: the return step's
// column list no longer matches the plan's declared output schema.
func TestMutationSchema(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	last := len(qp.DSQL.Steps) - 1
	mutateSQL(t, qp, last, "AS [l_returnflag]", "AS [mutant]")
	assertOnly(t, runCheck(qp, shell), transval.CodeSchema)
}

// TestMutationLineage swaps a projection's source column for another of
// the same type: types and names stay identical, but the column now
// descends from the wrong base column.
func TestMutationLineage(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	mutateSQL(t, qp, 0, "T1.[l_discount] AS c7", "T1.[l_tax] AS c7")
	assertOnly(t, runCheck(qp, shell), transval.CodeLineage)
}

// TestMutationNullability weakens an inner join to a left join: the
// preserved side's columns become nullable where the plan proved they
// cannot be.
func TestMutationNullability(t *testing.T) {
	qp, shell := freshPlan(t, "q05")
	sql := qp.DSQL.Steps[0].SQL
	i := strings.LastIndex(sql, " INNER JOIN ")
	if i < 0 {
		t.Fatalf("no INNER JOIN in q05 step 0:\n%s", sql)
	}
	qp.DSQL.Steps[0].SQL = sql[:i] + " LEFT JOIN " + sql[i+len(" INNER JOIN "):]
	assertOnly(t, runCheck(qp, shell), transval.CodeNullability)
}

// TestMutationDistributionStep flips the placement a move step records
// for its source fragment: the re-derived placement disagrees.
func TestMutationDistributionStep(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	qp.DSQL.Steps[0].Where = (qp.DSQL.Steps[0].Where + 1) % 3
	assertOnly(t, runCheck(qp, shell), transval.CodeDistribution)
}

// TestMutationDistributionRecorded flips the optimizer's recorded
// distribution on the winning root option: the plan-side abstract
// interpreter must notice the recorded placement is underivable.
func TestMutationDistributionRecorded(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	root := qp.Distributed.Root
	root.Dist.Kind = (root.Dist.Kind + 1) % 3
	if root.Dist.Kind == core.DistHash && len(root.Dist.Cols) == 0 {
		root.Dist.Kind++ // an empty hash class is not a representable flip
	}
	// The recorded kind feeds the return step's placement note too; keep
	// them consistent so only the plan-side re-derivation disagrees.
	qp.DSQL.Steps[len(qp.DSQL.Steps)-1].Where = root.Dist.Kind
	assertOnly(t, runCheck(qp, shell), transval.CodeDistribution)
}

// TestMutationReturnReparse corrupts the final Return step's SQL: the
// reparse domain must catch it at that step, after the move steps have
// validated cleanly.
func TestMutationReturnReparse(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	last := len(qp.DSQL.Steps) - 1
	mutateSQL(t, qp, last, "SELECT", "SELEC T")
	vs := runCheck(qp, shell)
	assertOnly(t, vs, transval.CodeReparse)
	if vs[0].Step != last {
		t.Errorf("violation at step %d, want %d", vs[0].Step, last)
	}
}

// TestMutationReturnArity duplicates one output column of the Return
// step: the selected column count no longer matches the plan's declared
// result schema.
func TestMutationReturnArity(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	last := len(qp.DSQL.Steps) - 1
	mutateSQL(t, qp, last,
		"T6.c9 AS [l_returnflag],",
		"T6.c9 AS [l_returnflag], T6.c9 AS [l_returnflag],")
	assertOnly(t, runCheck(qp, shell), transval.CodeSchema)
}

// TestMutationPredicate loosens a comparison: <= becomes <, so the step
// filters a strictly different row set than the plan fragment.
func TestMutationPredicate(t *testing.T) {
	qp, shell := freshPlan(t, "q01")
	mutateSQL(t, qp, 0, "(T2.c11 <= ", "(T2.c11 < ")
	assertOnly(t, runCheck(qp, shell), transval.CodePredicate)
}

// TestLineageAPI exercises the public column-lineage surface: the final
// outputs of q01 must trace to exactly the lineitem base columns the
// query reads.
func TestLineageAPI(t *testing.T) {
	qp, _ := freshPlan(t, "q01")
	lin := transval.Lineage(qp.Distributed)
	want := map[string]string{
		"l_returnflag":   "lineitem.l_returnflag",
		"sum_qty":        "lineitem.l_quantity",
		"sum_disc_price": "", // checked for multi-origin below
	}
	for _, oc := range qp.DSQL.OutCols {
		origin, ok := want[oc.Name]
		if !ok {
			continue
		}
		cl, ok := lin[oc.ID]
		if !ok {
			t.Fatalf("no lineage for output %s (c%d)", oc.Name, oc.ID)
		}
		if cl.Nullable {
			t.Errorf("%s derived nullable; base columns are NOT NULL", oc.Name)
		}
		if origin != "" {
			if len(cl.Origins) != 1 || cl.Origins[0] != origin {
				t.Errorf("%s origins = %v, want [%s]", oc.Name, cl.Origins, origin)
			}
			continue
		}
		// sum_disc_price = SUM(l_extendedprice * (1 - l_discount)).
		if len(cl.Origins) != 2 {
			t.Errorf("%s origins = %v, want extendedprice+discount", oc.Name, cl.Origins)
		}
	}
}

// TestNullabilityMatchesExecution cross-checks the nullability domain
// against the executor: any output column the abstract interpreter
// proves non-nullable must never materialize a NULL. This is the same
// invariant internal/vec's NULL-ordered comparators rely on.
func TestNullabilityMatchesExecution(t *testing.T) {
	db := sharedDB(t)
	for _, name := range []string{"q01", "q03", "q06", "q13"} {
		qp, _ := freshPlan(t, name)
		lin := transval.Lineage(qp.Distributed)
		res, err := db.ExecutePlan(qp)
		if err != nil {
			t.Fatalf("%s: execute: %v", name, err)
		}
		for i, oc := range qp.DSQL.OutCols {
			cl, ok := lin[oc.ID]
			if !ok || cl.Nullable {
				continue
			}
			for r, row := range res.Rows {
				if row[i].IsNull() {
					t.Errorf("%s: column %s proved non-nullable but row %d is NULL",
						name, oc.Name, r)
					break
				}
			}
		}
	}
}

package sqlparser

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single- or double-character operator/punctuation
	tokParam // plan-cache parameter marker: NUL '?' digits NUL
)

// token is one lexical unit. For tokIdent, Text preserves the original
// spelling and Upper holds the upper-cased form for keyword matching.
// Pos/End delimit the token's raw byte span in the source (quotes
// included), so callers can splice replacement text back into the query.
type token struct {
	Kind  tokenKind
	Text  string
	Upper string
	Pos   int // byte offset, for error messages
	End   int // byte offset one past the token's raw spelling
}

// lexer turns SQL text into tokens. Identifiers may be [bracket-quoted] or
// "double-quoted"; strings use single quotes with ” escaping; comments
// (-- line and /* block */) are skipped.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &ParseError{Offset: pos, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errf(l.pos, "unterminated block comment")
			}
			l.pos += end + 4
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || c == '#' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{Kind: tokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		return token{Kind: tokIdent, Text: text, Upper: strings.ToUpper(text), Pos: start}, nil

	case c == '[':
		end := strings.IndexByte(l.src[l.pos:], ']')
		if end < 0 {
			return token{}, l.errf(start, "unterminated [identifier]")
		}
		text := l.src[l.pos+1 : l.pos+end]
		l.pos += end + 1
		return token{Kind: tokIdent, Text: text, Upper: strings.ToUpper(text), Pos: start}, nil

	case c == '"':
		end := strings.IndexByte(l.src[l.pos+1:], '"')
		if end < 0 {
			return token{}, l.errf(start, `unterminated "identifier"`)
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{Kind: tokIdent, Text: text, Upper: strings.ToUpper(text), Pos: start}, nil

	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				// Do not consume a dot followed by an identifier (x.1 is
				// not legal anyway; 1.e requires a digit after the dot).
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		// Exponent suffix (1e+06, 2.5E-3): floats folded at compile time
		// render in shortest form, which may use scientific notation.
		// Only consumed when a digit follows, so "1e" stays number+ident.
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			j := l.pos + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && isDigit(l.src[j]) {
				for j < len(l.src) && isDigit(l.src[j]) {
					j++
				}
				l.pos = j
			}
		}
		return token{Kind: tokNumber, Text: l.src[start:l.pos], Pos: start}, nil

	case c == 0x00:
		// Plan-cache parameter marker (dsql.Placeholder): NUL '?' digits
		// NUL. Text carries the decimal slot index without the framing.
		i := l.pos + 1
		if i >= len(l.src) || l.src[i] != '?' {
			return token{}, l.errf(start, "stray NUL byte")
		}
		i++
		ds := i
		for i < len(l.src) && isDigit(l.src[i]) {
			i++
		}
		if i == ds || i >= len(l.src) || l.src[i] != 0x00 {
			return token{}, l.errf(start, "malformed parameter marker")
		}
		l.pos = i + 1
		return token{Kind: tokParam, Text: l.src[ds:i], Pos: start}, nil

	case c == '\'':
		var b strings.Builder
		i := l.pos + 1
		for {
			if i >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			if l.src[i] == '\'' {
				if i+1 < len(l.src) && l.src[i+1] == '\'' {
					b.WriteByte('\'')
					i += 2
					continue
				}
				i++
				break
			}
			b.WriteByte(l.src[i])
			i++
		}
		l.pos = i
		return token{Kind: tokString, Text: b.String(), Pos: start}, nil

	default:
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "<=", ">=", "!=":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return token{Kind: tokPunct, Text: two, Pos: start}, nil
		}
		switch c {
		case '(', ')', ',', '.', ';', '=', '<', '>', '+', '-', '*', '/':
			l.pos++
			return token{Kind: tokPunct, Text: string(c), Pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole input; the parser works on the slice.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		// next always leaves l.pos exactly one past the token it returned
		// (EOF's span is empty), so the end offset is set centrally here.
		t.End = l.pos
		if t.Kind == tokEOF {
			t.End = t.Pos
		}
		out = append(out, t)
		if t.Kind == tokEOF {
			return out, nil
		}
	}
}

package pdwqo_test

import (
	"testing"

	"pdwqo/internal/difftest"
	"pdwqo/internal/qgen"
)

// FuzzQGenRoundTrip drives the full large-join metamorphic contract from
// fuzzed generator inputs: whatever (topology, size, seed) the fuzzer
// picks, the generated query must compile exhaustively and under a forced
// greedy fallback with the static verifier on, both plans must execute,
// and the result relations must be byte-identical. Seeds covering every
// topology are checked in under testdata/fuzz/FuzzQGenRoundTrip.
func FuzzQGenRoundTrip(f *testing.F) {
	f.Add(int64(1337), int64(0), 4)
	f.Add(int64(1741), int64(2), 8)
	f.Fuzz(func(t *testing.T, seed, topo int64, relations int) {
		topos := qgen.Topologies()
		if topo < 0 {
			topo = -topo
		}
		if relations < 0 {
			relations = -relations
		}
		spec := qgen.Spec{
			Topology:  topos[topo%int64(len(topos))],
			Relations: 2 + relations%9, // 2..10: exhaustive search stays feasible
			Seed:      seed,
		}
		q, err := qgen.Generate(spec)
		if err != nil {
			t.Fatalf("%s: generate: %v", spec.Name(), err)
		}
		db, err := difftest.OpenQGen(q)
		if err != nil {
			t.Fatalf("%s: open: %v", q.Name, err)
		}
		if _, err := difftest.LargeJoinDiff(db, q, 1); err != nil {
			t.Fatal(err)
		}
	})
}

// Package memo implements the Cascades-style search-space data structure
// and the serial (single-node) optimizer that populates it — the role SQL
// Server's optimizer plays against the shell database in the paper
// (§2.5 component 2, Figure 3c "initial/final serial memo").
//
// A Memo holds Groups of equivalent expressions; each GroupExpr is an
// operator payload whose children are groups rather than operators, so a
// memo compactly encodes a very large number of operator trees. The PDW
// optimizer (internal/core) consumes this structure — via its XML encoding
// — and augments it with data-movement operations.
package memo

import (
	"fmt"
	"strings"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
)

// GroupID identifies a group within a memo. IDs are 1-based to match the
// paper's Figure 3 numbering; 0 is invalid.
type GroupID int

// GroupExpr is one operator with groups as children. Logical and physical
// expressions share the structure; physical ones carry a cost.
type GroupExpr struct {
	Op       algebra.Operator
	Children []GroupID
	Physical bool

	// Cost is the serial cost model's total cost (own + best children)
	// for physical expressions; 0 until costed.
	Cost float64
	// BestChildren pins the winning child expression index per child
	// group, set during costing.
	BestChildren []int
}

// Fingerprint identifies the expression for duplicate detection.
func (e *GroupExpr) Fingerprint() string {
	parts := make([]string, 0, len(e.Children)+1)
	parts = append(parts, e.Op.Fingerprint())
	for _, c := range e.Children {
		parts = append(parts, fmt.Sprintf("g%d", c))
	}
	return strings.Join(parts, "|")
}

// Group is a set of equivalent expressions with shared logical properties.
type Group struct {
	ID    GroupID
	Exprs []*GroupExpr
	Props *LogicalProps

	// winner is the index into Exprs of the cheapest physical expression,
	// -1 before costing.
	winner int
	// explored guards re-running transformation rules.
	exploredRound int
}

// Winner returns the cheapest physical expression, or nil.
func (g *Group) Winner() *GroupExpr {
	if g.winner < 0 || g.winner >= len(g.Exprs) {
		return nil
	}
	return g.Exprs[g.winner]
}

// Memo is the search space: groups plus a fingerprint index for duplicate
// detection of expressions across groups.
type Memo struct {
	Shell  *catalog.Shell
	Groups []*Group // Groups[0] is a placeholder; IDs are 1-based
	Root   GroupID

	exprGroup map[string]GroupID // expression fingerprint → owning group

	// Budget caps the number of expressions created during exploration,
	// mirroring SQL Server's optimization timeout (paper §3.1). 0 means
	// unlimited.
	Budget    int
	exhausted bool
	created   int
}

// DefaultBudget is the default exploration budget (expressions created
// before the optimizer "times out", paper §3.1). Large join graphs exhaust
// it and fall back to the space explored so far, exactly like SQL Server's
// timeout; 0 disables the cap.
const DefaultBudget = 5000

// New returns an empty memo over the given shell database.
func New(shell *catalog.Shell) *Memo {
	return &Memo{
		Shell:     shell,
		Groups:    []*Group{nil},
		exprGroup: map[string]GroupID{},
	}
}

// Group resolves a group by ID.
func (m *Memo) Group(id GroupID) *Group { return m.Groups[id] }

// NumGroups returns the number of live groups.
func (m *Memo) NumGroups() int { return len(m.Groups) - 1 }

// NumExprs returns the total number of group expressions.
func (m *Memo) NumExprs() int {
	n := 0
	for _, g := range m.Groups[1:] {
		n += len(g.Exprs)
	}
	return n
}

// Exhausted reports whether exploration hit the budget before finishing —
// the analogue of SQL Server's optimizer timeout.
func (m *Memo) Exhausted() bool { return m.exhausted }

// Insert adds a whole operator tree, returning its group. Duplicate
// subtrees collapse onto existing groups.
func (m *Memo) Insert(t *algebra.Tree) GroupID {
	children := make([]GroupID, len(t.Children))
	for i, c := range t.Children {
		children[i] = m.Insert(c)
	}
	id, _ := m.InsertExpr(&GroupExpr{Op: t.Op, Children: children}, 0)
	return id
}

// InsertSeed adds an alternative plan for the root group — the paper's
// §3.1 seeding: "we seed the MEMO with execution plans that consider
// distribution information of tables". The tree must be semantically
// equivalent to the root (the caller asserts this); its subtrees dedup
// against existing groups where fingerprints match.
func (m *Memo) InsertSeed(t *algebra.Tree) {
	children := make([]GroupID, len(t.Children))
	for i, c := range t.Children {
		children[i] = m.Insert(c)
	}
	m.InsertExpr(&GroupExpr{Op: t.Op, Children: children}, m.Root)
}

// InsertExpr adds one expression. If target is 0, the expression lands in
// its fingerprint's existing group or a fresh one; otherwise it must merge
// into the target group (the caller asserts equivalence, e.g. the output
// of a transformation rule). Returns the owning group and whether the
// expression was new.
func (m *Memo) InsertExpr(e *GroupExpr, target GroupID) (GroupID, bool) {
	fp := e.Fingerprint()
	if owner, ok := m.exprGroup[fp]; ok {
		if target != 0 && owner != target {
			// Two groups turn out to be equivalent; fold the smaller
			// (newer) one into the older. This is rare with our rule set;
			// handle by aliasing expressions into the target.
			m.mergeGroups(owner, target)
		}
		return m.exprGroup[fp], false
	}
	if target == 0 {
		g := &Group{ID: GroupID(len(m.Groups)), winner: -1}
		m.Groups = append(m.Groups, g)
		target = g.ID
	}
	g := m.Groups[target]
	g.Exprs = append(g.Exprs, e)
	m.exprGroup[fp] = target
	m.created++
	if g.Props == nil && !e.Physical {
		g.Props = m.deriveProps(e)
	}
	return target, true
}

// mergeGroups re-points every expression of group src into dst. Children
// references to src elsewhere in the memo are rewritten.
func (m *Memo) mergeGroups(a, b GroupID) {
	if a == b {
		return
	}
	dst, src := a, b
	if src < dst {
		dst, src = src, dst
	}
	srcG := m.Groups[src]
	dstG := m.Groups[dst]
	for _, e := range srcG.Exprs {
		fp := e.Fingerprint()
		delete(m.exprGroup, fp)
	}
	// Rewrite child references across the whole memo.
	for _, g := range m.Groups[1:] {
		for _, e := range g.Exprs {
			for i, c := range e.Children {
				if c == src {
					e.Children[i] = dst
				}
			}
		}
	}
	// Re-insert src expressions into dst (fingerprints changed).
	for _, e := range srcG.Exprs {
		fp := e.Fingerprint()
		if _, ok := m.exprGroup[fp]; !ok {
			dstG.Exprs = append(dstG.Exprs, e)
			m.exprGroup[fp] = dst
		}
	}
	srcG.Exprs = nil
	if m.Root == src {
		m.Root = dst
	}
}

// budgetLeft reports whether exploration may create more expressions.
func (m *Memo) budgetLeft() bool {
	if m.Budget > 0 && m.created >= m.Budget {
		m.exhausted = true
		return false
	}
	return true
}

// String renders the memo in the paper's Figure 3 style: one line per
// group, expressions numbered group.ordinal.
func (m *Memo) String() string {
	var b strings.Builder
	for i := len(m.Groups) - 1; i >= 1; i-- {
		g := m.Groups[i]
		if len(g.Exprs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "Group %d", g.ID)
		if g.Props != nil {
			fmt.Fprintf(&b, " (rows=%.5g width=%.4g)", g.Props.Rows, g.Props.Width)
		}
		if m.Root == g.ID {
			b.WriteString(" [root]")
		}
		b.WriteString(":\n")
		for j, e := range g.Exprs {
			kind := "L"
			if e.Physical {
				kind = "P"
			}
			fmt.Fprintf(&b, "  %d.%d %s %s", g.ID, j+1, kind, e.Op.OpName())
			if len(e.Children) > 0 {
				parts := make([]string, len(e.Children))
				for k, c := range e.Children {
					parts[k] = fmt.Sprintf("%d", c)
				}
				fmt.Fprintf(&b, "(%s)", strings.Join(parts, ","))
			}
			if e.Physical && e.Cost > 0 {
				fmt.Fprintf(&b, " cost=%.5g", e.Cost)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// LogicalExprs returns the group's logical expressions.
func (g *Group) LogicalExprs() []*GroupExpr {
	var out []*GroupExpr
	for _, e := range g.Exprs {
		if !e.Physical {
			out = append(out, e)
		}
	}
	return out
}

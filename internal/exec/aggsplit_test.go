package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/types"
)

// The aggregate-state decomposition property: for any relation D cut
// into chunks C1..Ck,
//
//	FinalAgg(⊎ PartialAgg(Ci)) == CompleteAgg(D)
//
// with partial COUNT/SUM states merging by SUM and MIN/MAX by
// themselves — exactly the rewrite the optimizer's splitAggs emits and
// planverify re-checks. These tests drive the executor's runGroupBy
// directly over random groupings with NULLs, empty chunks and empty
// overall input, so a decomposition bug is caught at the operator level
// before any plan-level suite runs.

// aggCase is one decomposable aggregate with its partial/final halves.
type aggCase struct {
	name    string
	partial algebra.AggDef
	final   func(stateRef *algebra.ColRef, id algebra.ColumnID) algebra.AggDef
}

// valRef references the value column of the generated relation.
func valRef() *algebra.ColRef {
	return algebra.NewColRef(algebra.ColumnMeta{ID: 2, Name: "v", Type: types.KindFloat})
}

func aggCases() []aggCase {
	mk := func(f algebra.AggFunc, arg algebra.Scalar, id algebra.ColumnID, name string) algebra.AggDef {
		return algebra.AggDef{Func: f, Arg: arg, ID: id, Name: name}
	}
	finalize := func(f algebra.AggFunc) func(*algebra.ColRef, algebra.ColumnID) algebra.AggDef {
		return func(ref *algebra.ColRef, id algebra.ColumnID) algebra.AggDef {
			return mk(f, ref, id, "out")
		}
	}
	return []aggCase{
		{"count-star", mk(algebra.AggCount, nil, 10, "p"), finalize(algebra.AggSum)},
		{"count-val", mk(algebra.AggCount, valRef(), 10, "p"), finalize(algebra.AggSum)},
		{"sum", mk(algebra.AggSum, valRef(), 10, "p"), finalize(algebra.AggSum)},
		{"min", mk(algebra.AggMin, valRef(), 10, "p"), finalize(algebra.AggMin)},
		{"max", mk(algebra.AggMax, valRef(), 10, "p"), finalize(algebra.AggMax)},
	}
}

// randRelation generates rows over (k INT, v FLOAT) with NULLs in both
// columns; nRows may be zero.
func randRelation(r *rand.Rand, nRows int) [][]types.Value {
	rows := make([][]types.Value, nRows)
	for i := range rows {
		key := types.NewInt(int64(r.Intn(5)))
		if r.Intn(8) == 0 {
			key = types.Null
		}
		val := types.NewFloat(float64(r.Intn(2000))/100 - 5)
		if r.Intn(6) == 0 {
			val = types.Null
		}
		rows[i] = []types.Value{key, val}
	}
	return rows
}

var relCols = []algebra.ColumnMeta{
	{ID: 1, Name: "k", Type: types.KindInt},
	{ID: 2, Name: "v", Type: types.KindFloat},
}

// runAgg executes one GroupBy over literal rows.
func runAgg(t *testing.T, gb *algebra.GroupBy, rows [][]types.Value) *Relation {
	t.Helper()
	tree := algebra.NewTree(gb, algebra.NewTree(&algebra.Values{Cols: relCols, Rows: rows}))
	rel, err := Run(tree, nil)
	if err != nil {
		t.Fatalf("run %s: %v", gb.OpName(), err)
	}
	return rel
}

// chunked cuts rows into n contiguous chunks; some may be empty.
func chunked(r *rand.Rand, rows [][]types.Value, n int) [][][]types.Value {
	cuts := make([]int, 0, n+1)
	cuts = append(cuts, 0)
	for i := 1; i < n; i++ {
		cuts = append(cuts, r.Intn(len(rows)+1))
	}
	cuts = append(cuts, len(rows))
	sort.Ints(cuts)
	out := make([][][]types.Value, n)
	for i := 0; i < n; i++ {
		out[i] = rows[cuts[i]:cuts[i+1]]
	}
	return out
}

// canonRows renders a relation's rows order-insensitively, floats at 12
// significant digits to absorb summation reassociation.
func canonRows(rel *Relation) []string {
	out := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			if v.Kind() == types.KindFloat {
				parts[j] = strconv.FormatFloat(v.Float(), 'g', 12, 64)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// decompose runs the split pipeline: partial per chunk, concatenate the
// states, finalize — mirroring partial-agg → movement → final-agg.
func decompose(t *testing.T, keys []algebra.ColumnID, c aggCase, chunks [][][]types.Value) *Relation {
	t.Helper()
	partialGB := &algebra.GroupBy{Keys: keys, Aggs: []algebra.AggDef{c.partial}, Phase: algebra.AggPartial}
	var stateCols []algebra.ColumnMeta
	var states [][]types.Value
	for _, chunk := range chunks {
		rel := runAgg(t, partialGB, chunk)
		stateCols = rel.Cols
		for _, row := range rel.Rows {
			states = append(states, row)
		}
	}
	stateRef := algebra.NewColRef(stateCols[len(stateCols)-1])
	finalGB := &algebra.GroupBy{
		Keys:  keys,
		Aggs:  []algebra.AggDef{c.final(stateRef, 20)},
		Phase: algebra.AggFinal,
	}
	tree := algebra.NewTree(finalGB, algebra.NewTree(&algebra.Values{Cols: stateCols, Rows: states}))
	rel, err := Run(tree, nil)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return rel
}

// TestAggDecompositionProperty is the property sweep: 60 random
// relations per aggregate, keyed and keyless, cut into 1..6 chunks.
func TestAggDecompositionProperty(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	for _, c := range aggCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(20260808))
			for trial := 0; trial < trials; trial++ {
				nRows := r.Intn(120)
				rows := randRelation(r, nRows)
				var keys []algebra.ColumnID
				if r.Intn(4) > 0 {
					keys = []algebra.ColumnID{1}
				}
				direct := runAgg(t, &algebra.GroupBy{
					Keys: keys,
					Aggs: []algebra.AggDef{{Func: c.partial.Func, Arg: c.partial.Arg, ID: 20, Name: "out"}},
				}, rows)
				split := decompose(t, keys, c, chunked(r, rows, 1+r.Intn(6)))
				want, got := canonRows(direct), canonRows(split)
				if fmt.Sprint(want) != fmt.Sprint(got) {
					t.Fatalf("trial %d (rows=%d, keys=%v): direct %v != split %v",
						trial, nRows, keys, want, got)
				}
			}
		})
	}
}

// TestAggDecompositionEdges pins the corners the fuzz sweep may not
// always hit: an entirely empty relation, all-NULL values, and every
// chunk empty in a keyless aggregation (the all-default partial rows
// must still finalize to COUNT 0 / SUM NULL).
func TestAggDecompositionEdges(t *testing.T) {
	for _, c := range aggCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			empty := [][]types.Value{}
			allNull := make([][]types.Value, 10)
			for i := range allNull {
				allNull[i] = []types.Value{types.NewInt(int64(i % 2)), types.Null}
			}
			for _, tc := range []struct {
				name string
				rows [][]types.Value
				keys []algebra.ColumnID
			}{
				{"empty-keyless", empty, nil},
				{"empty-keyed", empty, []algebra.ColumnID{1}},
				{"all-null-vals", allNull, []algebra.ColumnID{1}},
				{"all-null-keyless", allNull, nil},
			} {
				direct := runAgg(t, &algebra.GroupBy{
					Keys: tc.keys,
					Aggs: []algebra.AggDef{{Func: c.partial.Func, Arg: c.partial.Arg, ID: 20, Name: "out"}},
				}, tc.rows)
				split := decompose(t, tc.keys, c, chunked(r, tc.rows, 4))
				if fmt.Sprint(canonRows(direct)) != fmt.Sprint(canonRows(split)) {
					t.Errorf("%s: direct %v != split %v", tc.name, canonRows(direct), canonRows(split))
				}
			}
		})
	}
}

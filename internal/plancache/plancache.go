// Package plancache implements the control node's shared plan cache: a
// concurrent, bounded LRU keyed by an opaque fingerprint string, with
// singleflight compilation (N concurrent misses on one key compile once)
// and epoch-based invalidation (an entry compiled under catalog epoch E
// is never served once the observed epoch moves past E — the stale-plan
// guarantee DDL and statistics refresh rely on).
//
// The cache stores opaque values; the pdwqo layer above decides what a
// "plan template" is and how literals are re-bound into it. Keeping this
// package value-agnostic keeps its concurrency surface small and fully
// unit-testable.
package plancache

import (
	"container/list"
	"strconv"
	"sync"
)

// DefaultCapacity bounds the cache when the caller passes a non-positive
// capacity to New.
const DefaultCapacity = 128

// Metrics is a snapshot of the cache's lifetime counters.
type Metrics struct {
	// Hits counts lookups served from a cached entry at the current epoch.
	Hits int64
	// Shared counts lookups that joined another caller's in-flight
	// compilation instead of compiling themselves (the singleflight win).
	Shared int64
	// Misses counts lookups that had to start a compilation.
	Misses int64
	// Compiles counts compilations that finished successfully and were
	// stored. Exactly-once per (key, epoch): Compiles never exceeds the
	// number of distinct (key, epoch) pairs ever missed.
	Compiles int64
	// CompileErrors counts compilations that failed; errors are never
	// cached, so the next lookup retries.
	CompileErrors int64
	// Evictions counts entries dropped by the LRU capacity bound.
	Evictions int64
	// Invalidations counts entries dropped because their epoch went stale.
	Invalidations int64
}

// Outcome classifies how Do satisfied a lookup.
type Outcome uint8

// Do outcomes.
const (
	// OutcomeMiss means the caller ran the compile itself.
	OutcomeMiss Outcome = iota
	// OutcomeHit means a cached entry at the requested epoch was served.
	OutcomeHit
	// OutcomeShared means the caller joined another caller's in-flight
	// compilation for the same (key, epoch).
	OutcomeShared
)

// String names the outcome, matching the optimize.cache.* counter suffixes.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeShared:
		return "shared"
	default:
		return "miss"
	}
}

// entry is one cached value pinned to the epoch it was compiled under.
type entry struct {
	key   string
	epoch uint64
	val   any
	elem  *list.Element
}

// flight is one in-progress compilation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is the concurrent bounded LRU with singleflight and epochs.
// The zero value is not usable; construct with New.
type Cache struct {
	capacity int // immutable after New; everything below mu is guarded by it
	mu       sync.Mutex
	epoch    uint64 // highest epoch ever observed by Do
	entries  map[string]*entry
	order    *list.List // front = most recently used
	inflight map[string]*flight
	m        Metrics
}

// New returns an empty cache bounded to capacity entries (DefaultCapacity
// when capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*entry),
		order:    list.New(),
		inflight: make(map[string]*flight),
	}
}

// Do looks key up at the given epoch, compiling on miss. The compile
// function runs outside the cache lock; concurrent callers for the same
// (key, epoch) share one compilation. The Outcome reports whether the
// value came from a cached entry, a shared flight, or this caller's own
// compile. Compile errors are returned, not cached.
func (c *Cache) Do(key string, epoch uint64, compile func() (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	c.observeLocked(epoch)
	if e, ok := c.entries[key]; ok {
		if e.epoch == epoch {
			c.order.MoveToFront(e.elem)
			c.m.Hits++
			v := e.val
			c.mu.Unlock()
			return v, OutcomeHit, nil
		}
		// The entry predates this caller's epoch (observeLocked already
		// swept anything older than the cache's high-water mark; this
		// handles a racing bump between the caller reading the epoch and
		// acquiring the lock).
		c.removeLocked(e)
		c.m.Invalidations++
	}
	fkey := key + "\x00" + strconv.FormatUint(epoch, 10)
	if f, ok := c.inflight[fkey]; ok {
		c.m.Shared++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, OutcomeShared, f.err
		}
		return f.val, OutcomeShared, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[fkey] = f
	c.m.Misses++
	c.mu.Unlock()

	f.val, f.err = compile()

	c.mu.Lock()
	delete(c.inflight, fkey)
	if f.err == nil {
		c.m.Compiles++
		c.storeLocked(key, epoch, f.val)
	} else {
		c.m.CompileErrors++
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, OutcomeMiss, f.err
}

// Get looks key up at the given epoch without compiling. It serves the
// template-lookup fast path: the pdwqo layer probes the shape key with
// Get and falls through to a singleflighted Do on an exact key when the
// template is absent. A stale entry is removed, never returned.
func (c *Cache) Get(key string, epoch uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(epoch)
	e, ok := c.entries[key]
	if !ok {
		c.m.Misses++
		return nil, false
	}
	if e.epoch != epoch {
		c.removeLocked(e)
		c.m.Invalidations++
		c.m.Misses++
		return nil, false
	}
	c.order.MoveToFront(e.elem)
	c.m.Hits++
	return e.val, true
}

// Put stores val under key at the given epoch (dropped unobserved if the
// epoch is already stale). It lets the pdwqo layer publish a re-bindable
// template under its shape key after compiling it under an exact key.
func (c *Cache) Put(key string, epoch uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(epoch)
	c.storeLocked(key, epoch, val)
}

// observeLocked advances the cache's epoch high-water mark and sweeps
// entries that can never be served again (their epoch is strictly older
// than something some caller has already seen).
func (c *Cache) observeLocked(epoch uint64) {
	if epoch <= c.epoch {
		return
	}
	c.epoch = epoch
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.epoch < epoch {
			c.removeLocked(e)
			c.m.Invalidations++
		}
		el = next
	}
}

// storeLocked inserts (or refreshes) key at epoch and enforces capacity.
func (c *Cache) storeLocked(key string, epoch uint64, val any) {
	if epoch < c.epoch {
		// A bump happened while this value compiled; it is stale on
		// arrival and must not be served.
		c.m.Invalidations++
		return
	}
	if e, ok := c.entries[key]; ok {
		e.epoch, e.val = epoch, val
		c.order.MoveToFront(e.elem)
		return
	}
	e := &entry{key: key, epoch: epoch, val: val}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	for len(c.entries) > c.capacity {
		oldest := c.order.Back().Value.(*entry)
		c.removeLocked(oldest)
		c.m.Evictions++
	}
}

func (c *Cache) removeLocked(e *entry) {
	c.order.Remove(e.elem)
	delete(c.entries, e.key)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Capacity returns the LRU bound.
func (c *Cache) Capacity() int { return c.capacity }

// Epoch returns the highest epoch the cache has observed.
func (c *Cache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Metrics returns a snapshot of the lifetime counters.
func (c *Cache) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

// Purge drops every entry (counted as invalidations) without touching the
// epoch; in-flight compilations are unaffected.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]*entry)
	c.order.Init()
	c.m.Invalidations += int64(n)
}

SELECT MIN(k11) AS mn, MAX(v3) AS mx, COUNT(*) AS cnt
FROM st00, st01, st02, st03, st04, st05, st06, st07, st08, st09, st10, st11, st12, st13, st14, st15
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k0 = f4
  AND k0 = f5
  AND k0 = f6
  AND k0 = f7
  AND k0 = f8
  AND k0 = f9
  AND k0 = f10
  AND k0 = f11
  AND k0 = f12
  AND k0 = f13
  AND k0 = f14
  AND k0 = f15
  AND v0 <= 172
  AND v4 <= 144
  AND v8 <= 723
  AND v11 <= 872
  AND v12 <= 543
  AND v15 <= 687

SELECT g1, COUNT(*) AS cnt, SUM(v5) AS sv
FROM ch00, ch01, ch02, ch03, ch04, ch05, ch06, ch07, ch08, ch09
WHERE k0 = f1
  AND k1 = f2
  AND k2 = f3
  AND k3 = f4
  AND k4 = f5
  AND k5 = f6
  AND k6 = f7
  AND k7 = f8
  AND k8 = f9
  AND v0 <= 153
  AND v1 <= 458
  AND v2 <= 837
  AND v4 <= 657
  AND v6 <= 110
  AND v7 <= 216
GROUP BY g1

package qgen

// Corpus is the checked-in seed corpus: one spec per (topology, size
// bucket), 32 queries total, spanning executable small joins (≤10
// relations, where exhaustive search is feasible and the metamorphic
// difftest compares greedy vs exhaustive results byte-for-byte) up to
// 100-relation optimize-only stress shapes. The golden fingerprints
// under testdata/ pin the generator's output; regenerate with
//
//	go test ./internal/qgen -run TestCorpusGolden -update
func Corpus() []Spec {
	sizes := []int{4, 6, 8, 10, 16, 24, 48, 100}
	var out []Spec
	for ti, topo := range Topologies() {
		for si, n := range sizes {
			out = append(out, Spec{
				Topology:  topo,
				Relations: n,
				Seed:      int64(1000 + 17*ti + 101*si),
			})
		}
	}
	return out
}

// SmallCorpus filters the corpus to specs where exhaustive enumeration is
// feasible and the generated query is executed, not just planned.
func SmallCorpus() []Spec {
	var out []Spec
	for _, s := range Corpus() {
		if s.Relations <= 10 {
			out = append(out, s)
		}
	}
	return out
}

// LargeCorpus filters the corpus to the optimize-only stress specs.
func LargeCorpus() []Spec {
	var out []Spec
	for _, s := range Corpus() {
		if s.Relations > 10 {
			out = append(out, s)
		}
	}
	return out
}

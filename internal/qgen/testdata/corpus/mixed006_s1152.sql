SELECT g5, COUNT(*) AS cnt, SUM(v2) AS sv
FROM mi00, mi01, mi02, mi03, mi04, mi05
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k3 = f4
  AND k4 = f5
  AND v0 <= 578
GROUP BY g5

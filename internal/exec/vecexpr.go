package exec

// Vectorized expression evaluation: scalars are computed a batch at a
// time over typed column vectors, under a selection vector naming the
// batch positions still alive. Kernels cover the hot shapes (column
// references, constants, comparisons, arithmetic, three-valued AND/OR,
// NOT/NEG/IS NULL, numeric casts); everything else routes through the
// row engine's Eval one selected row at a time, so the two engines
// cannot drift on the long tail of expression semantics.
//
// Kernel outputs are read-only after construction: typed fast paths
// write payloads positionally into dense vectors and may alias an
// operand's null bitmap, so callers must never mutate a vector evalVec
// returned.
//
// Error fidelity: every error the row engine raises is raised here with
// the same text, because kernels either call the same types helpers or
// construct the same typed errors. The one documented divergence is
// error *choice* when two different rows of one batch would each raise a
// different error: the row engine reports the error of the earliest row,
// while a kernel evaluating operand-by-operand may report the error of
// an earlier operand on a later row first. The corpus suites pin the
// shared behaviour; DESIGN.md records the corner.

import (
	"fmt"

	"pdwqo/internal/algebra"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
	"pdwqo/internal/vec"
)

// vecEnv resolves column IDs against one operator's input schema and
// lazily carries the row-fallback environment.
type vecEnv struct {
	cols []algebra.ColumnMeta
	idx  map[algebra.ColumnID]int
	env  *Env      // built on first fallback
	row  types.Row // reusable fallback row buffer
}

func newVecEnv(cols []algebra.ColumnMeta) *vecEnv {
	idx := make(map[algebra.ColumnID]int, len(cols))
	for i, c := range cols {
		idx[c.ID] = i
	}
	return &vecEnv{cols: cols, idx: idx}
}

// selLen returns the number of positions evalVec computes: the selection
// length, or the whole batch when sel is nil.
func selLen(sel []int32, b *vec.Batch) int {
	if sel == nil {
		return b.N
	}
	return len(sel)
}

// pos maps a dense result index back to its batch position.
func pos(sel []int32, i int) int {
	if sel == nil {
		return i
	}
	return int(sel[i])
}

// evalVec evaluates a bound scalar over the selected batch positions,
// returning a dense vector of selLen(sel, b) results in selection order.
func evalVec(e algebra.Scalar, ve *vecEnv, b *vec.Batch, sel []int32) (*vec.Vec, error) {
	switch x := e.(type) {
	case *algebra.ColRef:
		i, ok := ve.idx[x.ID]
		if !ok {
			return nil, fmt.Errorf("exec: column c%d not in row", x.ID)
		}
		if sel == nil {
			return b.Cols[i], nil
		}
		return b.Cols[i].Gather(sel), nil

	case *algebra.Const:
		return constVec(x.Val, selLen(sel, b)), nil

	case *algebra.Binary:
		return evalVecBinary(x, ve, b, sel)

	case *algebra.Not:
		v, err := evalVec(x.E, ve, b, sel)
		if err != nil {
			return nil, err
		}
		n := selLen(sel, b)
		out := vec.NewDense(types.KindBool, n)
		if !v.Mixed && v.Kind == types.KindBool {
			out.CopyNulls(v)
			for i := 0; i < n; i++ {
				out.I64[i] = 1 - (v.I64[i] & 1)
			}
			return out, nil
		}
		for i := 0; i < n; i++ {
			ev := v.At(i)
			if ev.IsNull() {
				out.SetNull(i)
				continue
			}
			bv, err := ev.AsBool()
			if err != nil {
				return nil, fmt.Errorf("exec: NOT operand: %w", err)
			}
			out.I64[i] = b2i(!bv)
		}
		return out, nil

	case *algebra.Neg:
		v, err := evalVec(x.E, ve, b, sel)
		if err != nil {
			return nil, err
		}
		n := selLen(sel, b)
		out := &vec.Vec{}
		for i := 0; i < n; i++ {
			nv, err := types.Neg(v.At(i))
			if err != nil {
				return nil, err
			}
			out.Append(nv)
		}
		return out, nil

	case *algebra.IsNull:
		v, err := evalVec(x.E, ve, b, sel)
		if err != nil {
			return nil, err
		}
		n := selLen(sel, b)
		out := vec.NewDense(types.KindBool, n)
		for i := 0; i < n; i++ {
			out.I64[i] = b2i(v.IsNull(i) != x.Negated)
		}
		return out, nil

	case *algebra.Cast:
		v, err := evalVec(x.E, ve, b, sel)
		if err != nil {
			return nil, err
		}
		n := selLen(sel, b)
		out := &vec.Vec{}
		for i := 0; i < n; i++ {
			cv, err := CastValue(v.At(i), x.To)
			if err != nil {
				return nil, err
			}
			out.Append(cv)
		}
		return out, nil

	default:
		// Like, InList, Func, Case and anything new: the row engine IS
		// the semantics, one selected row at a time.
		return evalVecFallback(e, ve, b, sel)
	}
}

// evalVecFallback materializes each selected row into a reusable buffer
// and delegates to the row engine's Eval.
func evalVecFallback(e algebra.Scalar, ve *vecEnv, b *vec.Batch, sel []int32) (*vec.Vec, error) {
	if ve.env == nil {
		ve.env = NewEnv(ve.cols)
		ve.row = make(types.Row, len(ve.cols))
	}
	n := selLen(sel, b)
	out := &vec.Vec{}
	for i := 0; i < n; i++ {
		p := pos(sel, i)
		for c := range b.Cols {
			ve.row[c] = b.Cols[c].At(p)
		}
		ve.env.Row = ve.row
		v, err := Eval(e, ve.env)
		if err != nil {
			return nil, err
		}
		out.Append(v)
	}
	return out, nil
}

// b2i is the branch-free bool→BIT payload conversion.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// constVec broadcasts one value across n rows.
func constVec(v types.Value, n int) *vec.Vec {
	if v.IsNull() {
		return allNullVec(n)
	}
	out := vec.NewDense(v.Kind(), n)
	switch v.Kind() {
	case types.KindInt, types.KindDate, types.KindBool:
		var x int64
		switch v.Kind() {
		case types.KindInt:
			x = v.Int()
		case types.KindDate:
			x = v.DateDays()
		default:
			x = b2i(v.Bool())
		}
		for i := range out.I64 {
			out.I64[i] = x
		}
	case types.KindFloat:
		x := v.Float()
		for i := range out.F64 {
			out.F64[i] = x
		}
	case types.KindString:
		x := v.Str()
		for i := range out.Str {
			out.Str[i] = x
		}
	}
	return out
}

// allNullVec builds an n-row all-NULL vector.
func allNullVec(n int) *vec.Vec {
	out := &vec.Vec{}
	for i := 0; i < n; i++ {
		out.AppendNull()
	}
	return out
}

// boolCol decodes a logical operand vector into dense bool/null slices,
// mirroring evalBool: NULL rows are null, non-BIT rows are the same
// *types.KindError AsBool reports, raised at the first offending row.
func boolCol(v *vec.Vec, n int) (bs, nulls []bool, err error) {
	bs = make([]bool, n)
	nulls = make([]bool, n)
	if !v.Mixed {
		switch v.Kind {
		case types.KindBool:
			if v.Nulls == nil {
				for i := 0; i < n; i++ {
					bs[i] = v.I64[i] != 0
				}
			} else {
				for i := 0; i < n; i++ {
					if v.IsNull(i) {
						nulls[i] = true
					} else {
						bs[i] = v.I64[i] != 0
					}
				}
			}
			return bs, nulls, nil
		case types.KindNull:
			for i := 0; i < n; i++ {
				nulls[i] = true
			}
			return bs, nulls, nil
		}
	}
	for i := 0; i < n; i++ {
		ev := v.At(i)
		if ev.IsNull() {
			nulls[i] = true
			continue
		}
		b, err := ev.AsBool()
		if err != nil {
			return nil, nil, err
		}
		bs[i] = b
	}
	return bs, nulls, nil
}

// evalVecBinary dispatches AND/OR to the short-circuit kernel,
// comparisons and arithmetic to elementwise kernels. A constant operand
// skips broadcasting: the kernel folds the scalar directly.
func evalVecBinary(x *algebra.Binary, ve *vecEnv, b *vec.Batch, sel []int32) (*vec.Vec, error) {
	switch x.Op {
	case sqlparser.OpAnd, sqlparser.OpOr:
		return evalVecAndOr(x, ve, b, sel)
	}
	n := selLen(sel, b)
	if c, ok := x.R.(*algebra.Const); ok {
		l, err := evalVec(x.L, ve, b, sel)
		if err != nil {
			return nil, err
		}
		if x.Op.IsComparison() {
			return compareScalar(x.Op, l, c.Val, n, false)
		}
		return arithScalar(x.Op, l, c.Val, n, false)
	}
	if c, ok := x.L.(*algebra.Const); ok {
		r, err := evalVec(x.R, ve, b, sel)
		if err != nil {
			return nil, err
		}
		if x.Op.IsComparison() {
			return compareScalar(x.Op, r, c.Val, n, true)
		}
		return arithScalar(x.Op, r, c.Val, n, true)
	}

	l, err := evalVec(x.L, ve, b, sel)
	if err != nil {
		return nil, err
	}
	r, err := evalVec(x.R, ve, b, sel)
	if err != nil {
		return nil, err
	}
	if x.Op.IsComparison() {
		return compareKernel(x.Op, l, r, n)
	}
	return arithKernel(x.Op, l, r, n)
}

// evalVecAndOr reproduces the row engine's three-valued short circuit on
// batches: the left operand is evaluated over every selected row; the
// right operand only over the sub-selection the left side did not
// already decide (not-false for AND, not-true for OR) — so a row whose
// right side would error is error-free exactly when the row engine
// short-circuits past it.
func evalVecAndOr(x *algebra.Binary, ve *vecEnv, b *vec.Batch, sel []int32) (*vec.Vec, error) {
	and := x.Op == sqlparser.OpAnd
	n := selLen(sel, b)
	lv, err := evalVec(x.L, ve, b, sel)
	if err != nil {
		return nil, err
	}
	lb, lnull, err := boolCol(lv, n)
	if err != nil {
		return nil, err
	}
	// Sub-selection of batch positions still undecided by the left side.
	var sub []int32
	subAt := make([]int32, n) // dense index -> position in sub results
	for i := 0; i < n; i++ {
		undecided := lnull[i] || (and && lb[i]) || (!and && !lb[i])
		if undecided {
			subAt[i] = int32(len(sub))
			sub = append(sub, int32(pos(sel, i)))
		} else {
			subAt[i] = -1
		}
	}
	var rb, rnull []bool
	if len(sub) > 0 {
		rv, err := evalVec(x.R, ve, b, sub)
		if err != nil {
			return nil, err
		}
		rb, rnull, err = boolCol(rv, len(sub))
		if err != nil {
			return nil, err
		}
	}
	out := vec.NewDense(types.KindBool, n)
	for i := 0; i < n; i++ {
		si := subAt[i]
		if si < 0 {
			// Left side decided: false for AND, true for OR.
			out.I64[i] = b2i(!and)
			continue
		}
		switch {
		case and && !rnull[si] && !rb[si]:
			// out.I64[i] already 0
		case !and && !rnull[si] && rb[si]:
			out.I64[i] = 1
		case lnull[i] || rnull[si]:
			out.SetNull(i)
		default:
			out.I64[i] = b2i(and)
		}
	}
	return out, nil
}

// cmpLoop writes one comparison over two equal-length payload slices
// into a BIT payload, with the operator switch hoisted out of the loop.
func cmpLoop[T int64 | float64 | string](op sqlparser.BinOp, a, b []T, out []int64) {
	switch op {
	case sqlparser.OpEq:
		for i := range out {
			out[i] = b2i(a[i] == b[i])
		}
	case sqlparser.OpNe:
		for i := range out {
			out[i] = b2i(a[i] != b[i])
		}
	case sqlparser.OpLt:
		for i := range out {
			out[i] = b2i(a[i] < b[i])
		}
	case sqlparser.OpLe:
		for i := range out {
			out[i] = b2i(a[i] <= b[i])
		}
	case sqlparser.OpGt:
		for i := range out {
			out[i] = b2i(a[i] > b[i])
		}
	default: // OpGe
		for i := range out {
			out[i] = b2i(a[i] >= b[i])
		}
	}
}

// cmpLoopScalar is cmpLoop against one fixed right operand.
func cmpLoopScalar[T int64 | float64 | string](op sqlparser.BinOp, a []T, b T, out []int64) {
	switch op {
	case sqlparser.OpEq:
		for i := range out {
			out[i] = b2i(a[i] == b)
		}
	case sqlparser.OpNe:
		for i := range out {
			out[i] = b2i(a[i] != b)
		}
	case sqlparser.OpLt:
		for i := range out {
			out[i] = b2i(a[i] < b)
		}
	case sqlparser.OpLe:
		for i := range out {
			out[i] = b2i(a[i] <= b)
		}
	case sqlparser.OpGt:
		for i := range out {
			out[i] = b2i(a[i] > b)
		}
	default: // OpGe
		for i := range out {
			out[i] = b2i(a[i] >= b)
		}
	}
}

// flipCmp mirrors a comparison so `const op col` can run as `col op' const`.
func flipCmp(op sqlparser.BinOp) sqlparser.BinOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	}
	return op // Eq, Ne are symmetric
}

// floatCol coerces a numeric vector's payload to a dense float64 slice
// (NULL lanes hold garbage the bitmap masks).
func floatCol(v *vec.Vec, n int) []float64 {
	if v.Kind == types.KindFloat {
		return v.F64
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = float64(v.I64[i])
	}
	return out
}

// i64Typed reports whether a vector's payload is int64-backed and
// comparable within its own kind (INT, DATE, BIT).
func i64Typed(v *vec.Vec) bool {
	return v.Kind == types.KindInt || v.Kind == types.KindDate || v.Kind == types.KindBool
}

// compareKernel evaluates one comparison over two dense operand vectors,
// with typed fast paths and a boxed general path sharing the row
// engine's semantics (NULL in → NULL out, incomparable kinds error).
func compareKernel(op sqlparser.BinOp, l, r *vec.Vec, n int) (*vec.Vec, error) {
	if !l.Mixed && !r.Mixed {
		if l.Kind == types.KindNull || r.Kind == types.KindNull {
			return allNullVec(n), nil
		}
		out := vec.NewDense(types.KindBool, n)
		out.OrNulls(l, r)
		switch {
		case l.Kind == r.Kind && i64Typed(l):
			cmpLoop(op, l.I64, r.I64, out.I64)
			return out, nil
		case l.Kind.Numeric() && r.Kind.Numeric():
			// Mixed INT/FLOAT compares after float coercion, exactly as
			// types.CompareChecked does.
			cmpLoop(op, floatCol(l, n), floatCol(r, n), out.I64)
			return out, nil
		case l.Kind == types.KindString && r.Kind == types.KindString:
			cmpLoop(op, l.Str, r.Str, out.I64)
			return out, nil
		}
	}
	// General path: boxed elementwise, same checks as evalBinary.
	out := vec.NewDense(types.KindBool, n)
	for i := 0; i < n; i++ {
		a, b := l.At(i), r.At(i)
		if a.IsNull() || b.IsNull() {
			out.SetNull(i)
			continue
		}
		c, err := types.CompareChecked(a, b)
		if err != nil {
			return nil, fmt.Errorf("exec: comparing %s with %s", a.Kind(), b.Kind())
		}
		out.I64[i] = b2i(cmpHolds(op, c))
	}
	return out, nil
}

// cmpHolds applies a comparison operator to a three-way compare result.
func cmpHolds(op sqlparser.BinOp, c int) bool {
	switch op {
	case sqlparser.OpEq:
		return c == 0
	case sqlparser.OpNe:
		return c != 0
	case sqlparser.OpLt:
		return c < 0
	case sqlparser.OpLe:
		return c <= 0
	case sqlparser.OpGt:
		return c > 0
	default: // OpGe
		return c >= 0
	}
}

// compareScalar evaluates column-vs-constant comparisons without
// broadcasting the constant. constLeft records that the constant was the
// left operand (loops run the mirrored operator; the general path keeps
// operand order so error text matches the row engine).
func compareScalar(op sqlparser.BinOp, v *vec.Vec, cv types.Value, n int, constLeft bool) (*vec.Vec, error) {
	if cv.IsNull() || (!v.Mixed && v.Kind == types.KindNull) {
		return allNullVec(n), nil
	}
	eff := op
	if constLeft {
		eff = flipCmp(op)
	}
	if !v.Mixed {
		switch {
		case v.Kind == cv.Kind() && i64Typed(v):
			out := vec.NewDense(types.KindBool, n)
			out.CopyNulls(v)
			var x int64
			switch v.Kind {
			case types.KindInt:
				x = cv.Int()
			case types.KindDate:
				x = cv.DateDays()
			default:
				x = b2i(cv.Bool())
			}
			cmpLoopScalar(eff, v.I64, x, out.I64)
			return out, nil
		case v.Kind.Numeric() && cv.Kind().Numeric():
			out := vec.NewDense(types.KindBool, n)
			out.CopyNulls(v)
			var x float64
			if cv.Kind() == types.KindInt {
				x = float64(cv.Int())
			} else {
				x = cv.Float()
			}
			cmpLoopScalar(eff, floatCol(v, n), x, out.I64)
			return out, nil
		case v.Kind == types.KindString && cv.Kind() == types.KindString:
			out := vec.NewDense(types.KindBool, n)
			out.CopyNulls(v)
			cmpLoopScalar(eff, v.Str, cv.Str(), out.I64)
			return out, nil
		}
	}
	// General path: boxed elementwise in original operand order.
	out := vec.NewDense(types.KindBool, n)
	for i := 0; i < n; i++ {
		ev := v.At(i)
		if ev.IsNull() {
			out.SetNull(i)
			continue
		}
		a, b := ev, cv
		if constLeft {
			a, b = cv, ev
		}
		c, err := types.CompareChecked(a, b)
		if err != nil {
			return nil, fmt.Errorf("exec: comparing %s with %s", a.Kind(), b.Kind())
		}
		out.I64[i] = b2i(cmpHolds(op, c))
	}
	return out, nil
}

// arithLoop writes one arithmetic operator over two payload slices with
// the switch hoisted; Div is excluded (zero checks need the bitmap).
func arithLoop[T int64 | float64](op sqlparser.BinOp, a, b []T, out []T) {
	switch op {
	case sqlparser.OpAdd:
		for i := range out {
			out[i] = a[i] + b[i]
		}
	case sqlparser.OpSub:
		for i := range out {
			out[i] = a[i] - b[i]
		}
	default: // OpMul
		for i := range out {
			out[i] = a[i] * b[i]
		}
	}
}

// arithLoopScalar is arithLoop against one fixed operand; constLeft
// selects const-op-col evaluation order (matters for Sub).
func arithLoopScalar[T int64 | float64](op sqlparser.BinOp, a []T, b T, out []T, constLeft bool) {
	switch {
	case op == sqlparser.OpAdd:
		for i := range out {
			out[i] = a[i] + b
		}
	case op == sqlparser.OpSub && !constLeft:
		for i := range out {
			out[i] = a[i] - b
		}
	case op == sqlparser.OpSub:
		for i := range out {
			out[i] = b - a[i]
		}
	default: // OpMul
		for i := range out {
			out[i] = a[i] * b
		}
	}
}

// arithKernel evaluates +,-,*,/ over two dense operand vectors. INT+INT
// wraps on int64 exactly like types.Add; any FLOAT operand promotes;
// division always yields FLOAT and fails on zero (NULL rows never
// divide, so a NULL lane's zero divisor raises nothing).
func arithKernel(op sqlparser.BinOp, l, r *vec.Vec, n int) (*vec.Vec, error) {
	if !l.Mixed && !r.Mixed {
		if l.Kind == types.KindNull || r.Kind == types.KindNull {
			return allNullVec(n), nil
		}
		switch {
		case l.Kind == types.KindInt && r.Kind == types.KindInt && op != sqlparser.OpDiv:
			out := vec.NewDense(types.KindInt, n)
			out.OrNulls(l, r)
			arithLoop(op, l.I64, r.I64, out.I64)
			return out, nil
		case l.Kind.Numeric() && r.Kind.Numeric() && op != sqlparser.OpDiv:
			out := vec.NewDense(types.KindFloat, n)
			out.OrNulls(l, r)
			arithLoop(op, floatCol(l, n), floatCol(r, n), out.F64)
			return out, nil
		case l.Kind.Numeric() && r.Kind.Numeric():
			out := vec.NewDense(types.KindFloat, n)
			out.OrNulls(l, r)
			lf, rf := floatCol(l, n), floatCol(r, n)
			for i := 0; i < n; i++ {
				if out.IsNull(i) {
					continue
				}
				if rf[i] == 0 {
					return nil, fmt.Errorf("types: division by zero")
				}
				out.F64[i] = lf[i] / rf[i]
			}
			return out, nil
		}
	}
	// General path: the shared types helpers, elementwise.
	out := &vec.Vec{}
	for i := 0; i < n; i++ {
		v, err := arithBoxed(op, l.At(i), r.At(i))
		if err != nil {
			return nil, err
		}
		out.Append(v)
	}
	return out, nil
}

// arithScalar evaluates column-op-constant arithmetic without
// broadcasting the constant.
func arithScalar(op sqlparser.BinOp, v *vec.Vec, cv types.Value, n int, constLeft bool) (*vec.Vec, error) {
	if cv.IsNull() || (!v.Mixed && v.Kind == types.KindNull) {
		return allNullVec(n), nil
	}
	if !v.Mixed {
		switch {
		case v.Kind == types.KindInt && cv.Kind() == types.KindInt && op != sqlparser.OpDiv:
			out := vec.NewDense(types.KindInt, n)
			out.CopyNulls(v)
			arithLoopScalar(op, v.I64, cv.Int(), out.I64, constLeft)
			return out, nil
		case v.Kind.Numeric() && cv.Kind().Numeric() && op != sqlparser.OpDiv:
			out := vec.NewDense(types.KindFloat, n)
			out.CopyNulls(v)
			var x float64
			if cv.Kind() == types.KindInt {
				x = float64(cv.Int())
			} else {
				x = cv.Float()
			}
			arithLoopScalar(op, floatCol(v, n), x, out.F64, constLeft)
			return out, nil
		}
	}
	// Division and the general path: boxed elementwise in operand order.
	out := &vec.Vec{}
	for i := 0; i < n; i++ {
		ev := v.At(i)
		a, b := ev, cv
		if constLeft {
			a, b = cv, ev
		}
		res, err := arithBoxed(op, a, b)
		if err != nil {
			return nil, err
		}
		out.Append(res)
	}
	return out, nil
}

// arithBoxed applies one arithmetic operator via the shared types
// helpers — the single source of row-engine arithmetic semantics.
func arithBoxed(op sqlparser.BinOp, a, b types.Value) (types.Value, error) {
	switch op {
	case sqlparser.OpAdd:
		return types.Add(a, b)
	case sqlparser.OpSub:
		return types.Sub(a, b)
	case sqlparser.OpMul:
		return types.Mul(a, b)
	case sqlparser.OpDiv:
		return types.Div(a, b)
	}
	return types.Null, fmt.Errorf("exec: unknown operator %s", op)
}

// truthySel applies SQL predicate semantics to a predicate result
// vector, returning the batch positions where it is TRUE (NULL counts as
// false; a non-BIT value is the TruthyChecked error, unwrapped — callers
// add their site-specific wrap).
func truthySel(v *vec.Vec, n int) ([]int32, error) {
	var sel []int32
	// Typed fast path: a BIT vector selects directly off the payload.
	if !v.Mixed && v.Kind == types.KindBool {
		if v.Nulls == nil {
			for i := 0; i < n; i++ {
				if v.I64[i] != 0 {
					sel = append(sel, int32(i))
				}
			}
			return sel, nil
		}
		for i := 0; i < n; i++ {
			if v.I64[i] != 0 && !v.IsNull(i) {
				sel = append(sel, int32(i))
			}
		}
		return sel, nil
	}
	if !v.Mixed && v.Kind == types.KindNull {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		ev := v.At(i)
		keep, err := TruthyChecked(ev)
		if err != nil {
			return nil, err
		}
		if keep {
			sel = append(sel, int32(i))
		}
	}
	return sel, nil
}

package planverify

import (
	"math"
	"sort"

	"pdwqo/internal/algebra"
	"pdwqo/internal/memoxml"
)

// CheckMemo verifies the decoded search space the PDW optimizer
// consumed: a live root, live child references, an acyclic group graph
// from the root, at most one winner per group, winners extracting only
// from live groups, and non-negative estimates throughout.
func CheckMemo(dec *memoxml.Decoded) []Violation {
	if dec == nil {
		return []Violation{violation(CodeMemoRootMissing, "no decoded memo")}
	}
	var out []Violation
	if _, ok := dec.Groups[dec.Root]; !ok {
		out = append(out, violation(CodeMemoRootMissing, "root group %d does not exist", dec.Root))
	}
	for _, id := range sortedGroupIDs(dec) {
		g := dec.Groups[id]
		out = append(out, checkGroup(dec, g)...)
	}
	out = append(out, checkAcyclic(dec)...)
	return out
}

// checkGroup verifies one group's expressions and statistics.
func checkGroup(dec *memoxml.Decoded, g *memoxml.DecodedGroup) []Violation {
	var out []Violation
	bad := func(v float64) bool { return v < 0 || math.IsNaN(v) }
	if bad(g.Rows) || bad(g.Width) {
		out = append(out, groupViolation(CodeMemoEstimate, g.ID,
			"rows=%g width=%g", g.Rows, g.Width))
	}
	for _, id := range sortedStatIDs(g) {
		cs := g.ColStats[id]
		if bad(cs.NDV) || bad(cs.Width) || cs.NullFrac < 0 || cs.NullFrac > 1 || math.IsNaN(cs.NullFrac) {
			out = append(out, groupViolation(CodeMemoEstimate, g.ID,
				"column c%d stats ndv=%g nullFrac=%g width=%g", id, cs.NDV, cs.NullFrac, cs.Width))
		}
	}
	if len(g.Exprs) == 0 {
		out = append(out, groupViolation(CodeMemoEmptyGroup, g.ID, "group has no expressions"))
	}
	winners := 0
	for _, e := range g.Exprs {
		if bad(e.Cost) {
			out = append(out, groupViolation(CodeMemoEstimate, g.ID,
				"%s expression cost %g", e.Op.OpName(), e.Cost))
		}
		for _, c := range e.Children {
			child, ok := dec.Groups[c]
			if !ok {
				out = append(out, groupViolation(CodeMemoDanglingChild, g.ID,
					"%s expression references missing group %d", e.Op.OpName(), c))
				continue
			}
			if e.Winner && len(child.Exprs) == 0 {
				// Winner extraction descends the marked expressions; a
				// winner over an expressionless group has nothing to
				// extract.
				out = append(out, groupViolation(CodeWinnerDangling, g.ID,
					"winner %s references group %d with no expressions", e.Op.OpName(), c))
			}
		}
		if e.Winner {
			winners++
		}
	}
	if winners > 1 {
		out = append(out, groupViolation(CodeWinnerDuplicate, g.ID, "%d winner expressions", winners))
	}
	return out
}

// checkAcyclic rejects cycles in the group graph reachable from the
// root: the PDW enumerator's bottom-up order does not exist for a
// cyclic memo.
func checkAcyclic(dec *memoxml.Decoded) []Violation {
	const (
		visiting = 1
		done     = 2
	)
	state := map[int]uint8{}
	var out []Violation
	var dfs func(id int)
	dfs = func(id int) {
		switch state[id] {
		case visiting:
			out = append(out, groupViolation(CodeMemoCycle, id, "group participates in a reference cycle"))
			return
		case done:
			return
		}
		g, ok := dec.Groups[id]
		if !ok {
			return // reported as dangling by checkGroup
		}
		state[id] = visiting
		for _, e := range g.Exprs {
			for _, c := range e.Children {
				dfs(c)
			}
		}
		state[id] = done
	}
	dfs(dec.Root)
	return out
}

// CheckInteresting verifies the optimizer's interesting-column sets
// satisfy the fixpoint conditions of the paper's Figure 4 step 04 over
// the full logical memo: equijoin columns are interesting in every
// child that outputs them (transitivity through the conjunct list),
// group-by keys are interesting in the aggregation's child, and parent
// demand restricted to a child's output is interesting in the child.
// Only meaningful for ModeFull runs — the serial-baseline mode derives
// from the winner slice, a subset of the expressions examined here.
func CheckInteresting(dec *memoxml.Decoded, interesting func(group int) []algebra.ColumnID) []Violation {
	sets := map[int]algebra.ColSet{}
	outSets := map[int]algebra.ColSet{}
	for id, g := range dec.Groups {
		sets[id] = algebra.NewColSet(interesting(id)...)
		outs := algebra.NewColSet()
		for _, c := range g.OutCols {
			outs.Add(c.ID)
		}
		outSets[id] = outs
	}
	var out []Violation
	// require records a single missing-column violation per (group, col).
	reported := map[[2]int]bool{}
	require := func(group int, col algebra.ColumnID, why string) {
		if !outSets[group].Has(col) || sets[group].Has(col) {
			return
		}
		key := [2]int{group, int(col)}
		if reported[key] {
			return
		}
		reported[key] = true
		out = append(out, groupViolation(CodeInterestingNotClosed, group,
			"column c%d missing from interesting set (%s)", col, why))
	}
	for _, id := range sortedGroupIDs(dec) {
		g := dec.Groups[id]
		for _, e := range g.Exprs {
			if e.Physical {
				// The PDW side plans over the logical expressions only.
				continue
			}
			switch op := e.Op.(type) {
			case *algebra.Join:
				for _, conj := range algebra.Conjuncts(op.On) {
					a, b, ok := algebra.EquiJoinSides(conj)
					if !ok {
						continue
					}
					for _, c := range e.Children {
						require(c, a, "equijoin column")
						require(c, b, "equijoin column")
					}
				}
			case *algebra.GroupBy:
				if len(e.Children) == 1 {
					for _, k := range op.Keys {
						require(e.Children[0], k, "group-by key")
					}
				}
			}
			for _, c := range e.Children {
				for _, col := range sets[id].Sorted() {
					require(c, col, "parent demand")
				}
			}
		}
	}
	return out
}

func sortedGroupIDs(dec *memoxml.Decoded) []int {
	ids := make([]int, 0, len(dec.Groups))
	for id := range dec.Groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func sortedStatIDs(g *memoxml.DecodedGroup) []algebra.ColumnID {
	s := algebra.NewColSet()
	for id := range g.ColStats {
		s.Add(id)
	}
	return s.Sorted()
}

package engine

import (
	"math"
	"testing"
)

// lambdaFields enumerates the calibrated constants for assertion loops.
func lambdaFields(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s is not finite: %v", name, v)
	}
	if v <= 0 {
		t.Errorf("%s is not positive: %v", name, v)
	}
}

func TestCalibrateSeededLambdasPositive(t *testing.T) {
	l := CalibrateSeeded(2000, 42)
	lambdaFields(t, "ReaderDirect", l.ReaderDirect)
	lambdaFields(t, "ReaderHash", l.ReaderHash)
	lambdaFields(t, "Network", l.Network)
	lambdaFields(t, "Writer", l.Writer)
	lambdaFields(t, "BulkCopy", l.BulkCopy)
}

func TestCalibrateClampsTinyRowCounts(t *testing.T) {
	// Volumes below the floor are raised to it rather than producing
	// degenerate (zero-byte) measurements.
	l := Calibrate(1)
	lambdaFields(t, "ReaderDirect", l.ReaderDirect)
	lambdaFields(t, "BulkCopy", l.BulkCopy)
}

func TestCalibrationRowsSeededDeterminism(t *testing.T) {
	a, b := calibrationRows(3000, 7), calibrationRows(3000, 7)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d col %d differs under the same seed: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}

	c := calibrationRows(3000, 8)
	same := 0
	for i := range a {
		if a[i][0] == c[i][0] && a[i][2] == c[i][2] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seed has no effect on the calibration payload")
	}
}

func TestCalibrationRowsVaryWidth(t *testing.T) {
	rows := calibrationRows(1000, 42)
	widths := map[int]bool{}
	for _, r := range rows {
		widths[r.Width()] = true
	}
	if len(widths) < 10 {
		t.Errorf("calibration payload too uniform: %d distinct row widths", len(widths))
	}
}

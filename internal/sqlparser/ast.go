// Package sqlparser implements the PDW parser (paper Figure 2, component 1):
// a lexer and recursive-descent parser producing an abstract syntax tree for
// the T-SQL subset the system supports — SELECT queries with joins, nested
// sub-queries (IN / EXISTS / scalar, correlated or not), grouping,
// aggregation, ordering and TOP, plus CREATE TABLE with PDW distribution
// clauses.
package sqlparser

import (
	"fmt"
	"strings"

	"pdwqo/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a (possibly nested) SELECT query. Union chains additional
// branches combined with UNION ALL; per SQL, ORDER BY/TOP parsed on the
// final branch apply to the whole union.
type SelectStmt struct {
	Distinct bool
	Top      int64 // 0 means no TOP clause
	Items    []SelectItem
	From     []TableRef // comma-separated factors, each possibly a join tree
	Where    Expr       // nil when absent
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Union    *SelectStmt // next UNION ALL branch, nil at chain end
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection in the select list.
type SelectItem struct {
	Expr  Expr // nil for a bare '*'
	Alias string
	Star  bool   // SELECT * or t.*
	Table string // qualifier for t.*
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a factor in the FROM clause.
type TableRef interface{ tableRef() }

// TableName references a base table, possibly schema-qualified; only the
// final part is meaningful to the shell database.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableRef() {}

// JoinKind enumerates explicit join syntax.
type JoinKind uint8

// Join kinds for explicit JOIN syntax.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	default:
		return "CROSS JOIN"
	}
}

// JoinRef is an explicit JOIN between two table references.
type JoinRef struct {
	Kind        JoinKind
	Left, Right TableRef
	On          Expr // nil for CROSS JOIN
}

func (*JoinRef) tableRef() {}

// DerivedTable is a parenthesized sub-select in FROM with an alias.
type DerivedTable struct {
	Select *SelectStmt
	Alias  string
}

func (*DerivedTable) tableRef() {}

// Expr is any scalar or boolean expression.
type Expr interface{ expr() }

// ColRef is a (possibly qualified) column reference.
type ColRef struct {
	Table string // alias or table name; empty when unqualified
	Name  string
}

func (*ColRef) expr() {}

// String renders the reference as written.
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Lit is a literal value. Pos is the byte offset of the literal's own
// token in the source text when it came directly from one (0 otherwise —
// no literal token can start at offset 0 in a valid SELECT). The plan
// cache's parameterizer uses Pos to connect bound constants back to the
// literal slots it stripped at the lexer level.
type Lit struct {
	Value types.Value
	Pos   int
}

func (*Lit) expr() {}

// ParamExpr is a plan-cache parameter marker (dsql.Placeholder) re-parsed
// from generated step SQL. Slot is the 0-based literal-slot index; Pos is
// the byte offset of the marker in the source.
type ParamExpr struct {
	Slot int
	Pos  int
}

func (*ParamExpr) expr() {}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators in precedence groups (comparison, logic, arithmetic).
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String renders the operator in SQL syntax.
func (o BinOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+", "-", "*", "/"}[o]
}

// IsComparison reports whether the operator is a comparison.
func (o BinOp) IsComparison() bool { return o <= OpGe }

// Negate returns the complementary comparison (e.g. < becomes >=).
func (o BinOp) Negate() BinOp {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	panic("sqlparser: Negate on non-comparison")
}

// Flip returns the comparison with swapped operands (< becomes >).
func (o BinOp) Flip() BinOp {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return o
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

func (*BinExpr) expr() {}

// NotExpr is logical negation.
type NotExpr struct{ E Expr }

func (*NotExpr) expr() {}

// NegExpr is arithmetic negation.
type NegExpr struct{ E Expr }

func (*NegExpr) expr() {}

// FuncExpr is a function call, including aggregates. Star marks COUNT(*).
type FuncExpr struct {
	Name     string // upper-cased
	Distinct bool
	Star     bool
	Args     []Expr
}

func (*FuncExpr) expr() {}

// Aggregates recognized by the binder.
var aggregateNames = map[string]bool{
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the call is an aggregate function.
func (f *FuncExpr) IsAggregate() bool { return aggregateNames[f.Name] }

// SubqueryExpr is a scalar sub-query used as an expression.
type SubqueryExpr struct{ Select *SelectStmt }

func (*SubqueryExpr) expr() {}

// InExpr is `expr [NOT] IN (list | subquery)`.
type InExpr struct {
	E       Expr
	List    []Expr      // value list form
	Select  *SelectStmt // sub-query form
	Negated bool
}

func (*InExpr) expr() {}

// ExistsExpr is `[NOT] EXISTS (subquery)`.
type ExistsExpr struct {
	Select  *SelectStmt
	Negated bool
}

func (*ExistsExpr) expr() {}

// BetweenExpr is `expr [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negated   bool
}

func (*BetweenExpr) expr() {}

// LikeExpr is `expr [NOT] LIKE pattern`.
type LikeExpr struct {
	E       Expr
	Pattern Expr
	Negated bool
}

func (*LikeExpr) expr() {}

// IsNullExpr is `expr IS [NOT] NULL`.
type IsNullExpr struct {
	E       Expr
	Negated bool
}

func (*IsNullExpr) expr() {}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // nil means NULL
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct{ Cond, Then Expr }

func (*CaseExpr) expr() {}

// CastExpr is CAST(expr AS type).
type CastExpr struct {
	E  Expr
	To types.Kind
}

func (*CastExpr) expr() {}

// CreateTableStmt is PDW DDL:
//
//	CREATE TABLE t (col type [PRIMARY KEY], ... [, PRIMARY KEY (cols)])
//	WITH (DISTRIBUTION = HASH(col) | REPLICATE)
type CreateTableStmt struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string
	Replicated bool
	HashColumn string // distribution column when not replicated
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type types.Kind
}

// FormatExpr renders an expression back to SQL text; used by error messages
// and tests. DSQL generation has its own renderer working on bound trees.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *ColRef:
		return x.String()
	case *Lit:
		return x.Value.SQLLiteral()
	case *ParamExpr:
		return fmt.Sprintf("@p%d", x.Slot)
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(x.L), x.Op, FormatExpr(x.R))
	case *NotExpr:
		return "NOT " + FormatExpr(x.E)
	case *NegExpr:
		return "-" + FormatExpr(x.E)
	case *FuncExpr:
		if x.Star {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		d := ""
		if x.Distinct {
			d = "DISTINCT "
		}
		return x.Name + "(" + d + strings.Join(args, ", ") + ")"
	case *SubqueryExpr:
		return "(<subquery>)"
	case *InExpr:
		n := ""
		if x.Negated {
			n = "NOT "
		}
		if x.Select != nil {
			return FormatExpr(x.E) + " " + n + "IN (<subquery>)"
		}
		args := make([]string, len(x.List))
		for i, a := range x.List {
			args[i] = FormatExpr(a)
		}
		return FormatExpr(x.E) + " " + n + "IN (" + strings.Join(args, ", ") + ")"
	case *ExistsExpr:
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return n + "EXISTS (<subquery>)"
	case *BetweenExpr:
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return fmt.Sprintf("%s %sBETWEEN %s AND %s", FormatExpr(x.E), n, FormatExpr(x.Lo), FormatExpr(x.Hi))
	case *LikeExpr:
		n := ""
		if x.Negated {
			n = "NOT "
		}
		return FormatExpr(x.E) + " " + n + "LIKE " + FormatExpr(x.Pattern)
	case *IsNullExpr:
		if x.Negated {
			return FormatExpr(x.E) + " IS NOT NULL"
		}
		return FormatExpr(x.E) + " IS NULL"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range x.Whens {
			fmt.Fprintf(&b, " WHEN %s THEN %s", FormatExpr(w.Cond), FormatExpr(w.Then))
		}
		if x.Else != nil {
			b.WriteString(" ELSE " + FormatExpr(x.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *CastExpr:
		return fmt.Sprintf("CAST(%s AS %s)", FormatExpr(x.E), x.To)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

package pdwqo

// Benchmarks backing the experiment harness (cmd/pdwbench); one per paper
// artifact. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports domain-specific metrics alongside ns/op:
// modeled DMS cost (cost/op), bytes moved (moved-B/op), memo size.

import (
	"fmt"
	"testing"
	"time"

	"pdwqo/internal/cost"
	"pdwqo/internal/engine"
	"pdwqo/internal/stats"
	"pdwqo/internal/tpch"
	"pdwqo/internal/types"
)

var benchDB *DB

func benchOpen(b *testing.B) *DB {
	b.Helper()
	if benchDB == nil {
		db, err := OpenTPCH(0.005, 8, 42)
		if err != nil {
			b.Fatal(err)
		}
		benchDB = db
	}
	return benchDB
}

// BenchmarkE1MemoFigure3 measures serial memo construction + export for the
// Figure 3 query.
func BenchmarkE1MemoFigure3(b *testing.B) {
	db := benchOpen(b)
	sql := `SELECT * FROM CUSTOMER C, ORDERS O
	        WHERE C.c_custkey = O.o_custkey AND O.o_totalprice > 1000`
	var groups, exprs int
	for i := 0; i < b.N; i++ {
		p, err := db.Optimize(sql, Options{})
		if err != nil {
			b.Fatal(err)
		}
		groups, exprs = p.Memo.NumGroups(), p.Memo.NumExprs()
	}
	b.ReportMetric(float64(groups), "groups")
	b.ReportMetric(float64(exprs), "exprs")
}

// BenchmarkE2Section24Pipeline measures the full optimize+execute pipeline
// for the paper's §2.4 two-step plan.
func BenchmarkE2Section24Pipeline(b *testing.B) {
	db := benchOpen(b)
	sql := `SELECT * FROM customer c, orders o
	        WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000`
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(sql, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3JoinOrder compares optimization in full-search and serial-
// baseline modes on the §3.2 three-way join.
func BenchmarkE3JoinOrder(b *testing.B) {
	db := benchOpen(b)
	sql := `SELECT c_name, SUM(l_extendedprice) AS s FROM customer, orders, lineitem
	        WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey GROUP BY c_name`
	for _, mode := range []struct {
		name string
		m    OptimizerMode
	}{{"full", ModeFull}, {"baseline", ModeSerialBaseline}} {
		b.Run(mode.name, func(b *testing.B) {
			var c float64
			for i := 0; i < b.N; i++ {
				p, err := db.Optimize(sql, Options{Mode: mode.m})
				if err != nil {
					b.Fatal(err)
				}
				c = p.Cost()
			}
			b.ReportMetric(c, "cost/op")
		})
	}
}

// BenchmarkE4Q20 measures Figure 7's full pipeline: Q20 optimize + execute.
func BenchmarkE4Q20(b *testing.B) {
	db := benchOpen(b)
	sql, _ := TPCHQuery("q20")
	plan, err := db.Optimize(sql, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("optimize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Optimize(sql, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.ExecutePlan(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5MoveCost measures the analytic cost model itself.
func BenchmarkE5MoveCost(b *testing.B) {
	m := cost.NewModel(8, cost.DefaultLambda())
	var s float64
	for i := 0; i < b.N; i++ {
		s += m.MoveCost(cost.Shuffle, float64(i%1000)*1000, 50)
	}
	_ = s
}

// BenchmarkE5Calibrate measures the λ calibration pass.
func BenchmarkE5Calibrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		engine.Calibrate(20000)
	}
}

// BenchmarkE6MoveKinds executes each DMS operation shape on the appliance.
func BenchmarkE6MoveKinds(b *testing.B) {
	db := benchOpen(b)
	workloads := []struct{ name, sql string }{
		{"shuffle", `SELECT * FROM customer c, orders o WHERE c.c_custkey = o.o_custkey`},
		{"broadcast", `SELECT l_quantity FROM part, lineitem WHERE p_partkey = l_partkey AND p_name LIKE 'forest%'`},
		{"gather", `SELECT SUM(l_quantity) FROM lineitem`},
		{"collocated", `SELECT o_orderdate FROM orders, lineitem WHERE o_orderkey = l_orderkey`},
	}
	for _, w := range workloads {
		plan, err := db.Optimize(w.sql, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.name, func(b *testing.B) {
			a := db.Appliance()
			before := a.Metrics.TotalBytesMoved()
			for i := 0; i < b.N; i++ {
				if _, err := db.ExecutePlan(plan); err != nil {
					b.Fatal(err)
				}
			}
			moved := a.Metrics.TotalBytesMoved() - before
			b.ReportMetric(float64(moved)/float64(b.N), "moved-B/op")
		})
	}
}

// BenchmarkE7Suite optimizes every TPC-H query in both modes, reporting
// the aggregate modeled-cost ratio (the headline plan-quality claim).
func BenchmarkE7Suite(b *testing.B) {
	db := benchOpen(b)
	var fullCost, baseCost float64
	for i := 0; i < b.N; i++ {
		fullCost, baseCost = 0, 0
		for _, name := range TPCHQueryNames() {
			sql, _ := TPCHQuery(name)
			f, err := db.Optimize(sql, Options{})
			if err != nil {
				b.Fatal(err)
			}
			s, err := db.Optimize(sql, Options{Mode: ModeSerialBaseline})
			if err != nil {
				b.Fatal(err)
			}
			fullCost += f.Cost()
			baseCost += s.Cost()
		}
	}
	b.ReportMetric(baseCost/fullCost, "baseline-cost-ratio")
}

// BenchmarkE8PruningAblation measures enumeration with and without
// interesting-property retention.
func BenchmarkE8PruningAblation(b *testing.B) {
	db := benchOpen(b)
	sql, _ := TPCHQuery("q18")
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"retention-on", false}, {"retention-off", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var c float64
			var retained int
			for i := 0; i < b.N; i++ {
				p, err := db.Optimize(sql, Options{DisableInterestingRetention: cfg.disable})
				if err != nil {
					b.Fatal(err)
				}
				c, retained = p.Cost(), p.Distributed.OptionsRetained
			}
			b.ReportMetric(c, "cost/op")
			b.ReportMetric(float64(retained), "options")
		})
	}
}

// BenchmarkE9AggSplit measures execution with and without the
// aggregation split, reporting bytes moved.
func BenchmarkE9AggSplit(b *testing.B) {
	db := benchOpen(b)
	sql := `SELECT l_partkey, COUNT(*) AS c, SUM(l_extendedprice) AS s,
	        MIN(l_shipdate) AS d FROM lineitem GROUP BY l_partkey`
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"split", false}, {"complete", true}} {
		plan, err := db.Optimize(sql, Options{DisableAggSplit: cfg.disable})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			a := db.Appliance()
			before := a.Metrics.TotalBytesMoved()
			for i := 0; i < b.N; i++ {
				if _, err := db.ExecutePlan(plan); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(a.Metrics.TotalBytesMoved()-before)/float64(b.N), "moved-B/op")
		})
	}
}

// BenchmarkE10Budget sweeps the optimizer timeout on the widest join (q05).
func BenchmarkE10Budget(b *testing.B) {
	db := benchOpen(b)
	sql, _ := TPCHQuery("q05")
	for _, budget := range []int{200, 1000, 5000} {
		b.Run(fmt.Sprintf("budget-%d", budget), func(b *testing.B) {
			var c float64
			for i := 0; i < b.N; i++ {
				p, err := db.Optimize(sql, Options{Budget: budget})
				if err != nil {
					b.Fatal(err)
				}
				c = p.Cost()
			}
			b.ReportMetric(c, "cost/op")
		})
	}
}

// BenchmarkE11EndToEnd runs the whole suite distributed, the E11 workload.
func BenchmarkE11EndToEnd(b *testing.B) {
	db := benchOpen(b)
	plans := map[string]*QueryPlan{}
	for _, name := range TPCHQueryNames() {
		sql, _ := TPCHQuery(name)
		p, err := db.Optimize(sql, Options{})
		if err != nil {
			b.Fatal(err)
		}
		plans[name] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range TPCHQueryNames() {
			if _, err := db.ExecutePlan(plans[name]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE12StatsMerge measures local-statistics building and merging.
func BenchmarkE12StatsMerge(b *testing.B) {
	vals := make([]types.Value, 20000)
	for i := range vals {
		vals[i] = types.NewInt(int64(i % 3000))
	}
	locals := make([]*stats.Table, 8)
	for n := range locals {
		t, err := stats.BuildTable(map[string][]types.Value{"c": vals[n*2500 : (n+1)*2500]})
		if err != nil {
			b.Fatal(err)
		}
		locals[n] = t
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.MergeTables(locals, "")
	}
}

// BenchmarkE14ParallelSpeedup measures the wall-clock effect of the
// per-node fan-out on an 8-node TPC-H run: the same plans execute with
// Parallelism=1 (the serial reference path) and Parallelism=8, and the
// ratio is reported as "speedup". A simulated per-node dispatch latency
// stands in for the network round trip each DSQL step pays per node, so
// the overlap is observable regardless of the host's core count; results
// remain byte-identical at every setting (internal/difftest certifies
// this).
func BenchmarkE14ParallelSpeedup(b *testing.B) {
	db, err := OpenTPCH(0.002, 8, 42)
	if err != nil {
		b.Fatal(err)
	}
	queries := []string{"q01", "q06", "q12", "q14"}
	plans := make([]*QueryPlan, len(queries))
	for i, name := range queries {
		sql, _ := TPCHQuery(name)
		if plans[i], err = db.Optimize(sql, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	a := db.Appliance()
	a.NodeLatency = 5 * time.Millisecond
	defer func() { a.Parallelism, a.NodeLatency = 0, 0 }()
	run := func(par int) time.Duration {
		a.Parallelism = par
		start := time.Now()
		for _, p := range plans {
			if _, err := db.ExecutePlan(p); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	b.ResetTimer()
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		serial += run(1)
		parallel += run(8)
	}
	b.ReportMetric(float64(serial)/float64(parallel), "speedup")
	b.ReportMetric(float64(parallel.Nanoseconds())/float64(b.N)/1e6, "parallel-ms/op")
}

// BenchmarkTPCHGenerate measures the dbgen-like generator.
func BenchmarkTPCHGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tpch.Generate(0.002, int64(i))
	}
}

// BenchmarkOptimizeSuite is the overall optimizer-latency benchmark: full
// pipeline (parse→…→DSQL) across the suite.
func BenchmarkOptimizeSuite(b *testing.B) {
	db := benchOpen(b)
	for i := 0; i < b.N; i++ {
		for _, name := range TPCHQueryNames() {
			sql, _ := TPCHQuery(name)
			if _, err := db.Optimize(sql, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPlanCacheCold measures a full cold compile of a mid-size query
// — the baseline the cached path is compared against.
func BenchmarkPlanCacheCold(b *testing.B) {
	db := benchOpen(b)
	db.SetPlanCache(-1)
	sql, _ := TPCHQuery("q05")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Optimize(sql, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheHit measures Optimize through a warm plan cache:
// parameterize, fingerprint, and re-bind the cached template. The PR's
// acceptance bar is >=10x faster than BenchmarkPlanCacheCold.
func BenchmarkPlanCacheHit(b *testing.B) {
	db := benchOpen(b)
	db.SetPlanCache(0)
	defer db.SetPlanCache(-1)
	sql, _ := TPCHQuery("q05")
	if _, err := db.Optimize(sql, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := db.Optimize(sql, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if plan.CacheStatus != "hit" {
			b.Fatalf("CacheStatus = %q, want hit", plan.CacheStatus)
		}
	}
	m := db.PlanCache().Metrics()
	b.ReportMetric(float64(m.Hits)/float64(m.Hits+m.Misses+m.Shared), "hit-rate")
}

// BenchmarkE18VerifyOverhead measures what Options.Verify adds to a cold
// compile: the "plain" and "verify" sub-benchmarks run the identical
// optimization with the plan cache off, so their delta is the full cost
// of the planverify pass (plan walk + DSQL dataflow + MEMO invariants).
// The PR's acceptance bar is verify overhead < 5% of the cold compile.
func BenchmarkE18VerifyOverhead(b *testing.B) {
	db := benchOpen(b)
	db.SetPlanCache(-1)
	sql, _ := TPCHQuery("q05")
	for _, bench := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"verify", Options{Verify: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Optimize(sql, bench.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Def is one definition of a function-local variable: a parameter, a
// declaration with initializer, or an assignment. A multi-value
// assignment produces one Def per left-hand name, all sharing the RHS
// with their result position recorded.
type Def struct {
	Obj   types.Object
	Ident *ast.Ident // the defining occurrence
	// RHS is the defining expression: the initializer or assigned value,
	// or the shared call in a multi-value assignment. Nil for parameters
	// and bare declarations.
	RHS ast.Expr
	// ResultIndex is the position within a multi-value RHS, -1 otherwise.
	ResultIndex int
	IsParam     bool
	// Uses are the identifiers that (may) read this definition.
	Uses []*ast.Ident

	loops []ast.Node
	// effect is where the definition becomes visible to later reads. For
	// assignments this is the end of the statement, so that a RHS read of
	// the same variable (ctx, cancel = WithTimeout(ctx, d)) binds to the
	// prior definition, matching evaluation order.
	effect token.Pos
}

// DefUse holds lexical def-use chains for one function: an SSA-lite
// approximation where every use binds to the lexically nearest preceding
// definition of its object. Loop back-edges are approximated by also
// crediting a definition with any earlier use that shares an enclosing
// loop, so a value consumed on the next iteration still counts as used.
type DefUse struct {
	Fn    *ast.FuncDecl
	Defs  []*Def
	byObj map[types.Object][]*Def
}

// DefsOf returns the definitions of one object in lexical order.
func (du *DefUse) DefsOf(obj types.Object) []*Def { return du.byObj[obj] }

// Params returns the parameter definitions (including the receiver).
func (du *DefUse) Params() []*Def {
	var out []*Def
	for _, d := range du.Defs {
		if d.IsParam {
			out = append(out, d)
		}
	}
	return out
}

type duUse struct {
	id    *ast.Ident
	obj   types.Object
	loops []ast.Node
}

// BuildDefUse computes def-use chains for fd's body.
func BuildDefUse(info *types.Info, fd *ast.FuncDecl) *DefUse {
	du := &DefUse{Fn: fd, byObj: map[types.Object][]*Def{}}
	if fd.Body == nil {
		return du
	}

	tracked := map[types.Object]bool{}
	defIdents := map[*ast.Ident]bool{}
	addDef := func(d *Def) {
		if d.Obj == nil {
			return
		}
		if !d.effect.IsValid() {
			d.effect = d.Ident.Pos()
		}
		tracked[d.Obj] = true
		defIdents[d.Ident] = true
		du.Defs = append(du.Defs, d)
		du.byObj[d.Obj] = append(du.byObj[d.Obj], d)
	}

	param := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					addDef(&Def{Obj: obj, Ident: name, ResultIndex: -1, IsParam: true})
				}
			}
		}
	}
	param(fd.Recv)
	param(fd.Type.Params)
	param(fd.Type.Results)

	// objOf resolves an identifier on either side of := (new object) or
	// = (existing object).
	objOf := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}

	var stack []ast.Node
	var uses []duUse
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		enclosingLoops := func() []ast.Node {
			var out []ast.Node
			for _, s := range stack {
				switch s.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					out = append(out, s)
				}
			}
			return out
		}

		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE && x.Tok != token.ASSIGN {
				return true // op-assignments (+= etc.) read and write: uses
			}
			multi := len(x.Lhs) > 1 && len(x.Rhs) == 1
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				d := &Def{Obj: objOf(id), Ident: id, ResultIndex: -1, loops: enclosingLoops(), effect: x.End()}
				if multi {
					d.RHS = x.Rhs[0]
					d.ResultIndex = i
				} else if i < len(x.Rhs) {
					d.RHS = x.Rhs[i]
				}
				addDef(d)
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if name.Name == "_" {
					continue
				}
				d := &Def{Obj: info.Defs[name], Ident: name, ResultIndex: -1, loops: enclosingLoops(), effect: x.End()}
				if len(x.Values) == 1 && len(x.Names) > 1 {
					d.RHS = x.Values[0]
					d.ResultIndex = i
				} else if i < len(x.Values) {
					d.RHS = x.Values[i]
				}
				addDef(d)
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					addDef(&Def{Obj: objOf(id), Ident: id, ResultIndex: -1, loops: enclosingLoops(), effect: x.X.End()})
				}
			}
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil || defIdents[x] {
				return true
			}
			uses = append(uses, duUse{id: x, obj: obj, loops: enclosingLoops()})
		}
		return true
	})

	// An identifier in Uses that is actually a plain-assignment target is
	// a definition, not a read; drop those from the use list.
	filtered := uses[:0]
	for _, u := range uses {
		if !defIdents[u.id] && tracked[u.obj] {
			filtered = append(filtered, u)
		}
	}
	uses = filtered

	for obj, defs := range du.byObj {
		sort.Slice(defs, func(i, j int) bool { return defs[i].effect < defs[j].effect })
		du.byObj[obj] = defs
	}

	sharesLoop := func(a, b []ast.Node) bool {
		for _, x := range a {
			for _, y := range b {
				if x == y {
					return true
				}
			}
		}
		return false
	}
	for _, u := range uses {
		defs := du.byObj[u.obj]
		var last *Def
		for _, d := range defs {
			if d.effect < u.id.Pos() {
				last = d
			} else if sharesLoop(d.loops, u.loops) {
				// Back-edge: a later definition inside a common loop can
				// reach this use on the next iteration.
				d.Uses = append(d.Uses, u.id)
			}
		}
		if last != nil {
			last.Uses = append(last.Uses, u.id)
		}
	}
	return du
}

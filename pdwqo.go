// Package pdwqo is a reproduction of "Query Optimization in Microsoft SQL
// Server PDW" (SIGMOD 2012): a cost-based distributed query optimizer for
// a simulated shared-nothing appliance.
//
// The package wires together the paper's Figure 2 pipeline:
//
//	parse → bind against the shell database → normalize (subquery
//	unnesting, pushdown, transitivity closure, contradiction detection)
//	→ serial Cascades-style MEMO → XML export → PDW bottom-up optimizer
//	(data-movement enumeration, interesting-property pruning, DMS cost
//	model) → DSQL generation → serial step execution on the appliance.
//
// Open a database over a shell catalog and loaded rows, then Optimize,
// Explain, or Execute SQL against it. See examples/ for runnable entry
// points and EXPERIMENTS.md for the paper-reproduction harness.
package pdwqo

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/engine"
	"pdwqo/internal/exec"
	"pdwqo/internal/memo"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/normalize"
	"pdwqo/internal/plancache"
	"pdwqo/internal/planverify"
	"pdwqo/internal/planverify/transval"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/tpch"
	"pdwqo/internal/trace"
	"pdwqo/internal/types"
)

// Re-exported building blocks, so downstream users need only this package.
type (
	// Shell is the metadata-only image of the appliance (paper §2.2).
	Shell = catalog.Shell
	// Value is one SQL value.
	Value = types.Value
	// Row is one result tuple.
	Row = types.Row
	// Lambda holds the DMS cost model's calibrated per-byte constants.
	Lambda = cost.Lambda
	// MoveKind enumerates the seven DMS operations of paper §3.3.2.
	MoveKind = cost.MoveKind
	// Fault is one fault-injection rule for the engine's chaos facility.
	Fault = engine.Fault
	// FaultPlan is a deterministic schedule of injected faults.
	FaultPlan = engine.FaultPlan
	// StepError is the typed failure of one DSQL step (errors.As target).
	StepError = engine.StepError
	// ErrorKind classifies why a step failed.
	ErrorKind = engine.ErrorKind
	// Tracer records spans and counters across the whole pipeline — parse
	// through enumeration to per-step execution. Construct with NewTracer
	// and pass via Options.Tracer; a nil Tracer is off and costs nothing.
	Tracer = trace.Tracer
	// Span is one recorded trace interval (or instantaneous event).
	Span = trace.Span
	// PlanCache is the control node's shared plan cache (install with
	// DB.SetPlanCache).
	PlanCache = plancache.Cache
	// PlanCacheMetrics is a snapshot of the cache's lifetime counters.
	PlanCacheMetrics = plancache.Metrics
	// VerifyError is the typed failure Optimize returns when
	// Options.Verify finds invariant violations (errors.As target).
	VerifyError = planverify.Error
	// VerifyViolation is one detected plan invariant breach.
	VerifyViolation = planverify.Violation
	// VerifyCode classifies a violation (see internal/planverify).
	VerifyCode = planverify.Code
)

// NewTracer builds an enabled tracer with a fresh counter registry.
func NewTracer() *Tracer { return trace.New() }

// Fault kinds, operation sites and wildcard for building FaultPlans.
const (
	FaultFail      = engine.FaultFail
	FaultSlow      = engine.FaultSlow
	FaultCorrupt   = engine.FaultCorrupt
	FaultOpAny     = engine.OpAny
	FaultOpQuery   = engine.OpQuery
	FaultOpCreate  = engine.OpCreate
	FaultOpDeliver = engine.OpDeliver
	FaultOpLoad    = engine.OpLoad
	// FaultAny is the wildcard for Fault.Step / Fault.Node / Fault.Move.
	FaultAny = engine.Any
)

// Sentinel errors for errors.Is against step failures.
var (
	ErrFaultInjected   = engine.ErrFaultInjected
	ErrCorruptDelivery = engine.ErrCorruptDelivery
	ErrStepTimeout     = engine.ErrStepTimeout
)

// NewFaultPlan builds a deterministic fault schedule from rules.
func NewFaultPlan(faults ...Fault) *FaultPlan { return engine.NewFaultPlan(faults...) }

// RandomFaultPlan draws a seeded random fault schedule over the given
// step-ID and compute-node ranges; the same seed always yields the same
// plan, so chaos runs are reproducible.
func RandomFaultPlan(seed int64, steps, nodes int) *FaultPlan {
	return engine.RandomFaultPlan(seed, steps, nodes)
}

// ParseFaultSpec parses the -fault flag syntax ("fail:step=1,node=2;
// slow:op=deliver,delay=5ms" or "seed=42") into a FaultPlan.
func ParseFaultSpec(spec string) (*FaultPlan, error) { return engine.ParseFaultSpec(spec) }

// PlanOption is one node of the distributed plan tree (relational
// operator or data movement); exposed for plan inspection.
type PlanOption = core.Option

// OptimizerMode selects the plan space (paper §1.2): the full PDW search
// or the parallelized-best-serial-plan baseline.
type OptimizerMode = core.Mode

// Optimizer modes.
const (
	// ModeFull is the paper's PDW QO: the whole serial search space plus
	// data movement enumeration.
	ModeFull = core.ModeFull
	// ModeSerialBaseline parallelizes only the best serial plan.
	ModeSerialBaseline = core.ModeSerialBaseline
)

// Options tunes optimization; the zero value is the paper's configuration.
type Options struct {
	Mode OptimizerMode
	// Budget caps serial exploration (optimizer timeout, §3.1); 0 means
	// memo.DefaultBudget, negative means unlimited.
	Budget int
	// Lambda overrides the cost model constants; nil uses defaults.
	Lambda *Lambda
	// DisableInterestingRetention is the ablation of Figure 4 step
	// 06.ii (best-per-interesting-property retention).
	DisableInterestingRetention bool
	// DisableAggSplit forces every GROUP BY to keep its complete,
	// unsplit shape instead of enumerating the §4 partial/final
	// aggregation split (per-node partial states, movement, finalize).
	// It is the control arm of the metamorphic equivalence suite and
	// the E9/E19 ablations; results must be identical either way.
	DisableAggSplit bool
	// SeedCollocated applies the §3.1 distribution-aware seeding: the
	// initial plan inserted into the MEMO joins collocated factors first,
	// which preserves plan quality under tight exploration budgets.
	SeedCollocated bool
	// SearchBudget caps the PDW-side enumeration at a number of options
	// considered, checked at the wave barriers of the bottom-up search;
	// 0 disables the cap (exhaustive enumeration, the default). When the
	// budget trips, compilation does not fail: it switches to the greedy
	// regime — the join order is fixed by the cheapest-feasible-edge
	// heuristic (normalize.GreedyJoinOrder), the memo is rebuilt without
	// exploration, and the enumerator re-runs over that structurally
	// bounded search space, still inserting movement enforcers so the
	// plan stays collocation-correct. QueryPlan.Regime reports which
	// regime produced the plan.
	SearchBudget int
	// Parallelism bounds the worker pools of the PDW-side plan enumerator
	// (independent MEMO groups per topological wave) and, when this
	// Options value is passed to Execute, of the appliance's per-node
	// step fan-out: 0 means GOMAXPROCS, 1 forces the serial reference
	// paths. Plans and results are identical at any setting — the
	// internal/difftest harness certifies it.
	Parallelism int

	// MaxRetries is how many times Execute re-runs a failed idempotent
	// DSQL step (temp-table creates and DMS deliveries) after cleaning up
	// its partial state; 0 disables retries. Applied to the appliance
	// like Parallelism.
	MaxRetries int
	// StepTimeout bounds each step attempt; exceeding it fails the
	// attempt with a retryable timeout StepError. 0 means unbounded.
	StepTimeout time.Duration
	// FaultPlan injects deterministic faults into this execution's node
	// operations (testing/chaos only); nil injects nothing.
	FaultPlan *FaultPlan

	// Tracer, when non-nil, records spans for every pipeline phase (parse,
	// bind, normalize, MEMO, XML, enumeration, DSQL generation) and — when
	// this Options value is passed to Execute — per-step execution spans on
	// the appliance, plus the optimize.*/exec.* counters.
	Tracer *Tracer

	// Verify runs the internal/planverify static analyzer over every
	// freshly compiled plan: distribution-property soundness of the
	// winning plan tree, dataflow soundness of the DSQL step sequence,
	// and the MEMO-side invariants. A violation fails Optimize with a
	// typed *VerifyError instead of returning the broken plan. With a
	// plan cache installed, cache hits re-bind an already verified
	// template and are not re-verified.
	Verify bool
}

// DB is an open appliance: shell metadata plus loaded data.
type DB struct {
	shell     *catalog.Shell
	appliance *engine.Appliance
	data      map[string][]types.Row
	planCache *plancache.Cache
}

// Open builds a database over a shell catalog and per-table rows, placing
// rows on the appliance per each table's distribution. Tables without
// statistics get them computed per node and merged (paper §2.2).
func Open(shell *catalog.Shell, data map[string][]types.Row) (*DB, error) {
	if err := buildMissingStats(shell, data); err != nil {
		return nil, err
	}
	db := &DB{shell: shell, appliance: engine.New(shell), data: data}
	for _, t := range shell.Tables() {
		if err := db.appliance.LoadTable(t.Name, data[t.Name]); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// OpenTPCH generates a TPC-H appliance: scale factor sf across n compute
// nodes, deterministic under seed. Statistics are computed per node and
// merged into globals exactly as §2.2 describes.
func OpenTPCH(sf float64, nodes int, seed int64) (*DB, error) {
	return OpenTPCHSkewed(sf, nodes, seed, 1)
}

// OpenTPCHSkewed is OpenTPCH with a foreign-key skew exponent (1 =
// uniform); used to stress the cost model's §3.3.1 uniformity assumption.
func OpenTPCHSkewed(sf float64, nodes int, seed int64, skew float64) (*DB, error) {
	shell, data, err := tpch.BuildShellSkewed(sf, nodes, seed, skew)
	if err != nil {
		return nil, err
	}
	return Open(shell, map[string][]types.Row(data))
}

// Shell exposes the shell database.
func (db *DB) Shell() *Shell { return db.shell }

// Appliance exposes the engine for metrics inspection.
func (db *DB) Appliance() *engine.Appliance { return db.appliance }

// SetParallelism bounds the appliance's per-node worker pool for all
// subsequent executions: 0 means GOMAXPROCS, 1 forces the serial reference
// path. It returns the DB for chaining.
func (db *DB) SetParallelism(n int) *DB {
	db.appliance.Parallelism = n
	return db
}

// SetResilience configures the appliance's retry policy for all
// subsequent executions: maxRetries re-runs per failed idempotent step
// (0 disables) and a per-step-attempt timeout (0 disables). It returns
// the DB for chaining.
func (db *DB) SetResilience(maxRetries int, stepTimeout time.Duration) *DB {
	db.appliance.MaxRetries = maxRetries
	db.appliance.StepTimeout = stepTimeout
	return db
}

// SetFaultPlan installs (or, with nil, removes) a fault-injection plan on
// the appliance. It returns the DB for chaining.
func (db *DB) SetFaultPlan(p *FaultPlan) *DB {
	db.appliance.Faults = p
	return db
}

// SetTracer installs (or, with nil, removes) a tracer on the appliance so
// subsequent executions record per-step spans and exec.* counters. It
// returns the DB for chaining.
func (db *DB) SetTracer(t *Tracer) *DB {
	db.appliance.Tracer = t
	return db
}

// SetPlanCache installs a shared plan cache bounded to capacity entries
// (0 means plancache.DefaultCapacity; negative removes the cache). With a
// cache installed, Optimize parameterizes each query, probes the cache by
// canonical fingerprint, and re-binds a cached template's literals instead
// of compiling; misses compile once per fingerprint under singleflight,
// and any DDL or statistics change invalidates via the catalog epoch. It
// returns the DB for chaining.
func (db *DB) SetPlanCache(capacity int) *DB {
	if capacity < 0 {
		db.planCache = nil
		return db
	}
	db.planCache = plancache.New(capacity)
	return db
}

// PlanCache exposes the installed plan cache (nil when off), e.g. for
// metrics inspection.
func (db *DB) PlanCache() *plancache.Cache { return db.planCache }

// SetRowExec selects (true) the row-at-a-time node-local executor instead
// of the default vectorized engine for all subsequent executions. The two
// engines are byte-for-byte interchangeable behind the DSQL step contract;
// the row engine remains as the ablation arm and differential reference.
// Execution engine choice does not affect plan selection, so cached plans
// stay valid across the switch. It returns the DB for chaining.
func (db *DB) SetRowExec(on bool) *DB {
	db.appliance.RowExec = on
	return db
}

// TPCHQuery returns the adapted TPC-H query by name ("q01".."q20").
func TPCHQuery(name string) (string, bool) {
	q, ok := tpch.Get(name)
	return q.SQL, ok
}

// TPCHQueryNames lists the adapted TPC-H suite.
func TPCHQueryNames() []string {
	var out []string
	for _, q := range tpch.Queries() {
		out = append(out, q.Name)
	}
	return out
}

// QueryPlan is the result of optimizing one query: every intermediate
// artifact of the Figure 2 pipeline.
type QueryPlan struct {
	SQL string
	// Normalized is the simplified logical tree (§2.5 step 2a).
	Normalized *algebra.Tree
	// Memo is the serial search space (§2.5 step 2b–d).
	Memo *memo.Memo
	// MemoXML is the exported search space (§2.5 step 3).
	MemoXML []byte
	// Distributed is the PDW optimizer's winning plan (§2.5 step 4).
	Distributed *core.Plan
	// DSQL is the executable step sequence (§3.4).
	DSQL *dsql.Plan
	// CacheStatus reports how the plan cache produced this plan: "" when
	// no cache is installed, "hit" (re-bound from a cached template),
	// "shared" (joined another caller's in-flight compilation), or "miss"
	// (this caller compiled it).
	CacheStatus string
	// Regime reports how the search space was covered: "" when no
	// search budget was set, "exhaustive" when a budget was set but the
	// enumeration finished within it, and "greedy" when the budget
	// tripped and the plan came from the greedy join-order fallback.
	Regime string
}

// Cost returns the plan's modeled DMS cost.
func (p *QueryPlan) Cost() float64 { return p.Distributed.TotalCost }

// Moves counts data-movement operations by kind.
func (p *QueryPlan) Moves() map[MoveKind]int { return p.Distributed.Root.CountMoves() }

// Explain renders the distributed plan and its DSQL steps.
func (p *QueryPlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- distributed plan (DMS cost %.6g, %d groups, %d options considered)\n",
		p.Distributed.TotalCost, p.Distributed.Groups, p.Distributed.OptionsConsidered)
	b.WriteString(p.Distributed.Root.String())
	b.WriteString("-- DSQL\n")
	b.WriteString(p.DSQL.String())
	return b.String()
}

// Optimize compiles a SQL query into a distributed plan. With a plan
// cache installed (SetPlanCache), the query is parameterized and the
// cache is consulted first; a hit re-binds the cached template's literal
// slots instead of running the pipeline.
func (db *DB) Optimize(sql string, opts Options) (*QueryPlan, error) {
	if db.planCache == nil {
		return db.compile(sql, opts, nil)
	}
	return db.optimizeCached(sql, opts)
}

// cachedPlan is the value the plan cache stores: a compiled QueryPlan
// whose DSQL text may carry literal-slot placeholders, plus whether it is
// safe to re-bind to different constants.
type cachedPlan struct {
	qp    *QueryPlan
	slots int
	// rebindable means every literal slot's placeholder survived into the
	// DSQL text, so the template is published under the shape fingerprint
	// and can serve any same-shape query. Value-dependent plans (a fold
	// consumed a literal) stay pinned to their exact literal signature.
	rebindable bool
}

// rebind instantiates the template for one query: a shallow copy whose
// DSQL has the slot placeholders replaced by the query's own literals.
// The shared artifacts (memo, distributed plan) are read-only downstream.
func (t *cachedPlan) rebind(sql string, pq *normalize.ParamQuery) *QueryPlan {
	qp := *t.qp
	qp.SQL = sql
	qp.DSQL = t.qp.DSQL.Bind(pq.BindTexts())
	return &qp
}

// optimizeCached is Optimize through the plan cache: parameterize, probe
// the shape key for a re-bindable template, otherwise compile exactly
// once per (fingerprint, literals, epoch) under singleflight.
func (db *DB) optimizeCached(sql string, opts Options) (*QueryPlan, error) {
	tr := opts.Tracer
	cache := db.planCache
	pq, err := normalize.Parameterize(sql)
	if err != nil {
		// The lexer rejected the text; compile cold so the caller gets the
		// same error the parser produces without a cache.
		return db.compile(sql, opts, nil)
	}
	epoch := db.shell.Epoch()
	fp := pq.Fingerprint(db.envSignature(opts))
	sp := tr.Begin("plancache")
	defer sp.End()
	if v, ok := cache.Get(fp, epoch); ok {
		if t := v.(*cachedPlan); t.slots == len(pq.Lits) {
			qp := t.rebind(sql, pq)
			qp.CacheStatus = "hit"
			sp.Str("outcome", "hit")
			tr.Counters().Add("optimize.cache.hit", 1)
			return qp, nil
		}
	}
	fpExact := fp + "|" + pq.LitSig()
	v, outcome, err := cache.Do(fpExact, epoch, func() (any, error) {
		qp, cerr := db.compile(sql, opts, pq)
		if cerr != nil {
			// Parameterization can perturb compilation (e.g. an ORDER BY
			// expression no longer matching a slotted select item by
			// fingerprint); retry cold before failing so a cache never
			// rejects a query that compiles without one.
			qp, cerr = db.compile(sql, opts, nil)
			if cerr != nil {
				return nil, cerr
			}
			return &cachedPlan{qp: qp, slots: len(pq.Lits)}, nil
		}
		return &cachedPlan{
			qp:         qp,
			slots:      len(pq.Lits),
			rebindable: qp.DSQL.HasAllParamSlots(len(pq.Lits)),
		}, nil
	})
	if err != nil {
		sp.SetErr(err)
		tr.Counters().Add("optimize.cache.error", 1)
		return nil, err
	}
	t := v.(*cachedPlan)
	if t.rebindable {
		cache.Put(fp, epoch, t)
	}
	qp := t.rebind(sql, pq)
	qp.CacheStatus = outcome.String()
	sp.Str("outcome", qp.CacheStatus)
	tr.Counters().Add("optimize.cache."+qp.CacheStatus, 1)
	return qp, nil
}

// envSignature renders every plan-affecting input beyond the query text:
// optimizer options and appliance topology. Parallelism, retry policy,
// faults and tracing are deliberately excluded — they never change the
// plan (the difftest harness certifies plans are identical across
// Parallelism settings).
func (db *DB) envSignature(opts Options) string {
	lambda := cost.DefaultLambda()
	if opts.Lambda != nil {
		lambda = *opts.Lambda
	}
	return fmt.Sprintf("mode=%d budget=%d sb=%d noir=%t nosplit=%t seedcol=%t nodes=%d lambda=%+v",
		opts.Mode, opts.Budget, opts.SearchBudget, opts.DisableInterestingRetention,
		opts.DisableAggSplit, opts.SeedCollocated,
		db.shell.Topology.ComputeNodes, lambda)
}

// compile runs the Figure 2 pipeline. A non-nil pq threads literal-slot
// provenance through the binder so the generated DSQL carries re-binding
// placeholders.
func (db *DB) compile(sql string, opts Options, pq *normalize.ParamQuery) (*QueryPlan, error) {
	tr := opts.Tracer
	osp := tr.Begin("optimize")
	defer osp.End()
	// fail closes the current phase span and the root span with the error.
	fail := func(sp trace.Active, err error) (*QueryPlan, error) {
		sp.SetErr(err)
		sp.End()
		osp.SetErr(err)
		return nil, err
	}

	sp := tr.BeginUnder(osp.ID(), "parse")
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return fail(sp, err)
	}
	sp.End()

	sp = tr.BeginUnder(osp.ID(), "bind")
	b := algebra.NewBinder(db.shell)
	if pq != nil {
		b.SetParamSlots(pq.ParamAt())
	}
	bound, err := b.Bind(sel)
	if err != nil {
		return fail(sp, err)
	}
	sp.End()

	sp = tr.BeginUnder(osp.ID(), "normalize")
	norm, err := normalize.New(b).Normalize(bound)
	if err != nil {
		return fail(sp, err)
	}
	sp.End()

	var seeds []*algebra.Tree
	if opts.SeedCollocated {
		// §3.1: seed the MEMO with a distribution-aware plan *alongside*
		// the normalized one, so a tight budget still explores the
		// collocated neighborhood.
		if seeded := normalize.SeedCollocated(norm); seeded.Fingerprint() != norm.Fingerprint() {
			seeds = append(seeds, seeded)
		}
	}
	budget := opts.Budget
	switch {
	case budget == 0:
		budget = memo.DefaultBudget
	case budget < 0:
		budget = 0
	}
	sp = tr.BeginUnder(osp.ID(), "memo")
	sp.Int("budget", int64(budget))
	m, err := memo.OptimizeSeeded(db.shell, norm, budget, seeds...)
	if err != nil {
		return fail(sp, err)
	}
	sp.End()

	lambda := cost.DefaultLambda()
	if opts.Lambda != nil {
		lambda = *opts.Lambda
	}
	model := cost.NewModel(db.shell.Topology.ComputeNodes, lambda)
	// lower runs the back half of the pipeline — XML round-trip and
	// PDW-side enumeration — over one memo, under the given search
	// budget. Phase spans close themselves on error; the caller decides
	// whether the error fails compilation or switches regimes.
	lower := func(m *memo.Memo, searchBudget int) ([]byte, *memoxml.Decoded, *core.Optimizer, *core.Plan, error) {
		sp := tr.BeginUnder(osp.ID(), "memoxml-encode")
		data, err := memoxml.Encode(m)
		if err != nil {
			sp.SetErr(err)
			sp.End()
			return nil, nil, nil, nil, err
		}
		sp.Int("bytes", int64(len(data)))
		sp.End()

		sp = tr.BeginUnder(osp.ID(), "memoxml-decode")
		dec, err := memoxml.Decode(data, db.shell)
		if err != nil {
			sp.SetErr(err)
			sp.End()
			return nil, nil, nil, nil, err
		}
		sp.End()

		sp = tr.BeginUnder(osp.ID(), "pdw-optimize")
		cfg := core.Config{
			Mode:                        opts.Mode,
			DisableInterestingRetention: opts.DisableInterestingRetention,
			DisableAggSplit:             opts.DisableAggSplit,
			Parallelism:                 opts.Parallelism,
			SearchBudget:                searchBudget,
			Tracer:                      tr,
			TraceParent:                 sp.ID(),
		}
		opt := core.New(dec, db.shell, model, cfg)
		plan, err := opt.Optimize()
		if err != nil {
			sp.SetErr(err)
			sp.End()
			return nil, nil, nil, nil, err
		}
		sp.Int("options_considered", int64(plan.OptionsConsidered))
		sp.End()
		return data, dec, opt, plan, nil
	}

	regime := ""
	if opts.SearchBudget > 0 {
		regime = "exhaustive"
	}
	data, dec, opt, plan, err := lower(m, opts.SearchBudget)
	if err != nil {
		var be *core.BudgetError
		if !errors.As(err, &be) {
			osp.SetErr(err)
			return nil, err
		}
		// The budget tripped: switch to the greedy regime. The join
		// order is fixed by the cheapest-feasible-edge heuristic, the
		// memo is rebuilt without exploration, and the enumerator
		// re-runs with the budget off — the fixed memo bounds the
		// search structurally, and the re-run still inserts movement
		// enforcers so the plan stays collocation-correct.
		regime = "greedy"
		sp = tr.BeginUnder(osp.ID(), "greedy-fallback")
		sp.Int("budget", int64(be.Budget))
		sp.Int("considered", be.Considered)
		tr.Counters().Add("optimize.greedy_fallback", 1)
		m, err = memo.OptimizeFixed(db.shell, normalize.GreedyJoinOrder(norm))
		if err != nil {
			return fail(sp, err)
		}
		sp.End()
		data, dec, opt, plan, err = lower(m, 0)
		if err != nil {
			osp.SetErr(err)
			return nil, err
		}
	}

	sp = tr.BeginUnder(osp.ID(), "dsql-gen")
	dp, err := dsql.Generate(plan, norm.OutputCols())
	if err != nil {
		return fail(sp, err)
	}
	sp.Int("steps", int64(len(dp.Steps)))
	sp.End()

	if opts.Verify {
		sp = tr.BeginUnder(osp.ID(), "verify")
		art := planverify.Artifacts{Plan: plan, DSQL: dp, Memo: dec, Shell: db.shell}
		if opts.Mode == ModeFull {
			// The interesting-column closure check mirrors the full
			// logical memo; the serial-baseline mode derives from the
			// winner slice only.
			art.Interesting = opt.Interesting
		}
		rep := planverify.Check(art)
		// Translation validation: re-parse every emitted DSQL step and
		// abstractly re-interpret it (lineage, nullability, distribution)
		// against the plan fragment it was cut from.
		rep.Violations = append(rep.Violations, transval.Check(plan, dp, db.shell)...)
		sp.Int("violations", int64(len(rep.Violations)))
		if verr := rep.Err(); verr != nil {
			return fail(sp, verr)
		}
		sp.End()
	}
	return &QueryPlan{
		SQL:         sql,
		Normalized:  norm,
		Memo:        m,
		MemoXML:     data,
		Distributed: plan,
		DSQL:        dp,
		Regime:      regime,
	}, nil
}

// Result is a query result.
type Result struct {
	Columns []string
	Rows    []Row
}

// String renders the result as a simple table.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, " | "))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Execute optimizes and runs a query on the simulated appliance. A
// non-zero opts.Parallelism also applies to the appliance (equivalent to
// calling SetParallelism first).
func (db *DB) Execute(sql string, opts Options) (*Result, error) {
	return db.ExecuteContext(context.Background(), sql, opts)
}

// ExecuteContext is Execute with caller-controlled cancellation threaded
// through per-step engine execution: cancelling ctx stops the in-flight
// step's remaining node tasks and fails the run with a typed cancelled
// StepError. Note that non-zero resilience/fault/tracer options mutate the
// shared appliance exactly as Execute does; concurrent callers (the query
// server) should configure the appliance once and pass zero-valued knobs,
// or use Optimize + ExecutePlanContext directly.
func (db *DB) ExecuteContext(ctx context.Context, sql string, opts Options) (*Result, error) {
	plan, err := db.Optimize(sql, opts)
	if err != nil {
		return nil, err
	}
	if opts.Parallelism != 0 {
		db.SetParallelism(opts.Parallelism)
	}
	if opts.MaxRetries != 0 || opts.StepTimeout != 0 {
		db.SetResilience(opts.MaxRetries, opts.StepTimeout)
	}
	if opts.FaultPlan != nil {
		db.SetFaultPlan(opts.FaultPlan)
	}
	if opts.Tracer != nil {
		db.SetTracer(opts.Tracer)
	}
	return db.ExecutePlanContext(ctx, plan)
}

// ExecutePlan runs a previously optimized plan.
func (db *DB) ExecutePlan(plan *QueryPlan) (*Result, error) {
	return db.ExecutePlanContext(context.Background(), plan)
}

// ExecutePlanContext runs a previously optimized plan under ctx.
// Executions are isolated (each run rewrites its temp-table names with a
// unique execution ID) and may proceed concurrently on one DB — this is
// the entry point the query server dispatches sessions through.
func (db *DB) ExecutePlanContext(ctx context.Context, plan *QueryPlan) (*Result, error) {
	res, err := db.appliance.ExecuteContext(ctx, plan.DSQL)
	if err != nil {
		return nil, err
	}
	return resultOf(res.Cols, res.Rows), nil
}

// ExecuteSerial runs the query on a single in-memory instance holding all
// data — the correctness reference the distributed engine is validated
// against (every distributed result must match it up to row order).
func (db *DB) ExecuteSerial(sql string) (*Result, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	b := algebra.NewBinder(db.shell)
	bound, err := b.Bind(sel)
	if err != nil {
		return nil, err
	}
	norm, err := normalize.New(b).Normalize(bound)
	if err != nil {
		return nil, err
	}
	src := func(name string) ([]types.Row, []string, error) {
		t := db.shell.Table(name)
		if t == nil {
			return nil, nil, fmt.Errorf("pdwqo: unknown table %q", name)
		}
		names := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			names[i] = c.Name
		}
		return db.data[t.Name], names, nil
	}
	rel, err := exec.Run(norm, src)
	if err != nil {
		return nil, err
	}
	return resultOf(rel.Cols, rel.Rows), nil
}

func resultOf(cols []algebra.ColumnMeta, rows []types.Row) *Result {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return &Result{Columns: names, Rows: rows}
}

// Package catalog implements the PDW "shell database" (paper §2.2): a
// metadata-only image of the appliance. It records every table's schema,
// its distribution across compute nodes (hash-partitioned or replicated),
// primary keys, and the merged global statistics — everything compilation
// and optimization need, with no user data.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

// DistKind classifies how a table's rows are placed on compute nodes.
type DistKind uint8

const (
	// DistHash spreads rows across compute nodes by hashing the
	// distribution column.
	DistHash DistKind = iota
	// DistReplicated stores a full copy of the table on every compute node.
	DistReplicated
)

// String names the distribution kind the way PDW DDL does.
func (k DistKind) String() string {
	if k == DistReplicated {
		return "REPLICATE"
	}
	return "HASH"
}

// Distribution describes a table's placement.
type Distribution struct {
	Kind   DistKind
	Column string // distribution column for DistHash; empty otherwise
}

// String renders the placement, e.g. "HASH(o_orderkey)" or "REPLICATE".
func (d Distribution) String() string {
	if d.Kind == DistHash {
		return fmt.Sprintf("HASH(%s)", d.Column)
	}
	return "REPLICATE"
}

// Column is one column of a table.
type Column struct {
	Name string
	Type types.Kind
}

// Table is the shell-database image of one user table.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []string // empty when no key is declared
	Dist       Distribution
	Stats      *stats.Table // merged global statistics; may be nil
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	if i := t.ColumnIndex(name); i >= 0 {
		return &t.Columns[i]
	}
	return nil
}

// RowCount returns the global row count from statistics (0 without stats).
func (t *Table) RowCount() float64 {
	if t.Stats == nil {
		return 0
	}
	return t.Stats.RowCount
}

// AvgRowWidth returns the statistical average row width in bytes, falling
// back to a type-based estimate when statistics are absent.
func (t *Table) AvgRowWidth() float64 {
	if t.Stats != nil && t.Stats.AvgRowWidth > 0 {
		return t.Stats.AvgRowWidth
	}
	w := 0.0
	for _, c := range t.Columns {
		w += float64(c.Type.Width())
	}
	return w
}

// IsPrimaryKey reports whether cols (in any order) covers the primary key.
func (t *Table) IsPrimaryKey(cols []string) bool {
	if len(t.PrimaryKey) == 0 || len(cols) < len(t.PrimaryKey) {
		return false
	}
	for _, pk := range t.PrimaryKey {
		found := false
		for _, c := range cols {
			if strings.EqualFold(pk, c) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Topology describes the appliance (paper §2.1): homogeneous compute nodes
// behind a single control node.
type Topology struct {
	ComputeNodes int
}

// Shell is the shell database: the single-system image of the appliance.
//
// A Shell is safe for concurrent use: lookups take a read lock, DDL and
// statistics refreshes take the write lock, and a refresh replaces the
// table entry copy-on-write — a reader that already resolved a *Table
// keeps an immutable snapshot of the metadata it compiled against while
// later lookups observe the new statistics (and the bumped epoch).
type Shell struct {
	Topology Topology

	// epoch is the catalog/statistics version: bumped by every DDL change
	// (AddTable) and statistics refresh (SetStats). Plan caches key on it,
	// so a compiled plan can never outlive the metadata it was built from.
	// Atomic, so it lives above mu: readers never take the lock for it.
	epoch atomic.Uint64

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewShell returns an empty shell database for an appliance with n compute
// nodes.
func NewShell(n int) *Shell {
	return &Shell{Topology: Topology{ComputeNodes: n}, tables: make(map[string]*Table)}
}

// AddTable registers a table, validating schema and distribution metadata.
func (s *Shell) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table with empty name")
	}
	key := strings.ToLower(t.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[key]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	seen := map[string]bool{}
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("catalog: table %q: duplicate column %q", t.Name, c.Name)
		}
		seen[lc] = true
	}
	if t.Dist.Kind == DistHash {
		if t.ColumnIndex(t.Dist.Column) < 0 {
			return fmt.Errorf("catalog: table %q: distribution column %q not found", t.Name, t.Dist.Column)
		}
	} else if t.Dist.Column != "" {
		return fmt.Errorf("catalog: table %q: replicated table cannot name a distribution column", t.Name)
	}
	for _, pk := range t.PrimaryKey {
		if t.ColumnIndex(pk) < 0 {
			return fmt.Errorf("catalog: table %q: primary-key column %q not found", t.Name, pk)
		}
	}
	s.tables[key] = t
	s.epoch.Add(1)
	return nil
}

// Epoch returns the current catalog/statistics epoch. It increases
// monotonically; two equal readings bracket a window in which no DDL ran
// and no statistics changed.
func (s *Shell) Epoch() uint64 { return s.epoch.Load() }

// BumpEpoch advances the epoch without changing any metadata and returns
// the new value. DDL and stats paths bump implicitly; this is the explicit
// invalidation barrier ("treat everything compiled so far as stale").
func (s *Shell) BumpEpoch() uint64 { return s.epoch.Add(1) }

// Table resolves a table by name (case-insensitive), or nil.
func (s *Shell) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[strings.ToLower(name)]
}

// Tables returns every table sorted by name, for deterministic iteration.
func (s *Shell) Tables() []*Table {
	s.mu.RLock()
	out := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetStats attaches merged global statistics to the named table. The
// entry is replaced copy-on-write: concurrent compilations that already
// resolved the table keep reading the statistics they started with, and
// the epoch bump invalidates any plan cached against them.
func (s *Shell) SetStats(table string, st *stats.Table) error {
	key := strings.ToLower(table)
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[key]
	if !ok {
		return fmt.Errorf("catalog: unknown table %q", table)
	}
	nt := *t
	nt.Stats = st
	s.tables[key] = &nt
	s.epoch.Add(1)
	return nil
}

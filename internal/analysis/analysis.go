// Package analysis is a small, dependency-free static-analysis
// framework in the style of golang.org/x/tools/go/analysis, built only
// on the standard library: packages are enumerated with `go list
// -export -deps -json`, type-checked from source with imports resolved
// through the compiler export data the build cache already holds, and
// each Analyzer walks the typed syntax reporting Diagnostics.
//
// A diagnostic can be suppressed with a directive comment
//
//	//pdwlint:allow <analyzer> [<analyzer>...]
//
// placed on the offending line, on the line directly above it, or in
// the doc comment of the enclosing function declaration (which then
// covers the whole function body). Suppressions are deliberate,
// reviewable exceptions; prefer fixing the code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in output and in allow directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports diagnostics for one package through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// RunPackage applies every analyzer to one loaded package and returns
// the surviving diagnostics in file/line order, with allow-directive
// suppressions already applied.
func RunPackage(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	diags = filterSuppressed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

const allowPrefix = "//pdwlint:allow"

// allowedNames parses an allow directive comment, returning the
// analyzer names it covers (nil when c is not a directive).
func allowedNames(c *ast.Comment) []string {
	if !strings.HasPrefix(c.Text, allowPrefix) {
		return nil
	}
	return strings.Fields(c.Text[len(allowPrefix):])
}

// filterSuppressed drops diagnostics covered by an allow directive.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	type lineKey struct {
		file string
		line int
	}
	allowedLines := map[lineKey]map[string]bool{}
	type funcRange struct {
		from, to token.Pos
		names    []string
	}
	var allowedFuncs []funcRange
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := allowedNames(c)
				if len(names) == 0 {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				for _, line := range []int{p.Line, p.Line + 1} {
					k := lineKey{p.Filename, line}
					if allowedLines[k] == nil {
						allowedLines[k] = map[string]bool{}
					}
					for _, n := range names {
						allowedLines[k][n] = true
					}
				}
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if names := allowedNames(c); len(names) > 0 {
					allowedFuncs = append(allowedFuncs, funcRange{fd.Pos(), fd.End(), names})
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if allowedLines[lineKey{d.Position.Filename, d.Position.Line}][d.Analyzer] {
			continue
		}
		suppressed := false
		for _, fr := range allowedFuncs {
			if d.Pos >= fr.from && d.Pos < fr.to {
				for _, n := range fr.names {
					if n == d.Analyzer {
						suppressed = true
					}
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

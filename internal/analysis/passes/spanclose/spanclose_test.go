package spanclose_test

import (
	"path/filepath"
	"testing"

	"pdwqo/internal/analysis"
	"pdwqo/internal/analysis/passes/spanclose"
)

func TestSpanClose(t *testing.T) {
	analysis.RunTest(t, filepath.Join("testdata", "src", "a"), spanclose.Analyzer)
}

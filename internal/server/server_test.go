package server

import (
	"context"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pdwqo"
)

var (
	dbOnce sync.Once
	dbVal  *pdwqo.DB
	dbErr  error
)

// sharedDB is one tiny TPC-H appliance (2 nodes, sf 0.001) with a plan
// cache, shared by every test that only reads from it.
func sharedDB(t testing.TB) *pdwqo.DB {
	dbOnce.Do(func() {
		dbVal, dbErr = pdwqo.OpenTPCH(0.001, 2, 42)
		if dbErr == nil {
			dbVal.SetPlanCache(0)
		}
	})
	if dbErr != nil {
		t.Fatalf("open tpch: %v", dbErr)
	}
	return dbVal
}

// startServer runs a server on an ephemeral TCP port and tears it down
// with the test.
func startServer(t testing.TB, db *pdwqo.DB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(db, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, addr.String()
}

// libraryRows canonicalizes a library-path result into the wire's string
// rendering for byte-identical comparison.
func libraryRows(res *pdwqo.Result) [][]string {
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		r := make([]string, len(row))
		for j, v := range row {
			r[j] = v.String()
		}
		out[i] = r
	}
	return out
}

func sameRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestQueryRoundTrip(t *testing.T) {
	db := sharedDB(t)
	srv, addr := startServer(t, db, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.SessionID() == 0 {
		t.Error("session ID must be assigned")
	}
	if c.Epoch() != db.Shell().Epoch() {
		t.Error("handshake epoch snapshot")
	}

	const sql = "SELECT r_name FROM region ORDER BY r_name"
	got, err := c.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(sql, pdwqo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("columns = %v, want %v", got.Columns, want.Columns)
	}
	if !sameRows(got.Rows, libraryRows(want)) {
		t.Errorf("wire rows diverge from library rows")
	}
	if got.Epoch != db.Shell().Epoch() {
		t.Error("Done must carry the current epoch")
	}
	if st := srv.Stats(); st.Queries == 0 || st.Sessions == 0 || st.Admission.Admitted == 0 {
		t.Errorf("stats not counting: %+v", st)
	}
}

func TestQueryExecErrorKeepsSession(t *testing.T) {
	_, addr := startServer(t, sharedDB(t), Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(context.Background(), "SELECT nonsense FROM nowhere")
	if CodeOf(err) != CodeExec {
		t.Fatalf("want CodeExec, got %v", err)
	}
	// The session must survive an execution error.
	if _, err := c.Query(context.Background(), "SELECT r_name FROM region ORDER BY r_name"); err != nil {
		t.Fatalf("session unusable after exec error: %v", err)
	}
}

func TestPreparedStatements(t *testing.T) {
	db := sharedDB(t)
	_, addr := startServer(t, db, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const tpl = "SELECT n_name FROM nation WHERE n_regionkey = 1 ORDER BY n_name"
	st, err := c.Prepare(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 {
		t.Fatalf("params = %d, want 1", st.NumParams())
	}

	for rk := 0; rk < 3; rk++ {
		got, err := st.Exec(context.Background(), rk)
		if err != nil {
			t.Fatalf("exec rk=%d: %v", rk, err)
		}
		lib := strings.Replace(tpl, "= 1", "= "+itoa(rk), 1)
		want, err := db.Execute(lib, pdwqo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(got.Rows, libraryRows(want)) {
			t.Errorf("rk=%d: wire rows diverge from library", rk)
		}
		if rk > 0 && got.CacheStatus != "hit" {
			// The first execution may miss (or hit, if another test already
			// compiled the shape); every re-bound execution must hit.
			t.Errorf("rk=%d: cache status %q, want hit", rk, got.CacheStatus)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed statement: the server must answer a typed stmt-not-found.
	if _, err := st.Exec(context.Background(), 1); CodeOf(err) != CodeStmtNotFound {
		t.Errorf("exec after close: want CodeStmtNotFound, got %v", err)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func TestPreparedStatementErrors(t *testing.T) {
	_, addr := startServer(t, sharedDB(t), Config{MaxStmts: 2})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Prepare("SELECT n_name FROM nation WHERE n_regionkey = 1 AND n_nationkey > 1.5 AND n_name <> 'FRANCE'")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 3 {
		t.Fatalf("params = %d, want 3", st.NumParams())
	}
	// Client-side arity check.
	if _, err := st.Exec(context.Background(), 1); CodeOf(err) != CodeBadParams {
		t.Errorf("arity: want CodeBadParams, got %v", err)
	}
	// Client-side unsupported type.
	if _, err := st.Exec(context.Background(), 1, 2.5, struct{}{}); CodeOf(err) != CodeBadParams {
		t.Errorf("bad type: want CodeBadParams, got %v", err)
	}
	// Server-side kind validation: a non-numeric string bound to an int slot.
	if _, err := st.Exec(context.Background(), "DROP TABLE nation", 2.5, "GERMANY"); CodeOf(err) != CodeBadParams {
		t.Errorf("int slot with garbage text: want CodeBadParams, got %v", err)
	}
	if _, err := st.Exec(context.Background(), 1, "not-a-float", "GERMANY"); CodeOf(err) != CodeBadParams {
		t.Errorf("float slot with garbage text: want CodeBadParams, got %v", err)
	}
	// A quote in a string argument must be escaped, not break the splice.
	if _, err := st.Exec(context.Background(), 1, 2.5, "O'BRIEN"); err != nil {
		t.Errorf("quoted string argument: %v", err)
	}
	// Lexically invalid SQL fails at prepare with a typed error.
	if _, err := c.Prepare("SELECT ' dangling"); CodeOf(err) != CodeExec {
		t.Errorf("bad prepare: want CodeExec, got %v", err)
	}
	// The statement cap is enforced with a typed rejection.
	if _, err := c.Prepare("SELECT r_name FROM region WHERE r_regionkey = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare("SELECT r_name FROM region WHERE r_regionkey = 3"); CodeOf(err) != CodeTooManyStmts {
		t.Errorf("stmt cap: want CodeTooManyStmts, got %v", err)
	}
}

func TestHandshakeErrors(t *testing.T) {
	_, addr := startServer(t, sharedDB(t), Config{})
	cases := []struct {
		name string
		raw  []byte
		want Code
	}{
		{"bad magic", frameBytes([2]any{OpHello, helloPayload("EVIL", Version)}), CodeHandshake},
		{"bad version", frameBytes([2]any{OpHello, helloPayload(Magic, 42)}), CodeHandshake},
		{"query first", frameBytes([2]any{OpQuery, queryPayload("SELECT 1")}), CodeHandshake},
		{"garbage hello payload", frameBytes([2]any{OpHello, []byte{1, 2}}), CodeProtocol},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(tc.raw); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			op, p, err := ReadFrame(conn)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if op != OpError {
				t.Fatalf("want Error frame, got %s", op)
			}
			if got := CodeOf(decodeError(p)); got != tc.want {
				t.Errorf("code = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestBusyRejection pipelines a second query while the first is held
// mid-compile and expects the typed one-query-at-a-time rejection.
func TestBusyRejection(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	cfg := Config{PhaseHook: func(ph Phase, _ string) {
		if ph == PhaseCompiling {
			once.Do(func() { <-release })
		}
	}}
	_, addr := startServer(t, sharedDB(t), cfg)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(frameBytes([2]any{OpHello, helloPayload(Magic, Version)})); err != nil {
		t.Fatal(err)
	}
	if op, _, err := ReadFrame(conn); err != nil || op != OpHelloAck {
		t.Fatalf("handshake: %v %v", op, err)
	}
	const sql = "SELECT r_name FROM region ORDER BY r_name"
	conn.Write(frameBytes([2]any{OpQuery, queryPayload(sql)}))
	conn.Write(frameBytes([2]any{OpQuery, queryPayload(sql)}))
	// The pipelined query is rejected first, while the held one is busy.
	op, p, err := ReadFrame(conn)
	if err != nil || op != OpError {
		t.Fatalf("want Error frame, got %v %v", op, err)
	}
	if got := CodeOf(decodeError(p)); got != CodeBusy {
		t.Fatalf("code = %v, want busy", got)
	}
	close(release)
	// The held query then completes normally.
	sawDone := false
	for !sawDone {
		op, p, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("read after busy: %v", err)
		}
		switch op {
		case OpRowHeader, OpRowBatch:
		case OpDone:
			sawDone = true
		case OpError:
			t.Fatalf("held query failed: %v", decodeError(p))
		}
	}
}

func TestShutdownIdleSession(t *testing.T) {
	srv, addr := startServer(t, sharedDB(t), Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on an idle session")
	}
	// The idle session is told why before the connection closes.
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	op, p, err := ReadFrame(c.br)
	if err == nil && op == OpError {
		if got := CodeOf(decodeError(p)); got != CodeShutdown {
			t.Errorf("code = %v, want shutdown", got)
		}
	}
	// Queries against a shut-down server fail rather than hang.
	if _, err := c.Query(context.Background(), "SELECT r_name FROM region"); err == nil {
		t.Error("query after shutdown must fail")
	}
	// A shut-down server refuses new listeners.
	if _, err := srv.Listen("127.0.0.1:0"); CodeOf(err) != CodeShutdown {
		t.Errorf("listen after shutdown: %v", err)
	}
}

// TestConcurrentSessions drives parallel clients through one server and
// cross-checks every result against the library path.
func TestConcurrentSessions(t *testing.T) {
	db := sharedDB(t)
	const sql = "SELECT n_name, n_regionkey FROM nation ORDER BY n_name"
	want, err := db.Execute(sql, pdwqo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := libraryRows(want)
	_, addr := startServer(t, db, Config{MaxConcurrent: 4, MaxQueue: 64})
	const sessions = 16
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for q := 0; q < 3; q++ {
				got, err := c.Query(context.Background(), sql)
				if err != nil {
					errs <- err
					return
				}
				if !sameRows(got.Rows, wantRows) {
					errs <- errf(CodeExec, "rows diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShutdownReleasesEverything asserts the server leaves no goroutines
// behind after serving traffic and shutting down.
func TestShutdownReleasesEverything(t *testing.T) {
	db := sharedDB(t) // open the fixture before taking the goroutine baseline
	before := runtime.NumGoroutine()
	srv := New(db, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "SELECT r_name FROM region ORDER BY r_name"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Shutdown()
	assertNoGoroutineGrowth(t, before)
}

SELECT g13, COUNT(*) AS cnt, SUM(v10) AS sv
FROM mi00, mi01, mi02, mi03, mi04, mi05, mi06, mi07, mi08, mi09, mi10, mi11, mi12, mi13, mi14, mi15
WHERE k0 = f1
  AND k0 = f2
  AND k0 = f3
  AND k0 = f4
  AND k0 = f5
  AND k0 = f6
  AND k0 = f7
  AND k0 = f8
  AND k8 = f9
  AND k0 = h9
  AND k9 = f10
  AND k10 = f11
  AND k11 = f12
  AND k0 = h12
  AND k12 = f13
  AND k13 = f14
  AND k14 = f15
  AND k0 = h15
  AND v1 <= 193
  AND v2 <= 404
  AND v3 <= 869
  AND v5 <= 229
  AND v6 <= 134
  AND v7 <= 757
  AND v8 <= 790
  AND v11 <= 460
  AND v12 <= 316
  AND v13 <= 221
GROUP BY g13

// Command quickstart shows the minimal end-to-end flow: open a simulated
// PDW appliance over generated TPC-H data, optimize a join query, inspect
// the distributed plan, and execute it.
package main

import (
	"fmt"
	"log"

	"pdwqo"
)

func main() {
	// An 8-node appliance at scale factor 0.005 (~7.5k orders).
	db, err := pdwqo.OpenTPCH(0.005, 8, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's §2.4 example: customer is hash-partitioned on c_custkey,
	// orders on o_orderkey, so the join needs data movement.
	sql := `SELECT c_custkey, o_orderdate
	        FROM Orders, Customer
	        WHERE o_custkey = c_custkey AND o_totalprice > 100`

	plan, err := db.Optimize(sql, pdwqo.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== distributed plan and DSQL steps ===")
	fmt.Println(plan.Explain())

	res, err := db.ExecutePlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== result: %d rows, first 5 ===\n", len(res.Rows))
	for i, row := range res.Rows {
		if i == 5 {
			break
		}
		fmt.Println(row)
	}

	// The serial reference executor validates the distributed result.
	ref, err := db.ExecuteSerial(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial reference agrees on row count: %v (%d rows)\n",
		len(ref.Rows) == len(res.Rows), len(ref.Rows))
}

package normalize

import (
	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
)

// SeedCollocated rewrites each inner-join region of the normalized tree so
// that distribution-compatible factors join first — the paper's §3.1
// seeding: "For PDW optimization, we seed the MEMO with execution plans
// that consider distribution information of tables, for collocated
// operations." When the optimizer's exploration budget (timeout) is tight,
// the initial plan dominates the explored neighborhood, so a
// collocation-aware initial join order preserves plan quality that a
// syntax-ordered initial plan loses (experiment E10).
func SeedCollocated(t *algebra.Tree) *algebra.Tree {
	// Seed only at MAXIMAL join regions: rebuilding an inner sub-region
	// first would cap it with a projection that fragments the enclosing
	// region and blocks the memo's join reordering across it. Factors
	// (non-region subtrees) are seeded recursively.
	if isRegionRoot(t) {
		factors, conjs := disassembleRegion(t)
		if len(factors) >= 3 {
			for i := range factors {
				factors[i] = seedChildren(factors[i])
			}
			// Re-running pushdown restores single-table filters to their
			// scans and splits join conditions, so the seeded initial plan
			// is as normalized as the original — only the join order
			// differs.
			return pushdown(reassembleRegion(factors, conjs, t.OutputCols()))
		}
	}
	return seedChildren(t)
}

// seedChildren recurses into a non-region node's children.
func seedChildren(t *algebra.Tree) *algebra.Tree {
	if len(t.Children) == 0 {
		return t
	}
	children := make([]*algebra.Tree, len(t.Children))
	for i, c := range t.Children {
		children[i] = SeedCollocated(c)
	}
	return algebra.NewTree(t.Op, children...)
}

// disassembleRegion splits a contiguous inner-join/select region into its
// leaf factors (already seeded recursively) and the pooled conjuncts.
func disassembleRegion(t *algebra.Tree) ([]*algebra.Tree, []algebra.Scalar) {
	var factors []*algebra.Tree
	var conjs []algebra.Scalar
	var walk func(n *algebra.Tree)
	walk = func(n *algebra.Tree) {
		switch op := n.Op.(type) {
		case *algebra.Select:
			conjs = append(conjs, algebra.Conjuncts(op.Filter)...)
			walk(n.Children[0])
			return
		case *algebra.Join:
			if op.Kind == algebra.JoinInner || op.Kind == algebra.JoinCross {
				conjs = append(conjs, algebra.Conjuncts(op.On)...)
				walk(n.Children[0])
				walk(n.Children[1])
				return
			}
		}
		factors = append(factors, n)
	}
	walk(t)
	return factors, conjs
}

// factorDist approximates the natural placement of a factor: the hash
// columns it is (or stays) distributed on, or replicated.
type factorDist struct {
	replicated bool
	cols       algebra.ColSet
}

func distOf(t *algebra.Tree) factorDist {
	switch op := t.Op.(type) {
	case *algebra.Get:
		if op.Table.Dist.Kind == catalog.DistReplicated {
			return factorDist{replicated: true}
		}
		cols := algebra.NewColSet()
		for _, c := range op.Cols {
			if equalFoldSeed(c.Name, op.Table.Dist.Column) {
				cols.Add(c.ID)
			}
		}
		return factorDist{cols: cols}
	case *algebra.Select, *algebra.Sort:
		return distOf(t.Children[0])
	case *algebra.Project:
		in := distOf(t.Children[0])
		if in.replicated {
			return in
		}
		out := algebra.NewColSet()
		for _, d := range op.Defs {
			if c, ok := d.Expr.(*algebra.ColRef); ok && in.cols.Has(c.ID) {
				out.Add(d.ID)
			}
		}
		return factorDist{cols: out}
	case *algebra.GroupBy:
		in := distOf(t.Children[0])
		if in.replicated {
			return in
		}
		keys := algebra.NewColSet(op.Keys...)
		out := algebra.NewColSet()
		for id := range in.cols {
			if keys.Has(id) {
				out.Add(id)
			}
		}
		return factorDist{cols: out}
	case *algebra.Values:
		return factorDist{replicated: true}
	default:
		return factorDist{cols: algebra.NewColSet()}
	}
}

// sizeOf estimates a factor's cardinality from shell statistics (filters
// ignored — the seed only needs relative magnitudes).
func sizeOf(t *algebra.Tree) float64 {
	switch op := t.Op.(type) {
	case *algebra.Get:
		if r := op.Table.RowCount(); r > 0 {
			return r
		}
		return 1000
	case *algebra.Values:
		return float64(len(op.Rows)) + 1
	}
	if len(t.Children) > 0 {
		m := 0.0
		for _, c := range t.Children {
			if s := sizeOf(c); s > m {
				m = s
			}
		}
		return m
	}
	return 1000
}

// collocatedOn reports whether an equality conjunct links the two hash
// column classes.
func collocatedOn(a, b factorDist, conjs []algebra.Scalar) bool {
	for _, conj := range conjs {
		l, r, ok := algebra.EquiJoinSides(conj)
		if !ok {
			continue
		}
		if (a.cols.Has(l) && b.cols.Has(r)) || (a.cols.Has(r) && b.cols.Has(l)) {
			return true
		}
	}
	return false
}

// moveEstimate approximates the rows that must move to join two
// placements: zero for collocated or replicated pairs, otherwise the
// smaller side (it would be shuffled or broadcast).
func moveEstimate(a, b factorDist, aSize, bSize float64, conjs []algebra.Scalar) float64 {
	if a.replicated || b.replicated {
		return 0
	}
	if collocatedOn(a, b, conjs) {
		return 0
	}
	if aSize < bSize {
		return aSize
	}
	return bSize
}

// reassembleRegion greedily rebuilds the join tree preferring collocated
// (then replicated) additions, placing each conjunct at the first join
// where its columns are available.
func reassembleRegion(factors []*algebra.Tree, conjs []algebra.Scalar, want []algebra.ColumnMeta) *algebra.Tree {
	type item struct {
		tree *algebra.Tree
		dist factorDist
		cols algebra.ColSet
		size float64
	}
	pending := append([]algebra.Scalar{}, conjs...)
	items := make([]*item, len(factors))
	for i, f := range factors {
		items[i] = &item{tree: f, dist: distOf(f), cols: f.OutputColSet(), size: sizeOf(f)}
	}

	// takeConds removes and returns every pending conjunct fully covered
	// by the column set.
	takeConds := func(cols algebra.ColSet) []algebra.Scalar {
		var out []algebra.Scalar
		var rest []algebra.Scalar
		for _, c := range pending {
			if algebra.ScalarCols(c).SubsetOf(cols) {
				out = append(out, c)
			} else {
				rest = append(rest, c)
			}
		}
		pending = rest
		return out
	}

	// Single-factor predicates go straight back onto their factors so the
	// initial plan keeps filters adjacent to scans.
	for _, it := range items {
		if conds := takeConds(it.cols); len(conds) > 0 {
			it.tree = algebra.NewTree(&algebra.Select{Filter: algebra.AndAll(conds)}, it.tree)
		}
	}

	// Seed with the pair minimizing movement; on ties lock in the largest
	// collocation first (protecting the biggest tables from moving).
	bi, bj := 0, 1
	bestMove, bestSize := -1.0, 0.0
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			mv := moveEstimate(items[i].dist, items[j].dist, items[i].size, items[j].size, pending)
			sz := items[i].size + items[j].size
			if bestMove < 0 || mv < bestMove || (mv == bestMove && sz > bestSize) {
				bi, bj, bestMove, bestSize = i, j, mv, sz
			}
		}
	}
	join := func(a, b *item) *item {
		cols := algebra.NewColSet()
		cols.AddSet(a.cols)
		cols.AddSet(b.cols)
		conds := takeConds(cols)
		kind := algebra.JoinInner
		if len(conds) == 0 {
			kind = algebra.JoinCross
		}
		tree := algebra.NewTree(&algebra.Join{Kind: kind, On: algebra.AndAll(conds)}, a.tree, b.tree)
		// Composite placement.
		var d factorDist
		switch {
		case a.dist.replicated && b.dist.replicated:
			d = factorDist{replicated: true}
		case a.dist.replicated:
			d = b.dist
		case b.dist.replicated:
			d = a.dist
		default:
			merged := algebra.NewColSet()
			merged.AddSet(a.dist.cols)
			merged.AddSet(b.dist.cols)
			d = factorDist{cols: merged}
		}
		size := a.size
		if b.size > size {
			size = b.size
		}
		return &item{tree: tree, dist: d, cols: cols, size: size}
	}

	cur := join(items[bi], items[bj])
	var rest []*item
	for i, it := range items {
		if i != bi && i != bj {
			rest = append(rest, it)
		}
	}
	for len(rest) > 0 {
		best := 0
		bestMove, bestSize = -1, 0
		for i, it := range rest {
			mv := moveEstimate(cur.dist, it.dist, cur.size, it.size, pending)
			if bestMove < 0 || mv < bestMove || (mv == bestMove && it.size > bestSize) {
				best, bestMove, bestSize = i, mv, it.size
			}
		}
		cur = join(cur, rest[best])
		rest = append(rest[:best], rest[best+1:]...)
	}
	out := cur.tree
	if len(pending) > 0 {
		out = algebra.NewTree(&algebra.Select{Filter: algebra.AndAll(pending)}, out)
	}
	// The region rebuild preserves the output column set but may reorder
	// it; parents reference columns by ID, and the region root's parent in
	// the original tree was built against `want` — restore that order with
	// a projection when it differs.
	got := out.OutputCols()
	same := len(got) == len(want)
	if same {
		for i := range got {
			if got[i].ID != want[i].ID {
				same = false
				break
			}
		}
	}
	if !same {
		defs := make([]algebra.ProjDef, len(want))
		for i, c := range want {
			defs[i] = algebra.ProjDef{Expr: algebra.NewColRef(c), ID: c.ID, Name: c.Name}
		}
		out = algebra.NewTree(&algebra.Project{Defs: defs}, out)
	}
	return out
}

func equalFoldSeed(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

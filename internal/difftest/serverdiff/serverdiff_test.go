package serverdiff

import (
	"fmt"
	"sync"
	"testing"

	"pdwqo"
	"pdwqo/internal/difftest"
	"pdwqo/internal/server"
)

// openAppliance caches one DB per topology; the corpus sweep reuses them.
var appliances = map[int]*pdwqo.DB{}

func openAppliance(t testing.TB, nodes int) *pdwqo.DB {
	t.Helper()
	if db, ok := appliances[nodes]; ok {
		return db
	}
	db, err := pdwqo.OpenTPCH(0.001, nodes, 42)
	if err != nil {
		t.Fatal(err)
	}
	appliances[nodes] = db
	return db
}

// startWireServer puts a server in front of an appliance and opens one
// client session, tearing both down with the test.
func startWireServer(t *testing.T, db *pdwqo.DB) *server.Client {
	t.Helper()
	srv := server.New(db, server.Config{MaxConcurrent: 4, MaxQueue: 64})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServerVsLibraryTPCH is the wire-path differential sweep: every
// adapted TPC-H query on 1-, 2-, 4-, and 8-node topologies must stream
// byte-identical results through the server and the library.
func TestServerVsLibraryTPCH(t *testing.T) {
	topologies := []int{1, 2, 4, 8}
	if testing.Short() {
		topologies = []int{4}
	}
	if raceEnabled {
		topologies = []int{8}
	}
	for _, nodes := range topologies {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes-%d", nodes), func(t *testing.T) {
			db := openAppliance(t, nodes)
			c := startWireServer(t, db)
			for _, cs := range difftest.TPCHCases() {
				cs := cs
				t.Run(cs.Name, func(t *testing.T) {
					if err := ServerDiff(db, c, cs); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// TestServerVsLibraryFuzz runs the seeded random corpus through the wire
// differential contract on the 4-node appliance.
func TestServerVsLibraryFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz corpus skipped in -short mode")
	}
	db := openAppliance(t, 4)
	c := startWireServer(t, db)
	for _, cs := range difftest.FuzzCases(40, 20260805) {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			if err := ServerDiff(db, c, cs); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestServerChaos sweeps seeded fault plans over a sample of the corpus
// through the wire path: absorbed faults must not perturb a single byte,
// surviving ones must surface as typed exec errors on a session that
// stays usable, and nothing may leak.
func TestServerChaos(t *testing.T) {
	db := openAppliance(t, 4)
	c := startWireServer(t, db)
	cases := []difftest.Case{difftest.TPCHCases()[0], difftest.TPCHCases()[4], difftest.TPCHCases()[9]}
	cases = append(cases, difftest.FuzzCases(2, 7)...)
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() || raceEnabled {
		seeds = seeds[:3]
	}
	for _, cs := range cases {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			for _, seed := range seeds {
				if err := ServerChaos(db, c, cs, seed, 3); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestExecuteEpochRace hammers DB.Execute from many goroutines while a
// writer advances the catalog epoch and republishes statistics, with the
// shared plan cache installed. Under -race this certifies the
// snapshot-isolation story end to end: compilations pin the epoch and the
// stats they resolved, cached plans invalidate cleanly, and every
// concurrent execution still returns correct rows.
func TestExecuteEpochRace(t *testing.T) {
	db, err := pdwqo.OpenTPCH(0.001, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	db.SetPlanCache(256)
	defer db.SetPlanCache(-1)

	shell := db.Shell()
	nationStats := shell.Table("nation").Stats
	const sql = "SELECT n_name FROM nation WHERE n_regionkey = 1 ORDER BY n_name"
	want, err := db.Execute(sql, pdwqo.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const readers, iters = 8, 30
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			shell.BumpEpoch()
			if i%3 == 0 {
				if err := shell.SetStats("nation", nationStats); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := db.Execute(sql, pdwqo.Options{})
				if err != nil {
					errs <- err
					return
				}
				if derr := difftest.DiffResults("epoch-race", 1, want, res); derr != nil {
					errs <- derr
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"pdwqo"
	"pdwqo/internal/server"
)

// TestDefaultMixRuns drives a short load against an in-process server and
// asserts every DefaultMix shape parameterizes, compiles, and executes
// cleanly on both the ad-hoc and prepared paths, and that the report's
// accounting adds up.
func TestDefaultMixRuns(t *testing.T) {
	db, err := pdwqo.OpenTPCH(0.001, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	db.SetPlanCache(256)
	srv := server.New(db, server.Config{MaxConcurrent: 4, MaxQueue: 64})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	// Enough queries per session that the rng visits every shape with
	// overwhelming probability, half prepared and half ad-hoc.
	rep, err := Run(context.Background(), Config{
		Addr:              addr.String(),
		Sessions:          4,
		QueriesPerSession: 40,
		PreparedFraction:  0.5,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DialFails != 0 {
		t.Fatalf("dial failures: %d", rep.DialFails)
	}
	if rep.Errors != 0 {
		t.Fatalf("load errors: %d by code %v", rep.Errors, rep.ByCode)
	}
	if want := uint64(4 * 40); rep.Queries != want {
		t.Fatalf("queries = %d, want %d", rep.Queries, want)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Fatalf("implausible percentiles: p50=%v p99=%v max=%v", rep.P50, rep.P99, rep.Max)
	}
	if rep.Throughput() <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput())
	}
	// With constant rotation over a small template set the cache must be
	// nearly all hits after the first few compilations.
	if hr := rep.HitRate(); hr < 0.5 {
		t.Fatalf("cache hit rate %.2f, want >= 0.5 (by status %v)", hr, rep.ByStatus)
	}
	var statusTotal uint64
	for _, n := range rep.ByStatus {
		statusTotal += n
	}
	if statusTotal != rep.Queries-rep.Errors {
		t.Fatalf("status counts %d != successful queries %d", statusTotal, rep.Queries-rep.Errors)
	}
	out := rep.String()
	for _, want := range []string{"sessions=4", "queries=160", "cache-hit-rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report %q missing %q", out, want)
		}
	}
}

// TestRunValidation covers the config error paths.
func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Sessions: 0, QueriesPerSession: 1}); err == nil {
		t.Fatal("expected error for zero sessions")
	}
	if _, err := Run(context.Background(), Config{Sessions: 1}); err == nil {
		t.Fatal("expected error when neither QueriesPerSession nor Duration is set")
	}
	if _, err := Run(context.Background(), Config{
		Sessions: 1, QueriesPerSession: 1, Mix: []string{"SELECT 'unterminated"},
	}); err == nil {
		t.Fatal("expected error for unparameterizable mix entry")
	}
}

// TestDurationRun exercises the wall-clock mode: sessions issue queries
// until the deadline instead of a fixed count.
func TestDurationRun(t *testing.T) {
	db, err := pdwqo.OpenTPCH(0.001, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	db.SetPlanCache(256)
	srv := server.New(db, server.Config{MaxConcurrent: 2, MaxQueue: 16})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	rep, err := Run(context.Background(), Config{
		Addr:     addr.String(),
		Sessions: 2,
		Duration: 300 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DialFails != 0 || rep.Errors != 0 {
		t.Fatalf("dialFails=%d errors=%d (%v)", rep.DialFails, rep.Errors, rep.ByCode)
	}
	if rep.Queries == 0 {
		t.Fatal("duration run issued no queries")
	}
}

// TestDialFailure reports unreachable servers instead of hanging.
func TestDialFailure(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Addr: "127.0.0.1:1", Sessions: 2, QueriesPerSession: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DialFails != 2 {
		t.Fatalf("dialFails = %d, want 2", rep.DialFails)
	}
}

package core

import (
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/cost"
	"pdwqo/internal/memo"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/tpch"
)

var (
	sharedShell *catalog.Shell
)

func shell(t *testing.T) *catalog.Shell {
	t.Helper()
	if sharedShell == nil {
		s, _, err := tpch.BuildShell(0.002, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		sharedShell = s
	}
	return sharedShell
}

// plan runs the full pipeline: parse → bind → normalize → serial memo →
// XML → PDW optimize.
func plan(t *testing.T, s *catalog.Shell, sql string, cfg Config) *Plan {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBinder(s)
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize.New(b).Normalize(tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Optimize(s, norm, memo.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	data, err := memoxml.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := memoxml.Decode(data, s)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(s.Topology.ComputeNodes, cost.DefaultLambda())
	p, err := New(dec, s, model, cfg).Optimize()
	if err != nil {
		t.Fatalf("PDW optimize %q: %v", sql, err)
	}
	return p
}

// moves extracts the plan's data movements in pre-order.
func moves(p *Plan) []MoveSpec {
	var out []MoveSpec
	p.Root.Visit(func(o *Option) {
		if o.Move != nil {
			out = append(out, *o.Move)
		}
	})
	return out
}

// paperFigure3Query is the query of the paper's Figure 3 (same join as
// the §2.4 DSQL example, SELECT * form).
const paperFigure3Query = `SELECT * FROM CUSTOMER C, ORDERS O
	WHERE C.c_custkey = O.o_custkey AND O.o_totalprice > 1000`

// paperSection24Query is the exact query of the paper's §2.4 DSQL example.
const paperSection24Query = `SELECT c_custkey, o_orderdate FROM Orders, Customer
	WHERE o_custkey = c_custkey AND o_totalprice > 100`

func TestE2Section24ShuffleOrders(t *testing.T) {
	// Customer is hashed on c_custkey (the join column); Orders on
	// o_orderkey (not the join column). With the full row widths of the
	// Figure 3 query, the paper's plan emerges: shuffle the filtered
	// Orders on o_custkey, then join collocated — exactly one move, a
	// shuffle, and it must be on the orders side.
	p := plan(t, shell(t), paperFigure3Query, Config{})
	ms := moves(p)
	if len(ms) != 1 || ms[0].Kind != cost.Shuffle {
		t.Fatalf("want exactly one SHUFFLE, got %v\n%s", ms, p.Root)
	}
	// The shuffled subtree must scan orders, not customer.
	var shuffled *Option
	p.Root.Visit(func(o *Option) {
		if o.Move != nil && o.Move.Kind == cost.Shuffle {
			shuffled = o.Inputs[0]
		}
	})
	foundOrders := false
	shuffled.Visit(func(o *Option) {
		if g, ok := o.Op.(*algebra.Get); ok {
			if g.Table.Name == "orders" {
				foundOrders = true
			}
			if g.Table.Name == "customer" {
				t.Error("customer must not move: it is already on the join column")
			}
		}
	})
	if !foundOrders {
		t.Errorf("the orders side must be the one shuffled:\n%s", p.Root)
	}
	// The filter must be applied below the shuffle (ship less data).
	foundFilter := false
	shuffled.Visit(func(o *Option) {
		if _, ok := o.Op.(*algebra.Select); ok {
			foundFilter = true
		}
	})
	if !foundFilter {
		t.Errorf("o_totalprice filter should run before the shuffle:\n%s", p.Root)
	}
}

func TestReplicatedJoinNeedsNoMoves(t *testing.T) {
	p := plan(t, shell(t), `SELECT c_name, n_name FROM customer, nation
		WHERE c_nationkey = n_nationkey`, Config{})
	if ms := moves(p); len(ms) != 0 {
		t.Errorf("replicated nation joins in place, got moves %v\n%s", ms, p.Root)
	}
	if p.Root.DMSCost != 0 {
		t.Errorf("plan DMS cost should be 0, got %v", p.Root.DMSCost)
	}
}

func TestCollocatedJoinNeedsNoMoves(t *testing.T) {
	// orders ⋈ lineitem on the shared hash column (orderkey).
	p := plan(t, shell(t), `SELECT o_orderdate FROM orders, lineitem
		WHERE o_orderkey = l_orderkey`, Config{})
	if ms := moves(p); len(ms) != 0 {
		t.Errorf("collocated join must not move data: %v\n%s", ms, p.Root)
	}
}

func TestE3SerialVsParallelJoinOrder(t *testing.T) {
	// The §3.2 example: joining customer, orders, lineitem on custkey and
	// orderkey. The collocated orders⋈lineitem join must happen first with
	// a single shuffle of its (aggregated-size) result or of customer —
	// never a shuffle of both orders and lineitem.
	sql := `SELECT c_name, l_quantity FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey`
	full := plan(t, shell(t), sql, Config{})
	baseline := plan(t, shell(t), sql, Config{Mode: ModeSerialBaseline})
	if full.TotalCost > baseline.TotalCost {
		t.Errorf("full search (%v) must not lose to serial baseline (%v)",
			full.TotalCost, baseline.TotalCost)
	}
	// The full plan must exploit the appliance layout: either a collocated
	// orders⋈lineitem join (the paper's preferred shape) or an equivalent
	// single cheap move (broadcasting the small customer side). It must
	// never shuffle both large tables.
	ms := moves(full)
	if len(ms) > 1 {
		t.Errorf("expected at most one move, got %v:\n%s", ms, full.Root)
	}
	// The two large tables must never move: their shared partitioning on
	// orderkey is exploited by a collocated join.
	full.Root.Visit(func(o *Option) {
		if o.Move == nil {
			return
		}
		o.Inputs[0].Visit(func(n *Option) {
			if g, ok := n.Op.(*algebra.Get); ok && (g.Table.Name == "orders" || g.Table.Name == "lineitem") {
				t.Errorf("%s must not move:\n%s", g.Table.Name, full.Root)
			}
		})
	})
}

func TestPartialFinalAggregation(t *testing.T) {
	// Orders is hashed on o_orderkey; grouping by o_custkey requires
	// movement. The partial/final split shrinks the shuffle.
	sql := `SELECT o_custkey, COUNT(*) AS cnt, SUM(o_totalprice) AS total
		FROM orders GROUP BY o_custkey`
	p := plan(t, shell(t), sql, Config{})
	var phases []algebra.AggPhase
	p.Root.Visit(func(o *Option) {
		if gb, ok := o.Op.(*algebra.GroupBy); ok {
			phases = append(phases, gb.Phase)
		}
	})
	hasLocal, hasGlobal := false, false
	for _, ph := range phases {
		if ph == algebra.AggPartial {
			hasLocal = true
		}
		if ph == algebra.AggFinal {
			hasGlobal = true
		}
	}
	if !hasLocal || !hasGlobal {
		t.Errorf("expected partial/final split, phases %v:\n%s", phases, p.Root)
	}
	// Ablation: disabling the split must not produce a cheaper plan.
	off := plan(t, shell(t), sql, Config{DisableAggSplit: true})
	if off.TotalCost < p.TotalCost {
		t.Errorf("split off (%v) beat on (%v)", off.TotalCost, p.TotalCost)
	}
	off.Root.Visit(func(o *Option) {
		if gb, ok := o.Op.(*algebra.GroupBy); ok && gb.Phase != algebra.AggComplete {
			t.Error("ablation must not contain split aggregates")
		}
	})
}

func TestScalarAggregateGathersPartials(t *testing.T) {
	p := plan(t, shell(t), `SELECT SUM(l_quantity) FROM lineitem`, Config{})
	if p.Root.Dist.Kind != DistSingle {
		t.Errorf("scalar aggregate ends on the control node, got %s", p.Root.Dist)
	}
	ms := moves(p)
	if len(ms) != 1 || ms[0].Kind != cost.PartitionMove {
		t.Errorf("expected a single partition move of partials: %v\n%s", ms, p.Root)
	}
	// The gathered relation must be the tiny local-aggregate output (N
	// rows), not the full lineitem table.
	p.Root.Visit(func(o *Option) {
		if o.Move != nil && o.Move.Kind == cost.PartitionMove {
			if o.Rows > float64(8*2) {
				t.Errorf("partition move carries %v rows; partials expected", o.Rows)
			}
		}
	})
}

func TestBroadcastSmallSideChosen(t *testing.T) {
	// part filtered by a selective LIKE joins lineitem on l_partkey
	// (lineitem hashed on l_orderkey): broadcasting the small filtered
	// part must beat shuffling all of lineitem (the paper's Q20 step 0
	// decision).
	p := plan(t, shell(t), `SELECT l_quantity FROM part, lineitem
		WHERE p_partkey = l_partkey AND p_name LIKE 'forest%'`, Config{})
	ms := moves(p)
	hasBroadcast := false
	for _, m := range ms {
		if m.Kind == cost.Broadcast {
			hasBroadcast = true
		}
		if m.Kind == cost.Shuffle {
			// A shuffle of lineitem would be the expensive alternative.
			t.Errorf("did not expect a shuffle: %v\n%s", ms, p.Root)
		}
	}
	if !hasBroadcast {
		t.Errorf("expected broadcast of filtered part: %v\n%s", ms, p.Root)
	}
}

func TestSerialBaselineNeverCheaper(t *testing.T) {
	queries := []string{
		paperSection24Query,
		`SELECT c_name, l_quantity FROM customer, orders, lineitem
			WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey`,
		`SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey`,
		`SELECT n_name, COUNT(*) FROM customer, nation WHERE c_nationkey = n_nationkey GROUP BY n_name`,
	}
	for _, sql := range queries {
		full := plan(t, shell(t), sql, Config{})
		base := plan(t, shell(t), sql, Config{Mode: ModeSerialBaseline})
		if full.TotalCost > base.TotalCost+1e-9 {
			t.Errorf("full (%v) worse than baseline (%v) for %q", full.TotalCost, base.TotalCost, sql)
		}
	}
}

func TestInterestingRetentionAblation(t *testing.T) {
	sql := `SELECT c_name, l_quantity FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey`
	full := plan(t, shell(t), sql, Config{})
	ablated := plan(t, shell(t), sql, Config{DisableInterestingRetention: true})
	if full.TotalCost > ablated.TotalCost+1e-9 {
		t.Errorf("retention on (%v) must not lose to off (%v)", full.TotalCost, ablated.TotalCost)
	}
	if ablated.OptionsRetained >= full.OptionsRetained {
		t.Errorf("ablation should retain fewer options: %d vs %d",
			ablated.OptionsRetained, full.OptionsRetained)
	}
}

func TestPlanDeterminism(t *testing.T) {
	sql := `SELECT c_name, l_quantity FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey`
	a := plan(t, shell(t), sql, Config{})
	b := plan(t, shell(t), sql, Config{})
	if a.Root.String() != b.Root.String() {
		t.Errorf("plans differ across runs:\n%s\nvs\n%s", a.Root, b.Root)
	}
	if a.TotalCost != b.TotalCost {
		t.Error("costs differ across runs")
	}
}

func TestQ20PlanShape(t *testing.T) {
	// The paper's Figure 7 walk-through. Expectations on plan shape:
	//  - part is broadcast (not lineitem shuffled),
	//  - a partial/final aggregation pair exists,
	//  - a shuffle lands on an aggregation key,
	//  - supplier and nation never move (replicated).
	q, _ := tpch.Get("q20")
	p := plan(t, shell(t), q.SQL, Config{})
	ms := moves(p)
	counts := map[cost.MoveKind]int{}
	for _, m := range ms {
		counts[m.Kind]++
	}
	if counts[cost.Broadcast] < 1 {
		t.Errorf("expected broadcast of filtered part, moves=%v\n%s", ms, p.Root)
	}
	if counts[cost.Shuffle] < 1 {
		t.Errorf("expected at least one shuffle, moves=%v\n%s", ms, p.Root)
	}
	hasLocal, hasGlobal := false, false
	p.Root.Visit(func(o *Option) {
		if gb, ok := o.Op.(*algebra.GroupBy); ok {
			switch gb.Phase {
			case algebra.AggPartial:
				hasLocal = true
			case algebra.AggFinal:
				hasGlobal = true
			}
		}
		if g, ok := o.Op.(*algebra.Get); ok {
			_ = g
		}
	})
	if !hasLocal || !hasGlobal {
		t.Errorf("expected partial/final aggregation in Q20 plan:\n%s", p.Root)
	}
	// supplier and nation are replicated: no move may sit above their scans.
	p.Root.Visit(func(o *Option) {
		if o.Move == nil {
			return
		}
		o.Inputs[0].Visit(func(n *Option) {
			if g, ok := n.Op.(*algebra.Get); ok {
				if g.Table.Name == "supplier" || g.Table.Name == "nation" {
					// Moves above subtrees containing replicated tables are
					// fine only if the subtree also contains hashed tables.
					hasHashed := false
					o.Inputs[0].Visit(func(x *Option) {
						if gg, ok := x.Op.(*algebra.Get); ok && gg.Table.Dist.Kind == catalog.DistHash {
							hasHashed = true
						}
					})
					if !hasHashed {
						t.Errorf("replicated %s should not move:\n%s", g.Table.Name, p.Root)
					}
				}
			}
		})
	})
}

func TestAllTPCHQueriesPlan(t *testing.T) {
	s := shell(t)
	for _, q := range tpch.Queries() {
		p := plan(t, s, q.SQL, Config{})
		if p.Root == nil || p.TotalCost < 0 {
			t.Errorf("%s: bad plan", q.Name)
		}
		base := plan(t, s, q.SQL, Config{Mode: ModeSerialBaseline})
		if p.TotalCost > base.TotalCost+1e-9 {
			t.Errorf("%s: full (%v) worse than baseline (%v)", q.Name, p.TotalCost, base.TotalCost)
		}
	}
}

func TestInterestingColumnsDerived(t *testing.T) {
	s := shell(t)
	sel, err := sqlparser.ParseSelect(paperFigure3Query)
	if err != nil {
		t.Fatal(err)
	}
	b := algebra.NewBinder(s)
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize.New(b).Normalize(tree)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Optimize(s, norm, memo.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	data, err := memoxml.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := memoxml.Decode(data, s)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(8, cost.DefaultLambda())
	opt := New(dec, s, model, Config{})
	if _, err := opt.Optimize(); err != nil {
		t.Fatal(err)
	}
	// Some group must find the join columns interesting.
	anyInteresting := false
	for id := range dec.Groups {
		if len(opt.Interesting(id)) > 0 {
			anyInteresting = true
		}
	}
	if !anyInteresting {
		t.Error("no interesting columns derived")
	}
}

func TestMoveCountsHelper(t *testing.T) {
	p := plan(t, shell(t), paperFigure3Query, Config{})
	counts := p.Root.CountMoves()
	if counts[cost.Shuffle] != 1 {
		t.Errorf("CountMoves: %v", counts)
	}
}

func TestPlanStringRendering(t *testing.T) {
	p := plan(t, shell(t), paperFigure3Query, Config{})
	s := p.Root.String()
	if !strings.Contains(s, "SHUFFLE") || !strings.Contains(s, "hash(") {
		t.Errorf("plan rendering:\n%s", s)
	}
}

func TestSeedingHelpsUnderTightBudget(t *testing.T) {
	// §3.1: with the optimizer timeout biting early, the distribution-
	// aware seed must not lose to the syntax-order seed, and both converge
	// to the same plan when exploration completes.
	s := shell(t)
	q := `SELECT n_name, SUM(l_extendedprice) AS rev
	      FROM customer, orders, lineitem, supplier, nation, region
	      WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	        AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
	        AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
	      GROUP BY n_name`
	planSeeded := func(budget int, seed bool) float64 {
		t.Helper()
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		b := algebra.NewBinder(s)
		tree, err := b.Bind(sel)
		if err != nil {
			t.Fatal(err)
		}
		norm, err := normalize.New(b).Normalize(tree)
		if err != nil {
			t.Fatal(err)
		}
		var seeds []*algebra.Tree
		if seed {
			seeds = append(seeds, normalize.SeedCollocated(norm))
		}
		m, err := memo.OptimizeSeeded(s, norm, budget, seeds...)
		if err != nil {
			t.Fatal(err)
		}
		data, err := memoxml.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := memoxml.Decode(data, s)
		if err != nil {
			t.Fatal(err)
		}
		model := cost.NewModel(s.Topology.ComputeNodes, cost.DefaultLambda())
		p, err := New(dec, s, model, Config{}).Optimize()
		if err != nil {
			t.Fatal(err)
		}
		return p.TotalCost
	}
	for _, budget := range []int{60, 300, 3000} {
		un, se := planSeeded(budget, false), planSeeded(budget, true)
		if se > un*1.001 {
			t.Errorf("budget %d: seeded %v worse than unseeded %v", budget, se, un)
		}
	}
}

package tpch

import (
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 42)
	b := Generate(0.001, 42)
	if a.Rows() != b.Rows() {
		t.Fatal("same seed must produce same row counts")
	}
	for _, tbl := range []string{"orders", "lineitem", "part"} {
		if len(a[tbl]) == 0 {
			t.Fatalf("table %s empty", tbl)
		}
		for i := range a[tbl] {
			if a[tbl][i].String() != b[tbl][i].String() {
				t.Fatalf("%s row %d differs", tbl, i)
			}
		}
	}
	c := Generate(0.001, 43)
	if c["orders"][0].String() == a["orders"][0].String() &&
		c["lineitem"][5].String() == a["lineitem"][5].String() {
		t.Error("different seeds should differ")
	}
}

func TestGenerateProportions(t *testing.T) {
	d := Generate(0.01, 1)
	if len(d["region"]) != 5 || len(d["nation"]) != 25 {
		t.Error("fixed tables")
	}
	nOrders, nCust := len(d["orders"]), len(d["customer"])
	if nOrders < 9*nCust || nOrders > 11*nCust {
		t.Errorf("orders:customer ratio = %d:%d, want ≈10:1", nOrders, nCust)
	}
	nLine := len(d["lineitem"])
	if nLine < 3*nOrders || nLine > 5*nOrders {
		t.Errorf("lineitem:orders ratio = %d:%d, want ≈4:1", nLine, nOrders)
	}
	if len(d["partsupp"]) != 4*len(d["part"]) {
		t.Error("partsupp = 4 × part")
	}
}

func TestGenerateSchemaConformance(t *testing.T) {
	d := Generate(0.001, 7)
	for _, tbl := range Tables() {
		rows := d[tbl.Name]
		if len(rows) == 0 {
			t.Fatalf("no rows for %s", tbl.Name)
		}
		for ri, row := range rows {
			if len(row) != len(tbl.Columns) {
				t.Fatalf("%s row %d: %d values, want %d", tbl.Name, ri, len(row), len(tbl.Columns))
			}
			for ci, v := range row {
				if v.IsNull() {
					continue
				}
				if v.Kind() != tbl.Columns[ci].Type {
					t.Fatalf("%s.%s: %v, want %v", tbl.Name, tbl.Columns[ci].Name, v.Kind(), tbl.Columns[ci].Type)
				}
			}
		}
	}
}

func TestForestPartsExist(t *testing.T) {
	d := Generate(0.005, 42)
	forest := 0
	for _, row := range d["part"] {
		name := row[1].Str()
		if len(name) >= 6 && name[:6] == "forest" {
			forest++
		}
	}
	if forest == 0 {
		t.Error("Q20 needs parts named 'forest%'")
	}
	if forest > len(d["part"])/10 {
		t.Errorf("'forest%%' should be selective: %d of %d", forest, len(d["part"]))
	}
}

func TestPlaceRows(t *testing.T) {
	d := Generate(0.002, 42)
	tables := Tables()
	var orders, nation *catalog.Table
	for _, tb := range tables {
		switch tb.Name {
		case "orders":
			orders = tb
		case "nation":
			nation = tb
		}
	}
	placed := PlaceRows(orders, d["orders"], 4)
	total := 0
	for _, p := range placed {
		total += len(p)
	}
	if total != len(d["orders"]) {
		t.Error("hash placement must partition exactly")
	}
	// Roughly uniform.
	for i, p := range placed {
		if len(p) < total/8 {
			t.Errorf("node %d underloaded: %d of %d", i, len(p), total)
		}
	}
	// Same key → same node.
	placed2 := PlaceRows(orders, d["orders"], 4)
	for i := range placed {
		if len(placed[i]) != len(placed2[i]) {
			t.Error("placement must be deterministic")
		}
	}
	repl := PlaceRows(nation, d["nation"], 4)
	for _, p := range repl {
		if len(p) != len(d["nation"]) {
			t.Error("replicated tables go everywhere")
		}
	}
}

func TestBuildShell(t *testing.T) {
	shell, data, err := BuildShell(0.002, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range Tables() {
		st := shell.Table(tbl.Name)
		if st == nil || st.Stats == nil {
			t.Fatalf("missing stats for %s", tbl.Name)
		}
		if int(st.Stats.RowCount) != len(data[tbl.Name]) {
			t.Errorf("%s global rowcount %v, want %d", tbl.Name, st.Stats.RowCount, len(data[tbl.Name]))
		}
	}
	// The hash column's merged NDV must be exact.
	ost := shell.Table("orders").Stats
	if int(ost.Column("o_orderkey").NDV) != len(data["orders"]) {
		t.Errorf("o_orderkey NDV = %v, want %d", ost.Column("o_orderkey").NDV, len(data["orders"]))
	}
}

func TestAllQueriesParseAndNormalize(t *testing.T) {
	shell, _, err := BuildShell(0.001, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries() {
		sel, err := sqlparser.ParseSelect(q.SQL)
		if err != nil {
			t.Errorf("%s: parse: %v", q.Name, err)
			continue
		}
		b := algebra.NewBinder(shell)
		tree, err := b.Bind(sel)
		if err != nil {
			t.Errorf("%s: bind: %v", q.Name, err)
			continue
		}
		norm, err := normalize.New(b).Normalize(tree)
		if err != nil {
			t.Errorf("%s: normalize: %v", q.Name, err)
			continue
		}
		algebra.VisitTree(norm, func(n *algebra.Tree) {
			for _, s := range algebra.OperatorScalars(n.Op) {
				if algebra.HasSubquery(s) {
					t.Errorf("%s: subquery survived normalization", q.Name)
				}
			}
		})
	}
}

func TestGetQuery(t *testing.T) {
	if _, ok := Get("q20"); !ok {
		t.Error("q20 must exist")
	}
	if _, ok := Get("q99"); ok {
		t.Error("q99 must not exist")
	}
	if len(Queries()) < 10 {
		t.Errorf("suite too small: %d", len(Queries()))
	}
}

func TestDatesInRange(t *testing.T) {
	d := Generate(0.001, 42)
	lo := types.MustParseDate("1992-01-01")
	hi := types.MustParseDate("1999-01-01")
	for _, row := range d["orders"] {
		od := row[4]
		if types.Compare(od, lo) < 0 || types.Compare(od, hi) > 0 {
			t.Fatalf("order date out of range: %v", od)
		}
	}
}

// Package engine simulates the PDW appliance (paper §2.1–§2.4): a control
// node plus N compute nodes, each owning a node-local database instance and
// a DMS endpoint. DSQL plans execute exactly as described in the paper —
// steps run serially; each step ships a SQL *string* to the participating
// nodes, whose local engines parse and execute it themselves, concurrently
// across nodes; DMS operations route the resulting rows into temp tables;
// the final step streams rows back to the client through the control node.
//
// Node-level work inside one step fans out over a bounded worker pool
// (Appliance.Parallelism; default GOMAXPROCS). Parallelism == 1 is the
// strictly serial reference path: the differential harness
// (internal/difftest) certifies that both paths produce byte-identical
// results for every query.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/exec"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/storage"
	"pdwqo/internal/trace"
	"pdwqo/internal/types"
	"pdwqo/internal/vec"
)

// Node is one appliance node: the control node or a compute node.
type Node struct {
	ID        int
	IsControl bool
	DB        *storage.DB
}

// StepMetric records one executed step for calibration and experiments.
type StepMetric struct {
	// StepID is the DSQL step that produced this measurement, so EXPLAIN
	// ANALYZE can line actuals up against the optimizer's estimates.
	StepID    int
	Move      cost.MoveKind
	IsMove    bool
	Rows      int64
	Bytes     int64
	HashedRow int64 // rows that went through hash routing
	// MaxNodeBytes is the largest per-destination-node byte share: under
	// the uniformity assumption it is ≈ Bytes/N for shuffles; skewed keys
	// push it toward Bytes (E13).
	MaxNodeBytes int64
	Duration     time.Duration
	// Attempts is how many executions the step took to succeed (1 = no
	// retries fired).
	Attempts int
	// LocalOps/LocalRows tally the node-local evaluation work behind the
	// step (operator nodes run and rows they produced, summed over the
	// source nodes). Collected only while tracing, zero otherwise.
	LocalOps  int64
	LocalRows int64
	// LocalBatches counts the column batches the vectorized executor
	// emitted for the step (zero under the row engine or untraced).
	LocalBatches int64
}

// Metrics accumulates execution measurements. The step slice is private:
// it is appended concurrently with reader access, so every consumer goes
// through the locked accessors (Snapshot, StepCount, TotalBytesMoved) —
// an unlocked read of the slice would race with execution.
type Metrics struct {
	mu    sync.Mutex
	steps []StepMetric
	// retries counts step attempts beyond the first; faults counts
	// injected faults that fired. Both live under mu — fault sites run
	// concurrently on the worker pool.
	retries int64
	faults  int64
}

func (m *Metrics) add(s StepMetric) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps = append(m.steps, s)
}

func (m *Metrics) addRetry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}

func (m *Metrics) addFault() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults++
}

// RetryCount returns how many step re-executions the retry layer issued.
func (m *Metrics) RetryCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries
}

// FaultCount returns how many injected faults fired on this appliance.
func (m *Metrics) FaultCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// TotalBytesMoved sums DMS bytes across steps.
func (m *Metrics) TotalBytesMoved() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.steps {
		if s.IsMove {
			n += s.Bytes
		}
	}
	return n
}

// StepCount returns the number of recorded steps under the lock; safe to
// call while queries execute concurrently.
func (m *Metrics) StepCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.steps)
}

// Snapshot returns a copy of the recorded steps. Callers observing metrics
// while the appliance executes (experiment harnesses, monitors, EXPLAIN
// ANALYZE) must use this: the slice is appended under the mutex, and an
// unlocked read races with execution.
func (m *Metrics) Snapshot() []StepMetric {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]StepMetric(nil), m.steps...)
}

// Export feeds the accumulated totals into a tracer counter registry (the
// observability layer's bridge from engine measurements to exported
// counters). Nil-safe on the registry side.
func (m *Metrics) Export(reg *trace.Registry) {
	reg.Set("exec.steps", int64(m.StepCount()))
	reg.Set("exec.bytes_moved", m.TotalBytesMoved())
	reg.Set("exec.retries", m.RetryCount())
	reg.Set("exec.faults", m.FaultCount())
}

// Appliance is the simulated PDW box.
type Appliance struct {
	Shell   *catalog.Shell
	Control *Node
	Compute []*Node
	Metrics Metrics

	// Parallelism bounds the worker pool that fans node-local work out
	// within one step: 0 means GOMAXPROCS, 1 means strictly serial, n > 1
	// caps concurrent node tasks at n. Steps themselves always run
	// serially (paper §2.4).
	Parallelism int
	// NodeLatency simulates the control→compute dispatch round trip paid
	// once per node per step (network hop + remote statement setup). The
	// default 0 keeps tests exact; experiments set it to make node-overlap
	// speedups observable regardless of host core count.
	NodeLatency time.Duration

	// MaxRetries is how many times a failed idempotent step is re-executed
	// after its partial temp table is cleaned up. 0 disables retries.
	// Non-idempotent steps (Return) and deterministic failures (exec
	// errors) never retry regardless.
	MaxRetries int
	// StepTimeout bounds each step attempt; the attempt's context is
	// cancelled at the deadline and the failure classifies as
	// ErrKindTimeout (retryable). 0 disables the bound.
	StepTimeout time.Duration
	// RetryBackoff is the delay before the first retry; it doubles per
	// subsequent retry, capped at maxRetryBackoff. 0 means defaultBackoff.
	RetryBackoff time.Duration
	// Faults is the active fault-injection plan; nil injects nothing.
	Faults *FaultPlan

	// RowExec selects the row-at-a-time executor for node-local step
	// evaluation instead of the default vectorized engine. Both engines
	// honor the same DSQL step contract and produce byte-identical
	// relations (certified by internal/difftest); the row engine remains
	// as the ablation arm and differential reference.
	RowExec bool

	// Tracer records per-step execution spans (payload: the step's
	// StepMetric) and feeds the exec.* counters. Nil disables tracing at
	// zero cost on the execution path.
	Tracer *trace.Tracer

	// sleep waits between retry attempts; tests swap in a fake clock so
	// backoff arithmetic is assertable without real time passing.
	sleep func(ctx context.Context, d time.Duration) error

	// execSeq numbers executions; each run rewrites its plan's temp-table
	// names with the ID (dsql.Plan.Isolate) so concurrent executions on
	// one appliance never collide on the nodes' local storage.
	execSeq atomic.Uint64
}

// Backoff bounds: the first retry waits RetryBackoff (or defaultBackoff),
// doubling per retry up to maxRetryBackoff.
const (
	defaultBackoff  = time.Millisecond
	maxRetryBackoff = 250 * time.Millisecond
)

// backoffDelay is the capped exponential wait before retry `attempt`
// (attempt 1 = first retry): base·2^(attempt−1), clamped to max.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = defaultBackoff
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

func (a *Appliance) sleepFn(ctx context.Context, d time.Duration) error {
	if a.sleep != nil {
		return a.sleep(ctx, d)
	}
	return sleepCtx(ctx, d)
}

// New builds an appliance for the shell's topology with empty storage.
func New(shell *catalog.Shell) *Appliance {
	a := &Appliance{
		Shell:   shell,
		Control: &Node{ID: -1, IsControl: true, DB: storage.NewDB()},
	}
	for i := 0; i < shell.Topology.ComputeNodes; i++ {
		a.Compute = append(a.Compute, &Node{ID: i, DB: storage.NewDB()})
	}
	return a
}

// LoadTable places a table's rows per its declared distribution:
// replicated tables land on every compute node, hash tables are routed by
// the distribution column. Per-node loads run on the appliance's worker
// pool.
func (a *Appliance) LoadTable(name string, rows []types.Row) error {
	tbl := a.Shell.Table(name)
	if tbl == nil {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	ctx := context.Background()
	// Loads run outside any DSQL step; fault rules address them with
	// op=load (step/move wildcards only).
	if err := parallelFor(ctx, len(a.Compute), a.workers(len(a.Compute)), func(ctx context.Context, i int) error {
		if _, serr := a.injectFault(ctx, OpLoad, loadStepID, a.Compute[i].ID, Any); serr != nil {
			return serr
		}
		return a.Compute[i].DB.Create(tbl.Name, tbl.Columns)
	}); err != nil {
		return err
	}
	if tbl.Dist.Kind == catalog.DistReplicated {
		return parallelFor(ctx, len(a.Compute), a.workers(len(a.Compute)), func(ctx context.Context, i int) error {
			if _, serr := a.injectFault(ctx, OpLoad, loadStepID, a.Compute[i].ID, Any); serr != nil {
				return serr
			}
			return a.Compute[i].DB.BulkInsert(tbl.Name, rows)
		})
	}
	ci := tbl.ColumnIndex(tbl.Dist.Column)
	buckets := make([][]types.Row, len(a.Compute))
	for _, r := range rows {
		n := int(types.Hash(r[ci]) % uint64(len(a.Compute)))
		buckets[n] = append(buckets[n], r)
	}
	return parallelFor(ctx, len(a.Compute), a.workers(len(a.Compute)), func(ctx context.Context, i int) error {
		if _, serr := a.injectFault(ctx, OpLoad, loadStepID, a.Compute[i].ID, Any); serr != nil {
			return serr
		}
		return a.Compute[i].DB.BulkInsert(tbl.Name, buckets[i])
	})
}

// loadStepID is the pseudo step ID table loads report in StepErrors;
// only step-wildcard fault rules match it.
const loadStepID = -1

// Result is the client-visible query result.
type Result struct {
	Cols []algebra.ColumnMeta
	Rows []types.Row
}

// Execute runs a DSQL plan step by step (paper §2.4: "query plans are
// executed serially, one step at a time", each step parallel across
// nodes — the per-node fan-out is what Parallelism bounds).
func (a *Appliance) Execute(p *dsql.Plan) (*Result, error) {
	return a.ExecuteContext(context.Background(), p)
}

// ExecuteContext is Execute with caller-controlled cancellation: a failing
// node cancels the step's remaining node tasks, and an external cancel
// stops between-node work as soon as the running tasks notice.
//
// Executions are isolated from each other and may run concurrently on one
// appliance: each run works against a private copy of the plan whose temp
// tables carry a unique per-execution suffix, so a long-lived server can
// dispatch many sessions' plans at once.
func (a *Appliance) ExecuteContext(ctx context.Context, p *dsql.Plan) (*Result, error) {
	p = p.Isolate(a.execSeq.Add(1))
	// Session catalog: shell tables plus temp tables registered as steps
	// create them.
	session := catalog.NewShell(a.Shell.Topology.ComputeNodes)
	for _, t := range a.Shell.Tables() {
		if err := session.AddTable(t); err != nil {
			return nil, err
		}
	}
	var tempNames []string
	defer func() {
		for _, name := range tempNames {
			a.dropEverywhere(name)
		}
	}()

	esp := a.Tracer.Begin("execute")
	esp.Int("steps", int64(len(p.Steps)))
	defer esp.End()
	for _, step := range p.Steps {
		res, err := a.runStep(ctx, esp.ID(), step, p, session, &tempNames)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
	}
	return nil, errors.New("engine: plan has no return step")
}

// runStep executes one DSQL step under the retry policy: idempotent
// steps get up to 1+MaxRetries attempts at transient failures (injected
// faults, corrupt deliveries, timeouts), with capped exponential backoff
// between attempts and the partial temp table dropped before each rerun.
// Deterministic failures, non-idempotent steps and exhausted budgets
// surface a *StepError. A non-nil Result means the plan is done.
//
// On success the step's metric — stamped with the step ID and attempt
// count — is recorded in Metrics and, when tracing, attached to the
// step's span as its payload.
func (a *Appliance) runStep(ctx context.Context, parent trace.SpanID, step dsql.Step, p *dsql.Plan, session *catalog.Shell, tempNames *[]string) (*Result, error) {
	sp := a.Tracer.BeginUnder(parent, "step")
	defer sp.End()
	// Compilation is deterministic — the same SQL fails the same way — so
	// it runs once, outside the retry loop.
	tree, err := a.compile(step.SQL, session)
	if err != nil {
		serr := stepError(step.ID, NoNode, ErrKindExec, err)
		sp.SetErr(serr)
		return nil, serr
	}
	maxAttempts := 1
	if step.Idempotent && a.MaxRetries > 0 {
		maxAttempts += a.MaxRetries
	}
	var last *StepError
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			a.Metrics.addRetry()
			if err := a.sleepFn(ctx, backoffDelay(a.RetryBackoff, maxRetryBackoff, attempt)); err != nil {
				break
			}
		}
		res, sm, serr := a.attemptStep(ctx, step, tree, p, session, tempNames)
		if serr == nil {
			sm.StepID = step.ID
			sm.Attempts = attempt + 1
			a.Metrics.add(sm)
			a.recordStepTrace(sp, sm)
			return res, nil
		}
		serr.Attempt = attempt
		last = serr
		if step.Kind == dsql.StepMove {
			// A failed move may have staged or published partial rows on
			// any subset of nodes; drop both names everywhere so the next
			// attempt (or the caller) sees a clean appliance.
			a.dropEverywhere(step.Dest)
			a.dropEverywhere(stagingName(step.Dest))
		}
		if !serr.Retryable() {
			break
		}
	}
	if last != nil {
		sp.SetErr(last)
	}
	return nil, last
}

// recordStepTrace attaches the completed step's measurements to its span
// and bumps the exec.* counters. Guarded so the disabled-tracer execution
// path does no conversion work at all.
func (a *Appliance) recordStepTrace(sp trace.Active, sm StepMetric) {
	if a.Tracer == nil {
		return
	}
	sp.SetStep(trace.StepStats{
		Step:         sm.StepID,
		Move:         sm.Move.String(),
		IsMove:       sm.IsMove,
		Rows:         sm.Rows,
		Bytes:        sm.Bytes,
		HashedRows:   sm.HashedRow,
		MaxNodeBytes: sm.MaxNodeBytes,
		Attempts:     sm.Attempts,
		Duration:     sm.Duration,
		LocalOps:     sm.LocalOps,
		LocalRows:    sm.LocalRows,
		LocalBatches: sm.LocalBatches,
	})
	c := a.Tracer.Counters()
	c.Add("exec.steps", 1)
	c.Add("exec.retries", int64(sm.Attempts-1))
	c.Add("exec.local_ops", sm.LocalOps)
	c.Add("exec.local_rows", sm.LocalRows)
	c.Add("exec.local_batches", sm.LocalBatches)
	if sm.IsMove {
		c.Add("exec.bytes_moved", sm.Bytes)
		c.Add("exec.rows_moved", sm.Rows)
	}
}

// attemptStep runs one attempt of a step under the per-attempt timeout
// and classifies any failure. On success it returns the step's metric
// (without StepID/Attempts, which the retry loop stamps).
func (a *Appliance) attemptStep(ctx context.Context, step dsql.Step, tree *algebra.Tree, p *dsql.Plan, session *catalog.Shell, tempNames *[]string) (*Result, StepMetric, *StepError) {
	actx := ctx
	if a.StepTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, a.StepTimeout)
		defer cancel()
	}
	start := time.Now()
	var res *Result
	var sm StepMetric
	var err error
	switch step.Kind {
	case dsql.StepMove:
		sm, err = a.executeMove(actx, step, tree, session, tempNames, start)
	case dsql.StepReturn:
		res, sm, err = a.executeReturn(actx, step, tree, p, start)
	default:
		err = fmt.Errorf("unknown step kind %d", step.Kind)
	}
	if err == nil {
		return res, sm, nil
	}
	return nil, StepMetric{}, classify(step.ID, actx, ctx, err)
}

// classify turns an attempt's failure into a *StepError, distinguishing
// the attempt deadline (timeout, retryable) from caller cancellation
// (not retryable) and deterministic execution errors.
func classify(stepID int, attemptCtx, parentCtx context.Context, err error) *StepError {
	timedOut := errors.Is(attemptCtx.Err(), context.DeadlineExceeded) && parentCtx.Err() == nil
	var se *StepError
	if errors.As(err, &se) {
		if timedOut && se.Kind == ErrKindCancelled {
			// A fault-site sleep interrupted by the attempt deadline is a
			// step timeout, not a caller cancel.
			se.Kind = ErrKindTimeout
		}
		return se
	}
	switch {
	case timedOut:
		return stepError(stepID, NoNode, ErrKindTimeout, err)
	case parentCtx.Err() != nil:
		return stepError(stepID, NoNode, ErrKindCancelled, err)
	default:
		return stepError(stepID, NoNode, ErrKindExec, err)
	}
}

// dropEverywhere removes a temp table from the control node and every
// compute node.
func (a *Appliance) dropEverywhere(name string) {
	a.Control.DB.Drop(name)
	for _, n := range a.Compute {
		n.DB.Drop(name)
	}
}

// stagingName is where a DMS delivery accumulates rows before the
// publishing rename; it shares the destination's temp-table lifecycle.
func stagingName(dest string) string { return dest + "__stage" }

// compile parses, binds and normalizes a DSQL step's SQL text — the role
// of each node's local SQL instance compilation.
func (a *Appliance) compile(sql string, session *catalog.Shell) (*algebra.Tree, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	b := algebra.NewBinder(session)
	tree, err := b.Bind(sel)
	if err != nil {
		return nil, err
	}
	return normalize.New(b).Normalize(tree)
}

// sourceNodes picks the nodes that run a step's SQL.
func (a *Appliance) sourceNodes(step dsql.Step) []*Node {
	switch {
	case step.Kind == dsql.StepMove && step.MoveKind == cost.ControlNodeMove:
		return []*Node{a.Control}
	case step.Kind == dsql.StepMove &&
		(step.MoveKind == cost.ReplicatedBroadcast || step.MoveKind == cost.RemoteCopySingle):
		// A replicated (or single-compute-node) source is read once.
		if step.Where == core.DistSingle {
			return []*Node{a.Control}
		}
		return []*Node{a.Compute[0]}
	case step.Where == core.DistSingle:
		return []*Node{a.Control}
	case step.Where == core.DistReplicated && step.Kind == dsql.StepReturn:
		return []*Node{a.Compute[0]}
	case step.Where == core.DistReplicated && step.Kind == dsql.StepMove && step.MoveKind != cost.Trim:
		return []*Node{a.Compute[0]}
	default:
		return a.Compute
	}
}

// runOnNodes executes the compiled tree on each node, fanned out over the
// appliance's worker pool. Results keep node order; the first failing
// node's error cancels the remaining tasks. stepID and move address the
// per-node fault-injection site (move is Any for non-move steps).
func (a *Appliance) runOnNodes(ctx context.Context, stepID, move int, tree *algebra.Tree, nodes []*Node) ([]*exec.Relation, exec.Stats, error) {
	// The step tree is shared by every node's executor, and Tree.OutputCols
	// memoizes lazily; derive the full schema cache here, before the
	// fan-out, so the workers only ever read it.
	tree.OutputCols()
	rels := make([]*exec.Relation, len(nodes))
	// Per-node stat slots (merged after the barrier) exist only while
	// tracing, so the untraced path allocates nothing extra.
	var stats []exec.Stats
	if a.Tracer != nil {
		stats = make([]exec.Stats, len(nodes))
	}
	err := parallelFor(ctx, len(nodes), a.workers(len(nodes)), func(ctx context.Context, i int) error {
		simulateLatency(ctx, a.NodeLatency)
		n := nodes[i]
		if _, serr := a.injectFault(ctx, OpQuery, stepID, n.ID, move); serr != nil {
			return serr
		}
		src := func(name string) ([]types.Row, []string, error) {
			t := n.DB.Table(name)
			if t == nil {
				return nil, nil, fmt.Errorf("node %d: no table %q", n.ID, name)
			}
			names := make([]string, len(t.Cols))
			for j, c := range t.Cols {
				names[j] = c.Name
			}
			return t.Rows, names, nil
		}
		var st *exec.Stats
		if stats != nil {
			st = &stats[i]
		}
		var rel *exec.Relation
		var err error
		if a.RowExec {
			rel, err = exec.RunStats(tree, src, st)
		} else {
			csrc := func(name string) (*vec.Table, error) {
				t, err := n.DB.ScanColumns(name)
				if err != nil {
					return nil, fmt.Errorf("node %d: no table %q", n.ID, name)
				}
				return t, nil
			}
			rel, err = exec.RunVecStats(tree, csrc, st)
		}
		if err != nil {
			// Node-local evaluation failures are deterministic: attribute
			// the node but classify as exec (not retryable).
			return stepError(stepID, n.ID, ErrKindExec, err)
		}
		rels[i] = rel
		return nil
	})
	var total exec.Stats
	for _, s := range stats {
		total.Merge(s)
	}
	if err != nil {
		return nil, total, err
	}
	return rels, total, nil
}

// batch is one destination node's routed rows plus its tallied share.
type batch struct {
	node *Node
	rows []types.Row
}

// corruptRows models a DMS payload garbled in transit: the staged copy
// duplicates every row, so any row-count or checksum verification fails.
// The garbage only ever exists in a staging table.
func corruptRows(rows []types.Row) []types.Row {
	out := make([]types.Row, 0, 2*len(rows))
	out = append(out, rows...)
	out = append(out, rows...)
	return out
}

// executeMove runs the step SQL on the source nodes and routes rows per
// the DMS operation into the destination temp table. Routing is computed
// per source relation and inserted per destination node, both on the
// worker pool; the merged row order is independent of scheduling (source
// order within each destination), so parallel and serial execution
// materialize byte-identical temp tables.
//
// Delivery is transactional: rows accumulate in a per-node staging table
// that is renamed to the destination only after every batch lands, so a
// mid-shuffle failure never leaves a half-populated destination visible
// to later steps — the retry path drops the staging leftovers and reruns.
func (a *Appliance) executeMove(ctx context.Context, step dsql.Step, tree *algebra.Tree, session *catalog.Shell, tempNames *[]string, start time.Time) (StepMetric, error) {
	sources := a.sourceNodes(step)
	rels, local, err := a.runOnNodes(ctx, step.ID, int(step.MoveKind), tree, sources)
	if err != nil {
		return StepMetric{}, err
	}
	// Destination setup: create the staging table on each receiving node.
	staging := stagingName(step.Dest)
	destNodes, destDist := a.destFor(step)
	if err := parallelFor(ctx, len(destNodes), a.workers(len(destNodes)), func(ctx context.Context, i int) error {
		if _, serr := a.injectFault(ctx, OpCreate, step.ID, destNodes[i].ID, int(step.MoveKind)); serr != nil {
			return serr
		}
		return destNodes[i].DB.Create(staging, step.DestCols)
	}); err != nil {
		return StepMetric{}, err
	}

	hashPos := -1
	if step.HashCol != "" {
		for i, c := range step.DestCols {
			if c.Name == step.HashCol {
				hashPos = i
			}
		}
		if hashPos < 0 {
			return StepMetric{}, stepError(step.ID, NoNode, ErrKindExec,
				fmt.Errorf("hash column %q missing from destination", step.HashCol))
		}
	}

	var batches []batch
	var hashed int64

	switch step.MoveKind {
	case cost.Shuffle:
		// Hash-route each source relation on the worker pool, then merge
		// per destination in source order (deterministic under any
		// schedule).
		perSrc := make([][][]types.Row, len(rels))
		perSrcHashed := make([]int64, len(rels))
		if err := parallelFor(ctx, len(rels), a.workers(len(rels)), func(_ context.Context, si int) error {
			buckets := make([][]types.Row, len(a.Compute))
			for _, r := range rels[si].Rows {
				perSrcHashed[si]++
				n := 0
				if !r[hashPos].IsNull() {
					n = int(types.Hash(r[hashPos]) % uint64(len(a.Compute)))
				}
				buckets[n] = append(buckets[n], r)
			}
			perSrc[si] = buckets
			return nil
		}); err != nil {
			return StepMetric{}, err
		}
		for _, h := range perSrcHashed {
			hashed += h
		}
		for ni, n := range a.Compute {
			var rows []types.Row
			for si := range perSrc {
				rows = append(rows, perSrc[si][ni]...)
			}
			batches = append(batches, batch{node: n, rows: rows})
		}

	case cost.Trim:
		// Node-local: each node keeps only rows it is responsible for.
		if len(sources) != len(a.Compute) {
			return StepMetric{}, stepError(step.ID, NoNode, ErrKindExec,
				errors.New("trim requires all compute nodes as sources"))
		}
		keeps := make([][]types.Row, len(rels))
		perSrcHashed := make([]int64, len(rels))
		if err := parallelFor(ctx, len(rels), a.workers(len(rels)), func(_ context.Context, si int) error {
			var keep []types.Row
			for _, r := range rels[si].Rows {
				perSrcHashed[si]++
				n := 0
				if !r[hashPos].IsNull() {
					n = int(types.Hash(r[hashPos]) % uint64(len(a.Compute)))
				}
				if n == si {
					keep = append(keep, r)
				}
			}
			keeps[si] = keep
			return nil
		}); err != nil {
			return StepMetric{}, err
		}
		for _, h := range perSrcHashed {
			hashed += h
		}
		for si, n := range a.Compute {
			batches = append(batches, batch{node: n, rows: keeps[si]})
		}

	case cost.Broadcast, cost.ControlNodeMove, cost.ReplicatedBroadcast:
		var all []types.Row
		for _, rel := range rels {
			all = append(all, rel.Rows...)
		}
		for _, n := range a.Compute {
			batches = append(batches, batch{node: n, rows: all})
		}

	case cost.PartitionMove, cost.RemoteCopySingle:
		var all []types.Row
		for _, rel := range rels {
			all = append(all, rel.Rows...)
		}
		batches = append(batches, batch{node: a.Control, rows: all})

	default:
		return StepMetric{}, stepError(step.ID, NoNode, ErrKindExec,
			fmt.Errorf("unsupported move kind %v", step.MoveKind))
	}

	// Deliver every batch into staging on the worker pool, tallying per
	// destination so the step metric aggregates race-free and
	// deterministically.
	type tally struct{ rows, bytes int64 }
	tallies := make([]tally, len(batches))
	if err := parallelFor(ctx, len(batches), a.workers(len(batches)), func(ctx context.Context, i int) error {
		simulateLatency(ctx, a.NodeLatency)
		if f, serr := a.injectFault(ctx, OpDeliver, step.ID, batches[i].node.ID, int(step.MoveKind)); serr != nil {
			if f.Kind == FaultCorrupt {
				// Model a payload garbled in transit and caught by
				// verification: the garbage lands in staging, which is
				// never published and is dropped on the retry path.
				_ = batches[i].node.DB.BulkInsert(staging, corruptRows(batches[i].rows))
			}
			return serr
		}
		var b int64
		for _, r := range batches[i].rows {
			b += int64(r.Width())
		}
		tallies[i] = tally{rows: int64(len(batches[i].rows)), bytes: b}
		return batches[i].node.DB.BulkInsert(staging, batches[i].rows)
	}); err != nil {
		return StepMetric{}, err
	}
	var rows, bytes, maxNode int64
	for _, t := range tallies {
		rows += t.rows
		bytes += t.bytes
		if t.bytes > maxNode {
			maxNode = t.bytes
		}
	}

	// Publish: every batch landed, so rename staging to the destination
	// and only then register the temp table for later steps and cleanup.
	if err := parallelFor(ctx, len(destNodes), a.workers(len(destNodes)), func(_ context.Context, i int) error {
		return destNodes[i].DB.Rename(staging, step.Dest)
	}); err != nil {
		return StepMetric{}, err
	}
	*tempNames = append(*tempNames, step.Dest)
	if err := session.AddTable(&catalog.Table{
		Name:    step.Dest,
		Columns: step.DestCols,
		Dist:    destDist,
	}); err != nil {
		return StepMetric{}, err
	}

	return StepMetric{
		Move: step.MoveKind, IsMove: true,
		Rows: rows, Bytes: bytes, HashedRow: hashed,
		MaxNodeBytes: maxNode,
		Duration:     time.Since(start),
		LocalOps:     local.Ops, LocalRows: local.Rows,
		LocalBatches: local.Batches,
	}, nil
}

// destFor returns the nodes receiving a move's rows and the temp table's
// catalog placement.
func (a *Appliance) destFor(step dsql.Step) ([]*Node, catalog.Distribution) {
	switch step.MoveKind {
	case cost.Shuffle, cost.Trim:
		return a.Compute, catalog.Distribution{Kind: catalog.DistHash, Column: step.HashCol}
	case cost.Broadcast, cost.ControlNodeMove, cost.ReplicatedBroadcast:
		return a.Compute, catalog.Distribution{Kind: catalog.DistReplicated}
	default: // PartitionMove, RemoteCopySingle
		return append([]*Node{}, a.Control), catalog.Distribution{Kind: catalog.DistReplicated}
	}
}

// executeReturn runs the final SQL and assembles the client result,
// merging per-node streams in node order, then applying the plan's order
// spec and TOP — so the merged relation is identical under any worker
// schedule.
func (a *Appliance) executeReturn(ctx context.Context, step dsql.Step, tree *algebra.Tree, p *dsql.Plan, start time.Time) (*Result, StepMetric, error) {
	sources := a.sourceNodes(step)
	rels, local, err := a.runOnNodes(ctx, step.ID, Any, tree, sources)
	if err != nil {
		return nil, StepMetric{}, err
	}
	out := &Result{Cols: p.OutCols}
	var bytes int64
	for _, rel := range rels {
		for _, r := range rel.Rows {
			bytes += int64(r.Width())
		}
		out.Rows = append(out.Rows, rel.Rows...)
	}
	if len(p.OrderBy) > 0 {
		keys := make([]exec.MergeKey, len(p.OrderBy))
		for i, k := range p.OrderBy {
			keys[i] = exec.MergeKey{Pos: k.Pos, Desc: k.Desc}
		}
		// The final merge runs the exact comparator the node-local sorts
		// ran, so NULL placement cannot diverge between a node's ORDER BY
		// and the control node's re-merge. Merge keys can mix kinds when
		// a CASE column mixes branch types; the checked sort turns that
		// into a step error instead of a panic mid-sort.
		if err := exec.SortRows(out.Rows, keys); err != nil {
			return nil, StepMetric{}, stepError(step.ID, NoNode, ErrKindExec, err)
		}
	}
	if p.Top > 0 && int64(len(out.Rows)) > p.Top {
		out.Rows = out.Rows[:p.Top]
	}
	return out, StepMetric{
		Rows: int64(len(out.Rows)), Bytes: bytes,
		Duration:     time.Since(start),
		LocalOps:     local.Ops,
		LocalRows:    local.Rows,
		LocalBatches: local.Batches,
	}, nil
}

package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
	"pdwqo/internal/vec"
)

// benchData builds an N-row two-float-column table served both ways.
func benchData(n int) (TableSource, ColSource, []algebra.ColumnMeta) {
	r := rand.New(rand.NewSource(7))
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.NewFloat(r.Float64() * 50),
			types.NewFloat(r.Float64() * 0.1),
			types.NewInt(int64(r.Intn(n / 4))),
		}
	}
	names := []string{"a", "b", "k"}
	cols := []algebra.ColumnMeta{
		{ID: 1, Name: "a", Type: types.KindFloat},
		{ID: 2, Name: "b", Type: types.KindFloat},
		{ID: 3, Name: "k", Type: types.KindInt},
	}
	rowSrc := func(string) ([]types.Row, []string, error) { return rows, names, nil }
	mirror := vec.FromRows(names, rows)
	colSrc := func(string) (*vec.Table, error) { return mirror, nil }
	return rowSrc, colSrc, cols
}

func benchTable(cols []algebra.ColumnMeta) *catalog.Table {
	cat := make([]catalog.Column, len(cols))
	for i, c := range cols {
		cat[i] = catalog.Column{Name: c.Name, Type: c.Type}
	}
	return &catalog.Table{Name: "t", Columns: cat, Dist: catalog.Distribution{Kind: catalog.DistReplicated}}
}

func benchFilterTree(cols []algebra.ColumnMeta) *algebra.Tree {
	get := algebra.NewTree(&algebra.Get{Table: benchTable(cols), Alias: "t", Cols: cols})
	pred := &algebra.Binary{Op: sqlparser.OpAnd,
		L: &algebra.Binary{Op: sqlparser.OpLt, L: algebra.NewColRef(cols[0]), R: &algebra.Const{Val: types.NewFloat(25)}},
		R: &algebra.Binary{Op: sqlparser.OpGt, L: algebra.NewColRef(cols[1]), R: &algebra.Const{Val: types.NewFloat(0.02)}},
	}
	return algebra.NewTree(&algebra.Select{Filter: pred}, get)
}

// benchJoinData mirrors e20's hashjoin shape: a 15k-row build table with
// unique int keys probed by a 60k-row fact table (4 matches per key).
func benchJoinData() (TableSource, ColSource, *algebra.Tree) {
	r := rand.New(rand.NewSource(11))
	nb, np := 15000, 60000
	build := make([]types.Row, nb)
	for i := range build {
		build[i] = types.Row{types.NewInt(int64(i)), types.NewFloat(r.Float64() * 100)}
	}
	probe := make([]types.Row, np)
	for i := range probe {
		probe[i] = types.Row{types.NewInt(int64(r.Intn(nb))), types.NewFloat(r.Float64())}
	}
	bCols := []algebra.ColumnMeta{
		{ID: 1, Name: "k", Type: types.KindInt},
		{ID: 2, Name: "v", Type: types.KindFloat},
	}
	pCols := []algebra.ColumnMeta{
		{ID: 3, Name: "fk", Type: types.KindInt},
		{ID: 4, Name: "x", Type: types.KindFloat},
	}
	bTab := &catalog.Table{Name: "b", Columns: []catalog.Column{{Name: "k", Type: types.KindInt}, {Name: "v", Type: types.KindFloat}}}
	pTab := &catalog.Table{Name: "p", Columns: []catalog.Column{{Name: "fk", Type: types.KindInt}, {Name: "x", Type: types.KindFloat}}}
	tree := algebra.NewTree(
		&algebra.Join{Kind: algebra.JoinInner, On: &algebra.Binary{Op: sqlparser.OpEq,
			L: algebra.NewColRef(bCols[0]), R: algebra.NewColRef(pCols[0])}},
		algebra.NewTree(&algebra.Get{Table: bTab, Alias: "b", Cols: bCols}),
		algebra.NewTree(&algebra.Get{Table: pTab, Alias: "p", Cols: pCols}),
	)
	rows := map[string][]types.Row{"b": build, "p": probe}
	names := map[string][]string{"b": {"k", "v"}, "p": {"fk", "x"}}
	rowSrc := func(t string) ([]types.Row, []string, error) { return rows[t], names[t], nil }
	mirrors := map[string]*vec.Table{
		"b": vec.FromRows(names["b"], build),
		"p": vec.FromRows(names["p"], probe),
	}
	colSrc := func(t string) (*vec.Table, error) { return mirrors[t], nil }
	return rowSrc, colSrc, tree
}

func BenchmarkJoinRow(b *testing.B) {
	rowSrc, _, tree := benchJoinData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tree, rowSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinVec(b *testing.B) {
	_, colSrc, tree := benchJoinData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunVec(tree, colSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAggTree mirrors e20's agg shape: two low-cardinality string keys,
// two float SUMs and a COUNT(*) over the k column's table.
func benchAggData() (TableSource, ColSource, *algebra.Tree) {
	r := rand.New(rand.NewSource(13))
	flags := []string{"A", "N", "R"}
	stats := []string{"F", "O"}
	n := 60000
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.NewString(flags[r.Intn(len(flags))]),
			types.NewString(stats[r.Intn(len(stats))]),
			types.NewFloat(r.Float64() * 50),
			types.NewFloat(r.Float64() * 1e5),
		}
	}
	names := []string{"f", "s", "q", "p"}
	cols := []algebra.ColumnMeta{
		{ID: 1, Name: "f", Type: types.KindString},
		{ID: 2, Name: "s", Type: types.KindString},
		{ID: 3, Name: "q", Type: types.KindFloat},
		{ID: 4, Name: "p", Type: types.KindFloat},
	}
	tab := benchTable(cols)
	tree := algebra.NewTree(&algebra.GroupBy{
		Keys: []algebra.ColumnID{1, 2},
		Aggs: []algebra.AggDef{
			{Func: algebra.AggSum, Arg: algebra.NewColRef(cols[2]), ID: 21, Name: "sq"},
			{Func: algebra.AggSum, Arg: algebra.NewColRef(cols[3]), ID: 22, Name: "sp"},
			{Func: algebra.AggCount, ID: 23, Name: "n"},
		},
		Phase: algebra.AggComplete,
	}, algebra.NewTree(&algebra.Get{Table: tab, Alias: "t", Cols: cols}))
	rowSrc := func(string) ([]types.Row, []string, error) { return rows, names, nil }
	mirror := vec.FromRows(names, rows)
	colSrc := func(string) (*vec.Table, error) { return mirror, nil }
	return rowSrc, colSrc, tree
}

func BenchmarkAggRow(b *testing.B) {
	rowSrc, _, tree := benchAggData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tree, rowSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggVec(b *testing.B) {
	_, colSrc, tree := benchAggData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunVec(tree, colSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterRow(b *testing.B) {
	rowSrc, _, cols := benchData(60000)
	tree := benchFilterTree(cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tree, rowSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterVec(b *testing.B) {
	_, colSrc, cols := benchData(60000)
	tree := benchFilterTree(cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunVec(tree, colSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func init() { _ = fmt.Sprint }

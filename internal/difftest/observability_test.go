package difftest

import (
	"strings"
	"testing"

	"pdwqo"
)

// TestAnalyzeReconcilesWithMetrics is the observability property test:
// for every TPC-H query, the actuals that EXPLAIN ANALYZE reports must
// reconcile exactly with the appliance's Metrics and with the tracer's
// step spans — the three views are projections of the same execution.
//
// Invariants checked per query:
//   - tracer step-span count == Metrics.StepCount() delta
//   - sum of move-step span bytes == Metrics.TotalBytesMoved() delta
//   - the ANALYZE report renders and mentions every executed step
func TestAnalyzeReconcilesWithMetrics(t *testing.T) {
	db, err := pdwqo.OpenTPCH(0.001, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range TPCHCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			checkAnalyzeReconciles(t, db, c, nil, 0)
		})
	}
}

// TestAnalyzeReconcilesUnderChaos re-runs the reconciliation property
// with a seeded random fault plan and retries enabled: retried attempts
// must not double-count rows or bytes in any of the three views.
func TestAnalyzeReconcilesUnderChaos(t *testing.T) {
	db, err := pdwqo.OpenTPCH(0.001, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	db.SetResilience(3, 0)
	defer db.SetResilience(0, 0)
	cases := TPCHCases()
	if testing.Short() || raceEnabled {
		cases = cases[:6]
	}
	for i, c := range cases {
		c, seed := c, int64(1000+i)
		t.Run(c.Name, func(t *testing.T) {
			checkAnalyzeReconciles(t, db, c, db, seed)
		})
	}
}

// checkAnalyzeReconciles runs one case through EXPLAIN ANALYZE with a
// fresh tracer and asserts the metric/span/report reconciliation. When
// faultDB is non-nil a random fault plan seeded by faultSeed is armed
// against it for the duration of the run.
func checkAnalyzeReconciles(t *testing.T, db *pdwqo.DB, c Case, faultDB *pdwqo.DB, faultSeed int64) {
	t.Helper()
	tracer := pdwqo.NewTracer()
	db.SetTracer(tracer)
	defer db.SetTracer(nil)

	plan, err := db.Optimize(c.SQL, pdwqo.Options{Parallelism: 4, Tracer: tracer})
	if err != nil {
		t.Fatalf("%s: optimize: %v", c.Name, err)
	}
	if faultDB != nil {
		faultDB.SetFaultPlan(pdwqo.RandomFaultPlan(faultSeed, len(plan.DSQL.Steps), 4))
		defer faultDB.SetFaultPlan(nil)
	}

	m := &db.Appliance().Metrics
	stepsBefore := m.StepCount()
	bytesBefore := m.TotalBytesMoved()

	_, report, execErr := db.ExplainAnalyze(plan, false)
	if execErr != nil {
		// Chaos plans may exhaust retries; the invariants below must
		// still hold over whatever prefix of the plan completed.
		t.Logf("%s: execution failed (reconciling partial run): %v", c.Name, execErr)
	}

	stepsRun := m.StepCount() - stepsBefore
	bytesMoved := m.TotalBytesMoved() - bytesBefore

	// Tracer view: one "step" span per completed step, byte-for-byte the
	// same totals the Metrics accumulated.
	spans := tracer.StepSpans()
	if len(spans) != stepsRun {
		t.Errorf("%s: tracer recorded %d step spans, Metrics recorded %d steps",
			c.Name, len(spans), stepsRun)
	}
	var spanBytes int64
	for _, sp := range spans {
		if sp.Step.IsMove {
			spanBytes += sp.Step.Bytes
		}
	}
	if spanBytes != bytesMoved {
		t.Errorf("%s: move bytes diverge: spans=%d metrics=%d", c.Name, spanBytes, bytesMoved)
	}

	// Counter view: the per-step exec.* counters the engine maintains
	// during execution must agree too.
	counters := tracer.Counters().Snapshot()
	if got := counters["exec.steps"]; got != int64(stepsRun) {
		t.Errorf("%s: exec.steps counter %d != %d steps", c.Name, got, stepsRun)
	}
	if got := counters["exec.bytes_moved"]; got != bytesMoved {
		t.Errorf("%s: exec.bytes_moved counter %d != %d", c.Name, got, bytesMoved)
	}

	// Report view: ANALYZE must render, cover every executed step, and
	// carry the matching totals in its summary line.
	if !strings.Contains(report, "-- analyze summary") {
		t.Fatalf("%s: ANALYZE report missing summary:\n%s", c.Name, report)
	}
	if execErr == nil && strings.Contains(report, "(step did not complete)") {
		t.Errorf("%s: successful run reported incomplete steps:\n%s", c.Name, report)
	}
}

// Package transval implements translation validation of generated DSQL
// (paper §2.4/§3.4 boundary): the plan-to-SQL hop is the one compilation
// stage the memo checker cannot see, so every emitted step is re-parsed
// through the SQL front-end and re-interpreted abstractly, and the result
// is compared against an equally abstract interpretation of the plan
// fragment that produced it.
//
// Both sides run the same three abstract domains independently:
//
//   - column lineage — which base table columns each intermediate column
//     descends from (exposed through Lineage);
//   - nullability — three-valued-logic aware: outer joins introduce NULLs,
//     comparisons and IS NOT NULL filters kill them, matching the vec
//     engine's NULL-mask conventions;
//   - distribution — each intermediate's placement re-derived from base
//     table metadata and move kinds by the enumerator's own rules, checked
//     against the optimizer's recorded placement.
//
// A disagreement on any domain, on referenced tables/temps, or on the
// canonicalized predicate multiset is a typed planverify.Violation. Checks
// run per step in a fixed order and stop at the first mismatch for that
// step, so a single seeded defect yields a single, precisely-coded
// violation.
package transval

import (
	"errors"
	"fmt"

	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/dsql"
	"pdwqo/internal/planverify"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// Violation codes for the plan-to-SQL translation validator.
const (
	// CodeReparse: a step's SQL does not re-parse through the front-end.
	CodeReparse planverify.Code = "transval-reparse"
	// CodeRefs: the step references different base tables or temp tables
	// than its plan fragment, or its SQL does not re-bind.
	CodeRefs planverify.Code = "transval-refs"
	// CodeSchema: the step's derived output schema (column identities and
	// types, in order) differs from the plan fragment's.
	CodeSchema planverify.Code = "transval-schema"
	// CodeLineage: a column's base-table origin set differs between the
	// re-parsed SQL and the plan fragment.
	CodeLineage planverify.Code = "transval-lineage"
	// CodeNullability: the 3VL nullability derivation disagrees between
	// the two sides for some output column.
	CodeNullability planverify.Code = "transval-nullability"
	// CodeDistribution: a re-derived placement disagrees — either the
	// optimizer's recorded placement is not reproducible from the
	// enumerator's rules, or the SQL side derives a different placement
	// than the plan side, or the step's recorded execution placement is
	// wrong.
	CodeDistribution planverify.Code = "transval-distribution"
	// CodePredicate: the canonicalized predicate multisets differ.
	CodePredicate planverify.Code = "transval-predicate"
)

// Check validates every DSQL step of a generated plan against the plan
// fragment it was cut from and returns the violations found. It is
// side-effect free and safe on partial inputs (nil plan or empty step list
// yields no violations).
func Check(plan *core.Plan, dp *dsql.Plan, shell *catalog.Shell) []planverify.Violation {
	if plan == nil || plan.Root == nil || dp == nil || len(dp.Steps) == 0 || shell == nil {
		return nil
	}
	pi := newPlanInterp()
	pi.collectSlotKinds(plan.Root)

	moves := cutMoves(plan.Root)
	if len(dp.Steps) != len(moves)+1 {
		return []planverify.Violation{{
			Code: CodeRefs, Step: -1, Group: -1,
			Detail: fmt.Sprintf("plan cuts into %d move steps + return but DSQL has %d steps",
				len(moves), len(dp.Steps)),
		}}
	}
	for i, mo := range moves {
		st := dp.Steps[i]
		if st.Kind != dsql.StepMove || st.Dest == "" {
			return []planverify.Violation{{
				Code: CodeRefs, Step: i, Group: -1,
				Detail: "step does not line up with a plan move boundary",
			}}
		}
		pi.moveDest[mo] = st.Dest
	}
	if dp.Steps[len(dp.Steps)-1].Kind != dsql.StepReturn {
		return []planverify.Violation{{
			Code: CodeRefs, Step: len(dp.Steps) - 1, Group: -1,
			Detail: "final DSQL step is not a Return step",
		}}
	}

	si := &sqlInterp{shell: shell, temps: map[string]*absRel{}, slotKinds: pi.slotKinds}
	for i, st := range dp.Steps {
		pi.step = i
		if st.Kind == dsql.StepMove {
			checkMoveStep(pi, si, st, moves[i])
			// Register the validated boundary state — the plan side's view
			// of the moved rows — so later steps interpret this temp
			// independently of whether this step itself was clean.
			src := pi.rel(moves[i])
			si.temps[st.Dest] = src
		} else {
			checkReturnStep(pi, si, st, plan, dp)
		}
	}
	pi.step = -1
	return pi.vs
}

// cutMoves lists the plan's move boundaries in DSQL emission order,
// mirroring the generator: a move's source fragment is emitted (and any
// moves inside it recursed into) before the move itself, shared moves are
// emitted once, and siblings go left to right.
func cutMoves(root *core.Option) []*core.Option {
	var moves []*core.Option
	seen := map[*core.Option]bool{}
	var visit func(o *core.Option)
	visit = func(o *core.Option) {
		if o.Move != nil {
			if seen[o] {
				return
			}
			visit(o.Inputs[0])
			seen[o] = true
			moves = append(moves, o)
			return
		}
		for _, in := range o.Inputs {
			visit(in)
		}
	}
	visit(root)
	return moves
}

// reparse parses one step's SQL, recording a reparse violation on failure.
func reparse(pi *planInterp, sql string) (*sqlparser.SelectStmt, bool) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		var pe *sqlparser.ParseError
		if errors.As(err, &pe) {
			pi.violatef(CodeReparse, "step SQL does not re-parse at byte %d: %v", pe.Offset, err)
		} else {
			pi.violatef(CodeReparse, "step SQL does not re-parse: %v", err)
		}
		return nil, false
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		pi.violatef(CodeReparse, "step SQL is not a SELECT statement")
		return nil, false
	}
	return sel, true
}

func checkMoveStep(pi *planInterp, si *sqlInterp, st dsql.Step, mo *core.Option) {
	src := mo.Inputs[0]
	planRel := pi.rel(src)
	planAcc := newFragAcc()
	pi.collect(src, planAcc)

	sel, ok := reparse(pi, st.SQL)
	if !ok {
		return
	}
	si.acc = newFragAcc()
	sqlRel, err := si.selectRel(sel, nil, false, false)
	if err != nil {
		pi.violatef(CodeRefs, "step SQL does not re-bind: %v", err)
		return
	}
	compareFragment(pi, st.Where, planRel, planAcc, sqlRel, si.acc)
}

func checkReturnStep(pi *planInterp, si *sqlInterp, st dsql.Step, plan *core.Plan, dp *dsql.Plan) {
	planRel := pi.rel(plan.Root)
	planAcc := newFragAcc()
	pi.collect(plan.Root, planAcc)

	sel, ok := reparse(pi, st.SQL)
	if !ok {
		return
	}
	si.acc = newFragAcc()
	innerRel, outs, err := si.returnRel(sel)
	if err != nil {
		pi.violatef(CodeRefs, "return step SQL does not re-bind: %v", err)
		return
	}
	if !compareFragment(pi, st.Where, planRel, planAcc, innerRel, si.acc) {
		return
	}
	if len(outs) != len(dp.OutCols) {
		pi.violatef(CodeSchema, "return step selects %d columns but the plan's result schema has %d",
			len(outs), len(dp.OutCols))
		return
	}
	for i, o := range outs {
		want := dp.OutCols[i]
		if o.id != want.ID || o.name != want.Name {
			pi.violatef(CodeSchema, "return column %d is c%d AS %q but the result schema records c%d AS %q",
				i, o.id, o.name, want.ID, want.Name)
			return
		}
	}
}

// compareFragment runs the per-step checks in order — references, schema,
// lineage, nullability, distribution, predicates — stopping at the first
// mismatch. Returns true when the fragment is clean.
func compareFragment(pi *planInterp, where core.DistKind, planRel *absRel, planAcc *fragAcc, sqlRel *absRel, sqlAcc *fragAcc) bool {
	if !sameStringSet(planAcc.tables, sqlAcc.tables) {
		pi.violatef(CodeRefs, "base tables differ: plan references %v, SQL references %v",
			sortedKeys(planAcc.tables), sortedKeys(sqlAcc.tables))
		return false
	}
	if !sameStringSet(planAcc.temps, sqlAcc.temps) {
		pi.violatef(CodeRefs, "temp tables differ: plan references %v, SQL references %v",
			sortedKeys(planAcc.temps), sortedKeys(sqlAcc.temps))
		return false
	}

	if len(planRel.cols) != len(sqlRel.cols) {
		pi.violatef(CodeSchema, "plan fragment outputs %d columns, SQL outputs %d",
			len(planRel.cols), len(sqlRel.cols))
		return false
	}
	for i := range planRel.cols {
		p, s := planRel.cols[i], sqlRel.cols[i]
		if p.ID != s.ID {
			pi.violatef(CodeSchema, "column %d: plan derives c%d, SQL derives c%d", i, p.ID, s.ID)
			return false
		}
		// A bare NULL literal erases its column's type in SQL text (the
		// generator only casts NULLs in the empty-Values shape), so an
		// unknown kind on either side is compatible with anything.
		if p.Type != s.Type && p.Type != types.KindNull && s.Type != types.KindNull {
			pi.violatef(CodeSchema, "column c%d: plan derives type %s, SQL derives %s", p.ID, p.Type, s.Type)
			return false
		}
	}

	for i := range planRel.cols {
		p, s := planRel.cols[i], sqlRel.cols[i]
		if !sameStringSet(p.Origins, s.Origins) {
			pi.violatef(CodeLineage, "column c%d: plan lineage %v, SQL lineage %v",
				p.ID, sortedKeys(p.Origins), sortedKeys(s.Origins))
			return false
		}
	}

	for i := range planRel.cols {
		p, s := planRel.cols[i], sqlRel.cols[i]
		if p.Nullable != s.Nullable {
			pi.violatef(CodeNullability, "column c%d: plan derives nullable=%v, SQL derives nullable=%v",
				p.ID, p.Nullable, s.Nullable)
			return false
		}
	}

	if where != planRel.dist.Kind {
		pi.violatef(CodeDistribution, "step records execution placement %s but the fragment's derived placement is %s",
			distKindName(where), distKindName(planRel.dist.Kind))
		return false
	}
	if !distEqual(planRel.dist, sqlRel.dist) {
		pi.violatef(CodeDistribution, "plan derives placement %s, SQL derives %s", planRel.dist, sqlRel.dist)
		return false
	}

	pp, sp := planAcc.sortedPreds(), sqlAcc.sortedPreds()
	if !equalStrings(pp, sp) {
		pi.violatef(CodePredicate, "predicates differ: plan %v, SQL %v", pp, sp)
		return false
	}
	return true
}

func sameStringSet(a, b map[string]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func distKindName(k core.DistKind) string {
	switch k {
	case core.DistHash:
		return "hash"
	case core.DistReplicated:
		return "replicated"
	case core.DistSingle:
		return "single"
	default:
		return fmt.Sprintf("DistKind(%d)", int(k))
	}
}

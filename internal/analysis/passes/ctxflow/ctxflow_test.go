package ctxflow_test

import (
	"path/filepath"
	"testing"

	"pdwqo/internal/analysis"
	"pdwqo/internal/analysis/passes/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysis.RunTest(t, filepath.Join("testdata", "src", "a"), ctxflow.Analyzer)
}

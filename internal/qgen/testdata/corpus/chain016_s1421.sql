SELECT g1, COUNT(*) AS cnt, SUM(v1) AS sv
FROM ch00, ch01, ch02, ch03, ch04, ch05, ch06, ch07, ch08, ch09, ch10, ch11, ch12, ch13, ch14, ch15
WHERE k0 = f1
  AND k1 = f2
  AND k2 = f3
  AND k3 = f4
  AND k4 = f5
  AND k5 = f6
  AND k6 = f7
  AND k7 = f8
  AND k8 = f9
  AND k9 = f10
  AND k10 = f11
  AND k11 = f12
  AND k12 = f13
  AND k13 = f14
  AND k14 = f15
  AND v1 <= 612
  AND v2 <= 437
  AND v4 <= 655
  AND v5 <= 717
  AND v7 <= 325
  AND v11 <= 299
  AND v12 <= 769
  AND v14 <= 851
GROUP BY g1

package normalize

import (
	"strings"
	"testing"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

func testShell(t *testing.T) *catalog.Shell {
	t.Helper()
	s := catalog.NewShell(8)
	add := func(tbl *catalog.Table) {
		t.Helper()
		if err := s.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	add(&catalog.Table{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: types.KindInt},
			{Name: "p_name", Type: types.KindString},
		},
		PrimaryKey: []string{"p_partkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "p_partkey"},
	})
	add(&catalog.Table{
		Name: "partsupp",
		Columns: []catalog.Column{
			{Name: "ps_partkey", Type: types.KindInt},
			{Name: "ps_suppkey", Type: types.KindInt},
			{Name: "ps_availqty", Type: types.KindInt},
		},
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "ps_partkey"},
	})
	add(&catalog.Table{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_orderkey", Type: types.KindInt},
			{Name: "l_partkey", Type: types.KindInt},
			{Name: "l_suppkey", Type: types.KindInt},
			{Name: "l_quantity", Type: types.KindFloat},
			{Name: "l_shipdate", Type: types.KindDate},
		},
		Dist: catalog.Distribution{Kind: catalog.DistHash, Column: "l_orderkey"},
	})
	add(&catalog.Table{
		Name: "supplier",
		Columns: []catalog.Column{
			{Name: "s_suppkey", Type: types.KindInt},
			{Name: "s_name", Type: types.KindString},
			{Name: "s_nationkey", Type: types.KindInt},
		},
		PrimaryKey: []string{"s_suppkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistReplicated},
	})
	add(&catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: types.KindInt},
			{Name: "o_custkey", Type: types.KindInt},
			{Name: "o_orderdate", Type: types.KindDate},
		},
		PrimaryKey: []string{"o_orderkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "o_orderkey"},
	})
	add(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: types.KindInt},
			{Name: "c_name", Type: types.KindString},
			{Name: "c_acctbal", Type: types.KindFloat},
		},
		PrimaryKey: []string{"c_custkey"},
		Dist:       catalog.Distribution{Kind: catalog.DistHash, Column: "c_custkey"},
	})
	return s
}

func normalizeSQL(t *testing.T, sql string) *algebra.Tree {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := algebra.NewBinder(testShell(t))
	tree, err := b.Bind(sel)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	out, err := New(b).Normalize(tree)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return out
}

// countOps tallies operator type names in the tree.
func countOps(t *algebra.Tree) map[string]int {
	out := map[string]int{}
	algebra.VisitTree(t, func(n *algebra.Tree) { out[n.Op.OpName()]++ })
	return out
}

func assertNoSubqueries(t *testing.T, tree *algebra.Tree) {
	t.Helper()
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		for _, s := range algebra.OperatorScalars(n.Op) {
			if algebra.HasSubquery(s) {
				t.Fatalf("subquery survived normalization:\n%s", tree)
			}
		}
	})
}

func TestUnnestUncorrelatedIn(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders)`)
	assertNoSubqueries(t, tree)
	ops := countOps(tree)
	if ops["InnerJoin"] != 1 {
		t.Fatalf("IN should become an inner join: %v\n%s", ops, tree)
	}
	// o_custkey is not unique → a distinct GroupBy must guard duplicates.
	if ops["GroupBy"] != 1 {
		t.Fatalf("expected dedup GroupBy: %v\n%s", ops, tree)
	}
}

func TestUnnestInOnPrimaryKeySkipsDistinct(t *testing.T) {
	tree := normalizeSQL(t, `SELECT ps_availqty FROM partsupp WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%')`)
	assertNoSubqueries(t, tree)
	ops := countOps(tree)
	if ops["InnerJoin"] != 1 {
		t.Fatalf("inner join expected: %v", ops)
	}
	// p_partkey is part's primary key → already unique per equality: the
	// subquery's projection of the PK keeps uniqueness, so no GroupBy.
	if ops["GroupBy"] != 0 {
		t.Fatalf("PK-unique IN needs no dedup: %v\n%s", ops, tree)
	}
}

func TestUnnestNotIn(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer WHERE c_custkey NOT IN (SELECT o_custkey FROM orders)`)
	assertNoSubqueries(t, tree)
	if countOps(tree)["AntiJoin"] != 1 {
		t.Fatalf("NOT IN should become anti join:\n%s", tree)
	}
}

func TestUnnestCorrelatedExists(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer c WHERE EXISTS (
		SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_orderdate >= '1994-01-01')`)
	assertNoSubqueries(t, tree)
	ops := countOps(tree)
	if ops["SemiJoin"] != 1 {
		t.Fatalf("EXISTS should become semi join: %v\n%s", ops, tree)
	}
	// The local date predicate must stay inside the subquery side; the
	// correlation equality becomes the join condition.
	var semi *algebra.Tree
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if j, ok := n.Op.(*algebra.Join); ok && j.Kind == algebra.JoinSemi {
			semi = n
		}
	})
	j := semi.Op.(*algebra.Join)
	if _, _, ok := algebra.EquiJoinSides(algebra.Conjuncts(j.On)[0]); !ok {
		t.Errorf("semi join condition should be the lifted equality: %s", j.On.Fingerprint())
	}
	found := false
	algebra.VisitTree(semi.Children[1], func(n *algebra.Tree) {
		if s, ok := n.Op.(*algebra.Select); ok && strings.Contains(s.Filter.Fingerprint(), "1994") {
			found = true
		}
	})
	if !found {
		t.Errorf("local predicate must remain in subquery:\n%s", tree)
	}
}

func TestUnnestNotExists(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer c WHERE NOT EXISTS (
		SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)`)
	assertNoSubqueries(t, tree)
	if countOps(tree)["AntiJoin"] != 1 {
		t.Fatalf("NOT EXISTS → anti join:\n%s", tree)
	}
}

func TestDecorrelateScalarAggregate(t *testing.T) {
	// The Q20 SQ3 pattern.
	tree := normalizeSQL(t, `SELECT ps_suppkey FROM partsupp WHERE ps_availqty > (
		SELECT 0.5 * SUM(l_quantity) FROM lineitem
		WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey
		  AND l_shipdate >= '1994-01-01')`)
	assertNoSubqueries(t, tree)
	var gb *algebra.GroupBy
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if g, ok := n.Op.(*algebra.GroupBy); ok && len(g.Aggs) > 0 {
			gb = g
		}
	})
	if gb == nil {
		t.Fatalf("decorrelation must produce a keyed aggregate:\n%s", tree)
	}
	if len(gb.Keys) != 2 {
		t.Fatalf("group keys should be the correlation columns (l_partkey,l_suppkey): %v", gb.Keys)
	}
	// The comparison must appear in a join condition or filter above.
	fp := tree.String()
	if !strings.Contains(fp, ">") {
		t.Errorf("availqty comparison lost:\n%s", fp)
	}
}

func TestUncorrelatedScalarSubquery(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer WHERE c_acctbal > (SELECT MAX(c_acctbal) FROM customer)`)
	assertNoSubqueries(t, tree)
	if countOps(tree)["InnerJoin"] != 1 {
		t.Fatalf("scalar comparison joins the aggregate:\n%s", tree)
	}
}

func TestPushdownThroughJoin(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND o.o_orderdate >= '1994-01-01' AND c.c_acctbal > 0`)
	// Each single-table predicate must sit directly above its Get.
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if s, ok := n.Op.(*algebra.Select); ok {
			child, ok := n.Children[0].Op.(*algebra.Get)
			if !ok {
				t.Errorf("Select not over Get: filter %s over %s", s.Filter.Fingerprint(), n.Children[0].Op.OpName())
				return
			}
			_ = child
		}
	})
	// The cross join must have become an inner join on the equality.
	var join *algebra.Join
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if j, ok := n.Op.(*algebra.Join); ok {
			join = j
		}
	})
	if join == nil || join.Kind != algebra.JoinInner || join.On == nil {
		t.Fatalf("cross join should become qualified inner join:\n%s", tree)
	}
}

func TestOuterJoinSimplification(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey
		WHERE o.o_orderdate >= '1994-01-01'`)
	var kinds []algebra.JoinKind
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if j, ok := n.Op.(*algebra.Join); ok {
			kinds = append(kinds, j.Kind)
		}
	})
	if len(kinds) != 1 || kinds[0] != algebra.JoinInner {
		t.Fatalf("null-rejecting predicate must convert outer to inner: %v\n%s", kinds, tree)
	}
}

func TestOuterJoinPreservedUnderIsNull(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey
		WHERE o.o_orderkey IS NULL`)
	var kinds []algebra.JoinKind
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if j, ok := n.Op.(*algebra.Join); ok {
			kinds = append(kinds, j.Kind)
		}
	})
	if len(kinds) != 1 || kinds[0] != algebra.JoinLeftOuter {
		t.Fatalf("IS NULL must not convert outer join: %v", kinds)
	}
}

func TestTransitivityClosure(t *testing.T) {
	// c_custkey = o_custkey ∧ o_custkey = l_orderkey ⇒ c_custkey = l_orderkey
	// (schema-wise nonsense but exercises the closure machinery).
	tree := normalizeSQL(t, `SELECT c_name FROM customer c, orders o, lineitem l
		WHERE c.c_custkey = o.o_custkey AND o.o_custkey = l.l_orderkey`)
	conjs := collectAllConjuncts(tree)
	eqCount := 0
	for _, c := range conjs {
		if _, _, ok := algebra.EquiJoinSides(c); ok {
			eqCount++
		}
	}
	if eqCount < 3 {
		t.Fatalf("closure should add the third equality, got %d:\n%s", eqCount, tree)
	}
}

func TestConstantPropagation(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer c, orders o
		WHERE c.c_custkey = o.o_custkey AND c.c_custkey = 42`)
	// o_custkey = 42 must appear directly above the orders Get.
	found := false
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if s, ok := n.Op.(*algebra.Select); ok {
			if g, ok := n.Children[0].Op.(*algebra.Get); ok && g.Table.Name == "orders" {
				if strings.Contains(s.Filter.Fingerprint(), "42") {
					found = true
				}
			}
		}
	})
	if !found {
		t.Fatalf("constant must propagate to orders side:\n%s", tree)
	}
}

func TestContradictionDetection(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer WHERE c_acctbal > 10 AND c_acctbal < 5`)
	if countOps(tree)["Values"] != 1 {
		t.Fatalf("range contradiction must produce empty Values:\n%s", tree)
	}
	tree = normalizeSQL(t, `SELECT c_name FROM customer WHERE 1 = 0`)
	if countOps(tree)["Values"] != 1 {
		t.Fatalf("constant-false must produce empty Values:\n%s", tree)
	}
	tree = normalizeSQL(t, `SELECT c_name FROM customer WHERE c_custkey = 5 AND c_custkey = 6`)
	if countOps(tree)["Values"] != 1 {
		t.Fatalf("conflicting equalities must produce empty Values:\n%s", tree)
	}
	// Sanity: satisfiable ranges survive.
	tree = normalizeSQL(t, `SELECT c_name FROM customer WHERE c_acctbal > 5 AND c_acctbal < 10`)
	if countOps(tree)["Values"] != 0 {
		t.Fatal("satisfiable range flagged as contradiction")
	}
}

func TestConstantFoldingRemovesTrueFilter(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer WHERE 1 = 1`)
	if countOps(tree)["Select"] != 0 {
		t.Fatalf("constant-true filter must disappear:\n%s", tree)
	}
}

func TestRedundantSelfJoinElimination(t *testing.T) {
	tree := normalizeSQL(t, `SELECT a.c_name FROM customer a, customer b WHERE a.c_custkey = b.c_custkey`)
	ops := countOps(tree)
	if ops["Get"] != 1 || ops["InnerJoin"] != 0 {
		t.Fatalf("self-join on PK must collapse to one scan: %v\n%s", ops, tree)
	}
}

func TestSelfJoinKeptWithoutFullPK(t *testing.T) {
	// partsupp's PK is (ps_partkey, ps_suppkey); joining on one column only
	// is not redundant.
	tree := normalizeSQL(t, `SELECT a.ps_availqty FROM partsupp a, partsupp b WHERE a.ps_partkey = b.ps_partkey`)
	if countOps(tree)["InnerJoin"] != 1 {
		t.Fatalf("partial-key self-join must remain:\n%s", tree)
	}
}

func TestColumnPruning(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer WHERE c_acctbal > 0`)
	var get *algebra.Get
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if g, ok := n.Op.(*algebra.Get); ok {
			get = g
		}
	})
	if len(get.Cols) != 2 {
		t.Fatalf("Get should keep only c_name and c_acctbal: %+v", get.Cols)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"forest green", "forest%", true},
		{"enchanted forest", "forest%", false},
		{"enchanted forest", "%forest", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "abc", true},
		{"abc", "%b%", true},
		{"", "%", true},
		{"x", "", false},
		{"mississippi", "%iss%ppi", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestFoldScalarBasics(t *testing.T) {
	two := &algebra.Const{Val: types.NewInt(2)}
	three := &algebra.Const{Val: types.NewInt(3)}
	sum := &algebra.Binary{Op: sqlparser.OpAdd, L: two, R: three}
	if got := FoldScalar(sum).(*algebra.Const).Val.Int(); got != 5 {
		t.Errorf("2+3 = %d", got)
	}
	cmp := &algebra.Binary{Op: sqlparser.OpLt, L: two, R: three}
	if got := FoldScalar(cmp).(*algebra.Const).Val.Bool(); !got {
		t.Error("2 < 3")
	}
	colRef := algebra.NewColRef(algebra.ColumnMeta{ID: 1, Type: types.KindBool})
	and := &algebra.Binary{Op: sqlparser.OpAnd, L: &algebra.Const{Val: types.NewBool(true)}, R: colRef}
	if FoldScalar(and) != colRef {
		t.Error("TRUE AND x = x")
	}
	or := &algebra.Binary{Op: sqlparser.OpOr, L: &algebra.Const{Val: types.NewBool(true)}, R: colRef}
	if !FoldScalar(or).(*algebra.Const).Val.Bool() {
		t.Error("TRUE OR x = TRUE")
	}
	notNot := &algebra.Not{E: &algebra.Not{E: colRef}}
	if FoldScalar(notNot) != colRef {
		t.Error("NOT NOT x = x")
	}
}

func TestQ20Normalizes(t *testing.T) {
	// Full Q20 (minus the nation join for this mini-catalog) must fully
	// unnest: no subqueries, joins over part/partsupp/lineitem/supplier.
	tree := normalizeSQL(t, `
		SELECT s_name FROM supplier WHERE s_suppkey IN (
			SELECT ps_suppkey FROM partsupp
			WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%')
			  AND ps_availqty > (
				SELECT 0.5 * SUM(l_quantity) FROM lineitem
				WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey
				  AND l_shipdate >= '1994-01-01'
				  AND l_shipdate < DATEADD(year, 1, '1994-01-01'))
		) ORDER BY s_name`)
	assertNoSubqueries(t, tree)
	ops := countOps(tree)
	if ops["Get"] != 4 {
		t.Fatalf("expected scans of 4 tables: %v\n%s", ops, tree)
	}
	if ops["InnerJoin"] < 3 {
		t.Fatalf("expected ≥3 inner joins after unnesting: %v\n%s", ops, tree)
	}
	// Transitivity closure must relate p_partkey to l_partkey so the memo
	// can join part with lineitem directly (paper §4, DSQL step 0).
	var partKey, linePartKey algebra.ColumnID
	algebra.VisitTree(tree, func(n *algebra.Tree) {
		if g, ok := n.Op.(*algebra.Get); ok {
			for _, c := range g.Cols {
				switch {
				case g.Table.Name == "part" && c.Name == "p_partkey":
					partKey = c.ID
				case g.Table.Name == "lineitem" && c.Name == "l_partkey":
					linePartKey = c.ID
				}
			}
		}
	})
	if partKey == 0 || linePartKey == 0 {
		t.Fatalf("missing key columns\n%s", tree)
	}
	foundDirect := false
	for _, c := range collectAllConjuncts(tree) {
		l, r, ok := algebra.EquiJoinSides(c)
		if ok && ((l == partKey && r == linePartKey) || (l == linePartKey && r == partKey)) {
			foundDirect = true
		}
	}
	if !foundDirect {
		t.Errorf("transitivity closure must derive p_partkey = l_partkey\n%s", tree)
	}
}

// collectAllConjuncts pulls every filter/join conjunct from the tree.
func collectAllConjuncts(t *algebra.Tree) []algebra.Scalar {
	var out []algebra.Scalar
	algebra.VisitTree(t, func(n *algebra.Tree) {
		switch op := n.Op.(type) {
		case *algebra.Select:
			out = append(out, algebra.Conjuncts(op.Filter)...)
		case *algebra.Join:
			out = append(out, algebra.Conjuncts(op.On)...)
		}
	})
	return out
}

func TestSeedCollocatedPrefersCollocatedPairs(t *testing.T) {
	// partsupp (hash ps_partkey) ⋈ part (hash p_partkey) are collocated on
	// the partkey equality; lineitem (hash l_orderkey) is not. Seeding must
	// join partsupp⋈part first regardless of the FROM order.
	tree := normalizeSQL(t, `SELECT ps_availqty FROM lineitem, partsupp, part
		WHERE l_partkey = ps_partkey AND ps_partkey = p_partkey`)
	seeded := SeedCollocated(tree)
	// Find the innermost join and check its two sides scan partsupp/part.
	var innermost *algebra.Tree
	algebra.VisitTree(seeded, func(n *algebra.Tree) {
		if _, ok := n.Op.(*algebra.Join); !ok {
			return
		}
		joinBelow := false
		for _, c := range n.Children {
			algebra.VisitTree(c, func(m *algebra.Tree) {
				if _, ok := m.Op.(*algebra.Join); ok {
					joinBelow = true
				}
			})
		}
		if !joinBelow {
			innermost = n
		}
	})
	if innermost == nil {
		t.Fatalf("no innermost join:\n%s", seeded)
	}
	names := map[string]bool{}
	algebra.VisitTree(innermost, func(n *algebra.Tree) {
		if g, ok := n.Op.(*algebra.Get); ok {
			names[g.Table.Name] = true
		}
	})
	if !names["partsupp"] || !names["part"] || names["lineitem"] {
		t.Errorf("innermost join should pair partsupp⋈part: %v\n%s", names, seeded)
	}
	// Output columns (by ID) unchanged.
	a, b := tree.OutputCols(), seeded.OutputCols()
	if len(a) != len(b) {
		t.Fatal("seeding changed output arity")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("seeding changed output columns")
		}
	}
}

func TestSeedCollocatedIdempotentOnSmallRegions(t *testing.T) {
	tree := normalizeSQL(t, `SELECT c_name FROM customer WHERE c_acctbal > 0`)
	if SeedCollocated(tree).Fingerprint() != tree.Fingerprint() {
		t.Error("single-factor regions must be untouched")
	}
}

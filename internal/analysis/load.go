package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded and type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg mirrors the subset of `go list -json` output the loader
// consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream. -export populates each package's compiler export
// file from the build cache, which is what lets the type checker
// resolve imports without golang.org/x/tools and without network.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over the export
// files go list reported.
func exportLookup(pkgs []listPkg) func(path string) (io.ReadCloser, error) {
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// Load enumerates the packages matching patterns from dir and
// type-checks every package belonging to the enclosing module from
// source. Test files are not loaded; the lint surface is the shipped
// code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(pkgs))
	var out []*Package
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typecheck parses and type-checks one package from source.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

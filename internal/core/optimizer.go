package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/cost"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/trace"
)

// Mode selects the plan space the optimizer explores.
type Mode uint8

// Optimizer modes.
const (
	// ModeFull consumes the entire serial search space (the paper's PDW
	// QO).
	ModeFull Mode = iota
	// ModeSerialBaseline parallelizes only the best serial plan: per
	// group, the single logical shape under the serial winner is used.
	// This is the baseline the paper argues against (§1.2, §3.2).
	ModeSerialBaseline
)

// Config tunes the optimizer; zero value = the paper's configuration.
type Config struct {
	Mode Mode
	// DisableInterestingRetention prunes each group to the single best
	// option (plus feasibility fallbacks) instead of best-per-interesting-
	// property (E8 ablation of Figure 4 step 06.ii).
	DisableInterestingRetention bool
	// DisableAggSplit turns off the partial/final aggregation split
	// (E9/E19 ablation of the paper's §4 "local-global transformation"):
	// every GroupBy keeps its complete, unsplit shape.
	DisableAggSplit bool
	// Parallelism bounds the workers enumerating independent MEMO groups
	// within one topological wave: 0 means GOMAXPROCS, 1 forces the serial
	// enumerator. Pruning is per-group and fresh columns are minted from
	// per-group ranges, so the chosen plan is identical at any setting.
	Parallelism int
	// SearchBudget caps the options considered during enumeration: when
	// the counter has reached the budget at a wave barrier, Optimize
	// fails with a *BudgetError instead of continuing — the caller's
	// signal to fall back to the greedy join-order regime. The check
	// happens only between waves, so the trip point (and the counter's
	// final value) is deterministic and identical at any Parallelism.
	// 0 disables the budget (exhaustive enumeration). A search that
	// reaches the last barrier finishes even if the final wave overshoots.
	SearchBudget int
	// Tracer, when non-nil, records phase/wave/group spans and the
	// optimize.* counters; TraceParent parents them under the caller's
	// span. A nil Tracer costs nothing.
	Tracer      *trace.Tracer
	TraceParent trace.SpanID
}

// Plan is the optimizer's result: the cheapest distributed plan plus
// search statistics.
type Plan struct {
	Root *Option
	// ReturnCost is the modeled cost of streaming the final result to the
	// client through the control node.
	ReturnCost float64
	// TotalCost = Root.DMSCost + ReturnCost.
	TotalCost float64
	// OptionsConsidered counts options created during enumeration;
	// OptionsRetained counts options surviving pruning.
	OptionsConsidered int
	OptionsRetained   int
	Groups            int
}

// Optimizer is the PDW-side bottom-up optimizer over a parsed memo.
type Optimizer struct {
	dec    *memoxml.Decoded
	shell  *catalog.Shell
	model  cost.Model
	config Config

	groups map[int]*pgroup
	order  []int // bottom-up topological order

	// Enumeration statistics, updated atomically: groups in one wave
	// enumerate concurrently.
	considered int64
	retained   int64
}

// pgroup is the PDW-side view of one memo group.
type pgroup struct {
	*memoxml.DecodedGroup
	exprs       []memoxml.DecodedExpr // logical expressions in play (mode-dependent)
	interesting algebra.ColSet
	opts        []*Option
	outSet      algebra.ColSet
	// nextCol walks this group's private fresh-column range (see
	// colStride): enumeration within a group is sequential, so minting is
	// deterministic even when groups enumerate concurrently.
	nextCol algebra.ColumnID
}

// colStride is the size of each group's fresh-column ID range. Fresh
// columns are minted only for partial/final aggregate splits — a handful
// per retained child option — so the range never overflows in practice.
const colStride = 1 << 16

// freshCol mints a column ID from the group's private range; IDs cannot
// collide with exported columns or with other groups' mints.
func (g *pgroup) freshCol() algebra.ColumnID {
	g.nextCol++
	return g.nextCol
}

// New builds an optimizer for a decoded memo against the shell database's
// topology.
func New(dec *memoxml.Decoded, shell *catalog.Shell, model cost.Model, config Config) *Optimizer {
	return &Optimizer{dec: dec, shell: shell, model: model, config: config}
}

// Optimize runs the Figure 4 pipeline and returns the best plan.
func (o *Optimizer) Optimize() (*Plan, error) {
	tr := o.config.Tracer
	psp := tr.BeginUnder(o.config.TraceParent, "prepare")
	if err := o.prepare(); err != nil { // steps 01–03
		psp.SetErr(err)
		psp.End()
		return nil, err
	}
	psp.Int("groups", int64(len(o.order)))
	psp.End()
	isp := tr.BeginUnder(o.config.TraceParent, "derive-interesting")
	o.deriveInteresting() // step 04
	isp.End()
	esp := tr.BeginUnder(o.config.TraceParent, "enumerate")
	if err := o.enumerate(esp.ID()); err != nil { // steps 05–07
		esp.SetErr(err)
		esp.End()
		return nil, err
	}
	esp.Int("options_considered", atomic.LoadInt64(&o.considered))
	esp.End()
	xsp := tr.BeginUnder(o.config.TraceParent, "extract")
	plan, err := o.extract() // steps 08–09
	if err != nil {
		xsp.SetErr(err)
		xsp.End()
		return nil, err
	}
	xsp.End()
	reg := tr.Counters()
	reg.Set("optimize.options_considered", int64(plan.OptionsConsidered))
	reg.Set("optimize.options_retained", int64(plan.OptionsRetained))
	reg.Set("optimize.groups", int64(plan.Groups))
	return plan, nil
}

// enumerate runs steps 05–07 over every group bottom-up. With parallelism,
// independent groups of one topological wave enumerate concurrently: a
// group only reads its children's finished opts, so each wave barrier is
// the only synchronization needed. The serial path iterates the same
// waves (group results are independent within a wave, so plans are
// unchanged), which makes the search-budget trip point identical at any
// Parallelism: the budget is tested only at wave barriers, where every
// worker's atomic counter updates are visible.
func (o *Optimizer) enumerate(parent trace.SpanID) error {
	tr := o.config.Tracer
	par := o.config.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	waves := o.waves()
	for i, wave := range waves {
		if b := o.config.SearchBudget; b > 0 && i > 0 {
			if n := atomic.LoadInt64(&o.considered); n >= int64(b) {
				tr.Counters().Add("optimize.budget_exhausted", 1)
				return &BudgetError{
					Budget: b, Considered: n,
					Wave: i, Waves: len(waves), Groups: len(o.order),
				}
			}
		}
		if par == 1 {
			for _, gid := range wave {
				if err := o.enumerateGroup(o.groups[gid], parent); err != nil {
					return err
				}
			}
			continue
		}
		wsp := tr.BeginUnder(parent, "wave")
		wsp.Int("wave", int64(i))
		wsp.Int("groups", int64(len(wave)))
		tr.Counters().Add("optimize.waves", 1)
		if err := o.enumerateWave(wave, par, wsp.ID()); err != nil {
			wsp.SetErr(err)
			wsp.End()
			return err
		}
		wsp.End()
	}
	return nil
}

// waves partitions the bottom-up order into topological levels: every
// group's children sit in a strictly earlier wave, so the groups within
// one wave have no enumeration dependencies on each other.
func (o *Optimizer) waves() [][]int {
	depth := make(map[int]int, len(o.order))
	maxd := 0
	for _, id := range o.order { // children precede parents in o.order
		d := 0
		for _, e := range o.groups[id].exprs {
			for _, c := range e.Children {
				if dc := depth[c] + 1; dc > d {
					d = dc
				}
			}
		}
		depth[id] = d
		if d > maxd {
			maxd = d
		}
	}
	out := make([][]int, maxd+1)
	for _, id := range o.order {
		out[depth[id]] = append(out[depth[id]], id)
	}
	return out
}

// enumerateWave fans one wave's groups out over at most par workers. The
// reported error is the first failing group in wave order, matching the
// serial enumerator.
func (o *Optimizer) enumerateWave(wave []int, par int, parent trace.SpanID) error {
	if par > len(wave) {
		par = len(wave)
	}
	if par <= 1 {
		for _, gid := range wave {
			if err := o.enumerateGroup(o.groups[gid], parent); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(wave))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(wave) {
					return
				}
				errs[i] = o.enumerateGroup(o.groups[wave[i]], parent)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prepare implements Figure 4 steps 01–03: build PDW-side groups from the
// decoded memo, select the expressions in play for the mode, and compute a
// bottom-up order.
func (o *Optimizer) prepare() error {
	o.groups = map[int]*pgroup{}
	for id, dg := range o.dec.Groups {
		g := &pgroup{DecodedGroup: dg, interesting: algebra.NewColSet(), outSet: algebra.NewColSet()}
		for _, c := range dg.OutCols {
			g.outSet.Add(c.ID)
		}
		// Step 03 (merge equivalent expressions from the PDW perspective):
		// physical algorithm choices are irrelevant to movement planning,
		// so expressions are considered at the logical level and
		// duplicates collapse.
		seen := map[string]bool{}
		switch o.config.Mode {
		case ModeSerialBaseline:
			for _, e := range dg.Exprs {
				if !e.Winner {
					continue
				}
				le := e
				if p, ok := e.Op.(*algebra.Phys); ok {
					le.Op = p.Of
				}
				g.exprs = append(g.exprs, le)
			}
			if len(g.exprs) == 0 {
				// Groups unreachable from the winner tree keep their first
				// logical expr for safety; they will not be visited.
				for _, e := range dg.Exprs {
					if !e.Physical {
						g.exprs = append(g.exprs, e)
						break
					}
				}
			}
		default:
			for _, e := range dg.Exprs {
				if e.Physical {
					continue
				}
				fp := exprFingerprint(e)
				if seen[fp] {
					continue
				}
				seen[fp] = true
				g.exprs = append(g.exprs, e)
			}
		}
		if len(g.exprs) == 0 {
			return fmt.Errorf("core: group %d has no logical expressions", id)
		}
		o.groups[id] = g
	}
	if _, ok := o.groups[o.dec.Root]; !ok {
		return fmt.Errorf("core: missing root group %d", o.dec.Root)
	}
	// Bottom-up order: DFS post-order from the root over expression edges.
	visited := map[int]uint8{}
	var dfs func(id int) error
	dfs = func(id int) error {
		switch visited[id] {
		case 1:
			return fmt.Errorf("core: cyclic memo at group %d", id)
		case 2:
			return nil
		}
		visited[id] = 1
		g, ok := o.groups[id]
		if !ok {
			return fmt.Errorf("core: dangling group reference %d", id)
		}
		for _, e := range g.exprs {
			for _, c := range e.Children {
				if err := dfs(c); err != nil {
					return err
				}
			}
		}
		visited[id] = 2
		o.order = append(o.order, id)
		return nil
	}
	if err := dfs(o.dec.Root); err != nil {
		return err
	}
	// Carve a private fresh-column range per group, positioned by the
	// group's place in the bottom-up order: minting stays deterministic
	// when groups of one wave enumerate concurrently.
	for i, id := range o.order {
		o.groups[id].nextCol = algebra.ColumnID(o.dec.MaxCol) + algebra.ColumnID(i)*colStride
	}
	return nil
}

func exprFingerprint(e memoxml.DecodedExpr) string {
	fp := e.Op.Fingerprint()
	for _, c := range e.Children {
		fp += fmt.Sprintf("|g%d", c)
	}
	return fp
}

// deriveInteresting implements Figure 4 step 04: interesting columns are
// (a) columns referenced in equality join predicates and (b) group-by
// columns, propagated top-down through the memo.
func (o *Optimizer) deriveInteresting() {
	// Iterate top-down (reverse bottom-up order) until fixpoint; the memo
	// is a DAG so a couple of rounds suffice.
	for round := 0; round < 8; round++ {
		changed := false
		for i := len(o.order) - 1; i >= 0; i-- {
			g := o.groups[o.order[i]]
			for _, e := range g.exprs {
				switch op := e.Op.(type) {
				case *algebra.Join:
					for _, conj := range algebra.Conjuncts(op.On) {
						a, b, ok := algebra.EquiJoinSides(conj)
						if !ok {
							continue
						}
						for _, cid := range e.Children {
							c := o.groups[cid]
							for _, col := range []algebra.ColumnID{a, b} {
								if c.outSet.Has(col) && !c.interesting.Has(col) {
									c.interesting.Add(col)
									changed = true
								}
							}
						}
					}
				case *algebra.GroupBy:
					c := o.groups[e.Children[0]]
					for _, k := range op.Keys {
						if c.outSet.Has(k) && !c.interesting.Has(k) {
							c.interesting.Add(k)
							changed = true
						}
					}
				}
				// Parent demand flows through to children.
				for _, cid := range e.Children {
					c := o.groups[cid]
					for col := range g.interesting {
						if c.outSet.Has(col) && !c.interesting.Has(col) {
							c.interesting.Add(col)
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// Interesting exposes a group's interesting columns (for tests and
// explain output).
func (o *Optimizer) Interesting(group int) []algebra.ColumnID {
	g, ok := o.groups[group]
	if !ok {
		return nil
	}
	return g.interesting.Sorted()
}

// extract implements Figure 4 step 08: pick the best root option including
// the cost of returning rows to the client.
func (o *Optimizer) extract() (*Plan, error) {
	root := o.groups[o.dec.Root]
	var best *Option
	bestTotal := math.Inf(1)
	bestReturn := 0.0
	for _, opt := range root.opts {
		ret := o.returnCost(opt)
		total := opt.DMSCost + ret
		if best == nil || total < bestTotal ||
			(total == bestTotal && opt.TieCost < best.TieCost) {
			best, bestTotal, bestReturn = opt, total, ret
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no feasible distributed plan for root group %d", o.dec.Root)
	}
	return &Plan{
		Root:              best,
		ReturnCost:        bestReturn,
		TotalCost:         bestTotal,
		OptionsConsidered: int(atomic.LoadInt64(&o.considered)),
		OptionsRetained:   int(atomic.LoadInt64(&o.retained)),
		Groups:            len(o.order),
	}, nil
}

// returnCost models the final Return operation. Results stream from the
// nodes directly back to the client without materializing a temp table
// (paper §2.3: "such queries will not involve DMS"), and the client
// receives the same bytes regardless of where the result sits — so the
// Return is free for every placement and plans compete on movement alone.
func (o *Optimizer) returnCost(opt *Option) float64 {
	_ = opt
	return 0
}

// sortedColIDs gives deterministic iteration over a column set.
func sortedColIDs(s algebra.ColSet) []algebra.ColumnID { return s.Sorted() }

// widthOf computes the byte width of a schema using group stats when
// available.
func widthOf(cols []algebra.ColumnMeta, statsOf func(algebra.ColumnID) (memoxml.DecodedColStat, bool)) float64 {
	w := 0.0
	for _, c := range cols {
		if cs, ok := statsOf(c.ID); ok && cs.Width > 0 {
			w += cs.Width
		} else {
			w += float64(c.Type.Width())
		}
	}
	return w
}

// expectedDistinct is the Cardenas approximation for the expected number
// of distinct values when drawing n rows from a domain of d values — used
// by the Figure 4 step 02 preprocessor to size local (per-node) aggregates
// for the appliance topology.
func expectedDistinct(d, n float64) float64 {
	if d <= 0 {
		return math.Max(n, 0)
	}
	if n <= 0 {
		return 0
	}
	return d * (1 - math.Pow(1-1/d, n))
}

// sortOptions orders options deterministically for stable plan choice:
// by cost, then by placement signature.
func sortOptions(opts []*Option) {
	sort.SliceStable(opts, func(i, j int) bool {
		a, b := opts[i], opts[j]
		if a.DMSCost != b.DMSCost {
			return a.DMSCost < b.DMSCost
		}
		if a.TieCost != b.TieCost {
			return a.TieCost < b.TieCost
		}
		return a.Dist.String() < b.Dist.String()
	})
}

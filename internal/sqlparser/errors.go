package sqlparser

import "fmt"

// ParseError is the typed error for lexical and syntactic failures. All
// parser and lexer errors are *ParseError, so callers that feed generated
// SQL back through the parser (translation validation of DSQL steps) can
// point at the exact byte of the step text that failed instead of quoting
// a line/column pair from a one-line string. Offset is the byte offset
// into the source where the error was detected; Line and Col are the
// 1-based coordinates derived from it. Error keeps the historical
// "sql:line:col:" rendering.
type ParseError struct {
	Offset int // byte offset into the parsed source
	Line   int
	Col    int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql:%d:%d: %s", e.Line, e.Col, e.Msg)
}

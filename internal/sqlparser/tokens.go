package sqlparser

// Exported lexer surface. The plan cache's parameterizer needs the raw
// token stream — literal values plus their byte spans — without parsing,
// so it can strip constants out of a query and splice new ones back in.

// TokenKind classifies a lexed token for external consumers.
type TokenKind uint8

const (
	// TokenEOF terminates every Lex result.
	TokenEOF TokenKind = iota
	// TokenIdent is an identifier or keyword ([quoted] and "quoted"
	// identifiers lex identically to bare ones, as the parser treats them).
	TokenIdent
	// TokenNumber is an integer or decimal numeric literal.
	TokenNumber
	// TokenString is a single-quoted string literal; Text holds the
	// unescaped value, the Pos:End span includes the quotes.
	TokenString
	// TokenPunct is operator/punctuation text.
	TokenPunct
)

// Token is one lexical unit with its raw byte span in the source.
type Token struct {
	Kind  TokenKind
	Text  string // unescaped value for strings; raw spelling otherwise
	Upper string // upper-cased Text for identifiers, "" otherwise
	Pos   int    // byte offset of the first byte of the raw spelling
	End   int    // byte offset one past the raw spelling
}

// Lex tokenizes src with the exact lexer the parser uses — comments
// skipped, doubled-quote escapes resolved — ending with a TokenEOF entry.
func Lex(src string) ([]Token, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	out := make([]Token, len(toks))
	for i, t := range toks {
		out[i] = Token{Kind: TokenKind(t.Kind), Text: t.Text, Upper: t.Upper, Pos: t.Pos, End: t.End}
	}
	return out, nil
}

// Package engine simulates the PDW appliance (paper §2.1–§2.4): a control
// node plus N compute nodes, each owning a node-local database instance and
// a DMS endpoint. DSQL plans execute exactly as described in the paper —
// steps run serially; each step ships a SQL *string* to the participating
// nodes, whose local engines parse and execute it themselves, concurrently
// across nodes; DMS operations route the resulting rows into temp tables;
// the final step streams rows back to the client through the control node.
//
// Node-level work inside one step fans out over a bounded worker pool
// (Appliance.Parallelism; default GOMAXPROCS). Parallelism == 1 is the
// strictly serial reference path: the differential harness
// (internal/difftest) certifies that both paths produce byte-identical
// results for every query.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/exec"
	"pdwqo/internal/normalize"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/storage"
	"pdwqo/internal/types"
)

// Node is one appliance node: the control node or a compute node.
type Node struct {
	ID        int
	IsControl bool
	DB        *storage.DB
}

// StepMetric records one executed step for calibration and experiments.
type StepMetric struct {
	Move      cost.MoveKind
	IsMove    bool
	Rows      int64
	Bytes     int64
	HashedRow int64 // rows that went through hash routing
	// MaxNodeBytes is the largest per-destination-node byte share: under
	// the uniformity assumption it is ≈ Bytes/N for shuffles; skewed keys
	// push it toward Bytes (E13).
	MaxNodeBytes int64
	Duration     time.Duration
}

// Metrics accumulates execution measurements.
type Metrics struct {
	mu    sync.Mutex
	Steps []StepMetric
}

func (m *Metrics) add(s StepMetric) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Steps = append(m.Steps, s)
}

// TotalBytesMoved sums DMS bytes across steps.
func (m *Metrics) TotalBytesMoved() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.Steps {
		if s.IsMove {
			n += s.Bytes
		}
	}
	return n
}

// StepCount returns the number of recorded steps under the lock; safe to
// call while queries execute concurrently.
func (m *Metrics) StepCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.Steps)
}

// Snapshot returns a copy of the recorded steps. Callers observing metrics
// while the appliance executes (experiment harnesses, monitors) must use
// this instead of reading Steps directly: the slice is appended under the
// mutex, and an unlocked read races with execution.
func (m *Metrics) Snapshot() []StepMetric {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]StepMetric(nil), m.Steps...)
}

// Appliance is the simulated PDW box.
type Appliance struct {
	Shell   *catalog.Shell
	Control *Node
	Compute []*Node
	Metrics Metrics

	// Parallelism bounds the worker pool that fans node-local work out
	// within one step: 0 means GOMAXPROCS, 1 means strictly serial, n > 1
	// caps concurrent node tasks at n. Steps themselves always run
	// serially (paper §2.4).
	Parallelism int
	// NodeLatency simulates the control→compute dispatch round trip paid
	// once per node per step (network hop + remote statement setup). The
	// default 0 keeps tests exact; experiments set it to make node-overlap
	// speedups observable regardless of host core count.
	NodeLatency time.Duration
}

// New builds an appliance for the shell's topology with empty storage.
func New(shell *catalog.Shell) *Appliance {
	a := &Appliance{
		Shell:   shell,
		Control: &Node{ID: -1, IsControl: true, DB: storage.NewDB()},
	}
	for i := 0; i < shell.Topology.ComputeNodes; i++ {
		a.Compute = append(a.Compute, &Node{ID: i, DB: storage.NewDB()})
	}
	return a
}

// LoadTable places a table's rows per its declared distribution:
// replicated tables land on every compute node, hash tables are routed by
// the distribution column. Per-node loads run on the appliance's worker
// pool.
func (a *Appliance) LoadTable(name string, rows []types.Row) error {
	tbl := a.Shell.Table(name)
	if tbl == nil {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	ctx := context.Background()
	if err := parallelFor(ctx, len(a.Compute), a.workers(len(a.Compute)), func(_ context.Context, i int) error {
		return a.Compute[i].DB.Create(tbl.Name, tbl.Columns)
	}); err != nil {
		return err
	}
	if tbl.Dist.Kind == catalog.DistReplicated {
		return parallelFor(ctx, len(a.Compute), a.workers(len(a.Compute)), func(_ context.Context, i int) error {
			return a.Compute[i].DB.BulkInsert(tbl.Name, rows)
		})
	}
	ci := tbl.ColumnIndex(tbl.Dist.Column)
	buckets := make([][]types.Row, len(a.Compute))
	for _, r := range rows {
		n := int(types.Hash(r[ci]) % uint64(len(a.Compute)))
		buckets[n] = append(buckets[n], r)
	}
	return parallelFor(ctx, len(a.Compute), a.workers(len(a.Compute)), func(_ context.Context, i int) error {
		return a.Compute[i].DB.BulkInsert(tbl.Name, buckets[i])
	})
}

// Result is the client-visible query result.
type Result struct {
	Cols []algebra.ColumnMeta
	Rows []types.Row
}

// Execute runs a DSQL plan step by step (paper §2.4: "query plans are
// executed serially, one step at a time", each step parallel across
// nodes — the per-node fan-out is what Parallelism bounds).
func (a *Appliance) Execute(p *dsql.Plan) (*Result, error) {
	return a.ExecuteContext(context.Background(), p)
}

// ExecuteContext is Execute with caller-controlled cancellation: a failing
// node cancels the step's remaining node tasks, and an external cancel
// stops between-node work as soon as the running tasks notice.
func (a *Appliance) ExecuteContext(ctx context.Context, p *dsql.Plan) (*Result, error) {
	// Session catalog: shell tables plus temp tables registered as steps
	// create them.
	session := catalog.NewShell(a.Shell.Topology.ComputeNodes)
	for _, t := range a.Shell.Tables() {
		if err := session.AddTable(t); err != nil {
			return nil, err
		}
	}
	var tempNames []string
	defer func() {
		for _, name := range tempNames {
			a.Control.DB.Drop(name)
			for _, n := range a.Compute {
				n.DB.Drop(name)
			}
		}
	}()

	for _, step := range p.Steps {
		start := time.Now()
		tree, err := a.compile(step.SQL, session)
		if err != nil {
			return nil, fmt.Errorf("engine: step %d: %w", step.ID, err)
		}
		switch step.Kind {
		case dsql.StepMove:
			if err := a.executeMove(ctx, step, tree, session, &tempNames, start); err != nil {
				return nil, fmt.Errorf("engine: step %d: %w", step.ID, err)
			}
		case dsql.StepReturn:
			rel, err := a.executeReturn(ctx, step, tree, p, start)
			if err != nil {
				return nil, fmt.Errorf("engine: step %d: %w", step.ID, err)
			}
			return rel, nil
		}
	}
	return nil, fmt.Errorf("engine: plan has no return step")
}

// compile parses, binds and normalizes a DSQL step's SQL text — the role
// of each node's local SQL instance compilation.
func (a *Appliance) compile(sql string, session *catalog.Shell) (*algebra.Tree, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	b := algebra.NewBinder(session)
	tree, err := b.Bind(sel)
	if err != nil {
		return nil, err
	}
	return normalize.New(b).Normalize(tree)
}

// sourceNodes picks the nodes that run a step's SQL.
func (a *Appliance) sourceNodes(step dsql.Step) []*Node {
	switch {
	case step.Kind == dsql.StepMove && step.MoveKind == cost.ControlNodeMove:
		return []*Node{a.Control}
	case step.Kind == dsql.StepMove &&
		(step.MoveKind == cost.ReplicatedBroadcast || step.MoveKind == cost.RemoteCopySingle):
		// A replicated (or single-compute-node) source is read once.
		if step.Where == core.DistSingle {
			return []*Node{a.Control}
		}
		return []*Node{a.Compute[0]}
	case step.Where == core.DistSingle:
		return []*Node{a.Control}
	case step.Where == core.DistReplicated && step.Kind == dsql.StepReturn:
		return []*Node{a.Compute[0]}
	case step.Where == core.DistReplicated && step.Kind == dsql.StepMove && step.MoveKind != cost.Trim:
		return []*Node{a.Compute[0]}
	default:
		return a.Compute
	}
}

// runOnNodes executes the compiled tree on each node, fanned out over the
// appliance's worker pool. Results keep node order; the first failing
// node's error cancels the remaining tasks.
func (a *Appliance) runOnNodes(ctx context.Context, tree *algebra.Tree, nodes []*Node) ([]*exec.Relation, error) {
	// The step tree is shared by every node's executor, and Tree.OutputCols
	// memoizes lazily; derive the full schema cache here, before the
	// fan-out, so the workers only ever read it.
	tree.OutputCols()
	rels := make([]*exec.Relation, len(nodes))
	err := parallelFor(ctx, len(nodes), a.workers(len(nodes)), func(ctx context.Context, i int) error {
		simulateLatency(ctx, a.NodeLatency)
		n := nodes[i]
		src := func(name string) ([]types.Row, []string, error) {
			t := n.DB.Table(name)
			if t == nil {
				return nil, nil, fmt.Errorf("node %d: no table %q", n.ID, name)
			}
			names := make([]string, len(t.Cols))
			for j, c := range t.Cols {
				names[j] = c.Name
			}
			return t.Rows, names, nil
		}
		rel, err := exec.Run(tree, src)
		if err != nil {
			return err
		}
		rels[i] = rel
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rels, nil
}

// batch is one destination node's routed rows plus its tallied share.
type batch struct {
	node *Node
	rows []types.Row
}

// executeMove runs the step SQL on the source nodes and routes rows per
// the DMS operation into the destination temp table. Routing is computed
// per source relation and inserted per destination node, both on the
// worker pool; the merged row order is independent of scheduling (source
// order within each destination), so parallel and serial execution
// materialize byte-identical temp tables.
func (a *Appliance) executeMove(ctx context.Context, step dsql.Step, tree *algebra.Tree, session *catalog.Shell, tempNames *[]string, start time.Time) error {
	sources := a.sourceNodes(step)
	rels, err := a.runOnNodes(ctx, tree, sources)
	if err != nil {
		return err
	}
	// Destination setup.
	destNodes, destDist := a.destFor(step)
	if err := parallelFor(ctx, len(destNodes), a.workers(len(destNodes)), func(_ context.Context, i int) error {
		return destNodes[i].DB.Create(step.Dest, step.DestCols)
	}); err != nil {
		return err
	}
	*tempNames = append(*tempNames, step.Dest)
	if err := session.AddTable(&catalog.Table{
		Name:    step.Dest,
		Columns: step.DestCols,
		Dist:    destDist,
	}); err != nil {
		return err
	}

	hashPos := -1
	if step.HashCol != "" {
		for i, c := range step.DestCols {
			if c.Name == step.HashCol {
				hashPos = i
			}
		}
		if hashPos < 0 {
			return fmt.Errorf("hash column %q missing from destination", step.HashCol)
		}
	}

	var batches []batch
	var hashed int64

	switch step.MoveKind {
	case cost.Shuffle:
		// Hash-route each source relation on the worker pool, then merge
		// per destination in source order (deterministic under any
		// schedule).
		perSrc := make([][][]types.Row, len(rels))
		perSrcHashed := make([]int64, len(rels))
		if err := parallelFor(ctx, len(rels), a.workers(len(rels)), func(_ context.Context, si int) error {
			buckets := make([][]types.Row, len(a.Compute))
			for _, r := range rels[si].Rows {
				perSrcHashed[si]++
				n := 0
				if !r[hashPos].IsNull() {
					n = int(types.Hash(r[hashPos]) % uint64(len(a.Compute)))
				}
				buckets[n] = append(buckets[n], r)
			}
			perSrc[si] = buckets
			return nil
		}); err != nil {
			return err
		}
		for _, h := range perSrcHashed {
			hashed += h
		}
		for ni, n := range a.Compute {
			var rows []types.Row
			for si := range perSrc {
				rows = append(rows, perSrc[si][ni]...)
			}
			batches = append(batches, batch{node: n, rows: rows})
		}

	case cost.Trim:
		// Node-local: each node keeps only rows it is responsible for.
		if len(sources) != len(a.Compute) {
			return fmt.Errorf("trim requires all compute nodes as sources")
		}
		keeps := make([][]types.Row, len(rels))
		perSrcHashed := make([]int64, len(rels))
		if err := parallelFor(ctx, len(rels), a.workers(len(rels)), func(_ context.Context, si int) error {
			var keep []types.Row
			for _, r := range rels[si].Rows {
				perSrcHashed[si]++
				n := 0
				if !r[hashPos].IsNull() {
					n = int(types.Hash(r[hashPos]) % uint64(len(a.Compute)))
				}
				if n == si {
					keep = append(keep, r)
				}
			}
			keeps[si] = keep
			return nil
		}); err != nil {
			return err
		}
		for _, h := range perSrcHashed {
			hashed += h
		}
		for si, n := range a.Compute {
			batches = append(batches, batch{node: n, rows: keeps[si]})
		}

	case cost.Broadcast, cost.ControlNodeMove, cost.ReplicatedBroadcast:
		var all []types.Row
		for _, rel := range rels {
			all = append(all, rel.Rows...)
		}
		for _, n := range a.Compute {
			batches = append(batches, batch{node: n, rows: all})
		}

	case cost.PartitionMove, cost.RemoteCopySingle:
		var all []types.Row
		for _, rel := range rels {
			all = append(all, rel.Rows...)
		}
		batches = append(batches, batch{node: a.Control, rows: all})

	default:
		return fmt.Errorf("unsupported move kind %v", step.MoveKind)
	}

	// Deliver every batch on the worker pool, tallying per destination so
	// the step metric aggregates race-free and deterministically.
	type tally struct{ rows, bytes int64 }
	tallies := make([]tally, len(batches))
	if err := parallelFor(ctx, len(batches), a.workers(len(batches)), func(ctx context.Context, i int) error {
		simulateLatency(ctx, a.NodeLatency)
		var b int64
		for _, r := range batches[i].rows {
			b += int64(r.Width())
		}
		tallies[i] = tally{rows: int64(len(batches[i].rows)), bytes: b}
		return batches[i].node.DB.BulkInsert(step.Dest, batches[i].rows)
	}); err != nil {
		return err
	}
	var rows, bytes, maxNode int64
	for _, t := range tallies {
		rows += t.rows
		bytes += t.bytes
		if t.bytes > maxNode {
			maxNode = t.bytes
		}
	}

	a.Metrics.add(StepMetric{
		Move: step.MoveKind, IsMove: true,
		Rows: rows, Bytes: bytes, HashedRow: hashed,
		MaxNodeBytes: maxNode,
		Duration:     time.Since(start),
	})
	return nil
}

// destFor returns the nodes receiving a move's rows and the temp table's
// catalog placement.
func (a *Appliance) destFor(step dsql.Step) ([]*Node, catalog.Distribution) {
	switch step.MoveKind {
	case cost.Shuffle, cost.Trim:
		return a.Compute, catalog.Distribution{Kind: catalog.DistHash, Column: step.HashCol}
	case cost.Broadcast, cost.ControlNodeMove, cost.ReplicatedBroadcast:
		return a.Compute, catalog.Distribution{Kind: catalog.DistReplicated}
	default: // PartitionMove, RemoteCopySingle
		return append([]*Node{}, a.Control), catalog.Distribution{Kind: catalog.DistReplicated}
	}
}

// executeReturn runs the final SQL and assembles the client result,
// merging per-node streams in node order, then applying the plan's order
// spec and TOP — so the merged relation is identical under any worker
// schedule.
func (a *Appliance) executeReturn(ctx context.Context, step dsql.Step, tree *algebra.Tree, p *dsql.Plan, start time.Time) (*Result, error) {
	sources := a.sourceNodes(step)
	rels, err := a.runOnNodes(ctx, tree, sources)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: p.OutCols}
	var bytes int64
	for _, rel := range rels {
		for _, r := range rel.Rows {
			bytes += int64(r.Width())
		}
		out.Rows = append(out.Rows, rel.Rows...)
	}
	if len(p.OrderBy) > 0 {
		keys := p.OrderBy
		sort.SliceStable(out.Rows, func(i, j int) bool {
			for _, k := range keys {
				c := types.Compare(out.Rows[i][k.Pos], out.Rows[j][k.Pos])
				if k.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if p.Top > 0 && int64(len(out.Rows)) > p.Top {
		out.Rows = out.Rows[:p.Top]
	}
	a.Metrics.add(StepMetric{
		Rows: int64(len(out.Rows)), Bytes: bytes,
		Duration: time.Since(start),
	})
	return out, nil
}

package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// workers returns the effective worker count for n node-local tasks: the
// appliance's Parallelism knob (0 = GOMAXPROCS, 1 = strictly serial),
// never more than the task count.
func (a *Appliance) workers(n int) int {
	p := a.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// parallelFor runs fn(ctx, i) for every i in [0, n) on up to w worker
// goroutines. Errors are collected per index; the first failure cancels
// the derived context so unstarted tasks are skipped. With w <= 1 the
// loop degenerates to a plain serial for-loop (no goroutines), which is
// the reference path the differential harness compares against.
//
// The returned error is the lowest-index failure among tasks that ran,
// matching what the serial loop would have reported when every task runs.
func parallelFor(ctx context.Context, n, w int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					continue // cancelled: drain remaining indices
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sleepCtx waits for d unless the context ends first, returning the
// context's error in that case. It backs retry backoff and slow faults,
// so a step timeout or caller cancel cuts both short.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// simulateLatency models the control-node → compute-node dispatch round
// trip of one step (network hop + remote statement setup). It returns
// early if the step was cancelled by another node's failure.
func simulateLatency(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

SELECT COUNT(*) AS cnt
FROM ch00, ch01, ch02, ch03
WHERE k0 = f1
  AND k1 = f2
  AND k2 = f3
  AND v0 <= 887
  AND v1 <= 370
  AND v3 <= 503

package planverify

import (
	"strings"

	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
)

// CheckDSQL verifies dataflow soundness over the serial step sequence:
// step shape and ordering, temp-table def-before-use, orphan temps,
// move placement consistency, base-table existence against the shell
// catalog, and — when the plan tree is supplied — agreement between
// the step list's movements and the tree's.
func CheckDSQL(p *dsql.Plan, plan *core.Plan, shell *catalog.Shell) []Violation {
	if p == nil || len(p.Steps) == 0 {
		return []Violation{violation(CodeReturnMissing, "plan has no steps")}
	}
	var out []Violation
	out = append(out, checkStepOrder(p)...)
	out = append(out, checkTempFlow(p)...)
	out = append(out, checkMoveSteps(p)...)
	if shell != nil {
		out = append(out, checkBaseTables(p, shell)...)
	}
	if plan != nil && plan.Root != nil {
		out = append(out, checkMoveSet(p, plan)...)
	}
	return out
}

// checkStepOrder requires dense sequential IDs and a single, final
// Return step.
func checkStepOrder(p *dsql.Plan) []Violation {
	var out []Violation
	returns := 0
	for i, s := range p.Steps {
		if s.ID != i {
			out = append(out, stepViolation(CodeStepIDOrder, s.ID,
				"step at position %d carries id %d", i, s.ID))
		}
		if s.Kind == dsql.StepReturn {
			returns++
			if i != len(p.Steps)-1 {
				out = append(out, stepViolation(CodeReturnNotLast, s.ID,
					"return step at position %d of %d", i, len(p.Steps)))
			}
		}
	}
	switch {
	case returns == 0:
		out = append(out, violation(CodeReturnMissing, "no return step in %d steps", len(p.Steps)))
	case returns > 1:
		out = append(out, violation(CodeReturnNotLast, "%d return steps", returns))
	}
	return out
}

// checkTempFlow verifies temp-table dataflow: unique destinations,
// def strictly before use, no dangling references, no orphans.
func checkTempFlow(p *dsql.Plan) []Violation {
	var out []Violation
	defined := map[string]int{} // temp name → defining step position
	for i, s := range p.Steps {
		if s.Kind != dsql.StepMove || s.Dest == "" {
			continue
		}
		if prev, dup := defined[s.Dest]; dup {
			out = append(out, stepViolation(CodeTempRedefined, s.ID,
				"destination %s already produced by step %d", s.Dest, prev))
			continue
		}
		defined[s.Dest] = i
	}
	used := map[string]bool{}
	for i, s := range p.Steps {
		for _, ref := range tempRefs(s.SQL) {
			used[ref] = true
			def, ok := defined[ref]
			switch {
			case !ok:
				out = append(out, stepViolation(CodeTempUnknown, s.ID,
					"reads %s which no step produces", ref))
			case def >= i:
				out = append(out, stepViolation(CodeTempUseBeforeDef, s.ID,
					"reads %s produced later by step %d", ref, p.Steps[def].ID))
			}
		}
	}
	for dest, i := range defined {
		if !used[dest] {
			out = append(out, stepViolation(CodeTempOrphan, p.Steps[i].ID,
				"produces %s which no step reads", dest))
		}
	}
	return out
}

// checkMoveSteps verifies each move step's fields against its kind.
func checkMoveSteps(p *dsql.Plan) []Violation {
	var out []Violation
	for _, s := range p.Steps {
		if s.Kind != dsql.StepMove {
			if s.Dest != "" {
				out = append(out, stepViolation(CodeMoveStepShape, s.ID,
					"return step carries destination %s", s.Dest))
			}
			continue
		}
		if s.Dest == "" || len(s.DestCols) == 0 {
			out = append(out, stepViolation(CodeMoveStepShape, s.ID,
				"move step without destination schema"))
			continue
		}
		if !s.Idempotent {
			// A DMS step materializes into a private temp table; marking
			// it non-retryable breaks the engine's recovery contract.
			out = append(out, stepViolation(CodeMoveStepShape, s.ID,
				"move step not marked idempotent"))
		}
		wantSrc, known := moveSourceKind[s.MoveKind]
		if !known {
			out = append(out, stepViolation(CodeMoveStepShape, s.ID,
				"unknown move kind %v", s.MoveKind))
			continue
		}
		if s.Where != wantSrc {
			out = append(out, stepViolation(CodeMoveStepShape, s.ID,
				"%v sourced from %s placement (needs %s)", s.MoveKind,
				distKindName(s.Where), distKindName(wantSrc)))
		}
		hashing := s.MoveKind == cost.Shuffle || s.MoveKind == cost.Trim
		switch {
		case hashing && s.HashCol == "":
			out = append(out, stepViolation(CodeMoveStepShape, s.ID,
				"%v without a routing column", s.MoveKind))
		case hashing && !hasDestCol(s, s.HashCol):
			out = append(out, stepViolation(CodeMoveStepShape, s.ID,
				"routing column %s absent from destination %s", s.HashCol, s.Dest))
		case !hashing && s.HashCol != "":
			out = append(out, stepViolation(CodeMoveStepShape, s.ID,
				"%v carries routing column %s", s.MoveKind, s.HashCol))
		}
	}
	return out
}

// checkBaseTables resolves every [dbo] reference against the catalog.
func checkBaseTables(p *dsql.Plan, shell *catalog.Shell) []Violation {
	var out []Violation
	for _, s := range p.Steps {
		for _, name := range bracketRefs(s.SQL, "[dbo].[") {
			if shell.Table(name) == nil {
				out = append(out, stepViolation(CodeUnknownBaseTable, s.ID,
					"references [dbo].[%s] which the catalog does not define", name))
			}
		}
	}
	return out
}

// checkMoveSet compares the step list's move kinds against the plan
// tree's distinct movements. Shared subplans alias one Option and
// materialize once, so distinct tree movements and move steps must
// agree exactly.
func checkMoveSet(p *dsql.Plan, plan *core.Plan) []Violation {
	tree := map[cost.MoveKind]int{}
	seen := map[*core.Option]bool{}
	var walk func(o *core.Option)
	walk = func(o *core.Option) {
		if seen[o] {
			return
		}
		seen[o] = true
		if o.Move != nil {
			tree[o.Move.Kind]++
		}
		for _, in := range o.Inputs {
			walk(in)
		}
	}
	walk(plan.Root)
	steps := map[cost.MoveKind]int{}
	for _, s := range p.Steps {
		if s.Kind == dsql.StepMove {
			steps[s.MoveKind]++
		}
	}
	var out []Violation
	for kind, n := range tree {
		if steps[kind] != n {
			out = append(out, violation(CodeMoveSetMismatch,
				"plan tree has %d distinct %v movements, step list has %d", n, kind, steps[kind]))
		}
	}
	for kind, n := range steps {
		if tree[kind] == 0 {
			out = append(out, violation(CodeMoveSetMismatch,
				"step list has %d %v movements absent from the plan tree", n, kind))
		}
	}
	return out
}

func hasDestCol(s dsql.Step, name string) bool {
	for _, c := range s.DestCols {
		if c.Name == name {
			return true
		}
	}
	return false
}

// tempRefs extracts temp-table names referenced as [tempdb].[NAME].
func tempRefs(sql string) []string { return bracketRefs(sql, "[tempdb].[") }

// bracketRefs extracts the bracketed identifiers following each
// occurrence of prefix (e.g. "[dbo].[" or "[tempdb].[").
func bracketRefs(sql, prefix string) []string {
	var out []string
	for rest := sql; ; {
		i := strings.Index(rest, prefix)
		if i < 0 {
			return out
		}
		rest = rest[i+len(prefix):]
		j := strings.IndexByte(rest, ']')
		if j < 0 {
			return out
		}
		out = append(out, rest[:j])
		rest = rest[j+1:]
	}
}

package difftest

import "pdwqo"

// The helpers below are the exported face of this package's comparison
// machinery for sibling certification suites (internal/difftest/serverdiff)
// that live in their own directory so each corpus sweep gets its own test
// binary — and therefore its own -timeout budget — instead of stacking
// onto this package's already-long run.

// CanonRow renders a result row in the canonical form every differential
// comparison in this package uses: each value's String() joined with "|".
func CanonRow(row pdwqo.Row) string { return canonRow(row) }

// DiffResults asserts exact row-for-row equality between two library
// results, exactly as the in-package sweeps do.
func DiffResults(name string, par int, s, p *pdwqo.Result) error {
	return diffResults(name, par, s, p)
}

// LeakedTables scans every node for temp or staging tables; after any
// execution — successful, failed or retried — there must be none.
func LeakedTables(db *pdwqo.DB) []string { return leakedTables(db) }

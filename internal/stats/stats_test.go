package stats

import (
	"math"
	"math/rand"
	"testing"

	"pdwqo/internal/types"
)

func intCol(vals ...int64) []types.Value {
	out := make([]types.Value, len(vals))
	for i, v := range vals {
		out[i] = types.NewInt(v)
	}
	return out
}

func seqCol(n int) []types.Value {
	out := make([]types.Value, n)
	for i := range out {
		out[i] = types.NewInt(int64(i))
	}
	return out
}

func TestBuildColumnBasics(t *testing.T) {
	c := BuildColumn(intCol(5, 1, 3, 3, 2, 4))
	if c.RowCount != 6 || c.NullCount != 0 {
		t.Fatalf("counts: %+v", c)
	}
	if c.NDV != 5 {
		t.Errorf("NDV = %v, want 5", c.NDV)
	}
	if c.Min.Int() != 1 || c.Max.Int() != 5 {
		t.Errorf("min/max = %v/%v", c.Min, c.Max)
	}
	total := 0.0
	for _, b := range c.Buckets {
		total += b.RowCount
	}
	if total != 6 {
		t.Errorf("bucket rows sum to %v", total)
	}
}

func TestBuildColumnNulls(t *testing.T) {
	c := BuildColumn([]types.Value{types.Null, types.NewInt(1), types.Null})
	if c.NullCount != 2 || c.NDV != 1 {
		t.Errorf("null handling: %+v", c)
	}
	if got := c.SelectivityIsNull(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("IS NULL selectivity = %v", got)
	}
	empty := BuildColumn(nil)
	if empty.RowCount != 0 || len(empty.Buckets) != 0 {
		t.Errorf("empty column: %+v", empty)
	}
}

func TestBuildColumnBucketInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vals := make([]types.Value, 10000)
	for i := range vals {
		vals[i] = types.NewInt(r.Int63n(500))
	}
	c := BuildColumn(vals)
	if len(c.Buckets) > DefaultBuckets {
		t.Fatalf("too many buckets: %d", len(c.Buckets))
	}
	rows, ndv := 0.0, 0.0
	var prev types.Value = types.Null
	for _, b := range c.Buckets {
		if !prev.IsNull() && types.Compare(b.UpperBound, prev) <= 0 {
			t.Fatal("bucket bounds not strictly increasing")
		}
		prev = b.UpperBound
		rows += b.RowCount
		ndv += b.NDV
	}
	if rows != 10000 {
		t.Errorf("rows sum = %v", rows)
	}
	if math.Abs(ndv-c.NDV) > 1e-6 {
		t.Errorf("bucket NDVs sum to %v, column NDV %v", ndv, c.NDV)
	}
	if types.Compare(c.Buckets[len(c.Buckets)-1].UpperBound, c.Max) != 0 {
		t.Error("last bound must equal max")
	}
}

func TestBuildTable(t *testing.T) {
	tbl, err := BuildTable(map[string][]types.Value{
		"a": seqCol(100),
		"b": intCol(append(make([]int64, 99), 1)...),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount != 100 {
		t.Errorf("rowcount = %v", tbl.RowCount)
	}
	if tbl.AvgRowWidth != 16 {
		t.Errorf("avg row width = %v, want 16", tbl.AvgRowWidth)
	}
	if tbl.Column("A") == nil {
		t.Error("column lookup must be case-insensitive")
	}
	if _, err := BuildTable(map[string][]types.Value{"a": seqCol(2), "b": seqCol(3)}); err == nil {
		t.Error("mismatched lengths must error")
	}
}

func TestSelectivityEq(t *testing.T) {
	// 1000 rows, values 0..99 uniform → eq selectivity ≈ 1%.
	vals := make([]types.Value, 1000)
	for i := range vals {
		vals[i] = types.NewInt(int64(i % 100))
	}
	c := BuildColumn(vals)
	got := c.SelectivityEq(types.NewInt(50))
	if got < 0.005 || got > 0.02 {
		t.Errorf("eq selectivity = %v, want ≈0.01", got)
	}
	if c.SelectivityEq(types.NewInt(1000)) != 0 {
		t.Error("out-of-range must be 0")
	}
	if c.SelectivityEq(types.Null) != 0 {
		t.Error("= NULL must be 0")
	}
	var nilCol *Column
	if nilCol.SelectivityEq(types.NewInt(1)) != DefaultEqSel {
		t.Error("nil column default")
	}
}

func TestSelectivityRange(t *testing.T) {
	c := BuildColumn(seqCol(1000))
	cases := []struct {
		lo, hi   types.Value
		want     float64
		tolerant float64
	}{
		{types.NewInt(0), types.NewInt(499), 0.5, 0.05},
		{types.NewInt(900), types.Null, 0.1, 0.05},
		{types.Null, types.NewInt(99), 0.1, 0.05},
		{types.NewInt(250), types.NewInt(749), 0.5, 0.05},
		{types.Null, types.Null, 1.0, 0.01},
	}
	for _, cse := range cases {
		got := c.SelectivityRange(cse.lo, cse.hi, true, true)
		if math.Abs(got-cse.want) > cse.tolerant {
			t.Errorf("range [%v,%v] = %v, want ≈%v", cse.lo, cse.hi, got, cse.want)
		}
	}
}

func TestSelectivityRangeDates(t *testing.T) {
	// Dates spanning 1992..1998; one-year slice ≈ 1/7.
	vals := make([]types.Value, 0, 7*365)
	base := types.MustParseDate("1992-01-01").DateDays()
	for d := int64(0); d < 7*365; d++ {
		vals = append(vals, types.NewDate(base+d))
	}
	c := BuildColumn(vals)
	lo := types.MustParseDate("1994-01-01")
	hi := types.MustParseDate("1995-01-01")
	got := c.SelectivityRange(lo, hi, true, false)
	if math.Abs(got-1.0/7) > 0.03 {
		t.Errorf("one-year slice = %v, want ≈%v", got, 1.0/7)
	}
}

func TestSelectivityLikePrefix(t *testing.T) {
	words := []string{"almond", "antique", "forest", "frosted", "green", "lace", "metallic"}
	vals := make([]types.Value, 0, 7000)
	for i := 0; i < 1000; i++ {
		for _, w := range words {
			vals = append(vals, types.NewString(w))
		}
	}
	c := BuildColumn(vals)
	got := c.SelectivityLikePrefix("forest")
	if got <= 0 || got > 0.35 {
		t.Errorf("LIKE 'forest%%' = %v, want small fraction", got)
	}
	if c.SelectivityLikePrefix("") != 1 {
		t.Error("empty prefix matches everything")
	}
	if c.SelectivityLikePrefix("zzz") > 0.01 {
		t.Error("absent prefix should be ≈0")
	}
}

func TestPrefixUpperBound(t *testing.T) {
	if prefixUpperBound("abc") != "abd" {
		t.Errorf("got %q", prefixUpperBound("abc"))
	}
	if prefixUpperBound("ab\xff") != "ac" {
		t.Errorf("got %q", prefixUpperBound("ab\xff"))
	}
}

func TestMergeTablesHashColumn(t *testing.T) {
	// 4 nodes, hash column: disjoint key ranges, NDV must add exactly.
	locals := make([]*Table, 4)
	for n := 0; n < 4; n++ {
		vals := make([]types.Value, 250)
		for i := range vals {
			vals[i] = types.NewInt(int64(n*250 + i))
		}
		tbl, err := BuildTable(map[string][]types.Value{"k": vals})
		if err != nil {
			t.Fatal(err)
		}
		locals[n] = tbl
	}
	g := MergeTables(locals, "k")
	if g.RowCount != 1000 {
		t.Errorf("rowcount = %v", g.RowCount)
	}
	k := g.Column("k")
	if k.NDV != 1000 {
		t.Errorf("hash-column NDV = %v, want exact 1000", k.NDV)
	}
	if k.Min.Int() != 0 || k.Max.Int() != 999 {
		t.Errorf("min/max = %v/%v", k.Min, k.Max)
	}
	rows := 0.0
	for _, b := range k.Buckets {
		rows += b.RowCount
	}
	if math.Abs(rows-1000) > 1e-6 {
		t.Errorf("merged bucket rows = %v", rows)
	}
}

func TestMergeTablesNonHashColumn(t *testing.T) {
	// Non-hash columns spread quasi-randomly across nodes (the table is
	// hashed on another column). Each node sees 400 rows drawn from a
	// domain of 200 values; the Cardenas inversion must recover ≈200, far
	// below the naive sum of local NDVs (≈790).
	r := rand.New(rand.NewSource(5))
	locals := make([]*Table, 4)
	for n := range locals {
		vals := make([]types.Value, 400)
		for i := range vals {
			vals[i] = types.NewInt(r.Int63n(200))
		}
		tbl, err := BuildTable(map[string][]types.Value{"c": vals})
		if err != nil {
			t.Fatal(err)
		}
		locals[n] = tbl
	}
	g := MergeTables(locals, "k")
	c := g.Column("c")
	if c.NDV < 150 || c.NDV > 280 {
		t.Errorf("non-hash NDV = %v, want ≈200", c.NDV)
	}
}

func TestMergeSaturatedLocalsAssumeDisjoint(t *testing.T) {
	// When every local value is distinct, overlap is unobservable; the
	// merge assumes disjoint locals (the maximum-likelihood answer under
	// the uniformity assumption).
	locals := make([]*Table, 4)
	for n := range locals {
		tbl, err := BuildTable(map[string][]types.Value{"c": seqCol(100)})
		if err != nil {
			t.Fatal(err)
		}
		locals[n] = tbl
	}
	g := MergeTables(locals, "k")
	if got := g.Column("c").NDV; got != 400 {
		t.Errorf("saturated merge NDV = %v, want 400", got)
	}
}

func TestExpectedDistinctInversion(t *testing.T) {
	for _, d := range []float64{50, 300, 5000} {
		for _, n := range []float64{100, 1000} {
			obs := ExpectedDistinct(d, n)
			if obs >= n*0.999 {
				continue // saturated; inversion not identifiable
			}
			got := invertExpectedDistinct(obs, n, obs, d*10)
			if math.Abs(got-d)/d > 0.05 {
				t.Errorf("invert(E[distinct(%v,%v)]) = %v", d, n, got)
			}
		}
	}
}

func TestMergePreservesEstimates(t *testing.T) {
	// Merged global histogram should estimate ranges about as well as a
	// directly-built global histogram (E12's correctness core).
	r := rand.New(rand.NewSource(42))
	all := make([]types.Value, 0, 8000)
	locals := make([]*Table, 8)
	for n := range locals {
		vals := make([]types.Value, 1000)
		for i := range vals {
			vals[i] = types.NewInt(r.Int63n(10000))
		}
		all = append(all, vals...)
		tbl, err := BuildTable(map[string][]types.Value{"v": vals})
		if err != nil {
			t.Fatal(err)
		}
		locals[n] = tbl
	}
	direct, err := BuildTable(map[string][]types.Value{"v": all})
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeTables(locals, "")
	for _, q := range []struct{ lo, hi int64 }{{0, 999}, {2500, 7499}, {9000, 9999}} {
		d := direct.Column("v").SelectivityRange(types.NewInt(q.lo), types.NewInt(q.hi), true, true)
		m := merged.Column("v").SelectivityRange(types.NewInt(q.lo), types.NewInt(q.hi), true, true)
		if math.Abs(d-m) > 0.05 {
			t.Errorf("range [%d,%d]: direct %v vs merged %v", q.lo, q.hi, d, m)
		}
	}
}

func TestJoinCardinality(t *testing.T) {
	l := BuildColumn(seqCol(1000))          // PK side
	r := BuildColumn(func() []types.Value { // FK side, 10 refs per key
		out := make([]types.Value, 0, 10000)
		for i := 0; i < 10000; i++ {
			out = append(out, types.NewInt(int64(i%1000)))
		}
		return out
	}())
	got := JoinCardinality(1000, 10000, l, r)
	if math.Abs(got-10000) > 500 {
		t.Errorf("PK-FK join card = %v, want ≈10000", got)
	}
	if JoinCardinality(10, 10, nil, nil) != 10 {
		t.Errorf("no-stats fallback: %v", JoinCardinality(10, 10, nil, nil))
	}
}

func TestDistinctAfterFilter(t *testing.T) {
	if got := DistinctAfterFilter(100, 1000, 1000); got != 100 {
		t.Errorf("no filter: %v", got)
	}
	got := DistinctAfterFilter(100, 1000, 10)
	if got <= 0 || got > 10.5 {
		t.Errorf("heavy filter: %v", got)
	}
	if DistinctAfterFilter(0, 0, 5) != 5 {
		t.Error("degenerate fallback")
	}
}

func TestGroupCardinality(t *testing.T) {
	if GroupCardinality(1000, 1000, nil) != 1 {
		t.Error("scalar aggregate has one group")
	}
	got := GroupCardinality(1000, 1000, []float64{50})
	if math.Abs(got-50) > 1 {
		t.Errorf("single key: %v", got)
	}
	got = GroupCardinality(100, 1000, []float64{1000, 1000})
	if got != 100 {
		t.Errorf("capped by rows: %v", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	g := MergeTables(nil, "")
	if g.RowCount != 0 {
		t.Error("empty merge")
	}
}

package a

import (
	"pdwqo/internal/exec"
	"pdwqo/internal/types"
)

func sink(args ...any) {}

func blankErr(v types.Value) types.Value {
	out, _ := exec.CastValue(v, types.KindInt) // want `error result of CastValue is discarded`
	return out
}

func handled(v types.Value) (types.Value, error) {
	out, err := exec.CastValue(v, types.KindInt)
	if err != nil {
		return types.Null, err
	}
	return out, nil
}

func returned(v types.Value) (types.Value, error) {
	return exec.CastValue(v, types.KindDate)
}

func statementDrop(v types.Value) {
	exec.CastValue(v, types.KindInt) // want `CastValue used as a statement drops its result and its error`
}

func compareBlank(a, b types.Value) int {
	c, _ := types.CompareChecked(a, b) // want `error result of CompareChecked is discarded`
	return c
}

func compareHandled(a, b types.Value) (int, error) {
	return types.CompareChecked(a, b)
}

// loopCarried reads err at the top of the next iteration; the back-edge
// approximation must count that as a use.
func loopCarried(vs []types.Value) error {
	var err error
	for _, v := range vs {
		if err != nil {
			return err
		}
		_, err = exec.CastValue(v, types.KindInt)
	}
	return err
}

// shadowedRead: the first err is read before the second assignment.
func shadowedRead(a, b types.Value) types.Value {
	out, err := exec.CastValue(a, types.KindInt)
	sink(err)
	out2, err := exec.CastValue(b, types.KindInt) // want `error result of CastValue is assigned to err but never read`
	sink(out, out2)
	return out2
}

func allowDirective(v types.Value) types.Value {
	//pdwlint:allow lostcast
	out, _ := exec.CastValue(v, types.KindInt)
	return out
}

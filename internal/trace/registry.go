package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a small named-counter store: the tracer's counters, fed by
// the optimizer (options considered/retained, waves) and by the engine's
// Metrics (steps, bytes moved, retries, faults). A nil *Registry is the
// disabled registry; every method no-ops or returns zero values.
type Registry struct {
	mu sync.Mutex
	c  map[string]int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{c: map[string]int64{}} }

// Add increments a counter by delta (creating it at zero first).
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.c[name] += delta
	r.mu.Unlock()
}

// Set overwrites a counter.
func (r *Registry) Set(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.c[name] = v
	r.mu.Unlock()
}

// Get reads one counter (0 when absent or disabled).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c[name]
}

// Snapshot copies all counters.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.c))
	for k, v := range r.c {
		out[k] = v
	}
	return out
}

// Names returns the counter names in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the counters deterministically, one "name=value" per line.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	var b strings.Builder
	for _, k := range r.Names() {
		fmt.Fprintf(&b, "%s=%d\n", k, snap[k])
	}
	return b.String()
}

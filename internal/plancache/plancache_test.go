package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// compileCounter returns a compile func that counts invocations and
// returns val.
func compileCounter(n *atomic.Int64, val any) func() (any, error) {
	return func() (any, error) {
		n.Add(1)
		return val, nil
	}
}

func TestDoHitMiss(t *testing.T) {
	c := New(4)
	var n atomic.Int64
	v, out, err := c.Do("k", 1, compileCounter(&n, "plan"))
	if err != nil || out != OutcomeMiss || v != "plan" {
		t.Fatalf("first Do = (%v, %v, %v), want (plan, miss, nil)", v, out, err)
	}
	v, out, err = c.Do("k", 1, compileCounter(&n, "other"))
	if err != nil || out != OutcomeHit || v != "plan" {
		t.Fatalf("second Do = (%v, %v, %v), want cached plan", v, out, err)
	}
	if n.Load() != 1 {
		t.Errorf("compiled %d times, want 1", n.Load())
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Compiles != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestDoCompileErrorNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	_, _, err := c.Do("k", 1, func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Error("error result must not be cached")
	}
	var n atomic.Int64
	if _, out, _ := c.Do("k", 1, compileCounter(&n, 1)); out != OutcomeMiss || n.Load() != 1 {
		t.Error("next Do after error must recompile")
	}
	if m := c.Metrics(); m.CompileErrors != 1 {
		t.Errorf("CompileErrors = %d, want 1", m.CompileErrors)
	}
}

func TestGetPut(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("tmpl", 1); ok {
		t.Fatal("Get on empty cache must miss")
	}
	c.Put("tmpl", 1, "template")
	v, ok := c.Get("tmpl", 1)
	if !ok || v != "template" {
		t.Fatalf("Get = (%v, %v)", v, ok)
	}
	// A later epoch invalidates the entry.
	if _, ok := c.Get("tmpl", 2); ok {
		t.Fatal("Get at a newer epoch must miss")
	}
	m := c.Metrics()
	if m.Invalidations == 0 {
		t.Errorf("expected an invalidation, metrics = %+v", m)
	}
}

func TestPutStaleDropped(t *testing.T) {
	c := New(4)
	c.Put("a", 5, "v5")
	c.Put("b", 3, "stale") // epoch 3 < observed high-water 5
	if _, ok := c.Get("b", 5); ok {
		t.Error("stale Put must not be stored")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1, 1)
	c.Put("b", 1, 2)
	c.Get("a", 1) // refresh a: b is now LRU
	c.Put("c", 1, 3)
	if _, ok := c.Get("b", 1); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a", 1); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c", 1); !ok {
		t.Error("c should have survived")
	}
	if m := c.Metrics(); m.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", m.Evictions)
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Errorf("Len=%d Capacity=%d", c.Len(), c.Capacity())
	}
}

func TestPutRefreshExisting(t *testing.T) {
	c := New(2)
	c.Put("a", 1, "old")
	c.Put("a", 1, "new")
	if v, ok := c.Get("a", 1); !ok || v != "new" {
		t.Fatalf("Get = (%v, %v), want refreshed value", v, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestEpochSweep(t *testing.T) {
	c := New(8)
	c.Put("a", 1, 1)
	c.Put("b", 1, 2)
	if c.Epoch() != 1 {
		t.Fatalf("Epoch = %d", c.Epoch())
	}
	// Observing a newer epoch sweeps everything older.
	var n atomic.Int64
	c.Do("c", 3, compileCounter(&n, 3))
	if c.Epoch() != 3 {
		t.Errorf("Epoch = %d, want 3", c.Epoch())
	}
	if c.Len() != 1 {
		t.Errorf("old-epoch entries not swept: Len = %d", c.Len())
	}
	if m := c.Metrics(); m.Invalidations != 2 {
		t.Errorf("Invalidations = %d, want 2", m.Invalidations)
	}
}

func TestDoStaleEntryInvalidated(t *testing.T) {
	c := New(4)
	var n atomic.Int64
	c.Do("k", 1, compileCounter(&n, "v1"))
	v, out, err := c.Do("k", 2, compileCounter(&n, "v2"))
	if err != nil || out != OutcomeMiss || v != "v2" {
		t.Fatalf("Do at newer epoch = (%v, %v, %v), want recompile", v, out, err)
	}
	if n.Load() != 2 {
		t.Errorf("compiled %d times, want 2", n.Load())
	}
}

func TestDefaultCapacity(t *testing.T) {
	if c := New(0); c.Capacity() != DefaultCapacity {
		t.Errorf("Capacity = %d, want %d", c.Capacity(), DefaultCapacity)
	}
	if c := New(-5); c.Capacity() != DefaultCapacity {
		t.Errorf("Capacity = %d, want %d", c.Capacity(), DefaultCapacity)
	}
}

func TestPurge(t *testing.T) {
	c := New(4)
	c.Put("a", 1, 1)
	c.Put("b", 1, 2)
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after Purge = %d", c.Len())
	}
	if c.Epoch() != 1 {
		t.Errorf("Purge must not touch the epoch: %d", c.Epoch())
	}
	if m := c.Metrics(); m.Invalidations != 2 {
		t.Errorf("Invalidations = %d, want 2", m.Invalidations)
	}
}

func TestSingleflightShares(t *testing.T) {
	c := New(4)
	var compiles atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	// First caller blocks inside compile.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do("k", 1, func() (any, error) {
			compiles.Add(1)
			close(started)
			<-release
			return "slow", nil
		})
	}()
	<-started
	// 8 more callers must join the in-flight compile, not start their own.
	results := make([]any, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do("k", 1, compileCounter(&compiles, "dup"))
			if err != nil || out != OutcomeShared {
				t.Errorf("waiter %d: (%v, %v, %v)", i, v, out, err)
			}
			results[i] = v
		}(i)
	}
	// A joiner increments Shared before parking on the flight, so once the
	// counter reaches 8 every waiter is inside the singleflight; only then
	// release the compile.
	for c.Metrics().Shared < 8 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compiled %d times, want 1", n)
	}
	for i, v := range results {
		if v != "slow" {
			t.Errorf("waiter %d got %v", i, v)
		}
	}
	if m := c.Metrics(); m.Shared != 8 {
		t.Errorf("expected 8 shared flights, metrics = %+v", m)
	}
}

func TestStaleOnArrivalNotServedLater(t *testing.T) {
	c := New(4)
	inCompile := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do("k", 1, func() (any, error) {
			close(inCompile)
			<-release
			return "stale-plan", nil
		})
	}()
	<-inCompile
	// The epoch advances while the compile is in flight.
	c.Put("other", 2, "bump")
	close(release)
	<-done
	if _, ok := c.Get("k", 2); ok {
		t.Error("a plan compiled under epoch 1 must not be served at epoch 2")
	}
	if _, ok := c.Get("k", 1); ok {
		t.Error("stale-on-arrival store must be dropped entirely")
	}
}

// TestStampede is the -race stress demanded by the PR: 64 goroutines
// hammer one hot fingerprint while a quarter of them also rotate through
// a stream of fresh misses, and between waves a writer bumps the stats
// epoch. Within each epoch wave the requests are fully concurrent, so
// the singleflight must collapse the hot key's stampede to one compile.
// Invariants: exactly one compile per (key, epoch) ever runs, no caller
// is served a value compiled under a different (key, epoch) than it
// asked for, and the whole thing terminates (no deadlock).
//
// The waves are barriered because exactly-once per (key, epoch) is only
// well-defined while that epoch is current: once the epoch moves on, the
// cache is free (and required) to drop the pair, and a hypothetical
// straggler still asking for it would legitimately recompile.
func TestStampede(t *testing.T) {
	c := New(4096) // roomy: eviction would legitimately force recompiles
	const (
		goroutines = 64
		rounds     = 25
		epochs     = 8
	)
	type ck struct {
		key   string
		epoch uint64
	}
	var mu sync.Mutex
	compiled := map[ck]int{}

	for e := uint64(1); e <= epochs; e++ { // the "writer": one bump per wave
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					key := "hot"
					if g%4 == 0 && r%2 == 1 {
						key = fmt.Sprintf("cold-%d-%d-%d", e, g, r)
					}
					want := ck{key, e}
					v, _, err := c.Do(key, e, func() (any, error) {
						mu.Lock()
						compiled[want]++
						mu.Unlock()
						return want, nil
					})
					if err != nil {
						t.Errorf("Do: %v", err)
						return
					}
					if got := v.(ck); got != want {
						t.Errorf("asked (%s, %d), served (%s, %d)", key, e, got.key, got.epoch)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	mu.Lock()
	defer mu.Unlock()
	for k, n := range compiled {
		if n != 1 {
			t.Errorf("(%s, %d) compiled %d times, want exactly once", k.key, k.epoch, n)
		}
	}
	m := c.Metrics()
	if int(m.Compiles) != len(compiled) {
		t.Errorf("Compiles = %d, distinct (key, epoch) = %d", m.Compiles, len(compiled))
	}
	if m.Evictions != 0 {
		t.Errorf("unexpected evictions: %+v", m)
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{OutcomeMiss: "miss", OutcomeHit: "hit", OutcomeShared: "shared"}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestOldEpochCallerInvalidates(t *testing.T) {
	// A caller that read the epoch just before a bump can arrive with an
	// epoch older than a cached entry's. The entry must not be served to it
	// (it was compiled under a catalog the caller has not seen), and both
	// Do and Get treat it as a stale miss.
	c := New(4)
	c.Put("k", 2, "new")
	if _, ok := c.Get("k", 1); ok {
		t.Error("Get with an older epoch must not serve a newer entry")
	}
	c.Put("k", 2, "new")
	var n atomic.Int64
	if _, out, _ := c.Do("k", 1, compileCounter(&n, "old")); out != OutcomeMiss || n.Load() != 1 {
		t.Error("Do with an older epoch must recompile")
	}
}

func TestSharedFlightError(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do("k", 1, func() (any, error) {
			close(started)
			<-release
			return nil, boom
		})
		done <- err
	}()
	<-started
	waiter := make(chan error, 1)
	go func() {
		_, out, err := c.Do("k", 1, func() (any, error) { return "never", nil })
		if out != OutcomeShared {
			t.Errorf("outcome = %v, want shared", out)
		}
		waiter <- err
	}()
	for c.Metrics().Shared < 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-done; !errors.Is(err, boom) {
		t.Errorf("owner err = %v", err)
	}
	if err := <-waiter; !errors.Is(err, boom) {
		t.Errorf("waiter must see the shared compile error, got %v", err)
	}
}

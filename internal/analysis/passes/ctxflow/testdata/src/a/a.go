package a

import "context"

func blocking(ctx context.Context, n int) error { _ = ctx; _ = n; return nil }

func work(n int) int { return n + 1 }

// detached passes a fresh root context despite receiving one.
func detached(ctx context.Context) error {
	return blocking(context.Background(), 1) // want `detached receives a context parameter but passes context\.Background\(\)`
}

func detachedTODO(ctx context.Context) error {
	return blocking(context.TODO(), 1) // want `passes context\.TODO\(\)`
}

// threaded passes its own context: fine.
func threaded(ctx context.Context) error {
	return blocking(ctx, 1)
}

// derived flows through WithCancel: fine.
func derived(ctx context.Context) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return blocking(cctx, 1)
}

// rebound reassigns ctx from itself; the RHS read must bind to the
// parameter, not the assignment's own target.
func rebound(ctx context.Context) error {
	var cancel context.CancelFunc
	ctx, cancel = context.WithCancel(ctx)
	defer cancel()
	return blocking(ctx, 6)
}

// unusedCtx never reads ctx while calling context-accepting code.
func unusedCtx(ctx context.Context) error { // want `context parameter ctx is never used`
	bg := context.Background()
	return blocking(bg, 2)
}

// unusedNoCalls has no context-accepting callee, so an unused ctx is an
// interface obligation, not a broken chain.
func unusedNoCalls(ctx context.Context) int {
	return work(3)
}

// entryPoint has no ctx parameter; minting a root context is its job.
func entryPoint() error {
	return blocking(context.Background(), 4)
}

// allowDirective carries a reviewed justification.
func allowDirective(ctx context.Context) error {
	//pdwlint:allow ctxflow
	return blocking(context.Background(), 5)
}

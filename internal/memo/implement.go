package memo

import (
	"fmt"
	"math"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
)

// Serial cost model constants (arbitrary CPU-ish units per row). Only
// relative magnitudes matter: they steer join-order and algorithm choice
// in the serial plan, which the E3/E7 baselines compare against.
const (
	costScanRow    = 1.0
	costScanByte   = 0.01
	costFilterRow  = 0.2
	costComputeRow = 0.2
	costBuildRow   = 2.0
	costProbeRow   = 1.0
	costOutRow     = 0.3
	costNLPair     = 0.8
	costAggRow     = 2.0
	costSortRow    = 0.4
)

// Implement adds physical alternatives for every logical expression.
func (m *Memo) Implement() {
	for gi := 1; gi < len(m.Groups); gi++ {
		g := m.Groups[gi]
		for ei := 0; ei < len(g.Exprs); ei++ {
			e := g.Exprs[ei]
			if e.Physical {
				continue
			}
			for _, p := range m.implementations(e) {
				m.InsertExpr(p, g.ID)
			}
		}
	}
}

// implementations returns the physical expressions implementing e.
func (m *Memo) implementations(e *GroupExpr) []*GroupExpr {
	phys := func(algo string) *GroupExpr {
		return &GroupExpr{
			Op:       algebra.NewPhys(algo, e.Op),
			Children: append([]GroupID{}, e.Children...),
			Physical: true,
		}
	}
	switch op := e.Op.(type) {
	case *algebra.Get:
		return []*GroupExpr{phys(algebra.AlgoTableScan)}
	case *algebra.Values:
		return []*GroupExpr{phys(algebra.AlgoValuesScan)}
	case *algebra.Select:
		return []*GroupExpr{phys(algebra.AlgoFilter)}
	case *algebra.Project:
		return []*GroupExpr{phys(algebra.AlgoCompute)}
	case *algebra.Join:
		out := []*GroupExpr{}
		if hasCrossEquiConjunct(op, m.Groups[e.Children[0]].Props, m.Groups[e.Children[1]].Props) {
			out = append(out, phys(algebra.AlgoHashJoin))
		}
		if op.Kind != algebra.JoinFullOuter {
			out = append(out, phys(algebra.AlgoLoopJoin))
		} else if len(out) == 0 {
			out = append(out, phys(algebra.AlgoLoopJoin))
		}
		return out
	case *algebra.GroupBy:
		return []*GroupExpr{phys(algebra.AlgoHashAgg)}
	case *algebra.Sort:
		return []*GroupExpr{phys(algebra.AlgoSort)}
	case *algebra.UnionAll:
		return []*GroupExpr{phys(algebra.AlgoConcat)}
	}
	return nil
}

// hasCrossEquiConjunct reports whether the join has at least one equality
// pairing a left column with a right column — the hash join requirement.
func hasCrossEquiConjunct(j *algebra.Join, l, r *LogicalProps) bool {
	lCols := algebra.NewColSet()
	for _, c := range l.OutCols {
		lCols.Add(c.ID)
	}
	rCols := algebra.NewColSet()
	for _, c := range r.OutCols {
		rCols.Add(c.ID)
	}
	for _, conj := range algebra.Conjuncts(j.On) {
		if a, b, ok := algebra.EquiJoinSides(conj); ok {
			if (lCols.Has(a) && rCols.Has(b)) || (lCols.Has(b) && rCols.Has(a)) {
				return true
			}
		}
	}
	return false
}

// CostSerial computes the serial cost of every group's best physical
// expression (bottom-up over the group DAG) and records winners.
func (m *Memo) CostSerial() {
	state := make([]int8, len(m.Groups)) // 0 new, 1 in progress, 2 done
	var costGroup func(id GroupID) float64
	costGroup = func(id GroupID) float64 {
		g := m.Groups[id]
		switch state[id] {
		case 1:
			return math.Inf(1) // cycle guard
		case 2:
			if w := g.Winner(); w != nil {
				return w.Cost
			}
			return math.Inf(1)
		}
		state[id] = 1
		best := math.Inf(1)
		bestIdx := -1
		for i, e := range g.Exprs {
			if !e.Physical {
				continue
			}
			total := m.ownCost(g, e)
			ok := true
			for _, c := range e.Children {
				cc := costGroup(c)
				if math.IsInf(cc, 1) {
					ok = false
					break
				}
				total += cc
			}
			if !ok {
				continue
			}
			e.Cost = total
			if total < best {
				best = total
				bestIdx = i
			}
		}
		g.winner = bestIdx
		state[id] = 2
		return best
	}
	for gi := 1; gi < len(m.Groups); gi++ {
		if len(m.Groups[gi].Exprs) > 0 {
			costGroup(GroupID(gi))
		}
	}
}

// ownCost is the expression's own serial cost, excluding children.
func (m *Memo) ownCost(g *Group, e *GroupExpr) float64 {
	p, ok := e.Op.(*algebra.Phys)
	if !ok {
		return math.Inf(1)
	}
	out := g.Props
	var in0, in1 *LogicalProps
	if len(e.Children) > 0 {
		in0 = m.Groups[e.Children[0]].Props
	}
	if len(e.Children) > 1 {
		in1 = m.Groups[e.Children[1]].Props
	}
	switch p.Algo {
	case algebra.AlgoTableScan:
		return out.Rows*costScanRow + out.Rows*out.Width*costScanByte
	case algebra.AlgoValuesScan:
		return out.Rows * costScanRow
	case algebra.AlgoFilter:
		return in0.Rows * costFilterRow
	case algebra.AlgoCompute:
		return in0.Rows * costComputeRow
	case algebra.AlgoHashJoin:
		// Build on the right input, probe with the left.
		return in1.Rows*costBuildRow + in0.Rows*costProbeRow + out.Rows*costOutRow
	case algebra.AlgoLoopJoin:
		return in0.Rows*in1.Rows*costNLPair + out.Rows*costOutRow
	case algebra.AlgoHashAgg:
		return in0.Rows*costAggRow + out.Rows*costOutRow
	case algebra.AlgoSort:
		n := math.Max(in0.Rows, 1)
		return n * math.Log2(n+1) * costSortRow
	case algebra.AlgoConcat:
		return (in0.Rows + in1.Rows) * 0.01
	}
	return math.Inf(1)
}

// PhysPlan is an extracted physical plan tree with per-node properties.
type PhysPlan struct {
	Op       algebra.Operator
	Children []*PhysPlan
	Props    *LogicalProps
	Cost     float64
}

// String renders an indented plan.
func (p *PhysPlan) String() string {
	var b []byte
	var walk func(n *PhysPlan, depth int)
	walk = func(n *PhysPlan, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, n.Op.Fingerprint()...)
		b = append(b, fmt.Sprintf("  (rows=%.5g)", n.Props.Rows)...)
		b = append(b, '\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return string(b)
}

// BestPlan extracts the cheapest physical plan for the root group.
func (m *Memo) BestPlan() (*PhysPlan, error) {
	return m.extract(m.Root, map[GroupID]bool{})
}

func (m *Memo) extract(id GroupID, inProgress map[GroupID]bool) (*PhysPlan, error) {
	if inProgress[id] {
		return nil, fmt.Errorf("memo: cyclic plan extraction at group %d", id)
	}
	g := m.Groups[id]
	w := g.Winner()
	if w == nil {
		return nil, fmt.Errorf("memo: group %d has no physical winner", id)
	}
	inProgress[id] = true
	defer delete(inProgress, id)
	children := make([]*PhysPlan, len(w.Children))
	for i, c := range w.Children {
		cp, err := m.extract(c, inProgress)
		if err != nil {
			return nil, err
		}
		children[i] = cp
	}
	return &PhysPlan{Op: w.Op, Children: children, Props: g.Props, Cost: w.Cost}, nil
}

// Optimize runs the full serial pipeline over a normalized tree: insert,
// explore, implement, cost. budget caps exploration (0 = unlimited).
func Optimize(shell *catalog.Shell, tree *algebra.Tree, budget int) (*Memo, error) {
	return OptimizeSeeded(shell, tree, budget)
}

// OptimizeFixed runs the serial pipeline WITHOUT exploration: the tree's
// own shape is the only logical plan in the memo. This is the greedy
// large-join regime's lowering path — the join order was already fixed
// upstream (normalize.GreedyJoinOrder), so exploring alternatives would
// re-open exactly the search space the budget trip just abandoned. The
// PDW-side enumerator still runs over the fixed memo and inserts
// movement enforcers, so distribution correctness is untouched.
func OptimizeFixed(shell *catalog.Shell, tree *algebra.Tree) (*Memo, error) {
	m := New(shell)
	m.Root = m.Insert(tree)
	m.Implement()
	m.CostSerial()
	if m.Groups[m.Root].Winner() == nil {
		return nil, fmt.Errorf("memo: no plan found for root group")
	}
	return m, nil
}

// OptimizeSeeded is Optimize with additional equivalent seed plans
// inserted into the root group before exploration (paper §3.1: "we seed
// the MEMO with execution plans that consider distribution information").
func OptimizeSeeded(shell *catalog.Shell, tree *algebra.Tree, budget int, seeds ...*algebra.Tree) (*Memo, error) {
	m := New(shell)
	m.Budget = budget
	m.Root = m.Insert(tree)
	for _, sd := range seeds {
		m.InsertSeed(sd)
	}
	m.Explore()
	m.Implement()
	m.CostSerial()
	if m.Groups[m.Root].Winner() == nil {
		return nil, fmt.Errorf("memo: no plan found for root group")
	}
	return m, nil
}

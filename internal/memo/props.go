package memo

import (
	"math"

	"pdwqo/internal/algebra"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

// ColStat is the per-column statistical summary carried on every group.
// Base-table columns keep a pointer to the shell database's histogram for
// selectivity estimation; derived columns only track NDV and width.
type ColStat struct {
	NDV      float64
	NullFrac float64
	Width    float64
	Hist     *stats.Column // nil for derived columns
}

// LogicalProps are the shared properties of every expression in a group:
// output schema, estimated cardinality (the paper's Y), average row width
// (the paper's w), per-column statistics, and known unique keys.
type LogicalProps struct {
	OutCols []algebra.ColumnMeta
	Rows    float64
	Width   float64
	Cols    map[algebra.ColumnID]*ColStat
	Keys    []algebra.ColSet // each set of columns is unique in the output
}

// ColStat resolves statistics for an output column, or nil.
func (p *LogicalProps) ColStat(id algebra.ColumnID) *ColStat {
	if p == nil {
		return nil
	}
	return p.Cols[id]
}

// UniqueOn reports whether some known key is covered by cols.
func (p *LogicalProps) UniqueOn(cols algebra.ColSet) bool {
	for _, k := range p.Keys {
		if len(k) > 0 && k.SubsetOf(cols) {
			return true
		}
	}
	return false
}

// deriveProps computes logical properties for a group from its first
// (canonical) expression; all expressions in a group share them.
func (m *Memo) deriveProps(e *GroupExpr) *LogicalProps {
	childProps := make([]*LogicalProps, len(e.Children))
	childSchemas := make([][]algebra.ColumnMeta, len(e.Children))
	for i, c := range e.Children {
		childProps[i] = m.Groups[c].Props
		childSchemas[i] = childProps[i].OutCols
	}
	p := &LogicalProps{
		OutCols: algebra.OutputColsFromSchemas(e.Op, childSchemas),
		Cols:    map[algebra.ColumnID]*ColStat{},
	}

	switch op := e.Op.(type) {
	case *algebra.Get:
		tbl := op.Table
		p.Rows = math.Max(tbl.RowCount(), 1)
		for _, c := range op.Cols {
			cs := &ColStat{NDV: p.Rows, Width: float64(c.Type.Width())}
			if tbl.Stats != nil {
				if h := tbl.Stats.Column(c.Name); h != nil {
					cs.NDV = math.Max(h.NDV, 1)
					cs.Hist = h
					if h.RowCount > 0 {
						cs.NullFrac = h.NullCount / h.RowCount
					}
					if h.AvgWidth > 0 {
						cs.Width = h.AvgWidth
					}
				}
			}
			p.Cols[c.ID] = cs
		}
		if len(op.Table.PrimaryKey) > 0 {
			pk := algebra.NewColSet()
			for _, name := range op.Table.PrimaryKey {
				for _, c := range op.Cols {
					if equalFold(c.Name, name) {
						pk.Add(c.ID)
					}
				}
			}
			if len(pk) == len(op.Table.PrimaryKey) {
				p.Keys = append(p.Keys, pk)
			}
		}

	case *algebra.Values:
		p.Rows = float64(len(op.Rows))
		for _, c := range op.Cols {
			p.Cols[c.ID] = &ColStat{NDV: p.Rows, Width: float64(c.Type.Width())}
		}

	case *algebra.Select:
		in := childProps[0]
		sel := m.selectivity(op.Filter, in)
		p.Rows = math.Max(in.Rows*sel, 0)
		copyScaledStats(p, in, in.Rows)
		p.Keys = in.Keys

	case *algebra.Project:
		in := childProps[0]
		p.Rows = in.Rows
		for _, d := range op.Defs {
			if c, ok := d.Expr.(*algebra.ColRef); ok {
				if cs := in.ColStat(c.ID); cs != nil {
					p.Cols[d.ID] = cs
					continue
				}
			}
			p.Cols[d.ID] = &ColStat{NDV: math.Max(in.Rows, 1), Width: float64(d.Expr.Type().Width())}
		}
		// Keys survive if all their columns pass through.
		out := algebra.NewColSet()
		for _, d := range op.Defs {
			if c, ok := d.Expr.(*algebra.ColRef); ok && c.ID == d.ID {
				out.Add(d.ID)
			}
		}
		for _, k := range in.Keys {
			if k.SubsetOf(out) {
				p.Keys = append(p.Keys, k)
			}
		}

	case *algebra.Join:
		p.Rows, p.Keys = m.joinCardinality(op, childProps)
		copyScaledStats(p, childProps[0], childProps[0].Rows)
		if op.Kind != algebra.JoinSemi && op.Kind != algebra.JoinAnti {
			copyScaledStats(p, childProps[1], childProps[1].Rows)
		}

	case *algebra.GroupBy:
		in := childProps[0]
		ndvs := make([]float64, 0, len(op.Keys))
		for _, k := range op.Keys {
			if cs := in.ColStat(k); cs != nil {
				ndvs = append(ndvs, cs.NDV)
			} else {
				ndvs = append(ndvs, in.Rows)
			}
		}
		p.Rows = stats.GroupCardinality(in.Rows, in.Rows, ndvs)
		if len(op.Keys) == 0 {
			p.Rows = 1
		}
		for _, k := range op.Keys {
			if cs := in.ColStat(k); cs != nil {
				p.Cols[k] = &ColStat{NDV: math.Min(cs.NDV, p.Rows), NullFrac: cs.NullFrac, Width: cs.Width, Hist: cs.Hist}
			}
		}
		for _, a := range op.Aggs {
			p.Cols[a.ID] = &ColStat{NDV: p.Rows, Width: float64(a.ResultType().Width())}
		}
		if len(op.Keys) > 0 && op.Phase != algebra.AggPartial {
			p.Keys = append(p.Keys, algebra.NewColSet(op.Keys...))
		}

	case *algebra.Sort:
		in := childProps[0]
		p.Rows = in.Rows
		if op.Top > 0 {
			p.Rows = math.Min(p.Rows, float64(op.Top))
		}
		copyScaledStats(p, in, in.Rows)
		p.Keys = in.Keys

	case *algebra.UnionAll:
		p.Rows = childProps[0].Rows + childProps[1].Rows
		copyScaledStats(p, childProps[0], childProps[0].Rows)

	default:
		// Physical wrappers never create groups; nothing else should.
		p.Rows = 1
	}

	if p.Rows < 0 || math.IsNaN(p.Rows) {
		p.Rows = 0
	}
	// Rescale column NDVs down to the new row count and compute width.
	for _, c := range p.OutCols {
		cs := p.Cols[c.ID]
		if cs == nil {
			cs = &ColStat{NDV: math.Max(p.Rows, 1), Width: float64(c.Type.Width())}
			p.Cols[c.ID] = cs
		}
		p.Width += cs.Width
	}
	return p
}

// copyScaledStats copies column stats from in, scaling NDVs to the target
// row count via the standard distinct-after-filter approximation.
func copyScaledStats(p *LogicalProps, in *LogicalProps, inRows float64) {
	for id, cs := range in.Cols {
		ndv := stats.DistinctAfterFilter(cs.NDV, inRows, p.Rows)
		p.Cols[id] = &ColStat{NDV: math.Max(ndv, 1), NullFrac: cs.NullFrac, Width: cs.Width, Hist: cs.Hist}
	}
}

// joinCardinality estimates join output rows and derives surviving keys.
func (m *Memo) joinCardinality(op *algebra.Join, childProps []*LogicalProps) (float64, []algebra.ColSet) {
	l, r := childProps[0], childProps[1]
	cross := math.Max(l.Rows, 1) * math.Max(r.Rows, 1)
	sel := 1.0
	eqSeen := map[string]bool{}
	leftCols := algebra.NewColSet()
	for _, c := range l.OutCols {
		leftCols.Add(c.ID)
	}
	rightEq := algebra.NewColSet()
	for _, conj := range algebra.Conjuncts(op.On) {
		if a, b, ok := algebra.EquiJoinSides(conj); ok {
			la, rb := a, b
			if !leftCols.Has(la) {
				la, rb = b, a
			}
			if leftCols.Has(la) && !leftCols.Has(rb) {
				// Cross-side equality: containment formula.
				key := conj.Fingerprint()
				if eqSeen[key] {
					continue
				}
				eqSeen[key] = true
				rightEq.Add(rb)
				d := 1.0
				if cs := l.ColStat(la); cs != nil {
					d = math.Max(d, cs.NDV)
				}
				if cs := r.ColStat(rb); cs != nil {
					d = math.Max(d, cs.NDV)
				}
				sel /= d
				continue
			}
		}
		sel *= m.selectivity(conj, joinedProps(l, r))
	}
	inner := math.Max(cross*sel, 0)

	var keys []algebra.ColSet
	switch op.Kind {
	case algebra.JoinInner, algebra.JoinCross:
		// If the right side is unique on its equi-join columns, left keys
		// survive (each left row matches ≤ 1 right row), and vice versa.
		if r.UniqueOn(rightEq) {
			keys = append(keys, l.Keys...)
			// Each left row matches at most one right row.
			inner = math.Min(inner, math.Max(l.Rows, 0))
		}
		return inner, keys
	case algebra.JoinLeftOuter:
		return math.Max(inner, l.Rows), l.Keys
	case algebra.JoinFullOuter:
		return math.Max(inner, l.Rows+r.Rows), nil
	case algebra.JoinSemi:
		frac := semiFraction(l, r, op)
		return l.Rows * frac, l.Keys
	case algebra.JoinAnti:
		frac := semiFraction(l, r, op)
		return l.Rows * (1 - frac), l.Keys
	}
	return inner, nil
}

// semiFraction estimates the fraction of left rows with at least one match.
func semiFraction(l, r *LogicalProps, op *algebra.Join) float64 {
	frac := 0.9 // default: most rows match
	leftCols := algebra.NewColSet()
	for _, c := range l.OutCols {
		leftCols.Add(c.ID)
	}
	for _, conj := range algebra.Conjuncts(op.On) {
		a, b, ok := algebra.EquiJoinSides(conj)
		if !ok {
			continue
		}
		la, rb := a, b
		if !leftCols.Has(la) {
			la, rb = b, a
		}
		lcs, rcs := l.ColStat(la), r.ColStat(rb)
		if lcs == nil || rcs == nil || lcs.NDV <= 0 {
			continue
		}
		// Fraction of left distinct values present on the right, assuming
		// containment of the smaller NDV set.
		f := math.Min(1, rcs.NDV/lcs.NDV)
		frac = math.Min(frac, f)
	}
	return stats.Clamp(frac, 0, 1)
}

// joinedProps builds a throwaway props with both sides' columns visible,
// for estimating residual (non-equi) join predicates.
func joinedProps(l, r *LogicalProps) *LogicalProps {
	p := &LogicalProps{Rows: l.Rows * r.Rows, Cols: map[algebra.ColumnID]*ColStat{}}
	for id, cs := range l.Cols {
		p.Cols[id] = cs
	}
	for id, cs := range r.Cols {
		p.Cols[id] = cs
	}
	return p
}

// selectivity estimates the fraction of input rows satisfying a predicate.
func (m *Memo) selectivity(f algebra.Scalar, in *LogicalProps) float64 {
	if f == nil {
		return 1
	}
	sel := 1.0
	for _, conj := range algebra.Conjuncts(f) {
		sel *= m.conjunctSelectivity(conj, in)
	}
	return stats.Clamp(sel, 0, 1)
}

func (m *Memo) conjunctSelectivity(e algebra.Scalar, in *LogicalProps) float64 {
	switch x := e.(type) {
	case *algebra.Const:
		if x.Val.IsNull() {
			return 0
		}
		if x.Val.Kind() == types.KindBool {
			if x.Val.Bool() {
				return 1
			}
			return 0
		}
		return 1

	case *algebra.Binary:
		switch x.Op {
		case sqlparser.OpOr:
			a := m.conjunctSelectivity(x.L, in)
			b := m.conjunctSelectivity(x.R, in)
			return stats.Clamp(a+b-a*b, 0, 1)
		case sqlparser.OpAnd:
			return m.conjunctSelectivity(x.L, in) * m.conjunctSelectivity(x.R, in)
		}
		if !x.Op.IsComparison() {
			return 1
		}
		// col cmp const
		if col, ok := x.L.(*algebra.ColRef); ok {
			if k, ok2 := x.R.(*algebra.Const); ok2 {
				return columnCmpSelectivity(in.ColStat(col.ID), x.Op, k.Val)
			}
		}
		if col, ok := x.R.(*algebra.ColRef); ok {
			if k, ok2 := x.L.(*algebra.Const); ok2 {
				return columnCmpSelectivity(in.ColStat(col.ID), x.Op.Flip(), k.Val)
			}
		}
		// col = col within one input.
		if a, b, ok := algebra.EquiJoinSides(x); ok {
			d := 1.0
			if cs := in.ColStat(a); cs != nil {
				d = math.Max(d, cs.NDV)
			}
			if cs := in.ColStat(b); cs != nil {
				d = math.Max(d, cs.NDV)
			}
			return 1 / d
		}
		if x.Op == sqlparser.OpEq {
			return stats.DefaultEqSel
		}
		return stats.DefaultRangeSel

	case *algebra.Not:
		return stats.Clamp(1-m.conjunctSelectivity(x.E, in), 0, 1)

	case *algebra.IsNull:
		var nf float64 = stats.DefaultEqSel
		if c, ok := x.E.(*algebra.ColRef); ok {
			if cs := in.ColStat(c.ID); cs != nil {
				nf = cs.NullFrac
			}
		}
		if x.Negated {
			return 1 - nf
		}
		return nf

	case *algebra.Like:
		sel := stats.DefaultLikeSel
		if c, ok := x.E.(*algebra.ColRef); ok {
			if cs := in.ColStat(c.ID); cs != nil && cs.Hist != nil {
				if i := likePrefixLen(x.Pattern); i > 0 {
					sel = cs.Hist.SelectivityLikePrefix(x.Pattern[:i])
				}
			}
		}
		if x.Negated {
			return stats.Clamp(1-sel, 0, 1)
		}
		return sel

	case *algebra.InList:
		sel := 0.0
		for _, el := range x.List {
			if c, ok := x.E.(*algebra.ColRef); ok {
				if k, ok2 := el.(*algebra.Const); ok2 {
					sel += columnCmpSelectivity(in.ColStat(c.ID), sqlparser.OpEq, k.Val)
					continue
				}
			}
			sel += stats.DefaultEqSel
		}
		sel = stats.Clamp(sel, 0, 1)
		if x.Negated {
			return 1 - sel
		}
		return sel

	default:
		return stats.DefaultRangeSel
	}
}

// likePrefixLen returns the length of the literal prefix of a LIKE pattern.
func likePrefixLen(p string) int {
	for i := 0; i < len(p); i++ {
		if p[i] == '%' || p[i] == '_' {
			return i
		}
	}
	return len(p)
}

// columnCmpSelectivity estimates `col op const` with histograms when
// available.
func columnCmpSelectivity(cs *ColStat, op sqlparser.BinOp, v types.Value) float64 {
	if v.IsNull() {
		return 0
	}
	if cs == nil {
		if op == sqlparser.OpEq {
			return stats.DefaultEqSel
		}
		return stats.DefaultRangeSel
	}
	if cs.Hist != nil {
		switch op {
		case sqlparser.OpEq:
			return cs.Hist.SelectivityEq(v)
		case sqlparser.OpNe:
			return stats.Clamp(1-cs.Hist.SelectivityEq(v), 0, 1)
		case sqlparser.OpLt:
			return cs.Hist.SelectivityRange(types.Null, v, false, false)
		case sqlparser.OpLe:
			return cs.Hist.SelectivityRange(types.Null, v, false, true)
		case sqlparser.OpGt:
			return cs.Hist.SelectivityRange(v, types.Null, false, false)
		case sqlparser.OpGe:
			return cs.Hist.SelectivityRange(v, types.Null, true, false)
		}
	}
	switch op {
	case sqlparser.OpEq:
		if cs.NDV > 0 {
			return stats.Clamp(1/cs.NDV, 0, 1)
		}
		return stats.DefaultEqSel
	case sqlparser.OpNe:
		if cs.NDV > 0 {
			return stats.Clamp(1-1/cs.NDV, 0, 1)
		}
		return 1 - stats.DefaultEqSel
	default:
		return stats.DefaultRangeSel
	}
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

SELECT MIN(k1) AS mn, MAX(v0) AS mx, COUNT(*) AS cnt
FROM mi00, mi01, mi02, mi03
WHERE k0 = f1
  AND k0 = f2
  AND k2 = f3
  AND k0 = h3
  AND v0 <= 835
  AND v3 <= 422

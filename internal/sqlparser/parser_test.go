package sqlparser

import (
	"strings"
	"testing"

	"pdwqo/internal/types"
)

func mustSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func TestSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT c_custkey, o_orderdate FROM Orders, Customer WHERE o_custkey = c_custkey AND o_totalprice > 100")
	if len(sel.Items) != 2 || len(sel.From) != 2 {
		t.Fatalf("shape: %+v", sel)
	}
	and, ok := sel.Where.(*BinExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("where: %T", sel.Where)
	}
	eq := and.L.(*BinExpr)
	if eq.Op != OpEq || eq.L.(*ColRef).Name != "o_custkey" {
		t.Errorf("join predicate: %s", FormatExpr(eq))
	}
	gt := and.R.(*BinExpr)
	if gt.Op != OpGt || gt.R.(*Lit).Value.Int() != 100 {
		t.Errorf("filter: %s", FormatExpr(gt))
	}
}

func TestSelectStarAndAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM CUSTOMER C, ORDERS O WHERE C.C_CUSTKEY = O.O_CUSTKEY")
	if !sel.Items[0].Star {
		t.Error("star item")
	}
	tn := sel.From[0].(*TableName)
	if tn.Name != "CUSTOMER" || tn.Alias != "C" {
		t.Errorf("alias: %+v", tn)
	}
	sel = mustSelect(t, "SELECT o.* , c_name customer_name FROM orders o, customer AS c")
	if !sel.Items[0].Star || sel.Items[0].Table != "o" {
		t.Errorf("qualified star: %+v", sel.Items[0])
	}
	if sel.Items[1].Alias != "customer_name" {
		t.Errorf("bare alias: %+v", sel.Items[1])
	}
}

func TestExplicitJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT a.x FROM a INNER JOIN b ON a.id = b.id LEFT OUTER JOIN c ON b.id = c.id`)
	j := sel.From[0].(*JoinRef)
	if j.Kind != JoinLeft {
		t.Fatalf("outer join kind: %v", j.Kind)
	}
	inner := j.Left.(*JoinRef)
	if inner.Kind != JoinInner || inner.On == nil {
		t.Fatalf("inner join: %+v", inner)
	}
	sel = mustSelect(t, "SELECT 1 FROM a CROSS JOIN b")
	if sel.From[0].(*JoinRef).Kind != JoinCross {
		t.Error("cross join")
	}
}

func TestBracketQuotedNames(t *testing.T) {
	sel := mustSelect(t, "SELECT T1.n_name FROM [tpch].[dbo].[nation] AS T1")
	tn := sel.From[0].(*TableName)
	if tn.Name != "nation" || tn.Alias != "T1" {
		t.Errorf("bracketed name: %+v", tn)
	}
}

func TestDerivedTable(t *testing.T) {
	sel := mustSelect(t, "SELECT t.a FROM (SELECT x AS a FROM base GROUP BY x) AS t WHERE t.a > 5")
	dt := sel.From[0].(*DerivedTable)
	if dt.Alias != "t" || len(dt.Select.GroupBy) != 1 {
		t.Fatalf("derived: %+v", dt)
	}
	if _, err := ParseSelect("SELECT 1 FROM (SELECT 1 FROM t)"); err == nil {
		t.Error("derived table without alias must error")
	}
}

func TestSubqueryPredicates(t *testing.T) {
	sel := mustSelect(t, `SELECT s_name FROM supplier WHERE s_suppkey IN (SELECT ps_suppkey FROM partsupp) AND EXISTS (SELECT 1 FROM nation) AND NOT EXISTS (SELECT 2 FROM region)`)
	and1 := sel.Where.(*BinExpr)
	and2 := and1.L.(*BinExpr)
	in := and2.L.(*InExpr)
	if in.Select == nil || in.Negated {
		t.Errorf("IN subquery: %+v", in)
	}
	ex := and2.R.(*ExistsExpr)
	if ex.Negated {
		t.Error("EXISTS")
	}
	notEx, ok := and1.R.(*NotExpr)
	if !ok {
		t.Fatalf("NOT EXISTS should parse as NOT(EXISTS): %T", and1.R)
	}
	if _, ok := notEx.E.(*ExistsExpr); !ok {
		t.Error("inner exists")
	}
}

func TestInList(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4)")
	and := sel.Where.(*BinExpr)
	in := and.L.(*InExpr)
	if len(in.List) != 3 || in.Negated {
		t.Errorf("in list: %+v", in)
	}
	nin := and.R.(*InExpr)
	if !nin.Negated || len(nin.List) != 1 {
		t.Errorf("not in: %+v", nin)
	}
}

func TestScalarSubqueryComparison(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a > (SELECT MAX(b) FROM u)")
	cmp := sel.Where.(*BinExpr)
	if cmp.Op != OpGt {
		t.Fatal("op")
	}
	sq := cmp.R.(*SubqueryExpr)
	if f := sq.Select.Items[0].Expr.(*FuncExpr); f.Name != "MAX" || !f.IsAggregate() {
		t.Errorf("aggregate: %+v", f)
	}
}

func TestBetweenLikeIsNull(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b NOT BETWEEN 2 AND 3 AND c LIKE 'forest%' AND d IS NOT NULL AND e IS NULL")
	s := FormatExpr(sel.Where)
	for _, want := range []string{"BETWEEN 1 AND 10", "NOT BETWEEN 2 AND 3", "LIKE 'forest%'", "IS NOT NULL", "IS NULL"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %s", want, s)
		}
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	sel := mustSelect(t, `SELECT l_returnflag, SUM(l_quantity) AS sum_qty, COUNT(*) AS cnt, AVG(l_discount), COUNT(DISTINCT l_suppkey) FROM lineitem GROUP BY l_returnflag HAVING SUM(l_quantity) > 100 ORDER BY l_returnflag DESC`)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("group by / having")
	}
	cnt := sel.Items[2].Expr.(*FuncExpr)
	if !cnt.Star || cnt.Name != "COUNT" {
		t.Errorf("count(*): %+v", cnt)
	}
	cd := sel.Items[4].Expr.(*FuncExpr)
	if !cd.Distinct {
		t.Errorf("count distinct: %+v", cd)
	}
	if !sel.OrderBy[0].Desc {
		t.Error("order desc")
	}
}

func TestTopAndDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT TOP 10 a FROM t ORDER BY a")
	if !sel.Distinct || sel.Top != 10 {
		t.Errorf("distinct/top: %+v", sel)
	}
	sel = mustSelect(t, "SELECT a FROM t LIMIT 5")
	if sel.Top != 5 {
		t.Error("limit")
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a + b * c - d / 2 FROM t")
	got := FormatExpr(sel.Items[0].Expr)
	if got != "((a + (b * c)) - (d / 2))" {
		t.Errorf("precedence: %s", got)
	}
	sel = mustSelect(t, "SELECT (a + b) * c FROM t")
	if got := FormatExpr(sel.Items[0].Expr); got != "((a + b) * c)" {
		t.Errorf("parens: %s", got)
	}
}

func TestLogicalPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or := sel.Where.(*BinExpr)
	if or.Op != OpOr {
		t.Fatal("OR should be top")
	}
	if or.R.(*BinExpr).Op != OpAnd {
		t.Error("AND binds tighter")
	}
	sel = mustSelect(t, "SELECT 1 FROM t WHERE NOT a = 1 AND b = 2")
	and := sel.Where.(*BinExpr)
	if and.Op != OpAnd {
		t.Fatal("NOT binds tighter than AND")
	}
	if _, ok := and.L.(*NotExpr); !ok {
		t.Error("left should be NOT")
	}
}

func TestLiterals(t *testing.T) {
	sel := mustSelect(t, "SELECT 42, 2.5, 'text', NULL, TRUE, DATE '1994-01-01', -7 FROM t")
	vals := make([]types.Value, len(sel.Items))
	for i, it := range sel.Items {
		vals[i] = it.Expr.(*Lit).Value
	}
	if vals[0].Int() != 42 || vals[1].Float() != 2.5 || vals[2].Str() != "text" {
		t.Error("basic literals")
	}
	if !vals[3].IsNull() || !vals[4].Bool() {
		t.Error("null/bool")
	}
	if vals[5].Kind() != types.KindDate || vals[5].String() != "1994-01-01" {
		t.Error("date literal")
	}
	if vals[6].Int() != -7 {
		t.Error("negative literal folding")
	}
}

func TestStringEscapes(t *testing.T) {
	sel := mustSelect(t, "SELECT 'o''brien' FROM t")
	if got := sel.Items[0].Expr.(*Lit).Value.Str(); got != "o'brien" {
		t.Errorf("escape: %q", got)
	}
}

func TestDateAddAndCast(t *testing.T) {
	sel := mustSelect(t, "SELECT DATEADD(year, 1, '1994-01-01'), CAST('1994-01-01' AS DATE), CAST(0.5 AS DECIMAL(1,1)) FROM t")
	da := sel.Items[0].Expr.(*FuncExpr)
	if da.Name != "DATEADD" || len(da.Args) != 3 {
		t.Fatalf("dateadd: %+v", da)
	}
	if da.Args[0].(*Lit).Value.Str() != "year" {
		t.Error("date part as literal")
	}
	c := sel.Items[1].Expr.(*CastExpr)
	if c.To != types.KindDate {
		t.Error("cast to date")
	}
	if sel.Items[2].Expr.(*CastExpr).To != types.KindFloat {
		t.Error("decimal maps to float")
	}
}

func TestCaseExpr(t *testing.T) {
	sel := mustSelect(t, "SELECT CASE WHEN a > 1 THEN 'big' WHEN a = 1 THEN 'one' ELSE 'small' END FROM t")
	ce := sel.Items[0].Expr.(*CaseExpr)
	if len(ce.Whens) != 2 || ce.Else == nil {
		t.Errorf("case: %+v", ce)
	}
}

func TestComments(t *testing.T) {
	sel := mustSelect(t, `SELECT a -- trailing comment
	FROM t /* block
	comment */ WHERE a > 1`)
	if sel.Where == nil {
		t.Error("comments must be skipped")
	}
}

func TestPaperSection24Query(t *testing.T) {
	// The exact query from the paper's DSQL plan example.
	sel := mustSelect(t, `SELECT c_custkey, o_orderdate FROM Orders, Customer WHERE o_custkey = c_custkey AND o_totalprice > 100`)
	if len(sel.From) != 2 {
		t.Fatal("two tables")
	}
}

// TPC-H Q20, verbatim from the paper (§4 Figure 7).
const q20 = `
select s_name, s_address
from supplier, nation
where s_suppkey in (
    select ps_suppkey
    from partsupp
    where ps_partkey in (
        select p_partkey
        from part
        where p_name like 'forest%'
    )
    and ps_availqty > (
        select 0.5 * sum(l_quantity)
        from lineitem
        where l_partkey = ps_partkey
          and l_suppkey = ps_suppkey
          and l_shipdate >= '1994-01-01'
          and l_shipdate < DATEADD(year, 1, '1994-01-01')
    )
)
and s_nationkey = n_nationkey
and n_name = 'CANADA'
order by s_name;`

func TestQ20Parses(t *testing.T) {
	sel := mustSelect(t, q20)
	if len(sel.From) != 2 || len(sel.OrderBy) != 1 {
		t.Fatal("outer shape")
	}
	// Outer WHERE: (IN AND eq) AND eq — left-assoc AND chain.
	top := sel.Where.(*BinExpr)
	if top.Op != OpAnd {
		t.Fatal("top AND")
	}
	inner := top.L.(*BinExpr)
	in := inner.L.(*InExpr)
	if in.Select == nil {
		t.Fatal("SQ1")
	}
	// SQ1's WHERE holds a nested IN (SQ2) and a scalar subquery comparison (SQ3).
	sq1 := in.Select
	w := sq1.Where.(*BinExpr)
	if w.Op != OpAnd {
		t.Fatal("SQ1 where")
	}
	if w.L.(*InExpr).Select == nil {
		t.Error("SQ2 missing")
	}
	cmp := w.R.(*BinExpr)
	if cmp.Op != OpGt {
		t.Error("availqty comparison")
	}
	sq3 := cmp.R.(*SubqueryExpr).Select
	mul := sq3.Items[0].Expr.(*BinExpr)
	if mul.Op != OpMul {
		t.Error("0.5 * sum")
	}
	if f := mul.R.(*FuncExpr); f.Name != "SUM" {
		t.Error("sum aggregate")
	}
}

func TestCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE orders (
		o_orderkey BIGINT PRIMARY KEY,
		o_custkey BIGINT NOT NULL,
		o_totalprice DECIMAL(15,2),
		o_orderdate DATE,
		o_comment VARCHAR(79)
	) WITH (DISTRIBUTION = HASH(o_orderkey))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "orders" || len(ct.Columns) != 5 {
		t.Fatalf("shape: %+v", ct)
	}
	if ct.Replicated || ct.HashColumn != "o_orderkey" {
		t.Errorf("distribution: %+v", ct)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "o_orderkey" {
		t.Errorf("pk: %+v", ct.PrimaryKey)
	}
	if ct.Columns[2].Type != types.KindFloat || ct.Columns[4].Type != types.KindString {
		t.Error("column types")
	}
}

func TestCreateTableReplicate(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE nation (n_nationkey INT, n_name CHAR(25), PRIMARY KEY (n_nationkey)) WITH (DISTRIBUTION = REPLICATE)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if !ct.Replicated || len(ct.PrimaryKey) != 1 {
		t.Errorf("%+v", ct)
	}
	// Default distribution is replicate.
	stmt, err = Parse(`CREATE TABLE r (x INT)`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(*CreateTableStmt).Replicated {
		t.Error("default replicate")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET a = 1",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t extra_token_here_with (",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT a FROM (SELECT b FROM u)",
		"SELECT 'unterminated FROM t",
		"SELECT [unterminated FROM t",
		"SELECT a FROM t WHERE a IN (1,",
		"SELECT CASE a WHEN 1 THEN 2 END FROM t",
		"CREATE TABLE t (a FROBNICATE)",
		"CREATE TABLE t (a INT) WITH (DISTRIBUTION = ROUNDROBIN)",
		"SELECT a FROM t; SELECT b FROM u",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t WHERE ^")
	if err == nil || !strings.Contains(err.Error(), "sql:2:") {
		t.Errorf("want line info, got %v", err)
	}
}

func TestSemicolonOptional(t *testing.T) {
	mustSelect(t, "SELECT 1 FROM t;")
	mustSelect(t, "SELECT 1 FROM t")
}

func TestUnionAllParsing(t *testing.T) {
	sel := mustSelect(t, `SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v ORDER BY a`)
	if sel.Union == nil || sel.Union.Union == nil {
		t.Fatal("three-branch union")
	}
	if len(sel.OrderBy) != 0 || len(sel.Union.Union.OrderBy) != 1 {
		t.Error("ORDER BY belongs to the final branch")
	}
	// Union inside a derived table.
	sel = mustSelect(t, `SELECT x FROM (SELECT a AS x FROM t UNION ALL SELECT b FROM u) q`)
	dt := sel.From[0].(*DerivedTable)
	if dt.Select.Union == nil {
		t.Error("union in derived table")
	}
	if _, err := Parse("SELECT a FROM t UNION SELECT b FROM u"); err == nil {
		t.Error("bare UNION (distinct) must be rejected")
	}
}

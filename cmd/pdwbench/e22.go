package main

import (
	"fmt"
	"time"

	"pdwqo"
	"pdwqo/internal/difftest"
	"pdwqo/internal/qgen"
)

// --- E22: budget-aware enumeration — the exhaustive/greedy frontier ---

// e22 maps the search-budget frontier on generated large-join queries:
// every topology at 8, 20 and 48 relations plus the 100-relation clique
// headline, each compiled under a descending sequence of enumeration
// budgets with the static verifier on. The table shows where the
// bottom-up enumerator's budget trips — switching the compiler into the
// greedy join-order regime — and what that switch costs in plan quality
// (ratio against the best arm of the same query) and buys in wall clock.
// The metamorphic certification that greedy plans return byte-identical
// results lives in internal/difftest; this experiment records the
// quality/latency frontier.
func e22(db *pdwqo.DB) {
	header("E22", "budget-aware enumeration — plan quality vs search budget, greedy fallback frontier")
	var specs []qgen.Spec
	for _, topo := range qgen.Topologies() {
		for _, n := range []int{8, 20, 48} {
			specs = append(specs, qgen.Spec{Topology: topo, Relations: n, Seed: int64(42 + n)})
		}
	}
	specs = append(specs, qgen.Spec{Topology: qgen.Clique, Relations: 100, Seed: 1741})

	type arm struct {
		budget  int
		regime  string
		options int
		cost    float64
		wall    time.Duration
	}
	fmt.Printf("%-14s %-9s %-10s %-9s %-13s %-7s %s\n",
		"query", "budget", "regime", "options", "cost", "ratio", "time")
	queries, greedyArms, exhaustiveArms := 0, 0, 0
	var worstRatio float64 = 1
	for _, spec := range specs {
		q, err := qgen.Generate(spec)
		if err != nil {
			fatal(err)
		}
		qdb, err := difftest.OpenQGen(q)
		if err != nil {
			fatal(err)
		}
		qdb.SetParallelism(*parallel)
		budgets := []int{20000, 2000, 200}
		if spec.Relations <= 8 {
			budgets = append([]int{0}, budgets...) // unbounded arm where feasible
		}
		var arms []arm
		for _, b := range budgets {
			start := time.Now()
			p, err := qdb.Optimize(q.SQL, pdwqo.Options{SearchBudget: b, Verify: true})
			if err != nil {
				fatal(fmt.Errorf("%s budget=%d: %w", q.Name, b, err))
			}
			regime := p.Regime
			if regime == "" {
				regime = "unbounded"
			}
			arms = append(arms, arm{
				budget: b, regime: regime, options: p.Distributed.OptionsConsidered,
				cost: p.Cost(), wall: time.Since(start),
			})
		}
		best := arms[0].cost
		for _, a := range arms[1:] {
			if a.cost < best {
				best = a.cost
			}
		}
		queries++
		for _, a := range arms {
			r := ratio(a.cost+1, best+1) // smoothed: free plans are common at these sizes
			if r > worstRatio {
				worstRatio = r
			}
			switch a.regime {
			case "greedy":
				greedyArms++
			case "exhaustive", "unbounded":
				exhaustiveArms++
			}
			fmt.Printf("%-14s %-9d %-10s %-9d %-13.6g %-7.2f %s\n",
				q.Name, a.budget, a.regime, a.options, a.cost, r, a.wall.Round(time.Millisecond))
		}
	}
	fmt.Printf("E22 RESULT: ok queries=%d greedy-arms=%d exhaustive-arms=%d worst-ratio=%.2f\n\n",
		queries, greedyArms, exhaustiveArms, worstRatio)
}

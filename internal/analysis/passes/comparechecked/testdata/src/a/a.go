package a

import "pdwqo/internal/types"

func bad(a, b types.Value) int {
	return types.Compare(a, b) // want `raw types.Compare`
}

func badEq(a, b types.Value) bool {
	return a == b // want `raw == on types.Value`
}

func badNeq(a, b types.Value) bool {
	return a != b // want `raw != on types.Value`
}

func guarded(a, b types.Value) int {
	if !types.Comparable(a.Kind(), b.Kind()) {
		return 0
	}
	return types.Compare(a, b)
}

func checked(a, b types.Value) (int, error) {
	return types.CompareChecked(a, b)
}

func unrelatedEq(a, b int) bool {
	return a == b
}

// allowedDoc compares kinds the caller already validated.
//
//pdwlint:allow comparechecked
func allowedDoc(a, b types.Value) int {
	return types.Compare(a, b)
}

func allowedLine(a, b types.Value) int {
	return types.Compare(a, b) //pdwlint:allow comparechecked
}

func allowedAbove(a, b types.Value) int {
	//pdwlint:allow comparechecked
	return types.Compare(a, b)
}

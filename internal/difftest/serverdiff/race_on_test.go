//go:build race

package serverdiff

// raceEnabled trims the corpus sweep when the race detector multiplies
// every execution ~4×: one topology instead of four (still all 22
// queries) and fewer chaos seeds. The full-size sweep runs in the plain
// test lane.
const raceEnabled = true

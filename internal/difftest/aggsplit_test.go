package difftest

import (
	"fmt"
	"testing"

	"pdwqo"
	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
)

// adoptsSplit reports whether the winning plan carries a partial
// aggregation — i.e. the cost model actually chose the split.
func adoptsSplit(qp *pdwqo.QueryPlan) bool {
	found := false
	seen := map[*core.Option]bool{}
	var walk func(o *core.Option)
	walk = func(o *core.Option) {
		if o == nil || seen[o] || found {
			return
		}
		seen[o] = true
		if gb, ok := o.Op.(*algebra.GroupBy); ok && gb.Phase == algebra.AggPartial {
			found = true
			return
		}
		for _, in := range o.Inputs {
			walk(in)
		}
	}
	walk(qp.Distributed.Root)
	return found
}

// TestTPCHAggSplitEquivalence is the headline metamorphic sweep: every
// adapted TPC-H query, on 1-, 2-, 4- and 8-node topologies, must produce
// the same result relation whether the partial-aggregate split is
// enumerated or force-disabled. Both arms compile under the static plan
// verifier. On the multi-node topologies the sweep also asserts the
// transform is really exercised: at least one winning plan must carry a
// partial aggregation, or the equivalence claim would be vacuous.
func TestTPCHAggSplitEquivalence(t *testing.T) {
	topologies := []int{1, 2, 4, 8}
	if testing.Short() {
		topologies = []int{4}
	}
	if raceEnabled {
		topologies = []int{8}
	}
	for _, nodes := range topologies {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes-%d", nodes), func(t *testing.T) {
			db := openAppliance(t, nodes)
			adopted := 0
			for _, c := range TPCHCases() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					if err := AggSplitDiff(db, c, 8); err != nil {
						t.Error(err)
					}
				})
				if qp, err := db.Optimize(c.SQL, pdwqo.Options{}); err == nil && adoptsSplit(qp) {
					adopted++
				}
			}
			if nodes > 1 && adopted == 0 {
				t.Errorf("no TPC-H winning plan adopted the split on %d nodes; the sweep proves nothing", nodes)
			}
			t.Logf("nodes=%d: %d/%d TPC-H winning plans adopt the split", nodes, adopted, len(TPCHCases()))
		})
	}
}

// TestFuzzAggSplitEquivalence runs the seeded random corpus — a third of
// it GROUP BY heads over FK join chains — through the same metamorphic
// contract on the 4-node appliance.
func TestFuzzAggSplitEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz corpus skipped in -short mode")
	}
	db := openAppliance(t, 4)
	for _, c := range FuzzCases(40, 20260808) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if err := AggSplitDiff(db, c, 8); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAggSplitChaos perturbs the split arm with seeded fault plans on the
// aggregate-heaviest TPC-H queries: recovery must reproduce the unsplit
// reference relation or fail with a typed step error, leaking nothing.
func TestAggSplitChaos(t *testing.T) {
	queries := []string{"q01", "q04", "q05", "q13", "q22"}
	seeds := []int64{1, 7, 23}
	if testing.Short() {
		queries = []string{"q01"}
		seeds = []int64{7}
	}
	db := openAppliance(t, 4)
	for _, name := range queries {
		sql, ok := pdwqo.TPCHQuery(name)
		if !ok {
			t.Fatalf("unknown query %s", name)
		}
		c := Case{Name: name, SQL: sql}
		for _, seed := range seeds {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed-%d", name, seed), func(t *testing.T) {
				if err := AggSplitChaos(db, c, 8, seed, 2); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// Package baretruthy flags calls to exec.Truthy in operator code.
// Truthy panics on non-BIT values and silently collapses NULL to false
// with no way to distinguish the two, so predicate results reached from
// user expressions — WHERE filters, join residuals, NOT operands — must
// go through exec.TruthyChecked, which surfaces the kind error and makes
// the NULL collapse an explicit, reviewable decision at the call site.
package baretruthy

import (
	"go/ast"

	"pdwqo/internal/analysis"
)

const execPkgPath = "pdwqo/internal/exec"

// Analyzer is the baretruthy pass.
var Analyzer = &analysis.Analyzer{
	Name: "baretruthy",
	Doc:  "flag bare exec.Truthy calls that collapse NULL and panic on non-BIT; use TruthyChecked",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				id = fn
			case *ast.SelectorExpr:
				id = fn.Sel
			default:
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj != nil && obj.Name() == "Truthy" &&
				obj.Pkg() != nil && obj.Pkg().Path() == execPkgPath {
				pass.Reportf(call.Pos(),
					"bare exec.Truthy collapses NULL to false and panics on non-BIT values; use exec.TruthyChecked")
			}
			return true
		})
	}
	return nil
}

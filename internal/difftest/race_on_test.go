//go:build race

package difftest

// raceEnabled trims the corpus sweep when the race detector multiplies
// every execution ~4×: one topology instead of four (still all 22
// queries), fewer determinism runs, and no wall-clock assertions. The
// full-size sweep runs in the plain test lane.
const raceEnabled = true

package pdwqo

import (
	"strings"
	"sync"
	"testing"
)

// TestAnalyzeDuringExecution hammers the Metrics accessors and the
// EXPLAIN renderers while EXPLAIN ANALYZE executions are in flight. Run
// under -race this certifies that Snapshot/StepCount/TotalBytesMoved and
// the ANALYZE delta capture are properly synchronized with the engine's
// concurrent step recording — the bug class that motivated unexporting
// Metrics.steps behind locked accessors.
func TestAnalyzeDuringExecution(t *testing.T) {
	db := openTest(t)
	sql, _ := TPCHQuery("q05")
	plan, err := db.Optimize(sql, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 8
	var wg sync.WaitGroup
	done := make(chan struct{})

	// The ANALYZE goroutine is the sole executor: the appliance shares
	// temp-table names across runs of one plan, so execution itself is
	// serialized here while the observers below read concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < rounds; i++ {
			_, report, execErr := db.ExplainAnalyze(plan, false)
			if execErr != nil {
				t.Error(execErr)
				return
			}
			if !strings.Contains(report, "-- analyze summary") {
				t.Errorf("ANALYZE report missing summary:\n%s", report)
				return
			}
		}
	}()

	// Observer goroutines hammer every locked accessor while steps are
	// being recorded by the in-flight executions.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := &db.appliance.Metrics
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := m.Snapshot()
				if len(snap) != 0 && m.StepCount() < 0 {
					t.Error("impossible step count")
				}
				_ = m.TotalBytesMoved()
				_ = m.RetryCount()
				_ = m.FaultCount()
			}
		}()
	}

	// A render goroutine re-renders the (read-only) EXPLAIN documents
	// concurrently; these walk the same plan the executor is running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := plan.ExplainText(); err != nil {
				t.Error(err)
				return
			}
			if _, err := plan.ExplainJSON(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
}

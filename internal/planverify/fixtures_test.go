// Package planverify_test exercises the verifier against real compiled
// plans: the clean TPC-H corpus must verify, and hand-mutated plans —
// a swapped move destination, a dangling temp-table reference, a
// dropped distribution enforcer — must each surface their distinct
// typed violation. XML memo fixtures under testdata cover the
// memo-side codes through the real decoder.
package planverify_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdwqo"
	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/dsql"
	"pdwqo/internal/memoxml"
	"pdwqo/internal/planverify"
)

// freshPlan compiles one TPC-H query on a private database so the test
// can mutate the returned artifacts without poisoning shared state.
func freshPlan(t *testing.T, name string) (*pdwqo.QueryPlan, *catalog.Shell) {
	t.Helper()
	db, err := pdwqo.OpenTPCH(0.01, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sql, ok := pdwqo.TPCHQuery(name)
	if !ok {
		t.Fatalf("unknown query %s", name)
	}
	qp, err := db.Optimize(sql, pdwqo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return qp, db.Shell()
}

func checkAll(qp *pdwqo.QueryPlan, shell *catalog.Shell) *planverify.Report {
	return planverify.Check(planverify.Artifacts{
		Plan:  qp.Distributed,
		DSQL:  qp.DSQL,
		Shell: shell,
	})
}

// TestCleanPlansVerify pins the baseline the mutation tests perturb.
func TestCleanPlansVerify(t *testing.T) {
	for _, name := range []string{"q01", "q03", "q05", "q10"} {
		qp, shell := freshPlan(t, name)
		if rep := checkAll(qp, shell); !rep.OK() {
			t.Errorf("%s: clean plan rejected: %v", name, rep.Violations)
		}
	}
}

// findChainedMoves locates move steps i < j where step j's SQL reads
// step i's destination temp.
func findChainedMoves(steps []dsql.Step) (int, int, bool) {
	for i := range steps {
		if steps[i].Kind != dsql.StepMove || steps[i].Dest == "" {
			continue
		}
		for j := i + 1; j < len(steps); j++ {
			if steps[j].Kind == dsql.StepMove &&
				strings.Contains(steps[j].SQL, "[tempdb].["+steps[i].Dest+"]") {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// TestMutationSwapMoveDest swaps the destinations of a producer move
// and the downstream move that consumes it: the consumer then reads
// the temp it now claims to produce, a use-before-def.
func TestMutationSwapMoveDest(t *testing.T) {
	for _, name := range pdwqo.TPCHQueryNames() {
		qp, shell := freshPlan(t, name)
		i, j, ok := findChainedMoves(qp.DSQL.Steps)
		if !ok {
			continue
		}
		steps := qp.DSQL.Steps
		steps[i].Dest, steps[j].Dest = steps[j].Dest, steps[i].Dest
		rep := checkAll(qp, shell)
		if !rep.Has(planverify.CodeTempUseBeforeDef) {
			t.Fatalf("%s: swapped move destinations not caught: %v", name, rep.Violations)
		}
		return
	}
	t.Fatal("no TPC-H query with chained move steps")
}

// TestMutationDanglingTemp rewrites one temp-table reference to a name
// no step produces.
func TestMutationDanglingTemp(t *testing.T) {
	for _, name := range pdwqo.TPCHQueryNames() {
		qp, shell := freshPlan(t, name)
		mutated := false
		for k := range qp.DSQL.Steps {
			s := &qp.DSQL.Steps[k]
			if idx := strings.Index(s.SQL, "[tempdb].[TEMP_ID_"); idx >= 0 {
				end := strings.IndexByte(s.SQL[idx:], ']') + idx
				s.SQL = s.SQL[:idx] + "[tempdb].[TEMP_ID_999" + s.SQL[end:]
				mutated = true
				break
			}
		}
		if !mutated {
			continue
		}
		rep := checkAll(qp, shell)
		if !rep.Has(planverify.CodeTempUnknown) {
			t.Fatalf("%s: dangling temp reference not caught: %v", name, rep.Violations)
		}
		return
	}
	t.Fatal("no TPC-H query referencing a temp table")
}

// TestMutationDropEnforcer splices a data movement out from under a
// join, undoing the enforcer the optimizer inserted to make the join
// distribution-correct. Only CheckPlan runs: the splice changes the
// tree's movement multiset, so the tree/step cross-check would fire
// too and drown the signal under test.
func TestMutationDropEnforcer(t *testing.T) {
	for _, name := range pdwqo.TPCHQueryNames() {
		qp, _ := freshPlan(t, name)
		var joins []*core.Option
		seen := map[*core.Option]bool{}
		var walk func(o *core.Option)
		walk = func(o *core.Option) {
			if o == nil || seen[o] {
				return
			}
			seen[o] = true
			if _, isJoin := o.Op.(*algebra.Join); isJoin {
				joins = append(joins, o)
			}
			for _, in := range o.Inputs {
				walk(in)
			}
		}
		walk(qp.Distributed.Root)
		for _, j := range joins {
			for idx, in := range j.Inputs {
				if in.Move == nil {
					continue
				}
				j.Inputs[idx] = in.Inputs[0] // drop the enforcer
				vs := planverify.CheckPlan(qp.Distributed)
				j.Inputs[idx] = in // restore for the next candidate
				for _, v := range vs {
					if v.Code == planverify.CodeJoinNotCollocated {
						return
					}
				}
			}
		}
	}
	t.Fatal("no dropped enforcer produced a collocation violation")
}

// findSplitTriple locates a finalizing GroupBy option, the movement
// below it, and the partial GroupBy option at its base.
func findSplitTriple(p *core.Plan) (final, move, partial *core.Option, ok bool) {
	seen := map[*core.Option]bool{}
	var walk func(o *core.Option)
	walk = func(o *core.Option) {
		if o == nil || seen[o] || ok {
			return
		}
		seen[o] = true
		if gb, isGB := o.Op.(*algebra.GroupBy); isGB && gb.Phase == algebra.AggFinal {
			if m := o.Inputs[0]; m.Move != nil {
				if pgb, isP := m.Inputs[0].Op.(*algebra.GroupBy); isP && pgb.Phase == algebra.AggPartial {
					final, move, partial, ok = o, m, m.Inputs[0], true
					return
				}
			}
		}
		for _, in := range o.Inputs {
			walk(in)
		}
	}
	walk(p.Root)
	return final, move, partial, ok
}

// splitPlan compiles TPC-H queries until one's winning plan carries a
// partial/final split, handing the triple to a mutation.
func splitPlan(t *testing.T) (*pdwqo.QueryPlan, *core.Option, *core.Option, *core.Option) {
	t.Helper()
	for _, name := range pdwqo.TPCHQueryNames() {
		qp, _ := freshPlan(t, name)
		if final, move, partial, ok := findSplitTriple(qp.Distributed); ok {
			return qp, final, move, partial
		}
	}
	t.Fatal("no TPC-H winning plan adopts the aggregate split")
	return nil, nil, nil, nil
}

// TestMutationAggKeysMismatch perturbs the finalizer's grouping keys so
// the pair no longer groups identically.
func TestMutationAggKeysMismatch(t *testing.T) {
	qp, final, _, _ := splitPlan(t)
	gb := final.Op.(*algebra.GroupBy)
	if len(gb.Keys) == 0 {
		t.Skip("keyless split chosen; keys mutation does not apply")
	}
	gb.Keys = gb.Keys[:len(gb.Keys)-1]
	if vs := planverify.CheckPlan(qp.Distributed); !hasCode(vs, planverify.CodeAggSplitMismatch) {
		t.Fatalf("dropped finalizer key not caught: %v", vs)
	}
}

// TestMutationAggStateColumn points one finalizer at a column that is
// not its partner's state column.
func TestMutationAggStateColumn(t *testing.T) {
	qp, final, _, partial := splitPlan(t)
	fgb := final.Op.(*algebra.GroupBy)
	pgb := partial.Op.(*algebra.GroupBy)
	wrong := pgb.Aggs[0].ID + 7777
	fgb.Aggs[0].Arg = algebra.NewColRef(algebra.ColumnMeta{ID: wrong, Name: "stray"})
	if vs := planverify.CheckPlan(qp.Distributed); !hasCode(vs, planverify.CodeAggSplitMismatch) {
		t.Fatalf("rerouted state column not caught: %v", vs)
	}
}

// TestMutationAggMergeFunc swaps a finalizer's merge function for one
// that cannot merge its partner's state (MIN over a COUNT/SUM state, or
// SUM over a MIN/MAX state).
func TestMutationAggMergeFunc(t *testing.T) {
	qp, final, _, _ := splitPlan(t)
	fgb := final.Op.(*algebra.GroupBy)
	if fgb.Aggs[0].Func == algebra.AggSum {
		fgb.Aggs[0].Func = algebra.AggMin
	} else {
		fgb.Aggs[0].Func = algebra.AggSum
	}
	if vs := planverify.CheckPlan(qp.Distributed); !hasCode(vs, planverify.CodeAggSplitMismatch) {
		t.Fatalf("wrong merge function not caught: %v", vs)
	}
}

// TestMutationAggFinalOverComplete relabels the partial as a complete
// aggregation: the finalizer then merges already-final values.
func TestMutationAggFinalOverComplete(t *testing.T) {
	qp, _, _, partial := splitPlan(t)
	partial.Op.(*algebra.GroupBy).Phase = algebra.AggComplete
	if vs := planverify.CheckPlan(qp.Distributed); !hasCode(vs, planverify.CodeAggFinalInput) {
		t.Fatalf("finalizer over complete input not caught: %v", vs)
	}
}

// TestMutationAggPartialOrphan relabels the finalizer as a complete
// aggregation, leaving the partial's per-node states unmerged.
func TestMutationAggPartialOrphan(t *testing.T) {
	qp, final, _, _ := splitPlan(t)
	final.Op.(*algebra.GroupBy).Phase = algebra.AggComplete
	if vs := planverify.CheckPlan(qp.Distributed); !hasCode(vs, planverify.CodeAggPartialOrphan) {
		t.Fatalf("orphaned partial aggregation not caught: %v", vs)
	}
}

// TestMutationAggSpliceMove removes the movement between the pair, so
// the finalizer merges states that never left their producing nodes.
// Only CheckPlan runs: the splice changes the tree's movement multiset,
// which the tree/step cross-check would also flag.
func TestMutationAggSpliceMove(t *testing.T) {
	qp, final, move, _ := splitPlan(t)
	final.Inputs[0] = move.Inputs[0]
	if vs := planverify.CheckPlan(qp.Distributed); !hasCode(vs, planverify.CodeAggFinalInput) {
		t.Fatalf("spliced-out movement not caught: %v", vs)
	}
}

func hasCode(vs []planverify.Violation, code planverify.Code) bool {
	for _, v := range vs {
		if v.Code == code {
			return true
		}
	}
	return false
}

// TestMemoFixtures decodes the hand-written bad memos through the real
// decoder and checks each yields its expected codes.
func TestMemoFixtures(t *testing.T) {
	shell := catalog.NewShell(2)
	cases := []struct {
		file string
		want []planverify.Code
	}{
		{"memo_bad_estimate.xml", []planverify.Code{planverify.CodeMemoEstimate}},
		{"memo_double_winner.xml", []planverify.Code{planverify.CodeWinnerDuplicate}},
		{"memo_winner_dangling.xml", []planverify.Code{
			planverify.CodeWinnerDangling, planverify.CodeMemoEmptyGroup}},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatal(err)
			}
			dec, err := memoxml.Decode(data, shell)
			if err != nil {
				t.Fatalf("fixture must survive decode (only planverify may reject it): %v", err)
			}
			vs := planverify.CheckMemo(dec)
			for _, want := range c.want {
				found := false
				for _, v := range vs {
					if v.Code == want {
						found = true
					}
				}
				if !found {
					t.Errorf("missing %s in %v", want, vs)
				}
			}
		})
	}
}

// TestOptimizeVerifyOption exercises the public wiring: Verify on a
// healthy query succeeds, and the typed error shape is recoverable.
func TestOptimizeVerifyOption(t *testing.T) {
	db, err := pdwqo.OpenTPCH(0.01, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sql, _ := pdwqo.TPCHQuery("q05")
	if _, err := db.Optimize(sql, pdwqo.Options{Verify: true}); err != nil {
		t.Fatalf("verified optimize failed: %v", err)
	}
}

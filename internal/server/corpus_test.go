package server

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// corpusDir is where the checked-in wire fuzz seeds live, in the go
// fuzzing corpus-file format.
const corpusDir = "testdata/fuzz/FuzzWireDecode"

// TestFuzzCorpusInSync asserts the checked-in seed corpus matches
// fuzzSeeds(), so the CI fuzz smoke always runs the streams the suite
// was designed around. Regenerate with REGEN_CORPUS=1 go test -run
// TestFuzzCorpusInSync ./internal/server.
func TestFuzzCorpusInSync(t *testing.T) {
	if os.Getenv("REGEN_CORPUS") != "" {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		old, _ := filepath.Glob(filepath.Join(corpusDir, "seed-*"))
		for _, f := range old {
			os.Remove(f)
		}
		for i, seed := range fuzzSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(corpusDir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("regenerated %d corpus files", len(fuzzSeeds()))
		return
	}
	for i, seed := range fuzzSeeds() {
		name := filepath.Join(corpusDir, fmt.Sprintf("seed-%02d", i))
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("seed %d missing (run with REGEN_CORPUS=1 to regenerate): %v", i, err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if string(raw) != want {
			t.Errorf("seed %d out of sync with fuzzSeeds()", i)
		}
	}
}

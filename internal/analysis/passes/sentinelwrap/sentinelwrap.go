// Package sentinelwrap enforces the engine's error taxonomy: a
// function that operates on DSQL steps or plans (a dsql.Step or
// dsql.Plan in its parameters) and returns an error must not mint bare
// fmt.Errorf values. Step-scoped failures carry retry/abort semantics,
// so they must either wrap an underlying cause with %w (keeping the
// sentinel chain intact for errors.Is) or be built through a
// *StepError constructor. A bare fmt.Errorf breaks errors.Is(err,
// ErrFaultInjected)-style dispatch in the retry loop.
package sentinelwrap

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"pdwqo/internal/analysis"
)

const dsqlPkgPath = "pdwqo/internal/dsql"

// Analyzer is the sentinelwrap pass.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc:  "flag bare fmt.Errorf in step-scoped functions that must wrap StepError or %w",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !stepScoped(pass, fd) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// stepScoped reports whether fd takes a dsql type and returns an error.
func stepScoped(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	ft := fd.Type
	if ft.Results == nil {
		return false
	}
	returnsErr := false
	for _, r := range ft.Results.List {
		if t := pass.TypesInfo.Types[r.Type].Type; t != nil && t.String() == "error" {
			returnsErr = true
		}
	}
	if !returnsErr {
		return false
	}
	for _, p := range ft.Params.List {
		if t := pass.TypesInfo.Types[p.Type].Type; t != nil && mentionsDSQL(t) {
			return true
		}
	}
	return false
}

func mentionsDSQL(t types.Type) bool {
	s := t.String()
	// Only the step/plan payload types mark a function step-scoped;
	// other dsql-internal types (renderers, resolvers) carry the
	// package path without carrying execution semantics.
	return strings.Contains(s, dsqlPkgPath+".Step") || strings.Contains(s, dsqlPkgPath+".Plan")
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if returnsStepError(pass, call) {
			// The error is being wrapped into a *StepError; anything
			// inside the constructor call is sanctioned.
			return false
		}
		if isFmtErrorf(pass, call) {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				format, err := strconv.Unquote(lit.Value)
				if err == nil && !strings.Contains(format, "%w") {
					pass.Reportf(call.Pos(),
						"bare fmt.Errorf in a step-scoped function loses the error taxonomy; wrap the cause with %%w or build a *StepError")
				}
			}
		}
		return true
	})
}

func isFmtErrorf(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Name() == "Errorf" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "fmt"
}

// returnsStepError reports whether the called function's results
// include a *StepError.
func returnsStepError(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if strings.HasSuffix(sig.Results().At(i).Type().String(), ".StepError") {
			return true
		}
	}
	return false
}

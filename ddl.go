package pdwqo

import (
	"fmt"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/sqlparser"
	"pdwqo/internal/stats"
	"pdwqo/internal/types"
)

// NewShellFromDDL builds a shell database for an n-node appliance from PDW
// CREATE TABLE statements:
//
//	CREATE TABLE t (a BIGINT PRIMARY KEY, b VARCHAR(20), d DATE)
//	WITH (DISTRIBUTION = HASH(a))
//
// Statistics are attached later by Open (computed per node and merged, the
// §2.2 path) when data is loaded.
func NewShellFromDDL(nodes int, ddl ...string) (*Shell, error) {
	shell := catalog.NewShell(nodes)
	for _, stmtSQL := range ddl {
		stmt, err := sqlparser.Parse(stmtSQL)
		if err != nil {
			return nil, err
		}
		ct, ok := stmt.(*sqlparser.CreateTableStmt)
		if !ok {
			return nil, fmt.Errorf("pdwqo: expected CREATE TABLE, got %T", stmt)
		}
		tbl, err := algebra.BindCreateTable(ct)
		if err != nil {
			return nil, err
		}
		if err := shell.AddTable(tbl); err != nil {
			return nil, err
		}
	}
	return shell, nil
}

// buildMissingStats computes global statistics for any table that lacks
// them, following the paper's §2.2 path: rows are placed per the table's
// distribution, per-node local statistics are built, and the locals are
// merged into globals.
func buildMissingStats(shell *catalog.Shell, data map[string][]types.Row) error {
	nodes := shell.Topology.ComputeNodes
	if nodes < 1 {
		nodes = 1
	}
	for _, tbl := range shell.Tables() {
		if tbl.Stats != nil {
			continue
		}
		rows := data[tbl.Name]
		placed := placeRows(tbl, rows, nodes)
		locals := make([]*stats.Table, 0, nodes)
		for _, nodeRows := range placed {
			cols := map[string][]types.Value{}
			for ci, c := range tbl.Columns {
				vals := make([]types.Value, len(nodeRows))
				for ri, row := range nodeRows {
					if ci >= len(row) {
						return fmt.Errorf("pdwqo: table %q row has %d values, want %d",
							tbl.Name, len(row), len(tbl.Columns))
					}
					vals[ri] = row[ci]
				}
				cols[c.Name] = vals
			}
			st, err := stats.BuildTable(cols)
			if err != nil {
				return err
			}
			locals = append(locals, st)
		}
		var global *stats.Table
		if tbl.Dist.Kind == catalog.DistReplicated {
			global = locals[0]
		} else {
			global = stats.MergeTables(locals, tbl.Dist.Column)
		}
		if err := shell.SetStats(tbl.Name, global); err != nil {
			return err
		}
	}
	return nil
}

// placeRows assigns rows to nodes per the table's distribution.
func placeRows(tbl *catalog.Table, rows []types.Row, nodes int) [][]types.Row {
	out := make([][]types.Row, nodes)
	if tbl.Dist.Kind == catalog.DistReplicated {
		for i := range out {
			out[i] = rows
		}
		return out
	}
	ci := tbl.ColumnIndex(tbl.Dist.Column)
	for _, r := range rows {
		n := int(types.Hash(r[ci]) % uint64(nodes))
		out[n] = append(out[n], r)
	}
	return out
}

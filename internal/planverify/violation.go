package planverify

import (
	"fmt"
	"strings"
)

// Code is the typed class of one invariant violation. Codes are stable
// identifiers: tests and callers switch on them, and the README's
// violation taxonomy documents them.
type Code string

// Violation codes, grouped by layer.
const (
	// --- Plan-tree distribution soundness (CheckPlan) ---

	// CodeMalformedOption: an Option node is neither a relational
	// operator nor a data movement (or both), or its input arity is
	// wrong for its payload.
	CodeMalformedOption Code = "malformed-option"
	// CodeJoinNotCollocated: both join children are hash-distributed but
	// no equijoin conjunct pairs their partitioning column classes.
	CodeJoinNotCollocated Code = "join-not-collocated"
	// CodeJoinPlacement: the children's placement kinds cannot produce a
	// correct join of this kind without movement (e.g. a single-node
	// side against a distributed side, a replicated left under an outer
	// join, a full-outer join over a replicated right).
	CodeJoinPlacement Code = "join-placement"
	// CodeGroupByPlacement: a complete or global aggregation over a
	// placement that can split one group's rows across nodes.
	CodeGroupByPlacement Code = "groupby-placement"
	// CodeUnionPlacement: UNION ALL branches with incompatible
	// placements.
	CodeUnionPlacement Code = "union-placement"
	// CodeMoveDistribution: a movement's output placement does not match
	// what its kind promises (e.g. a Shuffle not hash-placed on its
	// routing column, a Broadcast not replicated).
	CodeMoveDistribution Code = "move-distribution"
	// CodeMoveSource: a movement applied to a placement its kind cannot
	// consume (e.g. a Trim over a hash-distributed input).
	CodeMoveSource Code = "move-source"
	// CodeHashColsNotOutput: a hash placement claims partitioning
	// columns the node does not output.
	CodeHashColsNotOutput Code = "hash-cols-not-output"
	// CodeEstimateNegative: a negative or NaN row count, width or cost
	// estimate, or a cost smaller than one of its inputs' costs.
	CodeEstimateNegative Code = "estimate-negative"
	// CodeAggFinalInput: a finalizing aggregation whose input is not a
	// data movement over a matching partial aggregation — finalizing
	// already-complete input double-counts every group.
	CodeAggFinalInput Code = "agg-final-input"
	// CodeAggPartialOrphan: a partial aggregation that does not reach
	// exactly one finalizing aggregation through data movements — its
	// per-node states escape unmerged.
	CodeAggPartialOrphan Code = "agg-partial-orphan"
	// CodeAggSplitMismatch: a partial/final pair whose grouping keys,
	// state columns or merge functions disagree, or a non-decomposable
	// (DISTINCT) aggregate that was split anyway.
	CodeAggSplitMismatch Code = "agg-split-mismatch"

	// --- DSQL dataflow soundness (CheckDSQL) ---

	// CodeReturnMissing: the plan has no Return step.
	CodeReturnMissing Code = "return-missing"
	// CodeReturnNotLast: a Return step that is not the final step, or
	// more than one Return step.
	CodeReturnNotLast Code = "return-not-last"
	// CodeStepIDOrder: step IDs are not the dense sequence 0..n-1.
	CodeStepIDOrder Code = "step-id-order"
	// CodeTempUseBeforeDef: step SQL reads a temp table a strictly
	// later step produces.
	CodeTempUseBeforeDef Code = "temp-use-before-def"
	// CodeTempUnknown: step SQL reads a temp table no step produces —
	// a dangling reference.
	CodeTempUnknown Code = "temp-unknown"
	// CodeTempRedefined: two steps claim the same destination temp.
	CodeTempRedefined Code = "temp-redefined"
	// CodeTempOrphan: a produced temp table no later step reads.
	CodeTempOrphan Code = "temp-orphan"
	// CodeUnknownBaseTable: step SQL references a [dbo] table absent
	// from the shell catalog.
	CodeUnknownBaseTable Code = "unknown-base-table"
	// CodeMoveStepShape: a move step whose fields are inconsistent with
	// its kind (missing destination, routing column absent from the
	// destination schema, a routing column on a non-hashing kind, source
	// placement the kind cannot consume, or a non-idempotent move).
	CodeMoveStepShape Code = "move-step-shape"
	// CodeMoveSetMismatch: the multiset of move kinds in the step list
	// differs from the distinct movements of the plan tree.
	CodeMoveSetMismatch Code = "move-set-mismatch"

	// --- MEMO-side invariants (CheckMemo / CheckInteresting) ---

	// CodeMemoRootMissing: the root group id resolves to no group.
	CodeMemoRootMissing Code = "memo-root-missing"
	// CodeMemoDanglingChild: an expression references a group id that
	// does not exist.
	CodeMemoDanglingChild Code = "memo-dangling-child"
	// CodeMemoCycle: the group graph reachable from the root contains a
	// cycle.
	CodeMemoCycle Code = "memo-cycle"
	// CodeMemoEmptyGroup: a group with no expressions.
	CodeMemoEmptyGroup Code = "memo-empty-group"
	// CodeWinnerDangling: a winner expression references a child group
	// with no expressions to extract from.
	CodeWinnerDangling Code = "winner-dangling"
	// CodeWinnerDuplicate: a group with more than one winner.
	CodeWinnerDuplicate Code = "winner-duplicate"
	// CodeMemoEstimate: a negative or NaN group cardinality, width,
	// column statistic or expression cost.
	CodeMemoEstimate Code = "memo-estimate"
	// CodeInterestingNotClosed: the interesting-column sets are not
	// closed under equijoin transitivity, group-by keys or parent
	// demand.
	CodeInterestingNotClosed Code = "interesting-not-closed"
)

// Violation is one detected invariant breach. Step and Group locate it
// when the layer has such a coordinate; -1 means not applicable.
type Violation struct {
	Code   Code
	Step   int
	Group  int
	Detail string
}

// String renders the violation with its coordinates.
func (v Violation) String() string {
	var b strings.Builder
	b.WriteString(string(v.Code))
	if v.Step >= 0 {
		fmt.Fprintf(&b, " step=%d", v.Step)
	}
	if v.Group >= 0 {
		fmt.Fprintf(&b, " group=%d", v.Group)
	}
	b.WriteString(": ")
	b.WriteString(v.Detail)
	return b.String()
}

// violation builds a coordinate-free violation.
func violation(code Code, format string, args ...any) Violation {
	return Violation{Code: code, Step: -1, Group: -1, Detail: fmt.Sprintf(format, args...)}
}

// stepViolation locates a violation at a DSQL step.
func stepViolation(code Code, step int, format string, args ...any) Violation {
	return Violation{Code: code, Step: step, Group: -1, Detail: fmt.Sprintf(format, args...)}
}

// groupViolation locates a violation at a memo group.
func groupViolation(code Code, group int, format string, args ...any) Violation {
	return Violation{Code: code, Step: -1, Group: group, Detail: fmt.Sprintf(format, args...)}
}

// Report collects the violations of one verification run.
type Report struct {
	Violations []Violation
}

func (r *Report) add(vs ...Violation) { r.Violations = append(r.Violations, vs...) }

// OK reports a clean run.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Has reports whether any violation carries the code.
func (r *Report) Has(code Code) bool {
	for _, v := range r.Violations {
		if v.Code == code {
			return true
		}
	}
	return false
}

// Err returns a typed *Error carrying the violations, or nil when the
// run was clean. The concrete type is recoverable with errors.As.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return &Error{Violations: r.Violations}
}

// Error is the typed failure of a verification run.
type Error struct {
	Violations []Violation
}

// Error renders every violation, one per line after the summary.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "planverify: %d violation(s)", len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Package vec implements the typed columnar batch format of the
// node-local vectorized executor: column vectors carrying int64 /
// float64 / string / bool payloads with null bitmaps, grouped into
// fixed-capacity batches. A vector is typed when every non-NULL value in
// it shares one kind — the overwhelmingly common case for stored tables
// — and falls back to a boxed values payload when an expression (e.g. a
// CASE whose branches disagree) mixes kinds in one column. The format is
// node-local only: rows remain the currency of data movement, and the
// scan/materialize boundaries convert.
package vec

import "pdwqo/internal/types"

// BatchSize is the row capacity of one execution batch. It is a
// multiple of 64 so batch-aligned windows of a table's null bitmaps can
// be word-sliced without copying.
const BatchSize = 1024

// Vec is one column vector. Payload storage depends on Kind:
//
//	KindInt, KindDate, KindBool → I64 (bool as 0/1, date as epoch days)
//	KindFloat                   → F64
//	KindString                  → Str
//	mixed kinds                 → Vals (boxed fallback)
//
// NULL rows have a set bit in Nulls and a zero payload slot. A vector
// whose rows are all NULL has Kind KindNull and no payload.
type Vec struct {
	Kind  types.Kind
	Mixed bool
	Nulls []uint64 // bit i set = row i is NULL; nil = no NULLs
	I64   []int64
	F64   []float64
	Str   []string
	Vals  []types.Value
	n     int
}

// NewVec returns an empty vector with capacity for n rows of the kind.
func NewVec(kind types.Kind, n int) *Vec {
	v := &Vec{Kind: kind}
	v.grow(kind, n)
	return v
}

func (v *Vec) grow(kind types.Kind, n int) {
	switch kind {
	case types.KindInt, types.KindDate, types.KindBool:
		v.I64 = make([]int64, 0, n)
	case types.KindFloat:
		v.F64 = make([]float64, 0, n)
	case types.KindString:
		v.Str = make([]string, 0, n)
	}
}

// Len returns the number of rows.
func (v *Vec) Len() int { return v.n }

// IsNull reports whether row i is NULL. The bitmap is grown lazily only
// as far as the highest NULL row, so rows past its end are non-NULL.
func (v *Vec) IsNull(i int) bool {
	w := i >> 6
	return w < len(v.Nulls) && v.Nulls[w]&(1<<(uint(i)&63)) != 0
}

// SetNull marks row i NULL, growing the bitmap as needed. The payload
// slot keeps whatever value it holds; readers consult the bitmap first.
func (v *Vec) SetNull(i int) {
	w := i>>6 + 1
	for len(v.Nulls) < w {
		v.Nulls = append(v.Nulls, 0)
	}
	v.Nulls[i>>6] |= 1 << (uint(i) & 63)
}

func (v *Vec) setNull(i int) { v.SetNull(i) }

// NewDense returns a typed vector of n rows with the payload allocated
// at full length for direct indexed writes — the kernel output shape.
// All rows start non-NULL and zero.
func NewDense(kind types.Kind, n int) *Vec {
	v := &Vec{Kind: kind, n: n}
	switch kind {
	case types.KindInt, types.KindDate, types.KindBool:
		v.I64 = make([]int64, n)
	case types.KindFloat:
		v.F64 = make([]float64, n)
	case types.KindString:
		v.Str = make([]string, n)
	}
	return v
}

// OrNulls unions the null bitmaps of a and b (either may be nil-bitmap)
// into v, which must have at least as many rows. Kernels use this to
// propagate NULL-in → NULL-out without per-row branches.
func (v *Vec) OrNulls(a, b *Vec) {
	la, lb := len(a.Nulls), len(b.Nulls)
	w := la
	if lb > w {
		w = lb
	}
	if w == 0 {
		return
	}
	v.Nulls = make([]uint64, w)
	copy(v.Nulls, a.Nulls)
	for i := 0; i < lb; i++ {
		v.Nulls[i] |= b.Nulls[i]
	}
}

// CopyNulls shares a's null bitmap with v. Kernel outputs are read-only
// after construction, so aliasing the words is safe and copy-free.
func (v *Vec) CopyNulls(a *Vec) { v.Nulls = a.Nulls }

// Extend appends every row of o onto v. Same-kind typed payloads are
// bulk-copied; kind mixes fall back to boxed appends (demoting v).
func (v *Vec) Extend(o *Vec) {
	on := o.Len()
	if on == 0 {
		return
	}
	typedSame := !v.Mixed && !o.Mixed &&
		(v.Kind == o.Kind || (v.n == 0 && v.Kind == types.KindNull) || o.Kind == types.KindNull)
	if !typedSame {
		for i := 0; i < on; i++ {
			v.Append(o.At(i))
		}
		return
	}
	base := v.n
	if o.Kind != types.KindNull && v.Kind == types.KindNull {
		v.Kind = o.Kind
		v.grow(v.Kind, on)
	}
	switch v.Kind {
	case types.KindInt, types.KindDate, types.KindBool:
		v.I64 = append(v.I64, o.I64...)
	case types.KindFloat:
		v.F64 = append(v.F64, o.F64...)
	case types.KindString:
		v.Str = append(v.Str, o.Str...)
	case types.KindNull:
		// Both sides all-NULL: no payload to copy.
	}
	v.n += on
	if o.Kind == types.KindNull && v.Kind != types.KindNull {
		// An all-NULL extension onto a typed vector: pad the payload.
		for i := 0; i < on; i++ {
			v.appendZero()
		}
	}
	if o.Nulls != nil || o.Kind == types.KindNull {
		for i := 0; i < on; i++ {
			if o.IsNull(i) {
				v.SetNull(base + i)
			}
		}
	}
}

// At returns row i as a boxed value. The Value is a small struct, so
// this is a stack construction, not a heap allocation.
func (v *Vec) At(i int) types.Value {
	if v.IsNull(i) {
		return types.Null
	}
	if v.Mixed {
		return v.Vals[i]
	}
	switch v.Kind {
	case types.KindInt:
		return types.NewInt(v.I64[i])
	case types.KindDate:
		return types.NewDate(v.I64[i])
	case types.KindBool:
		return types.NewBool(v.I64[i] != 0)
	case types.KindFloat:
		return types.NewFloat(v.F64[i])
	case types.KindString:
		return types.NewString(v.Str[i])
	}
	return types.Null
}

// AppendNull appends a NULL row.
func (v *Vec) AppendNull() {
	v.setNull(v.n)
	v.appendZero()
	v.n++
}

func (v *Vec) appendZero() {
	if v.Mixed {
		v.Vals = append(v.Vals, types.Null)
		return
	}
	switch v.Kind {
	case types.KindInt, types.KindDate, types.KindBool:
		v.I64 = append(v.I64, 0)
	case types.KindFloat:
		v.F64 = append(v.F64, 0)
	case types.KindString:
		v.Str = append(v.Str, "")
	}
}

// Append appends one value, adopting its kind if the vector is still
// all-NULL and demoting the vector to the boxed payload on a kind mix.
func (v *Vec) Append(val types.Value) {
	if val.IsNull() {
		v.AppendNull()
		return
	}
	if !v.Mixed && v.Kind == types.KindNull {
		// First non-NULL value fixes the payload kind; re-type the
		// zero-filled prefix appended for earlier NULL rows.
		v.Kind = val.Kind()
		v.grow(v.Kind, v.n+1)
		for i := 0; i < v.n; i++ {
			v.appendZero()
		}
	}
	if !v.Mixed && val.Kind() != v.Kind {
		v.demote()
	}
	if v.Mixed {
		v.Vals = append(v.Vals, val)
		v.n++
		return
	}
	switch v.Kind {
	case types.KindInt:
		v.I64 = append(v.I64, val.Int())
	case types.KindDate:
		v.I64 = append(v.I64, val.DateDays())
	case types.KindBool:
		if val.Bool() {
			v.I64 = append(v.I64, 1)
		} else {
			v.I64 = append(v.I64, 0)
		}
	case types.KindFloat:
		v.F64 = append(v.F64, val.Float())
	case types.KindString:
		v.Str = append(v.Str, val.Str())
	}
	v.n++
}

// demote reboxes a typed payload into Vals, preserving row count.
func (v *Vec) demote() {
	vals := make([]types.Value, v.n, v.n+1)
	for i := 0; i < v.n; i++ {
		vals[i] = v.At(i)
	}
	v.Mixed = true
	v.Vals = vals
	v.I64, v.F64, v.Str = nil, nil, nil
}

// AppendInt appends a typed BIGINT row without boxing. The vector must
// already be typed KindInt (or empty).
func (v *Vec) AppendInt(x int64) {
	if v.Kind == types.KindNull && !v.Mixed && v.n == 0 {
		v.Kind = types.KindInt
	}
	v.I64 = append(v.I64, x)
	v.n++
}

// AppendFloat appends a typed FLOAT row without boxing.
func (v *Vec) AppendFloat(x float64) {
	if v.Kind == types.KindNull && !v.Mixed && v.n == 0 {
		v.Kind = types.KindFloat
	}
	v.F64 = append(v.F64, x)
	v.n++
}

// AppendBool appends a typed BIT row without boxing.
func (v *Vec) AppendBool(b bool) {
	if v.Kind == types.KindNull && !v.Mixed && v.n == 0 {
		v.Kind = types.KindBool
	}
	if b {
		v.I64 = append(v.I64, 1)
	} else {
		v.I64 = append(v.I64, 0)
	}
	v.n++
}

// Window returns rows [lo, hi) sharing payload storage with v. lo must
// be a multiple of 64 (batch-aligned scans guarantee this) so the null
// bitmap can be word-sliced.
func (v *Vec) Window(lo, hi int) *Vec {
	if lo&63 != 0 {
		panic("vec: Window start must be 64-aligned")
	}
	out := &Vec{Kind: v.Kind, Mixed: v.Mixed, n: hi - lo}
	if v.Nulls != nil {
		w0, w1 := lo>>6, (hi+63)>>6
		if w0 < len(v.Nulls) {
			if w1 > len(v.Nulls) {
				w1 = len(v.Nulls)
			}
			out.Nulls = v.Nulls[w0:w1]
			all0 := true
			for _, w := range out.Nulls {
				if w != 0 {
					all0 = false
					break
				}
			}
			if all0 {
				out.Nulls = nil
			}
		}
	}
	if v.Mixed {
		out.Vals = v.Vals[lo:hi]
		return out
	}
	switch v.Kind {
	case types.KindInt, types.KindDate, types.KindBool:
		out.I64 = v.I64[lo:hi]
	case types.KindFloat:
		out.F64 = v.F64[lo:hi]
	case types.KindString:
		out.Str = v.Str[lo:hi]
	}
	return out
}

// Gather returns a new vector holding v's rows at the selected
// positions, in selection order.
func (v *Vec) Gather(sel []int32) *Vec {
	out := &Vec{Kind: v.Kind, Mixed: v.Mixed, n: len(sel)}
	if v.Nulls != nil {
		for oi, i := range sel {
			if v.IsNull(int(i)) {
				out.setNull(oi)
			}
		}
	}
	if v.Mixed {
		out.Vals = make([]types.Value, len(sel))
		for oi, i := range sel {
			out.Vals[oi] = v.Vals[i]
		}
		return out
	}
	switch v.Kind {
	case types.KindInt, types.KindDate, types.KindBool:
		out.I64 = make([]int64, len(sel))
		for oi, i := range sel {
			out.I64[oi] = v.I64[i]
		}
	case types.KindFloat:
		out.F64 = make([]float64, len(sel))
		for oi, i := range sel {
			out.F64[oi] = v.F64[i]
		}
	case types.KindString:
		out.Str = make([]string, len(sel))
		for oi, i := range sel {
			out.Str[oi] = v.Str[i]
		}
	}
	return out
}

// FromValues builds a vector from boxed values.
func FromValues(vals []types.Value) *Vec {
	v := &Vec{}
	for _, x := range vals {
		v.Append(x)
	}
	return v
}

// Batch is a set of equal-length column vectors.
type Batch struct {
	N    int
	Cols []*Vec
}

// Table is a fully columnarized stored table: the zero-copy source the
// vectorized scan windows batches out of.
type Table struct {
	Names []string
	N     int
	Cols  []*Vec
}

// FromRows columnarizes a row relation under the given column names.
func FromRows(names []string, rows []types.Row) *Table {
	t := &Table{Names: names, N: len(rows)}
	t.Cols = make([]*Vec, len(names))
	for c := range t.Cols {
		v := &Vec{}
		for _, r := range rows {
			v.Append(r[c])
		}
		t.Cols[c] = v
	}
	return t
}

// Package serverdiff certifies the query server's wire path against the
// library path: the same appliance, the same corpus, byte-identical
// results. It lives in its own directory (rather than in
// internal/difftest proper) so the wire sweep compiles into its own test
// binary with its own -timeout budget; the comparison machinery is shared
// through internal/difftest's exported helpers.
package serverdiff

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"pdwqo"
	"pdwqo/internal/difftest"
	"pdwqo/internal/server"
)

// ServerDiff certifies the wire path for one case: the query is executed
// through an open client connection (session → admission → shared plan
// cache → engine → result frames) and through the library path on the
// same appliance, and the two result relations must match byte-for-byte —
// same column names, same rows, same order, same rendered values. The
// server streams rows as strings, so the comparison is against the same
// canonical rendering the library sweeps use.
func ServerDiff(db *pdwqo.DB, c *server.Client, cs difftest.Case) error {
	wire, err := c.Query(context.Background(), cs.SQL)
	if err != nil {
		return fmt.Errorf("%s: wire execute: %w", cs.Name, err)
	}
	plan, err := db.Optimize(cs.SQL, pdwqo.Options{})
	if err != nil {
		return fmt.Errorf("%s: library optimize: %w", cs.Name, err)
	}
	ref, err := db.ExecutePlan(plan)
	if err != nil {
		return fmt.Errorf("%s: library execute: %w", cs.Name, err)
	}
	return diffWire(cs.Name, wire, ref)
}

// ServerChaos is the wire-path analogue of difftest's Chaos: execute the
// case over the connection while the appliance runs a seeded random fault
// plan with retries. If the retries absorb every fault the wire result
// must be byte-identical to the fault-free library reference; if they
// don't, the client must observe a typed execution error — never a
// protocol wedge or a dead session. Either way no temp or staging table
// may leak. The appliance's fault plan and retry policy are restored
// before returning.
func ServerChaos(db *pdwqo.DB, c *server.Client, cs difftest.Case, seed int64, maxRetries int) error {
	// Fault-free reference first.
	plan, err := db.Optimize(cs.SQL, pdwqo.Options{})
	if err != nil {
		return fmt.Errorf("%s: optimize: %w", cs.Name, err)
	}
	ref, err := db.ExecutePlan(plan)
	if err != nil {
		return fmt.Errorf("%s: fault-free reference execute: %w", cs.Name, err)
	}

	a := db.Appliance()
	prevBackoff := a.RetryBackoff
	db.SetFaultPlan(pdwqo.RandomFaultPlan(seed, len(plan.DSQL.Steps), a.Shell.Topology.ComputeNodes))
	db.SetResilience(maxRetries, 0)
	a.RetryBackoff = 50 * time.Microsecond

	wire, werr := c.Query(context.Background(), cs.SQL)

	db.SetFaultPlan(nil)
	db.SetResilience(0, 0)
	a.RetryBackoff = prevBackoff

	if leaks := difftest.LeakedTables(db); len(leaks) > 0 {
		return fmt.Errorf("%s: leaked tables after wire chaos run (seed %d): %v", cs.Name, seed, leaks)
	}
	if werr != nil {
		var se *server.Error
		if !errors.As(werr, &se) || se.Code != server.CodeExec {
			return fmt.Errorf("%s: chaos failure (seed %d) is not a typed exec error: %w", cs.Name, seed, werr)
		}
		// The session must survive a failed query: re-run fault-free over
		// the same connection and match the reference.
		wire, err = c.Query(context.Background(), cs.SQL)
		if err != nil {
			return fmt.Errorf("%s: session dead after chaos failure (seed %d): %w", cs.Name, seed, err)
		}
	}
	if derr := diffWire(cs.Name, wire, ref); derr != nil {
		return fmt.Errorf("chaos (seed %d, retries %d): %w", seed, maxRetries, derr)
	}
	return nil
}

// diffWire asserts the streamed wire result matches a library result
// exactly, comparing the same canonical per-row rendering the library
// sweeps use.
func diffWire(name string, wire *server.Result, ref *pdwqo.Result) error {
	if wc, rc := strings.Join(wire.Columns, "|"), strings.Join(ref.Columns, "|"); wc != rc {
		return fmt.Errorf("%s: columns diverged: wire %q, library %q", name, wc, rc)
	}
	if len(wire.Rows) != len(ref.Rows) {
		return fmt.Errorf("%s: row count diverged: wire %d, library %d", name, len(wire.Rows), len(ref.Rows))
	}
	for i := range ref.Rows {
		w, r := strings.Join(wire.Rows[i], "|"), difftest.CanonRow(ref.Rows[i])
		if w != r {
			return fmt.Errorf("%s: row %d diverged:\n  wire:    %s\n  library: %s", name, i, w, r)
		}
	}
	return nil
}

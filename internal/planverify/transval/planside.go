package transval

import (
	"fmt"
	"sort"
	"strings"

	"pdwqo/internal/algebra"
	"pdwqo/internal/catalog"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/planverify"
	"pdwqo/internal/types"
)

// absCol is one column in the abstract state: its identity, derived type,
// nullability bit (3VL: true = a NULL can reach this column), and the set
// of base columns it descends from ("table.column" strings).
type absCol struct {
	ID       algebra.ColumnID
	Type     types.Kind
	Nullable bool
	Origins  map[string]struct{}
}

// absDist is the re-derived placement of an intermediate.
type absDist struct {
	Kind core.DistKind
	Cols algebra.ColSet // hash equivalence class; nil for non-hash kinds
}

func (d absDist) String() string {
	return core.Distribution{Kind: d.Kind, Cols: d.Cols}.String()
}

func distEqual(a, b absDist) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind != core.DistHash {
		return true
	}
	if len(a.Cols) != len(b.Cols) {
		return false
	}
	return a.Cols.SubsetOf(b.Cols)
}

// restrictAbs mirrors core.Distribution.restrict: hash classes drop members
// not in the output and gain pass-through renames.
func restrictAbs(d absDist, out algebra.ColSet, rename map[algebra.ColumnID][]algebra.ColumnID) absDist {
	if d.Kind != core.DistHash {
		return d
	}
	cols := algebra.NewColSet()
	for id := range d.Cols {
		if out.Has(id) {
			cols.Add(id)
		}
		for _, nid := range rename[id] {
			if out.Has(nid) {
				cols.Add(nid)
			}
		}
	}
	return absDist{Kind: core.DistHash, Cols: cols}
}

// absRel is the abstract state of one intermediate relation.
type absRel struct {
	cols []absCol
	dist absDist
}

func (r *absRel) byID(id algebra.ColumnID) *absCol {
	for i := range r.cols {
		if r.cols[i].ID == id {
			return &r.cols[i]
		}
	}
	return nil
}

func (r *absRel) outSet() algebra.ColSet {
	s := algebra.NewColSet()
	for _, c := range r.cols {
		s.Add(c.ID)
	}
	return s
}

func cloneCols(cols []absCol) []absCol {
	out := make([]absCol, len(cols))
	copy(out, cols)
	return out
}

func mergeOrigins(sets ...map[string]struct{}) map[string]struct{} {
	out := map[string]struct{}{}
	for _, s := range sets {
		for k := range s {
			out[k] = struct{}{}
		}
	}
	return out
}

// --- Scalar analysis over abstract columns ---
//
// These mirror the algebra's own Type() derivation but resolve column
// references through the abstract state instead of trusting the ColRef's
// embedded metadata, so both sides of the comparison derive independently.

type colLookup func(algebra.ColumnID) *absCol

func typeOfScalar(e algebra.Scalar, look colLookup) types.Kind {
	switch x := e.(type) {
	case *algebra.ColRef:
		if c := look(x.ID); c != nil {
			return c.Type
		}
		return x.Meta.Type
	case *algebra.Const:
		return x.Val.Kind()
	case *algebra.Binary:
		if x.Op.IsComparison() || x.Op == binOpAnd || x.Op == binOpOr {
			return types.KindBool
		}
		if x.Op == binOpDiv {
			return types.KindFloat
		}
		lt, rt := typeOfScalar(x.L, look), typeOfScalar(x.R, look)
		if lt == types.KindFloat || rt == types.KindFloat {
			return types.KindFloat
		}
		if lt == types.KindNull {
			return rt
		}
		return lt
	case *algebra.Not, *algebra.IsNull, *algebra.Like, *algebra.InList:
		return types.KindBool
	case *algebra.Neg:
		return typeOfScalar(x.E, look)
	case *algebra.Func:
		return x.Out
	case *algebra.Case:
		for _, w := range x.Whens {
			if t := typeOfScalar(w.Then, look); t != types.KindNull {
				return t
			}
		}
		if x.Else != nil {
			return typeOfScalar(x.Else, look)
		}
		return types.KindNull
	case *algebra.Cast:
		return x.To
	default:
		return types.KindNull
	}
}

func nullableScalar(e algebra.Scalar, look colLookup) bool {
	switch x := e.(type) {
	case *algebra.ColRef:
		if c := look(x.ID); c != nil {
			return c.Nullable
		}
		return true
	case *algebra.Const:
		// A parameterized constant re-binds to literal text, never NULL.
		if x.Param > 0 {
			return false
		}
		return x.Val.IsNull()
	case *algebra.Binary:
		return nullableScalar(x.L, look) || nullableScalar(x.R, look)
	case *algebra.Not:
		return nullableScalar(x.E, look)
	case *algebra.Neg:
		return nullableScalar(x.E, look)
	case *algebra.IsNull:
		return false
	case *algebra.Like:
		return nullableScalar(x.E, look)
	case *algebra.InList:
		n := nullableScalar(x.E, look)
		for _, el := range x.List {
			n = n || nullableScalar(el, look)
		}
		return n
	case *algebra.Func:
		// Every bound scalar function (DATEADD, YEAR, SUBSTRING) is
		// NULL-propagating, matching vec's OrNulls convention.
		for _, a := range x.Args {
			if nullableScalar(a, look) {
				return true
			}
		}
		return false
	case *algebra.Case:
		for _, w := range x.Whens {
			if nullableScalar(w.Then, look) {
				return true
			}
		}
		if x.Else == nil {
			return true
		}
		return nullableScalar(x.Else, look)
	case *algebra.Cast:
		return nullableScalar(x.E, look)
	default:
		return true
	}
}

func originsScalar(e algebra.Scalar, look colLookup) map[string]struct{} {
	out := map[string]struct{}{}
	algebra.VisitScalar(e, func(s algebra.Scalar) {
		if cr, ok := s.(*algebra.ColRef); ok {
			if c := look(cr.ID); c != nil {
				for k := range c.Origins {
					out[k] = struct{}{}
				}
			}
		}
	})
	return out
}

// nullDeps returns the columns whose NULL forces the value expression to
// evaluate to NULL. CASE is conservatively empty: a CASE can mask a NULL
// input (WHEN c IS NULL THEN 0 ELSE c END), so its inputs must not be
// treated as killed by a comparison over the CASE.
func nullDeps(e algebra.Scalar) algebra.ColSet {
	out := algebra.NewColSet()
	switch x := e.(type) {
	case *algebra.ColRef:
		out.Add(x.ID)
	case *algebra.Binary:
		if !x.Op.IsComparison() && x.Op != binOpAnd && x.Op != binOpOr {
			out.AddSet(nullDeps(x.L))
			out.AddSet(nullDeps(x.R))
		}
	case *algebra.Neg:
		out.AddSet(nullDeps(x.E))
	case *algebra.Cast:
		out.AddSet(nullDeps(x.E))
	case *algebra.Func:
		for _, a := range x.Args {
			out.AddSet(nullDeps(a))
		}
	}
	return out
}

// killSet returns the columns a filter conjunct proves non-NULL on the
// rows it passes: a comparison, LIKE or IN yields UNKNOWN (filtered out)
// whenever one of its null-dependencies is NULL; IS NOT NULL kills its
// dependencies directly. OR, NOT, plain IS NULL and CASE conjuncts kill
// nothing.
func killSet(conj algebra.Scalar) algebra.ColSet {
	out := algebra.NewColSet()
	switch x := conj.(type) {
	case *algebra.Binary:
		if x.Op.IsComparison() {
			out.AddSet(nullDeps(x.L))
			out.AddSet(nullDeps(x.R))
		}
	case *algebra.Like:
		out.AddSet(nullDeps(x.E))
	case *algebra.InList:
		out.AddSet(nullDeps(x.E))
	case *algebra.IsNull:
		if x.Negated {
			out.AddSet(nullDeps(x.E))
		}
	}
	return out
}

func applyKills(cols []absCol, kills algebra.ColSet) {
	for i := range cols {
		if kills.Has(cols[i].ID) {
			cols[i].Nullable = false
		}
	}
}

// --- Plan-side abstract interpreter ---

// planInterp evaluates the abstract state of every plan option, memoized,
// and cross-checks each option's re-derived placement against the
// optimizer's recorded one.
type planInterp struct {
	rels      map[*core.Option]*absRel
	moveDest  map[*core.Option]string
	slotKinds map[int]types.Kind
	vs        []planverify.Violation
	step      int // DSQL step being validated, for violation coordinates
}

func newPlanInterp() *planInterp {
	return &planInterp{
		rels:      map[*core.Option]*absRel{},
		moveDest:  map[*core.Option]string{},
		slotKinds: map[int]types.Kind{},
		step:      -1,
	}
}

func (pi *planInterp) violatef(code planverify.Code, format string, args ...any) {
	pi.vs = append(pi.vs, planverify.Violation{
		Code: code, Step: pi.step, Group: -1, Detail: fmt.Sprintf(format, args...),
	})
}

// collectSlotKinds records the value kind of every parameter slot in the
// plan, so the SQL-side interpreter can type re-parsed placeholders.
func (pi *planInterp) collectSlotKinds(o *core.Option) {
	o.Visit(func(n *core.Option) {
		if n.Op == nil {
			return
		}
		for _, s := range algebra.OperatorScalars(n.Op) {
			algebra.VisitScalar(s, func(e algebra.Scalar) {
				if c, ok := e.(*algebra.Const); ok {
					if slot, ok := c.Slot(); ok {
						pi.slotKinds[slot] = c.Val.Kind()
					}
				}
			})
		}
	})
}

// rel returns the abstract state of an option, deriving it on first use.
// The derivation mirrors the enumerator's distribution rules exactly; a
// mismatch between the re-derived placement and the option's recorded one
// is a distribution violation.
func (pi *planInterp) rel(o *core.Option) *absRel {
	if r, ok := pi.rels[o]; ok {
		return r
	}
	r, derivable := pi.derive(o)
	pi.rels[o] = r
	recorded := absDist{Kind: o.Dist.Kind, Cols: o.Dist.Cols}
	if !derivable {
		pi.violatef(CodeDistribution, "placement of %s is not derivable from its inputs (recorded %s)",
			describeOption(o), recorded)
		r.dist = recorded
	} else if !distEqual(r.dist, recorded) {
		pi.violatef(CodeDistribution, "%s: re-derived placement %s does not match recorded %s",
			describeOption(o), r.dist, recorded)
	}
	return r
}

func describeOption(o *core.Option) string {
	if o.Move != nil {
		return "move " + o.Move.String()
	}
	return o.Op.OpName()
}

// derive computes the abstract state bottom-up. The second result is false
// when the children's placements admit no movement-free combination for
// this operator (the enumerator would never have built it).
func (pi *planInterp) derive(o *core.Option) (*absRel, bool) {
	if o.Move != nil {
		in := pi.rel(o.Inputs[0])
		var d absDist
		switch o.Move.Kind {
		case cost.Shuffle, cost.Trim:
			d = absDist{Kind: core.DistHash, Cols: algebra.NewColSet(o.Move.Col)}
		case cost.Broadcast, cost.ControlNodeMove, cost.ReplicatedBroadcast:
			d = absDist{Kind: core.DistReplicated}
		case cost.PartitionMove, cost.RemoteCopySingle:
			d = absDist{Kind: core.DistSingle}
		}
		return &absRel{cols: cloneCols(in.cols), dist: d}, true
	}

	switch op := o.Op.(type) {
	case *algebra.Get:
		cols := make([]absCol, len(op.Cols))
		for i, c := range op.Cols {
			cols[i] = absCol{
				ID: c.ID, Type: c.Type, Nullable: false,
				Origins: map[string]struct{}{op.Table.Name + "." + c.Name: {}},
			}
		}
		d := absDist{Kind: core.DistReplicated}
		if op.Table.Dist.Kind == catalog.DistHash {
			s := algebra.NewColSet()
			for _, c := range op.Cols {
				if strings.EqualFold(c.Name, op.Table.Dist.Column) {
					s.Add(c.ID)
				}
			}
			d = absDist{Kind: core.DistHash, Cols: s}
		}
		return &absRel{cols: cols, dist: d}, true

	case *algebra.Values:
		cols := make([]absCol, len(op.Cols))
		for i, c := range op.Cols {
			nullable := len(op.Rows) == 0
			for _, row := range op.Rows {
				if i < len(row) && row[i].IsNull() {
					nullable = true
				}
			}
			cols[i] = absCol{ID: c.ID, Type: c.Type, Nullable: nullable, Origins: map[string]struct{}{}}
		}
		return &absRel{cols: cols, dist: absDist{Kind: core.DistReplicated}}, true

	case *algebra.Select:
		in := pi.rel(o.Inputs[0])
		r := &absRel{cols: cloneCols(in.cols)}
		for _, c := range algebra.Conjuncts(op.Filter) {
			applyKills(r.cols, killSet(c))
		}
		r.dist = restrictAbs(in.dist, r.outSet(), nil)
		return r, true

	case *algebra.Sort:
		in := pi.rel(o.Inputs[0])
		r := &absRel{cols: cloneCols(in.cols)}
		r.dist = restrictAbs(in.dist, r.outSet(), nil)
		return r, true

	case *algebra.Project:
		in := pi.rel(o.Inputs[0])
		rename := map[algebra.ColumnID][]algebra.ColumnID{}
		for _, d := range op.Defs {
			if cr, ok := d.Expr.(*algebra.ColRef); ok {
				rename[cr.ID] = append(rename[cr.ID], d.ID)
			}
		}
		cols := make([]absCol, len(op.Defs))
		for i, d := range op.Defs {
			if cr, ok := d.Expr.(*algebra.ColRef); ok {
				if src := in.byID(cr.ID); src != nil {
					cols[i] = absCol{ID: d.ID, Type: src.Type, Nullable: src.Nullable, Origins: src.Origins}
					continue
				}
			}
			cols[i] = absCol{
				ID:       d.ID,
				Type:     typeOfScalar(d.Expr, in.byID),
				Nullable: nullableScalar(d.Expr, in.byID),
				Origins:  originsScalar(d.Expr, in.byID),
			}
		}
		r := &absRel{cols: cols}
		r.dist = restrictAbs(in.dist, r.outSet(), rename)
		return r, true

	case *algebra.Join:
		return pi.deriveJoin(o, op)

	case *algebra.GroupBy:
		return pi.deriveGroupBy(o, op)

	case *algebra.UnionAll:
		l, rr := pi.rel(o.Inputs[0]), pi.rel(o.Inputs[1])
		cols := cloneCols(l.cols)
		for i := range cols {
			if i < len(rr.cols) {
				cols[i].Nullable = cols[i].Nullable || rr.cols[i].Nullable
				cols[i].Origins = mergeOrigins(cols[i].Origins, rr.cols[i].Origins)
			}
		}
		r := &absRel{cols: cols}
		switch {
		case l.dist.Kind == core.DistSingle && rr.dist.Kind == core.DistSingle:
			r.dist = absDist{Kind: core.DistSingle}
		case l.dist.Kind == core.DistReplicated && rr.dist.Kind == core.DistReplicated:
			r.dist = absDist{Kind: core.DistReplicated}
		case l.dist.Kind == core.DistHash && rr.dist.Kind == core.DistHash:
			shared := algebra.NewColSet()
			for c := range l.dist.Cols {
				if rr.dist.Cols.Has(c) {
					shared.Add(c)
				}
			}
			if len(shared) == 0 && len(l.dist.Cols)+len(rr.dist.Cols) > 0 {
				return r, false
			}
			r.dist = absDist{Kind: core.DistHash, Cols: shared}
		default:
			return r, false
		}
		return r, true
	}
	return &absRel{}, false
}

func (pi *planInterp) deriveJoin(o *core.Option, op *algebra.Join) (*absRel, bool) {
	l, r := pi.rel(o.Inputs[0]), pi.rel(o.Inputs[1])
	var cols []absCol
	switch op.Kind {
	case algebra.JoinSemi:
		cols = cloneCols(l.cols)
		for _, c := range algebra.Conjuncts(op.On) {
			applyKills(cols, killSet(c))
		}
	case algebra.JoinAnti:
		// NOT EXISTS keeps exactly the rows the condition could not match,
		// including NULL-keyed ones: no kills.
		cols = cloneCols(l.cols)
	case algebra.JoinLeftOuter:
		cols = append(cloneCols(l.cols), cloneCols(r.cols)...)
		for i := len(l.cols); i < len(cols); i++ {
			cols[i].Nullable = true
		}
	case algebra.JoinFullOuter:
		cols = append(cloneCols(l.cols), cloneCols(r.cols)...)
		for i := range cols {
			cols[i].Nullable = true
		}
	case algebra.JoinCross:
		cols = append(cloneCols(l.cols), cloneCols(r.cols)...)
	default: // inner
		cols = append(cloneCols(l.cols), cloneCols(r.cols)...)
		for _, c := range algebra.Conjuncts(op.On) {
			applyKills(cols, killSet(c))
		}
	}
	out := &absRel{cols: cols}
	d, ok := joinDistAbs(op.Kind, op.On, l.dist, r.dist)
	if !ok {
		return out, false
	}
	out.dist = restrictAbs(d, out.outSet(), nil)
	return out, true
}

// joinDistAbs mirrors the enumerator's partition-compatibility rules.
func joinDistAbs(kind algebra.JoinKind, on algebra.Scalar, l, r absDist) (absDist, bool) {
	switch {
	case l.Kind == core.DistSingle && r.Kind == core.DistSingle:
		return absDist{Kind: core.DistSingle}, true
	case l.Kind == core.DistSingle || r.Kind == core.DistSingle:
		return absDist{}, false

	case l.Kind == core.DistReplicated && r.Kind == core.DistReplicated:
		return absDist{Kind: core.DistReplicated}, true

	case l.Kind == core.DistHash && r.Kind == core.DistReplicated:
		if kind == algebra.JoinFullOuter {
			return absDist{}, false
		}
		cols := algebra.NewColSet()
		cols.AddSet(l.Cols)
		if kind == algebra.JoinInner {
			addEquated(on, l.Cols, cols)
		}
		return absDist{Kind: core.DistHash, Cols: cols}, true

	case l.Kind == core.DistReplicated && r.Kind == core.DistHash:
		if kind != algebra.JoinInner && kind != algebra.JoinCross {
			return absDist{}, false
		}
		cols := algebra.NewColSet()
		cols.AddSet(r.Cols)
		if kind == algebra.JoinInner {
			addEquated(on, r.Cols, cols)
		}
		return absDist{Kind: core.DistHash, Cols: cols}, true

	default: // both hash
		if !collocatedAbs(on, l.Cols, r.Cols) {
			return absDist{}, false
		}
		cols := algebra.NewColSet()
		cols.AddSet(l.Cols)
		if kind == algebra.JoinInner {
			cols.AddSet(r.Cols)
		}
		return absDist{Kind: core.DistHash, Cols: cols}, true
	}
}

func collocatedAbs(on algebra.Scalar, l, r algebra.ColSet) bool {
	for _, conj := range algebra.Conjuncts(on) {
		a, b, ok := algebra.EquiJoinSides(conj)
		if !ok {
			continue
		}
		if (l.Has(a) && r.Has(b)) || (l.Has(b) && r.Has(a)) {
			return true
		}
	}
	return false
}

func addEquated(on algebra.Scalar, class, into algebra.ColSet) {
	for _, conj := range algebra.Conjuncts(on) {
		a, b, ok := algebra.EquiJoinSides(conj)
		if !ok {
			continue
		}
		if class.Has(a) {
			into.Add(b)
		}
		if class.Has(b) {
			into.Add(a)
		}
	}
}

func (pi *planInterp) deriveGroupBy(o *core.Option, op *algebra.GroupBy) (*absRel, bool) {
	in := pi.rel(o.Inputs[0])
	keySet := algebra.NewColSet(op.Keys...)
	keyed := len(op.Keys) > 0
	cols := make([]absCol, 0, len(op.Keys)+len(op.Aggs))
	for _, k := range op.Keys {
		if src := in.byID(k); src != nil {
			cols = append(cols, *src)
		} else {
			cols = append(cols, absCol{ID: k, Origins: map[string]struct{}{}})
		}
	}
	for _, a := range op.Aggs {
		rt := types.KindInt
		if a.Func != algebra.AggCount && a.Arg != nil {
			rt = typeOfScalar(a.Arg, in.byID)
		}
		nullable := false
		if a.Func != algebra.AggCount {
			if !keyed {
				// A keyless SUM/MIN/MAX over an empty (or empty-per-node)
				// input returns NULL.
				nullable = true
			} else {
				nullable = nullableScalar(a.Arg, in.byID)
			}
		}
		cols = append(cols, absCol{ID: a.ID, Type: rt, Nullable: nullable, Origins: originsScalar(a.Arg, in.byID)})
	}
	r := &absRel{cols: cols}

	if op.Phase == algebra.AggPartial {
		r.dist = restrictAbs(in.dist, keySet, nil)
		return r, true
	}
	if !gbCompatibleAbs(op, in.dist) {
		return r, false
	}
	if in.dist.Kind == core.DistHash {
		r.dist = restrictAbs(in.dist, keySet, nil)
	} else {
		r.dist = in.dist
	}
	return r, true
}

func gbCompatibleAbs(op *algebra.GroupBy, d absDist) bool {
	switch d.Kind {
	case core.DistSingle, core.DistReplicated:
		return true
	default:
		if len(op.Keys) == 0 {
			return false
		}
		keySet := algebra.NewColSet(op.Keys...)
		for c := range d.Cols {
			if keySet.Has(c) {
				return true
			}
		}
		return false
	}
}

// --- Fragment collection ---

// fragAcc accumulates the comparable content of one step's relational
// fragment: canonical predicate conjuncts (as a multiset), referenced base
// tables, and referenced temp tables (inputs materialized by earlier
// steps).
type fragAcc struct {
	preds  []string
	tables map[string]struct{}
	temps  map[string]struct{}
}

func newFragAcc() *fragAcc {
	return &fragAcc{tables: map[string]struct{}{}, temps: map[string]struct{}{}}
}

func (a *fragAcc) addPred(canon string) { a.preds = append(a.preds, canon) }

func (a *fragAcc) sortedPreds() []string {
	out := append([]string(nil), a.preds...)
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// collect walks the plan fragment rooted at o — stopping at move
// boundaries, which are inputs materialized by earlier steps — gathering
// the content the re-parsed SQL must reproduce.
func (pi *planInterp) collect(o *core.Option, acc *fragAcc) {
	if o.Move != nil {
		acc.temps[pi.moveDest[o]] = struct{}{}
		return
	}
	switch op := o.Op.(type) {
	case *algebra.Get:
		acc.tables[op.Table.Name] = struct{}{}
	case *algebra.Select:
		for _, c := range algebra.Conjuncts(op.Filter) {
			if scalarValueBearing(c) {
				acc.addPred(canonScalar(c))
			}
		}
	case *algebra.Join:
		for _, c := range algebra.Conjuncts(op.On) {
			if scalarValueBearing(c) {
				acc.addPred(canonScalar(c))
			}
		}
	}
	for _, in := range o.Inputs {
		pi.collect(in, acc)
	}
}

// ColumnLineage is the public lineage record of one output column: the set
// of base columns it descends from, with its derived type and nullability.
// This is the hook multi-query optimization needs — common-subexpression
// detection across MEMOs is a lineage query.
type ColumnLineage struct {
	Column   algebra.ColumnID
	Name     string
	Type     types.Kind
	Nullable bool
	// Origins are "table.column" strings, sorted.
	Origins []string
}

// Lineage abstractly interprets a distributed plan and returns, for every
// root output column, the base columns it descends from along with the
// derived nullability and type. It is nil-safe and never fails: columns
// that cannot be resolved simply report no origins.
func Lineage(plan *core.Plan) map[algebra.ColumnID]ColumnLineage {
	out := map[algebra.ColumnID]ColumnLineage{}
	if plan == nil || plan.Root == nil {
		return out
	}
	pi := newPlanInterp()
	root := pi.rel(plan.Root)
	for _, c := range root.cols {
		name := ""
		for _, m := range plan.Root.OutCols {
			if m.ID == c.ID {
				name = m.Name
			}
		}
		out[c.ID] = ColumnLineage{
			Column:   c.ID,
			Name:     name,
			Type:     c.Type,
			Nullable: c.Nullable,
			Origins:  sortedKeys(c.Origins),
		}
	}
	return out
}

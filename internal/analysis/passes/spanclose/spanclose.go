// Package spanclose flags trace spans that are started but may never
// be ended. Every call to (*trace.Tracer).Begin or BeginUnder assigned
// to a variable opens a window that runs to the variable's next
// reassignment or the end of the function. A window is closed when the
// span's End is deferred, when the span value escapes the function
// (passed to a call, returned, or stored — the recipient then owns the
// close), or when an End call on all lexical paths precedes every
// return inside the window. A leaked span corrupts the trace tree the
// EXPLAIN ANALYZE pipeline renders, so the optimizer's span discipline
// is load-bearing, not cosmetic.
package spanclose

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pdwqo/internal/analysis"
)

const tracePkgPath = "pdwqo/internal/trace"

// Analyzer is the spanclose pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanclose",
	Doc:  "flag trace spans that are begun but not ended on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == tracePkgPath {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// window is one span lifetime: from the Begin assignment to the next
// reassignment of the same variable (or function end).
type window struct {
	obj        types.Object
	begin      token.Pos // the assignment starting the window
	end        token.Pos // exclusive
	hasDefer   bool
	hasEscape  bool
	endCalls   []token.Pos
	returns    []token.Pos
	reassigned bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: every Begin/BeginUnder assignment opens a window.
	var windows []*window
	perObj := map[types.Object][]*window{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBeginCall(pass, call) {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		w := &window{obj: obj, begin: as.Pos(), end: fd.Body.End()}
		windows = append(windows, w)
		perObj[obj] = append(perObj[obj], w)
		return true
	})
	if len(windows) == 0 {
		return
	}
	// A reassignment truncates the previous window of the same variable.
	for _, ws := range perObj {
		sort.Slice(ws, func(i, j int) bool { return ws[i].begin < ws[j].begin })
		for i := 0; i+1 < len(ws); i++ {
			ws[i].end = ws[i+1].begin
			ws[i].reassigned = true
		}
	}
	// Pass 2: attribute End calls, defers, escapes and returns.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj := endCallee(pass, n.Call); obj != nil {
				for _, w := range lookup(perObj, obj, n.Pos()) {
					w.hasDefer = true
				}
			}
		case *ast.CallExpr:
			if obj := endCallee(pass, n); obj != nil {
				for _, w := range lookup(perObj, obj, n.Pos()) {
					w.endCalls = append(w.endCalls, n.Pos())
				}
			}
		case *ast.ReturnStmt:
			for _, ws := range perObj {
				for _, w := range ws {
					if n.Pos() >= w.begin && n.Pos() < w.end {
						w.returns = append(w.returns, n.Pos())
					}
				}
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || perObj[obj] == nil {
				return true
			}
			if isEscape(pass, fd, n) {
				for _, w := range lookup(perObj, obj, n.Pos()) {
					w.hasEscape = true
				}
			}
		}
		return true
	})
	for _, w := range windows {
		reportWindow(pass, w)
	}
}

// lookup finds the windows of obj containing pos.
func lookup(perObj map[types.Object][]*window, obj types.Object, pos token.Pos) []*window {
	var out []*window
	for _, w := range perObj[obj] {
		if pos >= w.begin && pos < w.end {
			out = append(out, w)
		}
	}
	return out
}

func reportWindow(pass *analysis.Pass, w *window) {
	if w.hasDefer || w.hasEscape {
		return
	}
	where := "function end"
	if w.reassigned {
		where = "reassignment"
	}
	if len(w.endCalls) == 0 {
		pass.Reportf(w.begin,
			"span %s is begun but never ended before %s; call End, defer it, or hand the span off",
			w.obj.Name(), where)
		return
	}
	sort.Slice(w.endCalls, func(i, j int) bool { return w.endCalls[i] < w.endCalls[j] })
	for _, r := range w.returns {
		if w.endCalls[0] >= r {
			pass.Reportf(w.begin,
				"span %s may leak: return at %s precedes every End in its window",
				w.obj.Name(), pass.Fset.Position(r))
			return
		}
	}
}

// isBeginCall reports whether call invokes trace.Tracer.Begin or
// BeginUnder.
func isBeginCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != tracePkgPath {
		return false
	}
	return obj.Name() == "Begin" || obj.Name() == "BeginUnder"
}

// endCallee returns the span variable's object when call is
// <ident>.End().
func endCallee(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// isEscape reports whether the identifier use hands the span value to
// other code: anything except a selector access (method call or field
// read on the span) or being the target of an assignment.
func isEscape(pass *analysis.Pass, fd *ast.FuncDecl, id *ast.Ident) bool {
	path := enclosing(fd, id)
	if len(path) < 2 {
		return false
	}
	switch parent := path[len(path)-2].(type) {
	case *ast.SelectorExpr:
		return parent.X != id
	case *ast.AssignStmt:
		for _, l := range parent.Lhs {
			if l == id {
				return false
			}
		}
		return true
	}
	return true
}

// enclosing returns the node path from fd down to target.
func enclosing(fd *ast.FuncDecl, target ast.Node) []ast.Node {
	var path []ast.Node
	var found []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		if n == target {
			found = append([]ast.Node(nil), path...)
			return false
		}
		return true
	})
	return found
}

// Package algebra defines the bound relational algebra shared by the
// normalizer, the serial (Cascades-style) optimizer and the PDW optimizer:
// operator payloads, expression trees over global column IDs, and the
// binder that produces them from parser ASTs (the SQL Server "algebrizer"
// role in paper Figure 2).
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"pdwqo/internal/sqlparser"
	"pdwqo/internal/types"
)

// ColumnID uniquely identifies a column instance across the whole query.
// Every Get of a base table mints fresh IDs, so self-joins are unambiguous.
type ColumnID int

// ColSet is a set of column IDs.
type ColSet map[ColumnID]struct{}

// NewColSet builds a set from IDs.
func NewColSet(ids ...ColumnID) ColSet {
	s := make(ColSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts id.
func (s ColSet) Add(id ColumnID) { s[id] = struct{}{} }

// Has reports membership.
func (s ColSet) Has(id ColumnID) bool { _, ok := s[id]; return ok }

// AddSet inserts all of o.
func (s ColSet) AddSet(o ColSet) {
	for id := range o {
		s[id] = struct{}{}
	}
}

// SubsetOf reports whether every member of s is in o.
func (s ColSet) SubsetOf(o ColSet) bool {
	for id := range s {
		if !o.Has(id) {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share a member.
func (s ColSet) Intersects(o ColSet) bool {
	for id := range s {
		if o.Has(id) {
			return true
		}
	}
	return false
}

// Sorted returns the members in ascending order.
func (s ColSet) Sorted() []ColumnID {
	out := make([]ColumnID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set for fingerprints and debug output.
func (s ColSet) String() string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("c%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ColumnMeta describes one output column of an operator.
type ColumnMeta struct {
	ID   ColumnID
	Name string // display name (column name or alias)
	Qual string // originating table alias, for display only
	Type types.Kind
}

// Scalar is a bound scalar (or boolean) expression.
type Scalar interface {
	// Type returns the expression's result kind.
	Type() types.Kind
	// Fingerprint renders a deterministic encoding used for memo dedup and
	// plan display. Two scalars with equal fingerprints are identical.
	Fingerprint() string
}

// ColRef references a column by ID.
type ColRef struct {
	ID   ColumnID
	Meta ColumnMeta // display info; Meta.ID == ID
}

// NewColRef builds a reference from metadata.
func NewColRef(m ColumnMeta) *ColRef { return &ColRef{ID: m.ID, Meta: m} }

// Type implements Scalar.
func (c *ColRef) Type() types.Kind { return c.Meta.Type }

// Fingerprint implements Scalar.
func (c *ColRef) Fingerprint() string { return fmt.Sprintf("c%d", c.ID) }

// Const is a literal value. Param, when non-zero, ties the constant to
// parameter slot Param-1 of the query's parameterized form (see
// normalize.Parameterize): the plan cache re-binds such constants to new
// literal values on a cache hit. Slots are assigned per distinct value,
// so two Consts with equal values always carry the same Param — which is
// what makes value-based expression dedup safe under re-binding.
type Const struct {
	Val   types.Value
	Param int
}

// Slot returns the 0-based parameter slot, if any.
func (c *Const) Slot() (int, bool) { return c.Param - 1, c.Param > 0 }

// Type implements Scalar.
func (c *Const) Type() types.Kind { return c.Val.Kind() }

// Fingerprint implements Scalar. Parameterized constants fingerprint
// distinctly from plain ones with the same value: a plain constant is
// structural (e.g. a retained DATEADD argument) and must never be merged
// with a re-bindable slot by fingerprint-driven dedup.
func (c *Const) Fingerprint() string {
	if c.Param > 0 {
		return fmt.Sprintf("%s?p%d", c.Val.SQLLiteral(), c.Param-1)
	}
	return c.Val.SQLLiteral()
}

// Binary applies a binary operator. Comparison and logic operators yield
// KindBool; arithmetic follows numeric promotion.
type Binary struct {
	Op   sqlparser.BinOp
	L, R Scalar
}

// Type implements Scalar.
func (b *Binary) Type() types.Kind {
	if b.Op.IsComparison() || b.Op == sqlparser.OpAnd || b.Op == sqlparser.OpOr {
		return types.KindBool
	}
	if b.Op == sqlparser.OpDiv {
		return types.KindFloat
	}
	if b.L.Type() == types.KindFloat || b.R.Type() == types.KindFloat {
		return types.KindFloat
	}
	if b.L.Type() == types.KindNull {
		return b.R.Type()
	}
	return b.L.Type()
}

// Fingerprint implements Scalar.
func (b *Binary) Fingerprint() string {
	return "(" + b.L.Fingerprint() + " " + b.Op.String() + " " + b.R.Fingerprint() + ")"
}

// Not is logical negation.
type Not struct{ E Scalar }

// Type implements Scalar.
func (*Not) Type() types.Kind { return types.KindBool }

// Fingerprint implements Scalar.
func (n *Not) Fingerprint() string { return "NOT " + n.E.Fingerprint() }

// Neg is arithmetic negation.
type Neg struct{ E Scalar }

// Type implements Scalar.
func (n *Neg) Type() types.Kind { return n.E.Type() }

// Fingerprint implements Scalar.
func (n *Neg) Fingerprint() string { return "(-" + n.E.Fingerprint() + ")" }

// IsNull tests `E IS [NOT] NULL`.
type IsNull struct {
	E       Scalar
	Negated bool
}

// Type implements Scalar.
func (*IsNull) Type() types.Kind { return types.KindBool }

// Fingerprint implements Scalar.
func (i *IsNull) Fingerprint() string {
	if i.Negated {
		return i.E.Fingerprint() + " IS NOT NULL"
	}
	return i.E.Fingerprint() + " IS NULL"
}

// Like tests `E [NOT] LIKE pattern` (pattern is a constant string).
type Like struct {
	E       Scalar
	Pattern string
	Negated bool
}

// Type implements Scalar.
func (*Like) Type() types.Kind { return types.KindBool }

// Fingerprint implements Scalar.
func (l *Like) Fingerprint() string {
	n := ""
	if l.Negated {
		n = "NOT "
	}
	return l.E.Fingerprint() + " " + n + "LIKE " + types.NewString(l.Pattern).SQLLiteral()
}

// InList tests membership in a constant list.
type InList struct {
	E       Scalar
	List    []Scalar
	Negated bool
}

// Type implements Scalar.
func (*InList) Type() types.Kind { return types.KindBool }

// Fingerprint implements Scalar.
func (in *InList) Fingerprint() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.Fingerprint()
	}
	n := ""
	if in.Negated {
		n = "NOT "
	}
	return in.E.Fingerprint() + " " + n + "IN (" + strings.Join(parts, ", ") + ")"
}

// Func is a scalar function call (DATEADD, YEAR, ...). Aggregates are not
// Funcs: the binder lifts them into GroupBy operators as AggDef.
type Func struct {
	Name string
	Args []Scalar
	Out  types.Kind
}

// Type implements Scalar.
func (f *Func) Type() types.Kind { return f.Out }

// Fingerprint implements Scalar.
func (f *Func) Fingerprint() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.Fingerprint()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Case is a searched CASE expression.
type Case struct {
	Whens []CaseWhen
	Else  Scalar // nil means NULL
}

// CaseWhen is one WHEN arm.
type CaseWhen struct{ Cond, Then Scalar }

// Type implements Scalar.
func (c *Case) Type() types.Kind {
	for _, w := range c.Whens {
		if w.Then.Type() != types.KindNull {
			return w.Then.Type()
		}
	}
	if c.Else != nil {
		return c.Else.Type()
	}
	return types.KindNull
}

// Fingerprint implements Scalar.
func (c *Case) Fingerprint() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.Cond.Fingerprint() + " THEN " + w.Then.Fingerprint())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.Fingerprint())
	}
	b.WriteString(" END")
	return b.String()
}

// Cast converts to a target kind.
type Cast struct {
	E  Scalar
	To types.Kind
}

// Type implements Scalar.
func (c *Cast) Type() types.Kind { return c.To }

// Fingerprint implements Scalar.
func (c *Cast) Fingerprint() string {
	return "CAST(" + c.E.Fingerprint() + " AS " + c.To.String() + ")"
}

// SubqueryKind classifies an unresolved subquery scalar.
type SubqueryKind uint8

// Subquery kinds produced by the binder and consumed by the normalizer's
// unnesting rules.
const (
	SubqueryScalar SubqueryKind = iota // (SELECT agg ...) used as a value
	SubqueryIn                         // expr IN (SELECT col ...)
	SubqueryExists                     // EXISTS (SELECT ...)
)

// Subquery is a nested query embedded in an expression. The normalizer
// removes every Subquery by rewriting it into semi/anti/inner joins; any
// Subquery remaining after normalization is a compile error.
type Subquery struct {
	Kind    SubqueryKind
	Input   *Tree  // bound subquery plan
	Outer   Scalar // for SubqueryIn: the left-hand expression
	Negated bool   // NOT IN / NOT EXISTS
}

// Type implements Scalar.
func (s *Subquery) Type() types.Kind {
	switch s.Kind {
	case SubqueryScalar:
		cols := s.Input.OutputCols()
		if len(cols) > 0 {
			return cols[0].Type
		}
		return types.KindNull
	default:
		return types.KindBool
	}
}

// Fingerprint implements Scalar.
func (s *Subquery) Fingerprint() string {
	kind := [...]string{"SCALAR", "IN", "EXISTS"}[s.Kind]
	n := ""
	if s.Negated {
		n = "NOT-"
	}
	outer := ""
	if s.Outer != nil {
		outer = s.Outer.Fingerprint() + " "
	}
	return outer + n + kind + "-SUBQUERY[" + s.Input.Fingerprint() + "]"
}

// AggFunc enumerates aggregate functions. AVG is rewritten by the binder
// into SUM/COUNT so the PDW optimizer's partial/final split stays uniform.
type AggFunc uint8

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
)

// String names the function in SQL.
func (f AggFunc) String() string {
	return [...]string{"SUM", "COUNT", "MIN", "MAX"}[f]
}

// AggDef is one aggregate computed by a GroupBy.
type AggDef struct {
	Func     AggFunc
	Arg      Scalar // nil for COUNT(*)
	Distinct bool
	ID       ColumnID // output column id
	Name     string   // display name
}

// ResultType returns the aggregate's output kind.
func (a AggDef) ResultType() types.Kind {
	if a.Func == AggCount {
		return types.KindInt
	}
	if a.Arg == nil {
		return types.KindInt
	}
	return a.Arg.Type()
}

// Fingerprint renders the aggregate deterministically.
func (a AggDef) Fingerprint() string {
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.Fingerprint()
	}
	return fmt.Sprintf("c%d:=%s(%s%s)", a.ID, a.Func, d, arg)
}

// --- Scalar utilities ---

// VisitScalar walks e depth-first, calling f on every node. Subquery inputs
// are not descended into; callers handle them explicitly.
func VisitScalar(e Scalar, f func(Scalar)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Binary:
		VisitScalar(x.L, f)
		VisitScalar(x.R, f)
	case *Not:
		VisitScalar(x.E, f)
	case *Neg:
		VisitScalar(x.E, f)
	case *IsNull:
		VisitScalar(x.E, f)
	case *Like:
		VisitScalar(x.E, f)
	case *InList:
		VisitScalar(x.E, f)
		for _, el := range x.List {
			VisitScalar(el, f)
		}
	case *Func:
		for _, a := range x.Args {
			VisitScalar(a, f)
		}
	case *Case:
		for _, w := range x.Whens {
			VisitScalar(w.Cond, f)
			VisitScalar(w.Then, f)
		}
		VisitScalar(x.Else, f)
	case *Cast:
		VisitScalar(x.E, f)
	case *Subquery:
		VisitScalar(x.Outer, f)
	}
}

// ScalarCols returns the set of column IDs referenced by e, ignoring
// columns bound inside subquery inputs.
func ScalarCols(e Scalar) ColSet {
	out := NewColSet()
	VisitScalar(e, func(s Scalar) {
		if c, ok := s.(*ColRef); ok {
			out.Add(c.ID)
		}
	})
	return out
}

// HasSubquery reports whether e contains any Subquery node.
func HasSubquery(e Scalar) bool {
	found := false
	VisitScalar(e, func(s Scalar) {
		if _, ok := s.(*Subquery); ok {
			found = true
		}
	})
	return found
}

// RewriteScalar rebuilds e bottom-up, replacing each node with f(node)
// after its children have been rewritten. f returning nil keeps the node.
func RewriteScalar(e Scalar, f func(Scalar) Scalar) Scalar {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Binary:
		e = &Binary{Op: x.Op, L: RewriteScalar(x.L, f), R: RewriteScalar(x.R, f)}
	case *Not:
		e = &Not{E: RewriteScalar(x.E, f)}
	case *Neg:
		e = &Neg{E: RewriteScalar(x.E, f)}
	case *IsNull:
		e = &IsNull{E: RewriteScalar(x.E, f), Negated: x.Negated}
	case *Like:
		e = &Like{E: RewriteScalar(x.E, f), Pattern: x.Pattern, Negated: x.Negated}
	case *InList:
		list := make([]Scalar, len(x.List))
		for i, el := range x.List {
			list[i] = RewriteScalar(el, f)
		}
		e = &InList{E: RewriteScalar(x.E, f), List: list, Negated: x.Negated}
	case *Func:
		args := make([]Scalar, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteScalar(a, f)
		}
		e = &Func{Name: x.Name, Args: args, Out: x.Out}
	case *Case:
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = CaseWhen{Cond: RewriteScalar(w.Cond, f), Then: RewriteScalar(w.Then, f)}
		}
		e = &Case{Whens: whens, Else: RewriteScalar(x.Else, f)}
	case *Cast:
		e = &Cast{E: RewriteScalar(x.E, f), To: x.To}
	case *Subquery:
		e = &Subquery{Kind: x.Kind, Input: x.Input, Outer: RewriteScalar(x.Outer, f), Negated: x.Negated}
	}
	if r := f(e); r != nil {
		return r
	}
	return e
}

// Conjuncts splits a boolean expression on AND into its conjunct list.
func Conjuncts(e Scalar) []Scalar {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == sqlparser.OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Scalar{e}
}

// AndAll rebuilds a conjunction from a list (nil for an empty list).
func AndAll(list []Scalar) Scalar {
	var out Scalar
	for _, e := range list {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: sqlparser.OpAnd, L: out, R: e}
		}
	}
	return out
}

// EquiJoinSides inspects a conjunct and, when it is `colA = colB`, returns
// the two column IDs. This powers join-column detection everywhere:
// transitivity closure, interesting properties, shuffle targets.
func EquiJoinSides(e Scalar) (ColumnID, ColumnID, bool) {
	b, ok := e.(*Binary)
	if !ok || b.Op != sqlparser.OpEq {
		return 0, 0, false
	}
	l, lok := b.L.(*ColRef)
	r, rok := b.R.(*ColRef)
	if !lok || !rok {
		return 0, 0, false
	}
	return l.ID, r.ID, true
}

package main

import (
	"fmt"
	"strings"
	"time"

	"pdwqo"
	"pdwqo/internal/planverify"
	"pdwqo/internal/planverify/transval"
)

// --- E23: translation validation — overhead, domain sweep, mutation kills ---

// e23 characterizes the DSQL translation validator (§3.4 boundary): the
// wall-clock cost of re-parsing and abstractly re-interpreting every
// emitted step relative to a cold compile, the per-domain finding counts
// over the clean TPC-H corpus (the zero-false-positive claim), and a
// mutation kill table — one seeded defect per violation domain, each of
// which must be caught and must fire exactly its own code. The
// N=1/2/4/8 × regime sweep of the same validator runs in
// internal/difftest; this experiment records the numbers the paper-style
// writeup quotes.
func e23(db *pdwqo.DB) {
	header("E23", "translation validation — re-parse overhead, clean-corpus sweep, mutation kills")
	const reps = 5
	db.SetPlanCache(-1)

	domains := []planverify.Code{
		transval.CodeReparse, transval.CodeRefs, transval.CodeSchema,
		transval.CodeLineage, transval.CodeNullability,
		transval.CodeDistribution, transval.CodePredicate,
	}
	counts := map[planverify.Code]int{}

	fmt.Printf("%-6s %12s %12s %9s %6s\n", "query", "compile", "transval", "overhead", "steps")
	var compileTotal, checkTotal time.Duration
	for _, name := range pdwqo.TPCHQueryNames() {
		sql := mustTPCH(name)
		var compile, check time.Duration
		var steps int
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			qp, err := db.Optimize(sql, pdwqo.Options{})
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			compile += time.Since(start)
			steps = len(qp.DSQL.Steps)
			start = time.Now()
			vs := transval.Check(qp.Distributed, qp.DSQL, db.Shell())
			check += time.Since(start)
			if rep == 0 {
				for _, v := range vs {
					counts[v.Code]++
				}
			}
		}
		compileTotal += compile
		checkTotal += check
		fmt.Printf("%-6s %12v %12v %8.1f%% %6d\n",
			name, (compile / reps).Round(time.Microsecond),
			(check / reps).Round(time.Microsecond),
			100*float64(check)/float64(compile), steps)
	}
	fmt.Printf("suite: compile %v, transval %v, overhead %.1f%% (bar: <5%%)\n\n",
		compileTotal.Round(time.Millisecond), checkTotal.Round(time.Millisecond),
		100*float64(checkTotal)/float64(compileTotal))

	fmt.Println("clean-corpus findings by domain (all must be 0):")
	clean := true
	for _, d := range domains {
		fmt.Printf("  %-24s %d\n", d, counts[d])
		if counts[d] != 0 {
			clean = false
		}
	}
	if clean {
		fmt.Println("  zero false positives across the 22-query corpus")
	}
	fmt.Println()

	// Mutation kill table: each entry seeds one defect into a freshly
	// compiled plan's emitted artifacts and the validator must catch it
	// with exactly the domain the defect lives in — no misses, no
	// cascades into neighbouring domains.
	mutations := []struct {
		domain planverify.Code
		query  string
		defect string
		apply  func(qp *pdwqo.QueryPlan) bool
	}{
		{transval.CodeReparse, "q01", "corrupt step 0 SQL text",
			func(qp *pdwqo.QueryPlan) bool { return editStep(qp, 0, "SELECT", "SELEC T") }},
		{transval.CodeRefs, "q01", "retarget temp read to an unproduced temp",
			func(qp *pdwqo.QueryPlan) bool {
				return editStep(qp, len(qp.DSQL.Steps)-1, "[tempdb].[TEMP_ID_1]", "[tempdb].[TEMP_ID_9]")
			}},
		{transval.CodeSchema, "q01", "rename a final output alias",
			func(qp *pdwqo.QueryPlan) bool {
				return editStep(qp, len(qp.DSQL.Steps)-1, "AS [l_returnflag]", "AS [mutant]")
			}},
		{transval.CodeLineage, "q01", "swap a projection source for a same-typed column",
			func(qp *pdwqo.QueryPlan) bool { return editStep(qp, 0, "T1.[l_discount] AS c7", "T1.[l_tax] AS c7") }},
		{transval.CodeNullability, "q05", "weaken an inner join to a left join",
			func(qp *pdwqo.QueryPlan) bool {
				sql := qp.DSQL.Steps[0].SQL
				i := strings.LastIndex(sql, " INNER JOIN ")
				if i < 0 {
					return false
				}
				qp.DSQL.Steps[0].SQL = sql[:i] + " LEFT JOIN " + sql[i+len(" INNER JOIN "):]
				return true
			}},
		{transval.CodeDistribution, "q01", "flip a step's recorded execution placement",
			func(qp *pdwqo.QueryPlan) bool {
				qp.DSQL.Steps[0].Where = (qp.DSQL.Steps[0].Where + 1) % 3
				return true
			}},
		{transval.CodePredicate, "q01", "loosen a range comparison (<= to <)",
			func(qp *pdwqo.QueryPlan) bool { return editStep(qp, 0, "(T2.c11 <= ", "(T2.c11 < ") }},
	}

	fmt.Println("mutation kill table (one seeded defect per domain):")
	fmt.Printf("  %-24s %-5s %-44s %s\n", "domain", "query", "defect", "result")
	killed := 0
	for _, m := range mutations {
		qp, err := db.Optimize(mustTPCH(m.query), pdwqo.Options{})
		if err != nil {
			fatal(err)
		}
		if !m.apply(qp) {
			fmt.Printf("  %-24s %-5s %-44s defect site missing\n", m.domain, m.query, m.defect)
			continue
		}
		vs := transval.Check(qp.Distributed, qp.DSQL, db.Shell())
		result := "MISSED"
		switch {
		case len(vs) == 0:
		case allCode(vs, m.domain):
			result = fmt.Sprintf("killed (%d violation(s), all %s)", len(vs), m.domain)
			killed++
		default:
			result = fmt.Sprintf("killed by wrong domain: %v", vs[0].Code)
		}
		fmt.Printf("  %-24s %-5s %-44s %s\n", m.domain, m.query, m.defect, result)
	}
	fmt.Printf("%d/%d mutations killed by exactly their own domain\n\n", killed, len(mutations))
}

func editStep(qp *pdwqo.QueryPlan, step int, old, new string) bool {
	sql := qp.DSQL.Steps[step].SQL
	if !strings.Contains(sql, old) {
		return false
	}
	qp.DSQL.Steps[step].SQL = strings.Replace(sql, old, new, 1)
	return true
}

func allCode(vs []planverify.Violation, code planverify.Code) bool {
	for _, v := range vs {
		if v.Code != code {
			return false
		}
	}
	return true
}

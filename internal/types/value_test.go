package types

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BIT", KindInt: "BIGINT",
		KindFloat: "FLOAT", KindString: "VARCHAR", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Errorf("NewInt(42) = %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat(2.5) = %v", v)
	}
	if v := NewString("abc"); v.Kind() != KindString || v.Str() != "abc" {
		t.Errorf("NewString = %v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Errorf("NewBool(true) = %v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false) = %v", v)
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Errorf("Null misbehaves: %v", Null)
	}
	if v := NewInt(7); v.Float() != 7.0 {
		t.Errorf("Int.Float() coercion failed: %v", v.Float())
	}
}

func TestParseDate(t *testing.T) {
	d, err := ParseDate("1970-01-01")
	if err != nil || d.DateDays() != 0 {
		t.Fatalf("epoch parse: %v, %v", d, err)
	}
	d, err = ParseDate("1994-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "1994-01-01" {
		t.Errorf("round-trip = %q", got)
	}
	// Datetime suffix tolerated, as produced by DSQL text.
	d2, err := ParseDate("1995-01-01 00:00:00.000")
	if err != nil || d2.String() != "1995-01-01" {
		t.Errorf("datetime suffix: %v, %v", d2, err)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for bad literal")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(1), -1},
		{NewInt(1), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{MustParseDate("1994-01-01"), MustParseDate("1995-01-01"), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncomparablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic comparing string with int")
		}
	}()
	Compare(NewString("x"), NewInt(1))
}

func TestEqual(t *testing.T) {
	if !Equal(Null, Null) {
		t.Error("grouping equality must treat NULL = NULL")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("NULL != 0")
	}
	if !Equal(NewInt(3), NewFloat(3.0)) {
		t.Error("cross-numeric equality")
	}
	if Equal(NewString("1"), NewInt(1)) {
		t.Error("string and int are never equal")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	// Values equal under Equal must hash identically (shuffle correctness).
	if Hash(NewInt(5)) != Hash(NewFloat(5.0)) {
		t.Error("5 and 5.0 must co-locate under hash distribution")
	}
	if Hash(NewString("abc")) == Hash(NewString("abd")) {
		t.Error("suspicious collision")
	}
}

func TestHashRowKeyOrderSensitivity(t *testing.T) {
	a := []Value{NewInt(1), NewInt(2)}
	b := []Value{NewInt(2), NewInt(1)}
	if HashRowKey(a) == HashRowKey(b) {
		t.Error("row key hash should be order sensitive")
	}
	if HashRowKey(a) != HashRowKey([]Value{NewInt(1), NewInt(2)}) {
		t.Error("row key hash must be deterministic")
	}
}

func TestWidth(t *testing.T) {
	if NewInt(1).Width() != 8 {
		t.Error("int width")
	}
	if NewString("abcd").Width() != 6 {
		t.Error("string width = len+2")
	}
	r := Row{NewInt(1), NewString("ab")}
	if r.Width() != 12 {
		t.Errorf("row width = %d", r.Width())
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("quote escaping: %q", got)
	}
	if got := MustParseDate("1994-01-01").SQLLiteral(); got != "CAST('1994-01-01' AS DATE)" {
		t.Errorf("date literal: %q", got)
	}
	if got := NewInt(42).SQLLiteral(); got != "42" {
		t.Errorf("int literal: %q", got)
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt(1)}
	c := r.Clone()
	r[0] = NewInt(2)
	if c[0].Int() != 1 {
		t.Error("clone aliases original")
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 1)
	case 2:
		return NewInt(r.Int63n(1000) - 500)
	case 3:
		return NewFloat(float64(r.Int63n(1000)) / 4)
	case 4:
		return NewString(string(rune('a' + r.Intn(26))))
	default:
		return NewDate(r.Int63n(20000))
	}
}

func TestCompareProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := randomValue(r), randomValue(r)
		if !Comparable(a.Kind(), b.Kind()) {
			continue
		}
		ab, ba := Compare(a, b), Compare(b, a)
		if ab != -ba {
			t.Fatalf("antisymmetry violated: %v vs %v: %d, %d", a, b, ab, ba)
		}
		if ab == 0 != Equal(a, b) && !(a.IsNull() || b.IsNull()) {
			t.Fatalf("Compare/Equal disagree on %v, %v", a, b)
		}
		c := randomValue(r)
		if Comparable(a.Kind(), c.Kind()) && Comparable(b.Kind(), c.Kind()) {
			if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
				t.Fatalf("transitivity violated: %v, %v, %v", a, b, c)
			}
		}
	}
}

func TestEqualImpliesSameHash(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		a, b := randomValue(r), randomValue(r)
		if Equal(a, b) && Hash(a) != Hash(b) {
			t.Fatalf("equal values hash differently: %v, %v", a, b)
		}
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Equal(got, want) && !(got.IsNull() && want.IsNull()) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	v, err := Add(NewInt(2), NewInt(3))
	check(v, err, NewInt(5))
	v, err = Add(NewInt(2), NewFloat(0.5))
	check(v, err, NewFloat(2.5))
	v, err = Sub(NewInt(2), NewInt(3))
	check(v, err, NewInt(-1))
	v, err = Mul(NewFloat(0.5), NewInt(10))
	check(v, err, NewFloat(5))
	v, err = Div(NewInt(7), NewInt(2))
	check(v, err, NewFloat(3.5))
	v, err = Neg(NewInt(4))
	check(v, err, NewInt(-4))

	if v, err := Add(Null, NewInt(1)); err != nil || !v.IsNull() {
		t.Error("NULL propagation in Add")
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("string arithmetic must error")
	}
}

func TestDateAdd(t *testing.T) {
	d := MustParseDate("1994-01-01")
	y, err := DateAdd("year", 1, d)
	if err != nil || y.String() != "1995-01-01" {
		t.Errorf("DATEADD(year,1) = %v, %v", y, err)
	}
	m, err := DateAdd("month", 13, d)
	if err != nil || m.String() != "1995-02-01" {
		t.Errorf("DATEADD(month,13) = %v, %v", m, err)
	}
	dd, err := DateAdd("day", 31, d)
	if err != nil || dd.String() != "1994-02-01" {
		t.Errorf("DATEADD(day,31) = %v, %v", dd, err)
	}
	// Clamping: Jan 31 + 1 month = Feb 28.
	c, err := DateAdd("month", 1, MustParseDate("1994-01-31"))
	if err != nil || c.String() != "1994-02-28" {
		t.Errorf("clamp = %v, %v", c, err)
	}
	leap, err := DateAdd("month", 1, MustParseDate("1996-01-31"))
	if err != nil || leap.String() != "1996-02-29" {
		t.Errorf("leap clamp = %v, %v", leap, err)
	}
	if v, err := DateAdd("day", 1, Null); err != nil || !v.IsNull() {
		t.Error("NULL propagation in DATEADD")
	}
	if _, err := DateAdd("week", 1, d); err == nil {
		t.Error("unsupported part must error")
	}
}

func TestDateYear(t *testing.T) {
	y, err := DateYear(MustParseDate("1998-12-01"))
	if err != nil || y.Int() != 1998 {
		t.Errorf("YEAR = %v, %v", y, err)
	}
}

func TestCivilRoundTrip(t *testing.T) {
	// Property: civilFromDays and daysFromCivil are inverses over a wide range.
	f := func(n uint16) bool {
		days := int64(n) // 1970 .. ~2149
		y, m, d := civilFromDays(days * 37 % 65536)
		return daysFromCivil(y, m, d) == days*37%65536
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), NewString("x"), Null}
	if got := r.String(); got != "(1, x, NULL)" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestValueQuickHashStability(t *testing.T) {
	// Hash must be a pure function of the value.
	f := func(x int64) bool { return Hash(NewInt(x)) == Hash(NewInt(x)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool { return Hash(NewString(s)) == Hash(NewString(s)) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestComparableMatrix(t *testing.T) {
	if !Comparable(KindInt, KindFloat) || !Comparable(KindNull, KindString) {
		t.Error("comparable matrix")
	}
	if Comparable(KindString, KindDate) {
		t.Error("string/date not comparable")
	}
	if reflect.TypeOf(KindInt).Kind() != reflect.Uint8 {
		t.Error("Kind should stay compact")
	}
}

func TestCheckedAccessors(t *testing.T) {
	if n, err := NewInt(7).AsInt(); err != nil || n != 7 {
		t.Errorf("AsInt: %v %v", n, err)
	}
	if f, err := NewInt(7).AsFloat(); err != nil || f != 7.0 {
		t.Errorf("AsFloat must coerce BIGINT: %v %v", f, err)
	}
	if s, err := NewString("x").AsStr(); err != nil || s != "x" {
		t.Errorf("AsStr: %v %v", s, err)
	}
	if b, err := NewBool(true).AsBool(); err != nil || !b {
		t.Errorf("AsBool: %v %v", b, err)
	}
	// Mismatches surface as *KindError carrying the actual and wanted kind.
	for _, c := range []struct {
		err  error
		want Kind
	}{
		{func() error { _, e := NewString("x").AsInt(); return e }(), KindInt},
		{func() error { _, e := NewString("x").AsFloat(); return e }(), KindFloat},
		{func() error { _, e := NewInt(1).AsStr(); return e }(), KindString},
		{func() error { _, e := Null.AsBool(); return e }(), KindBool},
	} {
		var ke *KindError
		if !errors.As(c.err, &ke) {
			t.Fatalf("want *KindError, got %v", c.err)
		}
		if ke.Want != c.want {
			t.Errorf("KindError.Want = %v, want %v", ke.Want, c.want)
		}
		if ke.Error() == "" {
			t.Error("KindError must render")
		}
	}
}

func TestCompareChecked(t *testing.T) {
	// Agrees with Compare on comparable pairs (including NULL-first and
	// cross-numeric coercion).
	pairs := []struct{ a, b Value }{
		{NewInt(1), NewInt(2)},
		{NewInt(1), NewFloat(1.5)},
		{Null, NewInt(1)},
		{Null, Null},
		{NewString("a"), NewString("b")},
		{NewBool(false), NewBool(true)},
		{MustParseDate("1994-01-01"), MustParseDate("1995-01-01")},
	}
	for _, p := range pairs {
		got, err := CompareChecked(p.a, p.b)
		if err != nil {
			t.Fatalf("CompareChecked(%v, %v): %v", p.a, p.b, err)
		}
		if want := Compare(p.a, p.b); got != want {
			t.Errorf("CompareChecked(%v, %v) = %d, Compare says %d", p.a, p.b, got, want)
		}
	}
	// Incomparable kinds error instead of panicking.
	if _, err := CompareChecked(NewString("x"), NewInt(1)); err == nil {
		t.Error("string vs int must be an error")
	}
	if _, err := CompareChecked(MustParseDate("1994-01-01"), NewBool(true)); err == nil {
		t.Error("date vs bool must be an error")
	}
}

package difftest

import (
	"fmt"

	"pdwqo"
	"pdwqo/internal/algebra"
	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/qgen"
)

// OpenQGen builds a private appliance for one generated large-join query:
// fresh shell from the query's catalog, rows loaded per distribution,
// statistics computed and merged.
func OpenQGen(q *qgen.Query) (*pdwqo.DB, error) {
	shell, err := q.Shell()
	if err != nil {
		return nil, err
	}
	return pdwqo.Open(shell, q.Data)
}

// LargeJoinDiff certifies the metamorphic contract of the greedy
// large-join regime on one generated query where exhaustive search is
// feasible: the same query compiled exhaustively (no budget) and under a
// forced greedy fallback (SearchBudget=1 trips at the first wave
// barrier) must produce byte-identical result relations — the generated
// heads aggregate integers only, so not even float reassociation is in
// play. Both compilations run with the static plan verifier on. The
// returned value is the smoothed plan-cost ratio greedy/exhaustive
// (see cost.PlanCostRatio); the sweep gates its geometric mean.
func LargeJoinDiff(db *pdwqo.DB, q *qgen.Query, par int) (float64, error) {
	exh, err := db.Optimize(q.SQL, pdwqo.Options{Parallelism: par, Verify: true})
	if err != nil {
		return 0, fmt.Errorf("%s: exhaustive optimize: %w", q.Name, err)
	}
	if exh.Regime != "" {
		return 0, fmt.Errorf("%s: exhaustive arm reported regime %q, want \"\"", q.Name, exh.Regime)
	}
	greedy, err := db.Optimize(q.SQL, pdwqo.Options{Parallelism: par, SearchBudget: 1, Verify: true})
	if err != nil {
		return 0, fmt.Errorf("%s: greedy optimize: %w", q.Name, err)
	}
	if greedy.Regime != "greedy" {
		return 0, fmt.Errorf("%s: SearchBudget=1 arm reported regime %q, want greedy", q.Name, greedy.Regime)
	}
	if err := GreedyPlanShape(q, greedy); err != nil {
		return 0, err
	}
	db.SetParallelism(par)
	c := Case{Name: q.Name, SQL: q.SQL}
	gres, err := db.ExecutePlan(greedy)
	if err != nil {
		return 0, fmt.Errorf("%s: execute greedy plan: %w", q.Name, err)
	}
	eres, err := db.ExecutePlan(exh)
	if err != nil {
		return 0, fmt.Errorf("%s: execute exhaustive plan: %w", q.Name, err)
	}
	if derr := diffRelations(c, gres, eres); derr != nil {
		return 0, fmt.Errorf("greedy-vs-exhaustive: %w", derr)
	}
	return cost.PlanCostRatio(greedy.Cost(), exh.Cost()), nil
}

// GreedyPlanShape checks the greedy heuristic's structural guarantees on
// a compiled plan: every relation of the generated query is scanned
// exactly once, and no cross join appears — the generated join graphs
// are connected, and the heuristic only cross-joins when no predicate
// edge exists.
func GreedyPlanShape(q *qgen.Query, qp *pdwqo.QueryPlan) error {
	scans := map[string]int{}
	var crossErr error
	seen := map[*core.Option]bool{}
	var walk func(o *core.Option)
	walk = func(o *core.Option) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		switch op := o.Op.(type) {
		case *algebra.Get:
			scans[op.Table.Name]++
		case *algebra.Join:
			if op.Kind == algebra.JoinCross && crossErr == nil {
				crossErr = fmt.Errorf("%s: plan contains a cross join despite a connected predicate graph", q.Name)
			}
		}
		for _, in := range o.Inputs {
			walk(in)
		}
	}
	walk(qp.Distributed.Root)
	if crossErr != nil {
		return crossErr
	}
	for _, name := range q.Shape.Tables {
		if scans[name] != 1 {
			return fmt.Errorf("%s: relation %s scanned %d times, want exactly 1", q.Name, name, scans[name])
		}
	}
	if len(scans) != len(q.Shape.Tables) {
		return fmt.Errorf("%s: plan scans %d relations, query has %d", q.Name, len(scans), len(q.Shape.Tables))
	}
	return nil
}

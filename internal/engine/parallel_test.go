package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersKnob(t *testing.T) {
	a := &Appliance{}
	cases := []struct {
		parallelism, tasks, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)}, // default: bounded by GOMAXPROCS
		{1, 100, 1},                     // serial reference path
		{4, 100, 4},                     // explicit cap
		{8, 3, 3},                       // never more workers than tasks
		{-2, 1, 1},                      // nonsense clamps to 1
	}
	for _, c := range cases {
		a.Parallelism = c.parallelism
		if got := a.workers(c.tasks); got != c.want {
			t.Errorf("workers(%d) with Parallelism=%d: got %d, want %d",
				c.tasks, c.parallelism, got, c.want)
		}
	}
}

func TestParallelForVisitsEveryIndex(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		const n = 100
		var hits [n]int32
		err := parallelFor(context.Background(), n, w, func(_ context.Context, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("w=%d: index %d visited %d times", w, i, h)
			}
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	// Several indices fail; the reported error must be the lowest-index
	// one among those that actually ran, whatever the worker schedule.
	for _, w := range []int{1, 3, 8} {
		err := parallelFor(context.Background(), 16, w, func(_ context.Context, i int) error {
			if i%5 == 3 { // 3, 8, 13
				return fmt.Errorf("node %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("w=%d: expected an error", w)
		}
		if got := err.Error(); got != "node 3 failed" {
			t.Errorf("w=%d: got %q, want the lowest-index failure", w, got)
		}
	}
}

func TestParallelForCancelsOnFirstFailure(t *testing.T) {
	// With 2 workers and a failure on index 0, late indices must be
	// skipped once the context is cancelled, not executed.
	var ran int32
	boom := errors.New("boom")
	err := parallelFor(context.Background(), 64, 2, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		// Give cancellation time to propagate before counting.
		simulateLatency(ctx, 2*time.Millisecond)
		if ctx.Err() != nil {
			return nil
		}
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := atomic.LoadInt32(&ran); got > 8 {
		t.Errorf("%d tasks ran to completion after the failure; cancellation is not propagating", got)
	}
}

func TestParallelForHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := parallelFor(ctx, 10, 1, func(context.Context, int) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("%d tasks ran under a cancelled parent context", calls)
	}
}

// TestMetricsSnapshotRace hammers the appliance from concurrent readers
// while parallel executions append step metrics. Run under -race this
// certifies the Metrics accessors: unlocked reads of the step slice from
// experiment harnesses used to race with Execute.
func TestMetricsSnapshotRace(t *testing.T) {
	a, _ := buildAppliance(t, 4)
	a.Parallelism = 4
	plan := planFor(t, a, `SELECT c_name, o_totalprice FROM customer, orders
	                       WHERE c_custkey = o_custkey AND o_totalprice > 1000`)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = a.Metrics.StepCount()
			_ = a.Metrics.TotalBytesMoved()
			for _, s := range a.Metrics.Snapshot() {
				_ = s.Rows
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := a.Execute(plan); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if got := a.Metrics.StepCount(); got == 0 {
		t.Error("no step metrics recorded")
	}
	snap := a.Metrics.Snapshot()
	snap[0].Rows = -1 // the snapshot must be a copy, not an alias
	if a.Metrics.Snapshot()[0].Rows == -1 {
		t.Error("Snapshot aliases the live metrics slice")
	}
}

// TestParallelExecutionMatchesSerial is the engine-level miniature of the
// internal/difftest sweep: same plan, same appliance, serial vs parallel
// fan-out, identical rows in identical order.
func TestParallelExecutionMatchesSerial(t *testing.T) {
	a, _ := buildAppliance(t, 8)
	plan := planFor(t, a, `SELECT c_mktsegment, COUNT(*) AS cnt, SUM(o_totalprice) AS s
	                       FROM customer, orders WHERE c_custkey = o_custkey
	                       GROUP BY c_mktsegment`)
	a.Parallelism = 1
	serial, err := a.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		a.Parallelism = par
		got, err := a.Execute(plan)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got.Rows) != len(serial.Rows) {
			t.Fatalf("parallelism %d: %d rows, serial produced %d", par, len(got.Rows), len(serial.Rows))
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if got.Rows[i][j] != serial.Rows[i][j] {
					t.Fatalf("parallelism %d: row %d col %d: %v != %v",
						par, i, j, got.Rows[i][j], serial.Rows[i][j])
				}
			}
		}
	}
}

package explain

import (
	"math"

	"pdwqo/internal/core"
	"pdwqo/internal/cost"
	"pdwqo/internal/dsql"
	"pdwqo/internal/engine"
)

// jsonPlan is the machine-readable EXPLAIN [ANALYZE] document.
type jsonPlan struct {
	SQL               string       `json:"sql,omitempty"`
	Cost              float64      `json:"cost"`
	Groups            int          `json:"groups"`
	OptionsConsidered int          `json:"optionsConsidered"`
	OptionsRetained   int          `json:"optionsRetained"`
	Root              *jsonNode    `json:"root"`
	Steps             []jsonStep   `json:"steps"`
	Analyze           *jsonAnalyze `json:"analyze,omitempty"`
}

type jsonNode struct {
	Name     string      `json:"name"`
	Dist     string      `json:"dist"`
	Rows     float64     `json:"rows"`
	Bytes    float64     `json:"bytes"`
	DMSCost  float64     `json:"dmsCost"`
	Children []*jsonNode `json:"children,omitempty"`
}

type jsonStep struct {
	ID       int         `json:"id"`
	Kind     string      `json:"kind"`
	Move     string      `json:"move,omitempty"`
	HashCol  string      `json:"hashCol,omitempty"`
	Dest     string      `json:"dest,omitempty"`
	Where    string      `json:"where"`
	EstRows  float64     `json:"estRows"`
	EstBytes float64     `json:"estBytes"`
	EstCost  float64     `json:"estCost,omitempty"`
	SQL      string      `json:"sql"`
	Actual   *jsonActual `json:"actual,omitempty"`
}

type jsonActual struct {
	Rows       int64    `json:"rows"`
	Bytes      int64    `json:"bytes"`
	Attempts   int      `json:"attempts"`
	DurationNs int64    `json:"durationNs"`
	Batches    int64    `json:"batches,omitempty"`
	QRows      *float64 `json:"qRows,omitempty"`
	QBytes     *float64 `json:"qBytes,omitempty"`
}

type jsonAnalyze struct {
	ElapsedNs  int64    `json:"elapsedNs"`
	StepsRun   int      `json:"stepsRun"`
	StepsTotal int      `json:"stepsTotal"`
	BytesMoved int64    `json:"bytesMoved"`
	Retries    int64    `json:"retries"`
	Faults     int64    `json:"faults"`
	MoveSteps  int      `json:"moveSteps"`
	QRowsMean  *float64 `json:"qRowsMean,omitempty"`
	QRowsMax   *float64 `json:"qRowsMax,omitempty"`
	QBytesMean *float64 `json:"qBytesMean,omitempty"`
	QBytesMax  *float64 `json:"qBytesMax,omitempty"`
	// Unbounded counts of +Inf q-errors excluded from the means (one side
	// of the estimate was zero; see cost.QErrorSummary).
	QRowsUnbounded  int `json:"qRowsUnbounded,omitempty"`
	QBytesUnbounded int `json:"qBytesUnbounded,omitempty"`
}

// qPtr boxes a q-error for optional JSON emission; unbounded values have
// no JSON number, so they round to a sentinel -1 (documented: -1 = inf).
func qPtr(q float64) *float64 {
	if math.IsNaN(q) {
		return nil
	}
	if math.IsInf(q, 1) {
		q = -1
	}
	return &q
}

func buildJSON(in Input, opts Options) jsonPlan {
	doc := jsonPlan{
		SQL:               in.SQL,
		Cost:              in.Plan.TotalCost,
		Groups:            in.Plan.Groups,
		OptionsConsidered: in.Plan.OptionsConsidered,
		OptionsRetained:   in.Plan.OptionsRetained,
		Root:              buildNode(in.Plan.Root),
	}
	acts := actualsByStep(in)
	for _, s := range in.DSQL.Steps {
		js := jsonStep{
			ID:       s.ID,
			Kind:     "return",
			Where:    whereName(s.Where),
			EstRows:  s.Rows,
			EstBytes: s.EstBytes(),
			SQL:      s.SQL,
		}
		if s.Kind == dsql.StepMove {
			js.Kind = "move"
			js.Move = s.MoveKind.String()
			js.HashCol = s.HashCol
			js.Dest = s.Dest
			js.EstCost = s.MoveCost
		}
		if opts.Analyze {
			if a, ok := acts[s.ID]; ok {
				js.Actual = buildActual(s, a)
			}
		}
		doc.Steps = append(doc.Steps, js)
	}
	if opts.Analyze {
		doc.Analyze = buildAnalyze(in, acts)
	}
	return doc
}

func buildNode(o *core.Option) *jsonNode {
	n := &jsonNode{
		Name:    nodeLabel(o),
		Dist:    o.Dist.String(),
		Rows:    o.Rows,
		Bytes:   o.Rows * o.Width,
		DMSCost: o.DMSCost,
	}
	for _, in := range o.Inputs {
		n.Children = append(n.Children, buildNode(in))
	}
	return n
}

func buildActual(s dsql.Step, a engine.StepMetric) *jsonActual {
	ja := &jsonActual{
		Rows:       a.Rows,
		Bytes:      a.Bytes,
		Attempts:   a.Attempts,
		DurationNs: int64(a.Duration),
		Batches:    a.LocalBatches,
	}
	if s.Kind == dsql.StepMove {
		ja.QRows = qPtr(cost.QError(s.Rows, float64(a.Rows)))
		ja.QBytes = qPtr(cost.QError(s.EstBytes(), float64(a.Bytes)))
	}
	return ja
}

func buildAnalyze(in Input, acts map[int]engine.StepMetric) *jsonAnalyze {
	var bytesMoved int64
	for _, a := range in.Actuals {
		if a.IsMove {
			bytesMoved += a.Bytes
		}
	}
	rows, bytes := qErrors(in, acts)
	ja := &jsonAnalyze{
		ElapsedNs:  int64(in.Elapsed),
		StepsRun:   len(in.Actuals),
		StepsTotal: len(in.DSQL.Steps),
		BytesMoved: bytesMoved,
		Retries:    in.Retries,
		Faults:     in.Faults,
		MoveSteps:  len(bytes),
	}
	if len(bytes) > 0 {
		rg, ru := cost.QErrorSummary(rows)
		bg, bu := cost.QErrorSummary(bytes)
		ja.QRowsMean = qPtr(rg)
		ja.QRowsMax = qPtr(maxOf(rows))
		ja.QBytesMean = qPtr(bg)
		ja.QBytesMax = qPtr(maxOf(bytes))
		ja.QRowsUnbounded = ru
		ja.QBytesUnbounded = bu
	}
	return ja
}

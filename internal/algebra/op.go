package algebra

import (
	"fmt"
	"strings"

	"pdwqo/internal/catalog"
	"pdwqo/internal/types"
)

// Operator is the payload of one relational operator, independent of its
// children. The same payloads are shared between bound trees (Tree) and
// MEMO group expressions (payload + child group IDs), which is what lets
// the PDW optimizer consume the serial search space directly.
type Operator interface {
	// OpName returns the operator's display name.
	OpName() string
	// Fingerprint renders payload identity for memo duplicate detection.
	// Two operators with equal fingerprints and equal children are the
	// same expression.
	Fingerprint() string
	// Arity returns the number of children the operator requires.
	Arity() int
}

// JoinKind classifies logical joins after binding. RIGHT OUTER is
// normalized away by swapping inputs.
type JoinKind uint8

// Logical join kinds.
const (
	JoinInner JoinKind = iota
	JoinCross
	JoinLeftOuter
	JoinFullOuter
	JoinSemi
	JoinAnti
)

// String names the join kind.
func (k JoinKind) String() string {
	return [...]string{"Inner", "Cross", "LeftOuter", "FullOuter", "Semi", "Anti"}[k]
}

// PreservesLeft reports whether every left row appears at least once.
func (k JoinKind) PreservesLeft() bool {
	return k == JoinLeftOuter || k == JoinFullOuter
}

// Get scans a base table. Cols holds the fresh column IDs this instance
// minted for the table's columns, in table order.
type Get struct {
	Table *catalog.Table
	Alias string
	Cols  []ColumnMeta
}

// OpName implements Operator.
func (*Get) OpName() string { return "Get" }

// Arity implements Operator.
func (*Get) Arity() int { return 0 }

// Fingerprint implements Operator.
func (g *Get) Fingerprint() string {
	ids := make([]string, len(g.Cols))
	for i, c := range g.Cols {
		ids[i] = fmt.Sprintf("c%d", c.ID)
	}
	return fmt.Sprintf("Get(%s as %s -> %s)", g.Table.Name, g.Alias, strings.Join(ids, ","))
}

// Select filters its input by a boolean expression.
type Select struct {
	Filter Scalar
}

// OpName implements Operator.
func (*Select) OpName() string { return "Select" }

// Arity implements Operator.
func (*Select) Arity() int { return 1 }

// Fingerprint implements Operator.
func (s *Select) Fingerprint() string { return "Select(" + s.Filter.Fingerprint() + ")" }

// ProjDef is one projection: compute Expr, expose it as column ID/Name.
// A pass-through projection of a ColRef keeps the referenced ID.
type ProjDef struct {
	Expr Scalar
	ID   ColumnID
	Name string
}

// Project computes expressions over its input.
type Project struct {
	Defs []ProjDef
}

// OpName implements Operator.
func (*Project) OpName() string { return "Project" }

// Arity implements Operator.
func (*Project) Arity() int { return 1 }

// Fingerprint implements Operator.
func (p *Project) Fingerprint() string {
	parts := make([]string, len(p.Defs))
	for i, d := range p.Defs {
		parts[i] = fmt.Sprintf("c%d:=%s", d.ID, d.Expr.Fingerprint())
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Join combines two inputs. On is nil for cross joins.
type Join struct {
	Kind JoinKind
	On   Scalar
}

// OpName implements Operator.
func (j *Join) OpName() string { return j.Kind.String() + "Join" }

// Arity implements Operator.
func (*Join) Arity() int { return 2 }

// Fingerprint implements Operator.
func (j *Join) Fingerprint() string {
	on := ""
	if j.On != nil {
		on = j.On.Fingerprint()
	}
	return fmt.Sprintf("%sJoin(%s)", j.Kind, on)
}

// AggPhase marks where a GroupBy runs in the distributed plan. The serial
// optimizer only emits AggComplete; the PDW optimizer splits a complete
// aggregation into a Partial/Final pair around a data movement (paper §4,
// "local-global transformation"): each node pre-aggregates its local rows
// into partial states, the much smaller states move, and a finalizing
// aggregation merges them.
type AggPhase uint8

// Aggregation phases.
const (
	AggComplete AggPhase = iota
	AggPartial
	AggFinal
)

// String names the phase.
func (p AggPhase) String() string {
	return [...]string{"", "Partial", "Final"}[p]
}

// GroupBy groups by key columns and computes aggregates. A GroupBy with no
// aggregates implements DISTINCT.
type GroupBy struct {
	Keys  []ColumnID
	Aggs  []AggDef
	Phase AggPhase
}

// OpName implements Operator.
func (g *GroupBy) OpName() string { return g.Phase.String() + "GroupBy" }

// Arity implements Operator.
func (*GroupBy) Arity() int { return 1 }

// Fingerprint implements Operator.
func (g *GroupBy) Fingerprint() string {
	keys := make([]string, len(g.Keys))
	for i, k := range g.Keys {
		keys[i] = fmt.Sprintf("c%d", k)
	}
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.Fingerprint()
	}
	return fmt.Sprintf("%sGroupBy([%s] aggs=[%s])", g.Phase, strings.Join(keys, ","), strings.Join(aggs, ","))
}

// SortKey is one ordering column.
type SortKey struct {
	ID   ColumnID
	Desc bool
}

// Sort orders its input; Top > 0 additionally keeps only the first rows
// (TOP N / ORDER BY ... combinations).
type Sort struct {
	Keys []SortKey
	Top  int64 // 0 means no limit
}

// OpName implements Operator.
func (*Sort) OpName() string { return "Sort" }

// Arity implements Operator.
func (*Sort) Arity() int { return 1 }

// Fingerprint implements Operator.
func (s *Sort) Fingerprint() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		d := ""
		if k.Desc {
			d = " DESC"
		}
		parts[i] = fmt.Sprintf("c%d%s", k.ID, d)
	}
	return fmt.Sprintf("Sort([%s] top=%d)", strings.Join(parts, ","), s.Top)
}

// UnionAll concatenates two inputs with identical column IDs (the binder
// maps both sides onto the left side's IDs via projections).
type UnionAll struct{}

// OpName implements Operator.
func (*UnionAll) OpName() string { return "UnionAll" }

// Arity implements Operator.
func (*UnionAll) Arity() int { return 2 }

// Fingerprint implements Operator.
func (*UnionAll) Fingerprint() string { return "UnionAll()" }

// Tree is a bound operator tree: payload plus children. The binder and
// normalizer work on Trees; the memo flattens them.
type Tree struct {
	Op       Operator
	Children []*Tree

	outputCols   []ColumnMeta // lazily derived
	outputColSet ColSet       // lazily derived; callers must not mutate
}

// NewTree builds a tree node, validating arity.
func NewTree(op Operator, children ...*Tree) *Tree {
	if len(children) != op.Arity() {
		panic(fmt.Sprintf("algebra: %s expects %d children, got %d", op.OpName(), op.Arity(), len(children)))
	}
	return &Tree{Op: op, Children: children}
}

// NewTreeSameSchema builds a tree node whose output schema is known to
// equal `like`'s — the contract of filter-placement rewrites, which only
// insert/remove Selects and fold conjuncts into join conditions. The
// cached schema carries over, so passes that rebuild a root-to-leaf path
// per conjunct (pushdown on a 100-relation join region) stay linear in
// path length instead of recomputing every schema along it.
func NewTreeSameSchema(like *Tree, op Operator, children ...*Tree) *Tree {
	t := NewTree(op, children...)
	t.outputCols = like.outputCols
	t.outputColSet = like.outputColSet
	return t
}

// OutputCols derives the operator's output schema from its children.
func (t *Tree) OutputCols() []ColumnMeta {
	if t.outputCols != nil {
		return t.outputCols
	}
	t.outputCols = OutputCols(t.Op, t.Children)
	return t.outputCols
}

// OutputCols computes the output schema of op over children.
func OutputCols(op Operator, children []*Tree) []ColumnMeta {
	schemas := make([][]ColumnMeta, len(children))
	for i, c := range children {
		schemas[i] = c.OutputCols()
	}
	return OutputColsFromSchemas(op, schemas)
}

// OutputColsFromSchemas computes the output schema of op given its
// children's schemas; shared with the memo, whose children are groups.
func OutputColsFromSchemas(op Operator, children [][]ColumnMeta) []ColumnMeta {
	switch o := op.(type) {
	case *Get:
		return o.Cols
	case *Select:
		return children[0]
	case *Project:
		in := children[0]
		out := make([]ColumnMeta, len(o.Defs))
		for i, d := range o.Defs {
			m := ColumnMeta{ID: d.ID, Name: d.Name, Type: d.Expr.Type()}
			if c, ok := d.Expr.(*ColRef); ok {
				m.Qual = c.Meta.Qual
				if m.Name == "" {
					m.Name = c.Meta.Name
				}
				// Preserve the original type for pass-throughs.
				for _, ic := range in {
					if ic.ID == c.ID {
						m.Type = ic.Type
					}
				}
			}
			out[i] = m
		}
		return out
	case *Join:
		left := children[0]
		switch o.Kind {
		case JoinSemi, JoinAnti:
			return left
		}
		right := children[1]
		out := make([]ColumnMeta, 0, len(left)+len(right))
		out = append(out, left...)
		out = append(out, right...)
		return out
	case *GroupBy:
		in := children[0]
		out := make([]ColumnMeta, 0, len(o.Keys)+len(o.Aggs))
		for _, k := range o.Keys {
			found := false
			for _, c := range in {
				if c.ID == k {
					out = append(out, c)
					found = true
					break
				}
			}
			if !found {
				out = append(out, ColumnMeta{ID: k, Name: fmt.Sprintf("c%d", k)})
			}
		}
		for _, a := range o.Aggs {
			out = append(out, ColumnMeta{ID: a.ID, Name: a.Name, Type: a.ResultType()})
		}
		return out
	case *Sort:
		return children[0]
	case *UnionAll:
		return children[0]
	case *Values:
		return o.Cols
	case *Phys:
		return OutputColsFromSchemas(o.Of, children)
	default:
		panic(fmt.Sprintf("algebra: OutputCols on unknown operator %T", op))
	}
}

// OutputColSet returns the IDs of the tree's output columns.
// OutputColSet returns the output schema as a column set. The set is
// computed once and cached — normalization passes probe it on every
// conjunct placement, which is quadratic in plan depth on the
// 100-relation stress corpus — so callers must treat it as read-only
// (clone before extending, as pruneColumns does).
func (t *Tree) OutputColSet() ColSet {
	if t.outputColSet != nil {
		return t.outputColSet
	}
	s := NewColSet()
	for _, c := range t.OutputCols() {
		s.Add(c.ID)
	}
	t.outputColSet = s
	return s
}

// Fingerprint renders the whole tree deterministically.
func (t *Tree) Fingerprint() string {
	if len(t.Children) == 0 {
		return t.Op.Fingerprint()
	}
	parts := make([]string, len(t.Children))
	for i, c := range t.Children {
		parts[i] = c.Fingerprint()
	}
	return t.Op.Fingerprint() + "[" + strings.Join(parts, "; ") + "]"
}

// String renders an indented plan for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	t.format(&b, 0)
	return b.String()
}

func (t *Tree) format(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(t.Op.Fingerprint())
	b.WriteByte('\n')
	for _, c := range t.Children {
		c.format(b, depth+1)
	}
}

// VisitTree walks the tree pre-order, including subquery inputs embedded in
// scalar expressions.
func VisitTree(t *Tree, f func(*Tree)) {
	if t == nil {
		return
	}
	f(t)
	for _, s := range OperatorScalars(t.Op) {
		VisitScalar(s, func(e Scalar) {
			if sq, ok := e.(*Subquery); ok {
				VisitTree(sq.Input, f)
			}
		})
	}
	for _, c := range t.Children {
		VisitTree(c, f)
	}
}

// OperatorScalars returns every scalar expression embedded in an operator
// payload; used by column analyses and rewrites.
func OperatorScalars(op Operator) []Scalar {
	switch o := op.(type) {
	case *Select:
		return []Scalar{o.Filter}
	case *Project:
		out := make([]Scalar, len(o.Defs))
		for i, d := range o.Defs {
			out[i] = d.Expr
		}
		return out
	case *Join:
		if o.On != nil {
			return []Scalar{o.On}
		}
	case *GroupBy:
		var out []Scalar
		for _, a := range o.Aggs {
			if a.Arg != nil {
				out = append(out, a.Arg)
			}
		}
		return out
	}
	return nil
}

// FreeCols returns the columns referenced by the tree (including inside
// nested subqueries) that are not produced inside it — i.e. its correlated
// outer references.
func FreeCols(t *Tree) ColSet {
	produced := NewColSet()
	referenced := NewColSet()
	var walk func(n *Tree)
	walk = func(n *Tree) {
		if n == nil {
			return
		}
		for _, c := range n.OutputCols() {
			produced.Add(c.ID)
		}
		// Inputs to operators also count as produced (e.g. columns consumed
		// by a Project but not re-exposed).
		for _, ch := range n.Children {
			for _, c := range ch.OutputCols() {
				produced.Add(c.ID)
			}
		}
		for _, s := range OperatorScalars(n.Op) {
			VisitScalar(s, func(e Scalar) {
				switch x := e.(type) {
				case *ColRef:
					referenced.Add(x.ID)
				case *Subquery:
					walk(x.Input)
				}
			})
		}
		if g, ok := n.Op.(*GroupBy); ok {
			for _, k := range g.Keys {
				referenced.Add(k)
			}
		}
		if s, ok := n.Op.(*Sort); ok {
			for _, k := range s.Keys {
				referenced.Add(k.ID)
			}
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(t)
	free := NewColSet()
	for id := range referenced {
		if !produced.Has(id) {
			free.Add(id)
		}
	}
	return free
}

// Values is a literal relation. The normalizer uses an empty Values to
// replace provably-empty subtrees (contradiction detection); each row, when
// present, is a list of constants matching Cols.
type Values struct {
	Cols []ColumnMeta
	Rows [][]types.Value
}

// OpName implements Operator.
func (*Values) OpName() string { return "Values" }

// Arity implements Operator.
func (*Values) Arity() int { return 0 }

// Fingerprint implements Operator.
func (v *Values) Fingerprint() string {
	ids := make([]string, len(v.Cols))
	for i, c := range v.Cols {
		ids[i] = fmt.Sprintf("c%d", c.ID)
	}
	var rows strings.Builder
	for i, r := range v.Rows {
		if i > 0 {
			rows.WriteByte(';')
		}
		for j, val := range r {
			if j > 0 {
				rows.WriteByte(',')
			}
			rows.WriteString(val.SQLLiteral())
		}
	}
	return fmt.Sprintf("Values([%s] rows=%s)", strings.Join(ids, ","), rows.String())
}

package exec

// Fuzz lock for the checked numeric casts: CastValue must never panic,
// must round-trip every value it accepts, and must reject exactly the
// values float64/int64 cannot carry — the edges that used to wrap
// silently through Go's undefined float→int conversion.

import (
	"errors"
	"math"
	"testing"

	"pdwqo/internal/types"
)

func FuzzCastValue(f *testing.F) {
	// Regression seeds: the first int64 above 2^53, the extremes whose
	// float images round out of int64 range, NaN/±Inf, and benign values
	// on both sides of every boundary.
	seeds := []struct {
		i int64
		f float64
	}{
		{int64(1)<<53 + 1, 9.3e18},
		{math.MaxInt64, math.NaN()},
		{math.MinInt64, math.Inf(1)},
		{-(int64(1)<<53 + 1), math.Inf(-1)},
		{int64(1) << 53, 9223372036854775808.0},
		{-(int64(1) << 53), -9223372036854775808.0},
		{int64(1) << 54, -9.3e18},
		{0, 123.9},
		{42, -123.9},
		{-1, 1e308},
	}
	for _, s := range seeds {
		f.Add(s.i, s.f)
	}
	f.Fuzz(func(t *testing.T, i int64, fl float64) {
		// INT → FLOAT: accepted values must round-trip exactly.
		got, err := CastValue(types.NewInt(i), types.KindFloat)
		if err != nil {
			var ce *CastError
			if !errors.As(err, &ce) {
				t.Fatalf("int→float error is not a *CastError: %v", err)
			}
			if i > -(int64(1)<<53) && i < int64(1)<<53 {
				t.Fatalf("int→float rejected exactly-representable %d: %v", i, err)
			}
		} else {
			if got.Kind() != types.KindFloat {
				t.Fatalf("int→float produced %s", got.Kind())
			}
			f := got.Float()
			if f >= 9223372036854775808.0 || int64(f) != i {
				t.Fatalf("int→float accepted lossy %d (as %g)", i, f)
			}
		}

		// FLOAT → INT: accepted values must equal Go truncation; rejects
		// are exactly NaN and out-of-range.
		got, err = CastValue(types.NewFloat(fl), types.KindInt)
		inRange := !math.IsNaN(fl) && fl < 9223372036854775808.0 && fl >= -9223372036854775808.0
		if err != nil {
			var ce *CastError
			if !errors.As(err, &ce) {
				t.Fatalf("float→int error is not a *CastError: %v", err)
			}
			if inRange {
				t.Fatalf("float→int rejected in-range %g: %v", fl, err)
			}
		} else {
			if !inRange {
				t.Fatalf("float→int accepted out-of-range %g", fl)
			}
			if got.Kind() != types.KindInt || got.Int() != int64(fl) {
				t.Fatalf("float→int %g = %v, want %d", fl, got, int64(fl))
			}
		}
	})
}

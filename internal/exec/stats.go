package exec

import "pdwqo/internal/algebra"

// Stats tallies the local work one Run call performed: how many operator
// nodes were evaluated and how many rows each produced (intermediates
// included). The engine sums one Stats per compute node into the step's
// trace span, making node-local evaluation effort visible next to the
// DMS bytes the cost model prices.
type Stats struct {
	Ops      int64 // operator nodes evaluated
	Rows     int64 // rows produced across all operators
	ScanRows int64 // rows produced by base-table scans (Get/Values)
	// Batches counts the column batches operators emitted. The row engine
	// leaves it zero; under the vectorized engine it is the denominator
	// that turns Rows into observed batch occupancy.
	Batches int64
}

// Merge adds o's tallies into s.
func (s *Stats) Merge(o Stats) {
	s.Ops += o.Ops
	s.Rows += o.Rows
	s.ScanRows += o.ScanRows
	s.Batches += o.Batches
}

// record counts one evaluated operator. A nil receiver is the disabled
// collector, so the untraced execution path pays only this nil check.
func (s *Stats) record(op algebra.Operator, rel *Relation) {
	if s == nil {
		return
	}
	s.recordCounts(op, int64(len(rel.Rows)), 0)
}

// recordCounts is the engine-agnostic tally: one operator node evaluated,
// producing rows across batches (0 batches on the row engine). Both
// engines route through it so their Ops/Rows/ScanRows agree exactly.
func (s *Stats) recordCounts(op algebra.Operator, rows, batches int64) {
	if s == nil {
		return
	}
	s.Ops++
	s.Rows += rows
	s.Batches += batches
	switch op.(type) {
	case *algebra.Get, *algebra.Values:
		s.ScanRows += rows
	}
}

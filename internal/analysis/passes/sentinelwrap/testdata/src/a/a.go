package a

import (
	"errors"
	"fmt"

	"pdwqo/internal/dsql"
	"pdwqo/internal/engine"
)

var errBase = errors.New("base")

func bad(step dsql.Step) error {
	return fmt.Errorf("step %d failed", step.ID) // want `bare fmt.Errorf in a step-scoped function`
}

func badPlan(p *dsql.Plan) error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("empty plan") // want `bare fmt.Errorf in a step-scoped function`
	}
	return nil
}

func goodWrap(step dsql.Step) error {
	return fmt.Errorf("step %d: %w", step.ID, errBase)
}

func wrapStep(step dsql.Step, err error) *engine.StepError {
	return &engine.StepError{Step: step.ID, Node: engine.NoNode, Err: err}
}

func goodConstructor(step dsql.Step) error {
	return wrapStep(step, fmt.Errorf("hash column %q missing", step.HashCol))
}

func notStepScoped() error {
	return fmt.Errorf("no step context here")
}

func noError(step dsql.Step) string {
	return fmt.Sprintf("step %d", step.ID)
}

func allowed(step dsql.Step) error {
	return fmt.Errorf("transient %d", step.ID) //pdwlint:allow sentinelwrap
}

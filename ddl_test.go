package pdwqo

import (
	"testing"

	"pdwqo/internal/types"
)

func TestCustomSchemaFromDDL(t *testing.T) {
	shell, err := NewShellFromDDL(4,
		`CREATE TABLE events (
			ev_id BIGINT PRIMARY KEY,
			ev_user BIGINT,
			ev_kind VARCHAR(10),
			ev_when DATE
		) WITH (DISTRIBUTION = HASH(ev_id))`,
		`CREATE TABLE users (
			u_id BIGINT PRIMARY KEY,
			u_name VARCHAR(30)
		) WITH (DISTRIBUTION = HASH(u_id))`,
		`CREATE TABLE kinds (k_kind VARCHAR(10), k_desc VARCHAR(40))
		 WITH (DISTRIBUTION = REPLICATE)`,
	)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]types.Row{}
	for i := int64(0); i < 400; i++ {
		data["events"] = append(data["events"], types.Row{
			types.NewInt(i), types.NewInt(i % 40),
			types.NewString([]string{"click", "view", "buy"}[i%3]),
			types.NewDate(10000 + i%30),
		})
	}
	for i := int64(0); i < 40; i++ {
		data["users"] = append(data["users"], types.Row{
			types.NewInt(i), types.NewString("user" + types.NewInt(i).String()),
		})
	}
	for _, k := range []string{"click", "view", "buy"} {
		data["kinds"] = append(data["kinds"], types.Row{
			types.NewString(k), types.NewString("kind " + k),
		})
	}
	db, err := Open(shell, data)
	if err != nil {
		t.Fatal(err)
	}
	// Statistics were derived automatically.
	if shell.Table("events").RowCount() != 400 {
		t.Errorf("auto stats: %v", shell.Table("events").RowCount())
	}
	// A join needing movement optimizes and executes correctly.
	sql := `SELECT u_name, COUNT(*) AS c
	        FROM events, users, kinds
	        WHERE ev_user = u_id AND ev_kind = k_kind AND k_kind = 'buy'
	        GROUP BY u_name`
	assertSameResults(t, db, sql, Options{}, false)
	plan, err := db.Optimize(sql, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves()) == 0 {
		t.Error("expected data movement for the incompatible join")
	}
}

func TestNewShellFromDDLErrors(t *testing.T) {
	if _, err := NewShellFromDDL(2, "SELECT 1"); err == nil {
		t.Error("non-DDL must fail")
	}
	if _, err := NewShellFromDDL(2, "CREATE TABLE t (a INT) WITH (DISTRIBUTION = HASH(b))"); err == nil {
		t.Error("bad distribution column must fail")
	}
}
